#include "mm/storage/metadata.h"

namespace mm::storage {

namespace {
constexpr std::uint64_t kControlBytes = 128;  // metadata message size

void SetDone(sim::SimTime end, sim::SimTime* done) {
  if (done != nullptr) *done = end;
}
}  // namespace

sim::SimTime MetadataManager::ChargeRtt(std::size_t home, std::size_t from,
                                        sim::SimTime now) const {
  if (home == from) return now;  // local shard access
  auto req = network_->Transfer(now, from, home, kControlBytes);
  auto rsp = network_->Transfer(req.delivered, home, from, kControlBytes);
  return rsp.delivered;
}

StatusOr<BlobLocation> MetadataManager::Lookup(const BlobId& id,
                                               std::size_t from_node,
                                               sim::SimTime now,
                                               sim::SimTime* done) const {
  std::size_t home = HomeNode(id);
  SetDone(ChargeRtt(home, from_node, now), done);
  Shard& shard = shards_[home];
  MutexLock lock(shard.mu);
  auto it = shard.entries.find(id);
  if (it == shard.entries.end()) {
    return NotFound("no metadata for blob " + id.ToString());
  }
  return it->second.loc;
}

std::vector<std::optional<BlobLocation>> MetadataManager::LookupBatch(
    const std::vector<BlobId>& ids, std::size_t from_node, sim::SimTime now,
    sim::SimTime* done) const {
  // One coalesced request per touched shard; shards answer in parallel.
  std::set<std::size_t> homes;
  for (const BlobId& id : ids) homes.insert(HomeNode(id));
  sim::SimTime end = now;
  for (std::size_t home : homes) {
    end = std::max(end, ChargeRtt(home, from_node, now));
  }
  SetDone(end, done);
  std::vector<std::optional<BlobLocation>> out;
  out.reserve(ids.size());
  for (const BlobId& id : ids) {
    Shard& shard = shards_[HomeNode(id)];
    MutexLock lock(shard.mu);
    auto it = shard.entries.find(id);
    if (it == shard.entries.end()) {
      out.push_back(std::nullopt);
    } else {
      out.push_back(it->second.loc);
    }
  }
  return out;
}

Status MetadataManager::Update(const BlobId& id, const BlobLocation& loc,
                               std::size_t from_node, sim::SimTime now,
                               sim::SimTime* done) {
  std::size_t home = HomeNode(id);
  SetDone(ChargeRtt(home, from_node, now), done);
  Shard& shard = shards_[home];
  MutexLock lock(shard.mu);
  shard.entries[id].loc = loc;
  return Status::Ok();
}

Status MetadataManager::Remove(const BlobId& id, std::size_t from_node,
                               sim::SimTime now, sim::SimTime* done) {
  std::size_t home = HomeNode(id);
  SetDone(ChargeRtt(home, from_node, now), done);
  Shard& shard = shards_[home];
  MutexLock lock(shard.mu);
  if (shard.entries.erase(id) == 0) {
    return NotFound("no metadata for blob " + id.ToString());
  }
  return Status::Ok();
}

Status MetadataManager::AddReplica(const BlobId& id, std::size_t replica_node,
                                   std::size_t from_node, sim::SimTime now,
                                   sim::SimTime* done) {
  std::size_t home = HomeNode(id);
  SetDone(ChargeRtt(home, from_node, now), done);
  Shard& shard = shards_[home];
  MutexLock lock(shard.mu);
  auto it = shard.entries.find(id);
  if (it == shard.entries.end()) {
    return NotFound("no metadata for blob " + id.ToString());
  }
  for (std::size_t n : it->second.replicas) {
    if (n == replica_node) return Status::Ok();  // idempotent
  }
  it->second.replicas.push_back(replica_node);
  return Status::Ok();
}

Status MetadataManager::RemoveReplica(const BlobId& id,
                                      std::size_t replica_node,
                                      std::size_t from_node, sim::SimTime now,
                                      sim::SimTime* done) {
  std::size_t home = HomeNode(id);
  SetDone(ChargeRtt(home, from_node, now), done);
  Shard& shard = shards_[home];
  MutexLock lock(shard.mu);
  auto it = shard.entries.find(id);
  if (it == shard.entries.end()) return Status::Ok();
  auto& replicas = it->second.replicas;
  for (auto rit = replicas.begin(); rit != replicas.end(); ++rit) {
    if (*rit == replica_node) {
      replicas.erase(rit);
      break;
    }
  }
  return Status::Ok();
}

std::vector<std::size_t> MetadataManager::Replicas(const BlobId& id,
                                                   std::size_t from_node,
                                                   sim::SimTime now,
                                                   sim::SimTime* done) const {
  std::size_t home = HomeNode(id);
  SetDone(ChargeRtt(home, from_node, now), done);
  Shard& shard = shards_[home];
  MutexLock lock(shard.mu);
  auto it = shard.entries.find(id);
  if (it == shard.entries.end()) return {};
  return it->second.replicas;
}

std::vector<std::size_t> MetadataManager::InvalidateReplicas(
    const BlobId& id, std::size_t from_node, sim::SimTime now,
    sim::SimTime* done) {
  std::size_t home = HomeNode(id);
  sim::SimTime rtt_done = ChargeRtt(home, from_node, now);
  Shard& shard = shards_[home];
  std::vector<std::size_t> dropped;
  {
    MutexLock lock(shard.mu);
    auto it = shard.entries.find(id);
    if (it != shard.entries.end()) {
      dropped.swap(it->second.replicas);
    }
  }
  // Invalidation messages fan out from the home node to each replica.
  sim::SimTime end = rtt_done;
  for (std::size_t node : dropped) {
    auto inval = network_->Transfer(rtt_done, home, node, kControlBytes);
    end = std::max(end, inval.delivered);
  }
  SetDone(end, done);
  return dropped;
}

std::vector<BlobId> MetadataManager::BlobsOfVector(
    std::uint64_t vector_id) const {
  std::vector<BlobId> ids;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [id, _] : shard.entries) {
      if (id.vector_id == vector_id) ids.push_back(id);
    }
  }
  return ids;
}

std::size_t MetadataManager::TotalBlobs() const {
  std::size_t total = 0;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace mm::storage
