#include "mm/storage/buffer_manager.h"

#include <algorithm>

namespace mm::storage {

namespace {
void MergeDone(sim::SimTime end, sim::SimTime* done) {
  if (done != nullptr) *done = std::max(*done, end);
}
}  // namespace

BufferManager::BufferManager(sim::Node* node,
                             const std::vector<TierGrant>& grants,
                             sim::FaultInjector* injector, RetryPolicy retry,
                             telemetry::NodeSink sink)
    : retry_(retry),
      demotions_(sink.metrics->GetCounter("mm.tier.demotion_count")),
      promotions_(sink.metrics->GetCounter("mm.tier.promotion_count")) {
  for (const TierGrant& grant : grants) {
    sim::Device* dev = node->FindTier(grant.kind);
    MM_CHECK_MSG(dev != nullptr, "node lacks granted tier");
    MM_CHECK_MSG(grant.capacity <= dev->spec().capacity_bytes,
                 "grant exceeds device capacity");
    tiers_.push_back(
        std::make_unique<TierStore>(dev, grant.capacity, injector, sink));
  }
  // Fastest-first ordering is required by the placement loops.
  for (std::size_t i = 1; i < tiers_.size(); ++i) {
    MM_CHECK_MSG(static_cast<int>(tiers_[i]->kind()) >
                     static_cast<int>(tiers_[i - 1]->kind()),
                 "tier grants must be sorted fastest-first");
  }
  tier_drained_.assign(tiers_.size(), false);
}

std::size_t BufferManager::num_live_tiers() const {
  std::size_t live = 0;
  for (const auto& t : tiers_) {
    if (!t->failed()) ++live;
  }
  return live;
}

void BufferManager::SetTierFailureHandler(TierFailureHandler handler) {
  MutexLock lock(mu_);
  failure_handler_ = std::move(handler);
}

std::uint64_t BufferManager::used() const {
  std::uint64_t total = 0;
  for (const auto& t : tiers_) total += t->used();
  return total;
}

std::uint64_t BufferManager::capacity() const {
  std::uint64_t total = 0;
  for (const auto& t : tiers_) total += t->capacity();
  return total;
}

StatusOr<std::size_t> BufferManager::PutScored(const BlobId& id,
                                               std::vector<std::uint8_t> data,
                                               float score, sim::SimTime now,
                                               sim::SimTime* done) {
  MutexLock lock(mu_);
  auto result = PutScoredLocked(id, std::move(data), score, now, done);
  std::vector<PendingFailure> failures = CollectFailuresLocked();
  lock.Unlock();
  NotifyFailures(std::move(failures), now);
  return result;
}

StatusOr<std::size_t> BufferManager::PutScoredLocked(
    const BlobId& id, std::vector<std::uint8_t> data, float score,
    sim::SimTime now, sim::SimTime* done) {
  {
    // Drop any stale copy so capacity accounting stays exact.
    for (auto& t : tiers_) {
      if (t->Contains(id)) {
        // Erase cannot fail here: Contains and Erase are under one mu_
        // critical section, so the blob cannot vanish in between.
        (void)t->Erase(id);
        break;
      }
    }
    scores_[id] = score;
    std::uint64_t size = data.size();
    bool any_live = false;
    for (std::size_t t = 0; t < tiers_.size(); ++t) {
      if (tiers_[t]->failed()) continue;
      any_live = true;
      if (tiers_[t]->free_bytes() < size &&
          !MakeRoom(t, size, score, /*allow_ties=*/false, now, done)) {
        continue;  // this tier is pinned full of higher-priority data
      }
      Status st = RunWithRetry(retry_, now, done,
                               [&](double start, double* attempt_done) {
                                 return tiers_[t]->Put(id, std::move(data),
                                                       start, attempt_done);
                               });
      if (st.ok()) return t;
      // kUnavailable (tier died mid-put), kResourceExhausted, or kIoError
      // (retries exhausted): the data is still intact — try the next tier
      // down the hierarchy.
    }
    scores_.erase(id);
    // Re-check after the puts: a tier that looked live above may have been
    // discovered dead by its own Put (the injector flips it on first use).
    any_live = std::any_of(tiers_.begin(), tiers_.end(),
                           [](const auto& t) { return !t->failed(); });
    if (!any_live) {
      return Unavailable("no live scache tier on this node for blob " +
                         id.ToString());
    }
    return ResourceExhausted("scache full on this node for blob " +
                             id.ToString());
  }
}

Status BufferManager::PutPartial(const BlobId& id, std::uint64_t offset,
                                 const std::vector<std::uint8_t>& data,
                                 sim::SimTime now, sim::SimTime* done) {
  MutexLock lock(mu_);
  Status result = PutPartialLocked(id, offset, data, now, done);
  std::vector<PendingFailure> failures = CollectFailuresLocked();
  lock.Unlock();
  NotifyFailures(std::move(failures), now);
  return result;
}

Status BufferManager::PutPartialLocked(const BlobId& id, std::uint64_t offset,
                                       const std::vector<std::uint8_t>& data,
                                       sim::SimTime now, sim::SimTime* done) {
  for (auto& t : tiers_) {
    if (t->failed()) continue;
    if (t->Contains(id)) {
      return RunWithRetry(retry_, now, done,
                          [&](double start, double* attempt_done) {
                            return t->PutPartial(id, offset, data, start,
                                                 attempt_done);
                          });
    }
  }
  return NotFound("blob " + id.ToString() + " not resident");
}

StatusOr<std::vector<std::uint8_t>> BufferManager::Get(const BlobId& id,
                                                       sim::SimTime now,
                                                       sim::SimTime* done) {
  MutexLock lock(mu_);
  auto result = GetLocked(id, now, done);
  std::vector<PendingFailure> failures = CollectFailuresLocked();
  lock.Unlock();
  NotifyFailures(std::move(failures), now);
  return result;
}

StatusOr<std::vector<std::uint8_t>> BufferManager::GetLocked(
    const BlobId& id, sim::SimTime now, sim::SimTime* done) {
  for (auto& t : tiers_) {
    if (t->failed()) continue;
    if (t->Contains(id)) {
      return RunWithRetry(retry_, now, done,
                          [&](double start, double* attempt_done) {
                            return t->Get(id, start, attempt_done);
                          });
    }
  }
  return NotFound("blob " + id.ToString() + " not resident");
}

Status BufferManager::GetInto(const BlobId& id, std::vector<std::uint8_t>* out,
                              sim::SimTime now, sim::SimTime* done) {
  MutexLock lock(mu_);
  Status result = GetIntoLocked(id, out, now, done);
  std::vector<PendingFailure> failures = CollectFailuresLocked();
  lock.Unlock();
  NotifyFailures(std::move(failures), now);
  return result;
}

Status BufferManager::GetIntoLocked(const BlobId& id,
                                    std::vector<std::uint8_t>* out,
                                    sim::SimTime now, sim::SimTime* done) {
  for (auto& t : tiers_) {
    if (t->failed()) continue;
    if (t->Contains(id)) {
      return RunWithRetry(retry_, now, done,
                          [&](double start, double* attempt_done) {
                            return t->GetInto(id, out, start, attempt_done);
                          });
    }
  }
  return NotFound("blob " + id.ToString() + " not resident");
}

StatusOr<std::vector<std::uint8_t>> BufferManager::GetPartial(
    const BlobId& id, std::uint64_t offset, std::uint64_t size,
    sim::SimTime now, sim::SimTime* done) {
  MutexLock lock(mu_);
  auto result = GetPartialLocked(id, offset, size, now, done);
  std::vector<PendingFailure> failures = CollectFailuresLocked();
  lock.Unlock();
  NotifyFailures(std::move(failures), now);
  return result;
}

StatusOr<std::vector<std::uint8_t>> BufferManager::GetPartialLocked(
    const BlobId& id, std::uint64_t offset, std::uint64_t size,
    sim::SimTime now, sim::SimTime* done) {
  for (auto& t : tiers_) {
    if (t->failed()) continue;
    if (t->Contains(id)) {
      return RunWithRetry(retry_, now, done,
                          [&](double start, double* attempt_done) {
                            return t->GetPartial(id, offset, size, start,
                                                 attempt_done);
                          });
    }
  }
  return NotFound("blob " + id.ToString() + " not resident");
}

std::optional<std::size_t> BufferManager::FindBlob(const BlobId& id) const {
  MutexLock lock(mu_);
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    if (tiers_[t]->Contains(id)) return t;
  }
  return std::nullopt;
}

Status BufferManager::Erase(const BlobId& id) {
  MutexLock lock(mu_);
  scores_.erase(id);
  for (auto& t : tiers_) {
    if (t->Contains(id)) return t->Erase(id);
  }
  return NotFound("blob " + id.ToString() + " not resident");
}

StatusOr<std::uint32_t> BufferManager::Checksum(const BlobId& id) const {
  MutexLock lock(mu_);
  for (const auto& t : tiers_) {
    if (t->Contains(id)) return t->Checksum(id);
  }
  return NotFound("blob " + id.ToString() + " not resident");
}

void BufferManager::SetScore(const BlobId& id, float score) {
  MutexLock lock(mu_);
  scores_[id] = score;
}

float BufferManager::GetScore(const BlobId& id) const {
  MutexLock lock(mu_);
  auto it = scores_.find(id);
  return it == scores_.end() ? 0.0f : it->second;
}

Status BufferManager::Move(const BlobId& id, std::size_t from, std::size_t to,
                           sim::SimTime now, sim::SimTime* done) {
  sim::SimTime read_done = now;
  auto data = RunWithRetry(retry_, now, &read_done,
                           [&](double start, double* attempt_done) {
                             return tiers_[from]->Get(id, start, attempt_done);
                           });
  MM_RETURN_IF_ERROR(data.status());
  MM_RETURN_IF_ERROR(RunWithRetry(
      retry_, read_done, done, [&](double start, double* attempt_done) {
        return tiers_[to]->Put(id, std::move(data).value(), start,
                               attempt_done);
      }));
  MergeDone(read_done, done);
  return tiers_[from]->Erase(id);
}

bool BufferManager::MakeRoom(std::size_t t, std::uint64_t needed,
                             float incoming_score, bool allow_ties,
                             sim::SimTime now, sim::SimTime* done) {
  if (tiers_[t]->capacity() < needed) return false;  // 0 once failed
  if (t + 1 >= tiers_.size()) {
    // Lowest tier: nothing to demote into. Room only if eviction targets
    // exist is a caller concern (stage-out); report failure here.
    return tiers_[t]->free_bytes() >= needed;
  }
  // Candidate victims: resident blobs scoring below the incoming page,
  // lowest score first.
  std::vector<std::pair<float, BlobId>> victims;
  for (const BlobId& id : tiers_[t]->ListBlobs()) {
    auto it = scores_.find(id);
    float s = it == scores_.end() ? 0.0f : it->second;
    if (s < incoming_score || (allow_ties && s <= incoming_score)) {
      victims.emplace_back(s, id);
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [score, id] : victims) {
    if (tiers_[t]->free_bytes() >= needed) break;
    std::uint64_t size = tiers_[t]->BlobSize(id);
    // Ensure the next tier can take it (recursively making room there).
    if (tiers_[t + 1]->free_bytes() < size &&
        !MakeRoom(t + 1, size, score, /*allow_ties=*/true, now, done)) {
      continue;
    }
    if (!Move(id, t, t + 1, now, done).ok()) continue;
    demotions_->Inc();
  }
  return tiers_[t]->free_bytes() >= needed;
}

int BufferManager::Rebalance(sim::SimTime now, sim::SimTime* done) {
  MutexLock lock(mu_);
  int moved = 0;
  // Promote pass: walk slower tiers and pull the highest-scoring blobs into
  // any free space above them.
  for (std::size_t t = tiers_.size(); t-- > 1;) {
    if (tiers_[t]->failed()) continue;
    std::vector<std::pair<float, BlobId>> candidates;
    for (const BlobId& id : tiers_[t]->ListBlobs()) {
      auto it = scores_.find(id);
      float s = it == scores_.end() ? 0.0f : it->second;
      if (s > 0.0f) candidates.emplace_back(s, id);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [score, id] : candidates) {
      std::uint64_t size = tiers_[t]->BlobSize(id);
      // Find the fastest live tier with room.
      for (std::size_t up = 0; up < t; ++up) {
        if (!tiers_[up]->failed() && tiers_[up]->free_bytes() >= size) {
          if (Move(id, t, up, now, done).ok()) {
            ++moved;
            promotions_->Inc();
          }
          break;
        }
      }
    }
  }
  std::vector<PendingFailure> failures = CollectFailuresLocked();
  lock.Unlock();
  NotifyFailures(std::move(failures), now);
  return moved;
}

double BufferManager::EstimateReadSeconds(const BlobId& id,
                                          std::uint64_t bytes) const {
  MutexLock lock(mu_);
  const TierStore* slowest_live = nullptr;
  for (const auto& t : tiers_) {
    if (t->failed()) continue;
    if (t->Contains(id)) return t->device().ReadDuration(bytes);
    slowest_live = t.get();
  }
  if (slowest_live != nullptr) {
    return slowest_live->device().ReadDuration(bytes);
  }
  return tiers_.back()->device().ReadDuration(bytes);
}

std::vector<BufferManager::PendingFailure>
BufferManager::CollectFailuresLocked() {
  std::vector<PendingFailure> out;
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    if (tiers_[t]->failed() && !tier_drained_[t]) {
      tier_drained_[t] = true;
      PendingFailure failure{tiers_[t]->kind(), tiers_[t]->FailAndDrain()};
      for (const BlobId& id : failure.lost) scores_.erase(id);
      out.push_back(std::move(failure));
    }
  }
  return out;
}

void BufferManager::NotifyFailures(std::vector<PendingFailure> failures,
                                   sim::SimTime now) {
  if (failures.empty()) return;
  TierFailureHandler handler;
  {
    MutexLock lock(mu_);
    handler = failure_handler_;
  }
  if (!handler) return;
  for (const PendingFailure& failure : failures) {
    handler(failure.kind, failure.lost, now);
  }
}

}  // namespace mm::storage
