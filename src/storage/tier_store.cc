#include "mm/storage/tier_store.h"

#include <algorithm>
#include <cstring>

namespace mm::storage {

Status TierStore::Put(const BlobId& id, std::vector<std::uint8_t> data,
                      sim::SimTime now, sim::SimTime* done) {
  std::uint64_t size = data.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = blobs_.find(id);
    std::uint64_t old_size = it == blobs_.end() ? 0 : it->second.size();
    if (used_ - old_size + size > capacity_) {
      return ResourceExhausted("tier " +
                               std::string(sim::TierKindName(kind())) +
                               " full: " + std::to_string(used_) + "/" +
                               std::to_string(capacity_) + " used, need " +
                               std::to_string(size));
    }
    used_ = used_ - old_size + size;
    blobs_[id] = std::move(data);
  }
  sim::SimTime end = device_->Write(now, size);
  if (done != nullptr) *done = end;
  return Status::Ok();
}

Status TierStore::PutPartial(const BlobId& id, std::uint64_t offset,
                             const std::vector<std::uint8_t>& data,
                             sim::SimTime now, sim::SimTime* done) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = blobs_.find(id);
    if (it == blobs_.end()) {
      return NotFound("blob " + id.ToString() + " not in tier");
    }
    if (offset + data.size() > it->second.size()) {
      return OutOfRange("partial write past end of blob " + id.ToString());
    }
    std::memcpy(it->second.data() + offset, data.data(), data.size());
  }
  sim::SimTime end = device_->Write(now, data.size());
  if (done != nullptr) *done = end;
  return Status::Ok();
}

StatusOr<std::vector<std::uint8_t>> TierStore::Get(const BlobId& id,
                                                   sim::SimTime now,
                                                   sim::SimTime* done) const {
  std::vector<std::uint8_t> copy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = blobs_.find(id);
    if (it == blobs_.end()) {
      return NotFound("blob " + id.ToString() + " not in tier");
    }
    copy = it->second;
  }
  sim::SimTime end = device_->Read(now, copy.size());
  if (done != nullptr) *done = end;
  return copy;
}

StatusOr<std::vector<std::uint8_t>> TierStore::GetPartial(
    const BlobId& id, std::uint64_t offset, std::uint64_t size,
    sim::SimTime now, sim::SimTime* done) const {
  std::vector<std::uint8_t> copy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = blobs_.find(id);
    if (it == blobs_.end()) {
      return NotFound("blob " + id.ToString() + " not in tier");
    }
    if (offset + size > it->second.size()) {
      return OutOfRange("partial read past end of blob " + id.ToString());
    }
    copy.assign(it->second.begin() + static_cast<std::ptrdiff_t>(offset),
                it->second.begin() + static_cast<std::ptrdiff_t>(offset + size));
  }
  sim::SimTime end = device_->Read(now, size);
  if (done != nullptr) *done = end;
  return copy;
}

Status TierStore::Erase(const BlobId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return NotFound("blob " + id.ToString() + " not in tier");
  }
  used_ -= it->second.size();
  blobs_.erase(it);
  return Status::Ok();
}

bool TierStore::Contains(const BlobId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return blobs_.count(id) > 0;
}

std::uint64_t TierStore::BlobSize(const BlobId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blobs_.find(id);
  return it == blobs_.end() ? 0 : it->second.size();
}

std::vector<BlobId> TierStore::ListBlobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BlobId> ids;
  ids.reserve(blobs_.size());
  for (const auto& [id, _] : blobs_) ids.push_back(id);
  return ids;
}

}  // namespace mm::storage
