#include "mm/storage/tier_store.h"

#include <algorithm>
#include <cstring>

#include "mm/util/hash.h"

namespace mm::storage {

Status TierStore::InjectFault(bool is_write, sim::SimTime now,
                              sim::SimTime* done, double* time_factor) const {
  if (failed_.load(std::memory_order_acquire)) {
    return Unavailable("tier " + std::string(sim::TierKindName(kind())) +
                       " has failed");
  }
  if (injector_ == nullptr) return Status::Ok();
  sim::FaultInjector::Decision d = injector_->OnDeviceOp(kind());
  switch (d.kind) {
    case sim::FaultInjector::Decision::Kind::kPermanent:
      failed_.store(true, std::memory_order_release);
      return Unavailable("tier " + std::string(sim::TierKindName(kind())) +
                         " has failed");
    case sim::FaultInjector::Decision::Kind::kTransient: {
      // A failed attempt still occupies the device for its setup latency
      // (scaled if the same op also drew a spike).
      double lat = is_write ? device_->spec().write_latency_s
                            : device_->spec().read_latency_s;
      sim::SimTime end = device_->Stall(now, lat * d.spike_factor);
      if (done != nullptr) *done = std::max(*done, end);
      return IoError("injected transient fault on tier " +
                     std::string(sim::TierKindName(kind())));
    }
    case sim::FaultInjector::Decision::Kind::kOk:
      break;
  }
  *time_factor = d.spike_factor;
  return Status::Ok();
}

Status TierStore::Put(const BlobId& id, std::vector<std::uint8_t>&& data,
                      sim::SimTime now, sim::SimTime* done) {
  double factor = 1.0;
  MM_RETURN_IF_ERROR(InjectFault(/*is_write=*/true, now, done, &factor));
  std::uint64_t size = data.size();
  {
    MutexLock lock(mu_);
    auto it = blobs_.find(id);
    std::uint64_t old_size = it == blobs_.end() ? 0 : it->second.size();
    if (used_ - old_size + size > capacity_) {
      return ResourceExhausted("tier " +
                               std::string(sim::TierKindName(kind())) +
                               " full: " + std::to_string(used_) + "/" +
                               std::to_string(capacity_) + " used, need " +
                               std::to_string(size));
    }
    used_ = used_ - old_size + size;
    blobs_[id] = std::move(data);
  }
  sim::SimTime end = device_->Write(now, size, factor);
  if (done != nullptr) *done = end;
  return Status::Ok();
}

Status TierStore::PutPartial(const BlobId& id, std::uint64_t offset,
                             const std::vector<std::uint8_t>& data,
                             sim::SimTime now, sim::SimTime* done) {
  double factor = 1.0;
  MM_RETURN_IF_ERROR(InjectFault(/*is_write=*/true, now, done, &factor));
  {
    MutexLock lock(mu_);
    auto it = blobs_.find(id);
    if (it == blobs_.end()) {
      return NotFound("blob " + id.ToString() + " not in tier");
    }
    // Overflow-safe bounds check: `offset + data.size()` could wrap.
    if (offset > it->second.size() ||
        data.size() > it->second.size() - offset) {
      return OutOfRange("partial write past end of blob " + id.ToString());
    }
    std::memcpy(it->second.data() + offset, data.data(), data.size());
  }
  sim::SimTime end = device_->Write(now, data.size(), factor);
  if (done != nullptr) *done = end;
  return Status::Ok();
}

StatusOr<std::vector<std::uint8_t>> TierStore::Get(const BlobId& id,
                                                   sim::SimTime now,
                                                   sim::SimTime* done) const {
  double factor = 1.0;
  MM_RETURN_IF_ERROR(InjectFault(/*is_write=*/false, now, done, &factor));
  std::vector<std::uint8_t> copy;
  {
    MutexLock lock(mu_);
    auto it = blobs_.find(id);
    if (it == blobs_.end()) {
      return NotFound("blob " + id.ToString() + " not in tier");
    }
    copy = it->second;
  }
  sim::SimTime end = device_->Read(now, copy.size(), factor);
  if (done != nullptr) *done = end;
  return copy;
}

Status TierStore::GetInto(const BlobId& id, std::vector<std::uint8_t>* out,
                          sim::SimTime now, sim::SimTime* done) const {
  double factor = 1.0;
  MM_RETURN_IF_ERROR(InjectFault(/*is_write=*/false, now, done, &factor));
  std::uint64_t size = 0;
  {
    MutexLock lock(mu_);
    auto it = blobs_.find(id);
    if (it == blobs_.end()) {
      return NotFound("blob " + id.ToString() + " not in tier");
    }
    out->assign(it->second.begin(), it->second.end());
    size = it->second.size();
  }
  sim::SimTime end = device_->Read(now, size, factor);
  if (done != nullptr) *done = end;
  return Status::Ok();
}

StatusOr<std::vector<std::uint8_t>> TierStore::GetPartial(
    const BlobId& id, std::uint64_t offset, std::uint64_t size,
    sim::SimTime now, sim::SimTime* done) const {
  double factor = 1.0;
  MM_RETURN_IF_ERROR(InjectFault(/*is_write=*/false, now, done, &factor));
  std::vector<std::uint8_t> copy;
  {
    MutexLock lock(mu_);
    auto it = blobs_.find(id);
    if (it == blobs_.end()) {
      return NotFound("blob " + id.ToString() + " not in tier");
    }
    // Overflow-safe bounds check: `offset + size` could wrap.
    if (offset > it->second.size() || size > it->second.size() - offset) {
      return OutOfRange("partial read past end of blob " + id.ToString());
    }
    copy.assign(it->second.begin() + static_cast<std::ptrdiff_t>(offset),
                it->second.begin() + static_cast<std::ptrdiff_t>(offset + size));
  }
  sim::SimTime end = device_->Read(now, size, factor);
  if (done != nullptr) *done = end;
  return copy;
}

Status TierStore::Erase(const BlobId& id) {
  MutexLock lock(mu_);
  auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return NotFound("blob " + id.ToString() + " not in tier");
  }
  used_ -= it->second.size();
  blobs_.erase(it);
  return Status::Ok();
}

bool TierStore::Contains(const BlobId& id) const {
  MutexLock lock(mu_);
  return blobs_.count(id) > 0;
}

std::uint64_t TierStore::BlobSize(const BlobId& id) const {
  MutexLock lock(mu_);
  auto it = blobs_.find(id);
  return it == blobs_.end() ? 0 : it->second.size();
}

std::vector<BlobId> TierStore::ListBlobs() const {
  MutexLock lock(mu_);
  std::vector<BlobId> ids;
  ids.reserve(blobs_.size());
  for (const auto& [id, _] : blobs_) ids.push_back(id);
  return ids;
}

std::vector<BlobId> TierStore::FailAndDrain() {
  failed_.store(true, std::memory_order_release);
  MutexLock lock(mu_);
  std::vector<BlobId> ids;
  ids.reserve(blobs_.size());
  for (const auto& [id, _] : blobs_) ids.push_back(id);
  blobs_.clear();
  used_ = 0;
  return ids;
}

StatusOr<std::uint32_t> TierStore::Checksum(const BlobId& id) const {
  MutexLock lock(mu_);
  auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return NotFound("blob " + id.ToString() + " not in tier");
  }
  return Crc32(it->second);
}

Status TierStore::CorruptBlob(const BlobId& id, std::uint64_t offset) {
  MutexLock lock(mu_);
  auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return NotFound("blob " + id.ToString() + " not in tier");
  }
  if (offset >= it->second.size()) {
    return OutOfRange("corruption offset past end of blob " + id.ToString());
  }
  it->second[offset] ^= 0xFF;
  return Status::Ok();
}

}  // namespace mm::storage
