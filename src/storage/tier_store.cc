#include "mm/storage/tier_store.h"

#include <algorithm>
#include <cstring>

#include "mm/util/hash.h"

namespace mm::storage {

namespace {

// Per-tier metric handles are resolved once per store; the names are spelt
// out per kind so they stay literal (lint rule MML006 validates literals).
telemetry::Counter* TierReadCounter(telemetry::NodeSink sink,
                                    sim::TierKind kind) {
  switch (kind) {
    case sim::TierKind::kDram:
      return sink.metrics->GetCounter("mm.tier.dram_read_bytes");
    case sim::TierKind::kNvme:
      return sink.metrics->GetCounter("mm.tier.nvme_read_bytes");
    case sim::TierKind::kSsd:
      return sink.metrics->GetCounter("mm.tier.ssd_read_bytes");
    case sim::TierKind::kHdd:
      return sink.metrics->GetCounter("mm.tier.hdd_read_bytes");
    default:
      return sink.metrics->GetCounter("mm.tier.pfs_read_bytes");
  }
}

telemetry::Counter* TierWriteCounter(telemetry::NodeSink sink,
                                     sim::TierKind kind) {
  switch (kind) {
    case sim::TierKind::kDram:
      return sink.metrics->GetCounter("mm.tier.dram_write_bytes");
    case sim::TierKind::kNvme:
      return sink.metrics->GetCounter("mm.tier.nvme_write_bytes");
    case sim::TierKind::kSsd:
      return sink.metrics->GetCounter("mm.tier.ssd_write_bytes");
    case sim::TierKind::kHdd:
      return sink.metrics->GetCounter("mm.tier.hdd_write_bytes");
    default:
      return sink.metrics->GetCounter("mm.tier.pfs_write_bytes");
  }
}

}  // namespace

TierStore::TierStore(sim::Device* device, std::uint64_t capacity,
                     sim::FaultInjector* injector, telemetry::NodeSink sink)
    : device_(device),
      capacity_(capacity),
      injector_(injector),
      sink_(sink),
      read_bytes_(TierReadCounter(sink, device->kind())),
      write_bytes_(TierWriteCounter(sink, device->kind())) {}

void TierStore::Record(bool is_write, std::uint64_t bytes, sim::SimTime now,
                       sim::SimTime done) const {
  (is_write ? write_bytes_ : read_bytes_)->Inc(bytes);
  sink_.trace->Complete(is_write ? "tier_write" : "tier_read", "tier",
                        sink_.node, static_cast<int>(kind()), now, done);
}

Status TierStore::InjectFault(bool is_write, sim::SimTime now,
                              sim::SimTime* done, double* time_factor) const {
  if (failed_.load(std::memory_order_acquire)) {
    return Unavailable("tier " + std::string(sim::TierKindName(kind())) +
                       " has failed");
  }
  if (injector_ == nullptr) return Status::Ok();
  sim::FaultInjector::Decision d = injector_->OnDeviceOp(kind());
  switch (d.kind) {
    case sim::FaultInjector::Decision::Kind::kPermanent:
      failed_.store(true, std::memory_order_release);
      return Unavailable("tier " + std::string(sim::TierKindName(kind())) +
                         " has failed");
    case sim::FaultInjector::Decision::Kind::kTransient: {
      // A failed attempt still occupies the device for its setup latency
      // (scaled if the same op also drew a spike).
      double lat = is_write ? device_->spec().write_latency_s
                            : device_->spec().read_latency_s;
      sim::SimTime end = device_->Stall(now, lat * d.spike_factor);
      if (done != nullptr) *done = std::max(*done, end);
      return IoError("injected transient fault on tier " +
                     std::string(sim::TierKindName(kind())));
    }
    case sim::FaultInjector::Decision::Kind::kOk:
      break;
  }
  *time_factor = d.spike_factor;
  return Status::Ok();
}

Status TierStore::Put(const BlobId& id, std::vector<std::uint8_t>&& data,
                      sim::SimTime now, sim::SimTime* done) {
  double factor = 1.0;
  MM_RETURN_IF_ERROR(InjectFault(/*is_write=*/true, now, done, &factor));
  std::uint64_t size = data.size();
  {
    MutexLock lock(mu_);
    auto it = blobs_.find(id);
    std::uint64_t old_size = it == blobs_.end() ? 0 : it->second.size();
    if (used_ - old_size + size > capacity_) {
      return ResourceExhausted("tier " +
                               std::string(sim::TierKindName(kind())) +
                               " full: " + std::to_string(used_) + "/" +
                               std::to_string(capacity_) + " used, need " +
                               std::to_string(size));
    }
    used_ = used_ - old_size + size;
    blobs_[id] = std::move(data);
  }
  sim::SimTime end = device_->Write(now, size, factor);
  if (done != nullptr) *done = end;
  Record(/*is_write=*/true, size, now, end);
  return Status::Ok();
}

Status TierStore::PutPartial(const BlobId& id, std::uint64_t offset,
                             const std::vector<std::uint8_t>& data,
                             sim::SimTime now, sim::SimTime* done) {
  double factor = 1.0;
  MM_RETURN_IF_ERROR(InjectFault(/*is_write=*/true, now, done, &factor));
  {
    MutexLock lock(mu_);
    auto it = blobs_.find(id);
    if (it == blobs_.end()) {
      return NotFound("blob " + id.ToString() + " not in tier");
    }
    // Overflow-safe bounds check: `offset + data.size()` could wrap.
    if (offset > it->second.size() ||
        data.size() > it->second.size() - offset) {
      return OutOfRange("partial write past end of blob " + id.ToString());
    }
    std::memcpy(it->second.data() + offset, data.data(), data.size());
  }
  sim::SimTime end = device_->Write(now, data.size(), factor);
  if (done != nullptr) *done = end;
  Record(/*is_write=*/true, data.size(), now, end);
  return Status::Ok();
}

StatusOr<std::vector<std::uint8_t>> TierStore::Get(const BlobId& id,
                                                   sim::SimTime now,
                                                   sim::SimTime* done) const {
  double factor = 1.0;
  MM_RETURN_IF_ERROR(InjectFault(/*is_write=*/false, now, done, &factor));
  std::vector<std::uint8_t> copy;
  {
    MutexLock lock(mu_);
    auto it = blobs_.find(id);
    if (it == blobs_.end()) {
      return NotFound("blob " + id.ToString() + " not in tier");
    }
    copy = it->second;
  }
  sim::SimTime end = device_->Read(now, copy.size(), factor);
  if (done != nullptr) *done = end;
  Record(/*is_write=*/false, copy.size(), now, end);
  return copy;
}

Status TierStore::GetInto(const BlobId& id, std::vector<std::uint8_t>* out,
                          sim::SimTime now, sim::SimTime* done) const {
  double factor = 1.0;
  MM_RETURN_IF_ERROR(InjectFault(/*is_write=*/false, now, done, &factor));
  std::uint64_t size = 0;
  {
    MutexLock lock(mu_);
    auto it = blobs_.find(id);
    if (it == blobs_.end()) {
      return NotFound("blob " + id.ToString() + " not in tier");
    }
    out->assign(it->second.begin(), it->second.end());
    size = it->second.size();
  }
  sim::SimTime end = device_->Read(now, size, factor);
  if (done != nullptr) *done = end;
  Record(/*is_write=*/false, size, now, end);
  return Status::Ok();
}

StatusOr<std::vector<std::uint8_t>> TierStore::GetPartial(
    const BlobId& id, std::uint64_t offset, std::uint64_t size,
    sim::SimTime now, sim::SimTime* done) const {
  double factor = 1.0;
  MM_RETURN_IF_ERROR(InjectFault(/*is_write=*/false, now, done, &factor));
  std::vector<std::uint8_t> copy;
  {
    MutexLock lock(mu_);
    auto it = blobs_.find(id);
    if (it == blobs_.end()) {
      return NotFound("blob " + id.ToString() + " not in tier");
    }
    // Overflow-safe bounds check: `offset + size` could wrap.
    if (offset > it->second.size() || size > it->second.size() - offset) {
      return OutOfRange("partial read past end of blob " + id.ToString());
    }
    copy.assign(it->second.begin() + static_cast<std::ptrdiff_t>(offset),
                it->second.begin() + static_cast<std::ptrdiff_t>(offset + size));
  }
  sim::SimTime end = device_->Read(now, size, factor);
  if (done != nullptr) *done = end;
  Record(/*is_write=*/false, size, now, end);
  return copy;
}

Status TierStore::Erase(const BlobId& id) {
  MutexLock lock(mu_);
  auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return NotFound("blob " + id.ToString() + " not in tier");
  }
  used_ -= it->second.size();
  blobs_.erase(it);
  return Status::Ok();
}

bool TierStore::Contains(const BlobId& id) const {
  MutexLock lock(mu_);
  return blobs_.count(id) > 0;
}

std::uint64_t TierStore::BlobSize(const BlobId& id) const {
  MutexLock lock(mu_);
  auto it = blobs_.find(id);
  return it == blobs_.end() ? 0 : it->second.size();
}

std::vector<BlobId> TierStore::ListBlobs() const {
  MutexLock lock(mu_);
  std::vector<BlobId> ids;
  ids.reserve(blobs_.size());
  for (const auto& [id, _] : blobs_) ids.push_back(id);
  return ids;
}

std::vector<BlobId> TierStore::FailAndDrain() {
  failed_.store(true, std::memory_order_release);
  MutexLock lock(mu_);
  std::vector<BlobId> ids;
  ids.reserve(blobs_.size());
  for (const auto& [id, _] : blobs_) ids.push_back(id);
  blobs_.clear();
  used_ = 0;
  return ids;
}

StatusOr<std::uint32_t> TierStore::Checksum(const BlobId& id) const {
  MutexLock lock(mu_);
  auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return NotFound("blob " + id.ToString() + " not in tier");
  }
  return Crc32(it->second);
}

Status TierStore::CorruptBlob(const BlobId& id, std::uint64_t offset) {
  MutexLock lock(mu_);
  auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return NotFound("blob " + id.ToString() + " not in tier");
  }
  if (offset >= it->second.size()) {
    return OutOfRange("corruption offset past end of blob " + id.ToString());
  }
  it->second[offset] ^= 0xFF;
  return Status::Ok();
}

}  // namespace mm::storage
