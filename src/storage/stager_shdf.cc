// "SHDF": a real, minimal HDF5-like single-file container. One file holds
// multiple named datasets (the URL fragment names the dataset, mirroring
// "hdf5:///path/to/df.h5:mygroup" from the paper). Layout:
//
//   [magic "SHDF0001" (8B)] [index_offset u64] [index_count u64]
//   <data region: datasets stored contiguously>
//   <index at index_offset: per entry {name_len u32, name bytes,
//                                      offset u64, size u64}>
//
// Datasets are fixed-size once created (like an HDF5 dataspace); creating a
// new dataset appends its extent to the data region and rewrites the index
// at the new end of file.
#include <cstring>
#include <filesystem>
#include <fstream>

#include "mm/storage/stager.h"
#include "mm/util/mutex.h"

namespace mm::storage {

namespace {

constexpr char kMagic[8] = {'S', 'H', 'D', 'F', '0', '0', '0', '1'};
constexpr std::uint64_t kHeaderSize = 8 + 8 + 8;

struct IndexEntry {
  std::string name;
  std::uint64_t offset;
  std::uint64_t size;
};

struct Container {
  std::vector<IndexEntry> entries;
  std::uint64_t data_end = kHeaderSize;  // first byte past the data region

  const IndexEntry* Find(const std::string& name) const {
    for (const auto& e : entries) {
      if (e.name == name) return &e;
    }
    return nullptr;
  }
};

Status LoadContainer(const std::string& path, Container* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("no such container: " + path);
  char magic[8];
  std::uint64_t index_offset = 0, index_count = 0;
  in.read(magic, 8);
  in.read(reinterpret_cast<char*>(&index_offset), 8);
  in.read(reinterpret_cast<char*>(&index_count), 8);
  if (!in || std::memcmp(magic, kMagic, 8) != 0) {
    return InvalidArgument("not an SHDF container: " + path);
  }
  in.seekg(static_cast<std::streamoff>(index_offset));
  out->entries.clear();
  out->data_end = index_offset;
  for (std::uint64_t i = 0; i < index_count; ++i) {
    std::uint32_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), 4);
    if (!in || name_len > 4096) return IoError("corrupt SHDF index: " + path);
    IndexEntry entry;
    entry.name.resize(name_len);
    in.read(entry.name.data(), name_len);
    in.read(reinterpret_cast<char*>(&entry.offset), 8);
    in.read(reinterpret_cast<char*>(&entry.size), 8);
    if (!in) return IoError("corrupt SHDF index: " + path);
    out->entries.push_back(std::move(entry));
  }
  return Status::Ok();
}

Status SaveIndex(const std::string& path, const Container& c) {
  std::fstream out(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!out) return IoError("cannot open container: " + path);
  std::uint64_t index_offset = c.data_end;
  std::uint64_t index_count = c.entries.size();
  out.seekp(0);
  out.write(kMagic, 8);
  out.write(reinterpret_cast<const char*>(&index_offset), 8);
  out.write(reinterpret_cast<const char*>(&index_count), 8);
  out.seekp(static_cast<std::streamoff>(index_offset));
  for (const auto& e : c.entries) {
    std::uint32_t name_len = static_cast<std::uint32_t>(e.name.size());
    out.write(reinterpret_cast<const char*>(&name_len), 4);
    out.write(e.name.data(), name_len);
    out.write(reinterpret_cast<const char*>(&e.offset), 8);
    out.write(reinterpret_cast<const char*>(&e.size), 8);
  }
  if (!out) return IoError("cannot write SHDF index: " + path);
  return Status::Ok();
}

class ShdfStager final : public Stager {
 public:
  StatusOr<std::uint64_t> Size(const Uri& uri) override {
    MutexLock lock(mu_);
    Container c;
    MM_RETURN_IF_ERROR(LoadContainer(uri.path, &c));
    const IndexEntry* e = c.Find(DatasetName(uri));
    if (e == nullptr) {
      return NotFound("no dataset '" + DatasetName(uri) + "' in " + uri.path);
    }
    return e->size;
  }

  Status Create(const Uri& uri, std::uint64_t size) override {
    MutexLock lock(mu_);
    Container c;
    if (!std::filesystem::exists(uri.path)) {
      std::error_code ec;
      auto parent = std::filesystem::path(uri.path).parent_path();
      if (!parent.empty()) std::filesystem::create_directories(parent, ec);
      std::ofstream out(uri.path, std::ios::binary | std::ios::trunc);
      if (!out) return IoError("cannot create container: " + uri.path);
      // Empty container header.
      std::uint64_t zero = kHeaderSize, count = 0;
      out.write(kMagic, 8);
      out.write(reinterpret_cast<const char*>(&zero), 8);
      out.write(reinterpret_cast<const char*>(&count), 8);
    }
    MM_RETURN_IF_ERROR(LoadContainer(uri.path, &c));
    std::string name = DatasetName(uri);
    if (c.Find(name) != nullptr) {
      return AlreadyExists("dataset '" + name + "' already in " + uri.path);
    }
    IndexEntry entry{name, c.data_end, size};
    c.entries.push_back(entry);
    c.data_end += size;
    // Extend the file so the new extent is addressable (zero-filled).
    std::error_code ec;
    std::filesystem::resize_file(uri.path, c.data_end, ec);
    if (ec) return IoError("cannot extend container: " + uri.path);
    return SaveIndex(uri.path, c);
  }

  Status Read(const Uri& uri, std::uint64_t offset, std::uint64_t size,
              std::vector<std::uint8_t>* out) override {
    MutexLock lock(mu_);
    Container c;
    MM_RETURN_IF_ERROR(LoadContainer(uri.path, &c));
    const IndexEntry* e = c.Find(DatasetName(uri));
    if (e == nullptr) {
      return NotFound("no dataset '" + DatasetName(uri) + "' in " + uri.path);
    }
    if (offset + size > e->size) {
      return OutOfRange("read past end of dataset '" + e->name + "'");
    }
    std::ifstream in(uri.path, std::ios::binary);
    in.seekg(static_cast<std::streamoff>(e->offset + offset));
    out->resize(size);
    in.read(reinterpret_cast<char*>(out->data()),
            static_cast<std::streamsize>(size));
    if (in.gcount() != static_cast<std::streamsize>(size)) {
      return IoError("short read from container: " + uri.path);
    }
    return Status::Ok();
  }

  Status Write(const Uri& uri, std::uint64_t offset, const std::uint8_t* data,
               std::uint64_t size) override {
    MutexLock lock(mu_);
    Container c;
    MM_RETURN_IF_ERROR(LoadContainer(uri.path, &c));
    const IndexEntry* e = c.Find(DatasetName(uri));
    if (e == nullptr) {
      return NotFound("no dataset '" + DatasetName(uri) + "' in " + uri.path);
    }
    if (offset + size > e->size) {
      return OutOfRange("write past end of dataset '" + e->name + "'");
    }
    std::fstream out(uri.path, std::ios::binary | std::ios::in | std::ios::out);
    if (!out) return IoError("cannot open container: " + uri.path);
    out.seekp(static_cast<std::streamoff>(e->offset + offset));
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
    if (!out) return IoError("short write to container: " + uri.path);
    return Status::Ok();
  }

  bool Exists(const Uri& uri) override {
    MutexLock lock(mu_);
    Container c;
    if (!LoadContainer(uri.path, &c).ok()) return false;
    return c.Find(DatasetName(uri)) != nullptr;
  }

  Status Remove(const Uri& uri) override {
    MutexLock lock(mu_);
    Container c;
    MM_RETURN_IF_ERROR(LoadContainer(uri.path, &c));
    std::string name = DatasetName(uri);
    for (auto it = c.entries.begin(); it != c.entries.end(); ++it) {
      if (it->name == name) {
        // Space is not compacted (like HDF5 without h5repack); the entry
        // simply disappears from the index.
        c.entries.erase(it);
        return SaveIndex(uri.path, c);
      }
    }
    return NotFound("no dataset '" + name + "' in " + uri.path);
  }

 private:
  static std::string DatasetName(const Uri& uri) {
    return uri.fragment.empty() ? "default" : uri.fragment;
  }

  Mutex mu_;  // index read-modify-write cycles must not interleave
};

}  // namespace

std::unique_ptr<Stager> MakeShdfStager() {
  return std::make_unique<ShdfStager>();
}

}  // namespace mm::storage
