// "SPAR": a real, minimal parquet-like columnar format. Rows are tuples of
// float32 columns; on disk, rows are batched into row groups and each group
// stores its columns contiguously (column-major), as parquet does. The
// stager transposes between the application's row-major byte stream and the
// columnar file layout on every read/write — exercising the same
// (de)serialization code path the paper's parquet stager performs.
//
// The URL fragment carries the schema, e.g. "f4x3" = 3 float32 columns
// (12-byte rows). Default is "f4x1". Layout:
//
//   [magic "SPAR0001"] [ncols u32] [rows_per_group u32] [nrows u64]
//   <row groups back to back; group g holds rows [g*R, min((g+1)*R, nrows))
//    as ncols column chunks of (rows_in_group * 4) bytes each>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "mm/storage/stager.h"

namespace mm::storage {

namespace {

constexpr char kMagic[8] = {'S', 'P', 'A', 'R', '0', '0', '0', '1'};
constexpr std::uint64_t kHeaderSize = 8 + 4 + 4 + 8;
constexpr std::uint32_t kDefaultRowsPerGroup = 4096;
constexpr std::uint32_t kColBytes = 4;  // float32 columns

struct Header {
  std::uint32_t ncols = 1;
  std::uint32_t rows_per_group = kDefaultRowsPerGroup;
  std::uint64_t nrows = 0;

  std::uint32_t row_bytes() const { return ncols * kColBytes; }
  std::uint64_t RowsInGroup(std::uint64_t g) const {
    std::uint64_t begin = g * rows_per_group;
    std::uint64_t end = std::min<std::uint64_t>(begin + rows_per_group, nrows);
    return end > begin ? end - begin : 0;
  }
  /// Byte offset of row group g in the file.
  std::uint64_t GroupOffset(std::uint64_t g) const {
    return kHeaderSize +
           g * static_cast<std::uint64_t>(rows_per_group) * row_bytes();
  }
};

StatusOr<std::uint32_t> ParseSchema(const Uri& uri) {
  if (uri.fragment.empty()) return 1u;
  // Accept "f4xN".
  if (uri.fragment.rfind("f4x", 0) == 0) {
    try {
      int n = std::stoi(uri.fragment.substr(3));
      if (n >= 1 && n <= 1024) return static_cast<std::uint32_t>(n);
    } catch (const std::exception&) {
    }
  }
  return InvalidArgument("bad spar schema fragment: '" + uri.fragment + "'");
}

Status LoadHeader(const std::string& path, Header* h) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("no such spar file: " + path);
  char magic[8];
  in.read(magic, 8);
  in.read(reinterpret_cast<char*>(&h->ncols), 4);
  in.read(reinterpret_cast<char*>(&h->rows_per_group), 4);
  in.read(reinterpret_cast<char*>(&h->nrows), 8);
  if (!in || std::memcmp(magic, kMagic, 8) != 0) {
    return InvalidArgument("not a SPAR file: " + path);
  }
  return Status::Ok();
}

class SparStager final : public Stager {
 public:
  StatusOr<std::uint64_t> Size(const Uri& uri) override {
    Header h;
    MM_RETURN_IF_ERROR(LoadHeader(uri.path, &h));
    return h.nrows * h.row_bytes();
  }

  Status Create(const Uri& uri, std::uint64_t size) override {
    MM_ASSIGN_OR_RETURN(std::uint32_t ncols, ParseSchema(uri));
    Header h;
    h.ncols = ncols;
    if (size % h.row_bytes() != 0) {
      return InvalidArgument("spar object size must be a multiple of the row "
                             "size (" +
                             std::to_string(h.row_bytes()) + ")");
    }
    h.nrows = size / h.row_bytes();
    std::error_code ec;
    auto parent = std::filesystem::path(uri.path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
    std::ofstream out(uri.path, std::ios::binary | std::ios::trunc);
    if (!out) return IoError("cannot create spar file: " + uri.path);
    out.write(kMagic, 8);
    out.write(reinterpret_cast<const char*>(&h.ncols), 4);
    out.write(reinterpret_cast<const char*>(&h.rows_per_group), 4);
    out.write(reinterpret_cast<const char*>(&h.nrows), 8);
    out.close();
    std::filesystem::resize_file(uri.path, kHeaderSize + size, ec);
    if (ec) return IoError("cannot size spar file: " + uri.path);
    return Status::Ok();
  }

  Status Read(const Uri& uri, std::uint64_t offset, std::uint64_t size,
              std::vector<std::uint8_t>* out) override {
    Header h;
    MM_RETURN_IF_ERROR(LoadHeader(uri.path, &h));
    MM_RETURN_IF_ERROR(CheckRowAligned(h, offset, size));
    if (offset + size > h.nrows * h.row_bytes()) {
      return OutOfRange("read past end of spar object");
    }
    std::ifstream in(uri.path, std::ios::binary);
    if (!in) return IoError("cannot open spar file: " + uri.path);
    out->assign(size, 0);
    std::uint64_t row0 = offset / h.row_bytes();
    std::uint64_t rows = size / h.row_bytes();
    // Gather each requested row's columns from the column chunks.
    std::vector<std::uint8_t> group_buf;
    std::uint64_t loaded_group = ~0ULL;
    for (std::uint64_t r = 0; r < rows; ++r) {
      std::uint64_t row = row0 + r;
      std::uint64_t g = row / h.rows_per_group;
      if (g != loaded_group) {
        std::uint64_t rows_in_g = h.RowsInGroup(g);
        group_buf.resize(rows_in_g * h.row_bytes());
        in.seekg(static_cast<std::streamoff>(h.GroupOffset(g)));
        in.read(reinterpret_cast<char*>(group_buf.data()),
                static_cast<std::streamsize>(group_buf.size()));
        if (!in) return IoError("short read from spar file: " + uri.path);
        loaded_group = g;
      }
      std::uint64_t rows_in_g = h.RowsInGroup(g);
      std::uint64_t local = row - g * h.rows_per_group;
      for (std::uint32_t c = 0; c < h.ncols; ++c) {
        // Column chunk c starts at c * rows_in_g * 4 within the group.
        std::memcpy(out->data() + r * h.row_bytes() + c * kColBytes,
                    group_buf.data() + (c * rows_in_g + local) * kColBytes,
                    kColBytes);
      }
    }
    return Status::Ok();
  }

  Status Write(const Uri& uri, std::uint64_t offset, const std::uint8_t* data,
               std::uint64_t size) override {
    Header h;
    MM_RETURN_IF_ERROR(LoadHeader(uri.path, &h));
    MM_RETURN_IF_ERROR(CheckRowAligned(h, offset, size));
    if (offset + size > h.nrows * h.row_bytes()) {
      return OutOfRange("write past end of spar object");
    }
    std::fstream io(uri.path, std::ios::binary | std::ios::in | std::ios::out);
    if (!io) return IoError("cannot open spar file: " + uri.path);
    std::uint64_t row0 = offset / h.row_bytes();
    std::uint64_t rows = size / h.row_bytes();
    // Scatter row-major input into the column chunks group by group.
    std::uint64_t r = 0;
    while (r < rows) {
      std::uint64_t row = row0 + r;
      std::uint64_t g = row / h.rows_per_group;
      std::uint64_t rows_in_g = h.RowsInGroup(g);
      std::uint64_t local0 = row - g * h.rows_per_group;
      std::uint64_t span = std::min(rows - r, rows_in_g - local0);
      // Read-modify-write the touched group region per column.
      for (std::uint32_t c = 0; c < h.ncols; ++c) {
        std::vector<std::uint8_t> col(span * kColBytes);
        for (std::uint64_t i = 0; i < span; ++i) {
          std::memcpy(col.data() + i * kColBytes,
                      data + (r + i) * h.row_bytes() + c * kColBytes,
                      kColBytes);
        }
        std::uint64_t pos =
            h.GroupOffset(g) + (c * rows_in_g + local0) * kColBytes;
        io.seekp(static_cast<std::streamoff>(pos));
        io.write(reinterpret_cast<const char*>(col.data()),
                 static_cast<std::streamsize>(col.size()));
        if (!io) return IoError("short write to spar file: " + uri.path);
      }
      r += span;
    }
    return Status::Ok();
  }

  bool Exists(const Uri& uri) override {
    Header h;
    return LoadHeader(uri.path, &h).ok();
  }

  Status Remove(const Uri& uri) override {
    std::error_code ec;
    if (!std::filesystem::remove(uri.path, ec) || ec) {
      return NotFound("cannot remove: " + uri.path);
    }
    return Status::Ok();
  }

 private:
  static Status CheckRowAligned(const Header& h, std::uint64_t offset,
                                std::uint64_t size) {
    if (offset % h.row_bytes() != 0 || size % h.row_bytes() != 0) {
      return InvalidArgument(
          "spar access must be row-aligned (row size " +
          std::to_string(h.row_bytes()) + ", got offset " +
          std::to_string(offset) + " size " + std::to_string(size) + ")");
    }
    return Status::Ok();
  }
};

}  // namespace

std::unique_ptr<Stager> MakeSparStager() {
  return std::make_unique<SparStager>();
}

}  // namespace mm::storage
