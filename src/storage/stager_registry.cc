#include "mm/storage/stager.h"

namespace mm::storage {

StagerRegistry& StagerRegistry::Default() {
  static StagerRegistry* registry = [] {
    auto* r = new StagerRegistry();
    r->Register("posix", MakePosixStager());
    r->Register("file", MakePosixStager());  // alias used in paper examples
    r->Register("shdf", MakeShdfStager());
    r->Register("spar", MakeSparStager());
    return r;
  }();
  return *registry;
}

void StagerRegistry::Register(const std::string& scheme,
                              std::unique_ptr<Stager> stager) {
  stagers_[scheme] = std::move(stager);
}

StatusOr<Stager*> StagerRegistry::Get(const std::string& scheme) const {
  auto it = stagers_.find(scheme);
  if (it == stagers_.end()) {
    return NotFound("no stager registered for scheme '" + scheme + "'");
  }
  return it->second.get();
}

StatusOr<std::pair<Stager*, Uri>> StagerRegistry::Resolve(
    const std::string& key) const {
  MM_ASSIGN_OR_RETURN(Uri uri, ParseUri(key));
  MM_ASSIGN_OR_RETURN(Stager * stager, Get(uri.scheme));
  return std::make_pair(stager, uri);
}

}  // namespace mm::storage
