// Flat-file staging backend: object bytes map 1:1 to a file on disk.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "mm/storage/stager.h"

namespace mm::storage {

namespace {

class PosixStager final : public Stager {
 public:
  StatusOr<std::uint64_t> Size(const Uri& uri) override {
    std::error_code ec;
    auto size = std::filesystem::file_size(uri.path, ec);
    if (ec) return NotFound("no such file: " + uri.path);
    return static_cast<std::uint64_t>(size);
  }

  Status Create(const Uri& uri, std::uint64_t size) override {
    std::error_code ec;
    std::filesystem::path parent =
        std::filesystem::path(uri.path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
    std::ofstream out(uri.path, std::ios::binary | std::ios::trunc);
    if (!out) return IoError("cannot create file: " + uri.path);
    out.close();
    std::filesystem::resize_file(uri.path, size, ec);
    if (ec) return IoError("cannot size file: " + uri.path);
    return Status::Ok();
  }

  Status Read(const Uri& uri, std::uint64_t offset, std::uint64_t size,
              std::vector<std::uint8_t>* out) override {
    std::ifstream in(uri.path, std::ios::binary);
    if (!in) return NotFound("no such file: " + uri.path);
    in.seekg(static_cast<std::streamoff>(offset));
    out->resize(size);
    in.read(reinterpret_cast<char*>(out->data()),
            static_cast<std::streamsize>(size));
    if (in.gcount() != static_cast<std::streamsize>(size)) {
      return OutOfRange("short read from " + uri.path + " at offset " +
                        std::to_string(offset));
    }
    return Status::Ok();
  }

  Status Write(const Uri& uri, std::uint64_t offset, const std::uint8_t* data,
               std::uint64_t size) override {
    // in|out keeps existing content; create the file first if absent.
    if (!std::filesystem::exists(uri.path)) {
      MM_RETURN_IF_ERROR(Create(uri, 0));
    }
    std::fstream out(uri.path,
                     std::ios::binary | std::ios::in | std::ios::out);
    if (!out) return IoError("cannot open file for write: " + uri.path);
    out.seekp(static_cast<std::streamoff>(offset));
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
    if (!out) return IoError("short write to " + uri.path);
    return Status::Ok();
  }

  bool Exists(const Uri& uri) override {
    return std::filesystem::exists(uri.path);
  }

  Status Remove(const Uri& uri) override {
    std::error_code ec;
    if (!std::filesystem::remove(uri.path, ec) || ec) {
      return NotFound("cannot remove: " + uri.path);
    }
    return Status::Ok();
  }
};

}  // namespace

std::unique_ptr<Stager> MakePosixStager() {
  return std::make_unique<PosixStager>();
}

}  // namespace mm::storage
