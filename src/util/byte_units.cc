#include "mm/util/byte_units.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace mm {

StatusOr<std::uint64_t> ParseBytes(const std::string& text) {
  if (text.empty()) return InvalidArgument("empty byte-size string");
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    return InvalidArgument("unparseable byte size: '" + text + "'");
  }
  if (value < 0) return InvalidArgument("negative byte size: '" + text + "'");

  std::string suffix;
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    suffix += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  // Normalize "kib"/"kb"/"k" to a single letter.
  if (!suffix.empty() && suffix.back() == 'b') suffix.pop_back();
  if (!suffix.empty() && suffix.back() == 'i') suffix.pop_back();

  std::uint64_t mult = 1;
  if (suffix.empty()) {
    mult = 1;
  } else if (suffix == "k") {
    mult = kKiB;
  } else if (suffix == "m") {
    mult = kMiB;
  } else if (suffix == "g") {
    mult = kGiB;
  } else if (suffix == "t") {
    mult = kTiB;
  } else {
    return InvalidArgument("unknown byte-size suffix in '" + text + "'");
  }
  return static_cast<std::uint64_t>(value * static_cast<double>(mult));
}

std::string FormatBytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu%s",
                  static_cast<unsigned long long>(bytes), kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s", v, kUnits[unit]);
  }
  return buf;
}

}  // namespace mm
