#include "mm/util/uri.h"

namespace mm {

std::string Uri::ToString() const {
  std::string out = scheme + "://" + path;
  if (!fragment.empty()) out += ":" + fragment;
  return out;
}

StatusOr<Uri> ParseUri(const std::string& key) {
  if (key.empty()) return InvalidArgument("empty vector key");
  Uri uri;
  std::string rest = key;
  auto scheme_end = key.find("://");
  if (scheme_end != std::string::npos) {
    uri.scheme = key.substr(0, scheme_end);
    rest = key.substr(scheme_end + 3);
  } else {
    uri.scheme = "posix";
  }
  if (uri.scheme.empty()) return InvalidArgument("empty scheme in '" + key + "'");
  // The fragment separator is the last ':' that appears after the final '/'
  // so Windows-style or port-like colons inside directories don't confuse it.
  auto last_slash = rest.find_last_of('/');
  auto frag_sep = rest.find(':', last_slash == std::string::npos ? 0 : last_slash);
  if (frag_sep != std::string::npos) {
    uri.fragment = rest.substr(frag_sep + 1);
    rest = rest.substr(0, frag_sep);
  }
  uri.path = rest;
  if (uri.path.empty()) return InvalidArgument("empty path in '" + key + "'");
  return uri;
}

}  // namespace mm
