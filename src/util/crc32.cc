#include <array>

#include "mm/util/hash.h"

namespace mm {
namespace {

// Reflected CRC-32 lookup table for polynomial 0xEDB88320, built once.
constexpr std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = BuildCrcTable();

}  // namespace

std::uint32_t Crc32(const std::uint8_t* data, std::size_t size) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kCrcTable[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace mm
