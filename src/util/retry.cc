#include "mm/util/retry.h"

namespace mm {

StatusOr<RetryPolicy> RetryPolicy::FromYaml(const yaml::Node& node) {
  RetryPolicy p;
  if (node.IsMap()) {
    p.max_attempts =
        static_cast<int>(node.GetInt("max_attempts", p.max_attempts));
    p.initial_backoff_s =
        node.GetDouble("initial_backoff_s", p.initial_backoff_s);
    p.backoff_multiplier =
        node.GetDouble("backoff_multiplier", p.backoff_multiplier);
    p.max_backoff_s = node.GetDouble("max_backoff_s", p.max_backoff_s);
  }
  if (p.max_attempts < 1) return InvalidArgument("retry.max_attempts must be >= 1");
  if (p.initial_backoff_s < 0 || p.max_backoff_s < 0) {
    return InvalidArgument("retry backoff delays must be >= 0");
  }
  if (p.backoff_multiplier < 1.0) {
    return InvalidArgument("retry.backoff_multiplier must be >= 1");
  }
  return p;
}

}  // namespace mm
