#include "mm/util/logging.h"

#include <cstdlib>
#include <iostream>

namespace mm {

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(LogLevel::kWarn) {
  if (const char* env = std::getenv("MM_LOG_LEVEL")) {
    level_ = ParseLogLevel(env);
  }
}

void Logger::Write(LogLevel level, const std::string& module,
                   const std::string& message) {
  static const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR",
                                 "OFF"};
  MutexLock lock(mu_);
  std::cerr << "[" << kNames[static_cast<int>(level)] << "] " << module << ": "
            << message << "\n";
}

LogLevel ParseLogLevel(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

}  // namespace mm
