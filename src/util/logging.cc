#include "mm/util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <utility>

namespace mm {

namespace {

/// Per-thread prefix context (see SetThreadLogContext in logging.h).
struct ThreadLogContext {
  std::function<double()> sim_now;
  int node = -1;
  bool set = false;
};

ThreadLogContext& TlsContext() {
  thread_local ThreadLogContext ctx;
  return ctx;
}

}  // namespace

void SetThreadLogContext(std::function<double()> sim_now, int node) {
  ThreadLogContext& ctx = TlsContext();
  ctx.sim_now = std::move(sim_now);
  ctx.node = node;
  ctx.set = true;
}

void ClearThreadLogContext() {
  ThreadLogContext& ctx = TlsContext();
  ctx.sim_now = nullptr;
  ctx.node = -1;
  ctx.set = false;
}

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(LogLevel::kWarn) {
  // Runs exactly once, inside the magic-static init of Get(), before any
  // worker thread exists — no concurrent setenv can race it.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("MM_LOG_LEVEL")) {
    level_ = ParseLogLevel(env);
  }
}

void Logger::Write(LogLevel level, const std::string& module,
                   const std::string& message) {
  static const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR",
                                 "OFF"};
  // Build the prefix before taking the lock: the sim_now callback belongs
  // to the calling thread and must not run under the global log mutex.
  std::string prefix = "[";
  const ThreadLogContext& ctx = TlsContext();
  if (ctx.set) {
    char buf[48];
    if (ctx.sim_now) {
      std::snprintf(buf, sizeof(buf), "t=%.3fs ", ctx.sim_now());
      prefix += buf;
    }
    if (ctx.node >= 0) {
      std::snprintf(buf, sizeof(buf), "n%d ", ctx.node);
      prefix += buf;
    }
  }
  prefix += kNames[static_cast<int>(level)];
  MutexLock lock(mu_);
  std::cerr << prefix << "] " << module << ": " << message << "\n";
}

LogLevel ParseLogLevel(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

}  // namespace mm
