#include "mm/util/status.h"

namespace mm {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kPeerDead:
      return "PEER_DEAD";
  }
  return "UNKNOWN";
}

namespace detail {

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& extra) {
  std::ostringstream oss;
  oss << "MM_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!extra.empty()) oss << " — " << extra;
  throw std::logic_error(oss.str());
}

}  // namespace detail
}  // namespace mm
