#include "mm/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "mm/util/status.h"

namespace mm {

void StatAccumulator::Add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sorted_ = false;
}

double StatAccumulator::Mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double StatAccumulator::Stddev() const {
  if (samples_.size() < 2) return 0.0;
  double mean = Mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double StatAccumulator::Min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double StatAccumulator::Max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double StatAccumulator::Percentile(double p) const {
  // Empty-safe (0.0, like Mean): summaries of failed/skipped runs must not
  // abort the report that describes them. Out-of-range / NaN p clamps to
  // [0, 100] for the same reason (the !(p >= 0) form catches NaN too).
  if (samples_.empty()) return 0.0;
  if (!(p >= 0.0)) p = 0.0;
  if (p > 100.0) p = 100.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_[0];
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void StatAccumulator::Clear() {
  samples_.clear();
  sum_ = 0.0;
  sorted_ = true;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  MM_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render(bool csv) const {
  std::ostringstream oss;
  if (csv) {
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      if (i) oss << ",";
      oss << headers_[i];
    }
    oss << "\n";
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (i) oss << ",";
        oss << row[i];
      }
      oss << "\n";
    }
    return oss.str();
  }
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      oss << cells[i] << std::string(widths[i] - cells[i].size() + 2, ' ');
    }
    oss << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  oss << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace mm
