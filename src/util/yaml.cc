#include "mm/util/yaml.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "mm/util/byte_units.h"

namespace mm::yaml {

namespace {

const Node& NullNode() {
  static const Node node;
  return node;
}

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Strips a trailing comment that is not inside quotes.
std::string StripComment(const std::string& s) {
  bool in_single = false, in_double = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    if (c == '"' && !in_single) in_double = !in_double;
    if (c == '#' && !in_single && !in_double &&
        (i == 0 || s[i - 1] == ' ' || s[i - 1] == '\t')) {
      return s.substr(0, i);
    }
  }
  return s;
}

std::string Unquote(const std::string& s) {
  if (s.size() >= 2 && ((s.front() == '"' && s.back() == '"') ||
                        (s.front() == '\'' && s.back() == '\''))) {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

struct Line {
  int indent;
  std::string text;  // trimmed content
};

/// A scalar, or an inline flow list "[a, b]".
Node ParseValue(const std::string& raw) {
  std::string v = Trim(raw);
  if (v.size() >= 2 && v.front() == '[' && v.back() == ']') {
    Node list = Node::List();
    std::string inner = v.substr(1, v.size() - 2);
    std::string item;
    int depth = 0;
    for (char c : inner) {
      if (c == '[') ++depth;
      if (c == ']') --depth;
      if (c == ',' && depth == 0) {
        if (!Trim(item).empty()) list.Append(ParseValue(item));
        item.clear();
      } else {
        item += c;
      }
    }
    if (!Trim(item).empty()) list.Append(ParseValue(item));
    return list;
  }
  if (v.empty() || v == "~" || v == "null") return Node();
  return Node::Scalar(Unquote(v));
}

class Parser {
 public:
  explicit Parser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  StatusOr<Node> ParseBlock(int indent) {
    if (pos_ >= lines_.size()) return Node();
    if (lines_[pos_].text.rfind("- ", 0) == 0 || lines_[pos_].text == "-") {
      return ParseList(indent);
    }
    return ParseMap(indent);
  }

 private:
  StatusOr<Node> ParseMap(int indent) {
    Node map = Node::Map();
    while (pos_ < lines_.size()) {
      const Line& line = lines_[pos_];
      if (line.indent < indent) break;
      if (line.indent > indent) {
        return InvalidArgument("unexpected indentation at line '" + line.text +
                               "'");
      }
      auto colon = FindKeyColon(line.text);
      if (colon == std::string::npos) {
        return InvalidArgument("expected 'key:' in line '" + line.text + "'");
      }
      std::string key = Unquote(Trim(line.text.substr(0, colon)));
      std::string rest = Trim(line.text.substr(colon + 1));
      ++pos_;
      if (!rest.empty()) {
        map.Put(key, ParseValue(rest));
      } else if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
        MM_ASSIGN_OR_RETURN(Node child, ParseBlock(lines_[pos_].indent));
        map.Put(key, std::move(child));
      } else {
        map.Put(key, Node());
      }
    }
    return map;
  }

  StatusOr<Node> ParseList(int indent) {
    Node list = Node::List();
    while (pos_ < lines_.size()) {
      const Line& line = lines_[pos_];
      if (line.indent != indent || (line.text.rfind("- ", 0) != 0 && line.text != "-")) {
        if (line.indent >= indent) {
          return InvalidArgument("expected '- ' list item in line '" +
                                 line.text + "'");
        }
        break;
      }
      std::string rest = line.text == "-" ? "" : Trim(line.text.substr(2));
      if (rest.empty()) {
        ++pos_;
        if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
          MM_ASSIGN_OR_RETURN(Node child, ParseBlock(lines_[pos_].indent));
          list.Append(std::move(child));
        } else {
          list.Append(Node());
        }
      } else if (FindKeyColon(rest) != std::string::npos &&
                 !LooksLikeScalarWithColon(rest)) {
        // "- key: value" starts an inline map item: rewrite the line as the
        // first key of a map indented past the dash.
        lines_[pos_].indent = indent + 2;
        lines_[pos_].text = rest;
        MM_ASSIGN_OR_RETURN(Node child, ParseMap(indent + 2));
        list.Append(std::move(child));
      } else {
        ++pos_;
        list.Append(ParseValue(rest));
      }
    }
    return list;
  }

  /// Finds the colon separating key from value (not inside quotes/brackets).
  static std::size_t FindKeyColon(const std::string& s) {
    bool in_single = false, in_double = false;
    int depth = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      char c = s[i];
      if (c == '\'' && !in_double) in_single = !in_single;
      if (c == '"' && !in_single) in_double = !in_double;
      if (c == '[') ++depth;
      if (c == ']') --depth;
      if (c == ':' && !in_single && !in_double && depth == 0 &&
          (i + 1 == s.size() || s[i + 1] == ' ' || s[i + 1] == '\t')) {
        return i;
      }
    }
    return std::string::npos;
  }

  /// Heuristic: URL-ish scalars like "posix:///x" contain ':' but are values.
  static bool LooksLikeScalarWithColon(const std::string& s) {
    auto colon = FindKeyColon(s);
    return colon == std::string::npos;
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

}  // namespace

Node Node::Scalar(std::string value) {
  Node n;
  n.kind_ = NodeKind::kScalar;
  n.scalar_ = std::move(value);
  return n;
}

Node Node::Map() {
  Node n;
  n.kind_ = NodeKind::kMap;
  return n;
}

Node Node::List() {
  Node n;
  n.kind_ = NodeKind::kList;
  return n;
}

const std::string& Node::AsString() const {
  MM_CHECK_MSG(IsScalar(), "YAML node is not a scalar");
  return scalar_;
}

StatusOr<std::int64_t> Node::AsInt() const {
  if (!IsScalar()) return InvalidArgument("YAML node is not a scalar");
  try {
    std::size_t pos = 0;
    std::int64_t v = std::stoll(scalar_, &pos);
    if (pos != scalar_.size()) {
      return InvalidArgument("not an integer: '" + scalar_ + "'");
    }
    return v;
  } catch (const std::exception&) {
    return InvalidArgument("not an integer: '" + scalar_ + "'");
  }
}

StatusOr<double> Node::AsDouble() const {
  if (!IsScalar()) return InvalidArgument("YAML node is not a scalar");
  try {
    std::size_t pos = 0;
    double v = std::stod(scalar_, &pos);
    if (pos != scalar_.size()) {
      return InvalidArgument("not a number: '" + scalar_ + "'");
    }
    return v;
  } catch (const std::exception&) {
    return InvalidArgument("not a number: '" + scalar_ + "'");
  }
}

StatusOr<bool> Node::AsBool() const {
  if (!IsScalar()) return InvalidArgument("YAML node is not a scalar");
  std::string v = scalar_;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  return InvalidArgument("not a boolean: '" + scalar_ + "'");
}

StatusOr<std::uint64_t> Node::AsBytes() const {
  if (!IsScalar()) return InvalidArgument("YAML node is not a scalar");
  return ParseBytes(scalar_);
}

bool Node::Has(const std::string& key) const {
  return IsMap() && map_.count(key) > 0;
}

const Node& Node::operator[](const std::string& key) const {
  if (!IsMap()) return NullNode();
  auto it = map_.find(key);
  return it == map_.end() ? NullNode() : it->second;
}

Node& Node::GetOrCreate(const std::string& key) {
  MM_CHECK(IsMap());
  auto it = map_.find(key);
  if (it == map_.end()) {
    keys_.push_back(key);
    return map_[key];
  }
  return it->second;
}

void Node::Put(const std::string& key, Node value) {
  MM_CHECK(IsMap());
  if (map_.find(key) == map_.end()) keys_.push_back(key);
  map_[key] = std::move(value);
}

const Node& Node::at(std::size_t i) const {
  MM_CHECK(IsList() && i < items_.size());
  return items_[i];
}

void Node::Append(Node value) {
  MM_CHECK(IsList());
  items_.push_back(std::move(value));
}

std::string Node::GetString(const std::string& key,
                            const std::string& dflt) const {
  const Node& n = (*this)[key];
  return n.IsScalar() ? n.AsString() : dflt;
}

std::int64_t Node::GetInt(const std::string& key, std::int64_t dflt) const {
  const Node& n = (*this)[key];
  if (!n.IsScalar()) return dflt;
  auto v = n.AsInt();
  return v.ok() ? *v : dflt;
}

double Node::GetDouble(const std::string& key, double dflt) const {
  const Node& n = (*this)[key];
  if (!n.IsScalar()) return dflt;
  auto v = n.AsDouble();
  return v.ok() ? *v : dflt;
}

bool Node::GetBool(const std::string& key, bool dflt) const {
  const Node& n = (*this)[key];
  if (!n.IsScalar()) return dflt;
  auto v = n.AsBool();
  return v.ok() ? *v : dflt;
}

std::uint64_t Node::GetBytes(const std::string& key,
                             std::uint64_t dflt) const {
  const Node& n = (*this)[key];
  if (!n.IsScalar()) return dflt;
  auto v = n.AsBytes();
  return v.ok() ? *v : dflt;
}

std::string Node::Dump(int indent) const {
  std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream oss;
  switch (kind_) {
    case NodeKind::kNull:
      oss << "null\n";
      break;
    case NodeKind::kScalar:
      oss << scalar_ << "\n";
      break;
    case NodeKind::kMap:
      for (const auto& key : keys_) {
        const Node& child = map_.at(key);
        if (child.IsMap() || child.IsList()) {
          oss << pad << key << ":\n" << child.Dump(indent + 2);
        } else if (child.IsNull()) {
          oss << pad << key << ":\n";
        } else {
          oss << pad << key << ": " << child.scalar_ << "\n";
        }
      }
      break;
    case NodeKind::kList:
      for (const Node& item : items_) {
        if (item.IsMap() || item.IsList()) {
          oss << pad << "-\n" << item.Dump(indent + 2);
        } else if (item.IsNull()) {
          oss << pad << "-\n";
        } else {
          oss << pad << "- " << item.scalar_ << "\n";
        }
      }
      break;
  }
  return oss.str();
}

StatusOr<Node> Parse(const std::string& text) {
  std::vector<Line> lines;
  std::istringstream iss(text);
  std::string raw;
  while (std::getline(iss, raw)) {
    std::string no_comment = StripComment(raw);
    std::string trimmed = Trim(no_comment);
    if (trimmed.empty() || trimmed == "---") continue;
    int indent = 0;
    for (char c : no_comment) {
      if (c == ' ') {
        ++indent;
      } else if (c == '\t') {
        return InvalidArgument("tabs are not allowed for YAML indentation");
      } else {
        break;
      }
    }
    lines.push_back(Line{indent, trimmed});
  }
  if (lines.empty()) return Node();
  Parser parser(std::move(lines));
  return parser.ParseBlock(0);
}

StatusOr<Node> ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open YAML file '" + path + "'");
  std::ostringstream oss;
  oss << in.rdbuf();
  return Parse(oss.str());
}

}  // namespace mm::yaml
