#include "mm/util/bitmap.h"

#include <algorithm>
#include <bit>

#include "mm/util/status.h"

namespace mm {

void Bitmap::Resize(std::size_t bits) {
  bits_ = bits;
  words_.resize((bits + 63) / 64, 0);
  // Clear any stale bits beyond the new size in the last word.
  if (bits_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (1ULL << (bits_ % 64)) - 1;
  }
}

void Bitmap::SetRange(std::size_t begin, std::size_t end) {
  MM_CHECK(begin <= end && end <= bits_);
  while (begin < end) {
    std::size_t word = begin >> 6;
    std::size_t lo = begin & 63;
    std::size_t hi = std::min<std::size_t>(64, lo + (end - begin));
    std::uint64_t mask = (hi == 64 ? ~0ULL : ((1ULL << hi) - 1)) & ~((1ULL << lo) - 1);
    words_[word] |= mask;
    begin += hi - lo;
  }
}

void Bitmap::ClearRange(std::size_t begin, std::size_t end) {
  MM_CHECK(begin <= end && end <= bits_);
  while (begin < end) {
    std::size_t word = begin >> 6;
    std::size_t lo = begin & 63;
    std::size_t hi = std::min<std::size_t>(64, lo + (end - begin));
    std::uint64_t mask = (hi == 64 ? ~0ULL : ((1ULL << hi) - 1)) & ~((1ULL << lo) - 1);
    words_[word] &= ~mask;
    begin += hi - lo;
  }
}

bool Bitmap::AllSet(std::size_t begin, std::size_t end) const {
  MM_CHECK(begin <= end && end <= bits_);
  for (std::size_t i = begin; i < end; ++i) {
    if (!Test(i)) return false;
  }
  return true;
}

bool Bitmap::NoneSet(std::size_t begin, std::size_t end) const {
  MM_CHECK(begin <= end && end <= bits_);
  for (std::size_t i = begin; i < end; ++i) {
    if (Test(i)) return false;
  }
  return true;
}

std::size_t Bitmap::Count() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += std::popcount(w);
  return n;
}

bool Bitmap::Any() const {
  return std::any_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w != 0; });
}

void Bitmap::Or(const Bitmap& other) {
  MM_CHECK(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

}  // namespace mm
