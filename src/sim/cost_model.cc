#include "mm/sim/cost_model.h"

namespace mm::sim {

const CostModel& CostModel::Default() {
  static const CostModel model;
  return model;
}

double DollarsForCapacity(const DeviceSpec& spec,
                          std::uint64_t bytes_granted) {
  return spec.dollars_per_gb * static_cast<double>(bytes_granted) / 1e9;
}

}  // namespace mm::sim
