#include "mm/sim/fault.h"

#include "mm/util/hash.h"

namespace mm::sim {

namespace {

// Deterministic uniform in [0, 1) from (seed, stream, op, salt). The salt
// decorrelates the transient-error draw from the latency-spike draw for the
// same op.
double UniformDraw(std::uint64_t seed, std::uint64_t stream, std::uint64_t op,
                   std::uint64_t salt) {
  std::uint64_t h = HashCombine(HashCombine(HashCombine(seed, stream), op),
                                salt);
  return static_cast<double>(MixU64(h) >> 11) * 0x1.0p-53;
}

StatusOr<TierFaultSpec> ParseSpec(const yaml::Node& node) {
  TierFaultSpec spec;
  if (!node.IsMap()) return InvalidArgument("fault spec must be a map");
  spec.transient_error_rate =
      node.GetDouble("transient_error_rate", spec.transient_error_rate);
  spec.latency_spike_rate =
      node.GetDouble("latency_spike_rate", spec.latency_spike_rate);
  spec.latency_spike_factor =
      node.GetDouble("latency_spike_factor", spec.latency_spike_factor);
  spec.fail_after_ops = static_cast<std::uint64_t>(
      node.GetInt("fail_after_ops", static_cast<std::int64_t>(spec.fail_after_ops)));
  if (spec.transient_error_rate < 0 || spec.transient_error_rate > 1 ||
      spec.latency_spike_rate < 0 || spec.latency_spike_rate > 1) {
    return InvalidArgument("fault rates must be within [0, 1]");
  }
  if (spec.latency_spike_factor < 1.0) {
    return InvalidArgument("latency_spike_factor must be >= 1");
  }
  return spec;
}

}  // namespace

bool FaultConfig::any() const {
  for (const TierFaultSpec& spec : tiers) {
    if (spec.any()) return true;
  }
  return backend.any();
}

StatusOr<FaultConfig> FaultConfig::FromYaml(const yaml::Node& node) {
  FaultConfig config;
  if (!node.IsMap()) return config;
  config.seed = static_cast<std::uint64_t>(node.GetInt("seed", 0));
  static constexpr struct {
    const char* name;
    TierKind kind;
  } kTierKeys[] = {{"dram", TierKind::kDram},
                   {"nvme", TierKind::kNvme},
                   {"ssd", TierKind::kSsd},
                   {"hdd", TierKind::kHdd},
                   {"pfs", TierKind::kPfs}};
  for (const auto& key : kTierKeys) {
    if (node.Has(key.name)) {
      MM_ASSIGN_OR_RETURN(config.tier(key.kind), ParseSpec(node[key.name]));
    }
  }
  if (node.Has("backend")) {
    MM_ASSIGN_OR_RETURN(config.backend, ParseSpec(node["backend"]));
  }
  return config;
}

FaultInjector::Decision FaultInjector::Draw(std::size_t stream) {
  Decision decision;
  Stream& s = streams_[stream];
  if (s.failed.load(std::memory_order_acquire)) {
    decision.kind = Decision::Kind::kPermanent;
    return decision;
  }
  const TierFaultSpec& spec = SpecOf(stream);
  std::uint64_t op = s.ops.fetch_add(1, std::memory_order_relaxed);
  if (spec.fail_after_ops > 0 && op >= spec.fail_after_ops) {
    MarkFailed(stream);
    decision.kind = Decision::Kind::kPermanent;
    return decision;
  }
  if (spec.transient_error_rate > 0 &&
      UniformDraw(config_.seed, stream, op, /*salt=*/0x7e) <
          spec.transient_error_rate) {
    decision.kind = Decision::Kind::kTransient;
    transient_faults_.fetch_add(1, std::memory_order_relaxed);
  }
  if (spec.latency_spike_rate > 0 &&
      UniformDraw(config_.seed, stream, op, /*salt=*/0x15) <
          spec.latency_spike_rate) {
    decision.spike_factor = spec.latency_spike_factor;
    latency_spikes_.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

void FaultInjector::MarkFailed(std::size_t stream) {
  bool expected = false;
  if (streams_[stream].failed.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    permanent_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace mm::sim
