#include "mm/sim/fault.h"

#include <algorithm>
#include <initializer_list>

#include "mm/util/hash.h"

namespace mm::sim {

namespace {

// Rejects map keys outside `allowed` — a typo in a fault plan must fail
// loudly, not silently run the experiment without faults.
Status RejectUnknownKeys(const yaml::Node& node, const char* context,
                         std::initializer_list<const char*> allowed) {
  for (const std::string& key : node.Keys()) {
    bool known = std::any_of(allowed.begin(), allowed.end(),
                             [&](const char* a) { return key == a; });
    if (!known) {
      return InvalidArgument(std::string("unknown key '") + key + "' in " +
                             context + " config");
    }
  }
  return Status::Ok();
}

}  // namespace

double FaultDraw(std::uint64_t seed, std::uint64_t stream, std::uint64_t op,
                 std::uint64_t salt) {
  std::uint64_t h = HashCombine(HashCombine(HashCombine(seed, stream), op),
                                salt);
  return static_cast<double>(MixU64(h) >> 11) * 0x1.0p-53;
}

namespace {

StatusOr<TierFaultSpec> ParseSpec(const yaml::Node& node) {
  TierFaultSpec spec;
  if (!node.IsMap()) return InvalidArgument("fault spec must be a map");
  MM_RETURN_IF_ERROR(RejectUnknownKeys(
      node, "tier fault",
      {"transient_error_rate", "latency_spike_rate", "latency_spike_factor",
       "fail_after_ops"}));
  spec.transient_error_rate =
      node.GetDouble("transient_error_rate", spec.transient_error_rate);
  spec.latency_spike_rate =
      node.GetDouble("latency_spike_rate", spec.latency_spike_rate);
  spec.latency_spike_factor =
      node.GetDouble("latency_spike_factor", spec.latency_spike_factor);
  spec.fail_after_ops = static_cast<std::uint64_t>(
      node.GetInt("fail_after_ops", static_cast<std::int64_t>(spec.fail_after_ops)));
  if (spec.transient_error_rate < 0 || spec.transient_error_rate > 1 ||
      spec.latency_spike_rate < 0 || spec.latency_spike_rate > 1) {
    return InvalidArgument("fault rates must be within [0, 1]");
  }
  if (spec.latency_spike_factor < 1.0) {
    return InvalidArgument("latency_spike_factor must be >= 1");
  }
  return spec;
}

}  // namespace

bool FaultConfig::any() const {
  for (const TierFaultSpec& spec : tiers) {
    if (spec.any()) return true;
  }
  return backend.any();
}

namespace {

StatusOr<NetFaultSpec> ParseNetSpec(const yaml::Node& node) {
  NetFaultSpec spec;
  if (!node.IsMap()) return InvalidArgument("net fault spec must be a map");
  MM_RETURN_IF_ERROR(RejectUnknownKeys(
      node, "net fault",
      {"drop_rate", "dup_rate", "delay_spike_rate", "delay_spike_factor",
       "partition"}));
  spec.drop_rate = node.GetDouble("drop_rate", spec.drop_rate);
  spec.dup_rate = node.GetDouble("dup_rate", spec.dup_rate);
  spec.delay_spike_rate =
      node.GetDouble("delay_spike_rate", spec.delay_spike_rate);
  spec.delay_spike_factor =
      node.GetDouble("delay_spike_factor", spec.delay_spike_factor);
  if (node.Has("partition")) {
    const yaml::Node& part = node["partition"];
    if (!part.IsMap()) return InvalidArgument("partition must be a map");
    MM_RETURN_IF_ERROR(RejectUnknownKeys(part, "partition",
                                         {"boundary", "start_s", "heal_s"}));
    spec.partition_boundary =
        static_cast<std::size_t>(part.GetInt("boundary", 0));
    spec.partition_start_s = part.GetDouble("start_s", 0.0);
    spec.partition_heal_s = part.GetDouble("heal_s", 0.0);
  }
  if (spec.drop_rate < 0 || spec.drop_rate > 1 || spec.dup_rate < 0 ||
      spec.dup_rate > 1 || spec.delay_spike_rate < 0 ||
      spec.delay_spike_rate > 1) {
    return InvalidArgument("net fault rates must be within [0, 1]");
  }
  if (spec.delay_spike_factor < 1.0) {
    return InvalidArgument("delay_spike_factor must be >= 1");
  }
  if (spec.partition_boundary > 0 &&
      spec.partition_heal_s <= spec.partition_start_s) {
    return InvalidArgument(
        "partition heal_s must be > start_s (permanent isolation is modeled "
        "by kill:, not by a partition that never heals)");
  }
  return spec;
}

StatusOr<RankKillSpec> ParseKillSpec(const yaml::Node& node) {
  RankKillSpec spec;
  if (!node.IsMap()) return InvalidArgument("kill spec must be a map");
  MM_RETURN_IF_ERROR(RejectUnknownKeys(
      node, "kill", {"rank", "at_time_s", "after_comm_ops"}));
  spec.rank = static_cast<int>(node.GetInt("rank", spec.rank));
  spec.at_time_s = node.GetDouble("at_time_s", spec.at_time_s);
  spec.after_comm_ops = static_cast<std::uint64_t>(
      node.GetInt("after_comm_ops",
                  static_cast<std::int64_t>(spec.after_comm_ops)));
  if (spec.rank < 0 && (spec.at_time_s >= 0 || spec.after_comm_ops > 0)) {
    return InvalidArgument("kill: rank must be set with a trigger");
  }
  return spec;
}

}  // namespace

StatusOr<FaultConfig> FaultConfig::FromYaml(const yaml::Node& node) {
  FaultConfig config;
  if (!node.IsMap()) return config;
  MM_RETURN_IF_ERROR(RejectUnknownKeys(
      node, "faults",
      {"seed", "dram", "nvme", "ssd", "hdd", "pfs", "backend", "net",
       "kill"}));
  config.seed = static_cast<std::uint64_t>(node.GetInt("seed", 0));
  static constexpr struct {
    const char* name;
    TierKind kind;
  } kTierKeys[] = {{"dram", TierKind::kDram},
                   {"nvme", TierKind::kNvme},
                   {"ssd", TierKind::kSsd},
                   {"hdd", TierKind::kHdd},
                   {"pfs", TierKind::kPfs}};
  for (const auto& key : kTierKeys) {
    if (node.Has(key.name)) {
      MM_ASSIGN_OR_RETURN(config.tier(key.kind), ParseSpec(node[key.name]));
    }
  }
  if (node.Has("backend")) {
    MM_ASSIGN_OR_RETURN(config.backend, ParseSpec(node["backend"]));
  }
  if (node.Has("net")) {
    MM_ASSIGN_OR_RETURN(config.net, ParseNetSpec(node["net"]));
  }
  if (node.Has("kill")) {
    MM_ASSIGN_OR_RETURN(config.kill, ParseKillSpec(node["kill"]));
  }
  return config;
}

FaultInjector::Decision FaultInjector::Draw(std::size_t stream) {
  Decision decision;
  Stream& s = streams_[stream];
  if (s.failed.load(std::memory_order_acquire)) {
    decision.kind = Decision::Kind::kPermanent;
    return decision;
  }
  const TierFaultSpec& spec = SpecOf(stream);
  std::uint64_t op = s.ops.fetch_add(1, std::memory_order_relaxed);
  if (spec.fail_after_ops > 0 && op >= spec.fail_after_ops) {
    MarkFailed(stream);
    decision.kind = Decision::Kind::kPermanent;
    return decision;
  }
  if (spec.transient_error_rate > 0 &&
      FaultDraw(config_.seed, stream, op, /*salt=*/0x7e) <
          spec.transient_error_rate) {
    decision.kind = Decision::Kind::kTransient;
    transient_faults_.fetch_add(1, std::memory_order_relaxed);
  }
  if (spec.latency_spike_rate > 0 &&
      FaultDraw(config_.seed, stream, op, /*salt=*/0x15) <
          spec.latency_spike_rate) {
    decision.spike_factor = spec.latency_spike_factor;
    latency_spikes_.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

void FaultInjector::MarkFailed(std::size_t stream) {
  bool expected = false;
  if (streams_[stream].failed.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    permanent_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace mm::sim
