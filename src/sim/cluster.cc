#include "mm/sim/cluster.h"

#include "mm/sim/oom.h"
#include "mm/util/byte_units.h"

namespace mm::sim {

NodeSpec NodeSpec::PaperCompute(double scale) {
  auto scaled = [scale](std::uint64_t bytes) {
    return static_cast<std::uint64_t>(static_cast<double>(bytes) * scale);
  };
  NodeSpec spec;
  spec.tiers = {
      DeviceSpec::Dram(scaled(GIGABYTES(48))),
      DeviceSpec::Nvme(scaled(GIGABYTES(128))),
      DeviceSpec::Ssd(scaled(GIGABYTES(256))),
      DeviceSpec::Hdd(scaled(TERABYTES(1))),
  };
  return spec;
}

Node::Node(const NodeSpec& spec) {
  devices_.reserve(spec.tiers.size());
  for (std::size_t i = 0; i < spec.tiers.size(); ++i) {
    if (i > 0) {
      MM_CHECK_MSG(static_cast<int>(spec.tiers[i].kind) >=
                       static_cast<int>(spec.tiers[i - 1].kind),
                   "node tiers must be sorted fastest-first");
    }
    devices_.push_back(std::make_unique<Device>(spec.tiers[i]));
  }
}

Device* Node::FindTier(TierKind kind) {
  for (auto& dev : devices_) {
    if (dev->kind() == kind) return dev.get();
  }
  return nullptr;
}

void Node::AllocateDram(std::uint64_t bytes) {
  std::uint64_t cap = dram_capacity();
  std::uint64_t prev = dram_used_.fetch_add(bytes, std::memory_order_relaxed);
  if (prev + bytes > cap) {
    dram_used_.fetch_sub(bytes, std::memory_order_relaxed);
    throw SimOutOfMemoryError(bytes, cap > prev ? cap - prev : 0);
  }
  // Track the high-water mark (racy max loop).
  std::uint64_t now = prev + bytes;
  std::uint64_t peak = dram_peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !dram_peak_.compare_exchange_weak(peak, now,
                                           std::memory_order_relaxed)) {
  }
}

void Node::FreeDram(std::uint64_t bytes) {
  dram_used_.fetch_sub(bytes, std::memory_order_relaxed);
}

std::uint64_t Node::dram_capacity() const {
  for (const auto& dev : devices_) {
    if (dev->kind() == TierKind::kDram) return dev->spec().capacity_bytes;
  }
  return 0;
}

std::uint64_t Node::total_capacity() const {
  std::uint64_t total = 0;
  for (const auto& dev : devices_) total += dev->spec().capacity_bytes;
  return total;
}

Cluster::Cluster(std::size_t num_nodes, const NodeSpec& node_spec,
                 NetworkSpec net, std::uint64_t pfs_capacity) {
  MM_CHECK(num_nodes > 0);
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(node_spec));
  }
  network_ = std::make_unique<Network>(num_nodes, net);
  pfs_ = std::make_unique<Device>(DeviceSpec::Pfs(pfs_capacity));
}

std::unique_ptr<Cluster> Cluster::PaperTestbed(std::size_t num_nodes,
                                               double scale) {
  return std::make_unique<Cluster>(num_nodes, NodeSpec::PaperCompute(scale),
                                   NetworkSpec::Roce40(),
                                   /*pfs_capacity=*/TERABYTES(64));
}

void Cluster::ResetStats() {
  for (auto& node : nodes_) {
    for (std::size_t t = 0; t < node->num_tiers(); ++t) {
      node->tier(t).ResetStats();
    }
  }
  network_->ResetStats();
  pfs_->ResetStats();
}

}  // namespace mm::sim
