#include "mm/sim/device.h"

namespace mm::sim {

const char* TierKindName(TierKind kind) {
  switch (kind) {
    case TierKind::kDram:
      return "DRAM";
    case TierKind::kNvme:
      return "NVMe";
    case TierKind::kSsd:
      return "SSD";
    case TierKind::kHdd:
      return "HDD";
    case TierKind::kPfs:
      return "PFS";
  }
  return "?";
}

char TierKindCode(TierKind kind) {
  switch (kind) {
    case TierKind::kDram:
      return 'D';
    case TierKind::kNvme:
      return 'N';
    case TierKind::kSsd:
      return 'S';
    case TierKind::kHdd:
      return 'H';
    case TierKind::kPfs:
      return 'P';
  }
  return '?';
}

namespace {
constexpr double kGB = 1e9;  // device vendors use decimal GB/s
}

DeviceSpec DeviceSpec::Dram(std::uint64_t capacity) {
  // Per-process effective stream bandwidth, not peak channel bandwidth.
  return DeviceSpec{TierKind::kDram, capacity,
                    /*read_latency_s=*/100e-9, /*write_latency_s=*/100e-9,
                    /*read_bw_Bps=*/12.0 * kGB, /*write_bw_Bps=*/10.0 * kGB,
                    /*dollars_per_gb=*/3.0, /*channels=*/4};
}

DeviceSpec DeviceSpec::Nvme(std::uint64_t capacity) {
  // Per-channel bandwidth; 4 queue pairs give the device its full rate
  // under concurrency.
  return DeviceSpec{TierKind::kNvme, capacity,
                    /*read_latency_s=*/20e-6, /*write_latency_s=*/25e-6,
                    /*read_bw_Bps=*/0.7 * kGB, /*write_bw_Bps=*/0.5 * kGB,
                    /*dollars_per_gb=*/0.08, /*channels=*/4};
}

DeviceSpec DeviceSpec::Ssd(std::uint64_t capacity) {
  return DeviceSpec{TierKind::kSsd, capacity,
                    /*read_latency_s=*/90e-6, /*write_latency_s=*/120e-6,
                    /*read_bw_Bps=*/0.27 * kGB, /*write_bw_Bps=*/0.23 * kGB,
                    /*dollars_per_gb=*/0.04, /*channels=*/2};
}

DeviceSpec DeviceSpec::Hdd(std::uint64_t capacity) {
  // ~6-10x slower than SSD/NVMe per the paper. The per-op latency models
  // the average positioning cost of the mostly-sequential buffered streams
  // tiering produces (pure random seeks would be ~5ms; large sequential
  // runs amortize to near zero).
  return DeviceSpec{TierKind::kHdd, capacity,
                    /*read_latency_s=*/2e-3, /*write_latency_s=*/2e-3,
                    /*read_bw_Bps=*/0.16 * kGB, /*write_bw_Bps=*/0.14 * kGB,
                    /*dollars_per_gb=*/0.02, /*channels=*/1};
}

DeviceSpec DeviceSpec::Pfs(std::uint64_t capacity) {
  // A shared remote parallel filesystem: high latency, moderate per-client
  // bandwidth. Used as the persistent backend for nonvolatile vectors.
  // Striped across 8 servers: per-stream latency stays high but eight
  // requests proceed concurrently.
  return DeviceSpec{TierKind::kPfs, capacity,
                    /*read_latency_s=*/0.8e-3, /*write_latency_s=*/1.2e-3,
                    /*read_bw_Bps=*/1.0 * kGB, /*write_bw_Bps=*/0.8 * kGB,
                    /*dollars_per_gb=*/0.01, /*channels=*/8};
}

DeviceSpec DeviceSpec::ForKind(TierKind kind, std::uint64_t capacity) {
  switch (kind) {
    case TierKind::kDram:
      return Dram(capacity);
    case TierKind::kNvme:
      return Nvme(capacity);
    case TierKind::kSsd:
      return Ssd(capacity);
    case TierKind::kHdd:
      return Hdd(capacity);
    case TierKind::kPfs:
      return Pfs(capacity);
  }
  return Dram(capacity);
}

}  // namespace mm::sim
