#include "mm/sim/network.h"

#include <memory>

namespace mm::sim {

NetworkSpec NetworkSpec::Roce40() {
  return NetworkSpec{/*latency_s=*/2e-6, /*bandwidth_Bps=*/5e9};
}

NetworkSpec NetworkSpec::Tcp10() {
  return NetworkSpec{/*latency_s=*/50e-6, /*bandwidth_Bps=*/1.1e9};
}

NetworkSpec NetworkSpec::Loopback() {
  return NetworkSpec{/*latency_s=*/200e-9, /*bandwidth_Bps=*/20e9};
}

Network::Network(std::size_t num_nodes, NetworkSpec spec)
    : spec_(spec), loopback_(NetworkSpec::Loopback()) {
  nics_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nics_.push_back(std::make_unique<Nic>());
  }
}

BusyChannel& Network::Nic::LeastBusy() {
  std::size_t best = 0;
  SimTime best_t = lanes[0].busy_until();
  for (std::size_t i = 1; i < kNicLanes; ++i) {
    SimTime t = lanes[i].busy_until();
    if (t < best_t) {
      best_t = t;
      best = i;
    }
  }
  return lanes[best];
}

Network::TransferResult Network::Transfer(SimTime now, std::size_t src,
                                          std::size_t dst,
                                          std::uint64_t bytes) {
  MM_CHECK(src < nics_.size() && dst < nics_.size());
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  total_messages_.fetch_add(1, std::memory_order_relaxed);
  const NetworkSpec& link = (src == dst) ? loopback_ : spec_;
  double wire = static_cast<double>(bytes) / link.bandwidth_Bps;
  // Small control messages do not meaningfully occupy a multi-GB/s link;
  // reserving lanes for them lets clock skew between ranks masquerade as
  // queueing (a conservatism artifact of the shared high-water channels).
  if (bytes <= kControlCutoff) {
    return {now + wire, now + link.latency_s + wire};
  }
  if (src == dst) {
    // Intra-node: a single memory-channel reservation.
    SimTime done = nics_[src]->LeastBusy().Reserve(now, link.latency_s + wire);
    return {done, done};
  }
  // Egress serialization on the sender NIC, then propagation, then ingress
  // serialization on the receiver NIC.
  SimTime sent = nics_[src]->LeastBusy().Reserve(now, wire);
  SimTime arrive_start = sent + link.latency_s - wire;
  SimTime delivered = nics_[dst]->LeastBusy().Reserve(
      arrive_start > now ? arrive_start : now, wire);
  return {sent, delivered};
}

double Network::TransferDuration(std::size_t src, std::size_t dst,
                                 std::uint64_t bytes) const {
  const NetworkSpec& link = (src == dst) ? loopback_ : spec_;
  return link.latency_s + static_cast<double>(bytes) / link.bandwidth_Bps;
}

void Network::ResetStats() {
  total_bytes_.store(0);
  total_messages_.store(0);
  for (auto& nic : nics_) {
    for (auto& lane : nic->lanes) lane.Reset();
  }
}

}  // namespace mm::sim
