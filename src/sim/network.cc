#include "mm/sim/network.h"

#include <memory>

namespace mm::sim {

NetworkSpec NetworkSpec::Roce40() {
  return NetworkSpec{/*latency_s=*/2e-6, /*bandwidth_Bps=*/5e9};
}

NetworkSpec NetworkSpec::Tcp10() {
  return NetworkSpec{/*latency_s=*/50e-6, /*bandwidth_Bps=*/1.1e9};
}

NetworkSpec NetworkSpec::Loopback() {
  return NetworkSpec{/*latency_s=*/200e-9, /*bandwidth_Bps=*/20e9};
}

Network::Network(std::size_t num_nodes, NetworkSpec spec)
    : spec_(spec), loopback_(NetworkSpec::Loopback()) {
  nics_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nics_.push_back(std::make_unique<Nic>());
  }
}

BusyChannel& Network::Nic::LeastBusy() {
  std::size_t best = 0;
  SimTime best_t = lanes[0].busy_until();
  for (std::size_t i = 1; i < kNicLanes; ++i) {
    SimTime t = lanes[i].busy_until();
    if (t < best_t) {
      best_t = t;
      best = i;
    }
  }
  return lanes[best];
}

void Network::ConfigureFaults(const NetFaultSpec& spec, std::uint64_t seed,
                              RetryPolicy rto) {
  fault_spec_ = spec;
  fault_seed_ = seed;
  rto_ = rto;
  if (link_ops_.empty()) {
    link_ops_ = std::vector<std::atomic<std::uint64_t>>(nics_.size() *
                                                        nics_.size());
  }
  faults_armed_.store(spec.any(), std::memory_order_release);
}

bool Network::Partitioned(SimTime t, std::size_t a, std::size_t b) const {
  const NetFaultSpec& f = fault_spec_;
  if (f.partition_boundary == 0) return false;
  if ((a < f.partition_boundary) == (b < f.partition_boundary)) return false;
  return t >= f.partition_start_s && t < f.partition_heal_s;
}

SimTime Network::ApplyLinkFaults(SimTime now, std::size_t src, std::size_t dst,
                                 double* extra_latency, NetOutcome* outcome) {
  const NetFaultSpec& f = fault_spec_;
  std::uint64_t link = src * nics_.size() + dst;
  std::uint64_t op =
      link_ops_[link].fetch_add(1, std::memory_order_relaxed);
  SimTime start = now;
  int attempts = 0;
  // A severed link: every attempt inside the window is lost. The sender's
  // retransmission timer keeps firing (counted, bounded by the window) and
  // the first attempt after the heal goes through.
  if (Partitioned(start, src, dst)) {
    double held = f.partition_heal_s - start;
    int holds = 1 + static_cast<int>(held / rto_.max_backoff_s);
    partition_holds_.fetch_add(static_cast<std::uint64_t>(holds),
                               std::memory_order_relaxed);
    retransmits_.fetch_add(static_cast<std::uint64_t>(holds),
                           std::memory_order_relaxed);
    if (outcome != nullptr) outcome->retransmits += holds;
    start = f.partition_heal_s;
  }
  // Drops: each lost copy costs one backoff before the retransmission. The
  // draws are per (link, op, attempt), so the decision for message N on a
  // link never depends on thread interleaving. The channel is reliable:
  // after max_attempts-1 consecutive losses the next copy goes through.
  while (f.drop_rate > 0 && attempts < rto_.max_attempts - 1 &&
         FaultDraw(fault_seed_, link, op,
                   /*salt=*/0xd0u + static_cast<std::uint64_t>(attempts)) <
             f.drop_rate) {
    ++attempts;
    start += rto_.BackoffBefore(attempts);
  }
  if (attempts > 0) {
    retransmits_.fetch_add(static_cast<std::uint64_t>(attempts),
                           std::memory_order_relaxed);
    if (outcome != nullptr) outcome->retransmits += attempts;
  }
  if (f.delay_spike_rate > 0 &&
      FaultDraw(fault_seed_, link, op, /*salt=*/0xde) < f.delay_spike_rate) {
    *extra_latency += spec_.latency_s * (f.delay_spike_factor - 1.0);
    delay_spikes_.fetch_add(1, std::memory_order_relaxed);
    if (outcome != nullptr) outcome->delayed = true;
  }
  if (f.dup_rate > 0 &&
      FaultDraw(fault_seed_, link, op, /*salt=*/0xdd) < f.dup_rate) {
    duplicates_.fetch_add(1, std::memory_order_relaxed);
    if (outcome != nullptr) outcome->duplicated = true;
  }
  return start;
}

Network::TransferResult Network::Transfer(SimTime now, std::size_t src,
                                          std::size_t dst,
                                          std::uint64_t bytes,
                                          NetOutcome* outcome) {
  MM_CHECK(src < nics_.size() && dst < nics_.size());
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  total_messages_.fetch_add(1, std::memory_order_relaxed);
  const NetworkSpec& link = (src == dst) ? loopback_ : spec_;
  double wire = static_cast<double>(bytes) / link.bandwidth_Bps;
  double extra_latency = 0.0;
  if (src != dst && faults_armed_.load(std::memory_order_acquire)) {
    now = ApplyLinkFaults(now, src, dst, &extra_latency, outcome);
  }
  // Small control messages do not meaningfully occupy a multi-GB/s link;
  // reserving lanes for them lets clock skew between ranks masquerade as
  // queueing (a conservatism artifact of the shared high-water channels).
  if (bytes <= kControlCutoff) {
    return {now + wire, now + link.latency_s + extra_latency + wire};
  }
  if (src == dst) {
    // Intra-node: a single memory-channel reservation.
    SimTime done = nics_[src]->LeastBusy().Reserve(now, link.latency_s + wire);
    return {done, done};
  }
  // Egress serialization on the sender NIC, then propagation, then ingress
  // serialization on the receiver NIC.
  SimTime sent = nics_[src]->LeastBusy().Reserve(now, wire);
  SimTime arrive_start = sent + link.latency_s + extra_latency - wire;
  SimTime delivered = nics_[dst]->LeastBusy().Reserve(
      arrive_start > now ? arrive_start : now, wire);
  return {sent, delivered};
}

double Network::TransferDuration(std::size_t src, std::size_t dst,
                                 std::uint64_t bytes) const {
  const NetworkSpec& link = (src == dst) ? loopback_ : spec_;
  return link.latency_s + static_cast<double>(bytes) / link.bandwidth_Bps;
}

void Network::ResetStats() {
  total_bytes_.store(0);
  total_messages_.store(0);
  retransmits_.store(0);
  duplicates_.store(0);
  delay_spikes_.store(0);
  partition_holds_.store(0);
  for (auto& nic : nics_) {
    for (auto& lane : nic->lanes) lane.Reset();
  }
}

}  // namespace mm::sim
