#include "mm/ckpt/manifest.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "mm/util/hash.h"

namespace mm::ckpt {

namespace {

constexpr char kMagicLine[] = "MMCK1";

// The tag doubles as a file name: keep it to a conservative charset so a
// manifest can never escape the checkpoint directory.
bool ValidTag(const std::string& tag) {
  if (tag.empty() || tag.size() > 128) return false;
  for (char c : tag) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return tag != "." && tag != "..";
}

}  // namespace

std::string SerializeManifest(const Manifest& m) {
  std::ostringstream out;
  out << kMagicLine << "\n";
  out << "epoch " << m.epoch << "\n";
  out << "tag " << m.tag << "\n";
  out << "vectors " << m.vectors.size() << "\n";
  for (const auto& v : m.vectors) {
    // The key goes last on the line so embedded spaces survive parsing.
    out << "vector " << v.elem_size << " " << v.size_bytes << " "
        << v.page_bytes << " " << v.pages.size() << " " << v.key << "\n";
    for (const auto& p : v.pages) {
      out << "page " << p.page_idx << " " << p.version << " " << p.crc << " "
          << p.tier << " " << p.node << "\n";
    }
  }
  std::string body = out.str();
  std::uint32_t crc =
      Crc32(reinterpret_cast<const std::uint8_t*>(body.data()), body.size());
  body += "end " + std::to_string(crc) + "\n";
  return body;
}

StatusOr<Manifest> ParseManifest(const std::string& text) {
  // Split off and verify the trailing "end <crc>" line first.
  std::size_t end_pos = text.rfind("end ");
  if (end_pos == std::string::npos ||
      (end_pos != 0 && text[end_pos - 1] != '\n')) {
    return DataLoss("manifest missing CRC trailer");
  }
  std::uint32_t want_crc = 0;
  if (std::sscanf(text.c_str() + end_pos, "end %" SCNu32, &want_crc) != 1) {
    return DataLoss("manifest CRC trailer unparsable");
  }
  std::uint32_t got_crc = Crc32(
      reinterpret_cast<const std::uint8_t*>(text.data()), end_pos);
  if (got_crc != want_crc) {
    return DataLoss("manifest CRC mismatch: content is torn or corrupt");
  }
  std::istringstream in(text.substr(0, end_pos));
  std::string line;
  if (!std::getline(in, line) || line != kMagicLine) {
    return InvalidArgument("not a checkpoint manifest");
  }
  Manifest m;
  std::uint64_t declared_vectors = 0;
  ManifestVector* current = nullptr;
  std::uint64_t pending_pages = 0;
  while (std::getline(in, line)) {
    if (line.rfind("epoch ", 0) == 0) {
      m.epoch = std::strtoull(line.c_str() + 6, nullptr, 10);
    } else if (line.rfind("tag ", 0) == 0) {
      m.tag = line.substr(4);
    } else if (line.rfind("vectors ", 0) == 0) {
      declared_vectors = std::strtoull(line.c_str() + 8, nullptr, 10);
    } else if (line.rfind("vector ", 0) == 0) {
      ManifestVector v;
      std::uint64_t npages = 0;
      int consumed = 0;
      if (std::sscanf(line.c_str(), "vector %" SCNu64 " %" SCNu64 " %" SCNu64
                                    " %" SCNu64 " %n",
                      &v.elem_size, &v.size_bytes, &v.page_bytes, &npages,
                      &consumed) != 4 ||
          consumed <= 0) {
        return DataLoss("manifest vector line unparsable: " + line);
      }
      v.key = line.substr(static_cast<std::size_t>(consumed));
      if (v.key.empty() || v.elem_size == 0 || v.page_bytes == 0) {
        return DataLoss("manifest vector line invalid: " + line);
      }
      m.vectors.push_back(std::move(v));
      current = &m.vectors.back();
      pending_pages = npages;
    } else if (line.rfind("page ", 0) == 0) {
      if (current == nullptr || pending_pages == 0) {
        return DataLoss("manifest page line outside a vector: " + line);
      }
      ManifestPage p;
      if (std::sscanf(line.c_str(), "page %" SCNu64 " %" SCNu64 " %" SCNu32
                                    " %d %" SCNu64,
                      &p.page_idx, &p.version, &p.crc, &p.tier,
                      &p.node) != 5) {
        return DataLoss("manifest page line unparsable: " + line);
      }
      current->pages.push_back(p);
      --pending_pages;
    } else if (!line.empty()) {
      return DataLoss("unknown manifest line: " + line);
    }
  }
  if (pending_pages != 0 || m.vectors.size() != declared_vectors) {
    return DataLoss("manifest truncated: page/vector counts disagree");
  }
  return m;
}

std::string ManifestPath(const std::string& dir, const std::string& tag) {
  return (std::filesystem::path(dir) / (tag + ".mmck")).string();
}

Status WriteManifestTemp(const Manifest& m, const std::string& path) {
  if (!ValidTag(m.tag)) {
    return InvalidArgument("bad checkpoint tag: '" + m.tag + "'");
  }
  std::error_code ec;
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::string body = SerializeManifest(m);
  std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) return IoError("cannot write manifest temp: " + tmp);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  out.flush();
  if (!out) return IoError("short manifest write: " + tmp);
  return Status::Ok();
}

Status PublishManifest(const std::string& path) {
  std::error_code ec;
  std::filesystem::rename(path + ".tmp", path, ec);
  if (ec) return IoError("cannot publish manifest " + path + ": " +
                         ec.message());
  return Status::Ok();
}

Status WriteManifest(const Manifest& m, const std::string& path) {
  MM_RETURN_IF_ERROR(WriteManifestTemp(m, path));
  return PublishManifest(path);
}

StatusOr<Manifest> ReadManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("no manifest at " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseManifest(buf.str());
}

}  // namespace mm::ckpt
