#include "mm/ckpt/coordinator.h"

#include <filesystem>

#include "mm/ckpt/manifest.h"
#include "mm/storage/stager.h"
#include "mm/util/logging.h"

namespace mm::ckpt {

Coordinator::Coordinator(CkptOptions options, std::size_t num_nodes)
    : options_(std::move(options)) {
  if (!enabled()) return;
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  journals_.reserve(num_nodes);
  for (std::size_t node = 0; node < num_nodes; ++node) {
    std::string path =
        (std::filesystem::path(options_.dir) /
         ("journal." + std::to_string(node) + ".mmj"))
            .string();
    journals_.push_back(std::make_unique<Journal>(std::move(path)));
  }
  // Seed the epoch counter past every manifest already on disk so a
  // restarted service keeps epochs monotonic.
  std::uint64_t max_epoch = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.dir, ec)) {
    if (entry.path().extension() != ".mmck") continue;
    auto m = ReadManifest(entry.path().string());
    if (m.ok() && m->epoch > max_epoch) max_epoch = m->epoch;
  }
  epoch_.store(max_epoch, std::memory_order_relaxed);
}

std::string Coordinator::ManifestPathFor(const std::string& tag) const {
  return ManifestPath(options_.dir, tag);
}

Status Coordinator::RecoverOnStartup(std::uint64_t* applied,
                                     std::uint64_t* torn) {
  if (applied != nullptr) *applied = 0;
  if (torn != nullptr) *torn = 0;
  if (!enabled()) return Status::Ok();
  auto& registry = storage::StagerRegistry::Default();
  Status first_error = Status::Ok();
  for (auto& journal : journals_) {
    std::uint64_t journal_applied = 0, journal_torn = 0;
    Status st = journal->Replay(
        [&](const JournalRecord& rec) {
          MM_ASSIGN_OR_RETURN(auto resolved, registry.Resolve(rec.key));
          auto [stager, uri] = resolved;
          if (!stager->Exists(uri)) {
            // The backing object vanished with the crash (e.g. created but
            // never sized): re-create the extent the record addresses.
            MM_RETURN_IF_ERROR(
                stager->Create(uri, rec.offset + rec.payload.size()));
          }
          MM_RETURN_IF_ERROR(stager->Write(uri, rec.offset,
                                           rec.payload.data(),
                                           rec.payload.size()));
          MutexLock lock(mu_);
          DurableState& state = replayed_[rec.id];
          if (rec.version >= state.version) {
            state.version = rec.version;
            state.page_crc = rec.page_crc;
          }
          return Status::Ok();
        },
        &journal_applied, &journal_torn);
    if (!st.ok()) {
      MM_WARN("ckpt") << "journal replay failed for " << journal->path()
                      << ": " << st.message();
      if (first_error.ok()) first_error = st;
    }
    if (applied != nullptr) *applied += journal_applied;
    if (torn != nullptr) *torn += journal_torn;
    if (journal_torn > 0) {
      MM_WARN("ckpt") << "discarded " << journal_torn
                      << " torn journal record(s) in " << journal->path();
    }
    // Applied records stay indexed (and in replayed_) for Restore overlay
    // and tier-death recovery; only the torn tail is dropped here.
  }
  return first_error;
}

StatusOr<Coordinator::DurableState> Coordinator::LatestDurable(
    const storage::BlobId& id) const {
  DurableState best;
  bool found = false;
  {
    MutexLock lock(mu_);
    auto it = replayed_.find(id);
    if (it != replayed_.end()) {
      best = it->second;
      found = true;
    }
  }
  for (const auto& journal : journals_) {
    auto rec = journal->Latest(id);
    if (rec.ok() && (!found || rec->version >= best.version)) {
      best.version = rec->version;
      best.page_crc = rec->page_crc;
      found = true;
    }
  }
  if (!found) return NotFound("no durable record for " + id.ToString());
  return best;
}

Status Coordinator::TruncateJournals() {
  Status first_error = Status::Ok();
  for (auto& journal : journals_) {
    Status st = journal->Truncate();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  MutexLock lock(mu_);
  replayed_.clear();
  return first_error;
}

void Coordinator::PublishResult(const Status& status,
                                const CheckpointStats& stats) {
  MutexLock lock(mu_);
  last_status_ = status;
  last_stats_ = stats;
}

Status Coordinator::last_status() const {
  MutexLock lock(mu_);
  return last_status_;
}

CheckpointStats Coordinator::last_stats() const {
  MutexLock lock(mu_);
  return last_stats_;
}

}  // namespace mm::ckpt
