#include "mm/ckpt/journal.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "mm/util/hash.h"
#include "mm/util/logging.h"

namespace mm::ckpt {

namespace {

constexpr std::uint32_t kMagic = 0x314A4D4D;  // 'MMJ1'
// magic + key_len + vector_id + page_idx + version + offset + payload_len +
// page_crc + payload_crc.
constexpr std::uint64_t kFixedHeaderBytes = 4 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + 4;
constexpr std::uint32_t kMaxKeyLen = 4096;

template <typename T>
void PutPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool GetPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

// Serialized header (fixed fields + key) followed by its own CRC. The
// payload is written separately so AppendTorn can cut it short.
std::string SerializeHeader(const storage::BlobId& id, std::uint64_t version,
                            std::uint64_t offset, std::uint64_t payload_len,
                            std::uint32_t page_crc, std::uint32_t payload_crc,
                            const std::string& key) {
  std::string buf;
  buf.reserve(kFixedHeaderBytes + key.size() + 4);
  PutPod(&buf, kMagic);
  PutPod(&buf, static_cast<std::uint32_t>(key.size()));
  PutPod(&buf, id.vector_id);
  PutPod(&buf, id.page_idx);
  PutPod(&buf, version);
  PutPod(&buf, offset);
  PutPod(&buf, payload_len);
  PutPod(&buf, page_crc);
  PutPod(&buf, payload_crc);
  buf.append(key);
  std::uint32_t header_crc =
      Crc32(reinterpret_cast<const std::uint8_t*>(buf.data()), buf.size());
  PutPod(&buf, header_crc);
  return buf;
}

}  // namespace

Journal::Journal(std::string path) : path_(std::move(path)) {
  MutexLock lock(mu_);
  // Index whatever intact records a previous process left behind; a torn
  // tail stays on disk until the first append or Truncate so Replay can
  // still observe and report it.
  Status st = ReindexLocked();
  if (!st.ok() && st.code() != StatusCode::kNotFound) {
    MM_WARN("ckpt") << "journal " << path_ << " unreadable: " << st.message();
  }
}

Status Journal::ScanLocked(std::vector<ScannedRecord>* out, bool want_payload,
                           std::uint64_t* torn) const {
  out->clear();
  if (torn != nullptr) *torn = 0;
  std::error_code ec;
  if (!std::filesystem::exists(path_, ec) || ec) {
    return NotFound("no journal at " + path_);
  }
  std::uint64_t file_size = std::filesystem::file_size(path_, ec);
  if (ec) return IoError("cannot stat journal: " + path_);
  std::ifstream in(path_, std::ios::binary);
  if (!in) return IoError("cannot open journal: " + path_);
  std::uint64_t pos = 0;
  while (pos + kFixedHeaderBytes + 4 <= file_size) {
    in.clear();
    in.seekg(static_cast<std::streamoff>(pos));
    std::uint32_t magic = 0, key_len = 0;
    ScannedRecord rec;
    std::uint64_t payload_len = 0;
    if (!GetPod(in, &magic) || !GetPod(in, &key_len) ||
        !GetPod(in, &rec.id.vector_id) || !GetPod(in, &rec.id.page_idx) ||
        !GetPod(in, &rec.entry.version) || !GetPod(in, &rec.entry.offset) ||
        !GetPod(in, &payload_len) || !GetPod(in, &rec.entry.page_crc) ||
        !GetPod(in, &rec.entry.payload_crc) || magic != kMagic ||
        key_len > kMaxKeyLen) {
      if (torn != nullptr) ++*torn;
      break;
    }
    std::string key(key_len, '\0');
    std::uint32_t header_crc = 0;
    in.read(key.data(), key_len);
    if (!in || !GetPod(in, &header_crc)) {
      if (torn != nullptr) ++*torn;
      break;
    }
    std::uint64_t payload_pos = pos + kFixedHeaderBytes + key_len + 4;
    std::string expect =
        SerializeHeader(rec.id, rec.entry.version, rec.entry.offset,
                        payload_len, rec.entry.page_crc,
                        rec.entry.payload_crc, key);
    std::uint32_t expect_crc = 0;
    std::memcpy(&expect_crc, expect.data() + expect.size() - 4, 4);
    if (header_crc != expect_crc || payload_pos + payload_len > file_size) {
      if (torn != nullptr) ++*torn;
      break;
    }
    if (want_payload) {
      rec.payload.resize(payload_len);
      in.read(reinterpret_cast<char*>(rec.payload.data()),
              static_cast<std::streamsize>(payload_len));
      if (!in || Crc32(rec.payload.data(), rec.payload.size()) !=
                     rec.entry.payload_crc) {
        if (torn != nullptr) ++*torn;
        break;
      }
    }
    rec.entry.key = std::move(key);
    rec.entry.payload_pos = payload_pos;
    rec.entry.payload_len = payload_len;
    out->push_back(std::move(rec));
    pos = payload_pos + payload_len;
  }
  return Status::Ok();
}

Status Journal::ReindexLocked() {
  index_.clear();
  good_size_ = 0;
  record_count_ = 0;
  std::vector<ScannedRecord> records;
  MM_RETURN_IF_ERROR(ScanLocked(&records, /*want_payload=*/false, nullptr));
  for (auto& rec : records) {
    good_size_ = rec.entry.payload_pos + rec.entry.payload_len;
    index_[rec.id] = std::move(rec.entry);
    ++record_count_;
  }
  return Status::Ok();
}

Status Journal::TrimLocked() {
  std::error_code ec;
  if (!std::filesystem::exists(path_, ec) || ec) return Status::Ok();
  std::uint64_t file_size = std::filesystem::file_size(path_, ec);
  if (ec) return IoError("cannot stat journal: " + path_);
  if (file_size > good_size_) {
    std::filesystem::resize_file(path_, good_size_, ec);
    if (ec) return IoError("cannot trim torn journal tail: " + path_);
  }
  return Status::Ok();
}

Status Journal::AppendImpl(const JournalRecord& rec, bool torn) {
  MutexLock lock(mu_);
  std::error_code ec;
  std::filesystem::path parent = std::filesystem::path(path_).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  // A torn tail from a previous (simulated) crash must not sit between
  // intact records: trim it before appending past it.
  MM_RETURN_IF_ERROR(TrimLocked());
  std::uint32_t payload_crc = Crc32(rec.payload.data(), rec.payload.size());
  std::string header =
      SerializeHeader(rec.id, rec.version, rec.offset, rec.payload.size(),
                      rec.page_crc, payload_crc, rec.key);
  std::uint64_t payload_bytes =
      torn ? rec.payload.size() / 2 : rec.payload.size();
  {
    // Append mode never repositions into committed records (and is exempt
    // from MML007's temp+rename requirement by design: a torn append is
    // detected by the record CRCs, not prevented by atomic publication).
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    if (!out) return IoError("cannot open journal for append: " + path_);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write(reinterpret_cast<const char*>(rec.payload.data()),
              static_cast<std::streamsize>(payload_bytes));
    out.flush();
    if (!out) return IoError("short journal append: " + path_);
  }
  if (torn) {
    // Unreadable garbage as far as recovery is concerned; good_size_ keeps
    // pointing at the last intact record.
    return Status::Ok();
  }
  IndexEntry e;
  e.version = rec.version;
  e.offset = rec.offset;
  e.page_crc = rec.page_crc;
  e.payload_crc = payload_crc;
  e.payload_pos = good_size_ + header.size();
  e.payload_len = rec.payload.size();
  e.key = rec.key;
  index_[rec.id] = std::move(e);
  good_size_ += header.size() + rec.payload.size();
  ++record_count_;
  return Status::Ok();
}

Status Journal::Append(const JournalRecord& rec) {
  return AppendImpl(rec, /*torn=*/false);
}

Status Journal::AppendTorn(const JournalRecord& rec) {
  return AppendImpl(rec, /*torn=*/true);
}

StatusOr<JournalRecord> Journal::Latest(const storage::BlobId& id) const {
  MutexLock lock(mu_);
  auto it = index_.find(id);
  if (it == index_.end()) {
    return NotFound("no journal record for " + id.ToString());
  }
  const IndexEntry& e = it->second;
  JournalRecord rec;
  rec.id = id;
  rec.version = e.version;
  rec.offset = e.offset;
  rec.page_crc = e.page_crc;
  rec.payload_crc = e.payload_crc;
  rec.key = e.key;
  rec.payload.resize(e.payload_len);
  std::ifstream in(path_, std::ios::binary);
  if (!in) return IoError("cannot open journal: " + path_);
  in.seekg(static_cast<std::streamoff>(e.payload_pos));
  in.read(reinterpret_cast<char*>(rec.payload.data()),
          static_cast<std::streamsize>(e.payload_len));
  if (!in || Crc32(rec.payload.data(), rec.payload.size()) != e.payload_crc) {
    return DataLoss("journal payload corrupt for " + id.ToString());
  }
  return rec;
}

Status Journal::Replay(const std::function<Status(const JournalRecord&)>& apply,
                       std::uint64_t* applied, std::uint64_t* torn) const {
  if (applied != nullptr) *applied = 0;
  std::vector<ScannedRecord> records;
  {
    MutexLock lock(mu_);
    Status st = ScanLocked(&records, /*want_payload=*/true, torn);
    if (st.code() == StatusCode::kNotFound) return Status::Ok();  // no file yet
    MM_RETURN_IF_ERROR(st);
  }
  for (auto& scanned : records) {
    JournalRecord rec;
    rec.id = scanned.id;
    rec.version = scanned.entry.version;
    rec.offset = scanned.entry.offset;
    rec.page_crc = scanned.entry.page_crc;
    rec.payload_crc = scanned.entry.payload_crc;
    rec.key = std::move(scanned.entry.key);
    rec.payload = std::move(scanned.payload);
    MM_RETURN_IF_ERROR(apply(rec));
    if (applied != nullptr) ++*applied;
  }
  return Status::Ok();
}

Status Journal::Truncate() {
  MutexLock lock(mu_);
  std::error_code ec;
  if (std::filesystem::exists(path_, ec) && !ec) {
    std::filesystem::resize_file(path_, 0, ec);
    if (ec) return IoError("cannot truncate journal: " + path_);
  }
  index_.clear();
  good_size_ = 0;
  record_count_ = 0;
  return Status::Ok();
}

std::uint64_t Journal::record_count() const {
  MutexLock lock(mu_);
  return record_count_;
}

std::uint64_t Journal::size_bytes() const {
  MutexLock lock(mu_);
  return good_size_;
}

}  // namespace mm::ckpt
