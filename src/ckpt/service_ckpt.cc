// Service checkpoint/restore surface (DESIGN.md §12). Lives with the ckpt
// subsystem but defines core::Service members, so it compiles into mm_core
// (see src/core/CMakeLists.txt).
#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mm/ckpt/manifest.h"
#include "mm/core/service.h"
#include "mm/util/logging.h"

namespace mm::core {

namespace {

void Merge(sim::SimTime end, sim::SimTime* done) {
  if (done != nullptr) *done = std::max(*done, end);
}

/// Bounds for the per-checkpoint incremental-savings distribution: the
/// fraction of manifest pages this checkpoint actually had to flush.
std::vector<double> RatioBounds() {
  return {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0};
}

}  // namespace

StatusOr<ckpt::CheckpointStats> Service::Checkpoint(const std::string& tag,
                                                    std::size_t from_node,
                                                    sim::SimTime now,
                                                    sim::SimTime* done) {
  if (!ckpt_->enabled()) {
    return FailedPrecondition(
        "checkpointing is disabled: set ServiceOptions.ckpt.dir");
  }
  if (injector_->crashed()) {
    return Unavailable("node crashed (simulated)");
  }
  telemetry::NodeSink sink = telemetry_sink(from_node);
  sim::SimTime t = now;

  // 1. Quiesce every node's task queues. By FIFO order, every task
  //    submitted before this call has committed once the barrier markers
  //    resolve; the collective's serial section keeps other ranks from
  //    submitting more until the manifest is published.
  for (auto& rt : runtimes_) t = std::max(t, rt->Quiesce(now));

  ckpt::CheckpointStats stats;
  stats.tag = tag;

  // 2. Incremental flush: only pages still dirty since the previous epoch.
  //    Each flush is journaled (JournaledBackendWrite), so a crash mid-way
  //    never leaves a torn page on the backend.
  std::vector<VectorMeta*> nonvolatile;
  {
    MutexLock lock(vectors_mu_);
    for (auto& [key, meta] : vectors_) {
      if (meta->stager != nullptr && !meta->destroyed.load()) {
        nonvolatile.push_back(meta.get());
      }
    }
  }
  std::vector<std::shared_future<TaskOutcome>> futures;
  std::vector<std::uint64_t> flush_bytes;
  for (VectorMeta* meta : nonvolatile) {
    MM_RETURN_IF_ERROR(EnsureBackend(*meta));
    std::uint64_t logical = meta->size_bytes.load(std::memory_order_relaxed);
    for (const auto& id : metadata().BlobsOfVector(meta->vector_id)) {
      auto loc = metadata().Lookup(id, from_node, t, nullptr);
      if (!loc.ok() || !loc->dirty) continue;
      std::uint64_t page_off = id.page_idx * meta->page_bytes;
      std::uint64_t want =
          page_off < logical ? std::min(meta->page_bytes, logical - page_off)
                             : 0;
      MemoryTask task;
      task.kind = MemoryTask::Kind::kStageOut;
      task.vector_id = meta->vector_id;
      task.id = id;
      task.from_node = from_node;
      task.issue_time = t;
      task.promise = std::make_shared<std::promise<TaskOutcome>>();
      futures.push_back(task.promise->get_future().share());
      flush_bytes.push_back(want);
      // A shutdown rejection still fulfills the promise collected above.
      (void)runtime(loc->node).Submit(std::move(task));
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    TaskOutcome out = futures[i].get();
    t = std::max(t, out.done);
    if (!out.status.ok()) {
      // An unflushed dirty page means the epoch cannot be published; the
      // journals stay in place for recovery.
      return out.status;
    }
    ++stats.pages_written;
    stats.bytes_written += flush_bytes[i];
  }

  // 3. Build the manifest from directory state. Versions/CRCs are the
  //    commit-time values — independent of when the flush above happened.
  ckpt::Manifest manifest;
  manifest.epoch = ckpt_->NextEpoch();
  manifest.tag = tag;
  stats.epoch = manifest.epoch;
  for (VectorMeta* meta : nonvolatile) {
    ckpt::ManifestVector mv;
    mv.key = meta->key;
    mv.elem_size = meta->elem_size;
    mv.size_bytes = meta->size_bytes.load(std::memory_order_relaxed);
    mv.page_bytes = meta->page_bytes;
    auto blobs = metadata().BlobsOfVector(meta->vector_id);
    std::sort(blobs.begin(), blobs.end(),
              [](const storage::BlobId& a, const storage::BlobId& b) {
                return a.page_idx < b.page_idx;
              });
    for (const auto& id : blobs) {
      auto loc = metadata().Lookup(id, from_node, t, nullptr);
      if (!loc.ok()) continue;
      ckpt::ManifestPage mp;
      mp.page_idx = id.page_idx;
      mp.version = loc->version;
      mp.crc = loc->crc;
      mp.tier = static_cast<int>(loc->tier);
      mp.node = loc->node;
      mv.pages.push_back(mp);
      ++stats.pages_total;
    }
    manifest.vectors.push_back(std::move(mv));
  }
  stats.incremental_ratio =
      static_cast<double>(stats.pages_written) /
      static_cast<double>(std::max<std::uint64_t>(1, stats.pages_total));

  // 4. Atomic publication: write the temp file, then rename. A crash
  //    between the two (kMidManifestRename) leaves the previous manifest —
  //    and the journals, still un-truncated — as the recovery source.
  stats.manifest_path = ckpt_->ManifestPathFor(tag);
  MM_RETURN_IF_ERROR(ckpt::WriteManifestTemp(manifest, stats.manifest_path));
  t = std::max(t, cluster_->pfs().Write(
                      t, ckpt::SerializeManifest(manifest).size()));
  if (injector_->AtCrashPoint(sim::CrashPoint::kMidManifestRename)) {
    DumpFlightRecord(from_node,
                     sim::CrashPointName(sim::CrashPoint::kMidManifestRename),
                     t);
    return Unavailable(
        "simulated crash between manifest temp write and rename");
  }
  MM_RETURN_IF_ERROR(ckpt::PublishManifest(stats.manifest_path));

  // 5. The published manifest covers every journaled flush: spend the
  //    journals.
  MM_RETURN_IF_ERROR(ckpt_->TruncateJournals());

  stats.duration_s = t - now;
  Merge(t, done);
  sink.metrics->GetCounter("mm.ckpt.checkpoint_count")->Inc();
  sink.metrics->GetCounter("mm.ckpt.written_bytes")->Inc(stats.bytes_written);
  sink.metrics->GetHistogram("mm.ckpt.duration_ns",
                             telemetry::LatencyBoundsNs())
      ->Observe(stats.duration_s * 1e9);
  sink.metrics->GetHistogram("mm.ckpt.incremental_ratio", RatioBounds())
      ->Observe(stats.incremental_ratio);
  sink.trace->Complete("checkpoint", "ckpt", sink.node, 0, now, t);
  MM_INFO("ckpt") << "epoch " << stats.epoch << " ('" << tag << "') published: "
                  << stats.pages_written << "/" << stats.pages_total
                  << " pages, " << stats.bytes_written << " bytes";
  return stats;
}

Status Service::Restore(const std::string& tag, std::size_t from_node,
                        sim::SimTime now, sim::SimTime* done) {
  if (!ckpt_->enabled()) {
    return FailedPrecondition(
        "checkpointing is disabled: set ServiceOptions.ckpt.dir");
  }
  if (injector_->crashed()) {
    return Unavailable("node crashed (simulated)");
  }
  telemetry::NodeSink sink = telemetry_sink(from_node);
  sim::SimTime t = now;
  MM_ASSIGN_OR_RETURN(ckpt::Manifest manifest,
                      ckpt::ReadManifest(ckpt_->ManifestPathFor(tag)));
  t = std::max(t, cluster_->pfs().Read(
                      t, ckpt::SerializeManifest(manifest).size()));
  for (const auto& mv : manifest.vectors) {
    VectorOptions vopts;
    vopts.page_size = mv.page_bytes;
    vopts.nonvolatile = true;
    MM_ASSIGN_OR_RETURN(VectorMeta* meta,
                        RegisterVector(mv.key, mv.elem_size, vopts));
    // The manifest's logical size is authoritative: the backend object may
    // be larger from pre-crash appends past the published epoch.
    meta->size_bytes.store(mv.size_bytes, std::memory_order_relaxed);
    // Restore rebuilds from durable state only: drop directory entries and
    // scache copies that survive from before the restore (rerunnable — a
    // second pass finds nothing or repeats the same idempotent drops).
    for (const auto& id : metadata().BlobsOfVector(meta->vector_id)) {
      auto cur = metadata().Lookup(id, from_node, t, nullptr);
      // Best-effort purges: both are idempotent, and the directory entry is
      // rewritten from the manifest below either way.
      if (cur.ok()) (void)runtime(cur->node).buffer().Erase(id);
      (void)metadata().Remove(id, from_node, t, nullptr);  // absent is fine
    }
    for (const auto& mp : mv.pages) {
      if (injector_->AtCrashPoint(sim::CrashPoint::kMidRestore)) {
        // Directory left partially rebuilt; a rerun starts over from the
        // same manifest and journals (nothing here mutates the backend).
        DumpFlightRecord(from_node,
                         sim::CrashPointName(sim::CrashPoint::kMidRestore), t);
        return Unavailable("simulated crash mid restore");
      }
      storage::BlobId id{meta->vector_id, mp.page_idx};
      std::uint64_t version = mp.version;
      std::uint32_t crc = mp.crc;
      // Journal overlay: a durable redo record past the manifest version is
      // a promise kept — startup replay already applied its bytes to the
      // backend, so the directory must expect that newer state.
      auto durable = ckpt_->LatestDurable(id);
      if (durable.ok() && durable->version > version) {
        version = durable->version;
        crc = durable->page_crc;
      }
      storage::BlobLocation loc;
      // Placement affinity hint from the manifest, clamped in case the
      // restored job runs on fewer nodes.
      loc.node = std::min(static_cast<std::size_t>(mp.node), num_nodes() - 1);
      // Truthful residency: the bytes live on the backend until first
      // touch, which stages them in lazily (CRC-verified in ExecuteGetPage).
      loc.tier = sim::TierKind::kPfs;
      loc.size = meta->page_bytes;
      loc.dirty = false;
      loc.version = version;
      loc.crc = crc;
      sim::SimTime upd = t;
      // Directory upsert on the home shard cannot fail.
      (void)metadata().Update(id, loc, from_node, t, &upd);
      t = std::max(t, upd);
      // The backend now holds the committed bytes for this page; any
      // pre-restore loss record is obsolete.
      ClearDataLoss(id);
    }
  }
  // The overlay is folded into the directory: the journals are spent.
  MM_RETURN_IF_ERROR(ckpt_->TruncateJournals());
  Merge(t, done);
  sink.metrics->GetCounter("mm.ckpt.restore_count")->Inc();
  sink.trace->Complete("restore", "ckpt", sink.node, 0, now, t);
  MM_INFO("ckpt") << "restored epoch " << manifest.epoch << " ('" << tag
                  << "'): " << manifest.vectors.size() << " vector(s)";
  return Status::Ok();
}

}  // namespace mm::core
