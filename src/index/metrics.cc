#include "mm/index/metrics.h"

namespace mm::index {

IndexMetrics::IndexMetrics(const telemetry::NodeSink& sink) {
  descents = sink.metrics->GetCounter("mm.index.descent_count");
  node_reads = sink.metrics->GetCounter("mm.index.node_read_count");
  pcache_hits = sink.metrics->GetCounter("mm.index.pcache_hit_count");
  scache_probes = sink.metrics->GetCounter("mm.index.scache_probe_hit_count");
  queue_fallbacks = sink.metrics->GetCounter("mm.index.queue_fallback_count");
  restarts = sink.metrics->GetCounter("mm.index.restart_count");
  smos = sink.metrics->GetCounter("mm.index.smo_count");
}

}  // namespace mm::index
