#include "mm/comm/dlock.h"

namespace mm::comm {

namespace {
// Lock protocol messages are small control packets.
constexpr std::uint64_t kControlBytes = 64;
}  // namespace

void DistributedLock::Acquire(RankContext& ctx) {
  // Request reaches the home node...
  auto req = cluster_->network().Transfer(ctx.clock().now(), ctx.node(),
                                          home_node_, kControlBytes);
  mu_.Lock();  // real mutual exclusion; blocks until predecessor releases
  // ...the grant is issued once the previous holder's release arrived.
  sim::SimTime grant_start = std::max(req.delivered, last_release_);
  auto grant = cluster_->network().Transfer(grant_start, home_node_, ctx.node(),
                                            kControlBytes);
  ctx.clock().AdvanceTo(grant.delivered);
}

void DistributedLock::Release(RankContext& ctx) {
  auto rel = cluster_->network().Transfer(ctx.clock().now(), ctx.node(),
                                          home_node_, kControlBytes);
  last_release_ = rel.delivered;
  mu_.Unlock();
}

}  // namespace mm::comm
