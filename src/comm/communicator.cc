#include "mm/comm/communicator.h"

#include <algorithm>
#include <numeric>

namespace mm::comm {

Communicator::Communicator(RankContext* ctx) : ctx_(ctx) {
  group_.resize(ctx->size());
  std::iota(group_.begin(), group_.end(), 0);
  my_index_ = ctx->rank();
}

Communicator::Communicator(RankContext* ctx, std::vector<int> group)
    : ctx_(ctx), group_(std::move(group)) {
  auto it = std::find(group_.begin(), group_.end(), ctx->rank());
  MM_CHECK_MSG(it != group_.end(), "rank not in communicator group");
  my_index_ = static_cast<int>(it - group_.begin());
}

void Communicator::SendBytes(int dst, int tag, const void* data,
                             std::size_t size) {
  MM_CHECK(dst >= 0 && dst < this->size());
  World& world = ctx_->world();
  int dst_world = group_[dst];
  int src_world = group_[my_index_];
  auto res = world.cluster().network().Transfer(
      ctx_->clock().now(), world.NodeOfRank(src_world),
      world.NodeOfRank(dst_world), size);
  // MPI_Send semantics: the sender resumes once its buffer is reusable,
  // i.e. when egress serialization completes.
  ctx_->clock().AdvanceTo(res.egress_done);
  Message msg;
  msg.src = src_world;
  msg.tag = TagFor(tag);
  msg.payload.assign(static_cast<const std::uint8_t*>(data),
                     static_cast<const std::uint8_t*>(data) + size);
  msg.delivered = res.delivered;
  world.mailbox(dst_world).Deposit(std::move(msg));
}

std::vector<std::uint8_t> Communicator::RecvBytes(int src, int tag,
                                                  int* actual_src) {
  World& world = ctx_->world();
  int src_world = src == kAnySource ? kAnySource : group_[src];
  Message msg = world.mailbox(group_[my_index_]).Take(src_world, TagFor(tag));
  ctx_->clock().AdvanceTo(msg.delivered);
  if (actual_src != nullptr) *actual_src = msg.src;
  return std::move(msg.payload);
}

void Communicator::Barrier() {
  World& world = ctx_->world();
  if (static_cast<int>(group_.size()) == world.num_ranks()) {
    sim::SimTime release = world.Barrier(ctx_->rank(), ctx_->clock().now());
    ctx_->clock().AdvanceTo(release);
    return;
  }
  // Group barrier: an empty tree all-reduce carries the clock semantics
  // (every member ends at >= the max arrival time).
  std::vector<std::uint8_t> token(1, 0);
  AllReduce(token, [](std::uint8_t a, std::uint8_t b) {
    return static_cast<std::uint8_t>(a | b);
  });
}

Status Communicator::BarrierSerial(
    const std::function<sim::SimTime(sim::SimTime)>& serial) {
  World& world = ctx_->world();
  if (static_cast<int>(group_.size()) != world.num_ranks()) {
    // A sub-group cannot quiesce ranks outside itself, so a serial section
    // over a split communicator would still race the rest of the job.
    return FailedPrecondition(
        "BarrierSerial requires the world communicator");
  }
  sim::SimTime release =
      world.Barrier(ctx_->rank(), ctx_->clock().now(), &serial);
  ctx_->clock().AdvanceTo(release);
  return Status::Ok();
}

Communicator Communicator::Split(int color) {
  // Exchange (color, world rank) pairs; members with my color form the new
  // group ordered by current communicator index.
  std::vector<int> mine = {color, group_[my_index_]};
  auto all = AllGatherV(mine);
  std::vector<int> new_group;
  for (std::size_t i = 0; i + 1 < all.size(); i += 2) {
    if (all[i] == color) new_group.push_back(all[i + 1]);
  }
  Communicator sub(ctx_, std::move(new_group));
  sub.color_epoch_ = color_epoch_ + 1;
  return sub;
}

}  // namespace mm::comm
