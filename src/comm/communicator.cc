#include "mm/comm/communicator.h"

#include <algorithm>
#include <numeric>

namespace mm::comm {

namespace {

std::vector<int> BuildWorldToIndex(const std::vector<int>& group,
                                   int num_ranks) {
  std::vector<int> map(static_cast<std::size_t>(num_ranks), -1);
  for (std::size_t i = 0; i < group.size(); ++i) {
    MM_CHECK(group[i] >= 0 && group[i] < num_ranks);
    map[static_cast<std::size_t>(group[i])] = static_cast<int>(i);
  }
  return map;
}

}  // namespace

Communicator::Communicator(RankContext* ctx, std::vector<int> group)
    : ctx_(ctx), group_(std::move(group)) {
  auto it = std::find(group_.begin(), group_.end(), ctx->rank());
  MM_CHECK_MSG(it != group_.end(), "rank not in communicator group");
  my_index_ = static_cast<int>(it - group_.begin());
  world_to_index_ = BuildWorldToIndex(group_, ctx->size());
  retransmit_counter_ =
      ctx_->world().metrics().GetCounter("mm.net.retransmit_count");
  heartbeat_miss_counter_ =
      ctx_->world().metrics().GetCounter("mm.net.heartbeat_miss_count");
}

Communicator::Communicator(RankContext* ctx)
    : Communicator(ctx, [ctx] {
        std::vector<int> all(static_cast<std::size_t>(ctx->size()));
        std::iota(all.begin(), all.end(), 0);
        return all;
      }()) {}

void Communicator::CheckAlive() {
  World& world = ctx_->world();
  int me = group_[my_index_];
  world.MaybeSelfKill(me, ctx_->clock().now());
  // A rank killed externally (test harness, another rank's verdict) stops
  // communicating at its next op instead of sending as a zombie.
  if (world.RankDead(me)) throw RankDeathError(me);
}

void Communicator::SendBytes(int dst, int tag, const void* data,
                             std::size_t size) {
  MM_CHECK(dst >= 0 && dst < this->size());
  CheckAlive();
  World& world = ctx_->world();
  int dst_world = group_[dst];
  int src_world = group_[my_index_];
  sim::Network::NetOutcome outcome;
  const sim::SimTime send_start = ctx_->clock().now();
  auto res = world.cluster().network().Transfer(
      send_start, world.NodeOfRank(src_world), world.NodeOfRank(dst_world),
      size, &outcome);
  // MPI_Send semantics: the sender resumes once its buffer is reusable,
  // i.e. when egress serialization completes.
  ctx_->clock().AdvanceTo(res.egress_done);
  if (outcome.retransmits > 0) {
    retransmit_counter_->Inc(static_cast<std::uint64_t>(outcome.retransmits));
  }
  // Each logical message is its own flow: one msg_send async origin here,
  // one msg_recv terminal hop when the receiver pops it. Retransmitted /
  // duplicated copies share the seq AND the trace ids, and the mailbox
  // dedup guarantees at most one recv span per flow.
  telemetry::TraceContext mctx = telemetry::TraceRecorder::NewContext(
      static_cast<int>(world.NodeOfRank(src_world)));
  mctx.parent_span = telemetry::CurrentTraceContext().trace_id;
  world.trace().CompleteFlow("msg_send", "msg",
                             static_cast<int>(world.NodeOfRank(src_world)),
                             src_world, send_start, res.egress_done, mctx,
                             'a');
  Message msg;
  msg.src = src_world;
  msg.tag = TagFor(tag);
  msg.seq = world.NextSeq(src_world, dst_world);
  msg.payload.assign(static_cast<const std::uint8_t*>(data),
                     static_cast<const std::uint8_t*>(data) + size);
  msg.delivered = res.delivered;
  msg.trace_id = mctx.trace_id;
  msg.parent_span = mctx.parent_span;
  Mailbox& box = world.mailbox(dst_world);
  if (outcome.duplicated) {
    // The link delivered two copies; they share a sequence number, so the
    // mailbox accepts one and counts the other as a dropped duplicate.
    Message dup = msg;
    box.Deposit(std::move(msg));
    box.Deposit(std::move(dup));
  } else {
    box.Deposit(std::move(msg));
  }
}

StatusOr<std::vector<std::uint8_t>> Communicator::RecvBytesMatch(
    const std::vector<int>& srcs_world, int wire_tag, int* actual_src_world) {
  CheckAlive();
  World& world = ctx_->world();
  int me = group_[my_index_];
  std::vector<int> candidates = srcs_world;
  if (candidates.empty()) {
    candidates.reserve(group_.size() - 1);
    for (int r : group_) {
      if (r != me) candidates.push_back(r);
    }
  }
  auto match = [wire_tag, &candidates](const Message& m) {
    return m.tag == wire_tag &&
           std::find(candidates.begin(), candidates.end(), m.src) !=
               candidates.end();
  };
  auto cancelled = [&world, &candidates] {
    if (world.Revoked()) return true;
    for (int r : candidates) {
      if (!world.RankDead(r)) return false;
    }
    return true;
  };
  Message msg;
  if (world.mailbox(me).TakeWhere(match, cancelled, &msg)) {
    ctx_->clock().AdvanceTo(msg.delivered);
    if (msg.trace_id != 0) {
      // Terminal hop of the message flow (closes the 's' the sender
      // opened). Exactly one per logical message: duplicates never make
      // it out of the mailbox.
      telemetry::TraceContext mctx;
      mctx.trace_id = msg.trace_id;
      mctx.parent_span = msg.parent_span;
      world.trace().CompleteFlow("msg_recv", "msg",
                                 static_cast<int>(world.NodeOfRank(me)), me,
                                 msg.delivered, msg.delivered, mctx, 'f');
    }
    if (actual_src_world != nullptr) *actual_src_world = msg.src;
    return std::move(msg.payload);
  }
  // Cancelled. A death verdict is not free: the failure detector needs
  // miss_threshold silent heartbeat intervals after the (latest) death
  // before it may declare the peer dead, so charge that to the virtual
  // clock and to mm.net.heartbeat_miss_count.
  bool any_dead = false;
  sim::SimTime latest_death = 0.0;
  for (int r : candidates) {
    if (world.RankDead(r)) {
      any_dead = true;
      latest_death = std::max(latest_death, world.DeathTime(r));
    }
  }
  const FailureDetectorOptions& det = world.detector();
  if (any_dead) {
    ctx_->clock().AdvanceTo(std::max(ctx_->clock().now(), latest_death) +
                            det.DetectionLatency());
    heartbeat_miss_counter_->Inc(
        static_cast<std::uint64_t>(det.miss_threshold));
    return PeerDead("expected sender(s) declared dead after " +
                    std::to_string(det.miss_threshold) +
                    " missed heartbeats");
  }
  return PeerDead("communicator revoked for failure recovery");
}

StatusOr<std::vector<std::uint8_t>> Communicator::RecvBytesOr(
    int src, int tag, int* actual_src) {
  std::vector<int> srcs;
  if (src != kAnySource) {
    MM_CHECK(src >= 0 && src < this->size());
    srcs.push_back(group_[src]);
  }
  return RecvBytesMatch(srcs, TagFor(tag), actual_src);
}

std::vector<std::uint8_t> Communicator::RecvBytes(int src, int tag,
                                                  int* actual_src) {
  auto out = RecvBytesOr(src, tag, actual_src);
  MM_CHECK_MSG(out.ok(), out.status().ToString());
  return std::move(out).value();
}

void Communicator::SendEnvelope(int dst, int tag, StatusCode code,
                                const void* data, std::size_t size) {
  std::vector<std::uint8_t> buf(size + 1);
  buf[0] = static_cast<std::uint8_t>(code);
  if (size > 0) std::memcpy(buf.data() + 1, data, size);
  SendBytes(dst, tag, buf.data(), buf.size());
}

StatusOr<Communicator::Envelope> Communicator::RecvEnvelopeFrom(
    const std::vector<int>& pending, int tag) {
  std::vector<int> srcs;
  srcs.reserve(pending.size());
  for (int idx : pending) {
    MM_CHECK(idx >= 0 && idx < this->size());
    srcs.push_back(group_[idx]);
  }
  int src_world = -1;
  auto bytes = RecvBytesMatch(srcs, TagFor(tag), &src_world);
  if (!bytes.ok()) return bytes.status();
  if (bytes->empty()) return DataLoss("envelope missing verdict header");
  Envelope env;
  env.code = static_cast<StatusCode>((*bytes)[0]);
  env.payload.assign(bytes->begin() + 1, bytes->end());
  env.src_world = src_world;
  return env;
}

void Communicator::Barrier() {
  World& world = ctx_->world();
  if (static_cast<int>(group_.size()) == world.num_ranks()) {
    sim::SimTime release = world.Barrier(ctx_->rank(), ctx_->clock().now());
    ctx_->clock().AdvanceTo(release);
    return;
  }
  // Group barrier: an empty tree all-reduce carries the clock semantics
  // (every member ends at >= the max arrival time).
  std::vector<std::uint8_t> token(1, 0);
  AllReduce(token, [](std::uint8_t a, std::uint8_t b) {
    return static_cast<std::uint8_t>(a | b);
  });
}

Status Communicator::BarrierOr() {
  World& world = ctx_->world();
  if (static_cast<int>(group_.size()) == world.num_ranks()) {
    sim::SimTime release = world.Barrier(ctx_->rank(), ctx_->clock().now());
    ctx_->clock().AdvanceTo(release);
  } else {
    std::vector<std::uint8_t> token(1, 0);
    MM_RETURN_IF_ERROR(
        AllReduceOr(token, [](std::uint8_t a, std::uint8_t b) {
          return static_cast<std::uint8_t>(a | b);
        }));
  }
  // The barrier released over the live members; surface any death in this
  // group so the caller runs recovery before trusting collective results.
  for (int r : group_) {
    if (world.RankDead(r)) {
      return PeerDead("rank " + std::to_string(r) + " dead at barrier");
    }
  }
  return Status::Ok();
}

Status Communicator::BarrierSerial(
    const std::function<sim::SimTime(sim::SimTime)>& serial) {
  World& world = ctx_->world();
  if (static_cast<int>(group_.size()) != world.num_ranks()) {
    // A sub-group cannot quiesce ranks outside itself, so a serial section
    // over a split communicator would still race the rest of the job.
    return FailedPrecondition(
        "BarrierSerial requires the world communicator");
  }
  sim::SimTime release =
      world.Barrier(ctx_->rank(), ctx_->clock().now(), &serial);
  ctx_->clock().AdvanceTo(release);
  return Status::Ok();
}

Communicator Communicator::Split(int color) {
  // Exchange (color, world rank) pairs; members with my color form the new
  // group ordered by current communicator index.
  std::vector<int> mine = {color, group_[my_index_]};
  auto all = AllGatherV(mine);
  std::vector<int> new_group;
  for (std::size_t i = 0; i + 1 < all.size(); i += 2) {
    if (all[i] == color) new_group.push_back(all[i + 1]);
  }
  Communicator sub(ctx_, std::move(new_group));
  sub.color_epoch_ = color_epoch_ + 1;
  return sub;
}

Communicator Communicator::Shrink() {
  World& world = ctx_->world();
  std::vector<int> live;
  live.reserve(group_.size());
  for (int r : group_) {
    if (!world.RankDead(r)) live.push_back(r);
  }
  Communicator sub(ctx_, std::move(live));
  // Fresh tag epoch: a stale message from the failed epoch can never match
  // a receive posted on the survivor communicator.
  sub.color_epoch_ = color_epoch_ + 1;
  return sub;
}

StatusOr<Communicator> Communicator::ShrinkAfterFailure() {
  World& world = ctx_->world();
  std::function<sim::SimTime(sim::SimTime)> serial =
      [&world](sim::SimTime sync) {
        // Every live rank is parked here, so fencing cannot race a deposit
        // from a live sender; dead senders are sticky-dead and purged.
        world.FenceDeadRanks();
        world.ClearRevoke();
        return sync;
      };
  MM_RETURN_IF_ERROR(BarrierSerial(serial));
  return Shrink();
}

}  // namespace mm::comm
