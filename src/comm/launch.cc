#include "mm/comm/launch.h"

#include <algorithm>
#include <thread>

#include "mm/sim/oom.h"
#include "mm/util/logging.h"
#include "mm/util/mutex.h"

namespace mm::comm {

RunResult RunRanks(sim::Cluster& cluster, int num_ranks, int ranks_per_node,
                   const std::function<void(RankContext&)>& body) {
  return RunRanks(cluster, num_ranks, ranks_per_node, WorldOptions{}, body);
}

RunResult RunRanks(sim::Cluster& cluster, int num_ranks, int ranks_per_node,
                   WorldOptions options,
                   const std::function<void(RankContext&)>& body) {
  World world(&cluster, num_ranks, ranks_per_node, options);
  RunResult result;
  result.rank_times.assign(num_ranks, 0.0);
  mm::Mutex result_mu;

  std::vector<std::thread> threads;
  threads.reserve(num_ranks);
  for (int rank = 0; rank < num_ranks; ++rank) {
    threads.emplace_back([&, rank] {
      RankContext ctx(&world, rank);
      // Log lines from this rank carry its virtual clock and node id
      // ("[t=12.345s n3 WARN] ..."). The clock is thread-confined to this
      // rank, so reading it from the logging callback is safe.
      ScopedLogContext log_ctx([&ctx] { return ctx.clock().now(); },
                               static_cast<int>(ctx.node()));
      try {
        body(ctx);
        mm::MutexLock lock(result_mu);
        result.rank_times[rank] = ctx.clock().now();
      } catch (const sim::SimOutOfMemoryError& e) {
        mm::MutexLock lock(result_mu);
        result.oom = true;
        result.rank_times[rank] = ctx.clock().now();
        MM_DEBUG("launch") << "rank " << rank << " OOM-killed: " << e.what();
      } catch (const RankDeathError& e) {
        // Fault injection killed this rank; not a job error. The dead
        // rank's time stops at its death, survivors carry the job.
        mm::MutexLock lock(result_mu);
        result.dead_ranks.push_back(rank);
        result.rank_times[rank] = ctx.clock().now();
        MM_DEBUG("launch") << "rank " << rank << " fault-killed: " << e.what();
      } catch (const std::exception& e) {
        mm::MutexLock lock(result_mu);
        if (result.error.empty()) {
          result.error = std::string("rank ") + std::to_string(rank) + ": " +
                         e.what();
        }
        result.rank_times[rank] = ctx.clock().now();
      }
    });
  }
  for (auto& t : threads) t.join();

  std::sort(result.dead_ranks.begin(), result.dead_ranks.end());
  for (sim::SimTime t : result.rank_times) {
    result.max_time = std::max(result.max_time, t);
  }
  return result;
}

}  // namespace mm::comm
