#include "mm/comm/world.h"

#include <cmath>

#include "mm/util/status.h"

namespace mm::comm {

World::World(sim::Cluster* cluster, int num_ranks, int ranks_per_node)
    : cluster_(cluster),
      num_ranks_(num_ranks),
      ranks_per_node_(ranks_per_node),
      costs_(sim::CostModel::Default()) {
  MM_CHECK(num_ranks > 0 && ranks_per_node > 0);
  MM_CHECK_MSG(static_cast<std::size_t>((num_ranks + ranks_per_node - 1) /
                                        ranks_per_node) <=
                   cluster->num_nodes(),
               "not enough nodes for the requested rank layout");
  mailboxes_.reserve(num_ranks);
  for (int i = 0; i < num_ranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

sim::SimTime World::Barrier(int rank, sim::SimTime arrival) {
  return Barrier(rank, arrival, nullptr);
}

sim::SimTime World::Barrier(
    int rank, sim::SimTime arrival,
    const std::function<sim::SimTime(sim::SimTime)>* serial) {
  (void)rank;  // kept for symmetry with real collectives; barrier is rank-blind
  bool last = false;
  std::uint64_t my_generation = 0;
  sim::SimTime sync = 0.0;
  {
    MutexLock lock(barrier_mu_);
    my_generation = barrier_generation_;
    barrier_max_ = std::max(barrier_max_, arrival);
    if (++barrier_count_ == num_ranks_) {
      // Last arrival releases everyone. The synchronization itself costs a
      // tree of small messages: latency * ceil(log2(n)).
      double depth =
          num_ranks_ > 1
              ? std::ceil(std::log2(static_cast<double>(num_ranks_)))
              : 0.0;
      sync = barrier_max_ + depth * cluster_->network().spec().latency_s;
      last = true;
    }
  }
  if (last) {
    // The serial section runs before the generation bump: every other rank
    // has arrived (the count reached num_ranks_) and none returns until the
    // bump below, so the section owns the world. Running it outside the
    // lock keeps the barrier state clean if it recurses into comm code.
    sim::SimTime release = sync;
    if (serial != nullptr && *serial) {
      release = std::max(release, (*serial)(sync));
    }
    MutexLock lock(barrier_mu_);
    barrier_release_ = release;
    barrier_count_ = 0;
    barrier_max_ = 0.0;
    ++barrier_generation_;
    barrier_cv_.NotifyAll();
    return barrier_release_;
  }
  MutexLock lock(barrier_mu_);
  // Explicit wait loop (not a predicate lambda): the lambda body would be a
  // separate, unannotated function to the thread-safety analysis.
  while (barrier_generation_ == my_generation) {
    barrier_cv_.Wait(lock);
  }
  return barrier_release_;
}

}  // namespace mm::comm
