#include "mm/comm/world.h"

#include <algorithm>
#include <cmath>

#include "mm/util/status.h"

namespace mm::comm {

World::World(sim::Cluster* cluster, int num_ranks, int ranks_per_node,
             WorldOptions options)
    : cluster_(cluster),
      num_ranks_(num_ranks),
      ranks_per_node_(ranks_per_node),
      options_(options),
      costs_(sim::CostModel::Default()),
      dead_(static_cast<std::size_t>(num_ranks)),
      death_time_(static_cast<std::size_t>(num_ranks)),
      comm_ops_(static_cast<std::size_t>(num_ranks)),
      live_ranks_(num_ranks),
      send_seq_(static_cast<std::size_t>(num_ranks) * num_ranks),
      critpath_compute_ns_(static_cast<std::size_t>(num_ranks)),
      critpath_stall_ns_(static_cast<std::size_t>(num_ranks)),
      parked_gen_(static_cast<std::size_t>(num_ranks), kNotParked) {
  MM_CHECK(num_ranks > 0 && ranks_per_node > 0);
  MM_CHECK_MSG(static_cast<std::size_t>((num_ranks + ranks_per_node - 1) /
                                        ranks_per_node) <=
                   cluster->num_nodes(),
               "not enough nodes for the requested rank layout");
  mailboxes_.reserve(num_ranks);
  for (int i = 0; i < num_ranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    dead_[i].store(false, std::memory_order_relaxed);
    death_time_[i].store(0.0, std::memory_order_relaxed);
    comm_ops_[i].store(0, std::memory_order_relaxed);
    critpath_compute_ns_[i].store(0, std::memory_order_relaxed);
    critpath_stall_ns_[i].store(0, std::memory_order_relaxed);
  }
  for (auto& seq : send_seq_) seq.store(0, std::memory_order_relaxed);
}

std::pair<std::uint64_t, std::uint64_t> World::CritpathTotals() const {
  std::uint64_t compute = 0;
  std::uint64_t stall = 0;
  for (int r = 0; r < num_ranks_; ++r) {
    compute += critpath_compute_ns_[r].load(std::memory_order_relaxed);
    stall += critpath_stall_ns_[r].load(std::memory_order_relaxed);
  }
  return {compute, stall};
}

std::vector<int> World::LiveRanks() const {
  std::vector<int> live;
  live.reserve(static_cast<std::size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) {
    if (!RankDead(r)) live.push_back(r);
  }
  return live;
}

bool World::NodeIsDead(std::size_t node) const {
  bool any = false;
  for (int r = 0; r < num_ranks_; ++r) {
    if (NodeOfRank(r) != node) continue;
    any = true;
    if (!RankDead(r)) return false;
  }
  return any;
}

void World::KillRank(int rank, sim::SimTime now) {
  MM_CHECK(rank >= 0 && rank < num_ranks_);
  // Time-of-death is stored before the flag: the flag's release-store
  // publishes it to detectors that acquire-load the flag.
  death_time_[rank].store(now, std::memory_order_relaxed);
  bool expected = false;
  if (!dead_[rank].compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
    return;  // already dead (sticky)
  }
  live_ranks_.fetch_sub(1, std::memory_order_acq_rel);
  membership_epoch_.fetch_add(1, std::memory_order_acq_rel);
  {
    // Retract a parked arrival so the barrier does not count the dead rank
    // toward the current generation's release.
    MutexLock lock(barrier_mu_);
    if (parked_gen_[rank] == barrier_generation_) {
      parked_gen_[rank] = kNotParked;
      --barrier_count_;
    }
  }
  barrier_cv_.NotifyAll();
  for (auto& mb : mailboxes_) mb->Interrupt();
  // Postmortem hook, outside every World lock and only on the winning
  // registration: the observer may take service-side leaf locks to dump a
  // flight record.
  if (options_.death_observer) options_.death_observer(rank, now);
}

void World::MaybeSelfKill(int rank, sim::SimTime now) {
  const sim::RankKillSpec& kill = options_.kill;
  if (!kill.any() || kill.rank != rank || RankDead(rank)) return;
  std::uint64_t op =
      comm_ops_[rank].fetch_add(1, std::memory_order_relaxed) + 1;
  bool trigger = (kill.after_comm_ops > 0 && op >= kill.after_comm_ops) ||
                 (kill.at_time_s >= 0.0 && now >= kill.at_time_s);
  if (!trigger) return;
  KillRank(rank, now);
  throw RankDeathError(rank);
}

void World::Revoke() {
  revoked_.store(true, std::memory_order_release);
  for (auto& mb : mailboxes_) mb->Interrupt();
}

std::size_t World::FenceDeadRanks() {
  std::size_t purged = 0;
  for (int r = 0; r < num_ranks_; ++r) {
    if (!RankDead(r)) continue;
    for (auto& mb : mailboxes_) purged += mb->PurgeFrom(r);
  }
  if (purged > 0) fenced_any_.store(true, std::memory_order_release);
  return purged;
}

sim::SimTime World::Barrier(int rank, sim::SimTime arrival) {
  return Barrier(rank, arrival, nullptr);
}

sim::SimTime World::Barrier(
    int rank, sim::SimTime arrival,
    const std::function<sim::SimTime(sim::SimTime)>* serial) {
  if (RankDead(rank)) throw RankDeathError(rank);
  sim::SimTime sync = 0.0;
  std::uint64_t my_generation = 0;
  {
    MutexLock lock(barrier_mu_);
    my_generation = barrier_generation_;
    barrier_max_ = std::max(barrier_max_, arrival);
    ++barrier_count_;
    parked_gen_[rank] = my_generation;
    while (true) {
      // Death first: a rank killed while parked must unwind even when the
      // survivors' release already bumped the generation before it woke —
      // otherwise the dead rank escapes the barrier alive.
      if (RankDead(rank)) {
        // Retract the arrival (unless KillRank or the releaser already
        // did); the remaining live ranks release without us.
        if (parked_gen_[rank] == my_generation) {
          parked_gen_[rank] = kNotParked;
          --barrier_count_;
        }
        barrier_cv_.NotifyAll();
        throw RankDeathError(rank);
      }
      if (barrier_generation_ != my_generation) {
        // Released by another rank (parked_gen_ was cleared by it).
        return barrier_release_;
      }
      // Release condition: every live rank has arrived. Deaths lower the
      // live count (KillRank retracts parked arrivals), so a barrier never
      // waits for a rank that can no longer arrive.
      if (!barrier_releasing_ &&
          barrier_count_ >= live_ranks_.load(std::memory_order_acquire)) {
        barrier_releasing_ = true;
        parked_gen_[rank] = kNotParked;
        // The synchronization itself costs a tree of small messages:
        // latency * ceil(log2(live)).
        int n = std::max(1, live_ranks_.load(std::memory_order_acquire));
        double depth =
            n > 1 ? std::ceil(std::log2(static_cast<double>(n))) : 0.0;
        sync = barrier_max_ + depth * cluster_->network().spec().latency_s;
        break;
      }
      barrier_cv_.Wait(lock);
    }
  }
  // Releaser path. The serial section runs before the generation bump:
  // every other live rank is parked and none returns until the bump below,
  // so the section owns the world. Running it outside the lock keeps the
  // barrier state clean if it recurses into comm code.
  sim::SimTime release = sync;
  if (serial != nullptr && *serial) {
    release = std::max(release, (*serial)(sync));
  }
  {
    MutexLock lock(barrier_mu_);
    barrier_release_ = release;
    barrier_count_ = 0;
    barrier_max_ = 0.0;
    barrier_releasing_ = false;
    for (auto& g : parked_gen_) {
      if (g == my_generation) g = kNotParked;
    }
    ++barrier_generation_;
  }
  barrier_cv_.NotifyAll();
  return release;
}

}  // namespace mm::comm
