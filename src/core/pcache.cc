#include "mm/core/pcache.h"

#include <algorithm>
#include <utility>

#include "mm/core/optimistic_guard.h"

namespace mm::core {

void PCache::ResizeIndex() {
  // 4x the frame budget keeps linear probing short; power-of-two for
  // mask-based wrap. Overflowing inserts go unindexed (readers fall back).
  std::uint64_t frames =
      page_bytes_ > 0 ? capacity_bytes_ / page_bytes_ : 0;
  std::size_t want = 16;
  while (want < 4 * frames) want <<= 1;
  if (want > index_.size()) index_ = std::vector<IndexSlot>(want);
}

void PCache::IndexPut(std::uint64_t page, PageFrame* frame) {
  const std::size_t n = index_.size();
  const std::size_t mask = n - 1;
  std::size_t slot = MixPage(page) & mask;
  for (std::size_t probe = 0; probe < n; ++probe) {
    IndexSlot& s = index_[slot];
    std::uint64_t p = s.page.load(std::memory_order_relaxed);
    if (p == kSlotEmpty || p == kSlotTombstone || p == page) {
      // Frame pointer first, then the page key (release): a reader that
      // sees the key also sees the pointer. Identity is re-checked under
      // the frame's seqlock anyway, so a stale pairing only costs a retry.
      s.frame.store(frame, std::memory_order_release);
      s.page.store(page, std::memory_order_release);
      return;
    }
    slot = (slot + 1) & mask;
  }
  // Table full (pinned spans pushed residency past the budget): the frame
  // simply stays unindexed; optimistic readers miss and fall back.
}

void PCache::IndexErase(std::uint64_t page) {
  const std::size_t n = index_.size();
  const std::size_t mask = n - 1;
  std::size_t slot = MixPage(page) & mask;
  for (std::size_t probe = 0; probe < n; ++probe) {
    IndexSlot& s = index_[slot];
    std::uint64_t p = s.page.load(std::memory_order_relaxed);
    if (p == kSlotEmpty) return;  // never indexed (overflow insert)
    if (p == page) {
      // Tombstone keeps probe chains intact; the frame pointer is left
      // for any in-flight reader (it will fail seqlock validation).
      s.page.store(kSlotTombstone, std::memory_order_release);
      return;
    }
    slot = (slot + 1) & mask;
  }
}

PageFrame* PCache::Insert(std::uint64_t page, std::vector<std::uint8_t> data,
                          std::vector<std::uint8_t>* recycled) {
  MM_CHECK(data.size() == page_bytes_);
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    // Re-insert over an existing frame replaces it wholesale (same
    // semantics as a fresh fetch). A pinned frame cannot be replaced: a
    // Span still points into its bytes.
    PageFrame* old = it->second.get();
    MM_CHECK_MSG(old->pins.load(std::memory_order_relaxed) == 0,
                 "Insert over a pinned page");
    Unlist(old);
    {
      FrameWriteGuard wg(old);
      if (optimistic_readers_ && old->data.size() == data.size()) {
        // Published buffer is type-stable: copy (atomic stores) so a stale
        // reader never sees its memory freed; `data` goes back to the
        // caller below.
        OptimisticGuard::StoreBytes(*old, 0, data.data(), data.size());
      } else {
        old->data.swap(data);
        old->bytes.store(old->data.data(), std::memory_order_release);
      }
      old->dirty.Resize(elems_per_page_);
      old->dirty.Reset();
      old->version.store(0, std::memory_order_relaxed);
    }
    if (recycled != nullptr) *recycled = std::move(data);
    MoveToList(old, PageFrame::Residency::kClean);
    return old;
  }
  std::unique_ptr<PageFrame> frame;
  if (!free_frames_.empty()) {
    frame = std::move(free_frames_.back());
    free_frames_.pop_back();
  } else {
    frame = std::make_unique<PageFrame>();
    // Fresh frames start stable; enter a section so the init below is
    // bracketed exactly like a recycled (retired-odd) frame's re-init.
    frame->seq.Lock();
  }
  // The frame's seqlock is odd here — either left odd by Remove() or
  // locked just above — so a reader still holding its pointer cannot
  // validate while we re-target it.
  PageFrame* f = frame.get();
  if (optimistic_readers_ && f->data.size() == data.size()) {
    // Recycled frame whose buffer was already published: type-stable, so
    // copy in place (the latch is odd, a racing reader cannot validate)
    // and return the caller's own vector through *recycled.
    OptimisticGuard::StoreBytes(*f, 0, data.data(), data.size());
  } else {
    f->data.swap(data);
  }
  if (recycled != nullptr && !data.empty()) *recycled = std::move(data);
  f->bytes.store(f->data.data(), std::memory_order_release);
  f->dirty.Resize(elems_per_page_);
  f->dirty.Reset();
  f->version.store(0, std::memory_order_relaxed);
  f->pins.store(0, std::memory_order_relaxed);
  f->page.store(page, std::memory_order_relaxed);
  f->list = PageFrame::Residency::kNone;
  frames_.emplace(page, std::move(frame));
  IndexPut(page, f);
  f->seq.Unlock();  // publish: even again, new identity visible
  MoveToList(f, PageFrame::Residency::kClean);
  return f;
}

void PCache::MarkDirty(std::uint64_t page, std::size_t elem_lo,
                       std::size_t elem_hi) {
  auto it = frames_.find(page);
  MM_CHECK_MSG(it != frames_.end(), "MarkDirty on non-resident page");
  PageFrame* f = it->second.get();
  f->dirty.SetRange(elem_lo, elem_hi);
  if (f->list == PageFrame::Residency::kClean) {
    MoveToList(f, PageFrame::Residency::kDirty);
  }
}

void PCache::MarkClean(std::uint64_t page) {
  auto it = frames_.find(page);
  if (it == frames_.end()) return;
  PageFrame* f = it->second.get();
  f->dirty.Reset();
  if (f->list == PageFrame::Residency::kDirty) {
    MoveToList(f, PageFrame::Residency::kClean);
  }
  // Pinned frames stay unlisted; Unpin re-enlists by dirty state.
}

PageFrame* PCache::Remove(std::uint64_t page) {
  auto it = frames_.find(page);
  if (it == frames_.end()) return nullptr;
  PageFrame* f = it->second.get();
  MM_CHECK_MSG(f->pins.load(std::memory_order_relaxed) == 0,
               "Remove of a pinned page (live Span)");
  Unlist(f);
  // Retirement: flip the seqlock odd and LEAVE it odd — any optimistic
  // reader that raced this now fails validation. data/dirty stay intact
  // for the owner (eviction ships dirty runs from the retired frame);
  // Insert re-initializes and re-publishes when the frame is reused.
  f->seq.Lock();
  IndexErase(page);
  f->page.store(~0ULL, std::memory_order_relaxed);
  free_frames_.push_back(std::move(it->second));
  frames_.erase(it);
  return f;
}

void PCache::Pin(std::uint64_t page) {
  auto it = frames_.find(page);
  MM_CHECK_MSG(it != frames_.end(), "Pin of non-resident page");
  PageFrame* f = it->second.get();
  if (f->pins.fetch_add(1, std::memory_order_relaxed) == 0) {
    // Spans hand out raw pointers (plain loads/stores), which must never
    // overlap a validated optimistic read: hold the seqlock odd for the
    // whole pin so racing readers fail valid() and fall back.
    if (optimistic_readers_) f->seq.Lock();
    Unlist(f);
    ++num_pinned_;
  }
}

void PCache::Unpin(std::uint64_t page) {
  auto it = frames_.find(page);
  MM_CHECK_MSG(it != frames_.end(), "Unpin of non-resident page");
  PageFrame* f = it->second.get();
  MM_CHECK_MSG(f->pins.load(std::memory_order_relaxed) > 0,
               "Unpin without matching Pin");
  if (f->pins.fetch_sub(1, std::memory_order_relaxed) == 1) {
    if (optimistic_readers_) f->seq.Unlock();  // republish: pin held it odd
    --num_pinned_;
    MoveToList(f, f->dirty.Any() ? PageFrame::Residency::kDirty
                                 : PageFrame::Residency::kClean);
  }
}

std::vector<std::uint64_t> PCache::ResidentPages() const {
  std::vector<std::uint64_t> pages;
  pages.reserve(frames_.size());
  for (const auto& [page, _] : frames_) pages.push_back(page);
  return pages;
}

std::vector<std::uint64_t> PCache::DirtyPages() const {
  std::vector<std::uint64_t> pages;
  pages.reserve(dirty_lru_.size());
  for (const PageFrame* f : dirty_lru_) {
    pages.push_back(f->page.load(std::memory_order_relaxed));
  }
  if (num_pinned_ > 0) {
    for (const auto& [page, frame] : frames_) {
      if (frame->pins.load(std::memory_order_relaxed) > 0 &&
          frame->dirty.Any()) {
        pages.push_back(page);
      }
    }
  }
  return pages;
}

std::optional<PendingFetch> PCache::TakePending(std::uint64_t page) {
  auto it = pending_.find(page);
  if (it == pending_.end()) return std::nullopt;
  PendingFetch fetch = std::move(it->second);
  pending_.erase(it);
  return fetch;
}

void PCache::Clear() {
  MM_CHECK_MSG(num_pinned_ == 0, "Clear with live Spans (pinned frames)");
  // Pending fetches are detached, not drained: the worker fulfills its
  // promise into the shared state and the bytes are dropped when the last
  // future reference dies. Nothing here would adopt the outcome anyway.
  pending_.clear();
  clean_lru_.clear();
  dirty_lru_.clear();
  // Retire every frame (seqlock left odd, pointer parked on the free
  // list): a racing optimistic reader fails validation instead of touching
  // freed memory.
  for (auto& [page, frame] : frames_) {
    frame->seq.Lock();
    IndexErase(page);
    frame->page.store(~0ULL, std::memory_order_relaxed);
    free_frames_.push_back(std::move(frame));
  }
  frames_.clear();
}

}  // namespace mm::core
