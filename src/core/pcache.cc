#include "mm/core/pcache.h"

#include <algorithm>

namespace mm::core {

PageFrame* PCache::Insert(std::uint64_t page, std::vector<std::uint8_t> data) {
  MM_CHECK(data.size() == page_bytes_);
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    // Re-insert over an existing frame replaces it wholesale (same
    // semantics as a fresh fetch). A pinned frame cannot be replaced: a
    // Span still points into its bytes.
    PageFrame* old = &it->second;
    MM_CHECK_MSG(old->pins == 0, "Insert over a pinned page");
    Unlist(old);
    old->data = std::move(data);
    old->dirty.Resize(elems_per_page_);
    old->dirty.Reset();
    old->version = 0;
    MoveToList(old, PageFrame::Residency::kClean);
    return old;
  }
  PageFrame frame;
  frame.data = std::move(data);
  frame.dirty.Resize(elems_per_page_);
  frame.page = page;
  auto [ins, inserted] = frames_.emplace(page, std::move(frame));
  (void)inserted;  // caller checked Find() first, so the emplace always inserts
  PageFrame* f = &ins->second;
  MoveToList(f, PageFrame::Residency::kClean);
  return f;
}

void PCache::MarkDirty(std::uint64_t page, std::size_t elem_lo,
                       std::size_t elem_hi) {
  auto it = frames_.find(page);
  MM_CHECK_MSG(it != frames_.end(), "MarkDirty on non-resident page");
  PageFrame* f = &it->second;
  f->dirty.SetRange(elem_lo, elem_hi);
  if (f->list == PageFrame::Residency::kClean) {
    MoveToList(f, PageFrame::Residency::kDirty);
  }
}

void PCache::MarkClean(std::uint64_t page) {
  auto it = frames_.find(page);
  if (it == frames_.end()) return;
  PageFrame* f = &it->second;
  f->dirty.Reset();
  if (f->list == PageFrame::Residency::kDirty) {
    MoveToList(f, PageFrame::Residency::kClean);
  }
  // Pinned frames stay unlisted; Unpin re-enlists by dirty state.
}

std::optional<PageFrame> PCache::Remove(std::uint64_t page) {
  auto it = frames_.find(page);
  if (it == frames_.end()) return std::nullopt;
  MM_CHECK_MSG(it->second.pins == 0, "Remove of a pinned page (live Span)");
  Unlist(&it->second);
  PageFrame frame = std::move(it->second);
  frames_.erase(it);
  return frame;
}

void PCache::Pin(std::uint64_t page) {
  auto it = frames_.find(page);
  MM_CHECK_MSG(it != frames_.end(), "Pin of non-resident page");
  PageFrame* f = &it->second;
  if (f->pins++ == 0) {
    Unlist(f);
    ++num_pinned_;
  }
}

void PCache::Unpin(std::uint64_t page) {
  auto it = frames_.find(page);
  MM_CHECK_MSG(it != frames_.end(), "Unpin of non-resident page");
  PageFrame* f = &it->second;
  MM_CHECK_MSG(f->pins > 0, "Unpin without matching Pin");
  if (--f->pins == 0) {
    --num_pinned_;
    MoveToList(f, f->dirty.Any() ? PageFrame::Residency::kDirty
                                 : PageFrame::Residency::kClean);
  }
}

std::vector<std::uint64_t> PCache::ResidentPages() const {
  std::vector<std::uint64_t> pages;
  pages.reserve(frames_.size());
  for (const auto& [page, _] : frames_) pages.push_back(page);
  return pages;
}

std::vector<std::uint64_t> PCache::DirtyPages() const {
  std::vector<std::uint64_t> pages;
  pages.reserve(dirty_lru_.size());
  for (const PageFrame* f : dirty_lru_) pages.push_back(f->page);
  if (num_pinned_ > 0) {
    for (const auto& [page, frame] : frames_) {
      if (frame.pins > 0 && frame.dirty.Any()) pages.push_back(page);
    }
  }
  return pages;
}

std::optional<PendingFetch> PCache::TakePending(std::uint64_t page) {
  auto it = pending_.find(page);
  if (it == pending_.end()) return std::nullopt;
  PendingFetch fetch = std::move(it->second);
  pending_.erase(it);
  return fetch;
}

void PCache::Clear() {
  MM_CHECK_MSG(num_pinned_ == 0, "Clear with live Spans (pinned frames)");
  // Pending fetches are detached, not drained: the worker fulfills its
  // promise into the shared state and the bytes are dropped when the last
  // future reference dies. Nothing here would adopt the outcome anyway.
  pending_.clear();
  clean_lru_.clear();
  dirty_lru_.clear();
  frames_.clear();
}

}  // namespace mm::core
