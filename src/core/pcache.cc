#include "mm/core/pcache.h"

#include <algorithm>

namespace mm::core {

PageFrame* PCache::Find(std::uint64_t page) {
  auto it = frames_.find(page);
  if (it == frames_.end()) return nullptr;
  it->second.last_access = ++access_seq_;
  return &it->second;
}

PageFrame* PCache::Insert(std::uint64_t page, std::vector<std::uint8_t> data) {
  MM_CHECK(data.size() == page_bytes_);
  PageFrame frame;
  frame.data = std::move(data);
  frame.dirty.Resize(elems_per_page_);
  frame.last_access = ++access_seq_;
  auto [it, inserted] = frames_.insert_or_assign(page, std::move(frame));
  (void)inserted;
  return &it->second;
}

void PCache::MarkDirty(std::uint64_t page, std::size_t elem_lo,
                       std::size_t elem_hi) {
  auto it = frames_.find(page);
  MM_CHECK_MSG(it != frames_.end(), "MarkDirty on non-resident page");
  it->second.dirty.SetRange(elem_lo, elem_hi);
}

std::optional<std::uint64_t> PCache::PickVictim() const {
  // Clean LRU pages first (free to drop); dirty LRU otherwise.
  const std::uint64_t kNone = ~0ULL;
  std::uint64_t best_clean = kNone, best_dirty = kNone;
  std::uint64_t clean_stamp = ~0ULL, dirty_stamp = ~0ULL;
  for (const auto& [page, frame] : frames_) {
    if (frame.dirty.Any()) {
      if (frame.last_access < dirty_stamp) {
        dirty_stamp = frame.last_access;
        best_dirty = page;
      }
    } else if (frame.last_access < clean_stamp) {
      clean_stamp = frame.last_access;
      best_clean = page;
    }
  }
  if (best_clean != kNone) return best_clean;
  if (best_dirty != kNone) return best_dirty;
  return std::nullopt;
}

std::optional<PageFrame> PCache::Remove(std::uint64_t page) {
  auto it = frames_.find(page);
  if (it == frames_.end()) return std::nullopt;
  PageFrame frame = std::move(it->second);
  frames_.erase(it);
  return frame;
}

std::vector<std::uint64_t> PCache::ResidentPages() const {
  std::vector<std::uint64_t> pages;
  pages.reserve(frames_.size());
  for (const auto& [page, _] : frames_) pages.push_back(page);
  return pages;
}

std::vector<std::uint64_t> PCache::DirtyPages() const {
  std::vector<std::uint64_t> pages;
  for (const auto& [page, frame] : frames_) {
    if (frame.dirty.Any()) pages.push_back(page);
  }
  return pages;
}

std::optional<PendingFetch> PCache::TakePending(std::uint64_t page) {
  auto it = pending_.find(page);
  if (it == pending_.end()) return std::nullopt;
  PendingFetch fetch = std::move(it->second);
  pending_.erase(it);
  return fetch;
}

void PCache::Clear() {
  // Drain pending fetches so worker promises are not abandoned mid-flight.
  for (auto& [page, fetch] : pending_) fetch.future.wait();
  pending_.clear();
  frames_.clear();
}

}  // namespace mm::core
