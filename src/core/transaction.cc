#include "mm/core/transaction.h"

#include <algorithm>
#include <map>

namespace mm::core {

std::vector<PageRegion> Transaction::GetPages(std::size_t pos,
                                              std::size_t count) const {
  // Generic path: walk each access, merge per-page byte ranges. Regions are
  // coalesced per page as [min_off, max_off) bounding ranges, which is what
  // the prefetcher and partial-paging machinery need.
  std::size_t end = std::min(pos + count, TotalAccesses());
  std::map<std::size_t, std::pair<std::size_t, std::size_t>> per_page;
  for (std::size_t p = pos; p < end; ++p) {
    std::size_t elem = ElementAt(p);
    std::size_t page = elem / elems_per_page_;
    std::size_t off = (elem % elems_per_page_) * elem_size_;
    auto [it, inserted] =
        per_page.try_emplace(page, off, off + elem_size_);
    if (!inserted) {
      it->second.first = std::min(it->second.first, off);
      it->second.second = std::max(it->second.second, off + elem_size_);
    }
  }
  std::vector<PageRegion> out;
  out.reserve(per_page.size());
  for (const auto& [page, range] : per_page) {
    out.push_back(PageRegion{page, range.first, range.second - range.first,
                             writes()});
  }
  return out;
}

std::vector<PageRegion> SeqTx::GetPages(std::size_t pos,
                                        std::size_t count) const {
  // Closed form: a contiguous element range maps to a run of pages with
  // partial first/last regions.
  std::size_t end_pos = std::min(pos + count, count_);
  if (pos >= end_pos) return {};
  std::size_t first_elem = begin_elem_ + pos;
  std::size_t last_elem = begin_elem_ + end_pos - 1;
  std::size_t first_page = first_elem / elems_per_page_;
  std::size_t last_page = last_elem / elems_per_page_;
  std::vector<PageRegion> out;
  out.reserve(last_page - first_page + 1);
  for (std::size_t page = first_page; page <= last_page; ++page) {
    std::size_t page_first = page * elems_per_page_;
    std::size_t lo = std::max(first_elem, page_first);
    std::size_t hi = std::min(last_elem, page_first + elems_per_page_ - 1);
    out.push_back(PageRegion{page, (lo - page_first) * elem_size_,
                             (hi - lo + 1) * elem_size_, writes()});
  }
  return out;
}

}  // namespace mm::core
