#include "mm/core/coherence.h"

namespace mm::core {

const char* CoherenceModeName(CoherenceMode mode) {
  switch (mode) {
    case CoherenceMode::kLocal:
      return "local";
    case CoherenceMode::kReadOnlyGlobal:
      return "read_only_global";
    case CoherenceMode::kWriteOnlyGlobal:
      return "write_only_global";
    case CoherenceMode::kAppendOnlyGlobal:
      return "append_only_global";
    case CoherenceMode::kReadWriteGlobal:
      return "read_write_global";
  }
  return "?";
}

bool AllowsOptimisticReads(CoherenceMode mode) {
  return mode != CoherenceMode::kWriteOnlyGlobal;
}

}  // namespace mm::core
