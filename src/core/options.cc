#include "mm/core/options.h"

namespace mm::core {

namespace {

StatusOr<sim::TierKind> ParseTierKind(const std::string& name) {
  if (name == "dram") return sim::TierKind::kDram;
  if (name == "nvme") return sim::TierKind::kNvme;
  if (name == "ssd") return sim::TierKind::kSsd;
  if (name == "hdd") return sim::TierKind::kHdd;
  return InvalidArgument("unknown tier kind '" + name + "'");
}

}  // namespace

StatusOr<ServiceOptions> ServiceOptions::FromYaml(const yaml::Node& root) {
  ServiceOptions opts;
  const yaml::Node& runtime = root["runtime"];
  if (runtime.IsMap()) {
    opts.workers_per_node =
        static_cast<int>(runtime.GetInt("workers_per_node", opts.workers_per_node));
    opts.low_latency_workers = static_cast<int>(
        runtime.GetInt("low_latency_workers", opts.low_latency_workers));
    opts.low_latency_threshold =
        runtime.GetBytes("low_latency_threshold", opts.low_latency_threshold);
    opts.organize_every =
        static_cast<int>(runtime.GetInt("organize_every", opts.organize_every));
    opts.enable_prefetch =
        runtime.GetBool("enable_prefetch", opts.enable_prefetch);
    opts.enable_organizer =
        runtime.GetBool("enable_organizer", opts.enable_organizer);
    opts.enable_optimistic_reads = runtime.GetBool(
        "enable_optimistic_reads", opts.enable_optimistic_reads);
    opts.verify_checksums =
        runtime.GetBool("verify_checksums", opts.verify_checksums);
    std::string policy = runtime.GetString("recovery_policy", "");
    if (policy == "rehome") {
      opts.recovery_policy = RecoveryPolicy::kRehome;
    } else if (policy == "rollback") {
      opts.recovery_policy = RecoveryPolicy::kRollback;
    } else if (!policy.empty()) {
      return InvalidArgument("unknown recovery_policy '" + policy +
                             "' (want rehome|rollback)");
    }
  }
  if (root.Has("retry")) {
    MM_ASSIGN_OR_RETURN(opts.retry, RetryPolicy::FromYaml(root["retry"]));
  }
  if (root.Has("faults")) {
    MM_ASSIGN_OR_RETURN(opts.faults, sim::FaultConfig::FromYaml(root["faults"]));
  }
  const yaml::Node& telemetry = root["telemetry"];
  if (telemetry.IsMap()) {
    opts.telemetry.enabled =
        telemetry.GetBool("enabled", opts.telemetry.enabled);
    opts.telemetry.trace_path =
        telemetry.GetString("trace_path", opts.telemetry.trace_path);
    opts.telemetry.trace_capacity =
        telemetry.GetBytes("trace_capacity", opts.telemetry.trace_capacity);
    opts.telemetry.report_interval_s = telemetry.GetDouble(
        "report_interval_s", opts.telemetry.report_interval_s);
    opts.telemetry.report_path =
        telemetry.GetString("report_path", opts.telemetry.report_path);
    opts.telemetry.flightrec_dir =
        telemetry.GetString("flightrec_dir", opts.telemetry.flightrec_dir);
    opts.telemetry.flightrec_capacity = static_cast<std::uint64_t>(
        telemetry.GetInt("flightrec_capacity",
                         static_cast<std::int64_t>(
                             opts.telemetry.flightrec_capacity)));
  }
  const yaml::Node& ckpt = root["ckpt"];
  if (ckpt.IsMap()) {
    opts.ckpt.dir = ckpt.GetString("dir", opts.ckpt.dir);
    opts.ckpt.journal_writeback =
        ckpt.GetBool("journal_writeback", opts.ckpt.journal_writeback);
  }
  const yaml::Node& tiers = root["tiers"];
  if (tiers.IsList()) {
    for (const yaml::Node& tier : tiers.Items()) {
      if (!tier.IsMap()) return InvalidArgument("tier entry must be a map");
      MM_ASSIGN_OR_RETURN(sim::TierKind kind,
                          ParseTierKind(tier.GetString("kind", "")));
      std::uint64_t cap = tier.GetBytes("capacity", 0);
      if (cap == 0) return InvalidArgument("tier capacity must be set");
      opts.tier_grants.push_back({kind, cap});
    }
  }
  if (opts.workers_per_node < 1) {
    return InvalidArgument("workers_per_node must be >= 1");
  }
  return opts;
}

}  // namespace mm::core
