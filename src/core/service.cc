#include "mm/core/service.h"

#include <algorithm>

#include "mm/sim/cost_model.h"
#include "mm/telemetry/critpath.h"
#include "mm/telemetry/flightrec.h"
#include "mm/util/logging.h"

namespace mm::core {

namespace {
constexpr std::uint64_t kControlBytes = 64;  // task request envelope

void Merge(sim::SimTime end, sim::SimTime* done) {
  if (done != nullptr) *done = std::max(*done, end);
}

const char* TaskKindName(MemoryTask::Kind kind) {
  switch (kind) {
    case MemoryTask::Kind::kGetPage:
      return "get_page";
    case MemoryTask::Kind::kWritePartial:
      return "write_partial";
    case MemoryTask::Kind::kScore:
      return "score";
    case MemoryTask::Kind::kStageOut:
      return "stage_out";
    case MemoryTask::Kind::kErase:
      return "erase";
    case MemoryTask::Kind::kBarrier:
      return "barrier";
  }
  return "task";
}

// Names are spelt out per kind so they stay literal (lint rule MML006
// validates literals).
telemetry::Histogram* TaskHistogram(telemetry::NodeSink sink,
                                    MemoryTask::Kind kind) {
  std::vector<double> bounds = telemetry::LatencyBoundsNs();
  switch (kind) {
    case MemoryTask::Kind::kGetPage:
      return sink.metrics->GetHistogram("mm.task.get_page_ns",
                                        std::move(bounds));
    case MemoryTask::Kind::kWritePartial:
      return sink.metrics->GetHistogram("mm.task.write_partial_ns",
                                        std::move(bounds));
    case MemoryTask::Kind::kScore:
      return sink.metrics->GetHistogram("mm.task.score_ns", std::move(bounds));
    case MemoryTask::Kind::kStageOut:
      return sink.metrics->GetHistogram("mm.task.stage_out_ns",
                                        std::move(bounds));
    case MemoryTask::Kind::kBarrier:
      return sink.metrics->GetHistogram("mm.task.barrier_ns",
                                        std::move(bounds));
    default:
      return sink.metrics->GetHistogram("mm.task.erase_ns", std::move(bounds));
  }
}

telemetry::Gauge* TierUsedGauge(telemetry::MetricsRegistry& reg,
                                sim::TierKind kind) {
  switch (kind) {
    case sim::TierKind::kDram:
      return reg.GetGauge("mm.tier.dram_used_bytes");
    case sim::TierKind::kNvme:
      return reg.GetGauge("mm.tier.nvme_used_bytes");
    case sim::TierKind::kSsd:
      return reg.GetGauge("mm.tier.ssd_used_bytes");
    case sim::TierKind::kHdd:
      return reg.GetGauge("mm.tier.hdd_used_bytes");
    default:
      return reg.GetGauge("mm.tier.pfs_used_bytes");
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// NodeRuntime
// ---------------------------------------------------------------------------

NodeRuntime::NodeRuntime(Service* service, std::size_t node_id,
                         const ServiceOptions& options,
                         const std::vector<storage::TierGrant>& grants)
    : service_(service),
      node_id_(node_id),
      options_(options),
      tel_(service->telemetry_sink(node_id)),
      task_executed_(tel_.metrics->GetCounter("mm.task.executed_count")),
      queue_depth_(tel_.metrics->GetGauge("mm.task.queue_depth_count")),
      stager_read_bytes_(tel_.metrics->GetCounter("mm.stager.read_bytes")),
      stager_write_bytes_(tel_.metrics->GetCounter("mm.stager.write_bytes")),
      stager_errors_(tel_.metrics->GetCounter("mm.stager.errors_count")),
      stager_retries_(tel_.metrics->GetCounter("mm.stager.retries_count")),
      task_latency_{TaskHistogram(tel_, MemoryTask::Kind::kGetPage),
                    TaskHistogram(tel_, MemoryTask::Kind::kWritePartial),
                    TaskHistogram(tel_, MemoryTask::Kind::kScore),
                    TaskHistogram(tel_, MemoryTask::Kind::kStageOut),
                    TaskHistogram(tel_, MemoryTask::Kind::kErase),
                    TaskHistogram(tel_, MemoryTask::Kind::kBarrier)},
      ckpt_journal_bytes_(tel_.metrics->GetCounter("mm.ckpt.journal_bytes")),
      readpath_hit_(
          tel_.metrics->GetCounter("mm.readpath.fastpath_hit_count")),
      readpath_retry_(tel_.metrics->GetCounter("mm.readpath.retry_count")),
      readpath_fallback_(
          tel_.metrics->GetCounter("mm.readpath.fallback_count")),
      bm_(&service->cluster().node(node_id), grants,
          &service->fault_injector(), options.retry, tel_) {
  bm_.SetTierFailureHandler(
      [this](sim::TierKind kind, const std::vector<storage::BlobId>& lost,
             sim::SimTime now) {
        service_->OnTierFailure(node_id_, kind, lost, now);
      });
  int high = std::max(1, options_.workers_per_node);
  int low = std::max(0, options_.low_latency_workers);
  for (int i = 0; i < high; ++i) {
    high_queues_.push_back(std::make_unique<BlockingQueue<MemoryTask>>());
  }
  for (int i = 0; i < low; ++i) {
    low_queues_.push_back(std::make_unique<BlockingQueue<MemoryTask>>());
  }
  int wid = 0;
  auto spawn = [this, &wid](BlockingQueue<MemoryTask>* q) {
    int id = wid++;
    workers_.emplace_back([this, q, id] { WorkerLoop(q, id); });
  };
  for (auto& q : high_queues_) spawn(q.get());
  for (auto& q : low_queues_) spawn(q.get());
}

NodeRuntime::~NodeRuntime() { Shutdown(); }

void NodeRuntime::Shutdown() {
  if (shut_down_.exchange(true)) return;
  for (auto& q : high_queues_) q->Close();
  for (auto& q : low_queues_) q->Close();
  for (auto& t : workers_) t.join();
  workers_.clear();
}

sim::SimTime NodeRuntime::Quiesce(sim::SimTime now) {
  // One barrier marker per queue: FIFO order guarantees that by the time a
  // marker's promise resolves, every task enqueued before it has executed.
  // Markers go straight to the queues — not through Submit's digest routing
  // — so every queue in both groups drains, and the depth gauge is mirrored
  // by hand for the same reason.
  std::vector<std::future<TaskOutcome>> pending;
  auto push_marker = [&](BlockingQueue<MemoryTask>* q) {
    MemoryTask marker;
    marker.kind = MemoryTask::Kind::kBarrier;
    marker.issue_time = now;
    marker.promise = std::make_shared<std::promise<TaskOutcome>>();
    std::future<TaskOutcome> fut = marker.promise->get_future();
    if (shut_down_.load(std::memory_order_acquire) ||
        !q->Push(std::move(marker))) {
      // Closed queue: its worker already drained and exited — nothing to
      // wait for (and the unfulfilled promise must not be waited on).
      return;
    }
    queue_depth_->Add(1);
    pending.push_back(std::move(fut));
  };
  for (auto& q : high_queues_) push_marker(q.get());
  for (auto& q : low_queues_) push_marker(q.get());
  sim::SimTime done = now;
  for (auto& fut : pending) {
    done = std::max(done, fut.get().done);
  }
  return done;
}

Status NodeRuntime::Submit(MemoryTask task) {
  bool is_write = task.kind == MemoryTask::Kind::kWritePartial ||
                  task.kind == MemoryTask::Kind::kStageOut ||
                  task.kind == MemoryTask::Kind::kErase;
  std::uint64_t digest = task.id.Digest();
  // Writes always go to the (ordered, page-hashed) high-latency group so
  // same-page writes serialize; small reads and scores take the
  // low-latency group to dodge head-of-line blocking (paper §III-B).
  BlockingQueue<MemoryTask>* queue;
  if (!is_write && !low_queues_.empty() &&
      TaskBytes(task) < options_.low_latency_threshold) {
    queue = low_queues_[digest % low_queues_.size()].get();
  } else {
    queue = high_queues_[digest % high_queues_.size()].get();
  }
  // A shutdown race is an orderly rejection, not a crash: Push refuses
  // (without consuming the task) once the queue is closed, and the task's
  // promise — if any — is fulfilled so no waiter hangs.
  if (!shut_down_.load(std::memory_order_acquire) &&
      queue->Push(std::move(task))) {
    queue_depth_->Add(1);
    return Status::Ok();
  }
  Status st = FailedPrecondition("submit after runtime shutdown");
  if (task.promise != nullptr) {
    TaskOutcome out;
    out.status = st;
    out.done = task.issue_time;
    task.promise->set_value(std::move(out));
  }
  return st;
}

void NodeRuntime::WorkerLoop(BlockingQueue<MemoryTask>* queue, int worker_id) {
  // Worker log lines carry the node rank. No virtual-clock callback: tasks
  // carry their own issue times, there is no per-worker clock to sample.
  ScopedLogContext log_ctx(nullptr, static_cast<int>(node_id_));
  while (auto task = queue->Pop()) {
    queue_depth_->Add(-1);
    const MemoryTask::Kind kind = task->kind;
    const sim::SimTime issued = task->issue_time;
    const telemetry::TraceContext tctx = task->tctx;
    TaskOutcome outcome;
    {
      // Ambient context for the duration of the task: nested stager/tier
      // spans join the origin's flow without parameter plumbing.
      telemetry::TraceContextScope flow_scope(tctx);
      outcome = Execute(*task);
    }
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    task_executed_->Inc();
    task_latency_[static_cast<int>(kind)]->Observe((outcome.done - issued) *
                                                   1e9);
    if (tctx.valid()) {
      // Child span of the origin's flow; terminal tasks (async write
      // commits) close the flow, everything else is a plain step.
      tel_.trace->CompleteFlow(TaskKindName(kind), "task", tel_.node,
                               worker_id, issued, outcome.done, tctx,
                               task->trace_terminal ? 'f' : 't');
    } else {
      tel_.trace->Complete(TaskKindName(kind), "task", tel_.node, worker_id,
                           issued, outcome.done);
    }
    // Recycle the request payload (Execute consumed it) whether the task
    // succeeded or failed, so error paths do not leak buffers out of the
    // pool's circulation.
    if (task->data.capacity() > 0) pool_.Release(std::move(task->data));
    if (task->promise != nullptr) {
      task->promise->set_value(std::move(outcome));
    } else if (outcome.data.capacity() > 0) {
      // Fire-and-forget: nobody adopts the outcome, reuse its buffer.
      pool_.Release(std::move(outcome.data));
    }
  }
}

TaskOutcome NodeRuntime::Execute(MemoryTask& task) {
  // Every task pays the software dispatch cost before touching devices.
  task.issue_time += sim::CostModel::Default().task_dispatch_s;
  switch (task.kind) {
    case MemoryTask::Kind::kGetPage:
      return ExecuteGetPage(task);
    case MemoryTask::Kind::kWritePartial:
      return ExecuteWritePartial(task);
    case MemoryTask::Kind::kScore:
      return ExecuteScore(task);
    case MemoryTask::Kind::kStageOut:
      return ExecuteStageOut(task);
    case MemoryTask::Kind::kErase:
      return ExecuteErase(task);
    case MemoryTask::Kind::kBarrier: {
      // Quiesce marker: by FIFO order, every task enqueued before it has
      // executed. Nothing to do but report when the queue drained.
      TaskOutcome out;
      out.done = task.issue_time;
      return out;
    }
  }
  return TaskOutcome{Internal("unknown task kind"), {}, task.issue_time};
}

Status NodeRuntime::BackendRead(VectorMeta& meta, std::uint64_t offset,
                                std::uint64_t size,
                                std::vector<std::uint8_t>* bytes,
                                sim::SimTime now, sim::SimTime* done) {
  sim::Device& pfs = service_->cluster().pfs();
  sim::SimTime end = now;
  int attempts = 0;
  Status st = RunWithRetry(
      options_.retry, now, &end,
      [&](double start, double* attempt_done) -> Status {
        auto d = service_->fault_injector().OnBackendOp();
        if (d.kind == sim::FaultInjector::Decision::Kind::kPermanent) {
          return Unavailable("PFS backend unavailable");
        }
        if (d.kind == sim::FaultInjector::Decision::Kind::kTransient) {
          sim::SimTime attempt_end =
              pfs.Stall(start, pfs.spec().read_latency_s * d.spike_factor);
          *attempt_done = std::max(*attempt_done, attempt_end);
          return IoError("injected transient fault on backend read of '" +
                         meta.key + "'");
        }
        bytes->clear();
        MM_RETURN_IF_ERROR(meta.stager->Read(meta.uri, offset, size, bytes));
        *attempt_done =
            std::max(*attempt_done, pfs.Read(start, size, d.spike_factor));
        return Status::Ok();
      },
      &attempts);
  Merge(end, done);
  if (!st.ok()) {
    // One warning per retry burst — RunWithRetry already exhausted the
    // per-attempt detail; repeating the URI for every attempt only de-tunes
    // the log. The counter is what the epoch report surfaces.
    stager_errors_->Inc();
    MM_WARN("stager") << "backend read of '" << meta.key << "' failed after "
                      << attempts << " attempt(s): " << st.ToString();
    return st;
  }
  if (attempts > 1) {
    stager_retries_->Inc(static_cast<std::uint64_t>(attempts - 1));
  }
  stager_read_bytes_->Inc(bytes->size());
  tel_.trace->CompleteFlow("stager_read", "stager", tel_.node, 0, now, end,
                           telemetry::CurrentTraceContext(), 't');
  return st;
}

Status NodeRuntime::BackendWrite(VectorMeta& meta, std::uint64_t offset,
                                 const std::uint8_t* bytes, std::uint64_t size,
                                 sim::SimTime now, sim::SimTime* done) {
  sim::Device& pfs = service_->cluster().pfs();
  sim::SimTime end = now;
  int attempts = 0;
  Status st = RunWithRetry(
      options_.retry, now, &end,
      [&](double start, double* attempt_done) -> Status {
        auto d = service_->fault_injector().OnBackendOp();
        if (d.kind == sim::FaultInjector::Decision::Kind::kPermanent) {
          return Unavailable("PFS backend unavailable");
        }
        if (d.kind == sim::FaultInjector::Decision::Kind::kTransient) {
          sim::SimTime attempt_end =
              pfs.Stall(start, pfs.spec().write_latency_s * d.spike_factor);
          *attempt_done = std::max(*attempt_done, attempt_end);
          return IoError("injected transient fault on backend write of '" +
                         meta.key + "'");
        }
        MM_RETURN_IF_ERROR(meta.stager->Write(meta.uri, offset, bytes, size));
        *attempt_done =
            std::max(*attempt_done, pfs.Write(start, size, d.spike_factor));
        return Status::Ok();
      },
      &attempts);
  Merge(end, done);
  if (!st.ok()) {
    // Same once-per-burst policy as BackendRead.
    stager_errors_->Inc();
    MM_WARN("stager") << "backend write of '" << meta.key << "' failed after "
                      << attempts << " attempt(s): " << st.ToString();
    return st;
  }
  if (attempts > 1) {
    stager_retries_->Inc(static_cast<std::uint64_t>(attempts - 1));
  }
  stager_write_bytes_->Inc(size);
  tel_.trace->CompleteFlow("stager_write", "stager", tel_.node, 0, now, end,
                           telemetry::CurrentTraceContext(), 't');
  return st;
}

Status NodeRuntime::JournaledBackendWrite(VectorMeta& meta,
                                          const storage::BlobId& id,
                                          std::uint64_t version,
                                          std::uint32_t page_crc,
                                          std::uint64_t offset,
                                          const std::uint8_t* bytes,
                                          std::uint64_t size, sim::SimTime now,
                                          sim::SimTime* done) {
  sim::FaultInjector& inj = service_->fault_injector();
  if (inj.crashed()) {
    // A dead process writes nothing: later flushes of the same run must not
    // touch disk after the armed crash fired.
    return Unavailable("node crashed (simulated)");
  }
  ckpt::Journal* journal =
      service_->checkpointer().journaling() ? service_->journal(node_id_)
                                            : nullptr;
  if (journal != nullptr && meta.stager != nullptr) {
    ckpt::JournalRecord rec;
    rec.id = id;
    rec.version = version;
    rec.offset = offset;
    rec.page_crc = page_crc;
    rec.key = meta.key;
    rec.payload.assign(bytes, bytes + size);
    if (inj.AtCrashPoint(sim::CrashPoint::kMidJournalAppend)) {
      // Death halfway through the append: a torn record on disk, no
      // in-place write. Recovery must discard the tail and keep the
      // backend's previous page intact.
      // mm-lint: allow(MML005 crash sim drops the torn append's status)
      (void)journal->AppendTorn(rec);
      service_->DumpFlightRecord(
          node_id_, sim::CrashPointName(sim::CrashPoint::kMidJournalAppend),
          now);
      return Unavailable("simulated crash mid journal append");
    }
    MM_RETURN_IF_ERROR(journal->Append(rec));
    // The redo record is real backend I/O: charge a PFS write for it.
    sim::Device& pfs = service_->cluster().pfs();
    Merge(pfs.Write(now, size + ckpt::Journal::kRecordOverheadBytes), done);
    ckpt_journal_bytes_->Inc(size + ckpt::Journal::kRecordOverheadBytes);
    if (inj.AtCrashPoint(sim::CrashPoint::kAfterJournalAppend)) {
      // Record durable, in-place write never starts: recovery replays the
      // record to bring the backend to `version`.
      service_->DumpFlightRecord(
          node_id_, sim::CrashPointName(sim::CrashPoint::kAfterJournalAppend),
          now);
      return Unavailable("simulated crash between journal append and "
                         "in-place write");
    }
    if (inj.AtCrashPoint(sim::CrashPoint::kMidInPlaceWrite)) {
      // Death mid in-place write leaves a torn page on the backend; the
      // durable record above is what heals it during recovery.
      // mm-lint: allow(MML005 crash simulation leaves a deliberately torn page)
      (void)meta.stager->Write(meta.uri, offset, bytes, size / 2);
      service_->DumpFlightRecord(
          node_id_, sim::CrashPointName(sim::CrashPoint::kMidInPlaceWrite),
          now);
      return Unavailable("simulated crash mid in-place write");
    }
  }
  return BackendWrite(meta, offset, bytes, size, now, done);
}

TaskOutcome NodeRuntime::StageInOrZero(VectorMeta& meta,
                                       const storage::BlobId& id,
                                       sim::SimTime now) {
  TaskOutcome out;
  out.done = now;
  std::uint64_t page_off = id.page_idx * meta.page_bytes;
  std::uint64_t logical = meta.size_bytes.load(std::memory_order_relaxed);
  // Pooled and explicitly zeroed: a recycled buffer must not leak a
  // previous page's bytes into a logically-fresh page. Ownership travels
  // out as the TaskOutcome payload; the worker recycles it after use.
  // mm-lint: allow(MML002 buffer leaves as the returned outcome payload)
  out.data = pool_.AcquireZeroed(meta.page_bytes);
  if (meta.stager != nullptr && page_off < logical) {
    std::uint64_t want = std::min(meta.page_bytes, logical - page_off);
    // Only stage in what the backend actually holds.
    bool exists = false;
    std::uint64_t backend_size = 0;
    {
      MutexLock lock(meta.backend_mu);
      exists = meta.backend_ready || meta.stager->Exists(meta.uri);
    }
    if (exists) {
      auto size_or = meta.stager->Size(meta.uri);
      if (size_or.ok()) backend_size = *size_or;
    }
    if (backend_size > page_off) {
      std::uint64_t avail = std::min<std::uint64_t>(want, backend_size - page_off);
      std::vector<std::uint8_t> bytes;
      Status st = BackendRead(meta, page_off, avail, &bytes, now, &out.done);
      if (!st.ok()) {
        out.status = st;
        return out;
      }
      std::copy(bytes.begin(), bytes.end(), out.data.begin());
    }
  }
  return out;
}

TaskOutcome NodeRuntime::ExecuteGetPage(MemoryTask& task) {
  TaskOutcome out;
  out.done = task.issue_time;
  if (service_->IsDataLost(task.id)) {
    out.status = DataLoss("page " + task.id.ToString() +
                          " lost unstaged modifications");
    return out;
  }
  sim::SimTime dev_done = task.issue_time;
  // Pooled read buffer: travels as the outcome payload on success, returns
  // to the pool (via the guard) on every other path.
  std::vector<std::uint8_t> buf = pool_.Acquire(task.size);
  PoolReturn buf_guard(pool_, buf);
  Status hit = bm_.GetInto(task.id, &buf, task.issue_time, &dev_done);
  if (hit.ok()) {
    auto cur = service_->metadata().Lookup(task.id, node_id_, dev_done,
                                           nullptr);
    // Same coherence validation as the ReadPage fast path: bytes of an
    // invalidated replica awaiting its queued erase are not a valid
    // source. Downgrade to a miss so the read serves through from the
    // recorded owner below.
    bool coherent = !cur.ok() || cur->node == node_id_;
    if (!coherent) {
      auto replicas = service_->metadata().Replicas(task.id, node_id_,
                                                    dev_done, nullptr);
      coherent = std::find(replicas.begin(), replicas.end(), node_id_) !=
                 replicas.end();
    }
    if (!coherent) hit = NotFound("local bytes are an invalidated replica");
    bool corrupted = !coherent;
    if (coherent && cur.ok() && options_.verify_checksums && cur->crc != 0 &&
        Crc32(buf) != cur->crc) {
      // Silent media corruption. Drop the bad copy; a clean page self-heals
      // from the backend below, a dirty page's modifications are gone.
      corrupted = true;
      // Best-effort cleanup of the poisoned copy: the page is re-fetched
      // from the backend below, so a failed erase only wastes cache bytes.
      (void)bm_.Erase(task.id);
      // Same best-effort cleanup; the directory entry is rewritten below.
      (void)service_->metadata().Remove(task.id, node_id_, dev_done, nullptr);
      if (cur->dirty) {
        service_->RecordDataLoss(task.id, node_id_, dev_done);
        out.status = DataLoss("page " + task.id.ToString() +
                              " failed CRC check with unstaged modifications");
        out.done = dev_done;
        return out;
      }
    }
    if (!corrupted) {
      out.data = std::move(buf);
      out.done = dev_done;
      if (cur.ok()) out.version = cur->version;
      return out;
    }
  } else if (hit.code() == StatusCode::kUnavailable) {
    // The tier died under this read. The BufferManager already drained it
    // and OnTierFailure reconciled the metadata — re-check whether this
    // page's modifications went down with the tier.
    if (service_->IsDataLost(task.id)) {
      out.status = DataLoss("page " + task.id.ToString() +
                            " lost unstaged modifications");
      out.done = dev_done;
      return out;
    }
  } else if (hit.code() == StatusCode::kIoError) {
    // Retries exhausted on a live tier. A dirty page cannot be recreated
    // from the backend, so surface the error; a clean copy is dropped and
    // re-staged below.
    auto cur = service_->metadata().Lookup(task.id, node_id_, dev_done,
                                           nullptr);
    if (cur.ok() && cur->dirty) {
      out.status = hit;
      out.done = dev_done;
      return out;
    }
    // The stale frame is replaced by the fresh Put below; a failed erase
    // is corrected by the exact-accounting drop in PutScored.
    (void)bm_.Erase(task.id);
  }
  // No usable local bytes. If the directory maps the blob to another node,
  // this task was routed on stale information (e.g. an invalidated replica
  // erased between routing and execution): serve the read through from the
  // recorded owner. Falling into the zero-fill below would re-register a
  // zero page under the preserved version and re-home the directory here,
  // making the real copy unreachable.
  if (!hit.ok()) {
    auto placed = service_->metadata().Lookup(task.id, node_id_, dev_done,
                                              nullptr);
    if (placed.ok() && placed->node != node_id_) {
      sim::SimTime remote_done = dev_done;
      Status rst = service_->runtime(placed->node)
                       .buffer()
                       .GetInto(task.id, &buf, dev_done, &remote_done);
      if (rst.ok()) {
        auto rsp = service_->cluster().network().Transfer(
            remote_done, placed->node, node_id_, buf.size());
        out.data = std::move(buf);
        out.done = rsp.delivered;
        out.version = placed->version;
        return out;
      }
    }
  }
  VectorMeta* meta = service_->FindVectorById(task.id.vector_id);
  if (meta == nullptr) {
    out.status = NotFound("unknown vector for blob " + task.id.ToString());
    return out;
  }
  // Fault through to the backend (or zero-fill a fresh page).
  out = StageInOrZero(*meta, task.id, task.issue_time);
  if (!out.status.ok()) return out;
  // Restored and written-through pages keep a directory entry with a kPfs
  // residency hint and the committed full-page CRC: verify the staged-in
  // bytes against it, so a torn or stale backend page surfaces as typed
  // data loss instead of silently serving wrong bytes (DESIGN.md §12).
  if (options_.verify_checksums && meta->stager != nullptr) {
    auto backed = service_->metadata().Lookup(task.id, node_id_, out.done,
                                              nullptr);
    if (backed.ok() && backed->tier == sim::TierKind::kPfs &&
        !backed->dirty && backed->crc != 0 && Crc32(out.data) != backed->crc) {
      service_->RecordDataLoss(task.id, node_id_, out.done);
      pool_.Release(std::move(out.data));
      out.data.clear();
      out.status = DataLoss("page " + task.id.ToString() +
                            " staged in from the backend does not match its "
                            "recorded checksum");
      return out;
    }
  }
  // Cache the page locally and record its location. A full scache is not an
  // error for reads: the page is served through without caching. The cached
  // copy comes from the pool so the steady-state read path allocates nothing.
  sim::SimTime put_done = out.done;
  std::vector<std::uint8_t> cache_copy = pool_.Acquire(out.data.size());
  std::copy(out.data.begin(), out.data.end(), cache_copy.begin());
  auto tier = bm_.PutScored(task.id, std::move(cache_copy), task.score,
                            out.done, &put_done);
  if (tier.ok()) {
    // Preserve an existing version if the page previously lived elsewhere
    // (e.g. written through to the backend).
    auto prev = service_->metadata().Lookup(task.id, node_id_, out.done,
                                            nullptr);
    storage::BlobLocation loc;
    loc.node = node_id_;
    loc.tier = bm_.tier(*tier).kind();
    loc.size = out.data.size();
    loc.score = task.score;
    loc.score_node = task.from_node;
    loc.dirty = false;
    loc.version = prev.ok() ? prev->version : 0;
    loc.crc = Crc32(out.data);
    // Directory upsert on the home shard cannot fail; timing is charged
    // through `done` on the read path instead.
    (void)service_->metadata().Update(task.id, loc, node_id_, out.done,
                                      nullptr);
    out.version = loc.version;
    out.done = put_done;
  }
  return out;
}

TaskOutcome NodeRuntime::ExecuteWritePartial(MemoryTask& task) {
  TaskOutcome out;
  out.done = task.issue_time;
  VectorMeta* meta = service_->FindVectorById(task.id.vector_id);
  if (meta == nullptr) {
    out.status = NotFound("unknown vector for blob " + task.id.ToString());
    return out;
  }
  if (service_->IsDataLost(task.id)) {
    if (task.offset == 0 && task.data.size() >= meta->page_bytes) {
      // A full-page overwrite replaces the lost bytes entirely, so the page
      // is whole again.
      service_->ClearDataLoss(task.id);
    } else {
      out.status = DataLoss("partial write to page " + task.id.ToString() +
                            " that lost unstaged modifications");
      return out;
    }
  }
  sim::SimTime dev_done = task.issue_time;
  Status st = bm_.PutPartial(task.id, task.offset, task.data, task.issue_time,
                             &dev_done);
  if (st.code() == StatusCode::kNotFound ||
      st.code() == StatusCode::kUnavailable) {
    // Page not resident (or its tier just died): materialize it (stage-in
    // or zeros), apply the modification, and cache the result. If the tier
    // death took unstaged modifications with it (recorded by OnTierFailure
    // during the failed PutPartial), a partial rewrite over zeros would be
    // silent corruption — surface it instead.
    if (service_->IsDataLost(task.id)) {
      if (task.offset == 0 && task.data.size() >= meta->page_bytes) {
        service_->ClearDataLoss(task.id);
      } else {
        out.status = DataLoss("partial write to page " + task.id.ToString() +
                              " that lost unstaged modifications");
        return out;
      }
    }
    TaskOutcome base = StageInOrZero(*meta, task.id, task.issue_time);
    if (!base.status.ok()) return base;
    MM_CHECK(task.offset + task.data.size() <= base.data.size());
    std::copy(task.data.begin(), task.data.end(),
              base.data.begin() + static_cast<std::ptrdiff_t>(task.offset));
    dev_done = base.done;
    std::vector<std::uint8_t> page_data = std::move(base.data);
    // page_data came from the pool (StageInOrZero); hand it back on every
    // exit from this scope, including errors.
    PoolReturn page_guard(pool_, page_data);
    std::uint32_t page_crc = Crc32(page_data);
    std::vector<std::uint8_t> cache_copy = pool_.Acquire(page_data.size());
    std::copy(page_data.begin(), page_data.end(), cache_copy.begin());
    auto tier = bm_.PutScored(task.id, std::move(cache_copy), task.score,
                              dev_done, &dev_done);
    auto prev = service_->metadata().Lookup(task.id, node_id_, dev_done,
                                            nullptr);
    storage::BlobLocation loc;
    loc.node = node_id_;
    loc.size = meta->page_bytes;
    loc.score = task.score;
    loc.score_node = task.from_node;
    loc.version = (prev.ok() ? prev->version : 0) + 1;
    loc.crc = page_crc;
    if (tier.ok()) {
      loc.tier = bm_.tier(*tier).kind();
      loc.dirty = true;
    } else {
      if (meta->stager == nullptr) {
        // Volatile vector with a full scache: the write cannot be held.
        out.status = tier.status();
        return out;
      }
      // Nonvolatile vector, scache full (or dead) everywhere: write
      // straight through to the backend. Later faults stage the page back
      // in from there.
      Status eb = service_->EnsureBackend(*meta);
      if (!eb.ok()) {
        out.status = eb;
        return out;
      }
      std::uint64_t page_off = task.id.page_idx * meta->page_bytes;
      std::uint64_t logical = meta->size_bytes.load(std::memory_order_relaxed);
      std::uint64_t want = std::min<std::uint64_t>(
          page_data.size(), logical > page_off ? logical - page_off : 0);
      page_data.resize(want);
      // Journal under the NEW version being committed: the write-through is
      // this page's only durable copy, so its redo record is what recovery
      // replays if the in-place write tears.
      Status wt = JournaledBackendWrite(*meta, task.id, loc.version, loc.crc,
                                        page_off, page_data.data(),
                                        page_data.size(), dev_done, &dev_done);
      if (!wt.ok()) {
        out.status = wt;
        return out;
      }
      loc.tier = sim::TierKind::kPfs;
      loc.dirty = false;  // already persistent
    }
    // Directory upsert cannot fail; the write outcome already carries the
    // authoritative status.
    (void)service_->metadata().Update(task.id, loc, node_id_, dev_done,
                                      nullptr);
    out.version = loc.version;
    out.done = dev_done;
    return out;
  }
  if (!st.ok()) {
    out.status = st;
    return out;
  }
  // Mark dirty, bump the write version, and re-checksum the committed page.
  auto loc = service_->metadata().Lookup(task.id, node_id_, dev_done, nullptr);
  if (loc.ok()) {
    storage::BlobLocation updated = *loc;
    updated.dirty = true;
    out.prev_version = updated.version;
    ++updated.version;
    auto crc = bm_.Checksum(task.id);
    updated.crc = crc.ok() ? *crc : 0;
    // Directory upsert cannot fail; the commit's status is what callers see.
    (void)service_->metadata().Update(task.id, updated, node_id_, dev_done,
                                      nullptr);
    out.version = updated.version;
  }
  out.done = dev_done;
  return out;
}

TaskOutcome NodeRuntime::ExecuteScore(MemoryTask& task) {
  TaskOutcome out;
  out.done = task.issue_time;
  bm_.SetScore(task.id, task.score);
  if (options_.enable_organizer && options_.organize_every > 0) {
    int n = score_updates_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % options_.organize_every == 0) {
      sim::SimTime done = task.issue_time;
      bm_.Rebalance(task.issue_time, &done);
      out.done = done;
    }
  }
  return out;
}

TaskOutcome NodeRuntime::ExecuteStageOut(MemoryTask& task) {
  TaskOutcome out;
  out.done = task.issue_time;
  VectorMeta* meta = service_->FindVectorById(task.id.vector_id);
  if (meta == nullptr || meta->stager == nullptr) {
    out.status = FailedPrecondition("stage-out of volatile/unknown vector");
    return out;
  }
  sim::SimTime read_done = task.issue_time;
  // Pooled staging buffer: read the resident page into it, trim to the
  // logical extent in place, and return it to the pool when done.
  std::vector<std::uint8_t> buf = pool_.Acquire(meta->page_bytes);
  PoolReturn buf_guard(pool_, buf);
  Status got = bm_.GetInto(task.id, &buf, task.issue_time, &read_done);
  if (got.code() == StatusCode::kNotFound) {
    // Nothing resident to persist (already staged or never written).
    return out;
  }
  if (!got.ok()) {
    // A resident page may exist but the tier read failed (kIoError with
    // retries exhausted, kUnavailable after a tier death). Returning OK
    // here would report a dirty page as persisted when it was not —
    // propagate so FlushVector surfaces the failure.
    out.status = got;
    out.done = read_done;
    return out;
  }
  Status eb = service_->EnsureBackend(*meta);
  if (!eb.ok()) {
    out.status = eb;
    return out;
  }
  std::uint64_t page_off = task.id.page_idx * meta->page_bytes;
  std::uint64_t logical = meta->size_bytes.load(std::memory_order_relaxed);
  if (page_off >= logical) return out;  // page past the logical end
  std::uint64_t want = std::min<std::uint64_t>(buf.size(), logical - page_off);
  // The version/CRC this flush persists are fixed before touching the
  // backend: the journal record must promise exactly the committed state a
  // recovered directory entry will carry (full-page CRC, even when the
  // logical tail trims the payload below).
  std::uint32_t page_crc = Crc32(buf);
  auto pre = service_->metadata().Lookup(task.id, node_id_, read_done, nullptr);
  std::uint64_t version = pre.ok() ? pre->version : 0;
  if (pre.ok() && pre->crc != 0) page_crc = pre->crc;
  buf.resize(want);
  out.done = read_done;
  Status st = JournaledBackendWrite(*meta, task.id, version, page_crc,
                                    page_off, buf.data(), buf.size(),
                                    read_done, &out.done);
  if (!st.ok()) {
    out.status = st;
    return out;
  }
  // Clear the dirty flag.
  auto loc = service_->metadata().Lookup(task.id, node_id_, out.done, nullptr);
  if (loc.ok()) {
    storage::BlobLocation updated = *loc;
    updated.dirty = false;
    // Directory upsert cannot fail; staging already reported its status.
    (void)service_->metadata().Update(task.id, updated, node_id_, out.done,
                                      nullptr);
  }
  return out;
}

TaskOutcome NodeRuntime::ExecuteErase(MemoryTask& task) {
  TaskOutcome out;
  out.done = task.issue_time;
  (void)bm_.Erase(task.id);  // absent is fine
  return out;
}

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

Service::Service(sim::Cluster* cluster, ServiceOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  MM_CHECK_MSG(!options_.tier_grants.empty(),
               "ServiceOptions.tier_grants must be set");
  // Created before the runtimes: every TierStore keeps a pointer into it.
  injector_ = std::make_unique<sim::FaultInjector>(options_.faults);
  metadata_ = std::make_unique<storage::MetadataManager>(cluster->num_nodes(),
                                                         &cluster->network());
  fenced_ = std::vector<std::atomic<bool>>(cluster->num_nodes());
  for (auto& f : fenced_) f.store(false, std::memory_order_relaxed);
  // Telemetry also precedes the runtimes: each NodeRuntime (and the tier
  // stores under it) resolves its metric handles from telemetry_sink(n)
  // during construction.
  for (std::size_t n = 0; n < cluster->num_nodes(); ++n) {
    metrics_.push_back(std::make_unique<telemetry::MetricsRegistry>());
  }
  trace_ = std::make_unique<telemetry::TraceRecorder>(
      static_cast<std::size_t>(options_.telemetry.trace_capacity));
  trace_->set_enabled(options_.telemetry.enabled &&
                      !options_.telemetry.trace_path.empty());
  // Flight recorder is independent of the trace switch: the small span
  // ring stays warm in every run so a crash can leave a postmortem.
  if (!options_.telemetry.flightrec_dir.empty()) {
    trace_->set_flight_capacity(
        static_cast<std::size_t>(options_.telemetry.flightrec_capacity));
  }
  reporter_ =
      std::make_unique<telemetry::EpochReporter>(options_.telemetry.report_path);
  // The checkpoint coordinator precedes the runtimes: workers consult the
  // per-node journals while executing, and startup recovery must heal the
  // backends before any stage-in reads them (DESIGN.md §12).
  ckpt_ = std::make_unique<ckpt::Coordinator>(options_.ckpt,
                                              cluster->num_nodes());
  if (ckpt_->enabled()) {
    std::uint64_t applied = 0, torn = 0;
    Status rec = ckpt_->RecoverOnStartup(&applied, &torn);
    if (!rec.ok()) {
      MM_WARN("ckpt") << "journal recovery failed: " << rec.ToString();
    } else if (applied > 0 || torn > 0) {
      MM_INFO("ckpt") << "journal recovery replayed " << applied
                      << " record(s), discarded " << torn << " torn tail(s)";
    }
    metrics_[0]->GetCounter("mm.ckpt.replayed_count")->Inc(applied);
  }
  for (std::size_t n = 0; n < cluster->num_nodes(); ++n) {
    runtimes_.push_back(std::make_unique<NodeRuntime>(this, n, options_,
                                                      options_.tier_grants));
    // Reserve the DRAM grant against the node budget so MegaMmap's memory
    // consumption is bounded and visible (Figs. 6 and 8).
    for (const auto& grant : options_.tier_grants) {
      if (grant.kind == sim::TierKind::kDram) {
        cluster->node(n).AllocateDram(grant.capacity);
      }
    }
  }
}

Service::~Service() { Shutdown(); }

void Service::Shutdown() {
  if (shut_down_.exchange(true)) return;
  // A crash (ForceCrash or an armed point that fired without reaching a
  // dump site) still leaves a postmortem; explicit dumps closest to the
  // death win over this catch-all.
  if (injector_->crashed() &&
      !flight_dumped_.load(std::memory_order_acquire)) {
    double crash_s;
    {
      MutexLock lock(report_mu_);
      crash_s = last_epoch_s_;
    }
    DumpFlightRecord(0, "shutdown_after_crash", crash_s);
  }
  // Persist every nonvolatile vector before the runtimes die ("during the
  // termination of the runtime, the stager task will be scheduled") — unless
  // the simulated process crashed: a dead process flushes nothing, so
  // on-disk state stays exactly what the crash left for recovery to replay.
  if (!injector_->crashed()) {
    std::vector<VectorMeta*> to_flush;
    {
      // Collect outside the lock: stage-out workers call FindVectorById,
      // which takes vectors_mu_.
      MutexLock lock(vectors_mu_);
      for (auto& [key, meta] : vectors_) {
        if (meta->stager != nullptr && !meta->destroyed.load()) {
          to_flush.push_back(meta.get());
        }
      }
    }
    for (VectorMeta* meta : to_flush) {
      Status st = FlushVector(*meta, 0, 0.0, nullptr);
      if (!st.ok()) {
        MM_WARN("service") << "shutdown flush of '" << meta->key
                           << "' failed: " << st.ToString();
      }
    }
  }
  for (auto& rt : runtimes_) rt->Shutdown();
  for (std::size_t n = 0; n < runtimes_.size(); ++n) {
    for (const auto& grant : options_.tier_grants) {
      if (grant.kind == sim::TierKind::kDram) {
        cluster_->node(n).FreeDram(grant.capacity);
      }
    }
  }
  // Final telemetry drain, after every worker has quiesced: one closing
  // epoch (stamped at the last reported virtual time) and the Chrome-trace
  // dump.
  if (options_.telemetry.enabled) {
    double final_s;
    {
      MutexLock lock(report_mu_);
      final_s = last_epoch_s_;
    }
    // The line was already appended to the report file; the returned copy
    // has no reader at shutdown.
    (void)EpochReport(final_s);
    if (!options_.telemetry.trace_path.empty()) {
      Status st = trace_->WriteJson(options_.telemetry.trace_path);
      if (!st.ok()) {
        MM_WARN("service") << "trace dump to '" << options_.telemetry.trace_path
                           << "' failed: " << st.ToString();
      }
    }
  }
}

telemetry::ClusterSnapshot Service::TelemetrySnapshot() {
  // Refresh snapshot-time gauges first: tier occupancy and pool counters
  // are levels sampled from their owners, not events counted at the source.
  for (std::size_t n = 0; n < runtimes_.size(); ++n) {
    telemetry::MetricsRegistry& reg = *metrics_[n];
    auto& bm = runtimes_[n]->buffer();
    for (std::size_t t = 0; t < bm.num_tiers(); ++t) {
      TierUsedGauge(reg, bm.tier(t).kind())
          ->Set(static_cast<std::int64_t>(bm.tier(t).used()));
    }
    PagePool& pool = runtimes_[n]->pool();
    reg.GetGauge("mm.pool.alloc_count")
        ->Set(static_cast<std::int64_t>(pool.allocations()));
    reg.GetGauge("mm.pool.reuse_count")
        ->Set(static_cast<std::int64_t>(pool.reuses()));
    reg.GetGauge("mm.pool.pooled_bytes")
        ->Set(static_cast<std::int64_t>(pool.pooled_bytes()));
  }
  telemetry::ClusterSnapshot snap;
  snap.per_node.reserve(metrics_.size());
  for (auto& reg : metrics_) {
    snap.per_node.push_back(reg->Snapshot());
    snap.totals.Merge(snap.per_node.back());
  }
  return snap;
}

std::string Service::EpochReport(double now_s) {
  if (!options_.telemetry.enabled) return "";
  UpdateCritpathCounters(now_s);
  telemetry::ClusterSnapshot snap = TelemetrySnapshot();
  {
    MutexLock lock(report_mu_);
    last_epoch_s_ = std::max(last_epoch_s_, now_s);
  }
  return reporter_->Epoch(snap, now_s);
}

void Service::UpdateCritpathCounters(double now_s) {
  // All critpath counters live on node 0's registry: the analyzer works on
  // the cluster-wide trace, so per-node registration would double-count in
  // the aggregated snapshot.
  telemetry::MetricsRegistry& reg = *metrics_[0];
  MutexLock lock(report_mu_);
  const double end_us = now_s * 1e6;
  if (end_us > critpath_last_us_) {
    telemetry::CritpathBreakdown cp = telemetry::AnalyzeCritpath(
        trace_->Snapshot(), critpath_last_us_, end_us);
    reg.GetCounter("mm.critpath.queue_wait_ns")->Inc(cp.queue_wait_ns);
    reg.GetCounter("mm.critpath.network_ns")->Inc(cp.network_ns);
    reg.GetCounter("mm.critpath.device_ns")->Inc(cp.device_ns);
    reg.GetCounter("mm.critpath.coherence_ns")->Inc(cp.coherence_ns);
    critpath_last_us_ = end_us;
  }
  if (critpath_wall_) {
    // Mirror the cumulative clock totals into counters so the epoch
    // reporter's delta machinery applies to wall time too.
    auto [compute, stall] = critpath_wall_();
    telemetry::Counter* c = reg.GetCounter("mm.critpath.compute_ns");
    telemetry::Counter* s = reg.GetCounter("mm.critpath.stall_ns");
    const std::uint64_t c_old = c->value();
    const std::uint64_t s_old = s->value();
    if (compute > c_old) c->Inc(compute - c_old);
    if (stall > s_old) s->Inc(stall - s_old);
  }
}

void Service::SetCritpathWallSource(
    std::function<std::pair<std::uint64_t, std::uint64_t>()> source) {
  MutexLock lock(report_mu_);
  critpath_wall_ = std::move(source);
}

void Service::DumpFlightRecord(std::size_t node, std::string_view reason,
                               double now_s) {
  if (options_.telemetry.flightrec_dir.empty()) return;
  if (node >= metrics_.size()) node = 0;
  flight_dumped_.store(true, std::memory_order_release);
  Status st = telemetry::WriteFlightRecord(
      options_.telemetry.flightrec_dir, static_cast<int>(node), reason, now_s,
      *trace_, *metrics_[node]);
  if (!st.ok()) {
    MM_WARN("telemetry") << "flight record dump failed: " << st.ToString();
  }
}

std::string Service::MaybeEpochReport(double now_s) {
  if (!options_.telemetry.enabled) return "";
  double interval = options_.telemetry.report_interval_s;
  if (interval <= 0.0) return "";
  {
    MutexLock lock(report_mu_);
    if (reporter_->epochs() > 0 && now_s < last_epoch_s_ + interval) return "";
    last_epoch_s_ = std::max(last_epoch_s_, now_s);
  }
  return EpochReport(now_s);
}

StatusOr<VectorMeta*> Service::RegisterVector(const std::string& key,
                                              std::size_t elem_size,
                                              const VectorOptions& options,
                                              std::uint64_t initial_elems) {
  MM_CHECK(elem_size > 0);
  MutexLock lock(vectors_mu_);
  auto it = vectors_.find(key);
  if (it != vectors_.end()) {
    VectorMeta* meta = it->second.get();
    if (meta->elem_size != elem_size) {
      return InvalidArgument("vector '" + key +
                             "' already registered with a different element "
                             "size");
    }
    return meta;
  }
  auto meta = std::make_unique<VectorMeta>();
  meta->key = key;
  meta->vector_id = Fnv1a64(key);
  meta->elem_size = elem_size;
  meta->options = options;
  meta->mode.store(options.mode);
  std::uint64_t elems_per_page = std::max<std::uint64_t>(
      1, options.page_size / elem_size);
  meta->page_bytes = elems_per_page * elem_size;
  if (options.nonvolatile) {
    MM_ASSIGN_OR_RETURN(auto resolved,
                        storage::StagerRegistry::Default().Resolve(key));
    meta->stager = resolved.first;
    meta->uri = resolved.second;
    if (meta->stager->Exists(meta->uri)) {
      MM_ASSIGN_OR_RETURN(std::uint64_t backend_size,
                          meta->stager->Size(meta->uri));
      meta->size_bytes.store(backend_size);
      // The meta is not yet published, but backend_ready's lock contract is
      // per-field, so honor it here too (and it orders with EnsureBackend).
      MutexLock backend_lock(meta->backend_mu);
      meta->backend_ready = true;
    } else {
      meta->size_bytes.store(initial_elems * elem_size);
    }
  } else {
    meta->size_bytes.store(initial_elems * elem_size);
  }
  VectorMeta* raw = meta.get();
  vectors_by_id_[meta->vector_id] = raw;
  vectors_[key] = std::move(meta);
  return raw;
}

VectorMeta* Service::FindVector(const std::string& key) {
  MutexLock lock(vectors_mu_);
  auto it = vectors_.find(key);
  return it == vectors_.end() ? nullptr : it->second.get();
}

comm::DistributedLock& Service::GetDistributedLock(const std::string& key,
                                                   std::size_t home_node) {
  MutexLock lock(locks_mu_);
  auto it = dlocks_.find(key);
  if (it == dlocks_.end()) {
    it = dlocks_
             .emplace(key, std::make_unique<comm::DistributedLock>(
                               cluster_, home_node))
             .first;
  }
  return *it->second;
}

void Service::SetPgasHint(VectorMeta& meta, VectorMeta::PgasHint hint) {
  MutexLock lock(meta.hint_mu);
  meta.pgas_hint = hint;
}

std::size_t Service::Unfenced(std::size_t node) const {
  if (!NodeFenced(node)) return node;
  // Deterministic ring remap: every survivor computes the same substitute
  // owner without communicating.
  for (std::size_t i = 1; i < fenced_.size(); ++i) {
    std::size_t cand = (node + i) % fenced_.size();
    if (!NodeFenced(cand)) return cand;
  }
  return node;  // everyone fenced: nothing sensible to return
}

void Service::FenceNode(std::size_t node) {
  MM_CHECK(node < fenced_.size());
  fenced_[node].store(true, std::memory_order_release);
}

std::size_t Service::DefaultOwner(VectorMeta& meta,
                                  const storage::BlobId& id) {
  std::optional<VectorMeta::PgasHint> hint;
  {
    MutexLock lock(meta.hint_mu);
    hint = meta.pgas_hint;
  }
  if (!hint.has_value() || hint->n_elems == 0 || hint->nprocs <= 0) {
    return Unfenced(metadata().HomeNode(id));
  }
  // Rank owning the page's first element under the balanced partition of
  // n elements over p ranks captured when the hint was set.
  std::uint64_t elem = id.page_idx * meta.elems_per_page();
  if (elem >= hint->n_elems) return Unfenced(metadata().HomeNode(id));
  std::uint64_t n = hint->n_elems, p = hint->nprocs;
  std::uint64_t base = n / p, rem = n % p;
  std::uint64_t rank;
  if (elem < rem * (base + 1)) {
    rank = elem / (base + 1);
  } else {
    rank = rem + (base > 0 ? (elem - rem * (base + 1)) / base : 0);
  }
  std::size_t node = static_cast<std::size_t>(rank) /
                     static_cast<std::size_t>(hint->ranks_per_node);
  return Unfenced(std::min(node, num_nodes() - 1));
}

void Service::OnTierFailure(std::size_t node, sim::TierKind tier,
                            const std::vector<storage::BlobId>& lost,
                            sim::SimTime now) {
  MM_WARN("service") << "tier " << sim::TierKindName(tier) << " on node "
                     << node << " failed permanently; " << lost.size()
                     << " pages lost, starting recovery";
  for (const storage::BlobId& id : lost) {
    auto loc = metadata().Lookup(id, node, now, nullptr);
    if (!loc.ok()) continue;  // never registered; nothing to reconcile
    if (loc->node != node) {
      // Only a replica died here; the primary is intact elsewhere.
      (void)metadata().RemoveReplica(id, node, node, now, nullptr);
      continue;
    }
    if (loc->dirty) {
      // The resident copy of unstaged modifications went down with the
      // tier, but journaled writeback may have already made those bytes
      // durable (the redo record lands before the in-place write). A
      // journal record at or past the lost version means the backend can
      // be healed — re-apply it and fall through to the clean-primary
      // re-stage below instead of declaring data loss.
      if (!TryJournalRecover(node, id, *loc)) {
        // The only copy is gone. Record typed data loss; accesses surface
        // kDataLoss, not an abort.
        RecordDataLoss(id, node, now);
        // Idempotent drop of the lost page's directory entry; kNotFound on
        // a concurrent removal is fine.
        (void)metadata().Remove(id, node, now, nullptr);
        continue;
      }
    }
    // Clean primary: the backend still has the bytes. Drop the stale
    // mapping and eagerly re-stage so the working set recovers without
    // waiting for the next fault (volatile vectors re-read as zeros).
    (void)metadata().Remove(id, node, now, nullptr);
    VectorMeta* meta = FindVectorById(id.vector_id);
    if (meta == nullptr || meta->stager == nullptr) continue;
    MemoryTask restore;
    restore.kind = MemoryTask::Kind::kGetPage;
    restore.vector_id = id.vector_id;
    restore.id = id;
    restore.size = meta->page_bytes;
    restore.score = loc->score;
    restore.from_node = node;
    restore.issue_time = now;
    (void)runtime(node).Submit(std::move(restore));  // fire-and-forget
  }
}

Service::RecoveryStats Service::RecoverDeadNode(std::size_t dead_node,
                                                std::size_t from_node,
                                                sim::SimTime now) {
  FenceNode(dead_node);
  RecoveryStats stats;
  std::vector<VectorMeta*> vecs;
  {
    MutexLock lock(vectors_mu_);
    vecs.reserve(vectors_.size());
    for (auto& [key, meta] : vectors_) {
      if (!meta->destroyed.load(std::memory_order_relaxed)) {
        vecs.push_back(meta.get());
      }
    }
  }
  for (VectorMeta* meta : vecs) {
    for (const storage::BlobId& id :
         metadata().BlobsOfVector(meta->vector_id)) {
      ++stats.pages_scanned;
      auto loc = metadata().Lookup(id, from_node, now, nullptr);
      if (!loc.ok()) continue;
      // A replica record pointing at the dead node only costs a remote
      // re-read; unregister it unconditionally (idempotent).
      (void)metadata().RemoveReplica(id, dead_node, from_node, now, nullptr);
      if (loc->node != dead_node) continue;
      if (loc->dirty) {
        // The primary copy of unstaged modifications died with the node.
        // Journaled writeback may have made those bytes durable before the
        // death; replaying the redo record heals the backend. Volatile
        // vectors have no backend or journal: their dirty pages are gone.
        if (meta->stager != nullptr && TryJournalRecover(dead_node, id, *loc)) {
          ++stats.journal_recovered;
        } else {
          RecordDataLoss(id, dead_node, now);
          ++stats.lost;
        }
      } else {
        ++stats.rehomed;
      }
      // Drop the stale mapping (and the dead node's resident bytes, so a
      // later unfencing experiment cannot resurrect them); survivors
      // re-stage from the backend lazily on next touch via the remapped
      // DefaultOwner.
      // Already-absent entries are fine: fencing is idempotent and the
      // page may never have been staged on the dead node.
      (void)runtime(dead_node).buffer().Erase(id);
      (void)metadata().Remove(id, from_node, now, nullptr);  // idempotent
    }
  }
  {
    MutexLock lock(lost_mu_);
    last_recovery_.pages_scanned += stats.pages_scanned;
    last_recovery_.rehomed += stats.rehomed;
    last_recovery_.journal_recovered += stats.journal_recovered;
    last_recovery_.lost += stats.lost;
  }
  telemetry::MetricsRegistry& reg = *metrics_[from_node];
  reg.GetCounter("mm.recovery.pages_scanned_count")->Inc(stats.pages_scanned);
  reg.GetCounter("mm.recovery.rehomed_count")->Inc(stats.rehomed);
  reg.GetCounter("mm.recovery.journal_recovered_count")
      ->Inc(stats.journal_recovered);
  reg.GetCounter("mm.recovery.data_loss_count")->Inc(stats.lost);
  MM_WARN("service") << "node " << dead_node << " fenced and re-homed: "
                     << stats.pages_scanned << " pages scanned, "
                     << stats.rehomed << " re-homed, "
                     << stats.journal_recovered << " journal-recovered, "
                     << stats.lost << " lost";
  return stats;
}

bool Service::TryJournalRecover(std::size_t node, const storage::BlobId& id,
                                const storage::BlobLocation& loc) {
  if (ckpt_ == nullptr || !ckpt_->journaling()) return false;
  ckpt::Journal* journal = ckpt_->journal(node);
  if (journal == nullptr) return false;
  auto rec = journal->Latest(id);
  if (!rec.ok() || rec->version < loc.version) return false;
  auto resolved = storage::StagerRegistry::Default().Resolve(rec->key);
  if (!resolved.ok()) return false;
  storage::Stager* stager = resolved->first;
  const auto& uri = resolved->second;
  if (!stager->Exists(uri)) {
    Status cs = stager->Create(uri, rec->offset + rec->payload.size());
    if (!cs.ok()) return false;
  }
  // Idempotent re-apply: the in-place write may have landed (fully or
  // partially) before the tier died; replaying the record converges the
  // backend to the journaled version either way.
  Status ws = stager->Write(uri, rec->offset, rec->payload.data(),
                            rec->payload.size());
  if (!ws.ok()) return false;
  metrics_[node]->GetCounter("mm.ckpt.journal_recovered_count")->Inc();
  MM_WARN("ckpt") << "page " << id.ToString() << " on node " << node
                  << " recovered from its redo journal at version "
                  << rec->version;
  return true;
}

void Service::RecordDataLoss(const storage::BlobId& id, std::size_t node,
                             sim::SimTime now) {
  bool fresh;
  {
    MutexLock lock(lost_mu_);
    fresh = lost_.insert(id).second;
  }
  // First registration of each lost page leaves a postmortem (after
  // releasing lost_mu_ — the dump only takes telemetry leaf locks, but
  // keeping the registry lock tight costs nothing).
  if (fresh) DumpFlightRecord(node, "data_loss", now);
}

bool Service::IsDataLost(const storage::BlobId& id) const {
  MutexLock lock(lost_mu_);
  return lost_.count(id) > 0;
}

void Service::ClearDataLoss(const storage::BlobId& id) {
  MutexLock lock(lost_mu_);
  lost_.erase(id);
}

std::size_t Service::data_loss_count() const {
  MutexLock lock(lost_mu_);
  return lost_.size();
}

VectorMeta* Service::FindVectorById(std::uint64_t vector_id) {
  MutexLock lock(vectors_mu_);
  auto it = vectors_by_id_.find(vector_id);
  return it == vectors_by_id_.end() ? nullptr : it->second;
}

Status Service::EnsureBackend(VectorMeta& meta) {
  if (meta.stager == nullptr) {
    return FailedPrecondition("vector '" + meta.key + "' is volatile");
  }
  MutexLock lock(meta.backend_mu);
  if (meta.backend_ready) return Status::Ok();
  std::uint64_t size = meta.size_bytes.load(std::memory_order_relaxed);
  if (!meta.stager->Exists(meta.uri)) {
    MM_RETURN_IF_ERROR(meta.stager->Create(meta.uri, size));
  }
  meta.backend_ready = true;
  return Status::Ok();
}

std::uint64_t Service::PageVersion(VectorMeta& meta, std::uint64_t page,
                                   std::size_t from_node, sim::SimTime now,
                                   sim::SimTime* done) {
  storage::BlobId id{meta.vector_id, page};
  sim::SimTime t = now;
  auto loc = metadata().Lookup(id, from_node, now, &t);
  Merge(t, done);
  return loc.ok() ? loc->version : 0;
}

StatusOr<std::vector<std::uint8_t>> Service::ReadPage(VectorMeta& meta,
                                                      std::uint64_t page,
                                                      std::size_t from_node,
                                                      sim::SimTime now,
                                                      sim::SimTime* done,
                                                      std::uint64_t* version,
                                                      bool optimistic_fallback) {
  storage::BlobId id{meta.vector_id, page};
  if (optimistic_fallback) {
    // This read tried the lock-free fast path first and lost (conflict,
    // miss, or ineligible source); reconcile the telemetry so hit + fallback
    // counts cover every attempted optimistic read (DESIGN.md §14).
    runtime(from_node).CountReadpathFallback();
    telemetry::NodeSink fb = telemetry_sink(from_node);
    fb.trace->Instant("readpath_fallback", "readpath", fb.node, 0, now);
  }
  if (IsDataLost(id)) {
    return DataLoss("page " + id.ToString() + " lost unstaged modifications");
  }

  // Fast path: the blob (or a replica) is already on this node. The read
  // buffer comes from the node's page pool and travels to the caller on
  // success; the guard hands it back on every other path.
  if (runtime(from_node).buffer().FindBlob(id).has_value()) {
    sim::SimTime local_done = now;
    auto cur = metadata().Lookup(id, from_node, now, &local_done);
    // Bytes here are only a coherent source while the directory still maps
    // the blob to this node (primary) or registers this node as a replica:
    // an invalidated replica's bytes linger until the queued erase drains,
    // and serving them would label stale data with the current version.
    bool local_coherent = !cur.ok() || cur->node == from_node;
    if (!local_coherent) {
      auto replicas = metadata().Replicas(id, from_node, now, nullptr);
      local_coherent = std::find(replicas.begin(), replicas.end(),
                                 from_node) != replicas.end();
    }
    PagePool& pool = runtime(from_node).pool();
    std::vector<std::uint8_t> local = pool.Acquire(meta.page_bytes);
    PoolReturn local_guard(pool, local);
    Status local_st = local_coherent
                          ? runtime(from_node).buffer().GetInto(id, &local,
                                                                now,
                                                                &local_done)
                          : NotFound("local bytes are an invalidated replica");
    if (local_st.ok()) {
      bool corrupted = false;
      if (version != nullptr) {
        *version = cur.ok() ? cur->version : 0;
        if (cur.ok() && options_.verify_checksums && cur->crc != 0 &&
            Crc32(local) != cur->crc) {
          // Silent corruption caught on the local copy. Drop it; dirty
          // pages surface typed data loss, clean pages fall through to the
          // slow path and self-heal from the owner/backend.
          corrupted = true;
          // Best-effort drop of the poisoned replica before re-fetching.
          (void)runtime(from_node).buffer().Erase(id);
          if (cur->node == from_node) {
            // Idempotent: a racing removal leaves nothing to remove.
            (void)metadata().Remove(id, from_node, local_done, &local_done);
            if (cur->dirty) {
              RecordDataLoss(id, from_node, local_done);
              Merge(local_done, done);
              return DataLoss("page " + id.ToString() +
                              " failed CRC check with unstaged modifications");
            }
          } else {
            // Idempotent: replica may already be unregistered.
            (void)metadata().RemoveReplica(id, from_node, from_node,
                                           local_done, &local_done);
          }
        }
      }
      if (!corrupted) {
        Merge(local_done, done);
        return local;
      }
    }
  }

  // Slow path = a service-level page fault: count it here (the fast path
  // above is the pcache's business), and span the whole fault — metadata
  // lookup, task execution, and transfer — on success.
  telemetry::NodeSink sink = telemetry_sink(from_node);
  sink.metrics->GetCounter("mm.service.fault_count")->Inc();

  // Locate the source: a replica under read-only replication, the primary
  // owner, or (for unplaced pages) the deterministic default owner — which
  // every rank computes identically, so concurrent first-touches of one
  // page can never materialize it on two nodes (split-brain).
  sim::SimTime t = now;
  std::size_t owner = ChooseReadSource(meta, id, from_node, now, &t);

  // Concurrent faults for the same blob on this node share one fetch.
  InflightKey key{from_node, id};
  std::shared_future<TaskOutcome> fetch;
  bool leader = false;
  // Flow identity of this fault, minted by the leader only: one connected
  // origin → task → stager chain per shared fetch (followers record plain
  // spans so no flow ever has two origins).
  telemetry::TraceContext fault_ctx;
  {
    MutexLock lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      fetch = it->second;
    } else {
      leader = true;
      fault_ctx = telemetry::TraceRecorder::NewContext(sink.node);
      MemoryTask task;
      task.kind = MemoryTask::Kind::kGetPage;
      task.vector_id = meta.vector_id;
      task.id = id;
      task.size = meta.page_bytes;
      task.from_node = from_node;
      task.optimistic_fallback = optimistic_fallback;
      task.tctx = fault_ctx;
      task.promise = std::make_shared<std::promise<TaskOutcome>>();
      if (owner == from_node) {
        task.issue_time = t;
      } else {
        auto req = cluster().network().Transfer(t, from_node, owner,
                                                kControlBytes);
        task.issue_time = req.delivered;
      }
      fetch = task.promise->get_future().share();
      inflight_[key] = fetch;
      // A shutdown rejection still fulfills the promise, so the shared
      // future below carries the error to every waiter.
      (void)runtime(owner).Submit(std::move(task));
    }
  }
  TaskOutcome outcome = fetch.get();
  if (leader) {
    MutexLock lock(inflight_mu_);
    inflight_.erase(key);
  }
  if (!outcome.status.ok()) {
    // Close the flow on the error path too — the worker already recorded
    // its 't' hop, and a dangling flow would fail trace validation.
    sink.trace->CompleteFlow("page_fault", "fault", sink.node, 0, now,
                             outcome.done, fault_ctx, 's');
    Merge(outcome.done, done);
    return outcome.status;
  }
  if (version != nullptr) *version = outcome.version;
  sim::SimTime complete = outcome.done;
  if (owner != from_node) {
    auto rsp = cluster().network().Transfer(outcome.done, owner, from_node,
                                            outcome.data.size());
    complete = rsp.delivered;
    if (leader) MaybeReplicate(meta, page, outcome.data, from_node, complete);
  }
  sink.metrics
      ->GetHistogram("mm.service.fault_latency_ns",
                     telemetry::LatencyBoundsNs())
      ->Observe((complete - now) * 1e9);
  // Sync origin of the fault's flow (plain span for non-leader sharers):
  // origin → get_page task on the owner → stager, one connected arrow
  // chain across nodes.
  sink.trace->CompleteFlow("page_fault", "fault", sink.node, 0, now, complete,
                           fault_ctx, 's');
  Merge(complete, done);
  return std::move(outcome.data);
}

std::optional<std::vector<std::uint8_t>> Service::TryReadPageOptimistic(
    VectorMeta& meta, std::uint64_t page, std::size_t from_node,
    sim::SimTime now, sim::SimTime* done, std::uint64_t* version,
    int* retries) {
  if (retries != nullptr) *retries = 0;
  if (!options_.enable_optimistic_reads) return std::nullopt;
  if (!AllowsOptimisticReads(meta.mode.load(std::memory_order_relaxed))) {
    return std::nullopt;
  }
  storage::BlobId id{meta.vector_id, page};
  // Typed data loss is the slow path's story to tell.
  if (IsDataLost(id)) return std::nullopt;

  sim::SimTime t = now;
  constexpr int kMaxAttempts = 3;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    // v1: sample the directory. Unplaced pages have no authoritative bytes
    // anywhere yet — only the queued fault may materialize them.
    sim::SimTime step = t;
    auto v1 = metadata().Lookup(id, from_node, t, &step);
    t = step;
    if (!v1.ok()) return std::nullopt;

    // Pick the source the §6 replica-validity rule blesses at v1: this
    // node when the directory maps it as primary or registers it as a
    // replica (never merely "bytes happen to linger here"), else the
    // primary across the network.
    std::size_t source = v1->node;
    if (source != from_node &&
        runtime(from_node).buffer().FindBlob(id).has_value()) {
      auto replicas = metadata().Replicas(id, from_node, t, nullptr);
      if (std::find(replicas.begin(), replicas.end(), from_node) !=
          replicas.end()) {
        source = from_node;
      }
    }
    if (NodeFenced(source)) return std::nullopt;

    // Copy the bytes straight out of the source scache on this thread —
    // the BufferManager is internally synchronized; no worker queue, no
    // promise, no task allocation.
    PagePool& pool = runtime(from_node).pool();
    std::vector<std::uint8_t> bytes = pool.Acquire(meta.page_bytes);
    PoolReturn pool_guard(pool, bytes);
    sim::SimTime copy_done = t;
    Status st = runtime(source).buffer().GetInto(id, &bytes, t, &copy_done);
    if (!st.ok()) return std::nullopt;  // raced an eviction: slow path re-stages

    // v2: the copy is coherent only if no writer committed meanwhile. This
    // is the optimistic guard's validate step at directory granularity; a
    // changed version or moved primary means the copy may be torn.
    sim::SimTime check_done = copy_done;
    auto v2 = metadata().Lookup(id, from_node, copy_done, &check_done);
    t = check_done;
    if (!v2.ok() || v2->node != v1->node || v2->version != v1->version) {
      if (retries != nullptr) ++*retries;
      runtime(from_node).CountReadpathRetries(1);
      continue;
    }
    if (options_.verify_checksums && v2->crc != 0 && Crc32(bytes) != v2->crc) {
      // Corruption healing (replica drop, typed data loss) lives on the
      // slow path; the fast path just declines.
      return std::nullopt;
    }
    if (source != from_node) {
      auto rsp =
          cluster().network().Transfer(t, source, from_node, bytes.size());
      t = rsp.delivered;
    }
    if (version != nullptr) *version = v2->version;
    runtime(from_node).CountReadpathHit();
    telemetry::NodeSink sink = telemetry_sink(from_node);
    sink.trace->Instant("readpath_hit", "readpath", sink.node, 0, t);
    Merge(t, done);
    return bytes;  // implicit move detaches from pool_guard (capacity 0 after)
  }
  return std::nullopt;
}

/// Picks where to serve a page read from: a node-local copy when present,
/// a replica (spread by digest) under read-only replication, the primary
/// owner otherwise, or the deterministic default for unplaced pages.
std::size_t Service::ChooseReadSource(VectorMeta& meta,
                                      const storage::BlobId& id,
                                      std::size_t from_node, sim::SimTime now,
                                      sim::SimTime* done) {
  bool local_bytes = runtime(from_node).buffer().FindBlob(id).has_value();
  std::size_t owner = DefaultOwner(meta, id);
  auto loc = metadata().Lookup(id, from_node, now, done);
  if (!loc.ok()) return local_bytes ? from_node : owner;
  owner = loc->node;
  // Local bytes count as a source only while the directory still maps the
  // blob here (primary) or registers this node as a replica below: an
  // invalidated replica's bytes linger until the queued erase drains, and
  // routing a read at them serves stale data — or a fabricated zero page
  // if the erase wins the race to this node's worker.
  if (local_bytes && owner == from_node) return from_node;
  if (AllowsReplication(meta.mode.load(std::memory_order_relaxed))) {
    auto replicas = metadata().Replicas(id, from_node, now, nullptr);
    if (!replicas.empty()) {
      for (std::size_t r : replicas) {
        if (r == from_node && local_bytes) return from_node;
      }
      std::vector<std::size_t> candidates;
      if (!NodeFenced(owner)) candidates.push_back(owner);
      for (std::size_t r : replicas) {
        if (!NodeFenced(r)) candidates.push_back(r);
      }
      if (!candidates.empty()) {
        owner = candidates[(id.Digest() ^ from_node) % candidates.size()];
      }
    }
  }
  // A fenced owner (directory entry not yet reconciled, or home-hash on a
  // dead node) is remapped to the next live node, which stage-ins from the
  // backend on demand.
  return Unfenced(owner);
}

void Service::MaybeReplicate(VectorMeta& meta, std::uint64_t page,
                             const std::vector<std::uint8_t>& data,
                             std::size_t from_node, sim::SimTime now) {
  if (!AllowsReplication(meta.mode.load(std::memory_order_relaxed))) return;
  storage::BlobId id{meta.vector_id, page};
  if (runtime(from_node).buffer().FindBlob(id).has_value()) return;
  sim::SimTime put_done = now;
  // Replica bytes come from the pool: the replication path runs on every
  // remote read under read-only mode, so it must not allocate steadily.
  PagePool& pool = runtime(from_node).pool();
  std::vector<std::uint8_t> copy = pool.Acquire(data.size());
  std::copy(data.begin(), data.end(), copy.begin());
  auto tier = runtime(from_node).buffer().PutScored(id, std::move(copy),
                                                    /*score=*/1.0f, now,
                                                    &put_done);
  if (tier.ok()) {
    // Registration cannot fail once the primary entry exists (looked up
    // above); a lost replica record only costs a remote re-read.
    (void)metadata().AddReplica(id, from_node, from_node, now, nullptr);
    telemetry::NodeSink sink = telemetry_sink(from_node);
    sink.metrics->GetCounter("mm.coherence.replicate_count")->Inc();
    sink.trace->Instant("replicate", "coherence", sink.node, 0, now);
  }
}

Service::AsyncRead Service::ReadPageAsync(VectorMeta& meta,
                                          std::uint64_t page,
                                          std::size_t from_node,
                                          sim::SimTime now) {
  storage::BlobId id{meta.vector_id, page};
  std::size_t owner = ChooseReadSource(meta, id, from_node, now, nullptr);
  MemoryTask task;
  task.kind = MemoryTask::Kind::kGetPage;
  task.vector_id = meta.vector_id;
  task.id = id;
  task.size = meta.page_bytes;
  task.from_node = from_node;
  task.promise = std::make_shared<std::promise<TaskOutcome>>();
  if (owner == from_node) {
    task.issue_time = now;
  } else {
    auto req = cluster().network().Transfer(now, from_node, owner,
                                            kControlBytes);
    task.issue_time = req.delivered;
  }
  telemetry::NodeSink sink = telemetry_sink(from_node);
  sink.trace->Instant("prefetch_issue", "prefetch", sink.node, 0, now);
  AsyncRead result{task.promise->get_future().share(), owner};
  // A shutdown rejection still fulfills the promise (error via the future).
  (void)runtime(owner).Submit(std::move(task));
  return result;
}

double Service::EstimateReadSeconds(VectorMeta& meta, std::uint64_t page,
                                    std::uint64_t bytes) {
  storage::BlobId id{meta.vector_id, page};
  auto loc = metadata().Lookup(id, 0, 0.0, nullptr);
  if (!loc.ok()) {
    // Never placed: a fault would stage in from the backend.
    return cluster().pfs().ReadDuration(bytes);
  }
  double dev = runtime(loc->node).buffer().EstimateReadSeconds(id, bytes);
  return dev;
}

std::shared_future<TaskOutcome> Service::WriteRegion(
    VectorMeta& meta, std::uint64_t page, std::uint64_t offset,
    std::vector<std::uint8_t> bytes, std::size_t from_node, sim::SimTime now) {
  storage::BlobId id{meta.vector_id, page};
  // Writes are routed to the page's owner. Unplaced pages go to the blob's
  // deterministic home node so concurrent first-writes serialize on one
  // worker (two producers choosing themselves would fork the page). The
  // Data Organizer can migrate the page toward its writer afterwards
  // (Fig. 3's locality is restored by score locality hints). The lookup is
  // part of the async path, so its cost lands on the network model, not on
  // the caller's clock.
  std::size_t owner = DefaultOwner(meta, id);
  auto loc = metadata().Lookup(id, from_node, now, nullptr);
  if (loc.ok()) owner = loc->node;

  MemoryTask task;
  task.kind = MemoryTask::Kind::kWritePartial;
  task.vector_id = meta.vector_id;
  task.id = id;
  task.offset = offset;
  task.data = std::move(bytes);
  task.from_node = from_node;
  task.promise = std::make_shared<std::promise<TaskOutcome>>();
  // Async flow origin: the caller does not wait for the commit, so the
  // origin span covers only issue (+ the cross-node transfer). The worker's
  // write_partial span is the terminal hop and closes the flow.
  telemetry::TraceContext wctx =
      telemetry::TraceRecorder::NewContext(static_cast<int>(from_node));
  task.tctx = wctx;
  task.trace_terminal = true;
  if (owner == from_node) {
    task.issue_time = now;
  } else {
    auto xfer =
        cluster().network().Transfer(now, from_node, owner, task.data.size());
    task.issue_time = xfer.delivered;
  }
  telemetry::NodeSink sink = telemetry_sink(from_node);
  sink.trace->CompleteFlow("write_commit", "commit", sink.node, 0, now,
                           task.issue_time, wctx, 'a');
  auto future = task.promise->get_future().share();
  // A shutdown rejection still fulfills the promise (error via the future).
  (void)runtime(owner).Submit(std::move(task));
  return future;
}

void Service::SubmitScore(VectorMeta& meta, std::uint64_t page, float score,
                          std::size_t from_node, sim::SimTime now) {
  if (!options_.enable_organizer) return;
  storage::BlobId id{meta.vector_id, page};
  auto loc = metadata().Lookup(id, from_node, now, nullptr);
  if (!loc.ok()) return;  // nothing placed yet; nothing to organize
  MemoryTask task;
  task.kind = MemoryTask::Kind::kScore;
  task.vector_id = meta.vector_id;
  task.id = id;
  task.score = score;
  task.from_node = from_node;
  task.issue_time = now;
  // Fire-and-forget score hint: a shutdown rejection loses only a hint.
  (void)runtime(loc->node).Submit(std::move(task));
}

Status Service::FlushVector(VectorMeta& meta, std::size_t from_node,
                            sim::SimTime now, sim::SimTime* done) {
  if (meta.stager == nullptr) return Status::Ok();  // volatile: no backend
  MM_RETURN_IF_ERROR(EnsureBackend(meta));
  auto blobs = metadata().BlobsOfVector(meta.vector_id);
  std::vector<std::shared_future<TaskOutcome>> futures;
  // One flow for the whole flush: the sync "flush" origin below fans out to
  // every stage_out task span ('t' hops) across the owning nodes.
  telemetry::TraceContext flush_ctx =
      telemetry::TraceRecorder::NewContext(static_cast<int>(from_node));
  for (const auto& id : blobs) {
    auto loc = metadata().Lookup(id, from_node, now, nullptr);
    if (!loc.ok() || !loc->dirty) continue;
    MemoryTask task;
    task.kind = MemoryTask::Kind::kStageOut;
    task.vector_id = meta.vector_id;
    task.id = id;
    task.from_node = from_node;
    task.issue_time = now;
    task.tctx = flush_ctx;
    task.promise = std::make_shared<std::promise<TaskOutcome>>();
    futures.push_back(task.promise->get_future().share());
    // A shutdown rejection still fulfills the promise collected above.
    (void)runtime(loc->node).Submit(std::move(task));
  }
  Status first_error;
  sim::SimTime flush_end = now;
  for (auto& f : futures) {
    TaskOutcome outcome = f.get();
    Merge(outcome.done, done);
    Merge(outcome.done, &flush_end);
    if (!outcome.status.ok() && first_error.ok()) {
      first_error = outcome.status;
    }
  }
  if (!futures.empty()) {
    telemetry::NodeSink sink = telemetry_sink(from_node);
    // `done == nullptr` is the FlushAsync path: the caller's clock never
    // advances to flush_end, so the flow must be async ('a') or the
    // critical-path analyzer would charge a stall nobody paid.
    sink.trace->CompleteFlow("flush", "flush", sink.node, 0, now, flush_end,
                             flush_ctx, done != nullptr ? 's' : 'a');
  }
  return first_error;
}

Status Service::ChangePhase(VectorMeta& meta, CoherenceMode new_mode,
                            std::size_t from_node, sim::SimTime now,
                            sim::SimTime* done) {
  CoherenceMode old_mode = meta.mode.exchange(new_mode);
  if (AllowsReplication(old_mode) && !AllowsReplication(new_mode)) {
    // Leaving read-only: all replicas produced during reads are invalidated
    // (paper §III-C "Changing Phases").
    telemetry::NodeSink sink = telemetry_sink(from_node);
    telemetry::Counter* invalidations =
        sink.metrics->GetCounter("mm.coherence.invalidate_count");
    for (const auto& id : metadata().BlobsOfVector(meta.vector_id)) {
      sim::SimTime inval_done = now;
      auto dropped =
          metadata().InvalidateReplicas(id, from_node, now, &inval_done);
      Merge(inval_done, done);
      if (!dropped.empty()) {
        invalidations->Inc(dropped.size());
        // A real span (not an instant): the critical-path analyzer charges
        // coherence stalls by span duration.
        sink.trace->Complete("invalidate", "coherence", sink.node, 0, now,
                             inval_done);
      }
      for (std::size_t node : dropped) {
        MemoryTask task;
        task.kind = MemoryTask::Kind::kErase;
        task.vector_id = meta.vector_id;
        task.id = id;
        task.from_node = from_node;
        task.issue_time = inval_done;
        // Fire-and-forget replica erase; stale bytes are re-validated by
        // version on the next acquire anyway.
        (void)runtime(node).Submit(std::move(task));
      }
    }
  }
  return Status::Ok();
}

Status Service::DestroyVector(VectorMeta& meta, bool remove_backend) {
  bool expected = false;
  if (!meta.destroyed.compare_exchange_strong(expected, true)) {
    return Status::Ok();  // idempotent
  }
  for (const auto& id : metadata().BlobsOfVector(meta.vector_id)) {
    auto loc = metadata().Lookup(id, 0, 0.0, nullptr);
    if (loc.ok()) {
      // Teardown: the vector is being destroyed, so kNotFound races with
      // concurrent eviction are expected and harmless.
      (void)runtime(loc->node).buffer().Erase(id);
      for (std::size_t node : metadata().Replicas(id, 0, 0.0, nullptr)) {
        // Same teardown race as above.
        (void)runtime(node).buffer().Erase(id);
      }
    }
    // Idempotent directory drop during teardown.
    (void)metadata().Remove(id, 0, 0.0, nullptr);
  }
  if (remove_backend && meta.stager != nullptr &&
      meta.stager->Exists(meta.uri)) {
    MM_RETURN_IF_ERROR(meta.stager->Remove(meta.uri));
  }
  return Status::Ok();
}

std::uint64_t Service::ScacheDramUsed() const {
  std::uint64_t total = 0;
  for (const auto& rt : runtimes_) {
    auto& bm = const_cast<NodeRuntime&>(*rt).buffer();
    for (std::size_t t = 0; t < bm.num_tiers(); ++t) {
      if (bm.tier(t).kind() == sim::TierKind::kDram) {
        total += bm.tier(t).used();
      }
    }
  }
  return total;
}

}  // namespace mm::core
