#include "mm/core/prefetcher.h"

#include <algorithm>
#include <set>

namespace mm::core {

void Prefetcher::Step(const PrefetchVecState& vec, Transaction& tx,
                      double min_score, const PrefetcherOps& ops) {
  MM_CHECK(vec.page_bytes > 0);
  const std::uint64_t pages_capacity =
      std::max<std::uint64_t>(1, vec.max_bytes / vec.page_bytes);
  const std::size_t elems_per_page = tx.elems_per_page();

  // ---- EVICT (Algorithm 1 lines 6-15) ----
  // Pages that would be touched if the vector were empty: the next
  // Max/PageSize pages' worth of accesses.
  std::set<std::uint64_t> upcoming;
  for (const PageRegion& r :
       tx.GetFuturePages(pages_capacity * elems_per_page)) {
    upcoming.insert(r.page_idx);
    ops.set_score(r.page_idx, 1.0f);
  }
  // Touched pages absent from the predicted upcoming window score 0 and
  // are evicted. Random transactions are NOT exempt: their hash stream is
  // reproducible from the seed, so pages that WILL be retouched soon show
  // up in `upcoming` and survive (Algorithm 1's note that random scores
  // "may not be 0 if a page is expected to be retouched").
  for (const PageRegion& r : tx.GetTouchedPages()) {
    if (upcoming.count(r.page_idx) > 0) continue;  // will be re-used
    ops.set_score(r.page_idx, 0.0f);
    ops.evict_page(r.page_idx);  // EvictIfZeroScore
  }

  // ---- PREFETCH (Algorithm 1 lines 16-33) ----
  std::uint64_t free_bytes =
      vec.max_bytes > vec.cur_bytes ? vec.max_bytes - vec.cur_bytes : 0;
  std::uint64_t n_fit = free_bytes / vec.page_bytes;  // N = (Max-Cur)/PageSize

  // Enumerate distinct future pages in access order; the first n_fit get
  // fetched ahead, the rest get decreasing scores until MinScore.
  std::vector<PageRegion> window = tx.GetPages(
      tx.tail(), (n_fit + kMaxScoredAhead) * elems_per_page);
  std::set<std::uint64_t> seen;
  double base_time = 0.0;
  double est_time = 0.0;
  std::uint64_t distinct = 0;
  for (const PageRegion& r : window) {
    if (!seen.insert(r.page_idx).second) continue;
    ++distinct;
    double cost = ops.est_read_seconds(r.page_idx, vec.page_bytes);
    if (distinct <= n_fit) {
      // Fits in the pcache now: fetch it asynchronously.
      base_time += cost;  // BaseTime accumulates the in-window reads
      if (!ops.cached_or_pending(r.page_idx)) {
        ops.fetch_ahead(r.page_idx);
      }
      est_time = base_time;
      continue;
    }
    // Beyond the window: score by time-to-fault (see header note on the
    // inverted ratio relative to the paper's pseudocode).
    est_time += cost;
    double score =
        est_time > 0.0 ? std::max(1e-9, base_time) / est_time : 1.0;
    if (score <= min_score) break;
    ops.set_score(r.page_idx, static_cast<float>(score));
  }

  // Acknowledge the accesses (Algorithm 1 line 4: Tx.Head = Tx.Tail).
  tx.set_head(tx.tail());
}

}  // namespace mm::core
