#include "mm/apps/kmeans.h"

#include <algorithm>
#include <optional>

#include "mm/core/vector.h"
#include "mm/util/hash.h"

namespace mm::apps {

namespace {

/// Deterministic global indices sampled by `rank` from its partition
/// [lo, lo+size). Shared by the Mega and Spark implementations so both
/// produce identical initial centroids.
std::vector<std::uint64_t> SampleCandidates(std::uint64_t seed, int rank,
                                            std::uint64_t lo,
                                            std::uint64_t size,
                                            std::uint64_t count) {
  std::vector<std::uint64_t> idx;
  idx.reserve(count);
  for (std::uint64_t i = 0; i < count && size > 0; ++i) {
    std::uint64_t h = MixU64(seed ^ MixU64((static_cast<std::uint64_t>(rank)
                                            << 32) |
                                           i));
    idx.push_back(lo + h % size);
  }
  return idx;
}

/// KMeans||-style reduction: greedy farthest-point selection of k centers
/// from the oversampled candidate set. Deterministic; identical on every
/// rank (all ranks hold the same candidate list).
std::vector<Point3> ReduceCandidates(const std::vector<Point3>& candidates,
                                     int k, comm::RankContext& ctx) {
  MM_CHECK(!candidates.empty());
  std::vector<Point3> centers;
  centers.push_back(candidates[0]);
  std::vector<double> min_d2(candidates.size(),
                             std::numeric_limits<double>::max());
  while (static_cast<int>(centers.size()) < k) {
    std::size_t best = 0;
    double best_d2 = -1;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      min_d2[i] = std::min(min_d2[i], Dist2(candidates[i], centers.back()));
      if (min_d2[i] > best_d2) {
        best_d2 = min_d2[i];
        best = i;
      }
    }
    ctx.Compute(ctx.costs().point_distance_s * candidates.size());
    centers.push_back(candidates[best]);
  }
  return centers;
}

/// One Lloyd reduction buffer: [sx, sy, sz, count] per centroid.
struct LloydSums {
  std::vector<double> buf;
  explicit LloydSums(int k) : buf(4 * k, 0.0) {}
  void Add(int j, const Point3& p) {
    buf[4 * j] += p.x;
    buf[4 * j + 1] += p.y;
    buf[4 * j + 2] += p.z;
    buf[4 * j + 3] += 1.0;
  }
};

void ApplyLloyd(const std::vector<double>& sums, std::vector<Point3>* ks) {
  for (std::size_t j = 0; j < ks->size(); ++j) {
    double n = sums[4 * j + 3];
    if (n <= 0) continue;
    (*ks)[j] = Point3{static_cast<float>(sums[4 * j] / n),
                      static_cast<float>(sums[4 * j + 1] / n),
                      static_cast<float>(sums[4 * j + 2] / n)};
  }
}

}  // namespace

KMeansResult KMeansMega(core::Service& service, comm::Communicator& comm,
                        const std::string& dataset_key,
                        const KMeansConfig& cfg) {
  comm::RankContext& ctx = comm.ctx();
  core::VectorOptions vopts;
  vopts.page_size = cfg.page_size;
  vopts.pcache_bytes = cfg.pcache_bytes;
  vopts.mode = core::CoherenceMode::kReadOnlyGlobal;
  core::Vector<Particle> pts(service, ctx, dataset_key, 0, vopts);
  pts.BoundMemory(cfg.pcache_bytes);
  pts.Pgas(comm.rank(), comm.size());

  const std::uint64_t lo = pts.local_off(), n_local = pts.local_size();
  const int k = cfg.k;

  // ---- KMeans||-style init: oversample candidates, reduce to k ----
  std::uint64_t per_rank =
      (static_cast<std::uint64_t>(cfg.oversample) * k + comm.size() - 1) /
      comm.size();
  auto sample_idx =
      SampleCandidates(cfg.seed, comm.rank(), lo, n_local, per_rank);
  std::vector<Point3> local_cand;
  {
    auto tx = pts.RandTxBegin(lo, std::max<std::uint64_t>(lo + 1, lo + n_local),
                              sample_idx.size(), core::MM_READ_ONLY, cfg.seed);
    for (std::uint64_t idx : sample_idx) {
      local_cand.push_back(pts.Read(idx).pos);
    }
    pts.TxEnd();
  }
  auto candidates = comm.AllGatherV(local_cand);
  std::vector<Point3> ks = ReduceCandidates(candidates, k, ctx);

  // ---- Lloyd iterations over the local partition ----
  // Hot loop: chunked pinned spans resolve each page once and batch the
  // clock charge, instead of a fault-check + hash lookup per element.
  const std::uint64_t chunk = pts.MaxSpanElems();
  for (int it = 0; it < cfg.max_iter; ++it) {
    LloydSums sums(k);
    auto tx = pts.SeqTxBegin(lo, n_local, core::MM_READ_ONLY);
    for (std::uint64_t s = lo; s < lo + n_local; s += chunk) {
      std::uint64_t e = std::min(lo + n_local, s + chunk);
      auto span = pts.ReadSpan(s, e);
      for (std::uint64_t i = s; i < e; ++i) {
        const Particle& p = span[i];
        sums.Add(NearestCentroid(p.pos, ks), p.pos);
      }
      ctx.Compute(ctx.costs().point_distance_s * k * (e - s));
    }
    pts.TxEnd();
    comm.AllReduce(sums.buf, [](double a, double b) { return a + b; });
    ApplyLloyd(sums.buf, &ks);
  }

  // ---- Inertia pass (Listing 1) + optional persisted assignments ----
  KMeansResult result;
  result.centroids = ks;
  std::unique_ptr<core::Vector<std::int32_t>> assign;
  if (!cfg.assign_key.empty()) {
    core::VectorOptions aopts;
    aopts.page_size = cfg.page_size;
    aopts.pcache_bytes = cfg.pcache_bytes;
    aopts.mode = core::CoherenceMode::kLocal;  // non-overlapping partitions
    assign = std::make_unique<core::Vector<std::int32_t>>(
        service, ctx, cfg.assign_key, pts.size(), aopts);
  }
  double local_inertia = 0;
  {
    auto tx = pts.SeqTxBegin(lo, n_local, core::MM_READ_ONLY);
    for (std::uint64_t s = lo; s < lo + n_local; s += chunk) {
      std::uint64_t e = std::min(lo + n_local, s + chunk);
      auto span = pts.ReadSpan(s, e);
      std::optional<core::Vector<std::int32_t>::Span> aspan;
      if (assign != nullptr) aspan.emplace(assign->WriteSpan(s, e));
      for (std::uint64_t i = s; i < e; ++i) {
        const Particle& p = span[i];
        int j = NearestCentroid(p.pos, ks);
        local_inertia += Dist2(p.pos, ks[j]);
        if (aspan) (*aspan)[i] = j;
      }
      ctx.Compute(ctx.costs().point_distance_s * k * (e - s));
    }
    pts.TxEnd();
  }
  if (assign != nullptr) assign->Flush();
  std::vector<double> total = {local_inertia};
  comm.AllReduce(total, [](double a, double b) { return a + b; });
  result.inertia = total[0];
  result.faults = pts.faults();
  result.evictions = pts.evictions();
  return result;
}

KMeansResult KMeansSpark(sparklike::SparkEnv& env, comm::Communicator& comm,
                         const std::string& dataset_key,
                         const KMeansConfig& cfg) {
  comm::RankContext& ctx = comm.ctx();
  auto rdd = sparklike::Rdd<Particle>::Load(env, comm, dataset_key);
  const int k = cfg.k;

  // Identical candidate selection to the Mega version (same global
  // indices), expressed against the local partition.
  std::uint64_t total = rdd.size();
  {
    std::vector<std::uint64_t> one = {total};
    comm.AllReduce(one, [](std::uint64_t a, std::uint64_t b) { return a + b; });
    total = one[0];
  }
  std::uint64_t base = total / comm.size(), rem = total % comm.size();
  std::uint64_t lo = comm.rank() * base +
                     std::min<std::uint64_t>(comm.rank(), rem);
  std::uint64_t per_rank =
      (static_cast<std::uint64_t>(cfg.oversample) * k + comm.size() - 1) /
      comm.size();
  auto sample_idx =
      SampleCandidates(cfg.seed, comm.rank(), lo, rdd.size(), per_rank);
  std::vector<Point3> local_cand;
  env.ChargeDispatch();
  for (std::uint64_t idx : sample_idx) {
    local_cand.push_back(rdd.data()[idx - lo].pos);
  }
  auto candidates = comm.AllGatherV(local_cand);
  std::vector<Point3> ks = ReduceCandidates(candidates, k, ctx);

  // Lloyd iterations: each is an aggregate stage with a transient
  // materialized partition (Spark's map/reduce copies).
  for (int it = 0; it < cfg.max_iter; ++it) {
    env.ChargeDispatch();
    // Transient stage copy, Spark-style (freed when the stage ends).
    env.Alloc(rdd.size() * sizeof(Particle));
    LloydSums sums(k);
    for (const Particle& p : rdd.data()) {
      int j = NearestCentroid(p.pos, ks);
      ctx.Compute(ctx.costs().point_distance_s * k * env.compute_factor());
      sums.Add(j, p.pos);
    }
    env.Free(rdd.size() * sizeof(Particle));
    comm.AllReduce(sums.buf, [](double a, double b) { return a + b; });
    ApplyLloyd(sums.buf, &ks);
  }

  KMeansResult result;
  result.centroids = ks;
  env.ChargeDispatch();
  double local_inertia = 0;
  for (const Particle& p : rdd.data()) {
    int j = NearestCentroid(p.pos, ks);
    ctx.Compute(ctx.costs().point_distance_s * k * env.compute_factor());
    local_inertia += Dist2(p.pos, ks[j]);
  }
  std::vector<double> sum = {local_inertia};
  comm.AllReduce(sum, [](double a, double b) { return a + b; });
  result.inertia = sum[0];
  return result;
}

}  // namespace mm::apps
