#include "mm/apps/bfs.h"

#include <algorithm>
#include <deque>

#include "mm/core/vector.h"
#include "mm/util/hash.h"

namespace mm::apps {

namespace {

/// Counter-mode PRNG on MixU64: deterministic across platforms (no
/// distribution objects, whose rounding is implementation-defined).
double UnitReal(std::uint64_t seed, std::uint64_t ctr) {
  return static_cast<double>(MixU64(seed ^ MixU64(ctr)) >> 11) * 0x1.0p-53;
}

}  // namespace

std::vector<RmatEdge> GenerateRmat(const RmatConfig& cfg) {
  const std::uint64_t n = 1ULL << cfg.scale;
  const std::uint64_t m = n * static_cast<std::uint64_t>(cfg.edge_factor);
  std::vector<RmatEdge> edges;
  edges.reserve(m);
  std::uint64_t ctr = 0;
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint64_t src = 0, dst = 0;
    // One quadrant choice per bit of the vertex id (Graph500 kernel 0).
    for (int bit = 0; bit < cfg.scale; ++bit) {
      double r = UnitReal(cfg.seed, ctr++);
      std::uint64_t s = 0, d = 0;
      if (r < cfg.a) {
        // top-left: (0, 0)
      } else if (r < cfg.a + cfg.b) {
        d = 1;
      } else if (r < cfg.a + cfg.b + cfg.c) {
        s = 1;
      } else {
        s = 1;
        d = 1;
      }
      src = (src << 1) | s;
      dst = (dst << 1) | d;
    }
    edges.push_back(RmatEdge{src, dst});
  }
  return edges;
}

Csr BuildCsr(const std::vector<RmatEdge>& edges, std::uint64_t n_vertices) {
  Csr csr;
  csr.n_vertices = n_vertices;
  csr.rows.assign(n_vertices + 1, 0);
  // Undirected view: count both directions; self-loops once.
  for (const RmatEdge& e : edges) {
    csr.rows[e.src + 1]++;
    if (e.src != e.dst) csr.rows[e.dst + 1]++;
  }
  for (std::uint64_t v = 0; v < n_vertices; ++v) {
    csr.rows[v + 1] += csr.rows[v];
  }
  csr.cols.resize(csr.rows[n_vertices]);
  std::vector<std::uint64_t> cursor(csr.rows.begin(), csr.rows.end() - 1);
  for (const RmatEdge& e : edges) {
    csr.cols[cursor[e.src]++] = e.dst;
    if (e.src != e.dst) csr.cols[cursor[e.dst]++] = e.src;
  }
  // Sorted adjacency makes the layout deterministic regardless of edge
  // order (and friendlier to the per-vertex sequential run in the kernel).
  for (std::uint64_t v = 0; v < n_vertices; ++v) {
    std::sort(csr.cols.begin() + csr.rows[v], csr.cols.begin() + csr.rows[v + 1]);
  }
  return csr;
}

std::vector<std::int64_t> ReferenceBfs(const Csr& csr, std::uint64_t source) {
  std::vector<std::int64_t> depth(csr.n_vertices, kBfsUnreached);
  std::deque<std::uint64_t> q;
  depth[source] = 0;
  q.push_back(source);
  while (!q.empty()) {
    std::uint64_t v = q.front();
    q.pop_front();
    for (std::uint64_t i = csr.rows[v]; i < csr.rows[v + 1]; ++i) {
      std::uint64_t w = csr.cols[i];
      if (depth[w] == kBfsUnreached) {
        depth[w] = depth[v] + 1;
        q.push_back(w);
      }
    }
  }
  return depth;
}

BfsResult MegaBfs(core::Service& service, comm::Communicator& comm,
                  const Csr& csr, const BfsConfig& cfg) {
  comm::RankContext& ctx = comm.ctx();
  const std::uint64_t n = csr.n_vertices;
  const std::uint64_t m = csr.cols.size();

  core::VectorOptions vo;
  vo.nonvolatile = false;
  vo.page_size = cfg.page_size;
  vo.pcache_bytes = cfg.pcache_bytes;
  core::Vector<std::uint64_t> rows(service, ctx, cfg.key_prefix + "/rows",
                                   n + 1, vo);
  core::Vector<std::uint64_t> cols(service, ctx, cfg.key_prefix + "/cols",
                                   std::max<std::uint64_t>(m, 1), vo);

  // ---- load phase: rank 0 writes the CSR, chunked to the cache bound ----
  if (comm.rank() == 0) {
    auto store = [&](core::Vector<std::uint64_t>& vec,
                     const std::vector<std::uint64_t>& src) {
      const std::uint64_t chunk = vec.MaxSpanElems();
      for (std::uint64_t lo = 0; lo < src.size(); lo += chunk) {
        std::uint64_t hi = std::min<std::uint64_t>(src.size(), lo + chunk);
        auto span = vec.WriteSpan(lo, hi);
        for (std::uint64_t i = lo; i < hi; ++i) span[i] = src[i];
      }
      vec.Commit();
    };
    store(rows, csr.rows);
    store(cols, csr.cols);
  }
  comm.Barrier();
  // The graph is immutable from here: read-only coherence replicates pages
  // freely AND qualifies every touch for the optimistic read path.
  rows.ChangePhase(core::CoherenceMode::kReadOnlyGlobal);
  cols.ChangePhase(core::CoherenceMode::kReadOnlyGlobal);
  comm.Barrier();

  const std::uint64_t faults_before = rows.faults() + cols.faults();
  const double t0 = ctx.clock().now();

  // ---- level-synchronous expansion ----
  // Every rank holds the full depth array (O(V) DRAM; the out-of-core
  // object is the O(E) graph) and expands only the frontier vertices it
  // owns, so the CSR page reads spread across ranks. The newly-discovered
  // sets are exchanged and applied identically everywhere — depths match
  // the reference traversal exactly, at any rank count.
  BfsResult result;
  result.depth.assign(n, kBfsUnreached);
  result.depth[cfg.source] = 0;
  std::vector<std::uint64_t> frontier{cfg.source};
  const int nprocs = comm.size();
  std::uint64_t local_traversed = 0;
  std::int64_t level = 0;
  while (!frontier.empty()) {
    std::vector<std::uint64_t> discovered;
    // The frontier is unordered vertex ids — exactly the random, read-only
    // page touches the optimistic read guards serve without a queue round
    // trip. No transaction: the access sequence is data-dependent, so
    // there is nothing useful to declare to the prefetcher.
    for (std::uint64_t v : frontier) {
      if (static_cast<int>(v % nprocs) != comm.rank()) continue;
      std::uint64_t lo = rows.Read(v);
      std::uint64_t hi = rows.Read(v + 1);
      local_traversed += hi - lo;
      for (std::uint64_t i = lo; i < hi; ++i) {
        std::uint64_t w = cols.Read(i);
        if (result.depth[w] == kBfsUnreached) {
          // Tentative: dedup after the exchange so every rank applies
          // the same set in the same order.
          discovered.push_back(w);
        }
      }
    }
    std::vector<std::uint64_t> all = comm.AllGatherV(discovered);
    frontier.clear();
    ++level;
    for (std::uint64_t w : all) {
      if (result.depth[w] == kBfsUnreached) {
        result.depth[w] = level;
        frontier.push_back(w);
      }
    }
    std::sort(frontier.begin(), frontier.end());
  }

  // Cluster-wide totals; the virtual clock already advanced through every
  // rank's faults and transfers.
  std::vector<std::uint64_t> totals{local_traversed};
  comm.AllReduce(totals,
                 [](std::uint64_t a, std::uint64_t b) { return a + b; });
  result.edges_traversed = totals[0];
  for (std::int64_t d : result.depth) {
    if (d != kBfsUnreached) ++result.vertices_visited;
  }
  result.sim_seconds = ctx.clock().now() - t0;
  result.teps = result.sim_seconds > 0
                    ? static_cast<double>(result.edges_traversed) /
                          result.sim_seconds
                    : 0.0;
  result.faults = rows.faults() + cols.faults() - faults_before;
  return result;
}

}  // namespace mm::apps
