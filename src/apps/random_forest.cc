#include "mm/apps/random_forest.h"

#include <algorithm>

#include "mm/core/transaction.h"
#include "mm/core/vector.h"
#include "mm/util/hash.h"

namespace mm::apps {

namespace {

float Feature(const Particle& p, int f) {
  switch (f) {
    case 0:
      return p.pos.x;
    case 1:
      return p.pos.y;
    case 2:
      return p.pos.z;
    case 3:
      return p.vel.x;
    case 4:
      return p.vel.y;
    default:
      return p.vel.z;
  }
}

struct Sample {
  Particle p;
  int label = 0;
};

/// Per-(tree, rank) bagging seed. The bag consumes the RandTx stream for
/// this seed directly (so the prefetcher's prediction matches the accesses
/// exactly); draws that land on held-out test indices are discarded.
std::uint64_t BagSeed(std::uint64_t seed, int tree, int rank) {
  return MixU64(seed ^ MixU64((static_cast<std::uint64_t>(tree) << 40) ^
                              (static_cast<std::uint64_t>(rank) << 20)));
}

/// Deterministic bagging indices: positions of the RandTx stream over the
/// local partition, with test indices skipped (shrinks the bag ~20%).
std::vector<std::uint64_t> BagIndices(std::uint64_t job_seed,
                                      std::uint64_t bag_seed,
                                      std::uint64_t lo, std::uint64_t n,
                                      std::uint64_t count) {
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::uint64_t pos = 0; pos < count && n > 0; ++pos) {
    std::uint64_t idx = core::RandTx::ElementOf(bag_seed, pos, lo, lo + n);
    if (IsTestIndex(idx, job_seed)) continue;
    out.push_back(idx);
  }
  return out;
}

double GiniOfCounts(const double* counts, int num_classes, double total) {
  if (total <= 0) return 0.0;
  double sum_sq = 0;
  for (int c = 0; c < num_classes; ++c) {
    double p = counts[c] / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

/// Grows one tree data-parallel over the per-rank samples. All ranks make
/// identical decisions (thresholds and gains come from all-reduced
/// statistics), so the returned tree is identical everywhere.
RfTree BuildTree(comm::Communicator& comm, const std::vector<Sample>& samples,
                 const RfConfig& cfg, std::uint64_t tree_seed,
                 int num_classes) {
  comm::RankContext& ctx = comm.ctx();
  RfTree tree;
  tree.nodes.push_back(RfNode{});
  std::vector<int> node_of(samples.size(), 0);
  std::vector<int> active = {0};
  const int fsub = std::min(cfg.feature_subset, kRfFeatures);

  for (int depth = 0; depth < cfg.max_depth && !active.empty(); ++depth) {
    const int na = static_cast<int>(active.size());
    // Random feature subset per active node (identical on every rank).
    std::vector<std::vector<int>> feats(na);
    for (int a = 0; a < na; ++a) {
      for (int j = 0; j < fsub; ++j) {
        feats[a].push_back(static_cast<int>(
            MixU64(tree_seed ^ MixU64((static_cast<std::uint64_t>(active[a])
                                       << 16) ^
                                      j)) %
            kRfFeatures));
      }
    }
    std::unordered_map<int, int> node_slot;
    for (int a = 0; a < na; ++a) node_slot[active[a]] = a;

    // Round 1: per (node, feature) mean threshold.
    std::vector<double> sums(na * fsub, 0.0), counts(na * fsub, 0.0);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      auto it = node_slot.find(node_of[i]);
      if (it == node_slot.end()) continue;
      int a = it->second;
      for (int j = 0; j < fsub; ++j) {
        sums[a * fsub + j] += Feature(samples[i].p, feats[a][j]);
        counts[a * fsub + j] += 1.0;
      }
    }
    ctx.Compute(ctx.costs().entropy_update_s *
                static_cast<double>(samples.size() * fsub));
    comm.AllReduce(sums, [](double x, double y) { return x + y; });
    comm.AllReduce(counts, [](double x, double y) { return x + y; });

    // Round 2: per (node, feature, class) left/total histograms.
    const int stride = fsub * num_classes;
    std::vector<double> left(na * stride, 0.0), total(na * num_classes, 0.0);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      auto it = node_slot.find(node_of[i]);
      if (it == node_slot.end()) continue;
      int a = it->second;
      int c = samples[i].label;
      total[a * num_classes + c] += 1.0;
      for (int j = 0; j < fsub; ++j) {
        double thr = counts[a * fsub + j] > 0
                         ? sums[a * fsub + j] / counts[a * fsub + j]
                         : 0.0;
        if (Feature(samples[i].p, feats[a][j]) <= thr) {
          left[a * stride + j * num_classes + c] += 1.0;
        }
      }
    }
    ctx.Compute(ctx.costs().entropy_update_s *
                static_cast<double>(samples.size() * fsub));
    comm.AllReduce(left, [](double x, double y) { return x + y; });
    comm.AllReduce(total, [](double x, double y) { return x + y; });

    // Decide each active node: best gain or leaf.
    std::vector<int> next_active;
    for (int a = 0; a < na; ++a) {
      RfNode& node = tree.nodes[active[a]];
      double n_total = 0;
      int majority = 0;
      double best_count = -1;
      for (int c = 0; c < num_classes; ++c) {
        n_total += total[a * num_classes + c];
        if (total[a * num_classes + c] > best_count) {
          best_count = total[a * num_classes + c];
          majority = c;
        }
      }
      node.label = majority;
      if (n_total < static_cast<double>(cfg.min_node)) continue;
      double parent_gini = GiniOfCounts(&total[a * num_classes], num_classes,
                                        n_total);
      double best_gain = 0;
      int best_feature = -1;
      double best_thr = 0;
      for (int j = 0; j < fsub; ++j) {
        double nl = 0;
        for (int c = 0; c < num_classes; ++c) {
          nl += left[a * stride + j * num_classes + c];
        }
        double nr = n_total - nl;
        if (nl <= 0 || nr <= 0) continue;
        double gini_l =
            GiniOfCounts(&left[a * stride + j * num_classes], num_classes, nl);
        std::vector<double> right(num_classes);
        for (int c = 0; c < num_classes; ++c) {
          right[c] = total[a * num_classes + c] -
                     left[a * stride + j * num_classes + c];
        }
        double gini_r = GiniOfCounts(right.data(), num_classes, nr);
        double gain =
            parent_gini - (nl * gini_l + nr * gini_r) / n_total;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = feats[a][j];
          best_thr = counts[a * fsub + j] > 0
                         ? sums[a * fsub + j] / counts[a * fsub + j]
                         : 0.0;
        }
      }
      if (best_feature < 0 || best_gain < cfg.min_gain) continue;
      int left = static_cast<int>(tree.nodes.size());
      node.feature = best_feature;
      node.threshold = static_cast<float>(best_thr);
      node.left = left;
      node.right = left + 1;
      // push_back may reallocate: `node` is dead after this line.
      tree.nodes.push_back(RfNode{});
      tree.nodes.push_back(RfNode{});
      next_active.push_back(left);
      next_active.push_back(left + 1);
    }
    // Reassign samples to children.
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const RfNode& node = tree.nodes[node_of[i]];
      if (node.feature >= 0) {
        node_of[i] = Feature(samples[i].p, node.feature) <= node.threshold
                         ? node.left
                         : node.right;
      }
    }
    active = std::move(next_active);
  }
  return tree;
}

int ForestPredict(const std::vector<RfTree>& trees, const Particle& p,
                  int num_classes) {
  std::vector<int> votes(num_classes, 0);
  for (const RfTree& t : trees) {
    ++votes[t.Predict(p)];
  }
  return static_cast<int>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

/// Visits every local sample once: calls fn(index, sample) for each index
/// in [lo, lo+n_local). The Mega implementation walks pinned spans; the
/// Spark one indexes its materialized partition.
using EvalSweepFn =
    std::function<void(const std::function<void(std::uint64_t, const Sample&)>&)>;

/// Shared driver once samples and evaluation accessors exist.
RfResult RunForest(
    comm::Communicator& comm, const RfConfig& cfg, std::uint64_t lo,
    std::uint64_t n_local, const EvalSweepFn& for_each_eval,
    const std::function<std::vector<Sample>(int tree)>& bag) {
  comm::RankContext& ctx = comm.ctx();
  RfResult result;

  // num_classes: all ranks scan one bag to find the max label.
  auto first_bag = bag(0);
  int max_label = 0;
  for (const Sample& s : first_bag) max_label = std::max(max_label, s.label);
  std::vector<int> ml = {max_label};
  comm.AllReduce(ml, [](int a, int b) { return std::max(a, b); });
  int num_classes = ml[0] + 1;

  for (int t = 0; t < cfg.num_trees; ++t) {
    auto samples = t == 0 ? std::move(first_bag) : bag(t);
    std::uint64_t tree_seed = MixU64(cfg.seed ^ MixU64(t + 1));
    result.trees.push_back(
        BuildTree(comm, samples, cfg, tree_seed, num_classes));
  }

  // Evaluate on the local partition (train/test split by index hash).
  // The traversal compute is charged once for the whole sweep.
  std::uint64_t train_ok = 0, train_n = 0, test_ok = 0, test_n = 0;
  for_each_eval([&](std::uint64_t i, const Sample& s) {
    int pred = ForestPredict(result.trees, s.p, num_classes);
    if (IsTestIndex(i, cfg.seed)) {
      ++test_n;
      if (pred == s.label) ++test_ok;
    } else {
      ++train_n;
      if (pred == s.label) ++train_ok;
    }
  });
  ctx.Compute(ctx.costs().kdtree_visit_s * cfg.max_depth * cfg.num_trees *
              static_cast<double>(n_local));
  std::vector<std::uint64_t> agg = {train_ok, train_n, test_ok, test_n};
  comm.AllReduce(agg, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  result.train_accuracy =
      agg[1] > 0 ? static_cast<double>(agg[0]) / agg[1] : 0;
  result.test_accuracy = agg[3] > 0 ? static_cast<double>(agg[2]) / agg[3] : 0;
  return result;
}

}  // namespace

int RfTree::Predict(const Particle& p) const {
  int n = 0;
  while (nodes[n].feature >= 0) {
    n = Feature(p, nodes[n].feature) <= nodes[n].threshold ? nodes[n].left
                                                           : nodes[n].right;
  }
  return nodes[n].label;
}

RfResult RandomForestMega(core::Service& service, comm::Communicator& comm,
                          const std::string& dataset_key,
                          const std::string& labels_key, const RfConfig& cfg) {
  comm::RankContext& ctx = comm.ctx();
  core::VectorOptions vopts;
  vopts.page_size = cfg.page_size;
  vopts.pcache_bytes = cfg.pcache_bytes;
  vopts.mode = core::CoherenceMode::kReadOnlyGlobal;
  core::Vector<Particle> pts(service, ctx, dataset_key, 0, vopts);
  core::Vector<std::int32_t> labels(service, ctx, labels_key, 0, vopts);
  MM_CHECK_MSG(pts.size() == labels.size(),
               "dataset and labels sizes disagree");
  pts.Pgas(comm.rank(), comm.size());
  const std::uint64_t lo = pts.local_off(), n_local = pts.local_size();
  std::uint64_t total = pts.size();
  std::uint64_t per_rank = std::max<std::uint64_t>(
      1, total / (static_cast<std::uint64_t>(cfg.oob) * comm.size()));

  auto bag = [&](int tree) {
    std::uint64_t bag_seed = BagSeed(cfg.seed, tree, comm.rank());
    auto idx = BagIndices(cfg.seed, bag_seed, lo, n_local, per_rank);
    std::vector<Sample> out;
    out.reserve(idx.size());
    // Pseudo-random reads declared through RandTx with the SAME seed the
    // bag consumes, so the prefetcher predicts exactly these accesses
    // (paper §III-A: "factors such as randomness seeds ... guide data
    // organization decisions").
    auto txp = pts.RandTxBegin(lo, lo + std::max<std::uint64_t>(1, n_local),
                               per_rank, core::MM_READ_ONLY, bag_seed);
    auto txl = labels.RandTxBegin(lo, lo + std::max<std::uint64_t>(1, n_local),
                                  per_rank, core::MM_READ_ONLY, bag_seed);
    for (std::uint64_t i : idx) {
      out.push_back(Sample{pts.Read(i), labels.Read(i)});
    }
    pts.TxEnd();
    labels.TxEnd();
    return out;
  };
  // Evaluation is a sequential pass: declare it and walk pinned spans so
  // each page is resolved once for both vectors.
  EvalSweepFn for_each_eval =
      [&](const std::function<void(std::uint64_t, const Sample&)>& fn) {
        if (n_local == 0) return;
        auto txp = pts.SeqTxBegin(lo, n_local, core::MM_READ_ONLY);
        auto txl = labels.SeqTxBegin(lo, n_local, core::MM_READ_ONLY);
        const std::uint64_t chunk = pts.MaxSpanElems();
        for (std::uint64_t s = lo; s < lo + n_local; s += chunk) {
          std::uint64_t e = std::min(lo + n_local, s + chunk);
          auto pspan = pts.ReadSpan(s, e);
          auto lspan = labels.ReadSpan(s, e);
          for (std::uint64_t i = s; i < e; ++i) {
            fn(i, Sample{pspan[i], lspan[i]});
          }
        }
        pts.TxEnd();
        labels.TxEnd();
      };

  auto result = RunForest(comm, cfg, lo, n_local, for_each_eval, bag);
  result.faults = pts.faults() + labels.faults();
  return result;
}

RfResult RandomForestSpark(sparklike::SparkEnv& env, comm::Communicator& comm,
                           const std::string& dataset_key,
                           const std::string& labels_key, const RfConfig& cfg) {
  auto rdd = sparklike::Rdd<Particle>::Load(env, comm, dataset_key);
  auto lab = sparklike::Rdd<std::int32_t>::Load(env, comm, labels_key);
  MM_CHECK(rdd.size() == lab.size());
  std::uint64_t n_local = rdd.size();
  std::vector<std::uint64_t> tot = {n_local};
  comm.AllReduce(tot, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  std::uint64_t total = tot[0];
  std::uint64_t base = total / comm.size(), rem = total % comm.size();
  std::uint64_t lo = comm.rank() * base +
                     std::min<std::uint64_t>(comm.rank(), rem);
  std::uint64_t per_rank = std::max<std::uint64_t>(
      1, total / (static_cast<std::uint64_t>(cfg.oob) * comm.size()));

  auto bag = [&](int tree) {
    env.ChargeDispatch();
    // Spark materializes the bagged sample as a new partition.
    env.Alloc(per_rank * sizeof(Sample));
    auto idx = BagIndices(cfg.seed, BagSeed(cfg.seed, tree, comm.rank()), lo,
                          n_local, per_rank);
    std::vector<Sample> out;
    out.reserve(idx.size());
    for (std::uint64_t i : idx) {
      out.push_back(Sample{rdd.data()[i - lo], lab.data()[i - lo]});
    }
    env.Free(per_rank * sizeof(Sample));
    return out;
  };
  EvalSweepFn for_each_eval =
      [&](const std::function<void(std::uint64_t, const Sample&)>& fn) {
        for (std::uint64_t i = lo; i < lo + n_local; ++i) {
          fn(i, Sample{rdd.data()[i - lo], lab.data()[i - lo]});
        }
      };
  comm::RankContext& ctx = comm.ctx();
  // JVM factor on the evaluation/bagging compute.
  auto result = RunForest(comm, cfg, lo, n_local, for_each_eval, bag);
  ctx.Compute(ctx.costs().jvm_dispatch_s * cfg.num_trees);
  return result;
}

}  // namespace mm::apps
