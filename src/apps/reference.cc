#include "mm/apps/reference.h"

#include <algorithm>
#include <map>

#include "mm/util/status.h"

namespace mm::apps {

std::vector<Point3> ReferenceKMeans(const std::vector<Point3>& pts,
                                    std::vector<Point3> centroids,
                                    int iters) {
  MM_CHECK(!centroids.empty());
  std::size_t k = centroids.size();
  for (int it = 0; it < iters; ++it) {
    std::vector<double> sx(k, 0), sy(k, 0), sz(k, 0);
    std::vector<std::uint64_t> count(k, 0);
    for (const Point3& p : pts) {
      int j = NearestCentroid(p, centroids);
      sx[j] += p.x;
      sy[j] += p.y;
      sz[j] += p.z;
      ++count[j];
    }
    for (std::size_t j = 0; j < k; ++j) {
      if (count[j] == 0) continue;  // empty cluster keeps its centroid
      centroids[j] = Point3{static_cast<float>(sx[j] / count[j]),
                            static_cast<float>(sy[j] / count[j]),
                            static_cast<float>(sz[j] / count[j])};
    }
  }
  return centroids;
}

double ReferenceInertia(const std::vector<Point3>& pts,
                        const std::vector<Point3>& centroids) {
  double total = 0;
  for (const Point3& p : pts) {
    total += Dist2(p, centroids[NearestCentroid(p, centroids)]);
  }
  return total;
}

std::vector<int> ReferenceDbscan(const std::vector<Point3>& pts, double eps,
                                 std::size_t min_pts) {
  const std::size_t n = pts.size();
  const double eps2 = eps * eps;
  std::vector<int> labels(n, -2);  // -2 = unvisited, -1 = noise
  auto neighbors = [&](std::size_t i) {
    std::vector<std::size_t> out;
    for (std::size_t j = 0; j < n; ++j) {
      if (Dist2(pts[i], pts[j]) <= eps2) out.push_back(j);
    }
    return out;
  };
  int next_cluster = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] != -2) continue;
    auto nbrs = neighbors(i);
    if (nbrs.size() < min_pts) {
      labels[i] = -1;
      continue;
    }
    int cid = next_cluster++;
    labels[i] = cid;
    std::vector<std::size_t> frontier = nbrs;
    for (std::size_t f = 0; f < frontier.size(); ++f) {
      std::size_t q = frontier[f];
      if (labels[q] == -1) labels[q] = cid;  // border point
      if (labels[q] != -2) continue;
      labels[q] = cid;
      auto qn = neighbors(q);
      if (qn.size() >= min_pts) {
        frontier.insert(frontier.end(), qn.begin(), qn.end());
      }
    }
  }
  return labels;
}

double GiniImpurity(const std::vector<int>& labels) {
  if (labels.empty()) return 0.0;
  std::map<int, std::size_t> counts;
  for (int l : labels) ++counts[l];
  double sum_sq = 0;
  double n = static_cast<double>(labels.size());
  for (const auto& [label, c] : counts) {
    double p = static_cast<double>(c) / n;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

double RandIndex(const std::vector<int>& a, const std::vector<int>& b) {
  MM_CHECK(a.size() == b.size());
  if (a.size() < 2) return 1.0;
  std::uint64_t agree = 0, total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      bool same_a = a[i] == a[j];
      bool same_b = b[i] == b[j];
      if (same_a == same_b) ++agree;
      ++total;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

namespace {
inline std::size_t Idx(std::size_t L, std::size_t x, std::size_t y,
                       std::size_t z) {
  return (z * L + y) * L + x;
}
}  // namespace

void ReferenceGrayScottStep(std::size_t L, const std::vector<double>& u_in,
                            const std::vector<double>& v_in,
                            std::vector<double>* u_out,
                            std::vector<double>* v_out,
                            const GrayScottParams& prm) {
  MM_CHECK(u_in.size() == L * L * L && v_in.size() == L * L * L);
  u_out->resize(L * L * L);
  v_out->resize(L * L * L);
  for (std::size_t z = 0; z < L; ++z) {
    std::size_t zm = (z + L - 1) % L, zp = (z + 1) % L;
    for (std::size_t y = 0; y < L; ++y) {
      std::size_t ym = (y + L - 1) % L, yp = (y + 1) % L;
      for (std::size_t x = 0; x < L; ++x) {
        std::size_t xm = (x + L - 1) % L, xp = (x + 1) % L;
        std::size_t c = Idx(L, x, y, z);
        double u = u_in[c], v = v_in[c];
        double lap_u = u_in[Idx(L, xm, y, z)] + u_in[Idx(L, xp, y, z)] +
                       u_in[Idx(L, x, ym, z)] + u_in[Idx(L, x, yp, z)] +
                       u_in[Idx(L, x, y, zm)] + u_in[Idx(L, x, y, zp)] -
                       6.0 * u;
        double lap_v = v_in[Idx(L, xm, y, z)] + v_in[Idx(L, xp, y, z)] +
                       v_in[Idx(L, x, ym, z)] + v_in[Idx(L, x, yp, z)] +
                       v_in[Idx(L, x, y, zm)] + v_in[Idx(L, x, y, zp)] -
                       6.0 * v;
        double uvv = u * v * v;
        (*u_out)[c] = u + prm.dt * (prm.Du * lap_u - uvv + prm.F * (1.0 - u));
        (*v_out)[c] = v + prm.dt * (prm.Dv * lap_v + uvv - (prm.F + prm.k) * v);
      }
    }
  }
}

void GrayScottInit(std::size_t L, std::vector<double>* u,
                   std::vector<double>* v) {
  u->assign(L * L * L, 1.0);
  v->assign(L * L * L, 0.0);
  std::size_t lo = L / 2 - L / 16, hi = L / 2 + L / 16 + 1;
  for (std::size_t z = lo; z < hi && z < L; ++z) {
    for (std::size_t y = lo; y < hi && y < L; ++y) {
      for (std::size_t x = lo; x < hi && x < L; ++x) {
        (*u)[Idx(L, x, y, z)] = 0.5;
        (*v)[Idx(L, x, y, z)] = 0.25;
      }
    }
  }
}

}  // namespace mm::apps
