#include "mm/apps/gray_scott.h"

#include <algorithm>
#include <stdexcept>

#include "mm/core/vector.h"
#include "mm/sim/oom.h"
#include "mm/storage/stager.h"

namespace mm::apps {

namespace {

/// z-plane partition for rank r of p: [z0, z0+nz).
void SlabOf(std::size_t L, int rank, int nprocs, std::size_t* z0,
            std::size_t* nz) {
  std::size_t base = L / nprocs, rem = L % nprocs;
  *z0 = rank * base + std::min<std::size_t>(rank, rem);
  *nz = base + (static_cast<std::size_t>(rank) < rem ? 1 : 0);
}

inline std::size_t PIdx(std::size_t L, std::size_t x, std::size_t y) {
  return y * L + x;
}

/// Initial condition of one global cell (matches GrayScottInit).
inline void InitCell(std::size_t L, std::size_t x, std::size_t y,
                     std::size_t z, double* u, double* v) {
  std::size_t lo = L / 2 - L / 16, hi = L / 2 + L / 16 + 1;
  bool seed = x >= lo && x < hi && y >= lo && y < hi && z >= lo && z < hi;
  *u = seed ? 0.5 : 1.0;
  *v = seed ? 0.25 : 0.0;
}

/// Stencil update for one plane given its neighbor planes. Charges the
/// per-cell compute cost to `ctx`.
void UpdatePlane(std::size_t L, const double* um, const double* uc,
                 const double* up, const double* vm, const double* vc,
                 const double* vp, double* u_out, double* v_out,
                 const GrayScottParams& prm, comm::RankContext& ctx) {
  for (std::size_t y = 0; y < L; ++y) {
    std::size_t ym = (y + L - 1) % L, yp = (y + 1) % L;
    for (std::size_t x = 0; x < L; ++x) {
      std::size_t xm = (x + L - 1) % L, xp = (x + 1) % L;
      std::size_t c = PIdx(L, x, y);
      double u = uc[c], v = vc[c];
      double lap_u = uc[PIdx(L, xm, y)] + uc[PIdx(L, xp, y)] +
                     uc[PIdx(L, x, ym)] + uc[PIdx(L, x, yp)] + um[c] + up[c] -
                     6.0 * u;
      double lap_v = vc[PIdx(L, xm, y)] + vc[PIdx(L, xp, y)] +
                     vc[PIdx(L, x, ym)] + vc[PIdx(L, x, yp)] + vm[c] + vp[c] -
                     6.0 * v;
      double uvv = u * v * v;
      u_out[c] = u + prm.dt * (prm.Du * lap_u - uvv + prm.F * (1.0 - u));
      v_out[c] = v + prm.dt * (prm.Dv * lap_v + uvv - (prm.F + prm.k) * v);
    }
  }
  ctx.Compute(ctx.costs().cell_update_s * static_cast<double>(L * L) * 2.0);
}

/// RAII DRAM accounting for the MPI baseline's slabs.
class DramGuard {
 public:
  DramGuard(sim::Node& node, std::uint64_t bytes) : node_(node), bytes_(bytes) {
    node_.AllocateDram(bytes_);
  }
  ~DramGuard() { node_.FreeDram(bytes_); }
  DramGuard(const DramGuard&) = delete;
  DramGuard& operator=(const DramGuard&) = delete;

 private:
  sim::Node& node_;
  std::uint64_t bytes_;
};

}  // namespace

GrayScottResult GrayScottMpi(comm::Communicator& comm,
                             const GrayScottConfig& cfg) {
  comm::RankContext& ctx = comm.ctx();
  const std::size_t L = cfg.L;
  const std::size_t plane = L * L;
  std::size_t z0 = 0, nz = 0;
  SlabOf(L, comm.rank(), comm.size(), &z0, &nz);
  int prev = (comm.rank() + comm.size() - 1) % comm.size();
  int next = (comm.rank() + 1) % comm.size();

  // Ghost-extended double buffers for both species: 4 x (nz+2) planes.
  std::uint64_t slab_bytes = 4ULL * (nz + 2) * plane * sizeof(double);
  sim::Node& node = ctx.world().cluster().node(ctx.node());
  // Collective admission check: when any node cannot hold its ranks' slabs
  // the whole job dies (the Linux OOM killer takes one rank down and MPI
  // tears down the rest; deciding collectively avoids modeling half-dead
  // jobs). MegaMmap has no equivalent — it spills to storage instead.
  {
    std::uint64_t per_node_demand =
        slab_bytes * static_cast<std::uint64_t>(ctx.world().ranks_per_node());
    std::uint64_t capacity = node.dram_capacity();
    std::uint64_t used = node.dram_used();
    std::vector<std::uint8_t> overflow = {
        static_cast<std::uint8_t>(used + per_node_demand > capacity ? 1 : 0)};
    comm.AllReduce(overflow, [](std::uint8_t a, std::uint8_t b) {
      return static_cast<std::uint8_t>(a | b);
    });
    if (overflow[0] != 0) {
      throw sim::SimOutOfMemoryError(per_node_demand,
                                     capacity > used ? capacity - used : 0);
    }
  }
  DramGuard dram(node, slab_bytes);
  std::vector<double> ua((nz + 2) * plane), va((nz + 2) * plane);
  std::vector<double> ub((nz + 2) * plane), vb((nz + 2) * plane);
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < L; ++y) {
      for (std::size_t x = 0; x < L; ++x) {
        InitCell(L, x, y, z0 + z, &ua[(z + 1) * plane + PIdx(L, x, y)],
                 &va[(z + 1) * plane + PIdx(L, x, y)]);
      }
    }
  }

  GrayScottResult result;
  auto* u_cur = &ua;
  auto* v_cur = &va;
  auto* u_nxt = &ub;
  auto* v_nxt = &vb;
  constexpr int kTagU0 = 11, kTagU1 = 12, kTagV0 = 13, kTagV1 = 14;

  for (int step = 0; step < cfg.steps; ++step) {
    // Halo exchange: first owned plane -> prev; last owned plane -> next.
    auto send_plane = [&](std::vector<double>& buf, std::size_t plane_idx,
                          int dst, int tag) {
      std::vector<double> tmp(buf.begin() + plane_idx * plane,
                              buf.begin() + (plane_idx + 1) * plane);
      comm.Send(dst, tag, tmp);
    };
    auto recv_plane = [&](std::vector<double>& buf, std::size_t plane_idx,
                          int src, int tag) {
      auto tmp = comm.RecvOr<double>(src, tag);
      if (!tmp.ok()) {
        // The halo exchange has no recovery path of its own: surface the
        // neighbor's death to the launcher instead of waiting on a plane
        // that will never arrive.
        throw std::runtime_error(tmp.status().ToString());
      }
      std::copy(tmp->begin(), tmp->end(), buf.begin() + plane_idx * plane);
    };
    send_plane(*u_cur, 1, prev, kTagU0);
    send_plane(*u_cur, nz, next, kTagU1);
    send_plane(*v_cur, 1, prev, kTagV0);
    send_plane(*v_cur, nz, next, kTagV1);
    recv_plane(*u_cur, nz + 1, next, kTagU0);
    recv_plane(*u_cur, 0, prev, kTagU1);
    recv_plane(*v_cur, nz + 1, next, kTagV0);
    recv_plane(*v_cur, 0, prev, kTagV1);

    for (std::size_t z = 0; z < nz; ++z) {
      UpdatePlane(L, &(*u_cur)[z * plane], &(*u_cur)[(z + 1) * plane],
                  &(*u_cur)[(z + 2) * plane], &(*v_cur)[z * plane],
                  &(*v_cur)[(z + 1) * plane], &(*v_cur)[(z + 2) * plane],
                  &(*u_nxt)[(z + 1) * plane], &(*v_nxt)[(z + 1) * plane],
                  cfg.params, ctx);
    }
    std::swap(u_cur, u_nxt);
    std::swap(v_cur, v_nxt);
    comm.Barrier();

    if (cfg.plotgap > 0 && (step + 1) % cfg.plotgap == 0) {
      std::uint64_t ckpt_bytes = 2ULL * nz * plane * sizeof(double);
      result.bytes_checkpointed += ckpt_bytes;
      sim::Cluster& cluster = ctx.world().cluster();
      switch (cfg.ckpt) {
        case CkptBackend::kNone:
          break;
        case CkptBackend::kPfsSync: {
          // OrangeFS-like: compute stalls for the full PFS write.
          sim::SimTime done =
              cluster.pfs().Write(ctx.clock().now(), ckpt_bytes);
          ctx.clock().AdvanceTo(done);
          break;
        }
        case CkptBackend::kAssiseLike: {
          // Client-local NVM filesystem: synchronous local NVMe write.
          sim::Device* nvme = node.FindTier(sim::TierKind::kNvme);
          MM_CHECK(nvme != nullptr);
          sim::SimTime done = nvme->Write(ctx.clock().now(), ckpt_bytes);
          ctx.clock().AdvanceTo(done);
          break;
        }
        case CkptBackend::kHermesLike: {
          // Tiered async buffering: the app pays one memcpy; the NVMe and
          // PFS drain in the background (their channels stay busy).
          ctx.Compute(static_cast<double>(ckpt_bytes) /
                      ctx.costs().memcpy_Bps);
          sim::Device* nvme = node.FindTier(sim::TierKind::kNvme);
          MM_CHECK(nvme != nullptr);
          sim::SimTime nvme_done = nvme->Write(ctx.clock().now(), ckpt_bytes);
          cluster.pfs().Write(nvme_done, ckpt_bytes);
          break;
        }
      }
    }
  }

  double su = 0, sv = 0;
  for (std::size_t z = 1; z <= nz; ++z) {
    for (std::size_t i = 0; i < plane; ++i) {
      su += (*u_cur)[z * plane + i];
      sv += (*v_cur)[z * plane + i];
    }
  }
  std::vector<double> sums = {su, sv};
  comm.AllReduce(sums, [](double a, double b) { return a + b; });
  result.sum_u = sums[0];
  result.sum_v = sums[1];
  return result;
}

GrayScottResult GrayScottMega(core::Service& service,
                              comm::Communicator& comm,
                              const GrayScottConfig& cfg) {
  comm::RankContext& ctx = comm.ctx();
  const std::size_t L = cfg.L;
  const std::size_t plane = L * L;
  const std::uint64_t cells = static_cast<std::uint64_t>(L) * L * L;
  std::size_t z0 = 0, nz = 0;
  SlabOf(L, comm.rank(), comm.size(), &z0, &nz);

  core::VectorOptions vopts;
  vopts.page_size = cfg.page_size;
  vopts.pcache_bytes = cfg.pcache_bytes;
  vopts.mode = core::CoherenceMode::kReadWriteGlobal;
  bool persist = cfg.plotgap > 0 && !cfg.out_key.empty();
  vopts.nonvolatile = persist;
  auto key = [&](const char* name) {
    if (persist) return cfg.out_key + ":" + name;  // shdf datasets
    return std::string("gs_") + name;              // volatile
  };
  core::Vector<double> ua(service, ctx, key("u0"), cells, vopts);
  core::Vector<double> va(service, ctx, key("v0"), cells, vopts);
  core::Vector<double> ub(service, ctx, key("u1"), cells, vopts);
  core::Vector<double> vb(service, ctx, key("v1"), cells, vopts);
  // The slab decomposition is contiguous in element space: register it so
  // first-touch places each rank's pages on its own node (Fig. 3 locality).
  for (auto* v : {&ua, &va, &ub, &vb}) {
    v->Pgas(comm.rank(), comm.size());
  }

  // Plane-granular span I/O for every hot loop below: pages are resolved
  // and pinned once per chunk instead of one faulting access per cell.
  auto load_plane = [&](core::Vector<double>& vec, std::size_t gz,
                        std::vector<double>* dst) {
    std::uint64_t base = (gz % L) * plane;
    const std::uint64_t chunk = vec.MaxSpanElems();
    for (std::uint64_t s = 0; s < plane; s += chunk) {
      std::uint64_t e = std::min<std::uint64_t>(plane, s + chunk);
      auto span = vec.ReadSpan(base + s, base + e);
      for (std::uint64_t i = s; i < e; ++i) (*dst)[i] = span[base + i];
    }
  };
  auto store_plane = [&](core::Vector<double>& vec, std::size_t gz,
                         const double* src) {
    std::uint64_t base = gz * plane;
    const std::uint64_t chunk = vec.MaxSpanElems();
    for (std::uint64_t s = 0; s < plane; s += chunk) {
      std::uint64_t e = std::min<std::uint64_t>(plane, s + chunk);
      auto span = vec.WriteSpan(base + s, base + e);
      for (std::uint64_t i = s; i < e; ++i) span[base + i] = src[i];
    }
  };

  // Initialize the owned slab (non-overlapping writes).
  {
    std::vector<double> u_init(plane), v_init(plane);
    auto txu = ua.SeqTxBegin(z0 * plane, nz * plane, core::MM_WRITE_ONLY);
    auto txv = va.SeqTxBegin(z0 * plane, nz * plane, core::MM_WRITE_ONLY);
    for (std::size_t z = 0; z < nz; ++z) {
      for (std::size_t y = 0; y < L; ++y) {
        for (std::size_t x = 0; x < L; ++x) {
          InitCell(L, x, y, z0 + z, &u_init[PIdx(L, x, y)],
                   &v_init[PIdx(L, x, y)]);
        }
      }
      store_plane(ua, z0 + z, u_init.data());
      store_plane(va, z0 + z, v_init.data());
    }
    ua.TxEnd();
    va.TxEnd();
  }
  comm.Barrier();

  GrayScottResult result;
  core::Vector<double>* u_cur = &ua;
  core::Vector<double>* v_cur = &va;
  core::Vector<double>* u_nxt = &ub;
  core::Vector<double>* v_nxt = &vb;

  // Rolling plane buffers (z-1, z, z+1 of both species).
  std::vector<double> um(plane), uc(plane), up(plane);
  std::vector<double> vm(plane), vc(plane), vp(plane);
  std::vector<double> u_out(plane), v_out(plane);

  for (int step = 0; step < cfg.steps; ++step) {
    // Declared read over the slab plus halos (clipped window; halo planes
    // are read through the same transaction's accesses).
    auto rtxu = u_cur->SeqTxBegin(z0 * plane, nz * plane, core::MM_READ_ONLY);
    auto rtxv = v_cur->SeqTxBegin(z0 * plane, nz * plane, core::MM_READ_ONLY);
    auto wtxu = u_nxt->SeqTxBegin(z0 * plane, nz * plane, core::MM_WRITE_ONLY);
    auto wtxv = v_nxt->SeqTxBegin(z0 * plane, nz * plane, core::MM_WRITE_ONLY);

    load_plane(*u_cur, z0 + L - 1, &um);
    load_plane(*u_cur, z0, &uc);
    load_plane(*v_cur, z0 + L - 1, &vm);
    load_plane(*v_cur, z0, &vc);
    for (std::size_t z = 0; z < nz; ++z) {
      load_plane(*u_cur, z0 + z + 1, &up);
      load_plane(*v_cur, z0 + z + 1, &vp);
      UpdatePlane(L, um.data(), uc.data(), up.data(), vm.data(), vc.data(),
                  vp.data(), u_out.data(), v_out.data(), cfg.params, ctx);
      store_plane(*u_nxt, z0 + z, u_out.data());
      store_plane(*v_nxt, z0 + z, v_out.data());
      std::swap(um, uc);
      std::swap(uc, up);
      std::swap(vm, vc);
      std::swap(vc, vp);
    }
    u_cur->TxEnd();
    v_cur->TxEnd();
    u_nxt->TxEnd();
    v_nxt->TxEnd();
    comm.Barrier();
    std::swap(u_cur, u_nxt);
    std::swap(v_cur, v_nxt);

    if (comm.rank() == 0) {
      // Per-step epoch boundary: gives the critical-path analyzer one
      // attribution window per simulation step (rate-limited by
      // telemetry.report_interval_s; "" when reporting is off).
      (void)service.MaybeEpochReport(ctx.clock().now());
    }

    if (persist && (step + 1) % cfg.plotgap == 0 && comm.rank() == 0) {
      // Asynchronous checkpoint: the staging engine drains in the
      // background; the application's clock is not stalled.
      u_cur->FlushAsync();
      v_cur->FlushAsync();
      result.bytes_checkpointed += 2ULL * cells * sizeof(double);
    }
  }

  double su = 0, sv = 0;
  {
    auto txu = u_cur->SeqTxBegin(z0 * plane, nz * plane, core::MM_READ_ONLY);
    auto txv = v_cur->SeqTxBegin(z0 * plane, nz * plane, core::MM_READ_ONLY);
    const std::uint64_t lo = z0 * plane, hi = (z0 + nz) * plane;
    const std::uint64_t chunk = u_cur->MaxSpanElems();
    for (std::uint64_t s = lo; s < hi; s += chunk) {
      std::uint64_t e = std::min(hi, s + chunk);
      auto uspan = u_cur->ReadSpan(s, e);
      auto vspan = v_cur->ReadSpan(s, e);
      for (std::uint64_t i = s; i < e; ++i) {
        su += uspan[i];
        sv += vspan[i];
      }
    }
    u_cur->TxEnd();
    v_cur->TxEnd();
  }
  std::vector<double> sums = {su, sv};
  comm.AllReduce(sums, [](double a, double b) { return a + b; });
  result.sum_u = sums[0];
  result.sum_v = sums[1];
  comm.Barrier();
  return result;
}

}  // namespace mm::apps
