#include "mm/apps/datagen.h"

#include <cstring>

#include "mm/storage/stager.h"
#include "mm/util/rng.h"

namespace mm::apps {

DatagenTruth GenerateParticles(const DatagenConfig& cfg,
                               std::vector<Particle>* out) {
  MM_CHECK(cfg.halos > 0 && cfg.num_particles > 0);
  Rng rng(cfg.seed);
  DatagenTruth truth;
  truth.halo_centers.reserve(cfg.halos);
  std::vector<Point3> bulk_vel(cfg.halos);
  for (int h = 0; h < cfg.halos; ++h) {
    Point3 c{static_cast<float>(rng.NextDouble() * cfg.box_size),
             static_cast<float>(rng.NextDouble() * cfg.box_size),
             static_cast<float>(rng.NextDouble() * cfg.box_size)};
    truth.halo_centers.push_back(c);
    bulk_vel[h] = Point3{static_cast<float>(rng.NextGaussian() * 10),
                         static_cast<float>(rng.NextGaussian() * 10),
                         static_cast<float>(rng.NextGaussian() * 10)};
  }
  out->resize(cfg.num_particles);
  truth.labels.resize(cfg.num_particles);
  for (std::uint64_t i = 0; i < cfg.num_particles; ++i) {
    int h = static_cast<int>(rng.NextBounded(cfg.halos));
    truth.labels[i] = h;
    Particle& p = (*out)[i];
    const Point3& c = truth.halo_centers[h];
    p.pos = Point3{
        static_cast<float>(c.x + rng.NextGaussian() * cfg.halo_sigma),
        static_cast<float>(c.y + rng.NextGaussian() * cfg.halo_sigma),
        static_cast<float>(c.z + rng.NextGaussian() * cfg.halo_sigma)};
    const Point3& bv = bulk_vel[h];
    p.vel = Point3{
        static_cast<float>(bv.x + rng.NextGaussian() * cfg.vel_sigma),
        static_cast<float>(bv.y + rng.NextGaussian() * cfg.vel_sigma),
        static_cast<float>(bv.z + rng.NextGaussian() * cfg.vel_sigma)};
  }
  return truth;
}

StatusOr<DatagenTruth> GenerateToBackend(const DatagenConfig& cfg,
                                         const std::string& key) {
  std::vector<Particle> particles;
  DatagenTruth truth = GenerateParticles(cfg, &particles);
  MM_ASSIGN_OR_RETURN(auto resolved,
                      storage::StagerRegistry::Default().Resolve(key));
  auto [stager, uri] = resolved;
  std::uint64_t bytes = particles.size() * sizeof(Particle);
  if (stager->Exists(uri)) {
    MM_RETURN_IF_ERROR(stager->Remove(uri));
  }
  MM_RETURN_IF_ERROR(stager->Create(uri, bytes));
  // Raw overload: the particle array is already contiguous bytes.
  MM_RETURN_IF_ERROR(stager->Write(
      uri, 0, reinterpret_cast<const std::uint8_t*>(particles.data()), bytes));
  return truth;
}

}  // namespace mm::apps
