#include "mm/apps/dbscan.h"

#include <algorithm>
#include <optional>
#include <map>
#include <set>
#include <unordered_map>

#include "mm/core/vector.h"
#include "mm/storage/stager.h"
#include "mm/util/hash.h"

namespace mm::apps {

namespace {

/// A point carrying its original dataset index (exchange unit).
struct IdxPoint {
  std::uint64_t idx = 0;
  float x = 0, y = 0, z = 0;

  Point3 pos() const { return Point3{x, y, z}; }
};
static_assert(std::is_trivially_copyable_v<IdxPoint>);

IdxPoint MakeIdxPoint(std::uint64_t idx, const Point3& p) {
  return IdxPoint{idx, p.x, p.y, p.z};
}

/// One recorded split plane (for border detection at merge time).
struct SplitPlane {
  int axis = 0;
  float value = 0;
};

/// Grid-accelerated exact DBSCAN over the local partition. Labels are
/// local cluster ids >= 0, or -1 for noise. Also reports per-point core
/// status. Compute is charged per distance evaluation.
std::vector<int> LocalDbscan(const std::vector<IdxPoint>& pts, double eps,
                             std::size_t min_pts, comm::RankContext& ctx,
                             std::vector<bool>* is_core,
                             std::vector<std::uint32_t>* nbr_count) {
  const std::size_t n = pts.size();
  const double eps2 = eps * eps;
  std::vector<int> labels(n, -2);
  is_core->assign(n, false);
  nbr_count->assign(n, 0);
  if (n == 0) return labels;

  // Uniform grid with cell edge eps: neighbor candidates live in the 27
  // surrounding cells (the k-d tree leaf role in µDBSCAN).
  auto cell_of = [&](const IdxPoint& p) {
    auto q = [&](float v) {
      return static_cast<std::int64_t>(std::floor(v / eps));
    };
    return HashCombine(HashCombine(MixU64(static_cast<std::uint64_t>(q(p.x))),
                                   static_cast<std::uint64_t>(q(p.y))),
                       static_cast<std::uint64_t>(q(p.z)));
  };
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> grid;
  for (std::size_t i = 0; i < n; ++i) grid[cell_of(pts[i])].push_back(i);

  std::uint64_t distance_evals = 0;
  auto neighbors = [&](std::size_t i) {
    std::vector<std::size_t> out;
    const IdxPoint& p = pts[i];
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          IdxPoint shifted = p;
          shifted.x += static_cast<float>(dx * eps);
          shifted.y += static_cast<float>(dy * eps);
          shifted.z += static_cast<float>(dz * eps);
          auto it = grid.find(cell_of(shifted));
          if (it == grid.end()) continue;
          for (std::size_t j : it->second) {
            ++distance_evals;
            if (Dist2(p.pos(), pts[j].pos()) <= eps2) out.push_back(j);
          }
        }
      }
    }
    return out;
  };

  // Neighbor counts for every point (needed for cross-leaf core
  // refinement at merge time). Capped just past min_pts: beyond that the
  // exact count changes nothing and dense blobs would make this pass
  // quadratic.
  {
    const std::size_t cap = min_pts + 8;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t count = 0;
      const IdxPoint& p = pts[i];
      bool done = false;
      for (int dx = -1; dx <= 1 && !done; ++dx) {
        for (int dy = -1; dy <= 1 && !done; ++dy) {
          for (int dz = -1; dz <= 1 && !done; ++dz) {
            IdxPoint shifted = p;
            shifted.x += static_cast<float>(dx * eps);
            shifted.y += static_cast<float>(dy * eps);
            shifted.z += static_cast<float>(dz * eps);
            auto it = grid.find(cell_of(shifted));
            if (it == grid.end()) continue;
            for (std::size_t j : it->second) {
              ++distance_evals;
              if (Dist2(p.pos(), pts[j].pos()) <= eps2 && ++count >= cap) {
                done = true;
                break;
              }
            }
          }
        }
      }
      (*nbr_count)[i] = static_cast<std::uint32_t>(count);
    }
  }
  int next_cluster = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] != -2) continue;
    auto nbrs = neighbors(i);
    if (nbrs.size() < min_pts) {
      labels[i] = -1;
      continue;
    }
    (*is_core)[i] = true;
    int cid = next_cluster++;
    labels[i] = cid;
    std::vector<std::size_t> frontier = nbrs;
    for (std::size_t f = 0; f < frontier.size(); ++f) {
      std::size_t q = frontier[f];
      if (labels[q] == -1) labels[q] = cid;
      if (labels[q] != -2) continue;
      labels[q] = cid;
      auto qn = neighbors(q);
      if (qn.size() >= min_pts) {
        (*is_core)[q] = true;
        frontier.insert(frontier.end(), qn.begin(), qn.end());
      }
    }
  }
  ctx.Compute(ctx.costs().point_distance_s *
              static_cast<double>(distance_evals));
  return labels;
}

/// Deterministic subsample of up to `count` local points.
std::vector<IdxPoint> Subsample(const std::vector<IdxPoint>& pts,
                                std::uint64_t seed, int count) {
  std::vector<IdxPoint> out;
  if (pts.empty()) return out;
  for (int i = 0; i < count; ++i) {
    std::uint64_t h = MixU64(seed ^ MixU64(i));
    out.push_back(pts[h % pts.size()]);
  }
  return out;
}

/// Picks (axis, median) from the gathered sample (paper: "the median and
/// entropy is estimated per-axis using a small, random subsample; the axis
/// with the largest entropy is chosen"). We use variance as the spread
/// (entropy) estimate.
SplitPlane ChooseSplit(std::vector<IdxPoint> sample, comm::RankContext& ctx) {
  MM_CHECK(!sample.empty());
  int best_axis = 0;
  double best_var = -1;
  for (int a = 0; a < 3; ++a) {
    double mean = 0;
    for (const auto& p : sample) mean += p.pos().axis(a);
    mean /= static_cast<double>(sample.size());
    double var = 0;
    for (const auto& p : sample) {
      double d = p.pos().axis(a) - mean;
      var += d * d;
    }
    if (var > best_var) {
      best_var = var;
      best_axis = a;
    }
  }
  ctx.Compute(ctx.costs().kdtree_visit_s * sample.size() * 6);
  std::nth_element(sample.begin(), sample.begin() + sample.size() / 2,
                   sample.end(), [&](const IdxPoint& a, const IdxPoint& b) {
                     return a.pos().axis(best_axis) <
                            b.pos().axis(best_axis);
                   });
  return SplitPlane{best_axis,
                    sample[sample.size() / 2].pos().axis(best_axis)};
}

/// Redistribution callback: moves `outgoing` to the sibling half and
/// returns the points received from it. `side` is 0 (left) / 1 (right).
using ExchangeFn = std::function<std::vector<IdxPoint>(
    comm::Communicator& comm, int side, int level,
    const std::vector<IdxPoint>& outgoing)>;

/// Shared recursion skeleton. Returns the final local points and records
/// the split planes on this rank's path.
std::vector<IdxPoint> KdPartition(comm::Communicator comm,
                                  std::vector<IdxPoint> pts,
                                  const DbscanConfig& cfg,
                                  const ExchangeFn& exchange,
                                  std::vector<SplitPlane>* path) {
  int level = 0;
  while (comm.size() > 1) {
    comm::RankContext& ctx = comm.ctx();
    auto local_sample = Subsample(
        pts, cfg.seed ^ MixU64((static_cast<std::uint64_t>(level) << 8) ^
                               comm.WorldRank(comm.rank())),
        cfg.sample_per_rank);
    auto sample = comm.AllGatherV(local_sample);
    if (sample.empty()) {
      // Degenerate group (no points anywhere): collapse arbitrarily.
      comm = comm.Split(0);
      ++level;
      continue;
    }
    SplitPlane split = ChooseSplit(std::move(sample), ctx);
    path->push_back(split);

    int half = comm.size() / 2;
    int side = comm.rank() < half ? 0 : 1;
    std::vector<IdxPoint> keep, outgoing;
    for (const IdxPoint& p : pts) {
      bool left = p.pos().axis(split.axis) <= split.value;
      if ((side == 0) == left) {
        keep.push_back(p);
      } else {
        outgoing.push_back(p);
      }
    }
    ctx.Compute(ctx.costs().kdtree_visit_s * pts.size());
    auto received = exchange(comm, side, level, outgoing);
    keep.insert(keep.end(), received.begin(), received.end());
    pts = std::move(keep);
    comm = comm.Split(side);
    ++level;
  }
  return pts;
}

struct BorderPoint {
  IdxPoint p;
  std::int32_t leaf = 0;       // world rank of the owning leaf
  std::int32_t label = 0;      // local cluster id, or -1 (local noise)
  std::uint32_t local_count = 0;  // neighbors within the leaf
};
static_assert(std::is_trivially_copyable_v<BorderPoint>);

/// Union-find over (leaf, label) keys.
class UnionFind {
 public:
  std::uint64_t Find(std::uint64_t k) {
    auto it = parent_.find(k);
    if (it == parent_.end()) {
      parent_[k] = k;
      return k;
    }
    if (it->second == k) return k;
    std::uint64_t root = Find(it->second);
    parent_[k] = root;
    return root;
  }
  void Union(std::uint64_t a, std::uint64_t b) {
    parent_[Find(a)] = Find(b);
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> parent_;
};

std::uint64_t LeafLabelKey(std::int32_t leaf, std::int32_t label) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(leaf)) << 32) |
         static_cast<std::uint32_t>(label);
}

/// Common tail: leaf clustering + µcluster merge + global counting.
///
/// The merge refines the leaf-local results near split planes: border
/// points pool their neighborhoods across leaves, so points that lost core
/// status (or were classified noise) because their halo straddles a plane
/// are promoted and absorbed into the reunited cluster.
DbscanResult FinishDbscan(comm::Communicator& comm,
                          const std::vector<IdxPoint>& pts,
                          const std::vector<SplitPlane>& path,
                          const DbscanConfig& cfg) {
  comm::RankContext& ctx = comm.ctx();
  std::vector<bool> is_core;
  std::vector<std::uint32_t> nbr_count;
  std::vector<int> local_labels =
      LocalDbscan(pts, cfg.eps, cfg.min_pts, ctx, &is_core, &nbr_count);
  const std::int32_t my_leaf = comm.WorldRank(comm.rank());

  // Border points: ANY point (clustered or local noise) within eps of a
  // split plane on this leaf's path.
  std::vector<BorderPoint> borders;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (const SplitPlane& sp : path) {
      if (std::abs(pts[i].pos().axis(sp.axis) - sp.value) <= cfg.eps) {
        BorderPoint bp;
        bp.p = pts[i];
        bp.leaf = my_leaf;
        bp.label = local_labels[i];
        bp.local_count = nbr_count[i];
        borders.push_back(bp);
        break;
      }
    }
  }
  auto all_borders = comm.AllGatherV(borders);

  // Cross-leaf neighborhoods: total count = local + neighbors on other
  // leaves. A border point is globally core when the pooled count reaches
  // min_pts (this is what leaf-local DBSCAN could not see).
  const double eps2 = cfg.eps * cfg.eps;
  const std::size_t nb = all_borders.size();
  std::vector<std::uint32_t> pooled(nb);
  std::vector<std::vector<std::size_t>> cross(nb);
  std::uint64_t evals = 0;
  for (std::size_t i = 0; i < nb; ++i) pooled[i] = all_borders[i].local_count;
  {
    // Grid-accelerated pairing (the all-pairs version is quadratic in the
    // border count, which explodes when split planes cross dense halos).
    auto cell_of = [&](const IdxPoint& p) {
      auto q = [&](float v) {
        return static_cast<std::int64_t>(std::floor(v / cfg.eps));
      };
      return HashCombine(
          HashCombine(MixU64(static_cast<std::uint64_t>(q(p.x))),
                      static_cast<std::uint64_t>(q(p.y))),
          static_cast<std::uint64_t>(q(p.z)));
    };
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> grid;
    for (std::size_t i = 0; i < nb; ++i) {
      grid[cell_of(all_borders[i].p)].push_back(i);
    }
    // Per-point independent scan with early exit: once the pooled count
    // proves core status and a few cross-leaf links are recorded, further
    // neighbors add nothing (dense blobs would otherwise produce quadratic
    // edge lists).
    const std::uint32_t count_cap =
        static_cast<std::uint32_t>(cfg.min_pts) + 1;
    constexpr std::size_t kLinkCap = 4;
    for (std::size_t i = 0; i < nb; ++i) {
      const IdxPoint& p = all_borders[i].p;
      bool done_i = false;
      for (int dx = -1; dx <= 1 && !done_i; ++dx) {
        for (int dy = -1; dy <= 1 && !done_i; ++dy) {
          for (int dz = -1; dz <= 1 && !done_i; ++dz) {
            IdxPoint shifted = p;
            shifted.x += static_cast<float>(dx * cfg.eps);
            shifted.y += static_cast<float>(dy * cfg.eps);
            shifted.z += static_cast<float>(dz * cfg.eps);
            auto it = grid.find(cell_of(shifted));
            if (it == grid.end()) continue;
            for (std::size_t j : it->second) {
              if (all_borders[i].leaf == all_borders[j].leaf) continue;
              ++evals;
              if (Dist2(p.pos(), all_borders[j].p.pos()) <= eps2) {
                if (pooled[i] < count_cap) ++pooled[i];
                if (cross[i].size() < kLinkCap) cross[i].push_back(j);
              }
              if (pooled[i] >= count_cap && cross[i].size() >= kLinkCap) {
                done_i = true;
                break;
              }
            }
          }
        }
      }
    }
  }
  ctx.Compute(ctx.costs().point_distance_s * static_cast<double>(evals));

  // Union-find keys: clustered points use (leaf, label); noise points
  // promoted to core get a unique key from their global dataset index.
  UnionFind uf;
  auto key_of = [&](const BorderPoint& b) -> std::uint64_t {
    if (b.label >= 0) return LeafLabelKey(b.leaf, b.label);
    return 0x8000000000000000ULL | b.p.idx;
  };
  std::vector<bool> global_core(nb);
  for (std::size_t i = 0; i < nb; ++i) {
    global_core[i] = pooled[i] >= cfg.min_pts;
  }
  for (std::size_t i = 0; i < nb; ++i) {
    if (!global_core[i]) continue;
    for (std::size_t j : cross[i]) {
      if (global_core[j]) uf.Union(key_of(all_borders[i]),
                                   key_of(all_borders[j]));
    }
  }
  // Border absorption: a non-core border point within eps of a core point
  // (either leaf) joins that cluster.
  std::unordered_map<std::uint64_t, std::uint64_t> absorbed;  // idx -> key
  for (std::size_t i = 0; i < nb; ++i) {
    if (global_core[i] || all_borders[i].label >= 0) continue;
    for (std::size_t j : cross[i]) {
      if (global_core[j]) {
        absorbed[all_borders[i].p.idx] = key_of(all_borders[j]);
        break;
      }
    }
  }
  // Promoted-noise points whose key merged somewhere must be resolvable by
  // their owners: map idx -> key for them too.
  std::unordered_map<std::uint64_t, std::uint64_t> promoted;
  for (std::size_t i = 0; i < nb; ++i) {
    if (all_borders[i].label < 0 && global_core[i]) {
      promoted[all_borders[i].p.idx] = key_of(all_borders[i]);
    }
  }

  // Final label of each local point as a union-find key (or none).
  auto final_key = [&](std::size_t i) -> std::optional<std::uint64_t> {
    if (local_labels[i] >= 0) {
      return uf.Find(LeafLabelKey(my_leaf, local_labels[i]));
    }
    auto pit = promoted.find(pts[i].idx);
    if (pit != promoted.end()) return uf.Find(pit->second);
    auto ait = absorbed.find(pts[i].idx);
    if (ait != absorbed.end()) return uf.Find(ait->second);
    return std::nullopt;
  };

  // Global cluster roots: every (leaf, label) pair plus promoted keys.
  std::vector<std::int64_t> my_keys;
  {
    std::set<std::uint64_t> mine;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      auto k = final_key(i);
      if (k.has_value()) mine.insert(*k);
    }
    for (std::uint64_t k : mine) {
      my_keys.push_back(static_cast<std::int64_t>(k));
    }
  }
  auto all_keys = comm.AllGatherV(my_keys);
  std::set<std::uint64_t> roots;
  for (std::int64_t k : all_keys) {
    roots.insert(uf.Find(static_cast<std::uint64_t>(k)));
  }

  DbscanResult result;
  result.num_clusters = roots.size();
  std::vector<std::uint64_t> counts = {pts.size(), 0};
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (!final_key(i).has_value()) ++counts[1];
  }
  comm.AllReduce(counts,
                 [](std::uint64_t a, std::uint64_t b) { return a + b; });
  result.num_points = counts[0];
  result.num_noise = counts[1];

  if (cfg.collect_labels) {
    std::map<std::uint64_t, int> dense;
    for (std::uint64_t r : roots) {
      dense.emplace(r, static_cast<int>(dense.size()));
    }
    std::vector<std::int64_t> flat;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      auto k = final_key(i);
      flat.push_back(static_cast<std::int64_t>(pts[i].idx));
      flat.push_back(k.has_value() ? dense.at(uf.Find(*k)) : -1);
    }
    auto all = comm.AllGatherV(flat);
    result.labels.assign(result.num_points, -1);
    for (std::size_t i = 0; i + 1 < all.size(); i += 2) {
      result.labels[static_cast<std::size_t>(all[i])] =
          static_cast<int>(all[i + 1]);
    }
  }
  return result;
}

/// Loads this rank's PGAS slice of the dataset through MegaMmap.
std::vector<IdxPoint> LoadSliceMega(core::Service& service,
                                    comm::Communicator& comm,
                                    const std::string& dataset_key,
                                    const DbscanConfig& cfg) {
  comm::RankContext& ctx = comm.ctx();
  core::VectorOptions vopts;
  vopts.page_size = cfg.page_size;
  vopts.pcache_bytes = cfg.pcache_bytes;
  vopts.mode = core::CoherenceMode::kReadOnlyGlobal;
  core::Vector<Particle> data(service, ctx, dataset_key, 0, vopts);
  data.Pgas(comm.rank(), comm.size());
  std::vector<IdxPoint> pts;
  pts.reserve(data.local_size());
  const std::uint64_t lo = data.local_off(), n = data.local_size();
  const std::uint64_t chunk = data.MaxSpanElems();
  auto tx = data.SeqTxBegin(lo, n, core::MM_READ_ONLY);
  for (std::uint64_t s = lo; s < lo + n; s += chunk) {
    std::uint64_t e = std::min(lo + n, s + chunk);
    auto span = data.ReadSpan(s, e);
    for (std::uint64_t i = s; i < e; ++i) {
      pts.push_back(MakeIdxPoint(i, span[i].pos));
    }
  }
  data.TxEnd();
  return pts;
}

/// Loads this rank's slice directly through the stager (MPI baseline).
std::vector<IdxPoint> LoadSliceMpi(comm::Communicator& comm,
                                   const std::string& dataset_key) {
  comm::RankContext& ctx = comm.ctx();
  auto resolved = storage::StagerRegistry::Default().Resolve(dataset_key);
  if (!resolved.ok()) {
    throw std::runtime_error("DbscanMpi: " + resolved.status().ToString());
  }
  auto [stager, uri] = *resolved;
  auto size_or = stager->Size(uri);
  if (!size_or.ok()) {
    throw std::runtime_error("DbscanMpi: " + size_or.status().ToString());
  }
  std::uint64_t total = *size_or / sizeof(Particle);
  std::uint64_t base = total / comm.size(), rem = total % comm.size();
  std::uint64_t lo = comm.rank() * base +
                     std::min<std::uint64_t>(comm.rank(), rem);
  std::uint64_t count =
      base + (static_cast<std::uint64_t>(comm.rank()) < rem ? 1 : 0);
  std::vector<std::uint8_t> raw;
  Status st =
      stager->Read(uri, lo * sizeof(Particle), count * sizeof(Particle), &raw);
  if (!st.ok()) throw std::runtime_error("DbscanMpi: " + st.ToString());
  sim::SimTime done =
      ctx.world().cluster().pfs().Read(ctx.clock().now(), raw.size());
  ctx.clock().AdvanceTo(done);
  std::vector<IdxPoint> pts(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Particle p;
    std::memcpy(&p, raw.data() + i * sizeof(Particle), sizeof(Particle));
    pts[i] = MakeIdxPoint(lo + i, p.pos);
  }
  // The MPI baseline holds the slice in private DRAM for the whole run.
  ctx.world().cluster().node(ctx.node()).AllocateDram(count *
                                                      sizeof(IdxPoint));
  return pts;
}

}  // namespace

DbscanResult DbscanMega(core::Service& service, comm::Communicator& comm,
                        const std::string& dataset_key,
                        const DbscanConfig& cfg) {
  auto pts = LoadSliceMega(service, comm, dataset_key, cfg);

  // Exchange through shared append-only vectors: both halves append their
  // outgoing points into the sibling branch's vector, then each half
  // re-reads its own branch PGAS-style (the paper's k-d tree construction
  // pattern, Fig. 3 append-only-global).
  ExchangeFn exchange = [&](comm::Communicator& c, int side, int level,
                            const std::vector<IdxPoint>& outgoing) {
    comm::RankContext& ctx = c.ctx();
    core::VectorOptions vopts;
    vopts.page_size = cfg.page_size;
    vopts.pcache_bytes = cfg.pcache_bytes;
    vopts.mode = core::CoherenceMode::kAppendOnlyGlobal;
    vopts.nonvolatile = false;
    std::string base = "dbscan_" + std::to_string(cfg.seed) + "_l" +
                       std::to_string(level) + "_g" +
                       std::to_string(c.WorldRank(0));
    // Branch 0 receives from side-1 ranks and vice versa.
    core::Vector<IdxPoint> branch0(service, ctx, base + "_b0", 0, vopts);
    core::Vector<IdxPoint> branch1(service, ctx, base + "_b1", 0, vopts);
    core::Vector<IdxPoint>& out_vec = (side == 0) ? branch1 : branch0;
    core::Vector<IdxPoint>& in_vec = (side == 0) ? branch0 : branch1;
    for (const IdxPoint& p : outgoing) out_vec.Append(p);
    out_vec.Commit();  // appends must be visible before the barrier
    c.Barrier();
    // Group-local PGAS over the incoming branch.
    int half = c.size() / 2;
    int group_size = (side == 0) ? half : c.size() - half;
    int group_rank = (side == 0) ? c.rank() : c.rank() - half;
    in_vec.Pgas(group_rank, group_size);
    std::vector<IdxPoint> received;
    std::uint64_t lo = in_vec.local_off(), n = in_vec.local_size();
    if (n > 0) {
      const std::uint64_t chunk = in_vec.MaxSpanElems();
      auto tx = in_vec.SeqTxBegin(lo, n, core::MM_READ_ONLY);
      for (std::uint64_t s = lo; s < lo + n; s += chunk) {
        std::uint64_t e = std::min(lo + n, s + chunk);
        auto span = in_vec.ReadSpan(s, e);
        for (std::uint64_t i = s; i < e; ++i) {
          received.push_back(span[i]);
        }
      }
      in_vec.TxEnd();
    }
    c.Barrier();
    if (c.rank() == 0) {
      branch0.Destroy();
      branch1.Destroy();
    }
    c.Barrier();
    return received;
  };

  std::vector<SplitPlane> path;
  auto leaf_pts = KdPartition(comm, std::move(pts), cfg, exchange, &path);
  return FinishDbscan(comm, leaf_pts, path, cfg);
}

DbscanResult DbscanMpi(comm::Communicator& comm,
                       const std::string& dataset_key,
                       const DbscanConfig& cfg) {
  auto pts = LoadSliceMpi(comm, dataset_key);
  std::uint64_t charged = pts.size() * sizeof(IdxPoint);

  // Redistribution: each rank publishes its outgoing points tagged with
  // the sender's side; ranks of the opposite side split the destined
  // points evenly among themselves.
  ExchangeFn robust = [&](comm::Communicator& c, int side, int level,
                          const std::vector<IdxPoint>& outgoing) {
    (void)level;  // recursion depth is irrelevant to the robust exchange
    comm::RankContext& ctx = c.ctx();
    // Everyone publishes its outgoing points; destination side is the
    // opposite of the sender's, so tag each batch with the sender's side.
    std::vector<IdxPoint> batch = outgoing;
    std::vector<std::int64_t> header = {side,
                                        static_cast<std::int64_t>(batch.size())};
    auto headers = c.AllGatherV(header);
    auto points = c.AllGatherV(batch);
    // Collect the points destined for my side, in publication order.
    std::vector<IdxPoint> destined;
    std::size_t cursor = 0;
    for (std::size_t s = 0; s + 1 < headers.size(); s += 2) {
      std::int64_t sender_side = headers[s];
      std::int64_t count = headers[s + 1];
      if (sender_side != side) {
        destined.insert(destined.end(), points.begin() + cursor,
                        points.begin() + cursor + count);
      }
      cursor += static_cast<std::size_t>(count);
    }
    // Split destined points evenly among my half's ranks.
    int half = c.size() / 2;
    int group_size = (side == 0) ? half : c.size() - half;
    int group_rank = (side == 0) ? c.rank() : c.rank() - half;
    std::uint64_t n = destined.size();
    std::uint64_t base = n / group_size, rem = n % group_size;
    std::uint64_t lo = group_rank * base +
                       std::min<std::uint64_t>(group_rank, rem);
    std::uint64_t cnt =
        base + (static_cast<std::uint64_t>(group_rank) < rem ? 1 : 0);
    ctx.Compute(ctx.costs().kdtree_visit_s * static_cast<double>(n));
    return std::vector<IdxPoint>(destined.begin() + lo,
                                 destined.begin() + lo + cnt);
  };

  std::vector<SplitPlane> path;
  auto leaf_pts = KdPartition(comm, std::move(pts), cfg, robust, &path);
  auto result = FinishDbscan(comm, leaf_pts, path, cfg);
  comm.ctx().world().cluster().node(comm.ctx().node()).FreeDram(charged);
  return result;
}

}  // namespace mm::apps
