#include "mm/apps/kvstore.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>

#include "mm/util/hash.h"

namespace mm::apps {
namespace {

// Op stream determinism shared by the DSM run and the std::map oracle:
// everything below is a pure function of (cfg.seed, rank, op index).

constexpr std::uint64_t kMaxRanks = 64;  // insert-key stride (>= any run)

enum class OpKind { kGet, kUpdate, kScan, kInsert };

/// Scatters a dense item index over the 64-bit key space so zipf-hot items
/// land on unrelated leaves (collisions are negligible and harmless: the
/// loaded record is a function of the key alone).
std::uint64_t ScatterKey(std::uint64_t index) { return MixU64(index + 1); }

std::uint64_t InsertKeyIndex(const KvConfig& cfg, int rank,
                             std::uint64_t counter) {
  return cfg.num_keys + counter * kMaxRanks + static_cast<std::uint64_t>(rank);
}

OpKind PickOp(Rng& rng, const KvConfig& cfg) {
  const double u = rng.NextDouble();
  if (u < cfg.read_frac) return OpKind::kGet;
  if (u < cfg.read_frac + cfg.update_frac) return OpKind::kUpdate;
  if (u < cfg.read_frac + cfg.update_frac + cfg.scan_frac) {
    return OpKind::kScan;
  }
  return OpKind::kInsert;
}

double Zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

KvRecord MakeRecord(std::uint64_t key, std::uint64_t version) {
  KvRecord rec{};
  std::uint64_t word = MixU64(key ^ MixU64(version));
  for (std::size_t i = 0; i < sizeof(rec.payload); ++i) {
    if (i % 8 == 0) word = MixU64(word);
    rec.payload[i] = static_cast<std::uint8_t>(word >> ((i % 8) * 8));
  }
  return rec;
}

std::uint64_t RecordDigest(const KvRecord& rec) {
  std::uint64_t h = 0x4b56444947455354ULL;  // "KVDIGEST"
  for (std::size_t i = 0; i < sizeof(rec.payload); i += 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, rec.payload + i,
                std::min<std::size_t>(8, sizeof(rec.payload) - i));
    h = HashCombine(h, word);
  }
  return h;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta,
                                   std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  zetan_ = Zeta(n_, theta_);
  zeta2_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

std::uint64_t ZipfianGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(rank, n_ - 1);
}

KvResult RunKvWorkload(core::Service& service, comm::Communicator& comm,
                       const KvConfig& cfg) {
  comm::RankContext& ctx = comm.ctx();
  KvTree tree(service, ctx, cfg.key_prefix, cfg.tree);

  if (comm.rank() == 0) tree.Create();
  comm.Barrier();
  tree.Refresh();

  // Collective bulk load: round-robin partition, record version 0 (a pure
  // function of the key, so scatter collisions across ranks agree).
  const auto nranks = static_cast<std::uint64_t>(comm.size());
  for (std::uint64_t i = comm.rank(); i < cfg.num_keys; i += nranks) {
    const std::uint64_t key = ScatterKey(i);
    tree.Put(key, MakeRecord(key, 0));
  }
  comm.Barrier();
  tree.Refresh();

  KvResult res;
  ZipfianGenerator zipf(cfg.num_keys, cfg.zipf_theta,
                        HashCombine(cfg.seed, comm.rank()));
  Rng op_rng(HashCombine(cfg.seed, 0x6f70ULL * (comm.rank() + 1)));
  std::uint64_t insert_counter = 0;
  std::vector<std::pair<std::uint64_t, KvRecord>> scan_buf;
  const double t_start = ctx.clock().now();

  for (std::uint64_t op = 0; op < cfg.ops_per_rank; ++op) {
    const OpKind kind = PickOp(op_rng, cfg);
    const std::uint64_t item = zipf.Next();
    const std::uint64_t key = ScatterKey(item);
    const double t0 = ctx.clock().now();
    switch (kind) {
      case OpKind::kGet: {
        KvRecord rec{};
        const bool hit = tree.Get(key, &rec);
        ++res.gets;
        if (hit) {
          ++res.hits;
          res.checksum = HashCombine(res.checksum, RecordDigest(rec));
        } else {
          res.checksum = HashCombine(res.checksum, 0);
        }
        res.get_lat_s.push_back(ctx.clock().now() - t0);
        break;
      }
      case OpKind::kUpdate: {
        tree.Put(key, MakeRecord(key, op + 1));
        ++res.updates;
        res.checksum = HashCombine(res.checksum, key);
        res.update_lat_s.push_back(ctx.clock().now() - t0);
        break;
      }
      case OpKind::kScan: {
        scan_buf.clear();
        const std::uint64_t got = tree.Scan(key, cfg.scan_len, &scan_buf);
        ++res.scans;
        res.scan_items += got;
        for (const auto& [k, rec] : scan_buf) {
          res.checksum = HashCombine(res.checksum, k);
          res.checksum = HashCombine(res.checksum, RecordDigest(rec));
        }
        res.scan_lat_s.push_back(ctx.clock().now() - t0);
        break;
      }
      case OpKind::kInsert: {
        const std::uint64_t nk =
            ScatterKey(InsertKeyIndex(cfg, comm.rank(), insert_counter++));
        tree.Put(nk, MakeRecord(nk, op + 1));
        ++res.inserts;
        res.checksum = HashCombine(res.checksum, nk);
        res.update_lat_s.push_back(ctx.clock().now() - t0);
        break;
      }
    }
  }
  res.sim_seconds = ctx.clock().now() - t_start;
  res.stats = tree.stats();
  comm.Barrier();
  return res;
}

std::uint64_t ReferenceKvChecksum(const KvConfig& cfg, int rank) {
  std::map<std::uint64_t, KvRecord> map;
  for (std::uint64_t i = 0; i < cfg.num_keys; ++i) {
    const std::uint64_t key = ScatterKey(i);
    map[key] = MakeRecord(key, 0);
  }
  std::uint64_t checksum = 0;
  ZipfianGenerator zipf(cfg.num_keys, cfg.zipf_theta,
                        HashCombine(cfg.seed, rank));
  Rng op_rng(HashCombine(cfg.seed, 0x6f70ULL * (rank + 1)));
  std::uint64_t insert_counter = 0;
  for (std::uint64_t op = 0; op < cfg.ops_per_rank; ++op) {
    const OpKind kind = PickOp(op_rng, cfg);
    const std::uint64_t item = zipf.Next();
    const std::uint64_t key = ScatterKey(item);
    switch (kind) {
      case OpKind::kGet: {
        auto it = map.find(key);
        checksum = HashCombine(
            checksum, it == map.end() ? 0 : RecordDigest(it->second));
        break;
      }
      case OpKind::kUpdate: {
        map[key] = MakeRecord(key, op + 1);
        checksum = HashCombine(checksum, key);
        break;
      }
      case OpKind::kScan: {
        auto it = map.lower_bound(key);
        for (std::uint64_t got = 0; got < cfg.scan_len && it != map.end();
             ++got, ++it) {
          checksum = HashCombine(checksum, it->first);
          checksum = HashCombine(checksum, RecordDigest(it->second));
        }
        break;
      }
      case OpKind::kInsert: {
        const std::uint64_t nk =
            ScatterKey(InsertKeyIndex(cfg, rank, insert_counter++));
        map[nk] = MakeRecord(nk, op + 1);
        checksum = HashCombine(checksum, nk);
        break;
      }
    }
  }
  return checksum;
}

}  // namespace mm::apps
