#include "mm/apps/sparklike.h"

namespace mm::apps::sparklike {

void SparkEnv::Alloc(std::uint64_t bytes) {
  ctx_->world().cluster().node(ctx_->node()).AllocateDram(bytes);
  allocated_ += bytes;
}

void SparkEnv::Free(std::uint64_t bytes) {
  MM_CHECK(bytes <= allocated_);
  ctx_->world().cluster().node(ctx_->node()).FreeDram(bytes);
  allocated_ -= bytes;
}

void SparkEnv::ReleaseAll() {
  if (allocated_ > 0) {
    ctx_->world().cluster().node(ctx_->node()).FreeDram(allocated_);
    allocated_ = 0;
  }
}

}  // namespace mm::apps::sparklike
