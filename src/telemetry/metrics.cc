#include "mm/telemetry/metrics.h"

#include <algorithm>

namespace mm::telemetry {

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, h);
      continue;
    }
    HistogramSnapshot& mine = it->second;
    if (mine.buckets.size() != h.buckets.size()) continue;  // shape mismatch
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      mine.buckets[i] += h.buckets[i];
    }
    mine.count += h.count;
    mine.sum += h.sum;
  }
}

#if MM_TELEMETRY_ENABLED

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double v) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    snap.buckets.push_back(b.load(std::memory_order_relaxed));
  }
  snap.count = count();
  snap.sum = sum();
  return snap;
}

std::vector<double> LatencyBoundsNs() {
  // 1 µs .. 10 s of virtual time, one decade per bucket.
  return {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10};
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto it = counter_names_.find(name);
  if (it != counter_names_.end()) return it->second;
  counters_.emplace_back();
  Counter* c = &counters_.back();
  counter_names_.emplace(name, c);
  return c;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto it = gauge_names_.find(name);
  if (it != gauge_names_.end()) return it->second;
  gauges_.emplace_back();
  Gauge* g = &gauges_.back();
  gauge_names_.emplace(name, g);
  return g;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto it = histogram_names_.find(name);
  if (it != histogram_names_.end()) return it->second;
  histograms_.emplace_back(std::move(bounds));
  Histogram* h = &histograms_.back();
  histogram_names_.emplace(name, h);
  return h;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counter_names_) {
    snap.counters.emplace(name, c->value());
  }
  for (const auto& [name, g] : gauge_names_) {
    snap.gauges.emplace(name, g->value());
  }
  for (const auto& [name, h] : histogram_names_) {
    snap.histograms.emplace(name, h->Snapshot());
  }
  return snap;
}

#endif  // MM_TELEMETRY_ENABLED

MetricsRegistry& MetricsRegistry::Dummy() {
  static MetricsRegistry dummy;
  return dummy;
}

}  // namespace mm::telemetry
