#include "mm/telemetry/critpath.h"

#include <algorithm>
#include <map>

namespace mm::telemetry {

namespace {

struct FlowAccum {
  const TraceEvent* origin = nullptr;  // flow_ph 's' or 'a'
  double task_us = 0.0;                // cat "task" member spans
  double device_us = 0.0;              // cat "stager" member spans
};

std::uint64_t ToNs(double us) {
  if (us <= 0.0) return 0;
  return static_cast<std::uint64_t>(us * 1000.0);
}

}  // namespace

CritpathBreakdown AnalyzeCritpath(const std::vector<TraceEvent>& events,
                                  double begin_us, double end_us) {
  CritpathBreakdown out;
  std::map<std::uint64_t, FlowAccum> flows;
  for (const TraceEvent& ev : events) {
    if (ev.ph != 'X') continue;
    const double ev_end = ev.ts_us + ev.dur_us;
    if (ev.flow_id != 0) {
      FlowAccum& acc = flows[ev.flow_id];
      if (ev.flow_ph == 's' || ev.flow_ph == 'a') {
        acc.origin = &ev;
      } else if (ev.cat == "task") {
        acc.task_us += ev.dur_us;
      } else if (ev.cat == "stager") {
        acc.device_us += ev.dur_us;
      }
      continue;
    }
    // Coherence work (invalidations the phase change waited on) runs
    // outside any flow; attribute it by its own end time.
    if (ev.cat == "coherence" && ev_end > begin_us && ev_end <= end_us) {
      out.coherence_ns += ToNs(ev.dur_us);
    }
    // Bare fault-cat spans (prefetch adoption waits, optimistic remote
    // copies) are caller stall that never enters a worker queue: pure
    // data-movement time.
    if (ev.cat == "fault" && ev_end > begin_us && ev_end <= end_us) {
      out.network_ns += ToNs(ev.dur_us);
    }
  }
  for (const auto& [id, acc] : flows) {
    // Only the accumulated spans matter; the flow id just keyed the map.
    (void)id;
    if (acc.origin == nullptr) continue;
    const double origin_end = acc.origin->ts_us + acc.origin->dur_us;
    if (!(origin_end > begin_us && origin_end <= end_us)) continue;
    if (acc.origin->flow_ph == 's') {
      // Sync origin: the requester stalled for exactly the origin span, so
      // the flow attributes exactly origin.dur — decomposed by the hops'
      // composition. A fan-out flow (flush) can carry more summed task
      // time than the caller's wall wait (the tasks overlap); scaling by
      // wait/task keeps attribution equal to the stall actually paid.
      const double wait = acc.origin->dur_us;
      const double network = std::max(0.0, wait - acc.task_us);
      const double budget = wait - network;  // = min(wait, task)
      const double scale = acc.task_us > 0.0 ? budget / acc.task_us : 0.0;
      // Device time can only overlap task time; clamp so a stray stager
      // span never drives queue-wait negative.
      const double device = std::min(acc.device_us, acc.task_us);
      out.network_ns += ToNs(network);
      out.device_ns += ToNs(device * scale);
      out.queue_wait_ns += ToNs((acc.task_us - device) * scale);
    } else if (acc.origin->cat == "msg") {
      // Message egress is the one async origin whose duration is real
      // caller stall (MPI_Send returns at egress completion).
      out.network_ns += ToNs(acc.origin->dur_us);
    }
    // Other async origins (write commits, async flushes) are background
    // work: their flows render in the trace but nobody stalled on them,
    // so they contribute nothing to the critical path.
  }
  return out;
}

}  // namespace mm::telemetry
