#include "mm/telemetry/report.h"

#include <algorithm>
#include <cinttypes>

#include "mm/util/logging.h"
#include "mm/util/stats.h"

namespace mm::telemetry {

namespace {

void AppendKey(std::string* out, const std::string& name, bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += name;
  *out += "\":";
}

std::uint64_t CounterOrZero(const MetricsSnapshot& snap,
                            const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// Critical-path epoch summary (DESIGN.md §11) built from this epoch's
/// mm.critpath.* counter deltas. Returns "" when the service recorded no
/// critpath data this epoch. `coverage` is the decomposition check gated
/// by ci/check_perf.py on bench/fig7: compute + stall is the exact wall
/// time by construction, so coverage == 1.0 when the attributed buckets
/// fit inside the measured stall, and anything above 1.0 is
/// over-attribution (the 5% acceptance bound allows rounding and
/// origin-span overlap at epoch edges).
std::string CritpathJson(const MetricsSnapshot& delta) {
  const std::uint64_t queue = CounterOrZero(delta, "mm.critpath.queue_wait_ns");
  const std::uint64_t net = CounterOrZero(delta, "mm.critpath.network_ns");
  const std::uint64_t dev = CounterOrZero(delta, "mm.critpath.device_ns");
  const std::uint64_t coh = CounterOrZero(delta, "mm.critpath.coherence_ns");
  const std::uint64_t compute = CounterOrZero(delta, "mm.critpath.compute_ns");
  const std::uint64_t stall = CounterOrZero(delta, "mm.critpath.stall_ns");
  const std::uint64_t attributed = queue + net + dev + coh;
  const std::uint64_t wall = compute + stall;
  if (wall == 0 && attributed == 0) return "";
  const std::uint64_t other = stall > attributed ? stall - attributed : 0;
  const double coverage =
      wall == 0 ? 1.0
                : static_cast<double>(compute + std::max(stall, attributed)) /
                      static_cast<double>(wall);
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                ",\"critpath\":{\"queue_wait_ns\":%" PRIu64
                ",\"network_ns\":%" PRIu64 ",\"device_ns\":%" PRIu64
                ",\"coherence_ns\":%" PRIu64 ",\"compute_ns\":%" PRIu64
                ",\"stall_ns\":%" PRIu64 ",\"other_stall_ns\":%" PRIu64
                ",\"wall_ns\":%" PRIu64 ",\"coverage\":%.6f}",
                queue, net, dev, coh, compute, stall, other, wall, coverage);
  return buf;
}

}  // namespace

std::string FormatReportTable(const ClusterSnapshot& snap, bool csv) {
  TablePrinter table({"metric", "kind", "value"});
  for (const auto& [name, v] : snap.totals.counters) {
    table.AddRow({name, "counter", std::to_string(v)});
  }
  for (const auto& [name, v] : snap.totals.gauges) {
    table.AddRow({name, "gauge", std::to_string(v)});
  }
  for (const auto& [name, h] : snap.totals.histograms) {
    table.AddRow({name, "histogram",
                  "n=" + std::to_string(h.count) +
                      " mean=" + FormatDouble(h.Mean(), 1)});
  }
  return table.Render(csv);
}

std::string SnapshotToJson(const MetricsSnapshot& snap) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    AppendKey(&out, name, &first);
    out += std::to_string(v);
  }
  for (const auto& [name, v] : snap.gauges) {
    AppendKey(&out, name, &first);
    out += std::to_string(v);
  }
  for (const auto& [name, h] : snap.histograms) {
    AppendKey(&out, name, &first);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "{\"count\":%" PRIu64 ",\"mean\":%.3f}",
                  h.count, h.Mean());
    out += buf;
  }
  out += "}";
  return out;
}

EpochReporter::EpochReporter(std::string path) {
  if (!path.empty()) {
    out_ = std::fopen(path.c_str(), "w");
    if (out_ == nullptr) {
      MM_WARN("telemetry") << "cannot open report file " << path;
    }
  }
}

EpochReporter::~EpochReporter() {
  MutexLock lock(mu_);
  if (out_ != nullptr) std::fclose(out_);
}

std::string EpochReporter::Epoch(const ClusterSnapshot& snap, double now_s) {
  MutexLock lock(mu_);
  // Delta the monotonic metrics against the previous epoch; gauges stay
  // absolute (they are levels, not totals).
  MetricsSnapshot delta = snap.totals;
  for (auto& [name, v] : delta.counters) {
    auto it = prev_.counters.find(name);
    if (it != prev_.counters.end()) v -= it->second;
  }
  for (auto& [name, h] : delta.histograms) {
    auto it = prev_.histograms.find(name);
    if (it == prev_.histograms.end()) continue;
    const HistogramSnapshot& old = it->second;
    if (old.buckets.size() == h.buckets.size()) {
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        h.buckets[i] -= old.buckets[i];
      }
    }
    h.count -= old.count;
    h.sum -= old.sum;
  }
  prev_ = snap.totals;

  char head[96];
  std::snprintf(head, sizeof(head), "{\"epoch\":%d,\"t_s\":%.6f,\"metrics\":",
                epoch_, now_s);
  ++epoch_;
  std::string line = head + SnapshotToJson(delta);
  line += CritpathJson(delta);
  line += "}\n";
  if (out_ != nullptr) {
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fflush(out_);
  }
  return line;
}

int EpochReporter::epochs() const {
  MutexLock lock(mu_);
  return epoch_;
}

}  // namespace mm::telemetry
