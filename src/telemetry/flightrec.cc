#include "mm/telemetry/flightrec.h"

#include <cinttypes>
#include <cstdio>

#include "mm/telemetry/report.h"

namespace mm::telemetry {

namespace {

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendSpan(std::string* out, const TraceEvent& ev) {
  char buf[192];
  *out += "{\"name\":\"";
  AppendEscaped(out, ev.name);
  *out += "\",\"cat\":\"";
  AppendEscaped(out, ev.cat);
  std::snprintf(buf, sizeof(buf),
                "\",\"ts_us\":%.3f,\"dur_us\":%.3f,\"pid\":%d,\"tid\":%d",
                ev.ts_us, ev.dur_us, ev.pid, ev.tid);
  *out += buf;
  if (ev.flow_id != 0) {
    std::snprintf(buf, sizeof(buf),
                  ",\"trace_id\":%" PRIu64 ",\"span_id\":%" PRIu64, ev.flow_id,
                  ev.span_id);
    *out += buf;
  }
  *out += "}";
}

}  // namespace

std::string FlightRecordJson(int rank, std::string_view reason, double now_s,
                             const TraceRecorder& trace,
                             const MetricsRegistry& metrics) {
  char buf[96];
  std::string out = "{\"rank\":";
  out += std::to_string(rank);
  out += ",\"reason\":\"";
  AppendEscaped(&out, reason);
  std::snprintf(buf, sizeof(buf), "\",\"t_s\":%.6f,\"spans\":[", now_s);
  out += buf;
  const std::vector<TraceEvent> spans = trace.FlightSnapshot();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i != 0) out += ",\n";
    AppendSpan(&out, spans[i]);
  }
  out += "],\"metrics\":";
  out += SnapshotToJson(metrics.Snapshot());
  out += "}\n";
  return out;
}

Status WriteFlightRecord(const std::string& dir, int rank,
                         std::string_view reason, double now_s,
                         const TraceRecorder& trace,
                         const MetricsRegistry& metrics) {
  std::string json = FlightRecordJson(rank, reason, now_s, trace, metrics);
  std::string path = dir + "/flightrec_" + std::to_string(rank) + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return IoError("flightrec: cannot open " + path);
  }
  std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return IoError("flightrec: short write to " + path);
  }
  return Status::Ok();
}

}  // namespace mm::telemetry
