#include "mm/telemetry/trace.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace mm::telemetry {

#if MM_TELEMETRY_ENABLED

namespace {

/// Minimal JSON string escaping; event names/categories are internal
/// literals, but a stray quote must not corrupt the file.
void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// Companion flow event ('s'/'t'/'f') tying spans of one flow together.
/// Chrome matches flow events by (cat, id) and binds each to the slice
/// enclosing its timestamp on that pid/tid track; `bp:e` on the finish
/// step binds to the enclosing slice instead of the next one.
void AppendFlowEvent(std::string* out, const TraceEvent& ev, char ph,
                     double ts_us) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"%c\","
                "\"id\":%" PRIu64 ",\"ts\":%.3f,\"pid\":%d,\"tid\":%d%s}",
                ph, ev.flow_id, ts_us, ev.pid, ev.tid,
                ph == 'f' ? ",\"bp\":\"e\"" : "");
  *out += buf;
}

void AppendEvent(std::string* out, const TraceEvent& ev) {
  char buf[192];
  *out += "{\"name\":\"";
  AppendEscaped(out, ev.name);
  *out += "\",\"cat\":\"";
  AppendEscaped(out, ev.cat);
  *out += "\",\"ph\":\"";
  *out += ev.ph;
  if (ev.ph == 'X') {
    std::snprintf(buf, sizeof(buf),
                  "\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d",
                  ev.ts_us, ev.dur_us, ev.pid, ev.tid);
    *out += buf;
    if (ev.flow_id != 0) {
      std::snprintf(buf, sizeof(buf),
                    ",\"args\":{\"trace_id\":%" PRIu64 ",\"span_id\":%" PRIu64
                    "}",
                    ev.flow_id, ev.span_id);
      *out += buf;
    }
    *out += "}";
  } else {
    std::snprintf(buf, sizeof(buf),
                  "\",\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d}", ev.ts_us,
                  ev.pid, ev.tid);
    *out += buf;
  }
  // Flow companions. 's'/'a' open the flow at span start; 't'/'f' continue
  // it; 's' and 'f' additionally terminate it at span end (sync origins own
  // their whole flow; async flows are closed by their terminal hop).
  if (ev.flow_id != 0 && ev.flow_ph != 0) {
    if (ev.flow_ph == 's' || ev.flow_ph == 'a') {
      *out += ",\n";
      AppendFlowEvent(out, ev, 's', ev.ts_us);
    } else {
      *out += ",\n";
      AppendFlowEvent(out, ev, 't', ev.ts_us);
    }
    if (ev.flow_ph == 's' || ev.flow_ph == 'f') {
      *out += ",\n";
      AppendFlowEvent(out, ev, 'f', ev.ts_us + ev.dur_us);
    }
  }
}

/// Process-wide id source for trace and span ids. A relaxed counter, never
/// a wall clock or RNG (mm-verify MML104: virtual-clock determinism).
std::atomic<std::uint64_t> g_next_id{1};

std::uint64_t NextId() {
  return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

/// Ambient per-thread flow context installed by TraceContextScope.
thread_local TraceContext g_current_ctx;

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceRecorder::set_flight_capacity(std::size_t capacity) {
  MutexLock lock(mu_);
  flight_cap_ = capacity;
  flight_.clear();
  flight_head_ = 0;
  flight_on_.store(capacity > 0, std::memory_order_relaxed);
}

TraceContext TraceRecorder::NewContext(int node) {
  TraceContext ctx;
  // Node id in the high bits keeps ids readable in dumps; the counter in
  // the low bits guarantees process-wide uniqueness.
  ctx.trace_id = (static_cast<std::uint64_t>(node + 1) << 48) | NextId();
  ctx.parent_span = 0;
  return ctx;
}

void TraceRecorder::Complete(std::string_view name, std::string_view cat,
                             int node, int tid, double begin_s, double end_s) {
  if (!enabled() && !flight_on_.load(std::memory_order_relaxed)) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.ph = 'X';
  ev.ts_us = begin_s * 1e6;
  ev.dur_us = (end_s - begin_s) * 1e6;
  if (ev.dur_us < 0) ev.dur_us = 0;
  ev.pid = node;
  ev.tid = tid;
  Push(std::move(ev));
}

std::uint64_t TraceRecorder::CompleteFlow(std::string_view name,
                                          std::string_view cat, int node,
                                          int tid, double begin_s, double end_s,
                                          const TraceContext& ctx,
                                          char flow_ph) {
  if (!ctx.valid()) {
    Complete(name, cat, node, tid, begin_s, end_s);
    return 0;
  }
  if (!enabled() && !flight_on_.load(std::memory_order_relaxed)) return 0;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.ph = 'X';
  ev.ts_us = begin_s * 1e6;
  ev.dur_us = (end_s - begin_s) * 1e6;
  if (ev.dur_us < 0) ev.dur_us = 0;
  ev.pid = node;
  ev.tid = tid;
  ev.flow_id = ctx.trace_id;
  ev.span_id = NextId();
  ev.flow_ph = flow_ph;
  std::uint64_t span = ev.span_id;
  Push(std::move(ev));
  return span;
}

void TraceRecorder::Instant(std::string_view name, std::string_view cat,
                            int node, int tid, double t_s) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.ph = 'i';
  ev.ts_us = t_s * 1e6;
  ev.pid = node;
  ev.tid = tid;
  Push(std::move(ev));
}

void TraceRecorder::Push(TraceEvent ev) {
  MutexLock lock(mu_);
  if (flight_cap_ > 0 && ev.ph == 'X') {
    if (flight_.size() < flight_cap_) {
      flight_.push_back(ev);
    } else {
      flight_[flight_head_] = ev;
      flight_head_ = (flight_head_ + 1) % flight_cap_;
    }
  }
  if (!enabled()) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head.
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::FlightSnapshot() const {
  MutexLock lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(flight_.size());
  for (std::size_t i = 0; i < flight_.size(); ++i) {
    out.push_back(flight_[(flight_head_ + i) % flight_.size()]);
  }
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

std::size_t TraceRecorder::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

std::string TraceRecorder::ToJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) out += ",\n";
    AppendEvent(&out, events[i]);
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return IoError("trace: cannot open " + path);
  }
  std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return IoError("trace: short write to " + path);
  }
  return Status::Ok();
}

TraceContextScope::TraceContextScope(const TraceContext& ctx)
    : saved_(g_current_ctx) {
  g_current_ctx = ctx;
}

TraceContextScope::~TraceContextScope() { g_current_ctx = saved_; }

TraceContext CurrentTraceContext() { return g_current_ctx; }

#endif  // MM_TELEMETRY_ENABLED

TraceRecorder& TraceRecorder::Dummy() {
  static TraceRecorder dummy(1);
  return dummy;
}

}  // namespace mm::telemetry
