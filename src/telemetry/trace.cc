#include "mm/telemetry/trace.h"

#include <cstdio>
#include <sstream>

namespace mm::telemetry {

#if MM_TELEMETRY_ENABLED

namespace {

/// Minimal JSON string escaping; event names/categories are internal
/// literals, but a stray quote must not corrupt the file.
void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendEvent(std::string* out, const TraceEvent& ev) {
  char buf[160];
  *out += "{\"name\":\"";
  AppendEscaped(out, ev.name);
  *out += "\",\"cat\":\"";
  AppendEscaped(out, ev.cat);
  *out += "\",\"ph\":\"";
  *out += ev.ph;
  if (ev.ph == 'X') {
    std::snprintf(buf, sizeof(buf),
                  "\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d}",
                  ev.ts_us, ev.dur_us, ev.pid, ev.tid);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "\",\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d}", ev.ts_us,
                  ev.pid, ev.tid);
  }
  *out += buf;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceRecorder::Complete(std::string_view name, std::string_view cat,
                             int node, int tid, double begin_s, double end_s) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.ph = 'X';
  ev.ts_us = begin_s * 1e6;
  ev.dur_us = (end_s - begin_s) * 1e6;
  if (ev.dur_us < 0) ev.dur_us = 0;
  ev.pid = node;
  ev.tid = tid;
  Push(std::move(ev));
}

void TraceRecorder::Instant(std::string_view name, std::string_view cat,
                            int node, int tid, double t_s) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.ph = 'i';
  ev.ts_us = t_s * 1e6;
  ev.pid = node;
  ev.tid = tid;
  Push(std::move(ev));
}

void TraceRecorder::Push(TraceEvent ev) {
  MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head.
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

std::size_t TraceRecorder::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

std::string TraceRecorder::ToJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) out += ",\n";
    AppendEvent(&out, events[i]);
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return IoError("trace: cannot open " + path);
  }
  std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return IoError("trace: short write to " + path);
  }
  return Status::Ok();
}

#endif  // MM_TELEMETRY_ENABLED

TraceRecorder& TraceRecorder::Dummy() {
  static TraceRecorder dummy(1);
  return dummy;
}

}  // namespace mm::telemetry
