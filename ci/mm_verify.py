#!/usr/bin/env python3
"""mm_verify: whole-program concurrency analysis for the MegaMmap runtime.

Where ci/mm_lint.py is a line-oriented regex lint, mm_verify builds a
structural model of the whole tree — classes, mutex fields, guarded fields,
function bodies, lock-acquisition scopes, and a call graph — and checks
cross-function properties no per-line tool can see:

  MML101  Lock-order / deadlock. Every nested `mm::MutexLock` acquisition
          pair (resolved to `Class::field` identity, following callees to a
          bounded depth) becomes an edge in a global lock graph. Any cycle
          is reported as a potential deadlock with both witness paths, and
          every observed edge must be declared with `MM_ACQUIRED_BEFORE` /
          `MM_ACQUIRED_AFTER` on the mutex field so the hierarchy is an
          explicit contract (DESIGN.md §10). Utility leaf locks (never
          acquire anything nested) may instead carry a
          `mm-verify: leaf-lock(<reason>)` comment: edges INTO a leaf are
          exempt from the declaration requirement but still cycle-checked.
          The observed+declared graph is emitted as Graphviz DOT
          (build/lock_hierarchy.dot).
  MML102  Guarded-field escape. A pointer/reference to an `MM_GUARDED_BY`
          field that leaves its lock scope: returned (`return &field;` or
          by-reference return), stored into a longer-lived object
          (`obj->p = &field;`), or captured by reference in a lambda handed
          to a deferred-execution sink (Submit/Push/Post/...).
  MML103  Seqlock discipline (AST-grade MML009). Frame-byte writes
          (`OptimisticGuard::StoreBytes`, `frame->bytes.store`,
          `memcpy(frame->data...)`) must sit lexically inside a
          `FrameWriteGuard` section, and data copied out through an
          `OptimisticGuard` must not be dereferenced on the
          `Validate()`-failed path before the retry. The seqlock
          implementation itself (core/pcache, core/optimistic_guard) is
          exempt.
  MML104  Determinism. Wall clocks (`std::chrono::{system,steady,
          high_resolution}_clock`), `time()`, `rand()`/`srand()` and
          `std::random_device` are banned in src/ and include/mm/ outside
          sim/ — bit-identical fault replay depends on every timestamp and
          random draw flowing through the virtual clock (DESIGN.md §4).
          Benchmarks that measure real elapsed time are allowlisted.
  MML002  (AST edition) PagePool Acquire/AcquireZeroed whose result
          variable is neither guarded by a PoolReturn, std::move'd,
          Release'd, returned, stored into an outgoing object, nor handed
          to a callee that takes the buffer by value. Per-variable dataflow
          instead of mm_lint's per-function token scan.
  MML003  (AST edition) PCache Pin/Unpin balance tallied per enclosing
          *class* across the whole model (mm_lint counts per file), so a
          Pin in a header and its Unpin in the matching .cc still balance.

Frontends: the model can be built by two interchangeable frontends.
  - `libclang` parses the TUs listed in the clang-tidy lane's
    compile_commands.json via `clang.cindex` (precise receiver types and
    callee resolution). Used in the mm-verify CI lane.
  - `textual` is a dependency-free structural parser (brace trees,
    namespace/class scopes, field tables, receiver-type resolution) that
    always works. It is the fallback whenever `clang.cindex` or the
    compilation database is unavailable (a warning is printed), so every
    rule stays active on any machine.
Lock-hierarchy *annotations* are always read textually: MM_ACQUIRED_BEFORE
expands to nothing at compile time (see thread_annotations.h), so the
source text is the contract of record.

Suppression: `mm-verify: allow(MMLnnn <reason>)` — or the mm_lint spelling
`mm-lint: allow(...)` — in a comment on the offending line or the line
above. Suppressions without a reason are findings.

Usage: python3 ci/mm_verify.py [--root DIR] [-p BUILD_DIR]
           [--frontend auto|textual|libclang] [--dot PATH|-]
           [--call-depth N] [files...]
Exit status is the number of findings (0 == clean).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field as dc_field

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from mm_lint import Finding, strip_comments_and_strings  # noqa: E402

SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp")
MODEL_DIRS = ("include", "src")          # structural model (MML101/102/002/003)
LEXICAL_DIRS = ("include", "src", "bench", "apps", "examples")  # MML104

ALLOW_RE = re.compile(r"mm-(?:lint|verify):\s*allow\(\s*(MML\d{3})\b([^)]*)\)")
LEAF_RE = re.compile(r"mm-verify:\s*leaf-lock\(([^)]*)\)")

# MML104 ---------------------------------------------------------------------
WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)\b")
RAND_RE = re.compile(r"(?<![\w:])(?:std::)?(s?rand)\s*\(")
TIME_RE = re.compile(r"(?<![\w:])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|&|\))")
RANDOM_DEVICE_RE = re.compile(r"std::random_device\b")
# Benchmarks that intentionally measure real elapsed wall time.
MML104_BENCH_ALLOWLIST = (
    "bench/hotpath.cc",
    "bench/readpath.cc",
    "bench/micro_access_overhead.cc",
    "bench/ycsb.cc",
)

# MML103 ---------------------------------------------------------------------
SEQLOCK_EXEMPT = ("core/pcache", "core/optimistic_guard")
STORE_BYTES_RE = re.compile(r"OptimisticGuard::StoreBytes\s*\(")
BYTES_STORE_RE = re.compile(r"\b(\w+)\s*(?:->|\.)\s*bytes\s*\.\s*store\s*\(")
FRAME_MEMCPY_RE = re.compile(
    r"(?:std::)?memcpy\s*\(\s*(\w*[Ff]rame\w*)\s*(?:->|\.)\s*data\b")
VALIDATE_FAIL_RE = re.compile(r"if\s*\(\s*!\s*(\w+)\s*\.\s*Validate\s*\(\s*\)")
READBYTES_OUT_RE = re.compile(r"\.\s*ReadBytes\s*\([^;]*?&\s*(\w+)")

# MML102 ---------------------------------------------------------------------
DEFERRED_SINKS = ("Submit", "Push", "Post", "Enqueue", "Defer", "Schedule",
                  "Async", "Spawn", "thread")

# MML002 ---------------------------------------------------------------------
ACQUIRE_ASSIGN_RE = re.compile(
    r"(?:auto\s+|[\w:<>]+\s+)?(\w+)\s*=\s*"
    r"[\w.\->]*[Pp]ool[\w.\->]*(?:\.|->)\s*(Acquire(?:Zeroed)?)\s*\(")
MEMBER_ACQUIRE_RE = re.compile(
    r"[\w\]]+(?:\.|->)[\w.\->]*\s*=\s*"
    r"[\w.\->]*[Pp]ool[\w.\->]*(?:\.|->)\s*Acquire(?:Zeroed)?\s*\(")

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "case",
    "do", "else", "new", "delete", "break", "continue", "goto", "static",
    "const", "constexpr", "auto", "void", "bool", "int", "char", "float",
    "double", "true", "false", "nullptr", "this", "throw", "using",
    "namespace", "template", "typename", "class", "struct", "enum",
    "public", "private", "protected", "operator", "defined", "alignof",
    "decltype", "noexcept", "co_await", "co_return", "co_yield",
}

# Wrappers to unwrap when resolving an element/pointee class from a type.
UNWRAP_TEMPLATES = ("std::unique_ptr", "std::shared_ptr", "std::vector",
                    "std::deque", "std::optional", "std::atomic",
                    "unique_ptr", "shared_ptr", "vector", "deque",
                    "optional", "atomic")


# ---------------------------------------------------------------------------
# Model dataclasses
# ---------------------------------------------------------------------------

@dataclass
class MutexField:
    qual_class: str            # "mm::storage::BufferManager"
    name: str                  # "mu_"
    rel: str
    line: int
    leaf: bool = False
    leaf_reason: str = ""
    declared_before: list[str] = dc_field(default_factory=list)  # raw refs
    declared_after: list[str] = dc_field(default_factory=list)

    @property
    def lock_id(self) -> str:
        return f"{self.qual_class}::{self.name}"


@dataclass
class ClassInfo:
    qual: str                  # fully qualified
    name: str                  # simple
    rel: str
    open: int                  # offset of '{' in its file's code
    close: int
    fields: dict[str, str] = dc_field(default_factory=dict)   # name -> type
    mutexes: dict[str, MutexField] = dc_field(default_factory=dict)
    guarded: dict[str, str] = dc_field(default_factory=dict)  # field -> mutex
    method_returns: dict[str, str] = dc_field(default_factory=dict)


@dataclass
class LockEvent:
    kind: str                  # "mutex" | "frame"
    var: str                   # RAII variable name
    expr: str                  # constructor argument text
    lock_id: str               # resolved id, "local:..." or "?:<expr>"
    resolved: bool
    pos: int                   # offset of the declaration in file code
    end: int                   # end of lock scope (trimmed at var.Unlock())
    line: int


@dataclass
class CallEvent:
    name: str                  # callee method name
    recv_class: str            # resolved receiver class ("" = same class)
    pos: int
    line: int


@dataclass
class FunctionInfo:
    qualname: str              # "mm::core::Service::PageFault"
    cls: str                   # enclosing qualified class or ""
    rel: str
    header: str                # declarator text before '('
    ret: str                   # return-type text (best effort)
    open: int                  # offset of body '{'
    close: int                 # offset just past body '}'
    params: dict[str, str] = dc_field(default_factory=dict)
    locals: dict[str, str] = dc_field(default_factory=dict)
    lock_events: list[LockEvent] = dc_field(default_factory=list)
    calls: list[CallEvent] = dc_field(default_factory=list)


class SourceFile:
    """One parsed file: original text, comment-stripped code, suppressions,
    leaf-lock markers, and a brace map."""

    def __init__(self, rel: str, text: str):
        self.rel = rel.replace(os.sep, "/")
        self.text = text
        self.code = strip_comments_and_strings(text)
        self.lines = text.split("\n")
        self.code_lines = self.code.split("\n")
        self.suppressions: dict[int, set[str]] = {}
        self.bad_suppressions: list[Finding] = []
        self.leaf_marks: dict[int, str] = {}   # line -> reason
        for idx, line in enumerate(self.lines):
            for m in ALLOW_RE.finditer(line):
                rule, reason = m.group(1), m.group(2).strip()
                if not reason:
                    self.bad_suppressions.append(Finding(
                        self.rel, idx + 1, rule,
                        "suppression without a reason "
                        "(use `mm-verify: allow(MMLnnn why)`)"))
                    continue
                self.suppressions.setdefault(idx + 1, set()).add(rule)
                self.suppressions.setdefault(idx + 2, set()).add(rule)
            lm = LEAF_RE.search(line)
            if lm:
                # Marker covers its own line and the next (comment above).
                self.leaf_marks[idx + 1] = lm.group(1).strip()
                self.leaf_marks[idx + 2] = lm.group(1).strip()
        self._brace_pairs: list[tuple[int, int]] | None = None

    def suppressed(self, line: int, rule: str) -> bool:
        return rule in self.suppressions.get(line, set())

    def line_of(self, pos: int) -> int:
        return self.code.count("\n", 0, pos) + 1

    def brace_pairs(self) -> list[tuple[int, int]]:
        """All matched {...} pairs as (open, close) offsets, sorted by open.
        close is the offset of the '}' itself."""
        if self._brace_pairs is None:
            pairs: list[tuple[int, int]] = []
            stack: list[int] = []
            for i, c in enumerate(self.code):
                if c == "{":
                    stack.append(i)
                elif c == "}" and stack:
                    pairs.append((stack.pop(), i))
            pairs.sort()
            self._brace_pairs = pairs
        return self._brace_pairs

    def innermost_brace(self, pos: int,
                        within: tuple[int, int] | None = None
                        ) -> tuple[int, int] | None:
        best = None
        for o, c in self.brace_pairs():
            if o < pos <= c:
                if within is not None and not (within[0] <= o and
                                               c <= within[1]):
                    continue
                if best is None or o > best[0]:
                    best = (o, c)
        return best


class Model:
    def __init__(self) -> None:
        self.files: dict[str, SourceFile] = {}
        self.classes: dict[str, ClassInfo] = {}      # qual -> info
        self.by_simple: dict[str, list[str]] = {}    # simple -> [qual...]
        self.functions: dict[str, FunctionInfo] = {} # qualname -> info
        self.frontend = "textual"

    def class_by_name(self, name: str) -> ClassInfo | None:
        """Resolve a possibly-unqualified class name to a unique ClassInfo."""
        name = name.strip()
        if not name:
            return None
        if name in self.classes:
            return self.classes[name]
        # Suffix match: "TierStore" or "storage::TierStore".
        tail = name.split("::")[-1]
        cands = [q for q in self.by_simple.get(tail, [])
                 if q == name or q.endswith("::" + name)]
        if len(cands) == 1:
            return self.classes[cands[0]]
        return None

    def lock_field(self, ref: str, ctx_class: str = "") -> MutexField | None:
        """Resolve a lock reference like `mu_`, `TierStore::mu_` or
        `mm::util::BlockingQueue::mu_` (optionally relative to ctx_class)."""
        ref = ref.strip()
        if "::" in ref:
            cls_part, _, fld = ref.rpartition("::")
            ci = self.class_by_name(cls_part)
            if ci is not None:
                return ci.mutexes.get(fld)
            return None
        ci = self.classes.get(ctx_class)
        if ci is not None:
            return ci.mutexes.get(ref)
        return None

    def all_mutexes(self) -> list[MutexField]:
        out = []
        for ci in self.classes.values():
            out.extend(ci.mutexes.values())
        return out


# ---------------------------------------------------------------------------
# Type-text helpers
# ---------------------------------------------------------------------------

def base_type(type_text: str) -> str:
    """`std::vector<std::unique_ptr<TierStore>>&` -> `TierStore` (unwraps
    known wrappers); `VectorMeta*` -> `VectorMeta`."""
    t = type_text.strip()
    for kw in ("const", "mutable", "static", "inline", "constexpr",
               "volatile", "typename"):
        t = re.sub(r"\b" + kw + r"\b", " ", t)
    t = t.strip().rstrip("&*").strip()
    # Unwrap known single-argument wrappers (outermost first).
    for _ in range(4):
        m = re.match(r"([\w:]+)\s*<(.*)>\s*$", t)
        if not m:
            break
        outer, inner = m.group(1), m.group(2)
        if outer not in UNWRAP_TEMPLATES:
            # Template with no user-class element semantics (map/pair/...):
            # keep the outer name so resolution cleanly fails.
            return outer
        # First top-level template argument.
        depth = 0
        cut = len(inner)
        for i, c in enumerate(inner):
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
            elif c == "," and depth == 0:
                cut = i
                break
        t = inner[:cut].strip().rstrip("&*").strip()
    m = re.search(r"([\w:]+)\s*$", t)
    return m.group(1) if m else t


def split_top_commas(s: str) -> list[str]:
    parts, depth, start = [], 0, 0
    for i, c in enumerate(s):
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        elif c == "," and depth == 0:
            parts.append(s[start:i])
            start = i + 1
    parts.append(s[start:])
    return [p.strip() for p in parts if p.strip()]


# ---------------------------------------------------------------------------
# Pass 1: declarations (namespaces, classes, fields, annotations)
# ---------------------------------------------------------------------------

NAMESPACE_RE = re.compile(r"\bnamespace\s+([\w:]*)\s*\{")
CLASS_RE = re.compile(
    r"(?<![\w:])(class|struct)\s+(?:MM_\w+(?:\s*\([^()]*\))?\s*)?(\w+)"
    r"(?:\s+final)?(?:\s*:\s*[^;{]*)?\s*\{")
ANNOT_RE = re.compile(
    r"\b(MM_GUARDED_BY|MM_PT_GUARDED_BY|MM_ACQUIRED_BEFORE|"
    r"MM_ACQUIRED_AFTER)\s*\(([^()]*)\)")
METHOD_DECL_RE = re.compile(
    r"^\s*(?:virtual\s+|static\s+|inline\s+|constexpr\s+|explicit\s+)*"
    r"([\w:]+(?:\s*<[^;{}]*>)?\s*[&\*]?)\s+(\w+)\s*\($")


def collect_scopes(sf: SourceFile) -> list[tuple[str, str, int, int]]:
    """Returns [(kind, name, open, close)] for namespace/class/struct scopes,
    sorted by open offset."""
    scopes: list[tuple[str, str, int, int]] = []
    pair_by_open = dict(sf.brace_pairs())
    for m in NAMESPACE_RE.finditer(sf.code):
        o = m.end() - 1
        c = pair_by_open.get(o)
        if c is not None:
            scopes.append(("namespace", m.group(1), o, c))
    for m in CLASS_RE.finditer(sf.code):
        # Exclude `enum class X {`.
        before = sf.code[max(0, m.start() - 8):m.start()]
        if re.search(r"\benum\s*$", before):
            continue
        o = m.end() - 1
        c = pair_by_open.get(o)
        if c is not None:
            scopes.append(("class", m.group(2), o, c))
    scopes.sort(key=lambda s: s[2])
    return scopes


def qual_at(scopes: list[tuple[str, str, int, int]], pos: int,
            classes_only: bool = False) -> str:
    parts = []
    for kind, name, o, c in scopes:
        if o < pos <= c and name:
            if classes_only and kind != "class":
                continue
            parts.append(name)
    return "::".join(parts)


def parse_declarations(model: Model, sf: SourceFile) -> None:
    scopes = collect_scopes(sf)
    for kind, name, o, c in scopes:
        if kind != "class":
            continue
        qual = qual_at(scopes, o, classes_only=False)
        qual = f"{qual}::{name}" if qual else name
        ci = model.classes.get(qual)
        if ci is None:
            ci = ClassInfo(qual=qual, name=name, rel=sf.rel, open=o, close=c)
            model.classes[qual] = ci
            model.by_simple.setdefault(name, []).append(qual)
        _parse_class_body(model, sf, ci, scopes)


def _parse_class_body(model: Model, sf: SourceFile, ci: ClassInfo,
                      scopes: list[tuple[str, str, int, int]]) -> None:
    """Walk the class body at its own depth, splitting statements at `;`
    and skipping nested braces (methods, nested classes, initializers)."""
    code = sf.code
    i = ci.open + 1
    stmt_start = i
    nested = [(o, c) for k, n, o, c in scopes
              if k == "class" and ci.open < o and c < ci.close]
    pair_by_open = dict(sf.brace_pairs())
    while i < ci.close:
        ch = code[i]
        if ch == "{":
            header = code[stmt_start:i]
            _classify_member(model, sf, ci, header, stmt_start)
            close = pair_by_open.get(i, ci.close)
            # Nested classes are parsed by their own ClassInfo pass; method
            # bodies are handled by the function pass. Either way, skip.
            i = close + 1
            if i < ci.close and code[i] == ";":
                i += 1
            stmt_start = i
            continue
        if ch == ";":
            stmt = code[stmt_start:i]
            _classify_member(model, sf, ci, stmt, stmt_start)
            i += 1
            stmt_start = i
            continue
        i += 1
    _ = nested


def _classify_member(model: Model, sf: SourceFile, ci: ClassInfo,
                     stmt: str, stmt_pos: int) -> None:
    # Strip access specifiers and macros that precede the declaration.
    s = re.sub(r"\b(?:public|private|protected)\s*:", " ", stmt)
    s = s.strip()
    if not s or s.startswith(("#", "friend", "using", "typedef", "template",
                              "enum")):
        return
    annots = list(ANNOT_RE.finditer(s))
    bare = ANNOT_RE.sub(" ", s)
    # Default member init tails.
    bare = re.sub(r"=\s*[^;]*$", " ", bare).strip()
    bare = re.sub(r"\{[^{}]*\}\s*$", " ", bare).strip()

    # Method declaration? Record reference/pointer accessor return classes
    # so `runtime(node).Submit(...)` chains resolve.
    mm = re.match(
        r"^(?:virtual\s+|static\s+|inline\s+|constexpr\s+|explicit\s+|"
        r"\[\[\w+\]\]\s*)*"
        r"([\w:]+(?:<[^;{}]*>)?\s*[&\*]?)\s+(\w+)\s*\(", bare)
    if "(" in bare:
        if mm and mm.group(2) not in KEYWORDS:
            ret = mm.group(1)
            ci.method_returns.setdefault(mm.group(2), base_type(ret))
        return

    fm = re.match(r"^(?:mutable\s+|static\s+)*(.+?)\s+(\w+)\s*$", bare)
    if not fm:
        return
    type_text, fname = fm.group(1).strip(), fm.group(2)
    if type_text in KEYWORDS and type_text not in ("bool", "int", "char",
                                                   "float", "double", "auto",
                                                   "void"):
        return
    ci.fields[fname] = type_text
    line = sf.line_of(stmt_pos + stmt.find(stmt.strip()[:1] or " "))
    # Anchor on the declaration's last line (where the field name sits) so
    # leaf-lock markers/suppressions above multi-line decls still align.
    line = sf.line_of(stmt_pos) if line <= 0 else line
    decl_line = sf.line_of(stmt_pos + len(stmt.rstrip()) - 1)

    plain = re.sub(r"\b(?:mutable|static|const)\b", " ", type_text).strip()
    if plain in ("Mutex", "mm::Mutex", "util::Mutex", "mm::util::Mutex"):
        mf = MutexField(qual_class=ci.qual, name=fname, rel=sf.rel,
                        line=decl_line)
        reason = sf.leaf_marks.get(decl_line) or sf.leaf_marks.get(line)
        if reason is not None:
            mf.leaf, mf.leaf_reason = True, reason
        for a in annots:
            refs = split_top_commas(a.group(2))
            if a.group(1) == "MM_ACQUIRED_BEFORE":
                mf.declared_before.extend(refs)
            elif a.group(1) == "MM_ACQUIRED_AFTER":
                mf.declared_after.extend(refs)
        ci.mutexes[fname] = mf
        return

    for a in annots:
        if a.group(1) in ("MM_GUARDED_BY", "MM_PT_GUARDED_BY"):
            ci.guarded[fname] = a.group(2).strip()


# ---------------------------------------------------------------------------
# Pass 2 (textual frontend): function bodies
# ---------------------------------------------------------------------------

LOCK_DECL_RE = re.compile(
    r"\b(?:mm::)?(?:util::)?(MutexLock|FrameWriteGuard)\s+(\w+)\s*"
    r"[({]\s*([^;{}]*?)\s*[)}]\s*;")
LOCAL_DECL_RE = re.compile(
    r"(?:^|[;{}()]\s*)(?:const\s+)?([\w:]+(?:<[^;=(){}]*>)?)\s*([&\*]*)\s+"
    r"(\w+)\s*(?==|;|\{)")
RANGE_FOR_RE = re.compile(
    r"for\s*\(\s*(?:const\s+)?auto\s*[&\*]*\s+(\w+)\s*:\s*([\w.\->]+)\s*\)")
AUTO_DEREF_RE = re.compile(
    r"auto\s*([&\*]?)\s+(\w+)\s*=\s*(?:&|\*)?\s*([\w.\->]+?)\s*;")
RECV_CALL_RE = re.compile(r"\b(\w+)\s*(\.|->)\s*(\w+)\s*\(")
CHAIN_CALL_RE = re.compile(r"\b(\w+)\s*\(\s*[^()]*\)\s*\.\s*(\w+)\s*\(")
PLAIN_CALL_RE = re.compile(r"(?<![\w.>:])([A-Za-z_]\w*)\s*\(")


def find_function_bodies(sf: SourceFile,
                         scopes: list[tuple[str, str, int, int]]
                         ) -> list[tuple[str, int, int]]:
    """[(header_text, open, close)] for function definitions, skipping
    bodies nested inside an already-collected function (lambdas, local
    structs are analyzed as part of their enclosing function)."""
    out: list[tuple[str, int, int]] = []
    scope_braces = {o for _, _, o, _ in scopes}
    last_end = -1
    for o, c in sf.brace_pairs():
        if o <= last_end:
            continue
        if o in scope_braces:
            continue
        header_start = max(sf.code.rfind(";", 0, o), sf.code.rfind("{", 0, o),
                           sf.code.rfind("}", 0, o)) + 1
        header = sf.code[header_start:o].strip()
        if not _function_header(header):
            continue
        out.append((header, o, c))
        last_end = c
    return out


def _function_header(header: str) -> bool:
    h = header.rstrip()
    if not h:
        return False
    for _ in range(8):
        h = re.sub(r"(?:const|noexcept|override|final)\s*$", "", h).rstrip()
        h = re.sub(r"->\s*[\w:<>&\*\s]+$", "", h).rstrip()
        m = re.search(r"(?:MM_\w+|__attribute__)\s*\([^()]*\)\s*$", h)
        if m:
            h = h[:m.start()].rstrip()
        elif h.endswith("MM_NO_THREAD_SAFETY_ANALYSIS"):
            h = h[:-len("MM_NO_THREAD_SAFETY_ANALYSIS")].rstrip()
        else:
            break
    if h.endswith(":") or not h.endswith(")"):
        # Constructor initializer lists (`: field_(x)`) end with ')' too but
        # the ctor header before ':' still parses; a bare trailing ':' means
        # we grabbed only part of the initializer list — reject.
        if not h.endswith(")"):
            return False
    depth = 0
    for i in range(len(h) - 1, -1, -1):
        ch = h[i]
        if ch == ")":
            depth += 1
        elif ch == "(":
            depth -= 1
            if depth == 0:
                before = h[:i].rstrip()
                kw = re.search(r"([\w\]]+)\s*$", before)
                if kw is None:
                    return False  # lambda: `[...](` has no declarator name
                word = kw.group(1)
                if word in ("if", "for", "while", "switch", "catch",
                            "return") or word.endswith("]"):
                    return False
                return True
    return False


def _split_header(header: str) -> tuple[str, str, str]:
    """-> (ret_and_name, name, params_text). Handles `Class::Method`,
    constructor-initializer tails, and operator names."""
    h = header
    # Cut a constructor initializer list: `Ctor(args) : a_(x), b_(y)`.
    # Find the top-level '(' matching the FIRST declarator parens.
    m = re.search(r"((?:[\w~]+\s*::\s*)*(?:operator\s*[^\s(]+|[\w~]+))\s*\(",
                  h)
    if not m:
        return h, "", ""
    name = re.sub(r"\s+", "", m.group(1))
    # Matching close paren for the declarator.
    depth, i = 0, m.end() - 1
    while i < len(h):
        if h[i] == "(":
            depth += 1
        elif h[i] == ")":
            depth -= 1
            if depth == 0:
                break
        i += 1
    params = h[m.end():i] if i < len(h) else ""
    ret = h[:m.start()].strip()
    return ret, name, params


def parse_functions_textual(model: Model, sf: SourceFile) -> None:
    scopes = collect_scopes(sf)
    for header, o, c in find_function_bodies(sf, scopes):
        ret, name, params_text = _split_header(header)
        if not name:
            continue
        simple = name.split("::")[-1]
        cls_qual = ""
        if "::" in name:
            prefix = name.rpartition("::")[0]
            ns = qual_at(scopes, o)
            ci = (model.class_by_name(f"{ns}::{prefix}" if ns else prefix)
                  or model.class_by_name(prefix))
            cls_qual = ci.qual if ci else prefix
        else:
            enclosing = qual_at(scopes, o)
            if enclosing and model.classes.get(enclosing):
                cls_qual = enclosing
            else:
                # Free function inside namespaces only.
                cls_qual = ""
                ns_cls = qual_at(scopes, o, classes_only=True)
                if ns_cls:
                    ci = model.class_by_name(ns_cls)
                    cls_qual = ci.qual if ci else ""
        qualname = f"{cls_qual}::{simple}" if cls_qual else (
            f"{qual_at(scopes, o)}::{simple}" if qual_at(scopes, o)
            else simple)
        fi = FunctionInfo(qualname=qualname, cls=cls_qual, rel=sf.rel,
                          header=header, ret=ret, open=o, close=c + 1)
        for p in split_top_commas(params_text):
            pm = re.match(r"(.+?)\s*[&\*]*\s*(\w+)\s*(?:=.*)?$", p)
            if pm and pm.group(2) not in KEYWORDS:
                fi.params[pm.group(2)] = base_type(pm.group(1))
        _parse_body(model, sf, fi)
        # Header-inline definitions may be seen once; .cc definitions of the
        # same method override a header stub (rare), last writer wins.
        model.functions[qualname] = fi


def _parse_body(model: Model, sf: SourceFile, fi: FunctionInfo) -> None:
    body = sf.code[fi.open + 1:fi.close - 1]
    base = fi.open + 1
    ci = model.classes.get(fi.cls)

    # Locals --------------------------------------------------------------
    for m in LOCAL_DECL_RE.finditer(body):
        t, name = m.group(1), m.group(3)
        if t in KEYWORDS or name in KEYWORDS or t == "auto":
            continue
        fi.locals.setdefault(name, base_type(t))
    for m in RANGE_FOR_RE.finditer(body):
        var, container = m.group(1), m.group(2)
        cont_type = _expr_type(model, fi, ci, container)
        if cont_type:
            fi.locals[var] = cont_type
    for m in AUTO_DEREF_RE.finditer(body):
        var, rhs = m.group(2), m.group(3)
        if var in fi.locals:
            continue
        t = _expr_type(model, fi, ci, rhs)
        if t:
            fi.locals[var] = t

    # Lock events ---------------------------------------------------------
    for m in LOCK_DECL_RE.finditer(body):
        kind = "mutex" if m.group(1) == "MutexLock" else "frame"
        var, expr = m.group(2), m.group(3)
        pos = base + m.start()
        scope = sf.innermost_brace(pos, (fi.open, fi.close - 1))
        end = scope[1] if scope else fi.close - 1
        un = re.search(r"\b" + re.escape(var) + r"\s*\.\s*Unlock\s*\(",
                       sf.code[pos:end])
        if un:
            end = pos + un.start()
        lock_id, resolved = _resolve_lock_expr(model, fi, ci, expr)
        fi.lock_events.append(LockEvent(
            kind=kind, var=var, expr=expr, lock_id=lock_id,
            resolved=resolved, pos=pos, end=end, line=sf.line_of(pos)))

    # Call events ---------------------------------------------------------
    seen: set[int] = set()
    for m in RECV_CALL_RE.finditer(body):
        recv, callee = m.group(1), m.group(3)
        if callee in KEYWORDS or recv in KEYWORDS:
            continue
        t = _expr_type(model, fi, ci, recv)
        pos = base + m.start(3)
        seen.add(pos)
        fi.calls.append(CallEvent(name=callee, recv_class=t or "?",
                                  pos=pos, line=sf.line_of(pos)))
    for m in CHAIN_CALL_RE.finditer(body):
        accessor, callee = m.group(1), m.group(2)
        if callee in KEYWORDS or accessor in KEYWORDS:
            continue
        t = ""
        if ci is not None:
            t = ci.method_returns.get(accessor, "")
        pos = base + m.start(2)
        seen.add(pos)
        fi.calls.append(CallEvent(name=callee, recv_class=t or "?",
                                  pos=pos, line=sf.line_of(pos)))
    for m in PLAIN_CALL_RE.finditer(body):
        callee = m.group(1)
        pos = base + m.start(1)
        if pos in seen or callee in KEYWORDS or callee.startswith("MM_"):
            continue
        if callee.isupper() or not fi.cls:
            continue
        fi.calls.append(CallEvent(name=callee, recv_class=fi.cls,
                                  pos=pos, line=sf.line_of(pos)))


def _expr_type(model: Model, fi: FunctionInfo, ci: ClassInfo | None,
               expr: str) -> str:
    """Best-effort class name for a receiver expression: a local, a param,
    a member field, a one-step member chain, or *deref of those."""
    e = expr.strip().lstrip("*&").strip()
    if not e:
        return ""
    if e == "this":
        return fi.cls
    if re.fullmatch(r"\w+", e):
        for table in (fi.locals, fi.params):
            if e in table:
                return table[e]
        if ci is not None and e in ci.fields:
            return base_type(ci.fields[e])
        if ci is not None and e in ci.method_returns:
            return ci.method_returns[e]
        return ""
    # One member step: `meta.stager`, `it->second`, `shard.mu` receivers.
    m = re.fullmatch(r"([\w.\->]+?)(?:\.|->)(\w+)", e)
    if m:
        owner = _expr_type(model, fi, ci, m.group(1))
        oc = model.class_by_name(owner) if owner else None
        if oc is not None and m.group(2) in oc.fields:
            return base_type(oc.fields[m.group(2)])
        if oc is not None and m.group(2) in oc.method_returns:
            return oc.method_returns[m.group(2)]
    # Accessor call: `runtime(node)` / `tier(i)`.
    m = re.fullmatch(r"(\w+)\s*\([^()]*\)", e)
    if m and ci is not None:
        return ci.method_returns.get(m.group(1), "")
    return ""


def _resolve_lock_expr(model: Model, fi: FunctionInfo, ci: ClassInfo | None,
                       expr: str) -> tuple[str, bool]:
    e = expr.strip().lstrip("*&").strip()
    if re.fullmatch(r"\w+", e):
        if ci is not None and e in ci.mutexes:
            return ci.mutexes[e].lock_id, True
        t = fi.locals.get(e) or fi.params.get(e)
        if t in ("Mutex", "mm::Mutex", "util::Mutex", "mm::util::Mutex"):
            return f"local:{fi.qualname}::{e}", True
        if t:  # a Mutex& parameter typed as Mutex resolves above
            return f"?:{expr}", False
        return f"?:{expr}", False
    m = re.fullmatch(r"([\w.\->()\[\]]+?)(?:\.|->)(\w+)", e)
    if m:
        owner = _expr_type(model, fi, ci, m.group(1))
        oc = model.class_by_name(owner) if owner else None
        if oc is not None and m.group(2) in oc.mutexes:
            return oc.mutexes[m.group(2)].lock_id, True
    return f"?:{expr}", False


# ---------------------------------------------------------------------------
# Optional libclang frontend (CI): precise bodies from compile_commands.json
# ---------------------------------------------------------------------------

def parse_functions_libclang(model: Model, root: str, build_dir: str,
                             warn) -> bool:
    """Re-parses function bodies through clang.cindex, overriding the
    textual FunctionInfo for every definition the AST can see. Returns
    False (caller keeps the textual bodies) if clang.cindex or the
    compilation database is unavailable; per-TU failures fall back to the
    textual parse of those files."""
    try:
        from clang import cindex  # type: ignore
    except Exception as e:  # pragma: no cover - environment dependent
        warn(f"clang.cindex unavailable ({e}); using the textual frontend")
        return False
    try:
        db = cindex.CompilationDatabase.fromDirectory(build_dir)
    except Exception as e:  # pragma: no cover
        warn(f"no compile_commands.json in {build_dir} ({e}); "
             "using the textual frontend")
        return False
    index = cindex.Index.create()
    parsed_rels: set[str] = set()
    ok_tus = 0
    for cmd in db.getAllCompileCommands():
        src = os.path.join(cmd.directory, cmd.filename)
        src = os.path.normpath(src)
        if not src.startswith(os.path.normpath(root) + os.sep):
            continue
        args = [a for a in list(cmd.arguments)[1:]
                if a not in ("-c", "-o", cmd.filename, src)]
        # Drop the "-o <file>" argument pair remnants.
        clean, skip = [], False
        for a in args:
            if skip:
                skip = False
                continue
            if a == "-o":
                skip = True
                continue
            clean.append(a)
        try:
            tu = index.parse(src, args=clean)
            if any(d.severity >= cindex.Diagnostic.Error
                   for d in tu.diagnostics):
                raise RuntimeError(next(
                    d.spelling for d in tu.diagnostics
                    if d.severity >= cindex.Diagnostic.Error))
            _walk_tu(model, root, tu, parsed_rels)
            ok_tus += 1
        except Exception as e:  # pragma: no cover
            warn(f"libclang failed on {cmd.filename} ({e}); "
                 "textual bodies kept for that TU")
    if ok_tus == 0:
        warn("libclang parsed no TUs; using the textual frontend")
        return False
    model.frontend = "libclang"
    return True


def _cursor_qualname(cur) -> tuple[str, str]:  # pragma: no cover - CI only
    parts, cls_parts = [], []
    p = cur.semantic_parent
    from clang import cindex  # type: ignore
    while p is not None and p.kind != cindex.CursorKind.TRANSLATION_UNIT:
        if p.spelling:
            parts.append(p.spelling)
            if p.kind in (cindex.CursorKind.CLASS_DECL,
                          cindex.CursorKind.STRUCT_DECL,
                          cindex.CursorKind.CLASS_TEMPLATE):
                cls_parts = list(parts)
        p = p.semantic_parent
    parts.reverse()
    cls_parts.reverse()
    qual = "::".join(parts + [cur.spelling])
    cls = "::".join(parts) if cls_parts else ""
    return qual, cls


def _walk_tu(model: Model, root: str, tu,
             parsed_rels: set[str]) -> None:  # pragma: no cover - CI only
    from clang import cindex  # type: ignore
    fn_kinds = (cindex.CursorKind.CXX_METHOD, cindex.CursorKind.FUNCTION_DECL,
                cindex.CursorKind.CONSTRUCTOR, cindex.CursorKind.DESTRUCTOR)

    def visit(cur):
        for child in cur.get_children():
            loc_file = child.location.file
            if loc_file is None:
                continue
            path = os.path.normpath(str(loc_file))
            if not path.startswith(os.path.normpath(root) + os.sep):
                continue
            if child.kind in fn_kinds and child.is_definition():
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                sf = model.files.get(rel)
                if sf is not None:
                    _lift_function(model, sf, child)
                continue
            visit(child)

    visit(tu.cursor)


def _lift_function(model: Model, sf: SourceFile,
                   cur) -> None:  # pragma: no cover - CI only
    from clang import cindex  # type: ignore
    qualname, cls = _cursor_qualname(cur)
    ext = cur.extent
    prev = model.functions.get(qualname)
    fi = FunctionInfo(
        qualname=qualname, cls=cls, rel=sf.rel,
        header=prev.header if prev else cur.displayname,
        ret=cur.result_type.spelling if cur.result_type else "",
        open=ext.start.offset, close=ext.end.offset)
    ci = model.classes.get(cls)

    def scope_end(c) -> int:
        p = c.semantic_parent
        return ext.end.offset if p is None else ext.end.offset

    def visit(c, compound_end: int):
        for ch in c.get_children():
            nxt_end = compound_end
            if ch.kind == cindex.CursorKind.COMPOUND_STMT:
                nxt_end = ch.extent.end.offset
            if ch.kind == cindex.CursorKind.VAR_DECL:
                ts = ch.type.spelling
                kind = ("mutex" if "MutexLock" in ts else
                        "frame" if "FrameWriteGuard" in ts else "")
                if kind:
                    pos = ch.extent.start.offset
                    expr = sf.code[pos:ch.extent.end.offset]
                    expr = expr[expr.find("(") + 1:expr.rfind(")")] \
                        if "(" in expr else ""
                    lock_id, resolved = _lock_id_from_decl(model, fi, ci,
                                                           ch, expr)
                    end = compound_end
                    un = re.search(
                        r"\b" + re.escape(ch.spelling) +
                        r"\s*\.\s*Unlock\s*\(", sf.code[pos:end])
                    if un:
                        end = pos + un.start()
                    fi.lock_events.append(LockEvent(
                        kind=kind, var=ch.spelling, expr=expr.strip(),
                        lock_id=lock_id, resolved=resolved, pos=pos,
                        end=end, line=sf.line_of(pos)))
            if ch.kind in (cindex.CursorKind.CALL_EXPR,):
                ref = ch.referenced
                if ref is not None and ref.spelling:
                    cq, ccls = _cursor_qualname(ref)
                    pos = ch.extent.start.offset
                    fi.calls.append(CallEvent(
                        name=ref.spelling, recv_class=ccls or "?",
                        pos=pos, line=sf.line_of(pos)))
            visit(ch, nxt_end)

    visit(cur, ext.end.offset)
    _ = scope_end
    model.functions[qualname] = fi


def _lock_id_from_decl(model: Model, fi: FunctionInfo, ci, cur,
                       expr: str):  # pragma: no cover - CI only
    from clang import cindex  # type: ignore
    stack = list(cur.get_children())
    while stack:
        c = stack.pop(0)
        if c.kind in (cindex.CursorKind.MEMBER_REF_EXPR,
                      cindex.CursorKind.DECL_REF_EXPR):
            ref = c.referenced
            if ref is not None and "Mutex" in ref.type.spelling:
                owner = ref.semantic_parent
                if owner is not None and owner.kind in (
                        cindex.CursorKind.CLASS_DECL,
                        cindex.CursorKind.STRUCT_DECL):
                    oq, _ = _cursor_qualname(ref)
                    return oq, True
                return f"local:{fi.qualname}::{ref.spelling}", True
        stack.extend(c.get_children())
    return _resolve_lock_expr(model, fi, ci, expr)


# ---------------------------------------------------------------------------
# Lock summaries: which locks does calling f acquire (transitively)?
# ---------------------------------------------------------------------------

def resolve_callee(model: Model, fi: FunctionInfo,
                   call: CallEvent) -> FunctionInfo | None:
    if call.recv_class and call.recv_class != "?":
        ci = model.class_by_name(call.recv_class)
        if ci is not None:
            return model.functions.get(f"{ci.qual}::{call.name}")
        cand = model.functions.get(f"{call.recv_class}::{call.name}")
        if cand is not None:
            return cand
    if call.recv_class == fi.cls and fi.cls:
        return model.functions.get(f"{fi.cls}::{call.name}")
    return None


def compute_summaries(model: Model, depth: int
                      ) -> dict[str, dict[str, tuple[str, int, str]]]:
    """qualname -> {lock_id: (rel, line, via)} where `via` describes the
    call chain that reaches the acquisition."""
    summaries: dict[str, dict[str, tuple[str, int, str]]] = {}
    for qn, fi in model.functions.items():
        direct: dict[str, tuple[str, int, str]] = {}
        for ev in fi.lock_events:
            if ev.kind == "mutex" and ev.resolved:
                direct.setdefault(ev.lock_id, (fi.rel, ev.line, ""))
        summaries[qn] = direct
    for _ in range(max(1, depth)):
        changed = False
        for qn, fi in model.functions.items():
            mine = summaries[qn]
            for call in fi.calls:
                callee = resolve_callee(model, fi, call)
                if callee is None or callee.qualname == qn:
                    continue
                for lock_id, (rel, line, via) in \
                        summaries[callee.qualname].items():
                    if lock_id not in mine:
                        chain = callee.qualname.split("::")[-1]
                        if via:
                            chain += " -> " + via
                        mine[lock_id] = (rel, line, chain)
                        changed = True
        if not changed:
            break
    return summaries


# ---------------------------------------------------------------------------
# MML101: lock-order graph, declaration coverage, cycles, DOT
# ---------------------------------------------------------------------------

@dataclass
class LockEdge:
    src: str
    dst: str
    rel: str
    line: int
    via: str      # "" for a lexically nested pair, else the call chain
    declared: bool = False


def observed_edges(model: Model, summaries) -> list[LockEdge]:
    edges: list[LockEdge] = []
    seen: set[tuple[str, str, str, int]] = set()
    for qn, fi in model.functions.items():
        mutex_events = [e for e in fi.lock_events if e.kind == "mutex"]
        for outer in mutex_events:
            if not outer.resolved:
                continue
            for inner in mutex_events:
                if inner is outer:
                    continue
                if outer.pos < inner.pos < outer.end and inner.resolved:
                    key = (outer.lock_id, inner.lock_id, fi.rel, inner.line)
                    if key not in seen:
                        seen.add(key)
                        edges.append(LockEdge(outer.lock_id, inner.lock_id,
                                              fi.rel, inner.line, ""))
            for call in fi.calls:
                if not (outer.pos < call.pos < outer.end):
                    continue
                callee = resolve_callee(model, fi, call)
                if callee is None or callee.qualname == qn:
                    continue
                for lock_id, (rel, line, via) in \
                        summaries[callee.qualname].items():
                    if lock_id == outer.lock_id:
                        # Re-acquisition through a callee is reported as a
                        # self-edge (a real deadlock with non-reentrant
                        # mm::Mutex).
                        pass
                    chain = callee.qualname.split("::")[-1]
                    if via:
                        chain += " -> " + via
                    key = (outer.lock_id, lock_id, fi.rel, call.line)
                    if key not in seen:
                        seen.add(key)
                        edges.append(LockEdge(outer.lock_id, lock_id,
                                              fi.rel, call.line, chain))
    return edges


def declared_edges(model: Model) -> tuple[list[LockEdge], list[Finding]]:
    edges: list[LockEdge] = []
    findings: list[Finding] = []
    for mf in model.all_mutexes():
        for ref in mf.declared_before:
            other = model.lock_field(ref, ctx_class=mf.qual_class)
            if other is None:
                findings.append(Finding(
                    mf.rel, mf.line, "MML101",
                    f"MM_ACQUIRED_BEFORE({ref}) on {mf.lock_id} names an "
                    "unknown mutex (use Class::field or a same-class "
                    "field name)"))
                continue
            edges.append(LockEdge(mf.lock_id, other.lock_id, mf.rel,
                                  mf.line, "", declared=True))
        for ref in mf.declared_after:
            other = model.lock_field(ref, ctx_class=mf.qual_class)
            if other is None:
                findings.append(Finding(
                    mf.rel, mf.line, "MML101",
                    f"MM_ACQUIRED_AFTER({ref}) on {mf.lock_id} names an "
                    "unknown mutex"))
                continue
            edges.append(LockEdge(other.lock_id, mf.lock_id, mf.rel,
                                  mf.line, "", declared=True))
    return edges, findings


def _find_cycles(adj: dict[str, set[str]]) -> list[list[str]]:
    """Simple cycles via SCC + per-SCC DFS; good enough for lock graphs."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        work = [(v, iter(sorted(adj.get(v, ()))))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(adj.get(w, ())))))
                    advanced = True
                    break
                elif w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)

    for v in sorted(adj):
        if v not in index:
            strongconnect(v)

    cycles: list[list[str]] = []
    for scc in sccs:
        members = set(scc)
        if len(scc) == 1:
            v = scc[0]
            if v in adj.get(v, ()):
                cycles.append([v, v])
            continue
        # One representative cycle per SCC: walk from the smallest node.
        start = min(scc)
        path = [start]
        seen_local = {start}
        node = start
        while True:
            nxts = [n for n in sorted(adj.get(node, ())) if n in members]
            if not nxts:
                break
            nxt = next((n for n in nxts if n == start), nxts[0])
            if nxt == start:
                path.append(start)
                cycles.append(path)
                break
            if nxt in seen_local:
                i = path.index(nxt)
                cycles.append(path[i:] + [nxt])
                break
            path.append(nxt)
            seen_local.add(nxt)
            node = nxt
    return cycles


def check_mml101(model: Model, summaries, dot_path: str | None,
                 verbose: bool = False) -> list[Finding]:
    findings: list[Finding] = []
    obs = observed_edges(model, summaries)
    decl, findings_decl = declared_edges(model)
    findings.extend(findings_decl)

    declared_pairs = {(e.src, e.dst) for e in decl}
    leaf_ids = {mf.lock_id: mf for mf in model.all_mutexes() if mf.leaf}

    for e in obs:
        sf = model.files.get(e.rel)
        if e.src == e.dst:
            msg = (f"{e.src} re-acquired while already held"
                   + (f" (via {e.via})" if e.via else "")
                   + " — mm::Mutex is non-reentrant; this self-deadlocks")
            if sf is None or not sf.suppressed(e.line, "MML101"):
                findings.append(Finding(e.rel, e.line, "MML101", msg))
            continue
        if e.dst.startswith("local:") or e.src.startswith("local:"):
            continue  # function-local mutexes have no global ordering
        if (e.src, e.dst) in declared_pairs:
            continue
        if e.dst in leaf_ids:
            continue  # leaf locks never nest further; declaration waived
        via = f" (via {e.via})" if e.via else ""
        if sf is None or not sf.suppressed(e.line, "MML101"):
            findings.append(Finding(
                e.rel, e.line, "MML101",
                f"nested acquisition {e.src} -> {e.dst}{via} is not "
                f"declared: add MM_ACQUIRED_BEFORE on {e.src} (or "
                f"MM_ACQUIRED_AFTER on {e.dst}) — the lock hierarchy is an "
                "explicit contract (DESIGN.md §10)"))

    # Cycle detection over observed + declared edges.
    adj: dict[str, set[str]] = {}
    witness: dict[tuple[str, str], LockEdge] = {}
    for e in obs + decl:
        if e.src.startswith(("local:", "?:")) or \
                e.dst.startswith(("local:", "?:")):
            continue
        if e.src == e.dst:
            continue  # self-edges reported above
        adj.setdefault(e.src, set()).add(e.dst)
        adj.setdefault(e.dst, set())
        witness.setdefault((e.src, e.dst), e)
    for cyc in _find_cycles(adj):
        legs = []
        for a, b in zip(cyc, cyc[1:]):
            w = witness.get((a, b))
            if w is None:
                legs.append(f"{a} -> {b}")
            elif w.declared:
                legs.append(f"{a} -> {b} (declared at {w.rel}:{w.line})")
            else:
                via = f" via {w.via}" if w.via else ""
                legs.append(f"{a} -> {b} (held at {w.rel}:{w.line}{via})")
        first = witness.get((cyc[0], cyc[1]))
        rel = first.rel if first else "<graph>"
        line = first.line if first else 0
        findings.append(Finding(
            rel, line, "MML101",
            "lock-order cycle (potential deadlock): " + "; ".join(legs)))

    if dot_path:
        write_dot(model, obs, decl, leaf_ids, dot_path)
    if verbose:
        for e in obs:
            print(f"  edge {e.src} -> {e.dst} at {e.rel}:{e.line}"
                  + (f" via {e.via}" if e.via else ""), file=sys.stderr)
    return findings


def write_dot(model: Model, obs: list[LockEdge], decl: list[LockEdge],
              leaf_ids: dict, path: str) -> None:
    nodes: set[str] = set()
    for e in obs + decl:
        if not e.src.startswith(("local:", "?:")):
            nodes.add(e.src)
        if not e.dst.startswith(("local:", "?:")):
            nodes.add(e.dst)
    for mf in model.all_mutexes():
        nodes.add(mf.lock_id)
    obs_pairs = {(e.src, e.dst) for e in obs
                 if not e.src.startswith(("local:", "?:"))
                 and not e.dst.startswith(("local:", "?:"))}
    lines = ["// Generated by ci/mm_verify.py — the MegaMmap lock hierarchy.",
             "// Solid edges were observed in code (nested acquisitions);",
             "// dashed edges are declared via MM_ACQUIRED_BEFORE/AFTER only.",
             "digraph lock_hierarchy {",
             "  rankdir=LR;",
             "  node [shape=box, fontname=\"monospace\", fontsize=10];"]
    for n in sorted(nodes):
        style = ", style=filled, fillcolor=lightgrey" if n in leaf_ids else ""
        label = n[len("mm::"):] if n.startswith("mm::") else n
        lines.append(f"  \"{n}\" [label=\"{label}\"{style}];")
    emitted: set[tuple[str, str]] = set()
    for e in obs:
        if (e.src, e.dst) in emitted or \
                e.src.startswith(("local:", "?:")) or \
                e.dst.startswith(("local:", "?:")):
            continue
        emitted.add((e.src, e.dst))
        lines.append(f"  \"{e.src}\" -> \"{e.dst}\" "
                     f"[label=\"{e.rel}:{e.line}\", fontsize=8];")
    for e in decl:
        if (e.src, e.dst) in emitted or (e.src, e.dst) in obs_pairs:
            continue
        emitted.add((e.src, e.dst))
        lines.append(f"  \"{e.src}\" -> \"{e.dst}\" [style=dashed];")
    lines.append("}")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


# ---------------------------------------------------------------------------
# MML102: guarded-field escapes
# ---------------------------------------------------------------------------

def check_mml102(model: Model) -> list[Finding]:
    findings: list[Finding] = []
    for fi in model.functions.values():
        ci = model.classes.get(fi.cls)
        if ci is None or not ci.guarded:
            continue
        sf = model.files.get(fi.rel)
        if sf is None:
            continue
        body = sf.code[fi.open + 1:fi.close - 1]
        base = fi.open + 1
        names = "|".join(re.escape(g) for g in ci.guarded)

        def emit(pos: int, msg: str) -> None:
            line = sf.line_of(pos)
            if not sf.suppressed(line, "MML102"):
                findings.append(Finding(sf.rel, line, "MML102", msg))

        # E1a: return &guarded;
        for m in re.finditer(r"\breturn\s*&\s*(" + names + r")\b", body):
            g = m.group(1)
            emit(base + m.start(),
                 f"address of {ci.name}::{g} (guarded by {ci.guarded[g]}) "
                 "escapes via return — the caller dereferences it outside "
                 "the lock scope")
        # E1b: by-reference/pointer return of the guarded field itself.
        if re.search(r"[&\*]\s*$", fi.ret.strip()) or \
                fi.ret.strip().endswith(("&", "*")):
            for m in re.finditer(r"\breturn\s+(" + names + r")\s*;", body):
                g = m.group(1)
                emit(base + m.start(),
                     f"{ci.name}::{g} (guarded by {ci.guarded[g]}) is "
                     "returned by reference — the caller reads it outside "
                     "the lock scope")
        # E2: stored into a longer-lived object: obj->p = &guarded;
        for m in re.finditer(
                r"([\w\]\)]+\s*(?:->|\.)\s*\w+)\s*=\s*&\s*("
                + names + r")\b", body):
            g = m.group(2)
            emit(base + m.start(2),
                 f"address of {ci.name}::{g} (guarded by {ci.guarded[g]}) "
                 f"stored into `{m.group(1).strip()}` — the pointer outlives "
                 "the lock scope")
        # E3: by-reference lambda capture handed to a deferred sink, or
        # stored into a member callback slot.
        for m in re.finditer(r"\[([^\]\[]*&[^\]\[]*)\]", body):
            lb = body.find("{", m.end())
            if lb < 0:
                continue
            pair = sf.innermost_brace(base + lb + 1,
                                      (fi.open, fi.close - 1))
            if pair is None or pair[0] != base + lb:
                continue
            lam_body = sf.code[pair[0]:pair[1]]
            used = [g for g in ci.guarded
                    if re.search(r"\b" + re.escape(g) + r"\b", lam_body)]
            if not used:
                continue
            # Deferred? look backwards for `Sink(` or a `member =` store.
            before = body[:m.start()].rstrip()
            sink = re.search(r"(\w+)\s*\($", before)
            stored = re.search(r"(?:->|\.)\s*\w+\s*=$",
                               before.rstrip(","))
            deferred = (sink is not None and sink.group(1) in DEFERRED_SINKS)
            if not (deferred or stored):
                continue
            g = used[0]
            how = (f"passed to deferred sink {sink.group(1)}()" if deferred
                   else "stored into a callback slot")
            emit(base + m.start(),
                 f"lambda captures {ci.name}::{g} (guarded by "
                 f"{ci.guarded[g]}) by reference and is {how} — it runs "
                 "after the lock scope ends")
    return findings


# ---------------------------------------------------------------------------
# MML103: seqlock discipline
# ---------------------------------------------------------------------------

def check_mml103(model: Model) -> list[Finding]:
    findings: list[Finding] = []
    for fi in model.functions.values():
        if any(part in fi.rel for part in SEQLOCK_EXEMPT):
            continue
        sf = model.files.get(fi.rel)
        if sf is None:
            continue
        body = sf.code[fi.open + 1:fi.close - 1]
        base = fi.open + 1
        guards = [e for e in fi.lock_events if e.kind == "frame"]

        def in_guard(pos: int) -> bool:
            return any(g.pos < pos < g.end for g in guards)

        def emit(pos: int, msg: str) -> None:
            line = sf.line_of(pos)
            if not sf.suppressed(line, "MML103"):
                findings.append(Finding(sf.rel, line, "MML103", msg))

        for m in STORE_BYTES_RE.finditer(body):
            pos = base + m.start()
            if not in_guard(pos):
                emit(pos, "OptimisticGuard::StoreBytes outside a "
                          "FrameWriteGuard section — optimistic readers can "
                          "validate a torn write (DESIGN.md §14)")
        for m in BYTES_STORE_RE.finditer(body):
            pos = base + m.start()
            if not in_guard(pos):
                emit(pos, f"`{m.group(1)}->bytes.store()` outside a "
                          "FrameWriteGuard section — republishing the byte "
                          "pointer needs the seqlock held odd")
        for m in FRAME_MEMCPY_RE.finditer(body):
            pos = base + m.start()
            if not in_guard(pos):
                emit(pos, f"memcpy into `{m.group(1)}` page bytes outside a "
                          "FrameWriteGuard section — a concurrent optimistic "
                          "reader can validate a torn copy")

        # Validate()-failure path must not consume the torn copy.
        for vm in VALIDATE_FAIL_RE.finditer(body):
            gvar = vm.group(1)
            copied: set[str] = set()
            for rm in re.finditer(
                    r"\b" + re.escape(gvar) + READBYTES_OUT_RE.pattern,
                    body[:vm.start()]):
                copied.add(rm.group(1))
            for am in re.finditer(
                    r"(\w+)\s*=[^;=]*\b" + re.escape(gvar) +
                    r"\s*\.\s*(?:page|version)\s*\(", body[:vm.start()]):
                copied.add(am.group(1))
            if not copied:
                continue
            blk_open = body.find("{", vm.end())
            if blk_open < 0:
                continue
            pair = sf.innermost_brace(base + blk_open + 1,
                                      (fi.open, fi.close - 1))
            if pair is None or pair[0] != base + blk_open:
                continue
            blk = sf.code[pair[0] + 1:pair[1]]
            for var in sorted(copied):
                for um in re.finditer(r"\b" + re.escape(var) + r"\b", blk):
                    tail = blk[um.end():um.end() + 16].lstrip()
                    before = blk[:um.start()].rstrip()
                    if tail.startswith("=") and not tail.startswith("=="):
                        continue  # reassignment before retry is fine
                    if before.endswith("&"):
                        continue  # retrying ReadBytes(&var, ...)
                    pos = pair[0] + 1 + um.start()
                    emit(pos,
                         f"`{var}` was copied through OptimisticGuard "
                         f"`{gvar}` but is used on the Validate()-failed "
                         "path — the copy may be torn; refetch before use")
                    break
    return findings


# ---------------------------------------------------------------------------
# MML104: determinism (lexical)
# ---------------------------------------------------------------------------

def check_mml104(sf: SourceFile) -> list[Finding]:
    rel = sf.rel
    in_scope = rel.startswith(("src/", "include/mm/", "bench/"))
    if not in_scope:
        return []
    if "/sim/" in rel or rel.startswith(("src/sim/", "include/mm/sim/")):
        return []
    if rel in MML104_BENCH_ALLOWLIST:
        return []
    findings: list[Finding] = []

    def emit(line: int, what: str) -> None:
        if not sf.suppressed(line, "MML104"):
            findings.append(Finding(
                rel, line, "MML104",
                f"{what} breaks deterministic replay — route time through "
                "sim::VirtualClock / Env::NowS and randomness through a "
                "seeded engine (DESIGN.md §4); benches measuring real time "
                "belong on the MML104 allowlist"))

    for idx, line in enumerate(sf.code_lines):
        m = WALL_CLOCK_RE.search(line)
        if m:
            emit(idx + 1, f"wall clock `{m.group(0)}`")
        m = RAND_RE.search(line)
        if m:
            emit(idx + 1, f"`{m.group(1)}()` (global, unseeded PRNG)")
        m = TIME_RE.search(line)
        if m:
            emit(idx + 1, "`time()` wall-clock call")
        m = RANDOM_DEVICE_RE.search(line)
        if m:
            emit(idx + 1, "`std::random_device` (non-deterministic entropy)")
    return findings


# ---------------------------------------------------------------------------
# MML002 (AST edition): per-variable PagePool buffer dataflow
# ---------------------------------------------------------------------------

def check_mml002_ast(model: Model) -> list[Finding]:
    findings: list[Finding] = []
    for fi in model.functions.values():
        sf = model.files.get(fi.rel)
        if sf is None:
            continue
        body = sf.code[fi.open + 1:fi.close - 1]
        base = fi.open + 1
        for m in ACQUIRE_ASSIGN_RE.finditer(body):
            var = m.group(1)
            rest = body[m.end():]
            if _buffer_handed_off(model, fi, rest, var):
                continue
            # `out.data = pool_.Acquire...` — m.group(1) only captures the
            # last identifier; detect the member-store shape and treat the
            # enclosing object as the handoff carrier.
            stmt_start = body.rfind(";", 0, m.start()) + 1
            stmt = body[stmt_start:m.end()]
            if MEMBER_ACQUIRE_RE.search(stmt):
                continue
            pos = base + m.start(1)
            line = sf.line_of(pos)
            if not sf.suppressed(line, "MML002"):
                findings.append(Finding(
                    sf.rel, line, "MML002",
                    f"PagePool buffer `{var}` is neither PoolReturn-guarded,"
                    " std::move'd, Release'd, returned, nor handed to a "
                    "callee after Acquire — it leaks out of the recycling "
                    "loop"))
    return findings


def _buffer_handed_off(model: Model, fi: FunctionInfo, rest: str,
                       var: str) -> bool:
    v = re.escape(var)
    if re.search(r"\bPoolReturn\s+\w+\s*[({][^;]*\b" + v + r"\b", rest):
        return True
    if re.search(r"std::move\s*\(\s*" + v + r"\s*\)", rest):
        return True
    if re.search(r"\bRelease\s*\(\s*" + v + r"\b", rest):
        return True
    if re.search(r"\breturn\s+" + v + r"\b", rest):
        return True
    if re.search(r"(?:->|\.)\s*\w+\s*=\s*" + v + r"\s*;", rest):
        return True  # stored into an outgoing object
    # One-level handoff: var passed as an argument to some call.
    for cm in re.finditer(r"\b(\w+)\s*\(([^()]*\b" + v + r"\b[^()]*)\)",
                          rest):
        callee_name = cm.group(1)
        if callee_name in KEYWORDS or callee_name == "PoolReturn":
            continue
        return True
    return False


# ---------------------------------------------------------------------------
# MML003 (AST edition): class-level Pin/Unpin tally
# ---------------------------------------------------------------------------

def check_mml003_ast(model: Model) -> list[Finding]:
    findings: list[Finding] = []
    tallies: dict[str, dict[str, list[tuple[str, int]]]] = {}
    for fi in model.functions.values():
        cls = fi.cls or f"<free:{fi.rel}>"
        if cls.endswith("PCache"):
            continue  # the definitions themselves
        for call in fi.calls:
            if call.name in ("Pin", "Unpin") and call.recv_class != fi.cls:
                tallies.setdefault(cls, {}).setdefault(
                    call.name, []).append((fi.rel, call.line))
    for cls, by_name in sorted(tallies.items()):
        pins = by_name.get("Pin", [])
        unpins = by_name.get("Unpin", [])
        if len(pins) == len(unpins):
            continue
        rel, line = (pins or unpins)[0]
        sf = model.files.get(rel)
        if sf is not None and sf.suppressed(line, "MML003"):
            continue
        findings.append(Finding(
            rel, line, "MML003",
            f"Pin/Unpin imbalance in {cls}: {len(pins)} Pin vs "
            f"{len(unpins)} Unpin call sites across the class — a leaked "
            "pin makes the frame unevictable"))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_tree(root: str) -> list[str]:
    files = []
    for d in sorted(set(MODEL_DIRS + LEXICAL_DIRS)):
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, _dirs, names in os.walk(top):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTS):
                    files.append(os.path.join(dirpath, name))
    return files


def build_model(file_texts: list[tuple[str, str]]) -> Model:
    """file_texts: [(rel_path, text)]. Declarations first (so cross-file
    receiver types resolve), then function bodies."""
    model = Model()
    for rel, text in file_texts:
        model.files[rel.replace(os.sep, "/")] = SourceFile(rel, text)
    for sf in model.files.values():
        parse_declarations(model, sf)
    for sf in model.files.values():
        parse_functions_textual(model, sf)
    return model


def run_rules(model: Model, dot_path: str | None = None,
              call_depth: int = 3, verbose: bool = False,
              rules: tuple[str, ...] = ("MML101", "MML102", "MML103",
                                        "MML104", "MML002", "MML003"),
              ) -> list[Finding]:
    findings: list[Finding] = []
    for sf in model.files.values():
        findings.extend(sf.bad_suppressions)
    summaries = compute_summaries(model, call_depth)
    if "MML101" in rules:
        findings.extend(check_mml101(model, summaries, dot_path, verbose))
    if "MML102" in rules:
        findings.extend(check_mml102(model))
    if "MML103" in rules:
        findings.extend(check_mml103(model))
    if "MML104" in rules:
        for sf in model.files.values():
            findings.extend(check_mml104(sf))
    if "MML002" in rules:
        findings.extend(check_mml002_ast(model))
    if "MML003" in rules:
        findings.extend(check_mml003_ast(model))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--root", default=default_root)
    parser.add_argument("-p", "--build-dir", default=None,
                        help="directory holding compile_commands.json "
                             "(default: <root>/build)")
    parser.add_argument("--frontend", choices=("auto", "textual", "libclang"),
                        default="auto",
                        help="auto tries libclang and falls back to the "
                             "textual parser with a warning")
    parser.add_argument("--dot", default=None,
                        help="lock-hierarchy DOT output path "
                             "(default: <root>/build/lock_hierarchy.dot; "
                             "'-' disables)")
    parser.add_argument("--call-depth", type=int, default=3,
                        help="callee lock-summary propagation depth")
    parser.add_argument("--verbose", action="store_true",
                        help="print every observed lock edge")
    parser.add_argument("files", nargs="*",
                        help="restrict REPORTED findings to these paths "
                             "(the model is always whole-tree)")
    args = parser.parse_args(argv)

    def warn(msg: str) -> None:
        print(f"mm_verify: warning: {msg}", file=sys.stderr)

    root = os.path.abspath(args.root)
    build_dir = args.build_dir or os.path.join(root, "build")
    file_texts: list[tuple[str, str]] = []
    for path in collect_tree(root):
        rel = os.path.relpath(path, root)
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                file_texts.append((rel, f.read()))
        except OSError as e:
            warn(f"unreadable {rel}: {e}")
    model = build_model(file_texts)

    if args.frontend in ("auto", "libclang"):
        ok = parse_functions_libclang(model, root, build_dir, warn)
        if not ok and args.frontend == "libclang":
            warn("libclang frontend requested but unavailable; "
                 "rules still ran on the textual model")

    dot_path = args.dot
    if dot_path is None:
        dot_path = os.path.join(root, "build", "lock_hierarchy.dot")
    elif dot_path == "-":
        dot_path = None

    findings = run_rules(model, dot_path=dot_path,
                         call_depth=args.call_depth, verbose=args.verbose)
    if args.files:
        wanted = {os.path.relpath(os.path.abspath(f), root).replace(
            os.sep, "/") for f in args.files}
        findings = [f for f in findings if f.path in wanted]

    for f in findings:
        print(f)
    n_funcs = len(model.functions)
    n_locks = len(model.all_mutexes())
    tag = (f"frontend={model.frontend}, {n_funcs} functions, "
           f"{n_locks} mutexes")
    if findings:
        print(f"mm_verify: {len(findings)} finding(s) ({tag})",
              file=sys.stderr)
    else:
        print(f"mm_verify: clean ({tag})", file=sys.stderr)
    return min(len(findings), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
