#!/usr/bin/env python3
"""mm_lint: MegaMmap-specific static checks the generic tools can't express.

Rules (see DESIGN.md "Concurrency contracts & static analysis"):

  MML001  Raw std synchronization primitive (std::mutex, std::lock_guard,
          std::unique_lock, std::condition_variable, ...) outside util/.
          All runtime code must use the annotated mm::Mutex / mm::MutexLock /
          mm::CondVar wrappers so Clang's -Wthread-safety sees the locking.
  MML002  PagePool Acquire/AcquireZeroed whose buffer is neither guarded by
          a PoolReturn, handed off via std::move, nor explicitly Release'd
          within the enclosing function. Un-returned buffers silently drop
          out of the recycling loop and regress the zero-alloc hot path.
          (ci/mm_verify.py carries an AST edition with per-variable
          dataflow; this regex form is the no-libclang fallback.)
  MML003  PCache Pin/Unpin call-site imbalance within a file. Every pin
          must have a matching unpin path or pinned frames leak off the
          LRU lists and become unevictable. (ci/mm_verify.py tallies per
          class across files; this per-file count is the fallback.)
  MML004  MM_CHECK inside a DESIGN.md §7 hot-path function
          (Span::operator[], PCache::{Find,Touch,MarkElemDirty,PickVictim},
          PagePool::{Acquire,AcquireZeroed,Release}). The fast path is two
          integer ops by contract; checks belong on the scalar At/Read/Set
          entry points.
  MML005  (void)-discarded call without a reason comment. Discarding a
          [[nodiscard]] Status is allowed only with a same-line or
          preceding-line comment saying why the error cannot matter.
  MML006  Telemetry metric name (string literal passed to GetCounter /
          GetGauge / GetHistogram in include/ or src/) that does not match
          `mm.<subsystem>.<name>` (lowercase + underscores) or lacks a unit
          suffix (_bytes, _ns, _count, _ratio). The name catalog in
          DESIGN.md §11 and the epoch-report diffing both rely on this
          scheme.
  MML007  Direct std::ofstream/std::fstream open of a final path in ckpt
          code (src/ckpt/, include/mm/ckpt/). Checkpoint artifacts must be
          published via write-to-temp + rename (DESIGN.md §12) so readers
          never observe a torn file. Exempt: append-mode opens (the redo
          journal IS the write-ahead log), paths whose text mentions
          tmp/temp, and functions that rename() the file into place.
  MML008  Unbounded receive (Recv/RecvValue/RecvBytes) in runtime code
          outside comm/. The blocking variants abort the process when the
          peer dies; everything above the comm layer must use the
          deadline-returning *Or variants (RecvOr/RecvValueOr/RecvBytesOr)
          so node death surfaces as a kPeerDead Status the caller can
          route into recovery (DESIGN.md §13). comm/ itself and the test
          tree keep the blocking forms (fixtures and the wrappers'
          definitions).
  MML009  Raw PageFrame version access (`frame->version` / `frame.version`
          on an identifier containing "frame") outside core/pcache and
          core/optimistic_guard. The version word is half of the seqlock
          (DESIGN.md §14): reading it without the OptimisticGuard
          acquire/validate protocol, or writing it without a
          FrameWriteGuard section, tears the read-side invariant. Use
          OptimisticGuard::Version / SetVersion (or a guard object).
  MML010  Metric catalog drift (whole-tree check, runs on full scans
          only). Every `mm.*` name passed as a string literal to
          GetCounter/GetGauge/GetHistogram in include/ + src/ must appear
          in the DESIGN.md §11 "Metric catalog" table, and every catalog
          entry must be registered somewhere in include/ + src/. The
          catalog is the contract dashboards and the epoch-report diffing
          build against; an undocumented metric is invisible to them, a
          stale entry is a broken promise. Catalog rows are
          `| `mm.family.*` | `name`, `{a,b}_suffix`, ... |` with brace
          groups expanded combinatorially.
  MML011  Raw B-tree node byte access (`.leaf.keys`, `->inner.seps`,
          `node.hdr`, ...) outside the index subsystem. A NodeBlock is one
          DSM page whose frame seqlock doubles as the node version lock
          (DESIGN.md §15): reading its fields without a validated snapshot
          (NodeRef over a TryReadOptimistic/probe copy) or writing them
          outside a FrameWriteGuard section tears the latch-free readers.
          Only include/mm/index/ + src/index/ may touch node internals;
          tests/test_btree.cc is exempt as the white-box layout test.

Suppression: put `mm-lint: allow(MMLnnn <reason>)` in a comment on the
offending line or the line directly above it. Suppressions without a
reason are themselves findings.

Usage: python3 ci/mm_lint.py [--root DIR] [files...]
Exit status is the number of findings (0 == clean).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

SOURCE_DIRS = ("include", "src", "tests", "bench", "examples")
SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp")

# MML001 --------------------------------------------------------------------
RAW_SYNC_RE = re.compile(
    r"std::(?:recursive_|timed_|shared_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>"
)

# MML002 --------------------------------------------------------------------
POOL_ACQUIRE_RE = re.compile(
    r"(?:^|[^\w.])(\w*[Pp]ool\w*)\s*(?:\.|->)\s*(Acquire(?:Zeroed)?)\s*\("
)
POOL_HANDOFF_RE = re.compile(r"PoolReturn\b|std::move\s*\(|(?:\.|->)\s*Release\s*\(")

# MML003 --------------------------------------------------------------------
PIN_CALL_RE = re.compile(r"(?:\.|->)\s*Pin\s*\(")
UNPIN_CALL_RE = re.compile(r"(?:\.|->)\s*Unpin\s*\(")

# MML004: (filename substring, class-name hint, method name) ----------------
HOT_PATHS = [
    ("vector.h", "Span", "operator[]"),
    ("pcache", "PCache", "Find"),
    ("pcache", "PCache", "Touch"),
    ("pcache", "PCache", "MarkElemDirty"),
    ("pcache", "PCache", "PickVictim"),
    ("memory_task.h", "PagePool", "Acquire"),
    ("memory_task.h", "PagePool", "AcquireZeroed"),
    ("memory_task.h", "PagePool", "Release"),
]
MM_CHECK_RE = re.compile(r"\bMM_CHECK(?:_MSG)?\s*\(")

# MML005 --------------------------------------------------------------------
VOID_DISCARD_RE = re.compile(r"\(\s*void\s*\)\s*[\w:~]")

# MML006 --------------------------------------------------------------------
METRIC_GET_RE = re.compile(
    r"Get(?:Counter|Gauge|Histogram)\s*\(\s*\"([^\"]*)\"")
METRIC_NAME_RE = re.compile(r"mm\.[a-z_]+\.[a-z_]+\Z")
METRIC_UNIT_SUFFIXES = ("_bytes", "_ns", "_count", "_ratio")

# MML007 --------------------------------------------------------------------
CKPT_STREAM_RE = re.compile(r"std::(?:ofstream|fstream)\b[^;]*")
CKPT_DIRS = ("src/ckpt/", "include/mm/ckpt/")

# MML009 --------------------------------------------------------------------
# An identifier containing "frame" (any case) dereferencing `.version` /
# `->version`. The seqlock implementation itself lives in core/pcache and
# core/optimistic_guard; everyone else goes through the guard API.
FRAME_VERSION_RE = re.compile(
    r"\b(\w*[Ff]rame\w*)\s*(?:\.|->)\s*version\b")
FRAME_VERSION_EXEMPT = ("core/pcache", "core/optimistic_guard")

# MML008 --------------------------------------------------------------------
# Matches `.Recv(`, `->RecvValue<T>(`, `.RecvBytes(` — the lookahead stops
# the alternatives from matching a prefix of the *Or deadline variants.
UNBOUNDED_RECV_RE = re.compile(
    r"(?:\.|->)\s*(Recv(?:Bytes|Value)?)(?=\s*[<(])")
COMM_DIRS = ("src/comm/", "include/mm/comm/")

# MML011 --------------------------------------------------------------------
# Two routes into node bytes: through the NodeBlock union arms
# (`blk.leaf.keys`, `->inner.children`) or through an identifier containing
# "node" touching a node field directly. The index subsystem owns both.
TREE_NODE_UNION_RE = re.compile(
    r"(?:\.|->)\s*(leaf|inner)\s*\.\s*(keys|vals|seps|children|fence)\b")
TREE_NODE_IDENT_RE = re.compile(
    r"\b(\w*[Nn]ode\w*)\s*(?:\.|->)\s*(hdr|keys|vals|seps|children|fence)\b")
TREE_NODE_EXEMPT = ("include/mm/index/", "src/index/", "tests/test_btree.cc")

ALLOW_RE = re.compile(r"mm-lint:\s*allow\(\s*(MML\d{3})\b([^)]*)\)")

# MML010 --------------------------------------------------------------------
CATALOG_HEADER = "### Metric catalog"
CATALOG_FAMILY_RE = re.compile(r"`(mm\.[a-z_]+)\.\*`")
CATALOG_TOKEN_RE = re.compile(r"`([^`]+)`")
BRACE_RE = re.compile(r"\{([^{}]*)\}")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving offsets and
    newlines so line numbers and brace depths stay valid."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = i
            while j < n and text[j] != "\n":
                out[j] = " "
                j += 1
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = i
            while j < n - 1 and not (text[j] == "*" and text[j + 1] == "/"):
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            if j < n - 1:
                out[j] = out[j + 1] = " "
                j += 2
            i = j
        elif c in ("\"", "'"):
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    out[j] = " "
                    j += 1
                    if j < n and text[j] != "\n":
                        out[j] = " "
                    j += 1
                    continue
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            i = j + 1
        else:
            i += 1
    return "".join(out)


class FileScanner:
    def __init__(self, path: str, text: str, rel: str):
        self.path = path
        self.rel = rel
        self.text = text
        self.code = strip_comments_and_strings(text)
        self.lines = text.split("\n")
        self.code_lines = self.code.split("\n")
        self.findings: list[Finding] = []
        self.suppressions: dict[int, set[str]] = {}  # line -> rules
        self._collect_suppressions()

    def _collect_suppressions(self) -> None:
        for idx, line in enumerate(self.lines):
            for m in ALLOW_RE.finditer(line):
                rule, reason = m.group(1), m.group(2).strip()
                if not reason:
                    self.findings.append(
                        Finding(self.rel, idx + 1, rule,
                                "suppression without a reason "
                                "(use `mm-lint: allow(MMLnnn why)`)"))
                    continue
                # A suppression covers its own line and the next line, so a
                # comment directly above the offending statement works.
                self.suppressions.setdefault(idx + 1, set()).add(rule)
                self.suppressions.setdefault(idx + 2, set()).add(rule)

    def suppressed(self, line: int, rule: str) -> bool:
        return rule in self.suppressions.get(line, set())

    def report(self, line: int, rule: str, message: str) -> None:
        if not self.suppressed(line, rule):
            self.findings.append(Finding(self.rel, line, rule, message))

    # -- helpers ------------------------------------------------------------

    def enclosing_block(self, pos: int) -> tuple[int, int] | None:
        """[start, end) offsets of the innermost braced block containing pos
        whose opening brace ends a function-like header (not if/for/...)."""
        stack: list[int] = []
        best: tuple[int, int] | None = None
        depth_at_pos: list[int] = []
        for i, c in enumerate(self.code):
            if c == "{":
                stack.append(i)
            elif c == "}":
                if stack:
                    start = stack.pop()
                    if start < pos < i and self._looks_like_function(start):
                        if best is None or start > best[0]:
                            best = (start, i)
        _ = depth_at_pos
        return best

    def _looks_like_function(self, brace_pos: int) -> bool:
        """Heuristic: the text before `{` (same logical header) ends with `)`
        or a function-ish suffix (const, noexcept, attribute macro)."""
        header = self.code[:brace_pos].rstrip()
        # Walk back over trailing qualifiers/annotation macros.
        for _ in range(8):
            for suffix in ("const", "noexcept", "override", "final"):
                if header.endswith(suffix):
                    header = header[: -len(suffix)].rstrip()
            m = re.search(r"(?:MM_\w+|__attribute__)\s*\([^()]*\)$", header)
            if m:
                header = header[: m.start()].rstrip()
            elif header.endswith(("MM_NO_THREAD_SAFETY_ANALYSIS",)):
                header = header[: -len("MM_NO_THREAD_SAFETY_ANALYSIS")].rstrip()
            else:
                break
        if not header.endswith(")"):
            return False
        # Reject control-flow statements: scan back to the matching '('.
        depth = 0
        for i in range(len(header) - 1, -1, -1):
            c = header[i]
            if c == ")":
                depth += 1
            elif c == "(":
                depth -= 1
                if depth == 0:
                    before = header[:i].rstrip()
                    kw = re.search(r"(\w+)$", before)
                    if kw and kw.group(1) in (
                            "if", "for", "while", "switch", "catch", "return"):
                        return False
                    return True
        return False

    def line_of(self, pos: int) -> int:
        return self.code.count("\n", 0, pos) + 1

    # -- rules --------------------------------------------------------------

    def check_mml001(self) -> None:
        rel_norm = self.rel.replace(os.sep, "/")
        if "/util/" in rel_norm or rel_norm.startswith("ci/"):
            return
        if not rel_norm.startswith(("include/", "src/")):
            return
        for idx, line in enumerate(self.code_lines):
            m = RAW_SYNC_RE.search(line)
            if m:
                self.report(idx + 1, "MML001",
                            f"raw `{m.group(0).strip()}` outside util/ — use "
                            "mm::Mutex / mm::MutexLock / mm::CondVar "
                            "(mm/util/mutex.h)")

    def check_mml002(self) -> None:
        for m in POOL_ACQUIRE_RE.finditer(self.code):
            pos = m.start(1)
            block = self.enclosing_block(pos)
            if block is None:
                continue  # e.g. a default-argument expression
            body = self.code[block[0]:block[1]]
            if POOL_HANDOFF_RE.search(body):
                continue
            self.report(self.line_of(pos), "MML002",
                        f"`{m.group(1)}.{m.group(2)}()` buffer is never "
                        "guarded by PoolReturn, std::move'd, or Release'd in "
                        "this function — it will leak out of the pool")

    def check_mml003(self) -> None:
        base = os.path.basename(self.rel)
        if base.startswith("pcache"):
            return  # definitions, not call sites
        pins = [i + 1 for i, l in enumerate(self.code_lines)
                if PIN_CALL_RE.search(l)]
        unpins = [i + 1 for i, l in enumerate(self.code_lines)
                  if UNPIN_CALL_RE.search(l)]
        if len(pins) != len(unpins):
            anchor = (pins or unpins)[0]
            self.report(anchor, "MML003",
                        f"Pin/Unpin imbalance in file: {len(pins)} Pin vs "
                        f"{len(unpins)} Unpin call sites — a leaked pin "
                        "makes the frame unevictable")

    def check_mml004(self) -> None:
        base = os.path.basename(self.rel)
        for fname_part, cls, method in HOT_PATHS:
            if fname_part not in base:
                continue
            if method == "operator[]":
                pattern = re.compile(r"operator\[\]\s*\(")
            else:
                pattern = re.compile(
                    r"(?:[\w>]+\s+|::)" + re.escape(cls) +
                    r"::" + re.escape(method) + r"\s*\(" +
                    r"|\b" + re.escape(method) + r"\s*\([^;{]*\)[^;{]*\{")
            for m in pattern.finditer(self.code):
                block = self.enclosing_body_after(m.start())
                if block is None:
                    continue
                body = self.code[block[0]:block[1]]
                cm = MM_CHECK_RE.search(body)
                if cm:
                    line = self.line_of(block[0] + cm.start())
                    self.report(line, "MML004",
                                f"MM_CHECK inside hot path {cls}::{method} "
                                "(DESIGN.md §7: the fast path must stay "
                                "check-free; validate at the scalar entry "
                                "points instead)")

    def enclosing_body_after(self, pos: int) -> tuple[int, int] | None:
        """Body `{...}` of the function whose definition starts at pos.
        Returns None for declarations (`;` before any `{`)."""
        i = pos
        n = len(self.code)
        while i < n:
            c = self.code[i]
            if c == ";":
                return None
            if c == "{":
                depth = 1
                j = i + 1
                while j < n and depth:
                    if self.code[j] == "{":
                        depth += 1
                    elif self.code[j] == "}":
                        depth -= 1
                    j += 1
                return (i, j)
            i += 1
        return None

    def check_mml005(self) -> None:
        for idx, line in enumerate(self.code_lines):
            m = VOID_DISCARD_RE.search(line)
            if not m:
                continue
            # A reason comment on the same line or the line above satisfies
            # the audit requirement (original text, since comments are
            # stripped from self.code_lines).
            here = self.lines[idx]
            above = self.lines[idx - 1] if idx > 0 else ""
            has_comment = "//" in here or above.lstrip().startswith("//")
            if not has_comment:
                self.report(idx + 1, "MML005",
                            "(void)-discard without a reason comment — say "
                            "why the result cannot matter, on this line or "
                            "the line above")

    def check_mml006(self) -> None:
        # Runtime code only: tests/benches may register ad-hoc names for
        # fixtures. Scans the ORIGINAL text because string literals are
        # blanked out of self.code.
        rel_norm = self.rel.replace(os.sep, "/")
        if not rel_norm.startswith(("include/", "src/")):
            return
        for m in METRIC_GET_RE.finditer(self.text):
            name = m.group(1)
            # Anchor the finding on the literal itself (multi-line calls).
            line = self.text.count("\n", 0, m.start(1)) + 1
            if not METRIC_NAME_RE.fullmatch(name):
                self.report(line, "MML006",
                            f'metric name "{name}" must match '
                            "`mm.<subsystem>.<name>` "
                            "(lowercase letters and underscores)")
            elif not name.endswith(METRIC_UNIT_SUFFIXES):
                self.report(line, "MML006",
                            f'metric name "{name}" lacks a unit suffix '
                            f"({', '.join(METRIC_UNIT_SUFFIXES)})")

    def check_mml007(self) -> None:
        # Crash-consistency contract (DESIGN.md §12): checkpoint artifacts
        # are published atomically. Scans the ORIGINAL text so path
        # expressions like `path + ".tmp"` stay visible.
        rel_norm = self.rel.replace(os.sep, "/")
        if not rel_norm.startswith(CKPT_DIRS):
            return
        for m in CKPT_STREAM_RE.finditer(self.text):
            stmt = m.group(0)
            if "ios::app" in stmt:
                continue  # the redo journal IS the write-ahead log
            if re.search(r"tmp|temp", stmt, re.IGNORECASE):
                continue  # the temp half of a temp+rename publish
            pos = m.start()
            block = self.enclosing_block(pos)
            if block is not None and re.search(
                    r"\brename\s*\(", self.code[block[0]:block[1]]):
                continue  # the same function renames the file into place
            self.report(self.text.count("\n", 0, pos) + 1, "MML007",
                        "direct stream open of a final path in ckpt code — "
                        "publish via write-to-temp + std::filesystem::rename "
                        "(or open the journal in append mode)")

    def check_mml008(self) -> None:
        # Failure-model contract (DESIGN.md §13): only the comm layer may
        # block unboundedly; callers above it must see peer death as a
        # Status, not an abort.
        rel_norm = self.rel.replace(os.sep, "/")
        if not rel_norm.startswith(("include/", "src/")):
            return
        if rel_norm.startswith(COMM_DIRS):
            return
        for idx, line in enumerate(self.code_lines):
            m = UNBOUNDED_RECV_RE.search(line)
            if m:
                self.report(idx + 1, "MML008",
                            f"unbounded `{m.group(1)}` outside comm/ aborts "
                            "on peer death — use the deadline variant "
                            f"`{m.group(1)}Or` and route kPeerDead into "
                            "recovery")

    def check_mml009(self) -> None:
        # Seqlock contract (DESIGN.md §14): PageFrame::version is the
        # read-side word of the optimistic guard; only its implementation
        # files may touch it directly.
        rel_norm = self.rel.replace(os.sep, "/")
        if any(part in rel_norm for part in FRAME_VERSION_EXEMPT):
            return
        for idx, line in enumerate(self.code_lines):
            m = FRAME_VERSION_RE.search(line)
            if m:
                self.report(idx + 1, "MML009",
                            f"raw `{m.group(1)}` version access outside the "
                            "seqlock implementation — use OptimisticGuard::"
                            "Version/SetVersion (reads need the acquire + "
                            "validate protocol, writes a FrameWriteGuard)")

    def check_mml011(self) -> None:
        # Ordered-index contract (DESIGN.md §15): NodeBlock bytes are only
        # coherent under the frame seqlock / write-guard protocol the index
        # subsystem implements; everyone else goes through BTree's API.
        rel_norm = self.rel.replace(os.sep, "/")
        if rel_norm.startswith(TREE_NODE_EXEMPT):
            return
        for idx, line in enumerate(self.code_lines):
            m = TREE_NODE_UNION_RE.search(line)
            if m:
                self.report(idx + 1, "MML011",
                            f"raw node byte access `{m.group(1)}.{m.group(2)}` "
                            "outside index/ — go through mm::BTree (or NodeRef "
                            "over a guard-validated snapshot)")
                continue
            m = TREE_NODE_IDENT_RE.search(line)
            if m:
                self.report(idx + 1, "MML011",
                            f"raw node field access `{m.group(1)}.{m.group(2)}` "
                            "outside index/ — go through mm::BTree (or NodeRef "
                            "over a guard-validated snapshot)")

    def run(self) -> list[Finding]:
        self.check_mml001()
        self.check_mml002()
        self.check_mml003()
        self.check_mml004()
        self.check_mml005()
        self.check_mml006()
        self.check_mml007()
        self.check_mml008()
        self.check_mml009()
        self.check_mml011()
        return self.findings


def expand_token(token: str) -> list[str]:
    """Expands `{a,b}_x` brace groups combinatorially: `{a,b}_{c,d}` ->
    a_c, a_d, b_c, b_d. Tokens without braces pass through unchanged."""
    m = BRACE_RE.search(token)
    if not m:
        return [token]
    out: list[str] = []
    for alt in m.group(1).split(","):
        out.extend(expand_token(token[:m.start()] + alt.strip() +
                                token[m.end():]))
    return out


def parse_metric_catalog(design_text: str) -> dict[str, int] | None:
    """Full metric names -> 1-based DESIGN.md line, from the §11 catalog
    table. None when the `### Metric catalog` section is missing."""
    lines = design_text.split("\n")
    start = None
    for i, line in enumerate(lines):
        if line.strip() == CATALOG_HEADER:
            start = i
            break
    if start is None:
        return None
    names: dict[str, int] = {}
    for idx in range(start + 1, len(lines)):
        line = lines[idx]
        if line.startswith("#"):
            break  # next section
        stripped = line.strip()
        if not stripped.startswith("|"):
            continue
        cells = [c.strip() for c in stripped.strip("|").split("|")]
        if len(cells) < 2:
            continue
        fam = CATALOG_FAMILY_RE.match(cells[0])
        if fam is None:
            continue  # header / divider rows
        family = fam.group(1)
        for tok in CATALOG_TOKEN_RE.finditer(cells[1]):
            for name in expand_token(tok.group(1)):
                names.setdefault(family + "." + name, idx + 1)
    return names


def check_mml010(root: str) -> list[Finding]:
    """Whole-tree catalog cross-check: code metric literals vs the
    DESIGN.md §11 catalog, both directions."""
    design_path = os.path.join(root, "DESIGN.md")
    try:
        with open(design_path, "r", encoding="utf-8", errors="replace") as f:
            design_text = f.read()
    except OSError:
        return []  # nothing to cross-check against
    catalog = parse_metric_catalog(design_text)
    if catalog is None:
        return [Finding("DESIGN.md", 1, "MML010",
                        f"missing `{CATALOG_HEADER}` section in §11 — the "
                        "metric catalog is the contract MML010 checks "
                        "registrations against")]

    findings: list[Finding] = []
    used: dict[str, tuple[str, int]] = {}
    for d in ("include", "src"):
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, _dirnames, filenames in os.walk(top):
            for fname in sorted(filenames):
                if not fname.endswith(SOURCE_EXTS):
                    continue
                path = os.path.join(dirpath, fname)
                rel = os.path.relpath(path, root)
                try:
                    with open(path, "r", encoding="utf-8",
                              errors="replace") as f:
                        text = f.read()
                except OSError:
                    continue
                lines = text.split("\n")
                for m in METRIC_GET_RE.finditer(text):
                    name = m.group(1)
                    if not name.startswith("mm."):
                        continue  # MML006's problem, not drift
                    line = text.count("\n", 0, m.start(1)) + 1
                    # Honor the standard allow-comment on the literal's
                    # line or the line above it.
                    here = lines[line - 1] if line - 1 < len(lines) else ""
                    above = lines[line - 2] if line >= 2 else ""
                    if any("MML010" == a.group(1)
                           for l in (here, above)
                           for a in ALLOW_RE.finditer(l)):
                        continue
                    used.setdefault(name, (rel, line))
    for name in sorted(used):
        if name not in catalog:
            rel, line = used[name]
            findings.append(Finding(
                rel, line, "MML010",
                f'metric "{name}" is not in the DESIGN.md §11 metric '
                "catalog — add it to the family table"))
    for name in sorted(catalog):
        if name not in used:
            findings.append(Finding(
                "DESIGN.md", catalog[name], "MML010",
                f'catalog metric "{name}" is not registered anywhere in '
                "include/ or src/ — remove the entry or wire the metric up"))
    return findings


def lint_file(path: str, root: str) -> list[Finding]:
    rel = os.path.relpath(path, root)
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [Finding(rel, 0, "MML000", f"unreadable: {e}")]
    return FileScanner(path, text, rel).run()


def collect_files(root: str) -> list[str]:
    files = []
    for d in SOURCE_DIRS:
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, _dirnames, filenames in os.walk(top):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    files.append(os.path.join(dirpath, name))
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("files", nargs="*",
                        help="explicit files (default: scan the tree)")
    args = parser.parse_args(argv)

    files = args.files or collect_files(args.root)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, args.root))
    if not args.files:
        # Whole-tree cross-checks only make sense on full scans; a partial
        # file list would report catalog drift it cannot see the fix for.
        findings.extend(check_mml010(args.root))

    for f in findings:
        print(f)
    if findings:
        print(f"mm_lint: {len(findings)} finding(s)", file=sys.stderr)
    else:
        print("mm_lint: clean", file=sys.stderr)
    return min(len(findings), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
