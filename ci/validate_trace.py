#!/usr/bin/env python3
"""Schema-validate a Perfetto/Chrome trace emitted by mm's TraceRecorder.

Usage: validate_trace.py <trace.json> [<trace.json> ...]

Checks (DESIGN.md §11):
  - the file parses and is either a bare event list or an object with a
    "traceEvents" list;
  - every event has string `ph`, integer `pid`/`tid`, numeric `ts >= 0`;
  - complete spans (`ph == "X"`) carry numeric `dur >= 0`;
  - flow companions (`ph` in s/t/f) carry an integer `id`, and per flow id
    there is exactly one `s`, exactly one `f`, the `s` is the earliest
    event of the flow, and the `f` ends no earlier than every `t` hop
    (no dangling or duplicated flow bindings);
  - span args that bind a span into a flow carry integer `trace_id` and
    `span_id`, and no (trace_id, span_id) pair appears twice (duplicate
    span emission, e.g. from a replayed message that escaped dedup).

Exit status 0 when every file validates, 1 otherwise.
"""
import json
import sys

FLOW_PHASES = ("s", "t", "f")


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, list):
        return doc
    if isinstance(doc, dict) and isinstance(doc.get("traceEvents"), list):
        return doc["traceEvents"]
    raise ValueError("top level must be an event list or "
                     '{"traceEvents": [...]}')


def validate(path):
    errors = []

    def err(i, msg):
        errors.append("%s: event %d: %s" % (path, i, msg))

    try:
        events = load_events(path)
    except (OSError, ValueError) as e:
        return ["%s: %s" % (path, e)]

    flows = {}  # id -> {"s": [ts...], "t": [ts...], "f": [ts...]}
    span_ids = {}  # (trace_id, span_id) -> first event index
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            err(i, "event is not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or len(ph) != 1:
            err(i, "ph must be a one-character string, got %r" % (ph,))
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int) or isinstance(
                    ev.get(key), bool):
                err(i, "%s must be an integer, got %r" % (key, ev.get(key)))
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            err(i, "ts must be a number, got %r" % (ts,))
            continue
        if ts < 0:
            err(i, "ts must be >= 0, got %r" % (ts,))
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool):
                err(i, "X event dur must be a number, got %r" % (dur,))
            elif dur < 0:
                err(i, "X event dur must be >= 0, got %r" % (dur,))
            args = ev.get("args")
            if isinstance(args, dict) and "trace_id" in args:
                for key in ("trace_id", "span_id"):
                    if not isinstance(args.get(key), int):
                        err(i, "args.%s must be an integer, got %r" %
                            (key, args.get(key)))
                key = (args.get("trace_id"), args.get("span_id"))
                if key in span_ids:
                    err(i, "duplicate span (trace_id=%r, span_id=%r), "
                        "first at event %d" % (key[0], key[1], span_ids[key]))
                else:
                    span_ids[key] = i
        elif ph in FLOW_PHASES:
            fid = ev.get("id")
            if not isinstance(fid, int) or isinstance(fid, bool):
                err(i, "flow event id must be an integer, got %r" % (fid,))
                continue
            flows.setdefault(fid, {"s": [], "t": [], "f": []})[ph].append(ts)

    for fid, phases in sorted(flows.items()):
        where = "%s: flow id %d" % (path, fid)
        if len(phases["s"]) != 1:
            errors.append("%s: expected exactly one 's', got %d" %
                          (where, len(phases["s"])))
        if len(phases["f"]) != 1:
            errors.append("%s: expected exactly one 'f', got %d" %
                          (where, len(phases["f"])))
        if len(phases["s"]) == 1 and len(phases["f"]) == 1:
            s_ts, f_ts = phases["s"][0], phases["f"][0]
            if f_ts < s_ts:
                errors.append("%s: 'f' at ts %g precedes 's' at ts %g" %
                              (where, f_ts, s_ts))
            for t_ts in phases["t"]:
                if t_ts < s_ts:
                    errors.append("%s: 't' at ts %g precedes 's' at ts %g" %
                                  (where, t_ts, s_ts))
                if t_ts > f_ts:
                    errors.append("%s: 't' at ts %g follows 'f' at ts %g" %
                                  (where, t_ts, f_ts))
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = validate(path)
        if errors:
            failed = True
            for e in errors:
                print(e, file=sys.stderr)
        else:
            events = load_events(path)
            flow_ids = {ev.get("id") for ev in events
                        if ev.get("ph") in FLOW_PHASES}
            print("%s: OK (%d events, %d flows)" %
                  (path, len(events), len(flow_ids)))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
