#!/usr/bin/env python3
"""Unit tests for ci/mm_lint.py: one positive (finding) and one negative
(clean) fixture per rule, plus the suppression machinery.

Run: python3 ci/test_mm_lint.py
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import mm_lint  # noqa: E402


def lint_snippet(snippet: str, rel: str = "src/core/fake.cc"):
    scanner = mm_lint.FileScanner("/fake/" + rel, snippet, rel)
    return scanner.run()


def rules_of(findings):
    return [f.rule for f in findings]


class Mml001RawSyncTest(unittest.TestCase):
    def test_flags_raw_mutex_in_core(self):
        findings = lint_snippet("#include <mutex>\nstd::mutex mu_;\n")
        self.assertEqual(rules_of(findings), ["MML001", "MML001"])

    def test_flags_lock_guard_and_condvar(self):
        snippet = ("std::lock_guard<std::mutex> lock(mu_);\n"
                   "std::condition_variable cv_;\n")
        self.assertEqual(rules_of(lint_snippet(snippet)),
                         ["MML001", "MML001"])  # one finding per line

    def test_allows_wrappers(self):
        snippet = ('#include "mm/util/mutex.h"\n'
                   "mm::Mutex mu_;\nmm::MutexLock lock(mu_);\n")
        self.assertEqual(lint_snippet(snippet), [])

    def test_util_is_exempt(self):
        findings = lint_snippet("std::mutex mu_;\n",
                                rel="include/mm/util/mutex.h")
        self.assertEqual(findings, [])

    def test_tests_are_exempt(self):
        # Scope is include/ + src/: tests may build raw-primitive fixtures.
        findings = lint_snippet("std::mutex mu_;\n", rel="tests/test_x.cc")
        self.assertEqual(findings, [])

    def test_commented_mention_is_ignored(self):
        findings = lint_snippet("// replaces std::mutex with mm::Mutex\n")
        self.assertEqual(findings, [])


class Mml002PoolLeakTest(unittest.TestCase):
    def test_flags_unreturned_acquire(self):
        snippet = ("void F(PagePool& pool) {\n"
                   "  std::vector<std::uint8_t> buf = pool.Acquire(4096);\n"
                   "  Use(buf);\n"
                   "}\n")
        self.assertEqual(rules_of(lint_snippet(snippet)), ["MML002"])

    def test_pool_return_guard_is_clean(self):
        snippet = ("void F(PagePool& pool) {\n"
                   "  std::vector<std::uint8_t> buf = pool.Acquire(4096);\n"
                   "  PoolReturn guard(pool, buf);\n"
                   "  Use(buf);\n"
                   "}\n")
        self.assertEqual(lint_snippet(snippet), [])

    def test_move_handoff_is_clean(self):
        snippet = ("void F(PagePool& pool_) {\n"
                   "  auto buf = pool_.AcquireZeroed(64);\n"
                   "  task.data = std::move(buf);\n"
                   "}\n")
        self.assertEqual(lint_snippet(snippet), [])

    def test_explicit_release_is_clean(self):
        snippet = ("void F(PagePool& pool) {\n"
                   "  auto buf = pool.Acquire(64);\n"
                   "  pool.Release(std::move(buf));\n"
                   "}\n")
        self.assertEqual(lint_snippet(snippet), [])

    def test_non_pool_acquire_is_ignored(self):
        snippet = ("void F(DistributedLock& dl) {\n"
                   "  dl.Acquire(ctx);\n"
                   "}\n")
        self.assertEqual(lint_snippet(snippet), [])


class Mml003PinBalanceTest(unittest.TestCase):
    def test_flags_unbalanced_pin(self):
        snippet = ("void F() {\n"
                   "  pcache_->Pin(p);\n"
                   "  pcache_->Pin(q);\n"
                   "  pcache_->Unpin(p);\n"
                   "}\n")
        self.assertEqual(rules_of(lint_snippet(snippet)), ["MML003"])

    def test_balanced_file_is_clean(self):
        snippet = ("void F() {\n"
                   "  pcache_->Pin(p);\n"
                   "  pcache_->Unpin(p);\n"
                   "}\n")
        self.assertEqual(lint_snippet(snippet), [])

    def test_pcache_definitions_exempt(self):
        snippet = "void PCache::Pin(std::uint64_t page) {}\n"
        self.assertEqual(
            lint_snippet(snippet, rel="src/core/pcache.cc"), [])


class Mml004HotPathTest(unittest.TestCase):
    def test_flags_check_in_span_subscript(self):
        snippet = ("T& operator[](std::uint64_t i) {\n"
                   "  MM_CHECK(i < n_);\n"
                   "  return *p_;\n"
                   "}\n")
        self.assertEqual(
            rules_of(lint_snippet(snippet, rel="include/mm/core/vector.h")),
            ["MML004"])

    def test_check_free_hot_function_is_clean(self):
        snippet = ("T& operator[](std::uint64_t i) {\n"
                   "  return *p_;\n"
                   "}\n")
        self.assertEqual(
            lint_snippet(snippet, rel="include/mm/core/vector.h"), [])

    def test_flags_check_in_pcache_find(self):
        snippet = ("PageFrame* PCache::Find(std::uint64_t page) {\n"
                   "  MM_CHECK_MSG(page < max_, \"bad page\");\n"
                   "  return nullptr;\n"
                   "}\n")
        self.assertEqual(
            rules_of(lint_snippet(snippet, rel="src/core/pcache.cc")),
            ["MML004"])

    def test_cold_function_in_hot_file_is_clean(self):
        snippet = ("void PCache::Validate() {\n"
                   "  MM_CHECK(frames_.size() <= capacity_);\n"
                   "}\n")
        self.assertEqual(lint_snippet(snippet, rel="src/core/pcache.cc"), [])

    def test_declaration_is_not_a_body(self):
        snippet = "PageFrame* Find(std::uint64_t page);\n"
        self.assertEqual(lint_snippet(snippet, rel="src/core/pcache.cc"), [])


class Mml005VoidDiscardTest(unittest.TestCase):
    def test_flags_bare_discard(self):
        snippet = "void F() {\n  (void)DoThing();\n}\n"
        self.assertEqual(rules_of(lint_snippet(snippet)), ["MML005"])

    def test_same_line_comment_is_clean(self):
        snippet = "void F() {\n  (void)DoThing();  // teardown path\n}\n"
        self.assertEqual(lint_snippet(snippet), [])

    def test_preceding_comment_is_clean(self):
        snippet = ("void F() {\n"
                   "  // Best-effort cleanup; failure only wastes bytes.\n"
                   "  (void)DoThing();\n"
                   "}\n")
        self.assertEqual(lint_snippet(snippet), [])

    def test_void_cast_in_cast_expression_unflagged(self):
        # `(void*)` is a pointer cast, not a discard.
        snippet = "void F() {\n  auto* p = (void*)buf;\n}\n"
        self.assertEqual(lint_snippet(snippet), [])


class Mml006MetricNamesTest(unittest.TestCase):
    def test_flags_wrong_scheme(self):
        snippet = 'void F() {\n  reg.GetCounter("pcache_hits");\n}\n'
        self.assertEqual(rules_of(lint_snippet(snippet)), ["MML006"])

    def test_flags_missing_unit_suffix(self):
        snippet = 'void F() {\n  reg.GetCounter("mm.pcache.hits");\n}\n'
        self.assertEqual(rules_of(lint_snippet(snippet)), ["MML006"])

    def test_flags_uppercase(self):
        snippet = 'void F() {\n  reg.GetGauge("mm.Tier.used_bytes");\n}\n'
        self.assertEqual(rules_of(lint_snippet(snippet)), ["MML006"])

    def test_well_formed_names_are_clean(self):
        snippet = ('void F() {\n'
                   '  reg.GetCounter("mm.pcache.hit_count");\n'
                   '  reg.GetGauge("mm.tier.dram_used_bytes");\n'
                   '  reg.GetHistogram("mm.task.get_page_ns", bounds);\n'
                   '}\n')
        self.assertEqual(lint_snippet(snippet), [])

    def test_multiline_call_is_checked(self):
        snippet = ('void F() {\n'
                   '  reg.GetHistogram(\n'
                   '      "mm.service.fault.latency",\n'
                   '      bounds);\n'
                   '}\n')
        findings = lint_snippet(snippet)
        self.assertEqual(rules_of(findings), ["MML006"])
        self.assertEqual(findings[0].line, 3)

    def test_tests_and_bench_are_exempt(self):
        snippet = 'void F() {\n  reg.GetCounter("whatever");\n}\n'
        self.assertEqual(lint_snippet(snippet, rel="tests/test_x.cc"), [])
        self.assertEqual(lint_snippet(snippet, rel="bench/hotpath.cc"), [])

    def test_non_literal_first_arg_is_ignored(self):
        # Dynamic names can't be validated statically; the catalog review
        # catches them.
        snippet = 'void F() {\n  reg.GetCounter(name);\n}\n'
        self.assertEqual(lint_snippet(snippet), [])


class Mml007AtomicPublishTest(unittest.TestCase):
    def test_flags_direct_open_of_final_path(self):
        snippet = ('void F(const std::string& path) {\n'
                   '  std::ofstream out(path, std::ios::binary);\n'
                   '  out << "x";\n'
                   '}\n')
        findings = lint_snippet(snippet, rel="src/ckpt/manifest.cc")
        self.assertEqual(rules_of(findings), ["MML007"])
        self.assertEqual(findings[0].line, 2)

    def test_tmp_named_path_is_clean(self):
        snippet = ('void F(const std::string& path) {\n'
                   '  std::string tmp = path + ".tmp";\n'
                   '  std::ofstream out(tmp, std::ios::binary);\n'
                   '}\n')
        self.assertEqual(lint_snippet(snippet, rel="src/ckpt/manifest.cc"), [])

    def test_append_mode_is_clean(self):
        # The redo journal IS the write-ahead log: append-mode opens of the
        # journal file are the mechanism, not a violation.
        snippet = ('void F(const std::string& path) {\n'
                   '  std::ofstream out(path,'
                   ' std::ios::binary | std::ios::app);\n'
                   '}\n')
        self.assertEqual(lint_snippet(snippet, rel="src/ckpt/journal.cc"), [])

    def test_renaming_function_is_clean(self):
        snippet = ('void F(const std::string& path, const std::string& f) {\n'
                   '  std::ofstream out(f, std::ios::binary);\n'
                   '  out.close();\n'
                   '  std::filesystem::rename(f, path);\n'
                   '}\n')
        self.assertEqual(lint_snippet(snippet, rel="src/ckpt/manifest.cc"), [])

    def test_non_ckpt_files_are_exempt(self):
        snippet = ('void F(const std::string& path) {\n'
                   '  std::ofstream out(path, std::ios::binary);\n'
                   '}\n')
        self.assertEqual(lint_snippet(snippet, rel="src/storage/stager.cc"),
                         [])

    def test_suppression_applies(self):
        snippet = ('void F(const std::string& path) {\n'
                   '  // mm-lint: allow(MML007 bootstrap file, no readers)\n'
                   '  std::ofstream out(path, std::ios::binary);\n'
                   '}\n')
        self.assertEqual(lint_snippet(snippet, rel="src/ckpt/manifest.cc"), [])


class Mml008UnboundedRecvTest(unittest.TestCase):
    def test_flags_blocking_recv_in_apps(self):
        snippet = ("void F(Communicator& comm) {\n"
                   "  auto tmp = comm.Recv<double>(src, tag);\n"
                   "}\n")
        findings = lint_snippet(snippet, rel="src/apps/gray_scott.cc")
        self.assertEqual(rules_of(findings), ["MML008"])
        self.assertEqual(findings[0].line, 2)

    def test_flags_recv_value_and_recv_bytes(self):
        snippet = ("void F(Communicator* comm) {\n"
                   "  int v = comm->RecvValue<int>(0, 1);\n"
                   "  auto b = comm->RecvBytes(0, 2);\n"
                   "}\n")
        self.assertEqual(rules_of(lint_snippet(snippet)),
                         ["MML008", "MML008"])

    def test_deadline_variants_are_clean(self):
        snippet = ("void F(Communicator& comm) {\n"
                   "  auto a = comm.RecvOr<double>(src, tag);\n"
                   "  auto b = comm.RecvValueOr<int>(0, 1);\n"
                   "  auto c = comm.RecvBytesOr(0, 2);\n"
                   "}\n")
        self.assertEqual(lint_snippet(snippet), [])

    def test_comm_layer_is_exempt(self):
        # The wrappers' own definitions live in comm/.
        snippet = ("std::vector<std::uint8_t> RecvBytes(int src, int tag) {\n"
                   "  auto out = mailbox.RecvBytes(src, tag);\n"
                   "  return out;\n"
                   "}\n")
        self.assertEqual(
            lint_snippet(snippet, rel="include/mm/comm/communicator.h"), [])
        self.assertEqual(
            lint_snippet(snippet, rel="src/comm/communicator.cc"), [])

    def test_tests_are_exempt(self):
        snippet = ("void F(Communicator& comm) {\n"
                   "  int v = comm.RecvValue<int>(0, 1);\n"
                   "}\n")
        self.assertEqual(lint_snippet(snippet, rel="tests/test_comm.cc"), [])

    def test_unrelated_recv_named_method_is_ignored(self):
        # Only the exact Recv/RecvValue/RecvBytes names are unbounded.
        snippet = ("void F(Stats& s) {\n"
                   "  s.RecvCount();\n"
                   "  Recv(x);\n"  # free function, not a comm method
                   "}\n")
        self.assertEqual(lint_snippet(snippet), [])

    def test_suppression_applies(self):
        snippet = ("void F(Communicator& comm) {\n"
                   "  // mm-lint: allow(MML008 bootstrap runs pre-detector)\n"
                   "  auto b = comm.RecvBytes(0, 2);\n"
                   "}\n")
        self.assertEqual(lint_snippet(snippet), [])


class Mml009FrameVersionTest(unittest.TestCase):
    def test_flags_arrow_access_in_core(self):
        snippet = ("void F(PageFrame* frame) {\n"
                   "  std::uint64_t v = frame->version.load();\n"
                   "}\n")
        findings = lint_snippet(snippet, rel="src/core/vector_impl.cc")
        self.assertEqual(rules_of(findings), ["MML009"])
        self.assertEqual(findings[0].line, 2)

    def test_flags_dot_access_and_frame_substring_names(self):
        snippet = ("void F(PageFrame& victim_frame, PageFrame* frame_ptr) {\n"
                   "  auto a = victim_frame.version;\n"
                   "  frame_ptr->version = 7;\n"
                   "}\n")
        self.assertEqual(rules_of(lint_snippet(snippet)),
                         ["MML009", "MML009"])

    def test_flags_in_tests_and_benches_too(self):
        # The guard protocol binds every reader, fixtures included.
        snippet = ("TEST(X, Y) {\n"
                   "  EXPECT_EQ(frame->version.load(), 1u);\n"
                   "}\n")
        self.assertEqual(
            rules_of(lint_snippet(snippet, rel="tests/test_vector.cc")),
            ["MML009"])

    def test_guard_api_is_clean(self):
        snippet = ("void F(const PageFrame& frame) {\n"
                   "  OptimisticGuard g(frame);\n"
                   "  std::uint64_t v = OptimisticGuard::Version(frame);\n"
                   "  OptimisticGuard::SetVersion(frame, v + 1);\n"
                   "  std::uint64_t gv = g.version();\n"
                   "}\n")
        self.assertEqual(lint_snippet(snippet), [])

    def test_implementation_files_are_exempt(self):
        snippet = ("void F(PageFrame* frame) {\n"
                   "  frame->version.store(2, std::memory_order_release);\n"
                   "}\n")
        self.assertEqual(
            lint_snippet(snippet, rel="src/core/pcache.cc"), [])
        self.assertEqual(
            lint_snippet(snippet, rel="include/mm/core/pcache.h"), [])
        self.assertEqual(
            lint_snippet(snippet,
                         rel="include/mm/core/optimistic_guard.h"), [])

    def test_non_frame_version_fields_are_ignored(self):
        # BlobLocation and friends have version fields too; only
        # frame-named identifiers are the seqlock word.
        snippet = ("void F(const BlobLocation& loc, Record* rec) {\n"
                   "  auto a = loc.version;\n"
                   "  auto b = rec->version;\n"
                   "}\n")
        self.assertEqual(lint_snippet(snippet), [])

    def test_suppression_applies(self):
        snippet = ("void F(PageFrame* frame) {\n"
                   "  // mm-lint: allow(MML009 owner thread, no readers yet)\n"
                   "  frame->version = 1;\n"
                   "}\n")
        self.assertEqual(lint_snippet(snippet), [])


class Mml011TreeNodeBytesTest(unittest.TestCase):
    def test_flags_union_arm_access_in_core(self):
        snippet = ("void F(NodeBlock& blk) {\n"
                   "  auto k = blk.leaf.keys[0];\n"
                   "  blk.inner.children[1] = 7;\n"
                   "}\n")
        findings = lint_snippet(snippet)
        self.assertEqual(rules_of(findings), ["MML011", "MML011"])
        self.assertEqual(findings[0].line, 2)

    def test_flags_node_named_identifier_fields(self):
        snippet = ("void F(LeafNode* node, InnerNode& root_node) {\n"
                   "  node->hdr.count = 0;\n"
                   "  auto s = root_node.seps[2];\n"
                   "}\n")
        self.assertEqual(rules_of(lint_snippet(snippet)),
                         ["MML011", "MML011"])

    def test_flags_in_benches_too(self):
        snippet = ("int main() {\n"
                   "  auto f = blk.leaf.fence;\n"
                   "}\n")
        self.assertEqual(rules_of(lint_snippet(snippet, rel="bench/x.cc")),
                        ["MML011"])

    def test_index_subsystem_and_layout_test_are_exempt(self):
        snippet = ("void F(NodeBlock& blk) {\n"
                   "  blk.leaf.keys[0] = 1;\n"
                   "}\n")
        for rel in ("include/mm/index/btree.h", "src/index/metrics.cc",
                    "tests/test_btree.cc"):
            self.assertEqual(lint_snippet(snippet, rel=rel), [], rel)

    def test_api_use_is_clean(self):
        snippet = ("void F(mm::index::BTree<int, int>& tree, NodeRef r) {\n"
                   "  tree.Put(1, 2);\n"
                   "  auto k = r.key(0);\n"
                   "  auto c = r.child(1);\n"
                   "}\n")
        self.assertEqual(lint_snippet(snippet), [])

    def test_suppression_applies(self):
        snippet = ("void F(NodeBlock& blk) {\n"
                   "  // mm-lint: allow(MML011 offline repair tool)\n"
                   "  blk.leaf.keys[0] = 1;\n"
                   "}\n")
        self.assertEqual(lint_snippet(snippet), [])


CATALOG_STUB = ("## 11. Telemetry\n"
                "### Metric catalog\n"
                "| family | metrics |\n"
                "|---|---|\n"
                "| `mm.pcache.*` | `hit_count`, `miss_count` |\n"
                "| `mm.tier.*` | `{dram,nvme}_{read,write}_bytes` |\n"
                "## 12. Next\n")


def write_tree(root: str, design: str, sources: dict):
    """Lays out a fake repo: DESIGN.md plus {relpath: text} source files."""
    with open(os.path.join(root, "DESIGN.md"), "w") as f:
        f.write(design)
    for rel, text in sources.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write(text)


class Mml010CatalogDriftTest(unittest.TestCase):
    def test_expand_token_passthrough_and_braces(self):
        self.assertEqual(mm_lint.expand_token("hit_count"), ["hit_count"])
        self.assertEqual(mm_lint.expand_token("{a,b}_ns"), ["a_ns", "b_ns"])
        self.assertEqual(
            mm_lint.expand_token("{a, b}_{x,y}"),
            ["a_x", "a_y", "b_x", "b_y"])  # whitespace in alternatives ok

    def test_parse_metric_catalog(self):
        names = mm_lint.parse_metric_catalog(CATALOG_STUB)
        self.assertIn("mm.pcache.hit_count", names)
        self.assertIn("mm.tier.nvme_write_bytes", names)
        self.assertEqual(len(names), 2 + 4)
        # Values are 1-based DESIGN.md lines of the family row.
        self.assertEqual(names["mm.pcache.miss_count"], 5)

    def test_parse_missing_section_returns_none(self):
        self.assertIsNone(mm_lint.parse_metric_catalog("## 11\nno table\n"))

    def test_clean_round_trip(self):
        with tempfile.TemporaryDirectory() as root:
            write_tree(root, CATALOG_STUB, {
                "src/core/a.cc":
                    'void F() {\n'
                    '  reg.GetCounter("mm.pcache.hit_count");\n'
                    '  reg.GetCounter("mm.pcache.miss_count");\n'
                    '  reg.GetCounter("mm.tier.dram_read_bytes");\n'
                    '  reg.GetCounter("mm.tier.dram_write_bytes");\n'
                    '  reg.GetCounter("mm.tier.nvme_read_bytes");\n'
                    '  reg.GetCounter("mm.tier.nvme_write_bytes");\n'
                    '}\n'})
            self.assertEqual(mm_lint.check_mml010(root), [])

    def test_flags_metric_missing_from_catalog(self):
        with tempfile.TemporaryDirectory() as root:
            write_tree(root, CATALOG_STUB, {
                "src/core/a.cc":
                    'void F() {\n'
                    '  reg.GetCounter("mm.pcache.hit_count");\n'
                    '  reg.GetCounter("mm.pcache.miss_count");\n'
                    '  reg.GetCounter("mm.tier.dram_read_bytes");\n'
                    '  reg.GetCounter("mm.tier.dram_write_bytes");\n'
                    '  reg.GetCounter("mm.tier.nvme_read_bytes");\n'
                    '  reg.GetCounter("mm.tier.nvme_write_bytes");\n'
                    '  reg.GetCounter("mm.rogue.thing_count");\n'
                    '}\n'})
            findings = mm_lint.check_mml010(root)
            self.assertEqual(rules_of(findings), ["MML010"])
            self.assertEqual(findings[0].path, "src/core/a.cc")
            self.assertEqual(findings[0].line, 8)
            self.assertIn("mm.rogue.thing_count", findings[0].message)

    def test_flags_stale_catalog_entry(self):
        with tempfile.TemporaryDirectory() as root:
            write_tree(root, CATALOG_STUB, {
                "src/core/a.cc":
                    'void F() {\n'
                    '  reg.GetCounter("mm.pcache.hit_count");\n'
                    '  reg.GetCounter("mm.tier.dram_read_bytes");\n'
                    '  reg.GetCounter("mm.tier.dram_write_bytes");\n'
                    '  reg.GetCounter("mm.tier.nvme_read_bytes");\n'
                    '  reg.GetCounter("mm.tier.nvme_write_bytes");\n'
                    '}\n'})  # miss_count documented but never registered
            findings = mm_lint.check_mml010(root)
            self.assertEqual(rules_of(findings), ["MML010"])
            self.assertEqual(findings[0].path, "DESIGN.md")
            self.assertEqual(findings[0].line, 5)
            self.assertIn("mm.pcache.miss_count", findings[0].message)

    def test_missing_catalog_section_is_a_finding(self):
        with tempfile.TemporaryDirectory() as root:
            write_tree(root, "## 11. Telemetry\nprose only\n", {})
            findings = mm_lint.check_mml010(root)
            self.assertEqual(rules_of(findings), ["MML010"])
            self.assertEqual(findings[0].path, "DESIGN.md")

    def test_allow_comment_suppresses_registration(self):
        with tempfile.TemporaryDirectory() as root:
            write_tree(root, CATALOG_STUB, {
                "src/core/a.cc":
                    'void F() {\n'
                    '  reg.GetCounter("mm.pcache.hit_count");\n'
                    '  reg.GetCounter("mm.pcache.miss_count");\n'
                    '  reg.GetCounter("mm.tier.dram_read_bytes");\n'
                    '  reg.GetCounter("mm.tier.dram_write_bytes");\n'
                    '  reg.GetCounter("mm.tier.nvme_read_bytes");\n'
                    '  reg.GetCounter("mm.tier.nvme_write_bytes");\n'
                    '  // mm-lint: allow(MML010 experimental, not in catalog)\n'
                    '  reg.GetCounter("mm.lab.probe_count");\n'
                    '}\n'})
            self.assertEqual(mm_lint.check_mml010(root), [])


class SuppressionTest(unittest.TestCase):
    def test_allow_comment_suppresses_same_line(self):
        snippet = ("std::mutex mu_;  "
                   "// mm-lint: allow(MML001 fixture for wrapper tests)\n")
        self.assertEqual(lint_snippet(snippet), [])

    def test_allow_comment_suppresses_next_line(self):
        snippet = ("// mm-lint: allow(MML001 fixture for wrapper tests)\n"
                   "std::mutex mu_;\n")
        self.assertEqual(lint_snippet(snippet), [])

    def test_allow_without_reason_is_a_finding(self):
        snippet = "std::mutex mu_;  // mm-lint: allow(MML001)\n"
        rules = rules_of(lint_snippet(snippet))
        self.assertIn("MML001", rules)  # reasonless allow does not suppress

    def test_allow_only_covers_named_rule(self):
        snippet = ("// mm-lint: allow(MML005 audited)\n"
                   "std::mutex mu_;\n")
        self.assertEqual(rules_of(lint_snippet(snippet)), ["MML001"])


class StripperTest(unittest.TestCase):
    def test_preserves_offsets(self):
        text = 'a = "x{y}"; // std::mutex\nb;\n'
        stripped = mm_lint.strip_comments_and_strings(text)
        self.assertEqual(len(stripped), len(text))
        self.assertEqual(stripped.count("\n"), text.count("\n"))
        self.assertNotIn("mutex", stripped)
        self.assertNotIn("{", stripped)


class TreeTest(unittest.TestCase):
    def test_repo_tree_is_clean(self):
        root = os.path.dirname(
            os.path.dirname(os.path.abspath(mm_lint.__file__)))
        findings = []
        for path in mm_lint.collect_files(root):
            findings.extend(mm_lint.lint_file(path, root))
        self.assertEqual([str(f) for f in findings], [])

    def test_repo_catalog_matches_code(self):
        root = os.path.dirname(
            os.path.dirname(os.path.abspath(mm_lint.__file__)))
        self.assertEqual(
            [str(f) for f in mm_lint.check_mml010(root)], [])


if __name__ == "__main__":
    unittest.main()
