#!/usr/bin/env python3
"""Offline analysis for mm Perfetto traces (DESIGN.md §11).

Every cross-node operation is a *flow*: the origin span (the caller's
stall, emitting flow `s`) plus downstream hop spans on other ranks, all
sharing `args.trace_id`. This tool reconstructs those causal chains from
the JSON alone — no access to the live service needed.

Usage:
  trace_tools.py chains <trace.json> [--top N]
      Reconstruct every flow chain and print the N longest by end-to-end
      latency (first span start to last span end), with the per-hop
      breakdown: rank, span name, category, start, duration.

  trace_tools.py critpath <trace.json>
      Aggregate stall attribution across all chains, the offline twin of
      the in-process mm.critpath.* counters: for every sync-origin flow,
      the origin's duration decomposed into network (origin wait not
      covered by downstream task time) and serviced time, plus bare
      fault/coherence spans. Prints one summary table.
"""
import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        return doc.get("traceEvents", [])
    return doc


def collect_chains(events):
    """Group X spans by trace_id; return {trace_id: [span, ...]} sorted by
    (ts, span_id). Also returns {flow_id: set(phases)} from companions."""
    chains = defaultdict(list)
    flow_phases = defaultdict(set)
    for ev in events:
        ph = ev.get("ph")
        if ph == "X":
            args = ev.get("args") or {}
            tid = args.get("trace_id")
            if isinstance(tid, int):
                chains[tid].append(ev)
        elif ph in ("s", "t", "f"):
            fid = ev.get("id")
            if isinstance(fid, int):
                flow_phases[fid].add(ph)
    for spans in chains.values():
        spans.sort(key=lambda e: (e["ts"], (e.get("args") or {})
                                  .get("span_id", 0)))
    return chains, flow_phases


def chain_latency(spans):
    start = min(e["ts"] for e in spans)
    end = max(e["ts"] + e.get("dur", 0.0) for e in spans)
    return start, end - start


def cmd_chains(args):
    events = load_events(args.trace)
    chains, flow_phases = collect_chains(events)
    if not chains:
        print("no flow chains found (no X spans with args.trace_id)")
        return 1
    ranked = sorted(chains.items(),
                    key=lambda kv: chain_latency(kv[1])[1], reverse=True)
    print("%d chains; showing %d longest by end-to-end latency\n" %
          (len(ranked), min(args.top, len(ranked))))
    for tid, spans in ranked[:args.top]:
        start, lat = chain_latency(spans)
        origin = spans[0]
        phases = "".join(sorted(flow_phases.get(tid, set())))
        print("trace_id %d  %-12s  %d hop(s)  %.3f us end-to-end  "
              "flow phases [%s]" %
              (tid, origin["name"], len(spans), lat, phases))
        for e in spans:
            print("    rank %d  %-14s %-10s ts=%-12.3f dur=%.3f us" %
                  (e.get("pid", -1), e["name"], e.get("cat", ""),
                   e["ts"], e.get("dur", 0.0)))
        print()
    return 0


def cmd_critpath(args):
    events = load_events(args.trace)
    chains, flow_phases = collect_chains(events)
    network = device = queue = coherence = 0.0
    sync_flows = 0
    for tid, spans in chains.items():
        phases = flow_phases.get(tid, set())
        origin = spans[0]
        # A sync origin emits both its own 's' and its own 'f'; async
        # origins leave the 'f' to the terminal hop on another rank. We
        # can't see flow_ph offline, so use the in-process rule's
        # observable twin: the origin is sync iff its span end equals the
        # latest 'f'-capable end... simpler and equivalent for mm traces:
        # fault/flush-with-wait origins have dur > 0 and downstream task
        # spans nested within; async commit origins have dur == 0.
        wait = origin.get("dur", 0.0)
        if "s" not in phases or wait <= 0.0:
            continue
        sync_flows += 1
        task = sum(e.get("dur", 0.0) for e in spans[1:]
                   if e.get("cat") == "task")
        dev = sum(e.get("dur", 0.0) for e in spans[1:]
                  if e.get("cat") == "stager")
        net = max(0.0, wait - task)
        budget = wait - net
        scale = budget / task if task > 0 else 0.0
        dev = min(dev, task)
        network += net
        device += dev * scale
        queue += (task - dev) * scale
    for ev in events:
        if ev.get("ph") != "X":
            continue
        if (ev.get("args") or {}).get("trace_id") is not None:
            continue
        if ev.get("cat") == "coherence":
            coherence += ev.get("dur", 0.0)
        elif ev.get("cat") == "fault":
            network += ev.get("dur", 0.0)
    total = network + device + queue + coherence
    print("critical-path attribution over %d sync flow(s):" % sync_flows)
    for label, val in (("queue_wait", queue), ("network", network),
                       ("device", device), ("coherence", coherence)):
        pct = 100.0 * val / total if total > 0 else 0.0
        print("  %-10s %12.3f us  %5.1f%%" % (label, val, pct))
    print("  %-10s %12.3f us" % ("total", total))
    return 0


def main(argv):
    p = argparse.ArgumentParser(description=__doc__)
    sub = p.add_subparsers(dest="cmd", required=True)
    pc = sub.add_parser("chains")
    pc.add_argument("trace")
    pc.add_argument("--top", type=int, default=10)
    pc.set_defaults(fn=cmd_chains)
    pk = sub.add_parser("critpath")
    pk.add_argument("trace")
    pk.set_defaults(fn=cmd_critpath)
    args = p.parse_args(argv[1:])
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
