#!/usr/bin/env python3
"""Unit tests for ci/mm_verify.py: fixture C++ snippets per rule, plus the
repo-tree-is-clean gate. Mirrors ci/test_mm_lint.py.

Usage: python3 ci/test_mm_verify.py
"""

from __future__ import annotations

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import mm_verify  # noqa: E402


def verify(files: dict[str, str], rules=None, dot_path=None, depth=3):
    model = mm_verify.build_model(sorted(files.items()))
    kwargs = {"dot_path": dot_path, "call_depth": depth}
    if rules is not None:
        kwargs["rules"] = rules
    return model, mm_verify.run_rules(model, **kwargs)


def findings_for(files: dict[str, str], rule: str, **kw):
    _, fs = verify(files, **kw)
    return [f for f in fs if f.rule == rule]


# ---------------------------------------------------------------------------
# MML101: lock ordering
# ---------------------------------------------------------------------------

CYCLE_FIXTURE = {
    "include/mm/x/ab.h": """
namespace mm::x {
class B;
class A {
 public:
  void Foo(B& b);
  void TakeA() { MutexLock lock(mu_); }
  Mutex mu_;
};
class B {
 public:
  void Bar(A& a);
  void TakeB() { MutexLock lock(mu_); }
  Mutex mu_;
};
}  // namespace mm::x
""",
    "src/x/ab.cc": """
namespace mm::x {
void A::Foo(B& b) {
  MutexLock lock(mu_);
  b.TakeB();
}
void B::Bar(A& a) {
  MutexLock lock(mu_);
  a.TakeA();
}
}  // namespace mm::x
""",
}


class TestMML101LockOrder(unittest.TestCase):
    def test_cycle_detected(self):
        fs = findings_for(CYCLE_FIXTURE, "MML101")
        cycles = [f for f in fs if "cycle" in f.message]
        self.assertEqual(len(cycles), 1, fs)
        self.assertIn("mm::x::A::mu_", cycles[0].message)
        self.assertIn("mm::x::B::mu_", cycles[0].message)
        # Both witness paths are present.
        self.assertIn("src/x/ab.cc", cycles[0].message)

    def test_cycle_edges_also_undeclared(self):
        fs = findings_for(CYCLE_FIXTURE, "MML101")
        undeclared = [f for f in fs if "not declared" in f.message]
        self.assertEqual(len(undeclared), 2, fs)

    def test_dag_with_declarations_is_clean(self):
        files = {
            "include/mm/x/ab.h": """
namespace mm::x {
class B {
 public:
  void TakeB() { MutexLock lock(mu_); }
  Mutex mu_;
};
class A {
 public:
  void Foo(B& b) {
    MutexLock lock(mu_);
    b.TakeB();
  }
  Mutex mu_ MM_ACQUIRED_BEFORE(B::mu_);
};
}  // namespace mm::x
""",
        }
        self.assertEqual(findings_for(files, "MML101"), [])

    def test_acquired_after_covers_the_pair(self):
        files = {
            "include/mm/x/ab.h": """
namespace mm::x {
class B {
 public:
  void TakeB() { MutexLock lock(mu_); }
  Mutex mu_ MM_ACQUIRED_AFTER(A::mu_);
};
class A {
 public:
  void Foo(B& b) {
    MutexLock lock(mu_);
    b.TakeB();
  }
  Mutex mu_;
};
}  // namespace mm::x
""",
        }
        self.assertEqual(findings_for(files, "MML101"), [])

    def test_undeclared_nested_pair_flagged(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class Inner {
 public:
  Mutex mu_;
};
class Outer {
 public:
  void Go(Inner& in) {
    MutexLock lock(mu_);
    MutexLock inner(in.mu_);
  }
  Mutex mu_;
};
}  // namespace mm::x
""",
        }
        fs = findings_for(files, "MML101")
        self.assertEqual(len(fs), 1, fs)
        self.assertIn("MM_ACQUIRED_BEFORE", fs[0].message)

    def test_leaf_lock_waives_declaration(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class Inner {
 public:
  // mm-verify: leaf-lock(fixture utility lock)
  Mutex mu_;
};
class Outer {
 public:
  void Go(Inner& in) {
    MutexLock lock(mu_);
    MutexLock inner(in.mu_);
  }
  Mutex mu_;
};
}  // namespace mm::x
""",
        }
        self.assertEqual(findings_for(files, "MML101"), [])

    def test_self_deadlock_via_callee(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class A {
 public:
  void Inner() { MutexLock lock(mu_); }
  void Outer() {
    MutexLock lock(mu_);
    Inner();
  }
  Mutex mu_;
};
}  // namespace mm::x
""",
        }
        fs = findings_for(files, "MML101")
        self.assertEqual(len(fs), 1, fs)
        self.assertIn("re-acquired", fs[0].message)

    def test_early_unlock_trims_scope(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class A {
 public:
  void Inner() { MutexLock lock(mu_); }
  void Outer() {
    MutexLock lock(mu_);
    lock.Unlock();
    Inner();
  }
  Mutex mu_;
};
}  // namespace mm::x
""",
        }
        self.assertEqual(findings_for(files, "MML101"), [])

    def test_two_level_callee_chain(self):
        files = {
            "src/x/chain.cc": """
namespace mm::x {
class Queue {
 public:
  void Push() { MutexLock lock(mu_); }
  Mutex mu_;
};
class Runtime {
 public:
  void Submit() { q_.Push(); }
  Queue q_;
};
class Svc {
 public:
  void Fault() {
    MutexLock lock(mu_);
    rt_.Submit();
  }
  Mutex mu_;
  Runtime rt_;
};
}  // namespace mm::x
""",
        }
        fs = findings_for(files, "MML101")
        self.assertEqual(len(fs), 1, fs)
        self.assertIn("via Submit", fs[0].message)
        self.assertIn("Queue::mu_", fs[0].message)

    def test_declaration_naming_unknown_mutex(self):
        files = {
            "include/mm/x/a.h": """
namespace mm::x {
class A {
 public:
  Mutex mu_ MM_ACQUIRED_BEFORE(Nope::mu_);
};
}  // namespace mm::x
""",
        }
        fs = findings_for(files, "MML101")
        self.assertEqual(len(fs), 1, fs)
        self.assertIn("unknown mutex", fs[0].message)

    def test_declared_only_cycle_detected(self):
        files = {
            "include/mm/x/a.h": """
namespace mm::x {
class B {
 public:
  Mutex mu_ MM_ACQUIRED_BEFORE(A::mu_);
};
class A {
 public:
  Mutex mu_ MM_ACQUIRED_BEFORE(B::mu_);
};
}  // namespace mm::x
""",
        }
        fs = findings_for(files, "MML101")
        cycles = [f for f in fs if "cycle" in f.message]
        self.assertEqual(len(cycles), 1, fs)
        self.assertIn("declared at", cycles[0].message)


class TestLockHierarchyDot(unittest.TestCase):
    def test_dot_written_with_observed_and_declared_edges(self):
        files = dict(CYCLE_FIXTURE)
        with tempfile.TemporaryDirectory() as td:
            path = os.path.join(td, "lock_hierarchy.dot")
            verify(files, dot_path=path)
            with open(path) as f:
                dot = f.read()
        self.assertIn("digraph lock_hierarchy", dot)
        self.assertIn('"mm::x::A::mu_" -> "mm::x::B::mu_"', dot)
        self.assertIn('"mm::x::B::mu_" -> "mm::x::A::mu_"', dot)
        self.assertIn("src/x/ab.cc", dot)


# ---------------------------------------------------------------------------
# MML102: guarded-field escapes
# ---------------------------------------------------------------------------

class TestMML102GuardedEscape(unittest.TestCase):
    def test_return_address_of_guarded_field(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class A {
 public:
  int* Leak() {
    MutexLock lock(mu_);
    return &count_;
  }
  Mutex mu_;
  int count_ MM_GUARDED_BY(mu_);
};
}  // namespace mm::x
""",
        }
        fs = findings_for(files, "MML102")
        self.assertEqual(len(fs), 1, fs)
        self.assertIn("escapes via return", fs[0].message)

    def test_reference_return_of_guarded_field(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class A {
 public:
  int& Leak() {
    MutexLock lock(mu_);
    return count_;
  }
  Mutex mu_;
  int count_ MM_GUARDED_BY(mu_);
};
}  // namespace mm::x
""",
        }
        fs = findings_for(files, "MML102")
        self.assertEqual(len(fs), 1, fs)
        self.assertIn("returned by reference", fs[0].message)

    def test_value_return_is_fine(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class A {
 public:
  int Copy() {
    MutexLock lock(mu_);
    return count_;
  }
  Mutex mu_;
  int count_ MM_GUARDED_BY(mu_);
};
}  // namespace mm::x
""",
        }
        self.assertEqual(findings_for(files, "MML102"), [])

    def test_store_into_longer_lived_object(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
struct Sink { int* p; };
class A {
 public:
  void Stash(Sink* sink) {
    MutexLock lock(mu_);
    sink->p = &count_;
  }
  Mutex mu_;
  int count_ MM_GUARDED_BY(mu_);
};
}  // namespace mm::x
""",
        }
        fs = findings_for(files, "MML102")
        self.assertEqual(len(fs), 1, fs)
        self.assertIn("outlives the lock scope", fs[0].message)

    def test_deferred_lambda_capture_by_reference(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class A {
 public:
  void Defer(Runtime& rt) {
    MutexLock lock(mu_);
    rt.Submit([&] { count_ += 1; });
  }
  Mutex mu_;
  int count_ MM_GUARDED_BY(mu_);
};
}  // namespace mm::x
""",
        }
        fs = findings_for(files, "MML102")
        self.assertEqual(len(fs), 1, fs)
        self.assertIn("deferred sink Submit", fs[0].message)

    def test_immediate_lambda_not_flagged(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class A {
 public:
  void Inline() {
    MutexLock lock(mu_);
    auto bump = [&] { count_ += 1; };
    bump();
  }
  Mutex mu_;
  int count_ MM_GUARDED_BY(mu_);
};
}  // namespace mm::x
""",
        }
        self.assertEqual(findings_for(files, "MML102"), [])

    def test_suppression(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class A {
 public:
  int* Leak() {
    // mm-verify: allow(MML102 fixture-approved escape)
    return &count_;
  }
  Mutex mu_;
  int count_ MM_GUARDED_BY(mu_);
};
}  // namespace mm::x
""",
        }
        self.assertEqual(findings_for(files, "MML102"), [])


# ---------------------------------------------------------------------------
# MML103: seqlock discipline
# ---------------------------------------------------------------------------

class TestMML103Seqlock(unittest.TestCase):
    def test_store_bytes_outside_guard(self):
        files = {
            "src/x/w.cc": """
namespace mm::x {
class W {
 public:
  void Write(PageFrame* frame) {
    OptimisticGuard::StoreBytes(*frame, 0, src_, 8);
  }
  char* src_;
};
}  // namespace mm::x
""",
        }
        fs = findings_for(files, "MML103")
        self.assertEqual(len(fs), 1, fs)
        self.assertIn("StoreBytes", fs[0].message)

    def test_store_bytes_inside_guard_ok(self):
        files = {
            "src/x/w.cc": """
namespace mm::x {
class W {
 public:
  void Write(PageFrame* frame) {
    FrameWriteGuard wg(frame);
    OptimisticGuard::StoreBytes(*frame, 0, src_, 8);
  }
  char* src_;
};
}  // namespace mm::x
""",
        }
        self.assertEqual(findings_for(files, "MML103"), [])

    def test_raw_memcpy_into_frame_outside_guard(self):
        files = {
            "src/x/w.cc": """
namespace mm::x {
class W {
 public:
  void Write(PageFrame* frame, const char* src) {
    std::memcpy(frame->data.data(), src, 8);
  }
};
}  // namespace mm::x
""",
        }
        fs = findings_for(files, "MML103")
        self.assertEqual(len(fs), 1, fs)
        self.assertIn("memcpy", fs[0].message)

    def test_bytes_store_outside_guard(self):
        files = {
            "src/x/w.cc": """
namespace mm::x {
class W {
 public:
  void Publish(PageFrame* frame, unsigned char* p) {
    frame->bytes.store(p);
  }
};
}  // namespace mm::x
""",
        }
        fs = findings_for(files, "MML103")
        self.assertEqual(len(fs), 1, fs)

    def test_seqlock_implementation_exempt(self):
        files = {
            "src/core/pcache.cc": """
namespace mm::core {
class PCache {
 public:
  void Write(PageFrame* frame) {
    OptimisticGuard::StoreBytes(*frame, 0, src_, 8);
  }
  char* src_;
};
}  // namespace mm::core
""",
        }
        self.assertEqual(findings_for(files, "MML103"), [])

    def test_deref_on_validate_failure_path(self):
        files = {
            "src/x/r.cc": """
namespace mm::x {
class R {
 public:
  int Read(OptimisticGuard& g) {
    int value = 0;
    g.ReadBytes(0, &value, 4);
    if (!g.Validate()) {
      return value;
    }
    return value;
  }
};
}  // namespace mm::x
""",
        }
        fs = findings_for(files, "MML103")
        self.assertEqual(len(fs), 1, fs)
        self.assertIn("Validate()-failed", fs[0].message)

    def test_retry_without_use_is_clean(self):
        files = {
            "src/x/r.cc": """
namespace mm::x {
class R {
 public:
  int Read(OptimisticGuard& g) {
    int value = 0;
    g.ReadBytes(0, &value, 4);
    if (!g.Validate()) {
      retries_ += 1;
      return 0;
    }
    return value;
  }
  int retries_;
};
}  // namespace mm::x
""",
        }
        self.assertEqual(findings_for(files, "MML103"), [])


# ---------------------------------------------------------------------------
# MML104: determinism
# ---------------------------------------------------------------------------

class TestMML104Determinism(unittest.TestCase):
    def snippet(self, rel, line):
        return {rel: f"namespace mm {{\nvoid F() {{ {line} }}\n}}\n"}

    def test_wall_clock_in_src(self):
        fs = findings_for(self.snippet(
            "src/core/f.cc",
            "auto t = std::chrono::steady_clock::now();"), "MML104")
        self.assertEqual(len(fs), 1, fs)
        self.assertIn("wall clock", fs[0].message)

    def test_system_clock_in_header(self):
        fs = findings_for(self.snippet(
            "include/mm/core/f.h",
            "auto t = std::chrono::system_clock::now();"), "MML104")
        self.assertEqual(len(fs), 1, fs)

    def test_sim_dir_exempt(self):
        fs = findings_for(self.snippet(
            "src/sim/clock.cc",
            "auto t = std::chrono::steady_clock::now();"), "MML104")
        self.assertEqual(fs, [])

    def test_bench_allowlist_exempt(self):
        fs = findings_for(self.snippet(
            "bench/hotpath.cc",
            "auto t = std::chrono::steady_clock::now();"), "MML104")
        self.assertEqual(fs, [])

    def test_non_allowlisted_bench_flagged(self):
        fs = findings_for(self.snippet(
            "bench/other.cc",
            "auto t = std::chrono::high_resolution_clock::now();"), "MML104")
        self.assertEqual(len(fs), 1, fs)

    def test_rand_flagged(self):
        fs = findings_for(self.snippet(
            "src/core/f.cc", "int r = rand();"), "MML104")
        self.assertEqual(len(fs), 1, fs)

    def test_std_rand_flagged(self):
        fs = findings_for(self.snippet(
            "src/core/f.cc", "int r = std::rand();"), "MML104")
        self.assertEqual(len(fs), 1, fs)

    def test_random_device_flagged(self):
        fs = findings_for(self.snippet(
            "src/core/f.cc", "std::random_device rd;"), "MML104")
        self.assertEqual(len(fs), 1, fs)

    def test_time_null_flagged(self):
        fs = findings_for(self.snippet(
            "src/core/f.cc", "auto t = time(nullptr);"), "MML104")
        self.assertEqual(len(fs), 1, fs)

    def test_seeded_engine_ok(self):
        fs = findings_for(self.snippet(
            "src/core/f.cc", "std::mt19937_64 rng(seed);"), "MML104")
        self.assertEqual(fs, [])

    def test_tests_dir_out_of_scope(self):
        fs = findings_for(self.snippet(
            "tests/f_test.cc", "int r = rand();"), "MML104")
        self.assertEqual(fs, [])

    def test_suppression(self):
        files = {"src/core/f.cc": (
            "namespace mm {\nvoid F() {\n"
            "  // mm-verify: allow(MML104 fixture-approved wall clock)\n"
            "  auto t = std::chrono::steady_clock::now();\n}\n}\n")}
        self.assertEqual(findings_for(files, "MML104"), [])


# ---------------------------------------------------------------------------
# MML002/MML003 AST editions
# ---------------------------------------------------------------------------

class TestMML002PoolDataflow(unittest.TestCase):
    def test_leaked_buffer_flagged(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class A {
 public:
  void Leak() {
    auto buf = pool_.Acquire(4096);
    buf[0] = 1;
  }
  PagePool pool_;
};
}  // namespace mm::x
""",
        }
        fs = findings_for(files, "MML002")
        self.assertEqual(len(fs), 1, fs)
        self.assertIn("buf", fs[0].message)

    def test_pool_return_guard_ok(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class A {
 public:
  void Guarded() {
    auto buf = pool_.Acquire(4096);
    PoolReturn ret(pool_, buf);
    buf[0] = 1;
  }
  PagePool pool_;
};
}  // namespace mm::x
""",
        }
        self.assertEqual(findings_for(files, "MML002"), [])

    def test_move_handoff_ok(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class A {
 public:
  void Move() {
    auto buf = pool_.AcquireZeroed(4096);
    Consume(std::move(buf));
  }
  PagePool pool_;
};
}  // namespace mm::x
""",
        }
        self.assertEqual(findings_for(files, "MML002"), [])

    def test_member_store_handoff_ok(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class A {
 public:
  void Stash(Outcome& out) {
    out.data = pool_.AcquireZeroed(4096);
  }
  PagePool pool_;
};
}  // namespace mm::x
""",
        }
        self.assertEqual(findings_for(files, "MML002"), [])

    def test_return_handoff_ok(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class A {
 public:
  Buf Take() {
    auto buf = pool_.Acquire(4096);
    return buf;
  }
  PagePool pool_;
};
}  // namespace mm::x
""",
        }
        self.assertEqual(findings_for(files, "MML002"), [])


class TestMML003PinBalance(unittest.TestCase):
    def test_unbalanced_class_flagged(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class A {
 public:
  void Grab() { cache_->Pin(page_); }
  PCache* cache_;
  int page_;
};
}  // namespace mm::x
""",
        }
        fs = findings_for(files, "MML003")
        self.assertEqual(len(fs), 1, fs)
        self.assertIn("1 Pin vs 0 Unpin", fs[0].message)

    def test_balanced_across_methods_ok(self):
        files = {
            "src/x/a.cc": """
namespace mm::x {
class A {
 public:
  void Grab() { cache_->Pin(page_); }
  void Drop() { cache_->Unpin(page_); }
  PCache* cache_;
  int page_;
};
}  // namespace mm::x
""",
        }
        self.assertEqual(findings_for(files, "MML003"), [])

    def test_balanced_across_files_ok(self):
        # The AST edition tallies per class, so a Pin in the header and the
        # matching Unpin in the .cc must balance (mm_lint's per-file count
        # would flag both files).
        files = {
            "include/mm/x/a.h": """
namespace mm::x {
class A {
 public:
  void Grab() { cache_->Pin(page_); }
  void Drop();
  PCache* cache_;
  int page_;
};
}  // namespace mm::x
""",
            "src/x/a.cc": """
namespace mm::x {
void A::Drop() { cache_->Unpin(page_); }
}  // namespace mm::x
""",
        }
        self.assertEqual(findings_for(files, "MML003"), [])


# ---------------------------------------------------------------------------
# Suppression hygiene + repo gate
# ---------------------------------------------------------------------------

class TestSuppressions(unittest.TestCase):
    def test_reasonless_suppression_is_a_finding(self):
        files = {"src/x/a.cc": "// mm-verify: allow(MML104)\n"}
        _, fs = verify(files)
        self.assertEqual(len(fs), 1, fs)
        self.assertIn("without a reason", fs[0].message)

    def test_mm_lint_spelling_accepted(self):
        files = {"src/core/f.cc": (
            "namespace mm {\nvoid F() {\n"
            "  // mm-lint: allow(MML104 shared suppression spelling)\n"
            "  auto t = std::chrono::steady_clock::now();\n}\n}\n")}
        self.assertEqual(findings_for(files, "MML104"), [])


class TestRepoTreeClean(unittest.TestCase):
    def test_repo_is_clean(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        with tempfile.TemporaryDirectory() as td:
            rc = mm_verify.main(
                ["--root", root, "--frontend", "auto",
                 "--dot", os.path.join(td, "lock_hierarchy.dot")])
            self.assertEqual(rc, 0)

    def test_repo_observes_known_hierarchy(self):
        # The annotated contract must stay anchored to reality: these edges
        # are observed in today's tree and should remain in the model.
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        file_texts = []
        for path in mm_verify.collect_tree(root):
            rel = os.path.relpath(path, root)
            with open(path, encoding="utf-8", errors="replace") as f:
                file_texts.append((rel, f.read()))
        model = mm_verify.build_model(file_texts)
        summaries = mm_verify.compute_summaries(model, 3)
        edges = {(e.src, e.dst)
                 for e in mm_verify.observed_edges(model, summaries)}
        self.assertIn(("mm::storage::BufferManager::mu_",
                       "mm::storage::TierStore::mu_"), edges)
        self.assertIn(("mm::core::Service::vectors_mu_",
                       "mm::core::VectorMeta::backend_mu"), edges)
        self.assertIn(("mm::core::Service::inflight_mu_",
                       "mm::BlockingQueue::mu_"), edges)
        # The index subsystem's SMO lease sits above the distributed lock
        # and the service internals (DESIGN.md §15): its MM_ACQUIRED_BEFORE
        # declaration must resolve (no MML101 unresolved-ref findings) and
        # keep these edges in the declared contract.
        declared, unresolved = mm_verify.declared_edges(model)
        self.assertEqual(unresolved, [], unresolved)
        declared_pairs = {(e.src, e.dst) for e in declared}
        for dst in ("mm::comm::DistributedLock::mu_",
                    "mm::core::Service::vectors_mu_",
                    "mm::core::Service::inflight_mu_",
                    "mm::BlockingQueue::mu_"):
            self.assertIn(("mm::index::BTreeBase::smo_mu_", dst),
                          declared_pairs)


if __name__ == "__main__":
    unittest.main(verbosity=2)
