#!/usr/bin/env python3
"""Perf-smoke gate: fail when a BENCH_*.json report regresses past a gate.

Usage: check_perf.py CURRENT.json [BASELINE.json] [--threshold 0.25]

Two report kinds are gated, keyed by the report's "name":

  hotpath        wall-clock per-access metrics compared against the
                 checked-in baseline (BASELINE.json is required). Only
                 regressions fail; improvements just print. Eviction
                 flatness and pool recycling are machine-independent and
                 asserted absolutely.
  ckpt_recovery  crash/restore invariants, all machine-independent and
                 absolute (no baseline needed): checkpoint overhead must
                 stay under 10% of the epoch time, and the restored run
                 must reproduce bit-identical results.
  node_failure   node-death recovery invariants, also absolute: the run
                 must converge despite a rank killed mid-epoch, no page
                 may be lost, and the recovery/retransmission overheads
                 must stay bounded.
  readpath       optimistic read fast path (DESIGN.md §14): the hit ratio
                 and p99 speedup over the queue path are self-relative, so
                 they gate absolutely on any machine — no baseline needed.
  bfs            Graph500-style BFS: the traversal must match the reference
                 depths exactly, and TEPS (virtual clock) must hold a floor.
  fig7_tiering   critical-path attribution coverage (DESIGN.md §11): every
                 analyzed epoch's attributed stall must fit inside the
                 measured stall (coverage in [1.0, 1.05]) and must be
                 non-degenerate. Virtual clock, so machine-independent.
  ycsb           mm::BTree ordered index (DESIGN.md §15): the read-heavy
                 mix's p99 Get speedup over its queue-path-only ablation is
                 self-relative wall clock (>= 3x), scans must come back in
                 exact sorted order, the DSM run must match its std::map
                 oracle bit-exactly across 3 seeds, and the optimistic
                 restart rate must stay under 5%.
"""

import argparse
import json
import sys

# Metrics gated relative to the baseline (lower is better).
RELATIVE_METRICS = ["scalar_ns_per_access", "span_ns_per_access"]

# Machine-independent invariants: (key, max allowed value).
ABSOLUTE_CEILINGS = [
    # O(1) eviction: per-eviction cost across an 8x resident-frame spread
    # must stay flat. The pre-rewrite full scan sat near 8.
    ("eviction_cost_flatness", 2.0),
    # Pooled payloads: once warm, page-task buffers must be recycled.
    ("task_allocs_per_op", 0.5),
]

# Telemetry must stay off the per-element fast path: tracing may add at
# most this fraction of the scalar access cost, with an absolute noise
# floor (best-of-reps wall-clock still jitters ~0.1 ns at these scales).
TELEMETRY_MAX_FRACTION = 0.02
TELEMETRY_NOISE_FLOOR_NS = 0.1

# ckpt_recovery gates (virtual-clock, so machine-independent): per-epoch
# checkpoint cost must stay under 10% of the epoch itself (ISSUE 5), and the
# crash-restored run must land on bit-identical centroids.
CKPT_CEILINGS = [
    ("ckpt_overhead_fraction", 0.10),
]
CKPT_EXACT = [
    ("restore_identical", 1.0),
]

# node_failure gates (virtual-clock, machine-independent). A rank is killed
# mid-epoch (ISSUE 6): survivors must detect, fence, re-home, and converge.
# Ceilings are generous multiples of observed values (~1e-4 recovery
# fraction, ~0.017 retransmit overhead, ~1e-14 centroid divergence).
NODE_FAILURE_CEILINGS = [
    ("recovery_time_fraction", 0.30),
    ("retransmit_overhead", 0.10),
    # Survivor centroids may diverge from the fault-free run only by
    # reduce-tree reassociation (4-rank vs 3-rank trees).
    ("max_centroid_diff", 1e-6),
]
NODE_FAILURE_EXACT = [
    ("converged", 1.0),
    ("pages_lost", 0.0),
]

# readpath gates (ISSUE 7). hit_ratio and retry_rate are pure counters;
# p99_speedup is the queue path's wall-clock p99 over the optimistic path's
# on the SAME machine in the SAME run, so it is machine-independent enough
# to gate absolutely: the fast path must be >= 3x better at 8 readers.
READPATH_CEILINGS = [
    ("retry_rate", 0.05),
]
READPATH_FLOORS = [
    ("hit_ratio", 0.95),
    ("p99_speedup", 3.0),
]

# bfs gates: exact correctness (depths identical to the in-memory
# reference) plus a TEPS floor on the virtual clock (observed ~1.2e7;
# machine-independent). Losing read-only replication or the fast path's
# round-trip savings drags TEPS well below this.
BFS_FLOORS = [
    ("teps", 5.0e6),
]
BFS_EXACT = [
    ("bfs_identical", 1.0),
]

# fig7_tiering critical-path gates (ISSUE 9). coverage = (compute +
# max(stall, attributed)) / (compute + stall) per epoch on the virtual
# clock: 1.0 means every attributed nanosecond fits inside the measured
# stall; above 1.0 the analyzer over-attributed. The 5% headroom only
# covers origin spans straddling epoch edges. At least one epoch must be
# analyzed, and attribution must be non-degenerate (all-zero buckets also
# produce coverage 1.0, so gate the attributed sum too).
FIG7_CEILINGS = [
    ("critpath_coverage_max", 1.05),
]
FIG7_FLOORS = [
    ("critpath_coverage_min", 1.0),
    ("critpath_epochs", 1.0),
    ("critpath_attributed_ms", 1.0),
]

# ycsb gates (ISSUE 10). p99_get_speedup is the queue-path ablation's
# wall-clock p99 Get latency over the latch-free run's, same machine and
# process, so it gates absolutely like readpath's. restart_rate counts
# optimistic descent restarts over all latch-free descents; the exact
# gates are pure correctness bits computed by the harness.
YCSB_CEILINGS = [
    ("restart_rate", 0.05),
]
YCSB_FLOORS = [
    ("p99_get_speedup", 3.0),
]
YCSB_EXACT = [
    ("scan_sorted", 1.0),
    ("oracle_identical", 1.0),
]


def metric(report: dict, key: str) -> float:
    """Reads a metric from the unified schema ({"metrics": {...}}), falling
    back to the flat pre-unification layout."""
    if "metrics" in report and key in report["metrics"]:
        return report["metrics"][key]
    return report[key]


def gate_hotpath(current: dict, baseline: dict, threshold: float) -> bool:
    failed = False
    for key in RELATIVE_METRICS:
        cur, base = metric(current, key), metric(baseline, key)
        ratio = cur / base if base > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            failed = True
        print(f"{key}: {cur:.3f} vs baseline {base:.3f} "
              f"({ratio - 1.0:+.1%}) {status}")

    for key, ceiling in ABSOLUTE_CEILINGS:
        cur = metric(current, key)
        status = "ok"
        if cur > ceiling:
            status = f"FAIL (> {ceiling})"
            failed = True
        print(f"{key}: {cur:.3f} (ceiling {ceiling}) {status}")

    try:
        overhead = metric(current, "telemetry_overhead_ns")
    except KeyError:
        overhead = None
    if overhead is not None:
        ceiling = max(TELEMETRY_NOISE_FLOOR_NS,
                      TELEMETRY_MAX_FRACTION
                      * metric(current, "scalar_ns_per_access"))
        status = "ok"
        if overhead > ceiling:
            status = f"FAIL (> {ceiling:.3f})"
            failed = True
        print(f"telemetry_overhead_ns: {overhead:.3f} "
              f"(ceiling {ceiling:.3f}) {status}")
    return failed


def gate_absolute(current: dict, ceilings, exact, floors=()) -> bool:
    failed = False
    for key, ceiling in ceilings:
        cur = metric(current, key)
        status = "ok"
        if cur > ceiling:
            status = f"FAIL (> {ceiling})"
            failed = True
        print(f"{key}: {cur:.4g} (ceiling {ceiling}) {status}")
    for key, floor in floors:
        cur = metric(current, key)
        status = "ok"
        if cur < floor:
            status = f"FAIL (< {floor})"
            failed = True
        print(f"{key}: {cur:.4g} (floor {floor}) {status}")
    for key, expected in exact:
        cur = metric(current, key)
        status = "ok"
        if cur != expected:
            status = f"FAIL (!= {expected})"
            failed = True
        print(f"{key}: {cur} (expected {expected}) {status}")
    return failed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline", nargs="?", default=None,
                        help="baseline report (required for hotpath)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed relative regression (default 0.25)")
    args = parser.parse_args()

    with open(args.current) as f:
        current = json.load(f)

    name = current.get("name", "hotpath")
    if name == "ckpt_recovery":
        failed = gate_absolute(current, CKPT_CEILINGS, CKPT_EXACT)
    elif name == "node_failure":
        failed = gate_absolute(current, NODE_FAILURE_CEILINGS,
                               NODE_FAILURE_EXACT)
    elif name == "readpath":
        failed = gate_absolute(current, READPATH_CEILINGS, [],
                               floors=READPATH_FLOORS)
    elif name == "bfs":
        failed = gate_absolute(current, [], BFS_EXACT, floors=BFS_FLOORS)
    elif name == "fig7_tiering":
        failed = gate_absolute(current, FIG7_CEILINGS, [],
                               floors=FIG7_FLOORS)
    elif name == "ycsb":
        failed = gate_absolute(current, YCSB_CEILINGS, YCSB_EXACT,
                               floors=YCSB_FLOORS)
    else:
        if args.baseline is None:
            print("a baseline report is required for hotpath gating",
                  file=sys.stderr)
            return 2
        with open(args.baseline) as f:
            baseline = json.load(f)
        failed = gate_hotpath(current, baseline, args.threshold)

    if failed:
        print("perf smoke FAILED", file=sys.stderr)
        return 1
    print("perf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
