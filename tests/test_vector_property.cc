// Property suite: mm::Vector must behave exactly like a reference
// std::vector under randomized operation sequences, across a sweep of page
// sizes, pcache bounds, coherence modes, and service configurations.
#include <gtest/gtest.h>

#include <tuple>

#include "mm/mega_mmap.h"
#include "mm/util/rng.h"

namespace mm {
namespace {

using core::CoherenceMode;

struct PropertyParam {
  std::uint64_t page_size;
  std::uint64_t pcache_pages;  // pcache = pages * page_size
  CoherenceMode mode;
  bool prefetch;
};

class VectorModelTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(VectorModelTest, RandomOpsMatchReferenceModel) {
  const PropertyParam& p = GetParam();
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::ServiceOptions so;
  so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(2)},
                    {sim::TierKind::kNvme, MEGABYTES(16)}};
  so.enable_prefetch = p.prefetch;
  core::Service svc(cluster.get(), so);

  const std::uint64_t n = 3000;
  auto result = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
    core::VectorOptions vo;
    vo.page_size = p.page_size;
    vo.pcache_bytes = p.pcache_pages * p.page_size;
    vo.mode = p.mode;
    vo.nonvolatile = false;
    Vector<std::uint32_t> v(svc, ctx, "model_vec", n, vo);
    std::vector<std::uint32_t> model(n, 0);
    Rng rng(p.page_size ^ p.pcache_pages ^ static_cast<int>(p.mode));

    for (int round = 0; round < 6; ++round) {
      // Write phase: random subranges set through a write transaction.
      {
        auto tx = v.SeqTxBegin(0, n, core::MM_WRITE_ONLY);
        for (int w = 0; w < 40; ++w) {
          std::uint64_t lo = rng.NextBounded(n);
          std::uint64_t len = 1 + rng.NextBounded(64);
          for (std::uint64_t i = lo; i < std::min(n, lo + len); ++i) {
            std::uint32_t val = static_cast<std::uint32_t>(rng.Next());
            v[i] = val;
            model[i] = val;
          }
        }
        v.TxEnd();
      }
      // Read phase: full scan must match the model exactly.
      {
        auto tx = v.SeqTxBegin(0, n, core::MM_READ_ONLY);
        for (std::uint64_t i = 0; i < n; ++i) {
          ASSERT_EQ(v.Read(i), model[i])
              << "round " << round << " elem " << i;
        }
        v.TxEnd();
      }
      // Spot writes outside any transaction (Set path).
      for (int s = 0; s < 10; ++s) {
        std::uint64_t i = rng.NextBounded(n);
        std::uint32_t val = static_cast<std::uint32_t>(rng.Next());
        v.Set(i, val);
        model[i] = val;
      }
      v.Commit();
    }
    // pcache never exceeds its bound.
    EXPECT_LE(v.pcache().used(), vo.pcache_bytes);
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VectorModelTest,
    ::testing::Values(
        PropertyParam{512, 2, CoherenceMode::kReadWriteGlobal, true},
        PropertyParam{512, 8, CoherenceMode::kReadWriteGlobal, false},
        PropertyParam{4096, 2, CoherenceMode::kReadWriteGlobal, true},
        PropertyParam{4096, 4, CoherenceMode::kLocal, true},
        PropertyParam{4096, 4, CoherenceMode::kWriteOnlyGlobal, false},
        PropertyParam{16384, 3, CoherenceMode::kReadWriteGlobal, true},
        PropertyParam{65536, 2, CoherenceMode::kReadWriteGlobal, true},
        PropertyParam{100, 4, CoherenceMode::kReadWriteGlobal, true}));

/// Multi-rank exclusive-partition property: under every mode that permits
/// writes, concurrent non-overlapping writers never corrupt each other,
/// for page sizes that force page sharing between ranks.
class SharedPageTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(SharedPageTest, NonOverlappingWritersSurvivePageSharing) {
  auto [page_size, nranks] = GetParam();
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::ServiceOptions so;
  so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(8)}};
  core::Service svc(cluster.get(), so);
  const std::uint64_t n = 4096;  // smaller than one page for big pages
  auto result = comm::RunRanks(
      *cluster, nranks, (nranks + 1) / 2, [&](comm::RankContext& ctx) {
        comm::Communicator comm(&ctx);
        core::VectorOptions vo;
        vo.page_size = page_size;
        vo.pcache_bytes = std::max<std::uint64_t>(4 * page_size, 16384);
        vo.nonvolatile = false;
        Vector<std::uint64_t> v(svc, ctx, "shared_page_vec", n, vo);
        v.Pgas(ctx.rank(), ctx.size());
        auto tx = v.SeqTxBegin(v.local_off(), v.local_size(),
                               core::MM_WRITE_ONLY);
        for (std::uint64_t i = v.local_off();
             i < v.local_off() + v.local_size(); ++i) {
          v[i] = (static_cast<std::uint64_t>(ctx.rank()) << 32) | i;
        }
        v.TxEnd();
        comm.Barrier();
        // Everyone verifies the whole vector.
        auto rtx = v.SeqTxBegin(0, n, core::MM_READ_ONLY);
        for (std::uint64_t i = 0; i < n; ++i) {
          std::uint64_t expect_rank = 0;
          {
            std::uint64_t base = n / ctx.size(), rem = n % ctx.size();
            // Find the owning rank of element i.
            for (int r = 0; r < ctx.size(); ++r) {
              std::uint64_t lo = r * base + std::min<std::uint64_t>(r, rem);
              std::uint64_t cnt =
                  base + (static_cast<std::uint64_t>(r) < rem ? 1 : 0);
              if (i >= lo && i < lo + cnt) {
                expect_rank = r;
                break;
              }
            }
          }
          ASSERT_EQ(v.Read(i), (expect_rank << 32) | i) << "elem " << i;
        }
        v.TxEnd();
      });
  ASSERT_TRUE(result.ok()) << result.error;
}

INSTANTIATE_TEST_SUITE_P(
    PagesAndRanks, SharedPageTest,
    ::testing::Combine(
        // 64 KiB pages make every page span multiple ranks' partitions.
        ::testing::Values<std::uint64_t>(1024, 8192, 65536),
        ::testing::Values(2, 3, 4)));

}  // namespace
}  // namespace mm
