// End-to-end KMeans tests: MegaMmap and Spark-style implementations versus
// the single-threaded reference, across rank counts.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <unistd.h>

#include "mm/apps/datagen.h"
#include "mm/apps/kmeans.h"
#include "mm/apps/reference.h"
#include "mm/mega_mmap.h"

namespace mm::apps {
namespace {

class KMeansTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mm_kmeans_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    gen_.num_particles = 6000;
    gen_.halos = 4;
    gen_.halo_sigma = 4.0;
    gen_.seed = 42;
    key_ = "posix://" + (dir_ / "pts.bin").string();
    auto truth = GenerateToBackend(gen_, key_);
    ASSERT_TRUE(truth.ok());
    truth_ = *truth;
    GenerateParticles(gen_, &particles_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  KMeansConfig Config() {
    KMeansConfig cfg;
    cfg.k = 4;
    cfg.max_iter = 4;
    cfg.seed = 5;
    cfg.page_size = 16 * 1024;
    cfg.pcache_bytes = 256 * 1024;
    return cfg;
  }

  core::ServiceOptions SvcOptions() {
    core::ServiceOptions so;
    so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(8)},
                      {sim::TierKind::kNvme, MEGABYTES(32)}};
    return so;
  }

  std::filesystem::path dir_;
  DatagenConfig gen_;
  DatagenTruth truth_;
  std::vector<Particle> particles_;
  std::string key_;
};

TEST_F(KMeansTest, MegaMatchesReferenceSingleRank) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  core::Service svc(cluster.get(), SvcOptions());
  KMeansResult result;
  auto run = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    result = KMeansMega(svc, comm, key_, Config());
  });
  ASSERT_TRUE(run.ok()) << run.error;
  // The reference trajectory from the SAME initial centroids must agree.
  std::vector<Point3> pts;
  for (const auto& p : particles_) pts.push_back(p.pos);
  // Recover initial centroids by running zero Lloyd iterations through the
  // full pipeline: cross-check via inertia instead (the centroids should
  // sit near distinct halo centers).
  for (const auto& c : result.centroids) {
    double best = 1e18;
    for (const auto& h : truth_.halo_centers) best = std::min(best, Dist(c, h));
    EXPECT_LT(best, 3.0) << "centroid far from every halo";
  }
  double ref_inertia = ReferenceInertia(pts, result.centroids);
  EXPECT_NEAR(result.inertia, ref_inertia, ref_inertia * 1e-4);
}

TEST_F(KMeansTest, MegaIndependentOfRankCount) {
  auto centroids_for = [&](int nranks, int per_node) {
    auto cluster = sim::Cluster::PaperTestbed(
        (nranks + per_node - 1) / per_node);
    core::Service svc(cluster.get(), SvcOptions());
    KMeansResult result;
    auto run = comm::RunRanks(*cluster, nranks, per_node,
                              [&](comm::RankContext& ctx) {
                                comm::Communicator comm(&ctx);
                                auto r = KMeansMega(svc, comm, key_, Config());
                                if (ctx.rank() == 0) result = r;
                              });
    EXPECT_TRUE(run.ok()) << run.error;
    return result;
  };
  auto r1 = centroids_for(1, 1);
  auto r4 = centroids_for(4, 2);
  // Same candidate reduction -> same trajectory (modulo fp reduction
  // order); centroids should agree closely and inertia almost exactly.
  EXPECT_NEAR(r1.inertia, r4.inertia, r1.inertia * 1e-3);
}

TEST_F(KMeansTest, SparkMatchesMega) {
  KMeansResult mega, spark;
  {
    auto cluster = sim::Cluster::PaperTestbed(2);
    core::Service svc(cluster.get(), SvcOptions());
    auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      auto r = KMeansMega(svc, comm, key_, Config());
      if (ctx.rank() == 0) mega = r;
    });
    ASSERT_TRUE(run.ok()) << run.error;
  }
  {
    auto cluster = std::make_unique<sim::Cluster>(
        2, sim::NodeSpec::PaperCompute(), sim::NetworkSpec::Tcp10(),
        TERABYTES(1));
    auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      sparklike::SparkEnv env(ctx);
      auto r = KMeansSpark(env, comm, key_, Config());
      if (ctx.rank() == 0) spark = r;
    });
    ASSERT_TRUE(run.ok()) << run.error;
  }
  ASSERT_EQ(mega.centroids.size(), spark.centroids.size());
  for (std::size_t j = 0; j < mega.centroids.size(); ++j) {
    EXPECT_NEAR(mega.centroids[j].x, spark.centroids[j].x, 1e-3);
    EXPECT_NEAR(mega.centroids[j].y, spark.centroids[j].y, 1e-3);
    EXPECT_NEAR(mega.centroids[j].z, spark.centroids[j].z, 1e-3);
  }
  EXPECT_NEAR(mega.inertia, spark.inertia, mega.inertia * 1e-3);
}

TEST_F(KMeansTest, SparkSlowerAndHungrierThanMega) {
  // Fig. 5's claim, at a compute-dominant scale (the paper's datasets are
  // 2 GB/node; DSM bookkeeping washes out and Spark pays its JVM factor and
  // copies): Spark takes longer (virtual time) and uses several times the
  // DRAM actually consumed by MegaMmap's caches.
  DatagenConfig big = gen_;
  big.num_particles = 80000;
  std::string big_key = "posix://" + (dir_ / "big.bin").string();
  ASSERT_TRUE(GenerateToBackend(big, big_key).ok());
  std::uint64_t dataset_bytes = big.num_particles * sizeof(Particle);
  // Production-tuned page/pcache sizes (the tiny ones elsewhere exist to
  // exercise paging, not to be fast).
  KMeansConfig cfg = Config();
  cfg.page_size = 256 * 1024;
  cfg.pcache_bytes = 2 * 1024 * 1024;
  // Enough iterations that the compute gap (Spark's JVM factor) dominates
  // the run-to-run queueing noise of the device channels.
  cfg.max_iter = 10;

  sim::SimTime mega_time = 0, spark_time = 0;
  std::uint64_t mega_used = 0, spark_peak = 0;
  {
    auto cluster = sim::Cluster::PaperTestbed(2);
    core::Service svc(cluster.get(), SvcOptions());
    auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      KMeansMega(svc, comm, big_key, cfg);
    });
    ASSERT_TRUE(run.ok()) << run.error;
    mega_time = run.max_time;
    // MegaMmap's actual memory: the scache pages it cached (one copy of
    // the touched data) plus the bounded pcaches.
    mega_used = svc.ScacheDramUsed() + 4 * cfg.pcache_bytes;
  }
  {
    auto cluster = std::make_unique<sim::Cluster>(
        2, sim::NodeSpec::PaperCompute(), sim::NetworkSpec::Tcp10(),
        TERABYTES(1));
    auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      sparklike::SparkEnv env(ctx);
      KMeansSpark(env, comm, big_key, cfg);
    });
    ASSERT_TRUE(run.ok()) << run.error;
    spark_time = run.max_time;
    spark_peak = cluster->node(0).dram_peak() + cluster->node(1).dram_peak();
  }
  EXPECT_GT(spark_time, mega_time);
  // Spark held >= 2x the dataset (block cache + objects + stage copies).
  EXPECT_GE(spark_peak, 2 * dataset_bytes);
  // MegaMmap held about one copy of the dataset in the scache plus its
  // bounded pcaches — well under Spark's footprint relative to data size.
  EXPECT_LT(mega_used - 4 * cfg.pcache_bytes, 2 * dataset_bytes);
}

TEST_F(KMeansTest, PersistsAssignments) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  core::Service svc(cluster.get(), SvcOptions());
  KMeansConfig cfg = Config();
  cfg.assign_key = "posix://" + (dir_ / "assign.bin").string();
  KMeansResult result;
  auto run = comm::RunRanks(*cluster, 2, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    auto r = KMeansMega(svc, comm, key_, cfg);
    if (ctx.rank() == 0) result = r;
  });
  ASSERT_TRUE(run.ok()) << run.error;
  svc.Shutdown();
  // Assignments must exist on disk and agree with the returned centroids.
  auto resolved =
      storage::StagerRegistry::Default().Resolve(cfg.assign_key);
  ASSERT_TRUE(resolved.ok());
  auto size = resolved->first->Size(resolved->second);
  ASSERT_TRUE(size.ok());
  ASSERT_EQ(*size, gen_.num_particles * sizeof(std::int32_t));
  std::vector<std::uint8_t> raw;
  ASSERT_TRUE(resolved->first->Read(resolved->second, 0, *size, &raw).ok());
  const auto* assign = reinterpret_cast<const std::int32_t*>(raw.data());
  int mismatches = 0;
  for (std::uint64_t i = 0; i < gen_.num_particles; ++i) {
    if (assign[i] != NearestCentroid(particles_[i].pos, result.centroids)) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0);
}

TEST_F(KMeansTest, BoundedMemoryStillCorrect) {
  // Paper Listing 1: BoundMemory(MEGABYTES(1)); tighten to force eviction.
  auto cluster = sim::Cluster::PaperTestbed(1);
  core::Service svc(cluster.get(), SvcOptions());
  KMeansConfig cfg = Config();
  cfg.pcache_bytes = 2 * cfg.page_size;  // 2 pages only
  KMeansResult result;
  auto run = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    result = KMeansMega(svc, comm, key_, cfg);
  });
  ASSERT_TRUE(run.ok()) << run.error;
  EXPECT_GT(result.evictions, 0u);
  std::vector<Point3> pts;
  for (const auto& p : particles_) pts.push_back(p.pos);
  double ref_inertia = ReferenceInertia(pts, result.centroids);
  EXPECT_NEAR(result.inertia, ref_inertia, ref_inertia * 1e-4);
}

}  // namespace
}  // namespace mm::apps
