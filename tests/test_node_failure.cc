// Death-matrix tests (DESIGN.md §13): a rank dies mid-collective, while
// parked in a barrier / barrier serial section, and mid-epoch with DSM
// state on the dead node; plus a healed partition. Every scenario must
// terminate (bounded receives + failure detector — no hangs), survivors
// must converge through Revoke → CollectiveRecover/ShrinkAfterFailure, and
// recovery must either re-home or roll back the dead node's pages per
// core::RecoveryPolicy.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <string_view>
#include <thread>
#include <unistd.h>
#include <vector>

#include "mm/ckpt/collective.h"
#include "mm/ckpt/journal.h"
#include "mm/ckpt/recovery.h"
#include "mm/comm/communicator.h"
#include "mm/comm/launch.h"
#include "mm/core/service.h"
#include "mm/sim/cluster.h"
#include "mm/sim/fault.h"
#include "mm/sim/network.h"
#include "mm/util/byte_units.h"
#include "mm/util/hash.h"

namespace mm {
namespace {

using sim::TierKind;

std::uint64_t FaultSeed() {
  const char* env = std::getenv("MM_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 42;
}

// ---------------------------------------------------------------------------
// Mid-collective death
// ---------------------------------------------------------------------------

TEST(NodeDeath, MidCollectiveDeathShrinksAndContinues) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  comm::WorldOptions wo;
  wo.kill.rank = 2;
  wo.kill.after_comm_ops = 5;  // dies inside an early AllReduce
  std::atomic<int> recovered{0};
  auto result =
      comm::RunRanks(*cluster, 4, 2, wo, [&](comm::RankContext& ctx) {
        comm::Communicator comm(&ctx);
        auto sum = [](int a, int b) { return a + b; };
        Status st = Status::Ok();
        for (int iter = 0; iter < 64; ++iter) {
          std::vector<int> v = {ctx.rank() + 1};
          st = comm.AllReduceOr(v, sum);
          if (!st.ok()) break;
          // A collective that reports success always delivered the full sum.
          EXPECT_EQ(v[0], 10);
        }
        // Every survivor gets a typed verdict instead of hanging.
        ASSERT_FALSE(st.ok());
        EXPECT_EQ(st.code(), StatusCode::kPeerDead) << st.ToString();
        comm.Revoke();
        auto shrunk = comm.ShrinkAfterFailure();
        ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
        EXPECT_EQ(ctx.world().live_ranks(), 3);
        EXPECT_GE(ctx.world().membership_epoch(), 1u);
        // Life goes on without the dead rank.
        std::vector<int> v = {ctx.rank() + 1};
        ASSERT_TRUE(shrunk->AllReduceOr(v, sum).ok());
        EXPECT_EQ(v[0], 1 + 2 + 4);  // ranks 0, 1, 3
        recovered.fetch_add(1);
      });
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.dead_ranks, std::vector<int>{2});
  EXPECT_EQ(recovered.load(), 3);
}

TEST(NodeDeath, DetectorChargesLatencyAndCountsMisses) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  comm::WorldOptions wo;
  wo.kill.rank = 1;
  wo.kill.after_comm_ops = 1;  // dies at its very first comm op
  auto result =
      comm::RunRanks(*cluster, 2, 2, wo, [&](comm::RankContext& ctx) {
        comm::Communicator comm(&ctx);
        if (ctx.rank() == 0) {
          auto r = comm.RecvValueOr<int>(1, /*tag=*/3);
          ASSERT_FALSE(r.ok());
          EXPECT_EQ(r.status().code(), StatusCode::kPeerDead);
          EXPECT_NE(r.status().message().find("missed heartbeats"),
                    std::string::npos);
          // The verdict is not free: the detector charges
          // heartbeat_interval * miss_threshold of virtual time past the
          // death.
          comm::World& world = ctx.world();
          ASSERT_TRUE(world.RankDead(1));
          EXPECT_GE(ctx.clock().now(),
                    world.DeathTime(1) + world.detector().DetectionLatency());
#if MM_TELEMETRY_ENABLED
          EXPECT_EQ(world.metrics()
                        .GetCounter("mm.net.heartbeat_miss_count")
                        ->value(),
                    static_cast<std::uint64_t>(
                        world.detector().miss_threshold));
#endif
        } else {
          comm.SendValue<int>(0, /*tag=*/3, 42);  // never executes the send
          ADD_FAILURE() << "killed rank survived its trigger";
        }
      });
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.dead_ranks, std::vector<int>{1});
}

// ---------------------------------------------------------------------------
// Death while parked in a barrier
// ---------------------------------------------------------------------------

TEST(NodeDeath, RankKilledWhileParkedInBarrierReleasesSurvivors) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  std::atomic<bool> parked{false};
  auto result = comm::RunRanks(*cluster, 3, 3, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    if (ctx.rank() == 0) {
      parked.store(true);
      comm.Barrier();  // killed while (most likely) parked here
      ADD_FAILURE() << "dead rank returned from barrier";
    } else if (ctx.rank() == 1) {
      while (!parked.load()) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ctx.world().KillRank(0, ctx.clock().now());
      comm.Barrier();
    } else {
      comm.Barrier();
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;  // survivors released, no hang
  EXPECT_EQ(result.dead_ranks, std::vector<int>{0});
}

TEST(NodeDeath, BarrierSerialSurvivesParkedDeath) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  std::atomic<bool> parked{false};
  std::atomic<int> serial_runs{0};
  auto result = comm::RunRanks(*cluster, 3, 3, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    std::function<sim::SimTime(sim::SimTime)> serial =
        [&](sim::SimTime sync) -> sim::SimTime {
      serial_runs.fetch_add(1);
      return sync;
    };
    if (ctx.rank() == 1) {
      parked.store(true);
      (void)comm.BarrierSerial(serial);  // dies parked; unwinds via throw
      ADD_FAILURE() << "dead rank returned from barrier serial section";
    } else {
      if (ctx.rank() == 2) {
        while (!parked.load()) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ctx.world().KillRank(1, ctx.clock().now());
      }
      EXPECT_TRUE(comm.BarrierSerial(serial).ok());
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.dead_ranks, std::vector<int>{1});
  // The leader election still elects exactly one survivor.
  EXPECT_EQ(serial_runs.load(), 1);
}

// ---------------------------------------------------------------------------
// Healed partition
// ---------------------------------------------------------------------------

TEST(NodeDeath, HealedPartitionConvergesWithoutCasualties) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  sim::NetFaultSpec spec;
  spec.partition_boundary = 1;  // node 0 | node 1
  spec.partition_start_s = 0.0;
  spec.partition_heal_s = 0.002;
  cluster->network().ConfigureFaults(spec, FaultSeed());
  auto result = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    for (int iter = 0; iter < 4; ++iter) {
      std::vector<int> v = {ctx.rank() + 1};
      comm.AllReduce(v, [](int a, int b) { return a + b; });
      EXPECT_EQ(v[0], 10);
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;
  // Cross-partition messages were held until the heal, not lost: the job
  // paid for the outage in virtual time and nobody was declared dead.
  EXPECT_GT(cluster->network().partition_holds(), 0u);
  EXPECT_GE(result.max_time, spec.partition_heal_s);
}

// ---------------------------------------------------------------------------
// Mid-epoch death with DSM state on the dead node
// ---------------------------------------------------------------------------

class NodeFailureCkptTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kPage = 4096;
  static constexpr std::uint64_t kPages = 8;

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mm_nodefail_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  static std::vector<std::uint8_t> Pattern(std::size_t n, std::uint64_t salt) {
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::uint8_t>((salt * 131 + i) & 0xFF);
    }
    return out;
  }

  std::unique_ptr<core::Service> MakeService(core::RecoveryPolicy policy) {
    clusters_.push_back(sim::Cluster::PaperTestbed(2));
    core::ServiceOptions so;
    so.tier_grants = {{TierKind::kDram, 128 * kKiB},
                      {TierKind::kNvme, MEGABYTES(4)}};
    so.ckpt.dir = (dir_ / "ckpt").string();
    so.recovery_policy = policy;
    // Every death / data-loss verdict must leave a postmortem artifact.
    so.telemetry.flightrec_dir = dir_.string();
    return std::make_unique<core::Service>(clusters_.back().get(), so);
  }

  /// `flightrec_<rank>.json` exists and is a parseable record naming the
  /// dump reason, with the span ring and a metrics snapshot attached.
  void ExpectFlightRecord(int rank, std::string_view reason) {
    std::filesystem::path path =
        dir_ / ("flightrec_" + std::to_string(rank) + ".json");
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    std::ifstream in(path);
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json[json.find_last_not_of('\n')], '}');
    EXPECT_NE(json.find("\"reason\":\"" + std::string(reason) + "\""),
              std::string::npos)
        << json.substr(0, 200);
    EXPECT_NE(json.find("\"spans\":["), std::string::npos);
    EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  }

  StatusOr<core::VectorMeta*> Register(core::Service& svc) {
    core::VectorOptions vo;
    vo.page_size = kPage;
    return svc.RegisterVector("posix://" + (dir_ / "v.bin").string(), 1, vo,
                              kPages * kPage);
  }

  std::filesystem::path dir_;
  std::vector<std::unique_ptr<sim::Cluster>> clusters_;
};

TEST_F(NodeFailureCkptTest, RehomePolicyRestagesCleanPagesOfDeadNode) {
  auto svc = MakeService(core::RecoveryPolicy::kRehome);
  sim::Cluster& cluster = *clusters_.back();
  core::Service::RecoveryStats stats;
  comm::WorldOptions wo;
  // Flight-recorder wiring: a rank kill dumps the dying node's postmortem
  // the moment the death registers (one rank per node here: rank == node).
  wo.death_observer = [&](int rank, sim::SimTime now) {
    svc->DumpFlightRecord(static_cast<std::size_t>(rank), "rank_kill", now);
  };
  auto run = comm::RunRanks(cluster, 2, 1, wo, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    auto meta = Register(*svc);
    ASSERT_TRUE(meta.ok());
    // Each rank dirties its half of the pages from its own node.
    std::uint64_t begin = ctx.rank() == 0 ? 0 : kPages / 2;
    std::uint64_t end = ctx.rank() == 0 ? kPages / 2 : kPages;
    sim::SimTime t = ctx.clock().now();
    for (std::uint64_t p = begin; p < end; ++p) {
      auto out =
          svc->WriteRegion(**meta, p, 0, Pattern(kPage, 100 + p), ctx.node(), t)
              .get();
      ASSERT_TRUE(out.status.ok());
      t = std::max(t, out.done);
    }
    ctx.clock().AdvanceTo(t);
    // The epoch checkpoint makes every page clean and durable.
    auto ck = ckpt::CollectiveCheckpoint(comm, *svc, "e1");
    ASSERT_TRUE(ck.ok()) << ck.status().message();
    if (ctx.rank() == 1) {
      ctx.world().KillRank(1, ctx.clock().now());
      throw comm::RankDeathError(1);
    }
    // Survivor: the next collective surfaces the death instead of hanging.
    Status st = comm.BarrierOr();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kPeerDead);
    comm.Revoke();
    auto rec = ckpt::CollectiveRecover(comm, *svc);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    stats = *rec;
    EXPECT_TRUE(svc->NodeFenced(1));
    // Every page — including the ones homed on the dead node — reads back
    // the exact pre-death bytes via lazy backend re-stage.
    sim::SimTime t2 = ctx.clock().now();
    for (std::uint64_t p = 0; p < kPages; ++p) {
      sim::SimTime done = t2;
      auto page = svc->ReadPage(**meta, p, 0, t2, &done);
      ASSERT_TRUE(page.ok()) << "page " << p << ": "
                             << page.status().message();
      EXPECT_EQ(*page, Pattern(kPage, 100 + p)) << "page " << p;
      t2 = std::max(t2, done);
    }
    EXPECT_EQ(svc->data_loss_count(), 0u);
  });
  ASSERT_TRUE(run.ok()) << run.error;
  EXPECT_EQ(run.dead_ranks, std::vector<int>{1});
  ExpectFlightRecord(1, "rank_kill");
  EXPECT_EQ(stats.pages_scanned, kPages);
  EXPECT_GT(stats.rehomed, 0u);  // clean primaries on node 1
  EXPECT_EQ(stats.lost, 0u);
#if MM_TELEMETRY_ENABLED
  EXPECT_EQ(svc->metrics(0).GetCounter("mm.recovery.rehomed_count")->value(),
            stats.rehomed);
  EXPECT_EQ(
      svc->metrics(0).GetCounter("mm.recovery.data_loss_count")->value(), 0u);
#endif
}

TEST_F(NodeFailureCkptTest, RollbackPolicyRestoresLastCheckpoint) {
  auto svc = MakeService(core::RecoveryPolicy::kRollback);
  sim::Cluster& cluster = *clusters_.back();
  auto run = comm::RunRanks(cluster, 2, 1, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    auto meta = Register(*svc);
    ASSERT_TRUE(meta.ok());
    std::uint64_t begin = ctx.rank() == 0 ? 0 : kPages / 2;
    std::uint64_t end = ctx.rank() == 0 ? kPages / 2 : kPages;
    sim::SimTime t = ctx.clock().now();
    for (std::uint64_t p = begin; p < end; ++p) {
      auto out =
          svc->WriteRegion(**meta, p, 0, Pattern(kPage, 100 + p), ctx.node(), t)
              .get();
      ASSERT_TRUE(out.status.ok());
      t = std::max(t, out.done);
    }
    ctx.clock().AdvanceTo(t);
    auto ck = ckpt::CollectiveCheckpoint(comm, *svc, "e1");
    ASSERT_TRUE(ck.ok()) << ck.status().message();
    // Diverge past the epoch: these writes are the work the rollback
    // deliberately discards.
    t = ctx.clock().now();
    for (std::uint64_t p = begin; p < end; ++p) {
      auto out =
          svc->WriteRegion(**meta, p, 0, Pattern(kPage, 500 + p), ctx.node(), t)
              .get();
      ASSERT_TRUE(out.status.ok());
      t = std::max(t, out.done);
    }
    ctx.clock().AdvanceTo(t);
    if (ctx.rank() == 1) {
      ctx.world().KillRank(1, ctx.clock().now());
      throw comm::RankDeathError(1);
    }
    Status st = comm.BarrierOr();
    ASSERT_FALSE(st.ok());
    comm.Revoke();
    // Rollback without naming a checkpoint is a typed config error.
    auto bad = ckpt::CollectiveRecover(comm, *svc);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);
    auto rec = ckpt::CollectiveRecover(comm, *svc, "e1");
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_TRUE(svc->NodeFenced(1));
    // The whole vector is back at epoch e1 — the survivor's own post-epoch
    // writes are gone too (consistent cut, DESIGN.md §13).
    sim::SimTime t2 = ctx.clock().now();
    for (std::uint64_t p = 0; p < kPages; ++p) {
      sim::SimTime done = t2;
      auto page = svc->ReadPage(**meta, p, 0, t2, &done);
      ASSERT_TRUE(page.ok()) << "page " << p << ": "
                             << page.status().message();
      EXPECT_EQ(*page, Pattern(kPage, 100 + p)) << "page " << p;
      t2 = std::max(t2, done);
    }
    EXPECT_EQ(svc->data_loss_count(), 0u);
  });
  ASSERT_TRUE(run.ok()) << run.error;
  EXPECT_EQ(run.dead_ranks, std::vector<int>{1});
}

TEST_F(NodeFailureCkptTest, JournalHealsDirtyPagesOfDeadNode) {
  auto svc = MakeService(core::RecoveryPolicy::kRehome);
  auto meta = Register(*svc);
  ASSERT_TRUE(meta.ok());
  sim::SimTime t = 0.0;
  for (std::uint64_t p = 0; p < kPages; ++p) {
    auto out =
        svc->WriteRegion(**meta, p, 0, Pattern(kPage, 100 + p), 1, t).get();
    ASSERT_TRUE(out.status.ok());
    t = std::max(t, out.done);
  }
  // The journaled writeback's durable half-state: a redo record per page in
  // the dead node's journal (as FlushVector would have left behind).
  for (std::uint64_t p = 0; p < kPages; ++p) {
    ckpt::JournalRecord rec;
    rec.id = {(*meta)->vector_id, p};
    rec.version = 1;
    rec.offset = p * kPage;
    rec.payload = Pattern(kPage, 100 + p);
    rec.page_crc = Crc32(rec.payload);
    rec.key = (*meta)->key;
    ASSERT_TRUE(svc->journal(1)->Append(rec).ok());
  }
  auto stats = svc->RecoverDeadNode(/*dead_node=*/1, /*from_node=*/0, t);
  EXPECT_EQ(stats.pages_scanned, kPages);
  EXPECT_GT(stats.journal_recovered, 0u);  // dirty primaries on node 1
  EXPECT_EQ(stats.lost, 0u);
  EXPECT_EQ(stats.rehomed, 0u);  // nothing was clean
  for (std::uint64_t p = 0; p < kPages; ++p) {
    sim::SimTime done = t;
    auto page = svc->ReadPage(**meta, p, 0, t, &done);
    ASSERT_TRUE(page.ok()) << "page " << p << ": " << page.status().message();
    EXPECT_EQ(*page, Pattern(kPage, 100 + p)) << "page " << p;
    t = std::max(t, done);
  }
  EXPECT_EQ(svc->data_loss_count(), 0u);
}

TEST_F(NodeFailureCkptTest, DirtyPagesWithoutJournalAreTypedDataLoss) {
  auto svc = MakeService(core::RecoveryPolicy::kRehome);
  auto meta = Register(*svc);
  ASSERT_TRUE(meta.ok());
  sim::SimTime t = 0.0;
  for (std::uint64_t p = 0; p < kPages; ++p) {
    auto out =
        svc->WriteRegion(**meta, p, 0, Pattern(kPage, 100 + p), 1, t).get();
    ASSERT_TRUE(out.status.ok());
    t = std::max(t, out.done);
  }
  auto stats = svc->RecoverDeadNode(/*dead_node=*/1, /*from_node=*/0, t);
  EXPECT_EQ(stats.pages_scanned, kPages);
  EXPECT_GT(stats.lost, 0u);  // dirty, no redo record, no durable copy
  EXPECT_EQ(stats.journal_recovered, 0u);
  // The first kDataLoss verdict dumped the dead node's postmortem.
  ExpectFlightRecord(1, "data_loss");
  EXPECT_EQ(svc->data_loss_count(), static_cast<std::size_t>(stats.lost));
  // Exactly the lost pages fail typed on access; the rest read back intact.
  std::uint64_t read_losses = 0;
  for (std::uint64_t p = 0; p < kPages; ++p) {
    sim::SimTime done = t;
    auto page = svc->ReadPage(**meta, p, 0, t, &done);
    if (page.ok()) {
      EXPECT_EQ(*page, Pattern(kPage, 100 + p)) << "page " << p;
      t = std::max(t, done);
    } else {
      EXPECT_EQ(page.status().code(), StatusCode::kDataLoss) << "page " << p;
      ++read_losses;
    }
  }
  EXPECT_EQ(read_losses, stats.lost);
}

}  // namespace
}  // namespace mm
