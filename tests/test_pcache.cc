#include "mm/core/pcache.h"

#include <gtest/gtest.h>

#include "mm/core/optimistic_guard.h"

namespace mm::core {
namespace {

constexpr std::uint64_t kPageBytes = 128, kEPP = 16;

std::vector<std::uint8_t> Page(std::uint8_t fill) {
  return std::vector<std::uint8_t>(kPageBytes, fill);
}

TEST(PCacheTest, InsertFind) {
  PCache pc(kPageBytes, kEPP, 4 * kPageBytes);
  EXPECT_EQ(pc.Find(0), nullptr);
  PageFrame* f = pc.Insert(0, Page(7));
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->data[0], 7);
  EXPECT_EQ(pc.Find(0), f);
  EXPECT_EQ(pc.used(), kPageBytes);
  EXPECT_TRUE(pc.Contains(0));
}

TEST(PCacheTest, NeedsEvictionAtCapacity) {
  PCache pc(kPageBytes, kEPP, 2 * kPageBytes);
  EXPECT_FALSE(pc.NeedsEviction());
  pc.Insert(0, Page(1));
  EXPECT_FALSE(pc.NeedsEviction());
  pc.Insert(1, Page(2));
  EXPECT_TRUE(pc.NeedsEviction());
}

TEST(PCacheTest, LruVictimPrefersCleanOldest) {
  PCache pc(kPageBytes, kEPP, 10 * kPageBytes);
  pc.Insert(0, Page(0));
  pc.Insert(1, Page(1));
  pc.Insert(2, Page(2));
  // Touch page 0 so page 1 becomes LRU.
  pc.Find(0);
  EXPECT_EQ(pc.PickVictim(), std::make_optional<std::uint64_t>(1));
  // Dirty page 1: victim should skip to the next clean one (page 2).
  pc.MarkDirty(1, 0, 4);
  EXPECT_EQ(pc.PickVictim(), std::make_optional<std::uint64_t>(2));
}

TEST(PCacheTest, AllDirtyFallsBackToDirtyLru) {
  PCache pc(kPageBytes, kEPP, 10 * kPageBytes);
  pc.Insert(0, Page(0));
  pc.Insert(1, Page(1));
  pc.MarkDirty(0, 0, 1);
  pc.MarkDirty(1, 0, 1);
  EXPECT_EQ(pc.PickVictim(), std::make_optional<std::uint64_t>(0));
}

TEST(PCacheTest, EmptyHasNoVictim) {
  PCache pc(kPageBytes, kEPP, kPageBytes);
  EXPECT_FALSE(pc.PickVictim().has_value());
}

TEST(PCacheTest, RemoveDetachesFrame) {
  PCache pc(kPageBytes, kEPP, 10 * kPageBytes);
  pc.Insert(3, Page(9));
  pc.MarkDirty(3, 2, 5);
  PageFrame* frame = pc.Remove(3);
  ASSERT_NE(frame, nullptr);
  // Retired frames keep their buffer and dirty bits (the caller still
  // ships dirty runs from them); the cache itself no longer knows the page.
  EXPECT_EQ(frame->data[0], 9);
  EXPECT_TRUE(frame->dirty.Test(2));
  EXPECT_FALSE(pc.Contains(3));
  EXPECT_EQ(pc.used(), 0u);
  EXPECT_EQ(pc.Remove(3), nullptr);
}

TEST(PCacheTest, RemoveLeavesRetiredSeqOdd) {
  PCache pc(kPageBytes, kEPP, 10 * kPageBytes);
  PageFrame* f = pc.Insert(4, Page(1));
  OptimisticGuard before(*f);
  EXPECT_TRUE(before.valid());
  pc.Remove(4);
  // A reader still holding the frame pointer can never validate against a
  // retired frame: its seqlock is parked odd.
  OptimisticGuard after(*f);
  EXPECT_FALSE(after.valid());
  EXPECT_FALSE(before.Validate());
}

TEST(PCacheTest, InsertRecyclesRetiredFrames) {
  PCache pc(kPageBytes, kEPP, 10 * kPageBytes);
  PageFrame* f = pc.Insert(0, Page(1));
  pc.MarkDirty(0, 0, 3);
  pc.Remove(0);
  // The next insert reuses the retired frame's storage and displaces its
  // parked buffer to the caller (pool recycling), with state fully reset.
  std::vector<std::uint8_t> displaced;
  PageFrame* g = pc.Insert(9, Page(2), &displaced);
  EXPECT_EQ(g, f);
  EXPECT_EQ(displaced.size(), kPageBytes);
  EXPECT_EQ(displaced[0], 1);
  EXPECT_EQ(g->data[0], 2);
  EXPECT_FALSE(g->dirty.Any());
  EXPECT_EQ(g->page.load(), 9u);
  OptimisticGuard guard(*g);
  EXPECT_TRUE(guard.valid());
  EXPECT_EQ(guard.page(), 9u);
  EXPECT_TRUE(guard.Validate());
}

TEST(PCacheTest, PeekFrameProbesWithoutLruTouch) {
  PCache pc(kPageBytes, kEPP, 10 * kPageBytes);
  pc.Insert(0, Page(0));
  pc.Insert(1, Page(1));
  // Peek must not touch the LRU: page 0 stays the victim.
  EXPECT_NE(pc.PeekFrame(0), nullptr);
  EXPECT_EQ(pc.PeekFrame(0), pc.PeekFrame(0));
  EXPECT_EQ(pc.PickVictim(), std::make_optional<std::uint64_t>(0));
  EXPECT_EQ(pc.PeekFrame(42), nullptr);
  pc.Remove(1);
  EXPECT_EQ(pc.PeekFrame(1), nullptr);
}

TEST(PCacheTest, OptimisticGuardReadsConsistentBytes) {
  PCache pc(kPageBytes, kEPP, 10 * kPageBytes);
  pc.Insert(6, Page(0xAB));
  const PageFrame* f = pc.PeekFrame(6);
  ASSERT_NE(f, nullptr);
  OptimisticGuard g(*f);
  ASSERT_TRUE(g.valid());
  ASSERT_EQ(g.page(), 6u);
  std::uint8_t buf[8] = {};
  g.ReadBytes(16, buf, sizeof(buf));
  ASSERT_TRUE(g.Validate());
  for (std::uint8_t b : buf) EXPECT_EQ(b, 0xAB);
}

TEST(PCacheTest, WriteGuardInvalidatesConcurrentGuard) {
  PCache pc(kPageBytes, kEPP, 10 * kPageBytes);
  PageFrame* f = pc.Insert(2, Page(1));
  OptimisticGuard outside(*f);
  EXPECT_TRUE(outside.valid());
  {
    FrameWriteGuard wg(f);
    // A guard acquired inside the write section sees an odd word.
    OptimisticGuard inside(*f);
    EXPECT_FALSE(inside.valid());
    std::uint8_t v = 7;
    OptimisticGuard::StoreBytes(*f, 0, &v, 1);
  }
  // The pre-section guard overlapped a write: it must not validate.
  EXPECT_FALSE(outside.Validate());
  OptimisticGuard fresh(*f);
  EXPECT_TRUE(fresh.valid());
  std::uint8_t got = 0;
  fresh.ReadBytes(0, &got, 1);
  EXPECT_TRUE(fresh.Validate());
  EXPECT_EQ(got, 7);
}

TEST(PCacheTest, ClearParksAllFramesUnvalidatable) {
  PCache pc(kPageBytes, kEPP, 10 * kPageBytes);
  PageFrame* a = pc.Insert(0, Page(0));
  PageFrame* b = pc.Insert(1, Page(1));
  pc.Clear();
  EXPECT_FALSE(OptimisticGuard(*a).valid());
  EXPECT_FALSE(OptimisticGuard(*b).valid());
  EXPECT_EQ(pc.PeekFrame(0), nullptr);
  EXPECT_EQ(pc.PeekFrame(1), nullptr);
}

TEST(PCacheTest, DirtyPagesLists) {
  PCache pc(kPageBytes, kEPP, 10 * kPageBytes);
  pc.Insert(0, Page(0));
  pc.Insert(1, Page(1));
  pc.MarkDirty(1, 0, 1);
  auto dirty = pc.DirtyPages();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], 1u);
  EXPECT_EQ(pc.ResidentPages().size(), 2u);
}

TEST(PCacheTest, PendingLifecycle) {
  PCache pc(kPageBytes, kEPP, 4 * kPageBytes);
  std::promise<TaskOutcome> p;
  p.set_value(TaskOutcome{});
  pc.AddPending(5, PendingFetch{p.get_future().share(), 2, true});
  EXPECT_TRUE(pc.HasPending(5));
  EXPECT_EQ(pc.committed(), kPageBytes);  // pending counts against budget
  auto fetch = pc.TakePending(5);
  ASSERT_TRUE(fetch.has_value());
  EXPECT_EQ(fetch->owner, 2u);
  EXPECT_TRUE(fetch->remote);
  EXPECT_FALSE(pc.HasPending(5));
  EXPECT_FALSE(pc.TakePending(5).has_value());
}

TEST(PCacheTest, ClearDropsEverything) {
  PCache pc(kPageBytes, kEPP, 4 * kPageBytes);
  pc.Insert(0, Page(1));
  std::promise<TaskOutcome> p;
  p.set_value(TaskOutcome{});
  pc.AddPending(1, PendingFetch{p.get_future().share(), 0, false});
  pc.Clear();
  EXPECT_EQ(pc.num_frames(), 0u);
  EXPECT_EQ(pc.num_pending(), 0u);
}

TEST(PCacheTest, InsertWrongSizeChecks) {
  PCache pc(kPageBytes, kEPP, 4 * kPageBytes);
  EXPECT_THROW(pc.Insert(0, std::vector<std::uint8_t>(5)), std::logic_error);
}

TEST(PCacheTest, MarkDirtyOnAbsentPageChecks) {
  PCache pc(kPageBytes, kEPP, 4 * kPageBytes);
  EXPECT_THROW(pc.MarkDirty(0, 0, 1), std::logic_error);
}

// Victim order must follow true recency under an interleaving of Find
// (touch), MarkDirty (clean->dirty migration), and MarkClean (dirty->clean
// re-enlist) — the exact access pattern TxEnd/eviction produce.
TEST(PCacheTest, LruOrderUnderInterleavedFindAndMarkDirty) {
  PCache pc(kPageBytes, kEPP, 10 * kPageBytes);
  pc.Insert(0, Page(0));
  pc.Insert(1, Page(1));
  pc.Insert(2, Page(2));
  pc.Insert(3, Page(3));
  // Clean LRU (old->new): 0 1 2 3.
  pc.Find(0);  // 1 2 3 0
  pc.MarkDirty(2, 0, 1);  // clean: 1 3 0 | dirty: 2
  EXPECT_EQ(pc.PickVictim(), std::make_optional<std::uint64_t>(1));
  pc.Find(1);  // clean: 3 0 1
  EXPECT_EQ(pc.PickVictim(), std::make_optional<std::uint64_t>(3));
  pc.MarkDirty(3, 0, 1);  // clean: 0 1 | dirty: 2 3
  pc.MarkDirty(0, 0, 1);  // clean: 1 | dirty: 2 3 0
  EXPECT_EQ(pc.PickVictim(), std::make_optional<std::uint64_t>(1));
  pc.Remove(1);
  // No clean frames left: oldest dirty wins.
  EXPECT_EQ(pc.PickVictim(), std::make_optional<std::uint64_t>(2));
  pc.MarkClean(2);  // clean: 2 | dirty: 3 0
  EXPECT_EQ(pc.PickVictim(), std::make_optional<std::uint64_t>(2));
  // Touching the only clean frame keeps it the victim (clean beats dirty).
  pc.Find(2);
  EXPECT_EQ(pc.PickVictim(), std::make_optional<std::uint64_t>(2));
  // Re-dirtying an already-dirty frame must not reorder the dirty list.
  pc.MarkDirty(3, 4, 8);
  pc.Remove(2);
  EXPECT_EQ(pc.PickVictim(), std::make_optional<std::uint64_t>(3));
}

TEST(PCacheTest, PinnedFramesAreNeverVictims) {
  PCache pc(kPageBytes, kEPP, 10 * kPageBytes);
  pc.Insert(0, Page(0));
  pc.Insert(1, Page(1));
  pc.Pin(0);
  EXPECT_TRUE(pc.IsPinned(0));
  EXPECT_EQ(pc.num_pinned(), 1u);
  EXPECT_EQ(pc.PickVictim(), std::make_optional<std::uint64_t>(1));
  pc.Pin(1);
  EXPECT_FALSE(pc.PickVictim().has_value());
  // A frame dirtied while pinned re-enters the dirty list on unpin.
  pc.MarkDirty(1, 0, 2);
  pc.Unpin(1);
  EXPECT_FALSE(pc.IsPinned(1));
  EXPECT_EQ(pc.PickVictim(), std::make_optional<std::uint64_t>(1));
  pc.Unpin(0);
  // Clean page 0 is preferred over dirty page 1 once unpinned.
  EXPECT_EQ(pc.PickVictim(), std::make_optional<std::uint64_t>(0));
}

TEST(PCacheTest, PinIsRecursive) {
  PCache pc(kPageBytes, kEPP, 4 * kPageBytes);
  pc.Insert(0, Page(0));
  pc.Pin(0);
  pc.Pin(0);
  pc.Unpin(0);
  EXPECT_TRUE(pc.IsPinned(0));
  EXPECT_FALSE(pc.PickVictim().has_value());
  pc.Unpin(0);
  EXPECT_FALSE(pc.IsPinned(0));
  EXPECT_EQ(pc.PickVictim(), std::make_optional<std::uint64_t>(0));
}

TEST(PCacheTest, DirtyPagesIncludesPinnedFrames) {
  PCache pc(kPageBytes, kEPP, 4 * kPageBytes);
  pc.Insert(0, Page(0));
  pc.Pin(0);
  pc.MarkDirty(0, 0, 1);
  auto dirty = pc.DirtyPages();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], 0u);
  pc.Unpin(0);
}

}  // namespace
}  // namespace mm::core
