// Tests for deterministic network fault injection (DESIGN.md §13): link
// drop/duplication/delay/partition draws, sequence-number dedup in the
// mailbox, strict `faults:` YAML (unknown keys rejected), tag-space hygiene
// across Split generations, and the distributed lock under link faults.
//
// Tests honoring MM_FAULT_SEED are swept over several seeds by the CI
// flake-hunter lane; determinism assertions must hold for every seed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "mm/comm/communicator.h"
#include "mm/comm/dlock.h"
#include "mm/comm/launch.h"
#include "mm/sim/cluster.h"
#include "mm/sim/fault.h"
#include "mm/sim/network.h"
#include "mm/util/yaml.h"

namespace mm {
namespace {

std::uint64_t FaultSeed() {
  const char* env = std::getenv("MM_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 42;
}

TEST(FaultDraw, DeterministicAndDecorrelated) {
  const std::uint64_t seed = FaultSeed();
  double a = sim::FaultDraw(seed, 3, 17, 0xd0);
  EXPECT_EQ(a, sim::FaultDraw(seed, 3, 17, 0xd0));  // pure function
  EXPECT_GE(a, 0.0);
  EXPECT_LT(a, 1.0);
  // Different salts give independent fault classes for the same op.
  EXPECT_NE(a, sim::FaultDraw(seed, 3, 17, 0xdd));
  EXPECT_NE(a, sim::FaultDraw(seed + 1, 3, 17, 0xd0));
}

TEST(NetFaultYaml, ParsesNetAndKill) {
  auto root = yaml::Parse(
      "seed: 9\n"
      "net:\n"
      "  drop_rate: 0.25\n"
      "  dup_rate: 0.5\n"
      "  delay_spike_rate: 0.1\n"
      "  delay_spike_factor: 12\n"
      "  partition:\n"
      "    boundary: 2\n"
      "    start_s: 1.0\n"
      "    heal_s: 2.5\n"
      "kill:\n"
      "  rank: 3\n"
      "  after_comm_ops: 100\n");
  ASSERT_TRUE(root.ok());
  auto cfg = sim::FaultConfig::FromYaml(*root);
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  EXPECT_EQ(cfg->seed, 9u);
  EXPECT_EQ(cfg->net.drop_rate, 0.25);
  EXPECT_EQ(cfg->net.dup_rate, 0.5);
  EXPECT_EQ(cfg->net.delay_spike_factor, 12.0);
  EXPECT_EQ(cfg->net.partition_boundary, 2u);
  EXPECT_EQ(cfg->net.partition_heal_s, 2.5);
  EXPECT_TRUE(cfg->net.any());
  EXPECT_EQ(cfg->kill.rank, 3);
  EXPECT_EQ(cfg->kill.after_comm_ops, 100u);
  EXPECT_TRUE(cfg->kill.any());
}

TEST(NetFaultYaml, RejectsUnknownKeysAtEveryLevel) {
  // The classic typo must fail loudly, not silently disable the plan.
  auto typo = yaml::Parse("nvme:\n  transient_errror_rate: 0.1\n");
  ASSERT_TRUE(typo.ok());
  auto cfg = sim::FaultConfig::FromYaml(*typo);
  ASSERT_FALSE(cfg.ok());
  EXPECT_EQ(cfg.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(cfg.status().message().find("transient_errror_rate"),
            std::string::npos);

  auto top = yaml::Parse("sseed: 1\n");
  ASSERT_TRUE(top.ok());
  EXPECT_FALSE(sim::FaultConfig::FromYaml(*top).ok());

  auto net = yaml::Parse("net:\n  drop_rte: 0.1\n");
  ASSERT_TRUE(net.ok());
  EXPECT_FALSE(sim::FaultConfig::FromYaml(*net).ok());

  auto part = yaml::Parse(
      "net:\n  partition:\n    boundary: 1\n    begin_s: 0.5\n");
  ASSERT_TRUE(part.ok());
  EXPECT_FALSE(sim::FaultConfig::FromYaml(*part).ok());
}

TEST(NetFaultYaml, RejectsPartitionThatNeverHeals) {
  auto root = yaml::Parse(
      "net:\n  partition:\n    boundary: 1\n    start_s: 1.0\n    heal_s: 1.0\n");
  ASSERT_TRUE(root.ok());
  auto cfg = sim::FaultConfig::FromYaml(*root);
  ASSERT_FALSE(cfg.ok());
  EXPECT_NE(cfg.status().message().find("heal_s must be > start_s"),
            std::string::npos);
}

TEST(NetworkFaults, DropRetransmissionsAreDeterministic) {
  auto run = [](std::uint64_t seed) {
    sim::Network net(2, sim::NetworkSpec::Roce40());
    sim::NetFaultSpec spec;
    spec.drop_rate = 0.5;
    net.ConfigureFaults(spec, seed);
    std::vector<sim::SimTime> delivered;
    for (int i = 0; i < 64; ++i) {
      auto res = net.Transfer(0.0, 0, 1, 64);
      delivered.push_back(res.delivered);
    }
    return std::make_pair(delivered, net.retransmits());
  };
  auto [d1, r1] = run(FaultSeed());
  auto [d2, r2] = run(FaultSeed());
  EXPECT_EQ(d1, d2);  // bit-identical across runs
  EXPECT_EQ(r1, r2);
  EXPECT_GT(r1, 0u);  // at ~50% drop some of 64 messages retransmit
  auto [d3, r3] = run(FaultSeed() + 1);
  EXPECT_NE(d1, d3);  // a different seed draws a different sequence
  (void)r3;  // only the delivery times matter for the cross-seed check
}

TEST(NetworkFaults, DelaySpikeStretchesPropagation) {
  sim::NetworkSpec ns = sim::NetworkSpec::Roce40();
  sim::Network net(2, ns);
  sim::NetFaultSpec spec;
  spec.delay_spike_rate = 1.0;
  spec.delay_spike_factor = 10.0;
  net.ConfigureFaults(spec, FaultSeed());
  auto res = net.Transfer(0.0, 0, 1, 64);
  // Control message: latency + wire, with latency scaled by the spike.
  double wire = 64.0 / ns.bandwidth_Bps;
  EXPECT_GE(res.delivered, 10.0 * ns.latency_s + wire);
  EXPECT_EQ(net.delay_spikes(), 1u);
  // Intra-node messages never take link faults.
  (void)net.Transfer(0.0, 1, 1, 64);
  EXPECT_EQ(net.delay_spikes(), 1u);
}

TEST(NetworkFaults, PartitionHoldsUntilHeal) {
  sim::Network net(3, sim::NetworkSpec::Roce40());
  sim::NetFaultSpec spec;
  spec.partition_boundary = 1;  // {0} | {1, 2}
  spec.partition_start_s = 0.0;
  spec.partition_heal_s = 0.01;
  net.ConfigureFaults(spec, FaultSeed());
  EXPECT_TRUE(net.Partitioned(0.005, 0, 1));
  EXPECT_FALSE(net.Partitioned(0.005, 1, 2));  // same side of the cut
  EXPECT_FALSE(net.Partitioned(0.02, 0, 1));   // healed

  auto held = net.Transfer(0.0, 0, 1, 64);
  EXPECT_GE(held.delivered, spec.partition_heal_s);
  EXPECT_GT(net.partition_holds(), 0u);
  auto same_side = net.Transfer(0.0, 1, 2, 64);
  EXPECT_LT(same_side.delivered, 0.001);
  auto after = net.Transfer(0.02, 0, 1, 64);
  EXPECT_LT(after.delivered, 0.021);
}

TEST(NetworkFaults, DuplicatesAreDroppedBySequenceDedup) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  sim::NetFaultSpec spec;
  spec.dup_rate = 1.0;  // every message delivered twice
  cluster->network().ConfigureFaults(spec, FaultSeed());
  constexpr int kMsgs = 5;
  auto result = comm::RunRanks(*cluster, 2, 1, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    if (ctx.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        comm.SendValue<int>(1, /*tag=*/7, 1000 + i);
      }
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        EXPECT_EQ(comm.RecvValue<int>(0, /*tag=*/7), 1000 + i);  // in order
      }
    }
    // World barrier is message-free; it just orders the checks below after
    // every duplicate deposit.
    comm.Barrier();
    if (ctx.rank() == 1) {
      // Exactly-once: the duplicate copies were dropped, not queued.
      EXPECT_FALSE(ctx.world().mailbox(1).Probe(comm::kAnySource, 7));
      EXPECT_EQ(ctx.world().mailbox(1).dups_dropped(),
                static_cast<std::uint64_t>(kMsgs));
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(cluster->network().duplicates(), static_cast<std::uint64_t>(kMsgs));
}

TEST(NetworkFaults, CollectivesAreBitIdenticalAcrossRuns) {
  auto run = [] {
    auto cluster = sim::Cluster::PaperTestbed(2);
    sim::NetFaultSpec spec;
    spec.drop_rate = 0.5;
    spec.dup_rate = 0.2;
    spec.delay_spike_rate = 0.1;
    cluster->network().ConfigureFaults(spec, FaultSeed());
    std::vector<double> finals(8, 0.0);
    auto result = comm::RunRanks(*cluster, 8, 4, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      std::vector<double> v = {static_cast<double>(ctx.rank() + 1)};
      for (int iter = 0; iter < 8; ++iter) {
        comm.AllReduce(v, [](double a, double b) { return a + b; });
      }
      finals[static_cast<std::size_t>(ctx.rank())] = v[0];
    });
    EXPECT_TRUE(result.ok()) << result.error;
    return std::make_tuple(finals, result.rank_times,
                           cluster->network().retransmits());
  };
  auto [f1, t1, r1] = run();
  auto [f2, t2, r2] = run();
  EXPECT_EQ(f1, f2);  // results bit-identical
  EXPECT_EQ(t1, t2);  // virtual timings bit-identical
  EXPECT_EQ(r1, r2);  // same injected fault sequence
  EXPECT_GT(r1, 0u);
  // Faults cost time but never correctness.
  double expect = 36.0;
  for (int i = 1; i < 8; ++i) expect *= 8.0;
  EXPECT_EQ(f1[0], expect);
}

TEST(CommTags, UserTagWiderThan16BitsIsRejected) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  auto result = comm::RunRanks(*cluster, 2, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    if (ctx.rank() == 0) {
      int v = 1;
      comm.SendBytes(1, /*tag=*/0x10000, &v, sizeof(v));  // would collide
    }
  });
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("comm tag"), std::string::npos);
}

TEST(CommTags, SplitGenerationsKeepTagSpacesDisjoint) {
  // Regression: the same user tag on the parent and on a Split
  // sub-communicator must never match each other's receives.
  auto cluster = sim::Cluster::PaperTestbed(1);
  auto result = comm::RunRanks(*cluster, 2, 2, [&](comm::RankContext& ctx) {
    comm::Communicator world(&ctx);
    comm::Communicator sub = world.Split(0);  // both ranks, epoch 1
    constexpr int kTag = 5;
    if (ctx.rank() == 0) {
      world.SendValue<int>(1, kTag, 111);  // deposited first
      sub.SendValue<int>(1, kTag, 222);
    } else {
      // If the tag spaces collided, this would take the world message.
      EXPECT_EQ(sub.RecvValue<int>(0, kTag), 222);
      EXPECT_EQ(world.RecvValue<int>(0, kTag), 111);
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST(CommTags, CollectivesWorkOnDeepSplitGenerations) {
  // Collective tags are epoch-scoped too: a chain of Splits must keep
  // working (each generation shifts its tag space).
  auto cluster = sim::Cluster::PaperTestbed(1);
  auto result = comm::RunRanks(*cluster, 4, 4, [&](comm::RankContext& ctx) {
    comm::Communicator world(&ctx);
    comm::Communicator gen1 = world.Split(ctx.rank() % 2);
    comm::Communicator gen2 = gen1.Split(0);
    std::vector<int> v = {ctx.rank() + 1};
    gen2.AllReduce(v, [](int a, int b) { return a + b; });
    int expect = ctx.rank() % 2 == 0 ? (1 + 3) : (2 + 4);
    EXPECT_EQ(v[0], expect);
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST(RecvOr, MalformedPayloadDegradesToDataLoss) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  auto result = comm::RunRanks(*cluster, 2, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    if (ctx.rank() == 0) {
      std::uint8_t bytes[3] = {1, 2, 3};
      comm.SendBytes(1, /*tag=*/1, bytes, sizeof(bytes));
      comm.SendBytes(1, /*tag=*/2, bytes, 2);
    } else {
      auto vec = comm.RecvOr<int>(0, /*tag=*/1);  // 3 bytes: not whole ints
      ASSERT_FALSE(vec.ok());
      EXPECT_EQ(vec.status().code(), StatusCode::kDataLoss);
      auto val = comm.RecvValueOr<int>(0, /*tag=*/2);  // 2 bytes != 4
      ASSERT_FALSE(val.ok());
      EXPECT_EQ(val.status().code(), StatusCode::kDataLoss);
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST(DlockFaults, MutualExclusionHoldsUnderLinkFaults) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  sim::NetFaultSpec spec;
  spec.drop_rate = 0.2;
  spec.dup_rate = 0.2;
  spec.delay_spike_rate = 0.2;
  cluster->network().ConfigureFaults(spec, FaultSeed());
  constexpr int kRanks = 8;
  constexpr int kIters = 25;
  int counter = 0;  // deliberately unsynchronized; the dlock protects it
  auto result = comm::RunRanks(*cluster, kRanks, 4, [&](comm::RankContext& ctx) {
    comm::DistributedLock lock(&ctx.world(), /*home_node=*/0);
    for (int i = 0; i < kIters; ++i) {
      comm::DistributedLock::Guard guard(lock, ctx);
      ++counter;
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(counter, kRanks * kIters);
  // The lock protocol's control messages took drops/spikes on the way.
  EXPECT_GT(cluster->network().retransmits() + cluster->network().delay_spikes(),
            0u);
}

}  // namespace
}  // namespace mm
