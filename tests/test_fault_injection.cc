// Fault injection, retry/backoff, and degraded-tier recovery (robustness
// tentpole): deterministic injector draws, retry accounting on the virtual
// clock, tier death -> drain -> re-route -> backend restore, CRC-32
// detection of silent corruption, and end-to-end KMeans under faults.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>
#include <unistd.h>

#include "mm/apps/datagen.h"
#include "mm/apps/kmeans.h"
#include "mm/apps/reference.h"
#include "mm/mega_mmap.h"
#include "mm/sim/fault.h"
#include "mm/util/hash.h"
#include "mm/util/retry.h"

namespace mm {
namespace {

using sim::FaultConfig;
using sim::FaultInjector;
using sim::TierKind;

using Kind = FaultInjector::Decision::Kind;

// ---------------------------------------------------------------------------
// FaultInjector unit tests
// ---------------------------------------------------------------------------

FaultConfig NoisyConfig(std::uint64_t seed) {
  FaultConfig cfg;
  cfg.seed = seed;
  cfg.tier(TierKind::kNvme).transient_error_rate = 0.5;
  cfg.tier(TierKind::kNvme).latency_spike_rate = 0.2;
  cfg.tier(TierKind::kNvme).latency_spike_factor = 8.0;
  return cfg;
}

TEST(FaultInjector, SameSeedSameSequence) {
  FaultInjector a(NoisyConfig(42)), b(NoisyConfig(42));
  for (int i = 0; i < 300; ++i) {
    auto da = a.OnDeviceOp(TierKind::kNvme);
    auto db = b.OnDeviceOp(TierKind::kNvme);
    ASSERT_EQ(da.kind, db.kind) << "op " << i;
    ASSERT_EQ(da.spike_factor, db.spike_factor) << "op " << i;
  }
}

TEST(FaultInjector, DifferentSeedDifferentSequence) {
  FaultInjector a(NoisyConfig(42)), b(NoisyConfig(43));
  int diffs = 0;
  for (int i = 0; i < 300; ++i) {
    if (a.OnDeviceOp(TierKind::kNvme).kind !=
        b.OnDeviceOp(TierKind::kNvme).kind) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultInjector, StreamsAreIndependent) {
  // A fault plan on NVMe must not leak into the other streams.
  FaultInjector inj(NoisyConfig(7));
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(inj.OnDeviceOp(TierKind::kDram).ok());
    EXPECT_TRUE(inj.OnBackendOp().ok());
  }
  EXPECT_EQ(inj.ops_observed(TierKind::kDram), 200u);
  EXPECT_EQ(inj.backend_ops_observed(), 200u);
}

TEST(FaultInjector, TransientRateApproximatelyHonored) {
  FaultConfig cfg;
  cfg.seed = 1234;
  cfg.tier(TierKind::kSsd).transient_error_rate = 0.1;
  FaultInjector inj(cfg);
  const int kDraws = 20000;
  // Only the aggregate fault-rate counter matters, not each draw's status.
  for (int i = 0; i < kDraws; ++i) (void)inj.OnDeviceOp(TierKind::kSsd);
  double rate = static_cast<double>(inj.transient_faults()) / kDraws;
  EXPECT_NEAR(rate, 0.1, 0.02);
  EXPECT_EQ(inj.ops_observed(TierKind::kSsd), static_cast<unsigned>(kDraws));
}

TEST(FaultInjector, ThreadInterleavingDoesNotChangeFaultCount) {
  // Decisions are keyed on the per-stream op index, so the multiset of
  // outcomes is a function of the seed alone, not of which thread drew.
  auto count_transients = [](int threads) {
    FaultConfig cfg;
    cfg.seed = 99;
    cfg.tier(TierKind::kHdd).transient_error_rate = 0.3;
    FaultInjector inj(cfg);
    std::vector<std::thread> pool;
    std::atomic<int> remaining{400};
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        // Concurrency smoke: draw outcomes are irrelevant.
        while (remaining.fetch_sub(1) > 0) (void)inj.OnDeviceOp(TierKind::kHdd);
      });
    }
    for (auto& t : pool) t.join();
    return inj.transient_faults();
  };
  EXPECT_EQ(count_transients(1), count_transients(4));
}

TEST(FaultInjector, FailAfterOpsKillsTheStream) {
  FaultConfig cfg;
  cfg.tier(TierKind::kNvme).fail_after_ops = 3;
  FaultInjector inj(cfg);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(inj.OnDeviceOp(TierKind::kNvme).ok()) << "op " << i;
  }
  EXPECT_EQ(inj.OnDeviceOp(TierKind::kNvme).kind, Kind::kPermanent);
  EXPECT_TRUE(inj.TierFailed(TierKind::kNvme));
  EXPECT_EQ(inj.OnDeviceOp(TierKind::kNvme).kind, Kind::kPermanent);
  EXPECT_EQ(inj.permanent_failures(), 1u);  // counted once
}

TEST(FaultInjector, FailTierIsImmediate) {
  FaultInjector inj;
  EXPECT_TRUE(inj.OnDeviceOp(TierKind::kDram).ok());
  inj.FailTier(TierKind::kDram);
  EXPECT_EQ(inj.OnDeviceOp(TierKind::kDram).kind, Kind::kPermanent);
  inj.FailBackend();
  EXPECT_EQ(inj.OnBackendOp().kind, Kind::kPermanent);
}

TEST(FaultConfigYaml, ParsesPerTierSpecs) {
  auto root = yaml::Parse(
      "faults:\n"
      "  seed: 77\n"
      "  nvme:\n"
      "    transient_error_rate: 0.25\n"
      "    fail_after_ops: 500\n"
      "  backend:\n"
      "    latency_spike_rate: 0.05\n"
      "    latency_spike_factor: 20\n");
  ASSERT_TRUE(root.ok());
  auto cfg = FaultConfig::FromYaml((*root)["faults"]);
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->seed, 77u);
  EXPECT_EQ(cfg->tier(TierKind::kNvme).transient_error_rate, 0.25);
  EXPECT_EQ(cfg->tier(TierKind::kNvme).fail_after_ops, 500u);
  EXPECT_EQ(cfg->backend.latency_spike_rate, 0.05);
  EXPECT_EQ(cfg->backend.latency_spike_factor, 20.0);
  EXPECT_TRUE(cfg->any());
}

TEST(FaultConfigYaml, RejectsOutOfRangeRates) {
  auto root = yaml::Parse("nvme:\n  transient_error_rate: 1.5\n");
  ASSERT_TRUE(root.ok());
  EXPECT_FALSE(FaultConfig::FromYaml(*root).ok());
  auto root2 = yaml::Parse("hdd:\n  latency_spike_factor: 0.5\n");
  ASSERT_TRUE(root2.ok());
  EXPECT_FALSE(FaultConfig::FromYaml(*root2).ok());
}

// ---------------------------------------------------------------------------
// RetryPolicy unit tests
// ---------------------------------------------------------------------------

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy p;
  p.initial_backoff_s = 1e-3;
  p.backoff_multiplier = 4.0;
  p.max_backoff_s = 10e-3;
  EXPECT_DOUBLE_EQ(p.BackoffBefore(1), 1e-3);
  EXPECT_DOUBLE_EQ(p.BackoffBefore(2), 4e-3);
  EXPECT_DOUBLE_EQ(p.BackoffBefore(3), 10e-3);  // 16e-3 capped
}

TEST(RetryPolicy, RetriesTransientUntilSuccess) {
  RetryPolicy p;
  p.max_attempts = 5;
  p.initial_backoff_s = 1.0;
  p.backoff_multiplier = 2.0;
  p.max_backoff_s = 100.0;
  int calls = 0, attempts = 0;
  double done = 0.0;
  Status st = RunWithRetry(
      p, /*now=*/10.0, &done,
      [&](double start, double* attempt_done) -> Status {
        ++calls;
        *attempt_done = start + 0.5;  // each attempt takes 0.5 virtual sec
        if (calls < 3) return IoError("flaky");
        return Status::Ok();
      },
      &attempts);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts, 3);
  // Attempt 1: [10, 10.5] + backoff 1 -> attempt 2: [11.5, 12] + backoff 2
  // -> attempt 3: [14, 14.5]. All charged to the virtual clock.
  EXPECT_DOUBLE_EQ(done, 14.5);
}

TEST(RetryPolicy, NonRetryableFailsFast) {
  RetryPolicy p;
  p.max_attempts = 5;
  int calls = 0;
  double done = 0.0;
  Status st = RunWithRetry(p, 0.0, &done, [&](double, double*) -> Status {
    ++calls;
    return Unavailable("tier dead");
  });
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicy, ExhaustsAttemptsAndReturnsLastError) {
  RetryPolicy p;
  p.max_attempts = 3;
  int calls = 0;
  Status st = RunWithRetry(p, 0.0, nullptr, [&](double, double*) -> Status {
    ++calls;
    return IoError("still flaky");
  });
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicy, WorksWithStatusOr) {
  RetryPolicy p;
  p.max_attempts = 4;
  int calls = 0;
  auto result = RunWithRetry(
      p, 0.0, nullptr, [&](double, double*) -> StatusOr<int> {
        if (++calls < 2) return IoError("flaky");
        return 41 + 1;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 2);
}

TEST(RetryPolicy, YamlRoundTripAndValidation) {
  auto root = yaml::Parse(
      "retry:\n"
      "  max_attempts: 6\n"
      "  initial_backoff_s: 0.001\n"
      "  backoff_multiplier: 2\n"
      "  max_backoff_s: 0.1\n");
  ASSERT_TRUE(root.ok());
  auto p = RetryPolicy::FromYaml((*root)["retry"]);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->max_attempts, 6);
  EXPECT_DOUBLE_EQ(p->initial_backoff_s, 0.001);
  auto bad = yaml::Parse("max_attempts: 0\n");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(RetryPolicy::FromYaml(*bad).ok());
}

TEST(Crc32, MatchesKnownVector) {
  // The canonical CRC-32 ("123456789") check value.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

// ---------------------------------------------------------------------------
// TierStore / BufferManager fault behavior
// ---------------------------------------------------------------------------

TEST(TierStoreFaults, TransientFaultReturnsIoErrorWithoutConsumingData) {
  FaultConfig cfg;
  cfg.tier(TierKind::kNvme).transient_error_rate = 1.0;
  FaultInjector inj(cfg);
  sim::Device dev(sim::DeviceSpec::Nvme(MEGABYTES(10)));
  storage::TierStore store(&dev, MEGABYTES(1), &inj);
  std::vector<std::uint8_t> data(1000, 0xAB);
  sim::SimTime done = 0;
  Status st = store.Put({1, 0}, std::move(data), 0.0, &done);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(data.size(), 1000u);  // kept for the caller's retry
  EXPECT_GT(done, 0.0);           // the failed attempt still took time
  EXPECT_FALSE(store.Contains({1, 0}));
}

TEST(TierStoreFaults, PermanentFaultFlipsStoreToFailed) {
  FaultConfig cfg;
  cfg.tier(TierKind::kNvme).fail_after_ops = 1;
  FaultInjector inj(cfg);
  sim::Device dev(sim::DeviceSpec::Nvme(MEGABYTES(10)));
  storage::TierStore store(&dev, MEGABYTES(1), &inj);
  ASSERT_TRUE(store.Put({1, 0}, std::vector<std::uint8_t>(64, 1), 0.0,
                        nullptr).ok());
  EXPECT_EQ(store.Get({1, 0}, 0.0, nullptr).status().code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(store.failed());
  EXPECT_EQ(store.capacity(), 0u);
  EXPECT_EQ(store.free_bytes(), 0u);
  auto lost = store.FailAndDrain();
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], (storage::BlobId{1, 0}));
  EXPECT_TRUE(store.FailAndDrain().empty());  // idempotent
}

TEST(TierStoreFaults, ChecksumAndCorruptBlob) {
  sim::Device dev(sim::DeviceSpec::Nvme(MEGABYTES(10)));
  storage::TierStore store(&dev, MEGABYTES(1));
  std::vector<std::uint8_t> data(256, 0x5A);
  std::uint32_t expected = Crc32(data);
  ASSERT_TRUE(store.Put({1, 0}, std::move(data), 0.0, nullptr).ok());
  auto crc = store.Checksum({1, 0});
  ASSERT_TRUE(crc.ok());
  EXPECT_EQ(*crc, expected);
  ASSERT_TRUE(store.CorruptBlob({1, 0}, 17).ok());
  auto crc2 = store.Checksum({1, 0});
  ASSERT_TRUE(crc2.ok());
  EXPECT_NE(*crc2, expected);
  EXPECT_FALSE(store.Checksum({9, 9}).ok());
}

TEST(BufferManagerFaults, RetriesTransientFaultsTransparently) {
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.tier(TierKind::kNvme).transient_error_rate = 0.3;
  FaultInjector inj(cfg);
  RetryPolicy retry;
  retry.max_attempts = 8;
  auto cluster = sim::Cluster::PaperTestbed(1);
  storage::BufferManager bm(&cluster->node(0),
                            {{TierKind::kNvme, MEGABYTES(2)}}, &inj, retry);
  sim::SimTime t = 0;
  for (std::uint64_t p = 0; p < 32; ++p) {
    ASSERT_TRUE(bm.PutScored({1, p}, std::vector<std::uint8_t>(4096, 0x11),
                             0.5f, t, &t).ok());
  }
  for (std::uint64_t p = 0; p < 32; ++p) {
    auto data = bm.Get({1, p}, t, &t);
    ASSERT_TRUE(data.ok()) << "page " << p;
    EXPECT_EQ((*data)[0], 0x11);
  }
  // The plan injected faults, and every one was absorbed by a retry.
  EXPECT_GT(inj.transient_faults(), 0u);
  EXPECT_EQ(bm.num_live_tiers(), 1u);
}

TEST(BufferManagerFaults, PermanentFailureDrainsAndReRoutes) {
  FaultInjector inj;  // faults only via explicit FailTier
  auto cluster = sim::Cluster::PaperTestbed(1);
  storage::BufferManager bm(&cluster->node(0),
                            {{TierKind::kDram, MEGABYTES(1)},
                             {TierKind::kNvme, MEGABYTES(4)}},
                            &inj, RetryPolicy{});
  std::vector<storage::BlobId> reported;
  sim::TierKind reported_kind = TierKind::kPfs;
  bm.SetTierFailureHandler([&](sim::TierKind kind,
                               const std::vector<storage::BlobId>& lost,
                               sim::SimTime) {
    reported_kind = kind;
    reported = lost;
  });
  auto t0 = bm.PutScored({1, 0}, std::vector<std::uint8_t>(4096, 1), 0.5f,
                         0.0, nullptr);
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ(*t0, 0u);  // DRAM
  inj.FailTier(TierKind::kDram);
  // The next access against the dead tier surfaces kUnavailable, drains the
  // tier, and reports the lost blobs to the handler exactly once.
  auto miss = bm.Get({1, 0}, 1.0, nullptr);
  EXPECT_EQ(miss.status().code(), StatusCode::kUnavailable);
  ASSERT_EQ(reported.size(), 1u);
  EXPECT_EQ(reported[0], (storage::BlobId{1, 0}));
  EXPECT_EQ(reported_kind, TierKind::kDram);
  EXPECT_EQ(bm.num_live_tiers(), 1u);
  // Placement now re-routes to the surviving tier.
  auto t1 = bm.PutScored({1, 1}, std::vector<std::uint8_t>(4096, 2), 0.5f,
                         2.0, nullptr);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(*t1, 1u);  // NVMe
  reported.clear();
  (void)bm.Get({1, 9}, 3.0, nullptr);  // dead tier is not re-reported
  EXPECT_TRUE(reported.empty());
}

TEST(BufferManagerFaults, AllTiersDeadReturnsUnavailable) {
  FaultInjector inj;
  auto cluster = sim::Cluster::PaperTestbed(1);
  storage::BufferManager bm(&cluster->node(0),
                            {{TierKind::kDram, MEGABYTES(1)}}, &inj,
                            RetryPolicy{});
  inj.FailTier(TierKind::kDram);
  auto st = bm.PutScored({1, 0}, std::vector<std::uint8_t>(64, 1), 0.5f, 0.0,
                         nullptr);
  EXPECT_EQ(st.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(bm.num_live_tiers(), 0u);
}

// ---------------------------------------------------------------------------
// Service-level recovery (tentpole acceptance)
// ---------------------------------------------------------------------------

class ServiceFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mm_fault_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// One-node service with a small DRAM slice over a larger NVMe slice.
  std::unique_ptr<core::Service> MakeService(core::ServiceOptions so = {}) {
    cluster_ = sim::Cluster::PaperTestbed(1);
    if (so.tier_grants.empty()) {
      so.tier_grants = {{TierKind::kDram, 128 * kKiB},
                        {TierKind::kNvme, MEGABYTES(4)}};
    }
    return std::make_unique<core::Service>(cluster_.get(), so);
  }

  static std::vector<std::uint8_t> PagePattern(std::uint64_t page,
                                               std::uint64_t bytes) {
    std::vector<std::uint8_t> data(bytes);
    for (std::uint64_t i = 0; i < bytes; ++i) {
      data[i] = static_cast<std::uint8_t>((page * 131 + i) & 0xFF);
    }
    return data;
  }

  std::filesystem::path dir_;
  std::unique_ptr<sim::Cluster> cluster_;
};

TEST_F(ServiceFaultTest, PermanentTierFailureDegradesAndRestoresCleanPages) {
  auto svc = MakeService();
  core::VectorOptions vo;
  vo.page_size = 4096;
  auto meta = svc->RegisterVector("posix://" + (dir_ / "v.bin").string(), 1,
                                  vo, 48 * 4096);
  ASSERT_TRUE(meta.ok());
  const std::uint64_t kPages = 48;
  sim::SimTime t = 0.0;
  for (std::uint64_t p = 0; p < kPages; ++p) {
    auto fut = svc->WriteRegion(**meta, p, 0, PagePattern(p, 4096), 0, t);
    core::TaskOutcome out = fut.get();
    ASSERT_TRUE(out.status.ok()) << "page " << p;
    t = std::max(t, out.done);
  }
  // Persist everything so every page is clean before the tier dies.
  sim::SimTime flush_done = t;
  ASSERT_TRUE(svc->FlushVector(**meta, 0, t, &flush_done).ok());
  t = flush_done;
  // 48 pages over a 32-page DRAM slice: a good chunk lives on NVMe.
  svc->fault_injector().FailTier(TierKind::kNvme);
  // Every page must still read back correctly: DRAM residents directly,
  // NVMe residents via drain -> metadata reconcile -> backend re-stage.
  for (std::uint64_t p = 0; p < kPages; ++p) {
    sim::SimTime done = t;
    auto page = svc->ReadPage(**meta, p, 0, t, &done);
    ASSERT_TRUE(page.ok()) << "page " << p << ": " << page.status().message();
    EXPECT_EQ(*page, PagePattern(p, 4096)) << "page " << p;
    t = std::max(t, done);
  }
  EXPECT_EQ(svc->data_loss_count(), 0u);  // everything was clean
  EXPECT_EQ(svc->runtime(0).buffer().num_live_tiers(), 1u);
  EXPECT_EQ(svc->fault_injector().permanent_failures(), 1u);
  // New writes re-route to the surviving DRAM tier (or write through).
  auto fut = svc->WriteRegion(**meta, 2, 0, PagePattern(99, 4096), 0, t);
  EXPECT_TRUE(fut.get().status.ok());
}

TEST_F(ServiceFaultTest, DirtyPageLossSurfacesAsDataLossNotAbort) {
  auto svc = MakeService();
  core::VectorOptions vo;
  vo.page_size = 4096;
  auto meta = svc->RegisterVector("posix://" + (dir_ / "v.bin").string(), 1,
                                  vo, 8 * 4096);
  ASSERT_TRUE(meta.ok());
  // Dirty write, never flushed: the only copy lives in the scache.
  auto fut = svc->WriteRegion(**meta, 0, 16, std::vector<std::uint8_t>(64, 0xEE),
                              0, 0.0);
  core::TaskOutcome out = fut.get();
  ASSERT_TRUE(out.status.ok());
  storage::BlobId id{(*meta)->vector_id, 0};
  auto tier_idx = svc->runtime(0).buffer().FindBlob(id);
  ASSERT_TRUE(tier_idx.has_value());
  svc->fault_injector().FailTier(
      svc->runtime(0).buffer().tier(*tier_idx).kind());
  // The read trips over the dead tier; the unstaged modification is gone and
  // MUST surface as typed data loss, not a crash or silent zeros.
  sim::SimTime done = out.done;
  auto page = svc->ReadPage(**meta, 0, 0, out.done, &done);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kDataLoss);
  EXPECT_GE(svc->data_loss_count(), 1u);
  // A full-page overwrite replaces the lost bytes and clears the condition.
  auto fut2 = svc->WriteRegion(**meta, 0, 0, PagePattern(0, 4096), 0, done);
  core::TaskOutcome out2 = fut2.get();
  ASSERT_TRUE(out2.status.ok()) << out2.status.message();
  EXPECT_EQ(svc->data_loss_count(), 0u);
  sim::SimTime done2 = out2.done;
  auto healed = svc->ReadPage(**meta, 0, 0, out2.done, &done2);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(*healed, PagePattern(0, 4096));
}

TEST_F(ServiceFaultTest, CrcCatchesSilentCorruption) {
  auto svc = MakeService();
  core::VectorOptions vo;
  vo.page_size = 4096;
  auto meta = svc->RegisterVector("posix://" + (dir_ / "v.bin").string(), 1,
                                  vo, 8 * 4096);
  ASSERT_TRUE(meta.ok());
  sim::SimTime t = 0.0;
  // Page 0: dirty (unstaged). Page 1: flushed clean.
  for (std::uint64_t p = 0; p < 2; ++p) {
    core::TaskOutcome out =
        svc->WriteRegion(**meta, p, 0, PagePattern(p, 4096), 0, t).get();
    ASSERT_TRUE(out.status.ok());
    t = std::max(t, out.done);
  }
  ASSERT_TRUE(svc->FlushVector(**meta, 0, t, &t).ok());
  core::TaskOutcome redirty =
      svc->WriteRegion(**meta, 0, 8, std::vector<std::uint8_t>(16, 0x77), 0, t)
          .get();
  ASSERT_TRUE(redirty.status.ok());
  t = std::max(t, redirty.done);

  auto& bm = svc->runtime(0).buffer();
  storage::BlobId dirty_id{(*meta)->vector_id, 0};
  storage::BlobId clean_id{(*meta)->vector_id, 1};
  auto dt = bm.FindBlob(dirty_id);
  auto ct = bm.FindBlob(clean_id);
  ASSERT_TRUE(dt.has_value());
  ASSERT_TRUE(ct.has_value());
  ASSERT_TRUE(bm.tier(*dt).CorruptBlob(dirty_id, 100).ok());
  ASSERT_TRUE(bm.tier(*ct).CorruptBlob(clean_id, 100).ok());

  // Dirty page: the CRC mismatch means the modification is unrecoverable.
  std::uint64_t version = 0;
  sim::SimTime done = t;
  auto dirty_read = svc->ReadPage(**meta, 0, 0, t, &done, &version);
  ASSERT_FALSE(dirty_read.ok());
  EXPECT_EQ(dirty_read.status().code(), StatusCode::kDataLoss);
  EXPECT_GE(svc->data_loss_count(), 1u);

  // Clean page: the bad copy is dropped and re-staged from the backend.
  sim::SimTime done2 = t;
  auto clean_read = svc->ReadPage(**meta, 1, 0, t, &done2, &version);
  ASSERT_TRUE(clean_read.ok()) << clean_read.status().message();
  EXPECT_EQ(*clean_read, PagePattern(1, 4096));
}

TEST_F(ServiceFaultTest, SubmitAfterShutdownReturnsFailedPrecondition) {
  auto svc = MakeService();
  core::VectorOptions vo;
  vo.nonvolatile = false;
  vo.page_size = 4096;
  auto meta = svc->RegisterVector("vol", 1, vo, 4096);
  ASSERT_TRUE(meta.ok());
  svc->Shutdown();
  // A straggler write after shutdown is rejected with a typed error — it
  // must not abort the process or hang the returned future.
  auto fut = svc->WriteRegion(**meta, 0, 0, std::vector<std::uint8_t>(16, 1),
                              0, 0.0);
  EXPECT_EQ(fut.get().status.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// End-to-end: KMeans under injected faults (ISSUE acceptance)
// ---------------------------------------------------------------------------

class KMeansFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mm_kmf_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    gen_.num_particles = 20000;
    gen_.halos = 4;
    gen_.halo_sigma = 4.0;
    gen_.seed = 42;
    key_ = "posix://" + (dir_ / "pts.bin").string();
    ASSERT_TRUE(apps::GenerateToBackend(gen_, key_).ok());
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  apps::KMeansConfig Config() {
    apps::KMeansConfig cfg;
    cfg.k = 4;
    cfg.max_iter = 4;
    cfg.seed = 5;
    cfg.page_size = 16 * 1024;
    cfg.pcache_bytes = 64 * 1024;
    return cfg;
  }

  /// Runs single-rank KMeansMega under the given service options.
  apps::KMeansResult Run(core::ServiceOptions so,
                         core::Service** svc_out = nullptr) {
    auto cluster = sim::Cluster::PaperTestbed(1);
    auto svc = std::make_unique<core::Service>(cluster.get(), so);
    apps::KMeansResult result;
    auto run = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      result = apps::KMeansMega(*svc, comm, key_, Config());
    });
    EXPECT_TRUE(run.ok()) << run.error;
    if (svc_out != nullptr) *svc_out = svc.get();
    stats_transient_ = svc->fault_injector().transient_faults();
    stats_permanent_ = svc->fault_injector().permanent_failures();
    data_loss_ = svc->data_loss_count();
    return result;
  }

  static void ExpectByteIdentical(const apps::KMeansResult& a,
                                  const apps::KMeansResult& b) {
    ASSERT_EQ(a.centroids.size(), b.centroids.size());
    ASSERT_EQ(0, std::memcmp(a.centroids.data(), b.centroids.data(),
                             a.centroids.size() * sizeof(apps::Point3)));
    EXPECT_EQ(0, std::memcmp(&a.inertia, &b.inertia, sizeof(double)));
  }

  core::ServiceOptions BaseOptions() {
    core::ServiceOptions so;
    // A deliberately tiny DRAM slice: the ~470 KiB dataset spills to NVMe,
    // so the NVMe fault plans actually fire.
    so.tier_grants = {{TierKind::kDram, 32 * kKiB},
                      {TierKind::kNvme, MEGABYTES(32)}};
    return so;
  }

  std::filesystem::path dir_;
  apps::DatagenConfig gen_;
  std::string key_;
  std::uint64_t stats_transient_ = 0;
  std::uint64_t stats_permanent_ = 0;
  std::size_t data_loss_ = 0;
};

TEST_F(KMeansFaultTest, ByteIdenticalUnderTransientFaults) {
  apps::KMeansResult baseline = Run(BaseOptions());

  core::ServiceOptions faulty = BaseOptions();
  faulty.faults.seed = 1234;
  faulty.faults.tier(TierKind::kNvme).transient_error_rate = 0.10;
  faulty.retry.max_attempts = 6;
  apps::KMeansResult result = Run(faulty);

  // 10% of NVMe ops failed transiently; retries absorbed every one and the
  // answer is byte-identical to the fault-free run.
  EXPECT_GT(stats_transient_, 0u);
  EXPECT_EQ(data_loss_, 0u);
  ExpectByteIdentical(baseline, result);
}

TEST_F(KMeansFaultTest, SurvivesPermanentNvmeDeathMidRun) {
  apps::KMeansResult baseline = Run(BaseOptions());

  core::ServiceOptions faulty = BaseOptions();
  faulty.faults.tier(TierKind::kNvme).fail_after_ops = 50;
  apps::KMeansResult result = Run(faulty);

  // The NVMe tier died mid-run. The dataset is read-only (all pages clean),
  // so recovery re-staged from the PFS backend and the run degraded to the
  // surviving DRAM tier — same answer, no data loss.
  EXPECT_EQ(stats_permanent_, 1u);
  EXPECT_EQ(data_loss_, 0u);
  ExpectByteIdentical(baseline, result);
}

}  // namespace
}  // namespace mm
