// Unit tests for the telemetry subsystem (DESIGN.md §11): concurrent
// counter exactness, histogram bucket boundaries, snapshot merging, and
// the trace recorder's JSON shape / ring-overflow behavior. The whole file
// skips under -DMM_TELEMETRY=OFF, where every class is a stateless stub.
#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mm/telemetry/metrics.h"
#include "mm/telemetry/report.h"
#include "mm/telemetry/trace.h"

namespace mm::telemetry {
namespace {

#if !MM_TELEMETRY_ENABLED
TEST(Telemetry, CompiledOut) {
  GTEST_SKIP() << "built with -DMM_TELEMETRY=OFF";
}
#else

TEST(MetricsRegistry, HandlesAreStableAndShared) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("mm.test.a_count");
  Counter* b = reg.GetCounter("mm.test.b_count");
  EXPECT_NE(a, b);
  // Same name -> same object, regardless of how many metrics were
  // registered in between (deque storage, no reallocation).
  for (int i = 0; i < 1000; ++i) {
    reg.GetCounter("mm.test.filler" + std::to_string(i) + "_count");
  }
  EXPECT_EQ(reg.GetCounter("mm.test.a_count"), a);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Resolve inside the thread: registration itself must also be safe
      // under concurrency.
      Counter* c = reg.GetCounter("mm.test.contended_count");
      Gauge* g = reg.GetGauge("mm.test.level_count");
      for (int i = 0; i < kPerThread; ++i) {
        c->Inc();
        g->Add(1);
        g->Add(-1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.GetCounter("mm.test.contended_count")->value(),
            std::uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(reg.GetGauge("mm.test.level_count")->value(), 0);
}

TEST(Histogram, BucketBoundaries) {
  // Buckets: (-inf,10], (10,100], (100,+inf).
  Histogram h({10.0, 100.0});
  h.Observe(10.0);   // on the bound -> first bucket (<= semantics)
  h.Observe(10.5);   // second bucket
  h.Observe(100.0);  // second bucket
  h.Observe(1e9);    // overflow bucket
  h.Observe(-5.0);   // below the first bound -> first bucket
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.buckets.size(), 3u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 10.0 + 10.5 + 100.0 + 1e9 - 5.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), snap.sum / 5.0);
}

TEST(MetricsSnapshot, MergeAccumulates) {
  MetricsRegistry a, b;
  a.GetCounter("mm.test.x_count")->Inc(3);
  b.GetCounter("mm.test.x_count")->Inc(4);
  b.GetCounter("mm.test.only_b_count")->Inc(1);
  a.GetGauge("mm.test.g_bytes")->Set(10);
  b.GetGauge("mm.test.g_bytes")->Set(32);
  a.GetHistogram("mm.test.h_ns", {1.0})->Observe(0.5);
  b.GetHistogram("mm.test.h_ns", {1.0})->Observe(2.0);
  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.counters.at("mm.test.x_count"), 7u);
  EXPECT_EQ(merged.counters.at("mm.test.only_b_count"), 1u);
  EXPECT_EQ(merged.gauges.at("mm.test.g_bytes"), 42);
  EXPECT_EQ(merged.histograms.at("mm.test.h_ns").count, 2u);
}

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder rec(16);
  rec.Complete("span", "test", 0, 0, 0.0, 1.0);
  rec.Instant("mark", "test", 0, 0, 0.5);
  EXPECT_EQ(rec.size(), 0u);
}

TEST(TraceRecorder, JsonShapeAndVirtualTimestamps) {
  TraceRecorder rec(16);
  rec.set_enabled(true);
  rec.Complete("read", "tier", /*node=*/2, /*tid=*/1, 0.001, 0.003);
  rec.Instant("mark", "prefetch", /*node=*/0, /*tid=*/0, 0.002);
  auto events = rec.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Virtual seconds -> trace microseconds.
  EXPECT_DOUBLE_EQ(events[0].ts_us, 1000.0);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 2000.0);
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_EQ(events[0].pid, 2);
  EXPECT_EQ(events[1].ph, 'i');

  std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"tier\""), std::string::npos) << json;
  // Balanced braces: crude but catches truncated serialization.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TraceRecorder, RingOverflowDropsOldest) {
  TraceRecorder rec(4);
  rec.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    rec.Instant("e" + std::to_string(i), "test", 0, 0, double(i));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  auto events = rec.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first order, holding the newest four events.
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
  // Timestamps stay monotonic across the wrap.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

TEST(EpochReporter, DeltasBetweenEpochs) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("mm.test.ops_count");
  Gauge* g = reg.GetGauge("mm.test.level_bytes");
  EpochReporter reporter;

  c->Inc(5);
  g->Set(100);
  ClusterSnapshot snap1{reg.Snapshot(), {reg.Snapshot()}};
  std::string line1 = reporter.Epoch(snap1, 1.0);
  EXPECT_NE(line1.find("\"epoch\":0"), std::string::npos);
  EXPECT_NE(line1.find("\"mm.test.ops_count\":5"), std::string::npos);

  c->Inc(2);
  g->Set(70);
  ClusterSnapshot snap2{reg.Snapshot(), {reg.Snapshot()}};
  std::string line2 = reporter.Epoch(snap2, 2.0);
  // Counter reported as delta, gauge as absolute.
  EXPECT_NE(line2.find("\"mm.test.ops_count\":2"), std::string::npos) << line2;
  EXPECT_NE(line2.find("\"mm.test.level_bytes\":70"), std::string::npos);
  EXPECT_EQ(reporter.epochs(), 2);
}

#endif  // MM_TELEMETRY_ENABLED

}  // namespace
}  // namespace mm::telemetry
