#include "mm/util/status.h"

#include <gtest/gtest.h>

namespace mm {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("page 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "page 7");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: page 7");
}

TEST(Status, AllFactoryHelpersProduceDistinctCodes) {
  EXPECT_EQ(InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFound("a"), NotFound("a"));
  EXPECT_FALSE(NotFound("a") == NotFound("b"));
  EXPECT_FALSE(NotFound("a") == Internal("a"));
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, ValueOnErrorThrows) {
  StatusOr<int> v = Internal("bad");
  EXPECT_THROW(v.value(), std::logic_error);
}

TEST(StatusOr, MoveOnlyTypesWork) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

Status FailsIfNegative(int x) {
  if (x < 0) return InvalidArgument("negative");
  return Status::Ok();
}

Status UsesReturnIfError(int x) {
  MM_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::Ok();
}

TEST(StatusMacros, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  MM_ASSIGN_OR_RETURN(int h, Half(x));
  MM_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusMacros, AssignOrReturnChains) {
  auto q = Quarter(8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 2);
  EXPECT_FALSE(Quarter(6).ok());
}

TEST(Check, ThrowsOnViolation) {
  EXPECT_THROW(MM_CHECK(1 == 2), std::logic_error);
  EXPECT_NO_THROW(MM_CHECK(1 == 1));
}

}  // namespace
}  // namespace mm
