#include "mm/util/blocking_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

namespace mm {
namespace {

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) q.Push(i);
  for (int i = 0; i < 10; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BlockingQueue, TryPopNonBlocking) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
  q.Push(7);
  auto v = q.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueue, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto v = q.Pop();
    EXPECT_TRUE(v.has_value());
    got.store(true);
  });
  // Give the consumer a moment to block.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(got.load());
  q.Push(1);
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(BlockingQueue, CloseDrainsThenReturnsNullopt) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.Pop().has_value());  // stays closed
}

TEST(BlockingQueue, CloseWakesBlockedConsumers) {
  BlockingQueue<int> q;
  std::vector<std::thread> consumers;
  std::atomic<int> woke{0};
  for (int i = 0; i < 4; ++i) {
    consumers.emplace_back([&] {
      EXPECT_FALSE(q.Pop().has_value());
      woke.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), 4);
}

TEST(BlockingQueue, MpmcDeliversEveryItemExactlyOnce) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 500;
  std::mutex out_mu;
  std::multiset<int> delivered;
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        std::lock_guard<std::mutex> lock(out_mu);
        delivered.insert(*v);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();
  ASSERT_EQ(delivered.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  for (int x = 0; x < kProducers * kPerProducer; ++x) {
    EXPECT_EQ(delivered.count(x), 1u) << x;
  }
}

TEST(BlockingQueue, MoveOnlyItems) {
  BlockingQueue<std::unique_ptr<int>> q;
  q.Push(std::make_unique<int>(42));
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

// The Close()+Push()/Pop() ordering contract under real concurrency (run
// under TSan in CI): a Push that loses the race to Close returns false
// WITHOUT consuming the item — exactly the "Submit after shutdown" path,
// where the runtime must still fulfill the rejected task's promise.
TEST(BlockingQueue, CloseRacePushEitherEnqueuesOrRejectsIntact) {
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    BlockingQueue<std::unique_ptr<int>> q;
    std::atomic<int> accepted{0};
    std::atomic<int> rejected_intact{0};
    constexpr int kPushers = 4;
    std::vector<std::thread> pushers;
    for (int p = 0; p < kPushers; ++p) {
      pushers.emplace_back([&, p] {
        auto item = std::make_unique<int>(p);
        if (q.Push(std::move(item))) {
          accepted.fetch_add(1);
        } else if (item != nullptr && *item == p) {
          // Rejected pushes keep ownership so the caller can still act.
          rejected_intact.fetch_add(1);
        }
      });
    }
    std::thread closer([&] { q.Close(); });
    for (auto& t : pushers) t.join();
    closer.join();
    // Every push either landed in the queue or bounced with the item
    // intact — none vanished.
    EXPECT_EQ(accepted.load() + rejected_intact.load(), kPushers);
    int drained = 0;
    while (q.TryPop().has_value()) ++drained;
    EXPECT_EQ(drained, accepted.load());
  }
}

TEST(BlockingQueue, CloseRacePopDrainsAcceptedItems) {
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    BlockingQueue<int> q;
    std::atomic<int> pushed{0};
    std::atomic<int> popped{0};
    std::thread producer([&] {
      for (int i = 0; i < 8; ++i) {
        if (q.Push(int{i})) pushed.fetch_add(1);
      }
    });
    std::vector<std::thread> consumers;
    for (int c = 0; c < 2; ++c) {
      consumers.emplace_back([&] {
        while (q.Pop().has_value()) popped.fetch_add(1);
      });
    }
    std::thread closer([&] { q.Close(); });
    producer.join();
    closer.join();
    for (auto& t : consumers) t.join();
    // Close never loses accepted items: consumers drain the queue before
    // observing closure, and whatever they missed is still poppable.
    int leftover = 0;
    while (q.TryPop().has_value()) ++leftover;
    EXPECT_EQ(popped.load() + leftover, pushed.load());
  }
}

TEST(BlockingQueue, SizeTracksContents) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.size(), 0u);
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.size(), 2u);
  (void)q.Pop();  // only the size change is under test
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace mm
