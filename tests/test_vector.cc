// End-to-end tests of mm::Vector over the full stack: pcache, runtime
// MemoryTasks, tiered scache, metadata, staging backends, coherence modes.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "mm/mega_mmap.h"

namespace mm {
namespace {

using core::Service;
using core::ServiceOptions;
using core::VectorOptions;

class VectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mm_vec_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    cluster_ = sim::Cluster::PaperTestbed(2);
    sopts_.tier_grants = {{sim::TierKind::kDram, MEGABYTES(4)},
                          {sim::TierKind::kNvme, MEGABYTES(16)}};
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Key(const std::string& scheme, const std::string& name,
                  const std::string& frag = "") {
    std::string k = scheme + "://" + (dir_ / name).string();
    if (!frag.empty()) k += ":" + frag;
    return k;
  }

  VectorOptions SmallPages() {
    VectorOptions o;
    o.page_size = 4096;
    o.pcache_bytes = 64 * kKiB;
    return o;
  }

  std::filesystem::path dir_;
  std::unique_ptr<sim::Cluster> cluster_;
  ServiceOptions sopts_;
};

TEST_F(VectorTest, SingleRankWriteReadBack) {
  Service svc(cluster_.get(), sopts_);
  auto result = comm::RunRanks(*cluster_, 1, 1, [&](comm::RankContext& ctx) {
    Vector<double> v(svc, ctx, Key("posix", "wr.bin"), 10000, SmallPages());
    EXPECT_EQ(v.size(), 10000u);
    auto tx = v.SeqTxBegin(0, 10000, MM_WRITE_ONLY);
    for (std::uint64_t i = 0; i < 10000; ++i) v[i] = static_cast<double>(i);
    v.TxEnd();
    auto rtx = v.SeqTxBegin(0, 10000, MM_READ_ONLY);
    double sum = 0;
    for (double x : rtx) sum += x;
    v.TxEnd();
    EXPECT_DOUBLE_EQ(sum, 10000.0 * 9999.0 / 2);
  });
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GT(result.max_time, 0.0);
}

TEST_F(VectorTest, BoundMemoryForcesEvictionAndDataSurvives) {
  Service svc(cluster_.get(), sopts_);
  auto result = comm::RunRanks(*cluster_, 1, 1, [&](comm::RankContext& ctx) {
    VectorOptions o = SmallPages();
    o.pcache_bytes = 4 * 4096;  // 4 pages for ~20 pages of data
    Vector<std::uint64_t> v(svc, ctx, Key("posix", "bm.bin"), 10000, o);
    auto tx = v.SeqTxBegin(0, 10000, MM_WRITE_ONLY);
    for (std::uint64_t i = 0; i < 10000; ++i) v[i] = i * 3;
    v.TxEnd();
    EXPECT_GT(v.evictions(), 0u);
    EXPECT_LE(v.pcache().used(), o.pcache_bytes);
    auto rtx = v.SeqTxBegin(0, 10000, MM_READ_ONLY);
    for (std::uint64_t i = 0; i < 10000; ++i) {
      ASSERT_EQ(v[i], i * 3) << "element " << i;
    }
    v.TxEnd();
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST_F(VectorTest, TwoRanksShareDataAfterBarrier) {
  Service svc(cluster_.get(), sopts_);
  auto result = comm::RunRanks(*cluster_, 2, 1, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    Vector<int> v(svc, ctx, Key("posix", "share.bin"), 4096, SmallPages());
    if (ctx.rank() == 0) {
      auto tx = v.SeqTxBegin(0, 4096, MM_WRITE_ONLY);
      for (int i = 0; i < 4096; ++i) v[i] = i + 1;
      v.TxEnd();
    }
    comm.Barrier();
    if (ctx.rank() == 1) {
      auto tx = v.SeqTxBegin(0, 4096, MM_READ_ONLY);
      long sum = 0;
      for (int x : tx) sum += x;
      v.TxEnd();
      EXPECT_EQ(sum, 4096L * 4097 / 2);
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST_F(VectorTest, PgasPartitionCoversAllElementsExactly) {
  Service svc(cluster_.get(), sopts_);
  const std::uint64_t n = 1003;  // deliberately not divisible
  std::atomic<std::uint64_t> covered{0};
  auto result = comm::RunRanks(*cluster_, 4, 2, [&](comm::RankContext& ctx) {
    Vector<int> v(svc, ctx, Key("posix", "pgas.bin"), n, SmallPages());
    v.Pgas(ctx.rank(), ctx.size());
    covered.fetch_add(v.local_size());
    // Partitions are contiguous and ordered.
    if (ctx.rank() == 0) EXPECT_EQ(v.local_off(), 0u);
    EXPECT_LE(v.local_off() + v.local_size(), n);
  });
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(covered.load(), n);
}

TEST_F(VectorTest, NonOverlappingWritesLocalMode) {
  // Read/Write Local (Fig. 3): every rank writes its own partition; all
  // partitions must be intact afterwards, including ranks sharing pages.
  Service svc(cluster_.get(), sopts_);
  const std::uint64_t n = 8192;
  auto result = comm::RunRanks(*cluster_, 4, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    VectorOptions o = SmallPages();
    o.mode = core::CoherenceMode::kLocal;
    Vector<std::uint32_t> v(svc, ctx, Key("posix", "local.bin"), n, o);
    v.Pgas(ctx.rank(), ctx.size());
    auto tx = v.SeqTxBegin(v.local_off(), v.local_size(), MM_WRITE_ONLY);
    for (std::uint64_t i = v.local_off(); i < v.local_off() + v.local_size();
         ++i) {
      v[i] = static_cast<std::uint32_t>(i ^ 0xABCD);
    }
    v.TxEnd();
    comm.Barrier();
    // Everyone verifies everything.
    auto rtx = v.SeqTxBegin(0, n, MM_READ_ONLY);
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(v[i], static_cast<std::uint32_t>(i ^ 0xABCD)) << i;
    }
    v.TxEnd();
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST_F(VectorTest, PersistenceAcrossServices) {
  // Write with one service, shut it down, read the file with a fresh one.
  std::string key = Key("posix", "persist.bin");
  {
    Service svc(cluster_.get(), sopts_);
    auto result = comm::RunRanks(*cluster_, 1, 1, [&](comm::RankContext& ctx) {
      Vector<std::uint64_t> v(svc, ctx, key, 5000, SmallPages());
      auto tx = v.SeqTxBegin(0, 5000, MM_WRITE_ONLY);
      for (std::uint64_t i = 0; i < 5000; ++i) v[i] = i * i;
      v.TxEnd();
    });
    ASSERT_TRUE(result.ok()) << result.error;
    svc.Shutdown();  // stages all dirty pages to the backend
  }
  EXPECT_TRUE(std::filesystem::exists(
      (dir_ / "persist.bin")));
  {
    auto cluster2 = sim::Cluster::PaperTestbed(2);
    Service svc(cluster2.get(), sopts_);
    auto result = comm::RunRanks(*cluster2, 1, 1, [&](comm::RankContext& ctx) {
      Vector<std::uint64_t> v(svc, ctx, key, 0, SmallPages());
      ASSERT_EQ(v.size(), 5000u);  // size recovered from the backend
      auto tx = v.SeqTxBegin(0, 5000, MM_READ_ONLY);
      for (std::uint64_t i = 0; i < 5000; ++i) {
        ASSERT_EQ(v[i], i * i) << i;
      }
      v.TxEnd();
    });
    ASSERT_TRUE(result.ok()) << result.error;
  }
}

TEST_F(VectorTest, ShdfBackedVectorPersists) {
  std::string key = Key("shdf", "data.h5", "positions");
  {
    Service svc(cluster_.get(), sopts_);
    auto result = comm::RunRanks(*cluster_, 1, 1, [&](comm::RankContext& ctx) {
      Vector<float> v(svc, ctx, key, 4096, SmallPages());
      auto tx = v.SeqTxBegin(0, 4096, MM_WRITE_ONLY);
      for (std::uint64_t i = 0; i < 4096; ++i) v[i] = i * 0.5f;
      v.TxEnd();
      v.Flush();
    });
    ASSERT_TRUE(result.ok()) << result.error;
  }
  // Independently verify through the stager API.
  auto resolved = storage::StagerRegistry::Default().Resolve(key);
  ASSERT_TRUE(resolved.ok());
  auto size = resolved->first->Size(resolved->second);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 4096 * sizeof(float));
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(resolved->first->Read(resolved->second, 0, 64, &bytes).ok());
  float f0, f1;
  std::memcpy(&f0, bytes.data(), 4);
  std::memcpy(&f1, bytes.data() + 4, 4);
  EXPECT_FLOAT_EQ(f0, 0.0f);
  EXPECT_FLOAT_EQ(f1, 0.5f);
}

TEST_F(VectorTest, SparBackedVectorRoundTrips) {
  struct Point3D {
    float x, y, z;
  };
  std::string key = Key("spar", "pts.parquet", "f4x3");
  Service svc(cluster_.get(), sopts_);
  auto result = comm::RunRanks(*cluster_, 1, 1, [&](comm::RankContext& ctx) {
    VectorOptions o;
    o.page_size = 120 * 16;  // multiple of 12-byte rows
    Vector<Point3D> v(svc, ctx, key, 5000, o);
    auto tx = v.SeqTxBegin(0, 5000, MM_WRITE_ONLY);
    for (std::uint64_t i = 0; i < 5000; ++i) {
      v[i] = Point3D{float(i), float(i) * 2, float(i) * 3};
    }
    v.TxEnd();
    v.Flush();
    auto rtx = v.SeqTxBegin(0, 5000, MM_READ_ONLY);
    for (std::uint64_t i = 0; i < 5000; ++i) {
      Point3D p = v[i];
      ASSERT_FLOAT_EQ(p.y, float(i) * 2) << i;
    }
    v.TxEnd();
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST_F(VectorTest, AppendGrowsVector) {
  Service svc(cluster_.get(), sopts_);
  auto result = comm::RunRanks(*cluster_, 2, 1, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    VectorOptions o = SmallPages();
    o.mode = core::CoherenceMode::kAppendOnlyGlobal;
    Vector<int> v(svc, ctx, Key("posix", "append.bin"), 0, o);
    for (int i = 0; i < 500; ++i) {
      v.Append(ctx.rank() * 1000 + i);
    }
    v.Flush();
    comm.Barrier();
    EXPECT_EQ(v.size(), 1000u);
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST_F(VectorTest, VolatileVectorNeverTouchesBackend) {
  Service svc(cluster_.get(), sopts_);
  auto result = comm::RunRanks(*cluster_, 1, 1, [&](comm::RankContext& ctx) {
    VectorOptions o = SmallPages();
    o.nonvolatile = false;
    Vector<int> v(svc, ctx, "scratch_volatile", 2048, o);
    auto tx = v.SeqTxBegin(0, 2048, MM_READ_WRITE);
    for (int i = 0; i < 2048; ++i) v[i] = -i;
    for (int i = 0; i < 2048; ++i) ASSERT_EQ(v[i], -i);
    v.TxEnd();
  });
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_FALSE(std::filesystem::exists("scratch_volatile"));
}

TEST_F(VectorTest, DestroyRemovesScacheState) {
  Service svc(cluster_.get(), sopts_);
  auto result = comm::RunRanks(*cluster_, 1, 1, [&](comm::RankContext& ctx) {
    VectorOptions o = SmallPages();
    o.nonvolatile = false;
    Vector<int> v(svc, ctx, "doomed", 4096, o);
    auto tx = v.SeqTxBegin(0, 4096, MM_WRITE_ONLY);
    for (int i = 0; i < 4096; ++i) v[i] = i;
    v.TxEnd();
    EXPECT_GT(svc.metadata().TotalBlobs(), 0u);
    v.Destroy();
  });
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(svc.metadata().TotalBlobs(), 0u);
}

TEST_F(VectorTest, ReadOnlyGlobalReplicates) {
  Service svc(cluster_.get(), sopts_);
  std::string key = Key("posix", "ro.bin");
  // Pre-create the dataset.
  {
    auto resolved = storage::StagerRegistry::Default().Resolve(key);
    ASSERT_TRUE(resolved.ok());
    std::vector<std::uint8_t> bytes(64 * 1024);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = static_cast<std::uint8_t>(i);
    }
    ASSERT_TRUE(resolved->first->Create(resolved->second, bytes.size()).ok());
    ASSERT_TRUE(resolved->first->Write(resolved->second, 0, bytes).ok());
  }
  auto result = comm::RunRanks(*cluster_, 2, 1, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    VectorOptions o = SmallPages();
    o.mode = core::CoherenceMode::kReadOnlyGlobal;
    Vector<std::uint8_t> v(svc, ctx, key, 0, o);
    comm.Barrier();
    auto tx = v.SeqTxBegin(0, v.size(), MM_READ_ONLY);
    std::uint64_t sum = 0;
    for (std::uint8_t b : tx) sum += b;
    v.TxEnd();
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < 64 * 1024; ++i) {
      expected += static_cast<std::uint8_t>(i);
    }
    EXPECT_EQ(sum, expected);
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST_F(VectorTest, PhaseChangeInvalidatesReplicasAndAllowsWrites) {
  Service svc(cluster_.get(), sopts_);
  std::string key = Key("posix", "phase.bin");
  auto result = comm::RunRanks(*cluster_, 2, 1, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    VectorOptions o = SmallPages();
    o.mode = core::CoherenceMode::kWriteOnlyGlobal;
    Vector<int> v(svc, ctx, key, 2048, o);
    // Phase 1: rank 0 writes.
    if (ctx.rank() == 0) {
      auto tx = v.SeqTxBegin(0, 2048, MM_WRITE_ONLY);
      for (int i = 0; i < 2048; ++i) v[i] = 1;
      v.TxEnd();
    }
    comm.Barrier();
    // Phase 2: read-only; both ranks read (replication kicks in).
    v.ChangePhase(core::CoherenceMode::kReadOnlyGlobal);
    comm.Barrier();
    {
      auto tx = v.SeqTxBegin(0, 2048, MM_READ_ONLY);
      long sum = 0;
      for (int x : tx) sum += x;
      v.TxEnd();
      EXPECT_EQ(sum, 2048);
    }
    comm.Barrier();
    // Phase 3: back to writable; rank 1 rewrites, then all re-read.
    v.ChangePhase(core::CoherenceMode::kWriteOnlyGlobal);
    comm.Barrier();
    if (ctx.rank() == 1) {
      auto tx = v.SeqTxBegin(0, 2048, MM_WRITE_ONLY);
      for (int i = 0; i < 2048; ++i) v[i] = 2;
      v.TxEnd();
    }
    comm.Barrier();
    v.ChangePhase(core::CoherenceMode::kReadOnlyGlobal);
    comm.Barrier();
    {
      auto tx = v.SeqTxBegin(0, 2048, MM_READ_ONLY);
      long sum = 0;
      for (int x : tx) sum += x;
      v.TxEnd();
      EXPECT_EQ(sum, 4096);  // stale replicas would give 2048
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST_F(VectorTest, PrefetchReducesFaults) {
  Service svc(cluster_.get(), sopts_);
  std::uint64_t faults_with = 0, faults_without = 0;
  auto run = [&](bool prefetch, const std::string& key,
                 std::uint64_t* faults) {
    ServiceOptions so = sopts_;
    so.enable_prefetch = prefetch;
    auto cluster = sim::Cluster::PaperTestbed(1);
    Service s(cluster.get(), so);
    auto result = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
      VectorOptions o = SmallPages();
      o.pcache_bytes = 8 * 4096;
      Vector<std::uint64_t> v(s, ctx, key, 20000, o);
      {  // materialize everything first
        auto tx = v.SeqTxBegin(0, 20000, MM_WRITE_ONLY);
        for (std::uint64_t i = 0; i < 20000; ++i) v[i] = i;
        v.TxEnd();
      }
      auto tx = v.SeqTxBegin(0, 20000, MM_READ_ONLY);
      std::uint64_t sum = 0;
      for (std::uint64_t x : tx) sum += x;
      v.TxEnd();
      EXPECT_EQ(sum, 20000ULL * 19999 / 2);
      *faults = v.faults();
    });
    ASSERT_TRUE(result.ok()) << result.error;
  };
  run(true, Key("posix", "pf_on.bin"), &faults_with);
  run(false, Key("posix", "pf_off.bin"), &faults_without);
  EXPECT_LT(faults_with, faults_without);
}

TEST_F(VectorTest, LargeDatasetSpillsToNvme) {
  // Dataset bigger than the DRAM grant: pages must overflow into NVMe and
  // still read back correctly.
  ServiceOptions so = sopts_;
  so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(1)},
                    {sim::TierKind::kNvme, MEGABYTES(16)}};
  Service svc(cluster_.get(), so);
  auto result = comm::RunRanks(*cluster_, 1, 1, [&](comm::RankContext& ctx) {
    VectorOptions o = SmallPages();
    o.pcache_bytes = 16 * 4096;
    const std::uint64_t n = MEGABYTES(3) / sizeof(std::uint64_t);
    Vector<std::uint64_t> v(svc, ctx, Key("posix", "spill.bin"), n, o);
    auto tx = v.SeqTxBegin(0, n, MM_WRITE_ONLY);
    for (std::uint64_t i = 0; i < n; ++i) v[i] = ~i;
    v.TxEnd();
    // Something must have landed in NVMe.
    std::uint64_t nvme_used = 0;
    for (std::size_t node = 0; node < svc.num_nodes(); ++node) {
      auto& bm = svc.runtime(node).buffer();
      nvme_used += bm.tier(1).used();
    }
    EXPECT_GT(nvme_used, 0u);
    auto rtx = v.SeqTxBegin(0, n, MM_READ_ONLY);
    for (std::uint64_t i = 0; i < n; i += 997) {
      ASSERT_EQ(v[i], ~i) << i;
    }
    v.TxEnd();
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST_F(VectorTest, ElementSizeMismatchRejected) {
  Service svc(cluster_.get(), sopts_);
  auto result = comm::RunRanks(*cluster_, 1, 1, [&](comm::RankContext& ctx) {
    VectorOptions o = SmallPages();
    o.nonvolatile = false;
    Vector<int> a(svc, ctx, "typed", 128, o);
    EXPECT_THROW(Vector<double> b(svc, ctx, "typed", 128, o),
                 std::runtime_error);
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST_F(VectorTest, OutOfRangeAccessChecks) {
  Service svc(cluster_.get(), sopts_);
  auto result = comm::RunRanks(*cluster_, 1, 1, [&](comm::RankContext& ctx) {
    VectorOptions o = SmallPages();
    o.nonvolatile = false;
    Vector<int> v(svc, ctx, "oob", 100, o);
    EXPECT_THROW(v[100], std::logic_error);
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

}  // namespace
}  // namespace mm
