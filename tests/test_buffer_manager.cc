#include "mm/storage/buffer_manager.h"

#include <gtest/gtest.h>

#include "mm/sim/cluster.h"
#include "mm/util/byte_units.h"
#include "mm/util/rng.h"

namespace mm::storage {
namespace {

using sim::TierKind;

class BufferManagerTest : public ::testing::Test {
 protected:
  BufferManagerTest() : cluster_(sim::Cluster::PaperTestbed(1)) {
    grants_ = {{TierKind::kDram, MEGABYTES(1)},
               {TierKind::kNvme, MEGABYTES(2)},
               {TierKind::kHdd, MEGABYTES(4)}};
    bm_ = std::make_unique<BufferManager>(&cluster_->node(0), grants_);
  }

  static std::vector<std::uint8_t> Bytes(std::size_t n, std::uint8_t fill) {
    return std::vector<std::uint8_t>(n, fill);
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::vector<TierGrant> grants_;
  std::unique_ptr<BufferManager> bm_;
};

TEST_F(BufferManagerTest, PlacesInFastestTierFirst) {
  auto t = bm_->PutScored(BlobId{1, 0}, Bytes(1000, 1), 0.5f, 0.0, nullptr);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 0u);  // DRAM
  EXPECT_EQ(bm_->tier(0).used(), 1000u);
}

TEST_F(BufferManagerTest, SpillsToNextTierWhenFull) {
  // Fill DRAM with equally-scored pages; next put cascades the demotion of
  // equal-score victims is NOT allowed (score must be strictly lower), so
  // the new page lands in NVMe.
  ASSERT_TRUE(
      bm_->PutScored(BlobId{1, 0}, Bytes(MEGABYTES(1), 1), 0.5f, 0.0, nullptr)
          .ok());
  auto t = bm_->PutScored(BlobId{1, 1}, Bytes(1000, 2), 0.5f, 0.0, nullptr);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 1u);  // NVMe
}

TEST_F(BufferManagerTest, HigherScoreDemotesLowerScore) {
  ASSERT_TRUE(
      bm_->PutScored(BlobId{1, 0}, Bytes(MEGABYTES(1), 1), 0.2f, 0.0, nullptr)
          .ok());
  // A higher-score page forces the resident one down to NVMe.
  auto t = bm_->PutScored(BlobId{1, 1}, Bytes(MEGABYTES(1), 2), 0.9f, 0.0,
                          nullptr);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 0u);
  EXPECT_EQ(bm_->FindBlob(BlobId{1, 0}), std::make_optional<std::size_t>(1));
  EXPECT_EQ(bm_->FindBlob(BlobId{1, 1}), std::make_optional<std::size_t>(0));
}

TEST_F(BufferManagerTest, CascadingDemotionThroughThreeTiers) {
  // Fill DRAM (1M) and NVMe (2M) with low-score data.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(bm_->PutScored(BlobId{1, static_cast<std::uint64_t>(i)},
                               Bytes(MEGABYTES(1), 1), 0.1f, 0.0, nullptr)
                    .ok());
  }
  EXPECT_EQ(bm_->tier(0).used() + bm_->tier(1).used(), MEGABYTES(3));
  // A high-score 1M page pushes one page out of DRAM into NVMe, which in
  // turn pushes a page into HDD.
  auto t = bm_->PutScored(BlobId{2, 0}, Bytes(MEGABYTES(1), 9), 0.9f, 0.0,
                          nullptr);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 0u);
  EXPECT_EQ(bm_->tier(2).used(), MEGABYTES(1));  // something reached HDD
  // Nothing lost: all four blobs resident somewhere.
  EXPECT_TRUE(bm_->FindBlob(BlobId{1, 0}).has_value());
  EXPECT_TRUE(bm_->FindBlob(BlobId{1, 1}).has_value());
  EXPECT_TRUE(bm_->FindBlob(BlobId{1, 2}).has_value());
  EXPECT_TRUE(bm_->FindBlob(BlobId{2, 0}).has_value());
}

TEST_F(BufferManagerTest, ExhaustionReportedWhenAllTiersFull) {
  // Total capacity is 7M of high-score data; the 8th put must fail.
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(bm_->PutScored(BlobId{1, static_cast<std::uint64_t>(i)},
                               Bytes(MEGABYTES(1), 1), 0.9f, 0.0, nullptr)
                    .ok());
  }
  auto st = bm_->PutScored(BlobId{2, 0}, Bytes(MEGABYTES(1), 1), 0.9f, 0.0,
                           nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(BufferManagerTest, GetFindsBlobInAnyTier) {
  ASSERT_TRUE(
      bm_->PutScored(BlobId{1, 0}, Bytes(MEGABYTES(1), 7), 0.9f, 0.0, nullptr)
          .ok());
  ASSERT_TRUE(
      bm_->PutScored(BlobId{1, 1}, Bytes(MEGABYTES(1), 8), 0.95f, 0.0, nullptr)
          .ok());
  // Blob 0 got demoted; Get must still find it.
  auto data = bm_->Get(BlobId{1, 0}, 0.0, nullptr);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)[0], 7);
  auto missing = bm_->Get(BlobId{9, 9}, 0.0, nullptr);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(BufferManagerTest, PartialUpdateInPlace) {
  ASSERT_TRUE(
      bm_->PutScored(BlobId{1, 0}, Bytes(4096, 0), 0.5f, 0.0, nullptr).ok());
  ASSERT_TRUE(bm_->PutPartial(BlobId{1, 0}, 10, Bytes(5, 0xEE), 0.0, nullptr)
                  .ok());
  auto frag = bm_->GetPartial(BlobId{1, 0}, 10, 5, 0.0, nullptr);
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ((*frag)[0], 0xEE);
}

TEST_F(BufferManagerTest, RebalancePromotesHighScoreBlobs) {
  // Land a page in NVMe by filling DRAM, then free DRAM and rebalance.
  ASSERT_TRUE(
      bm_->PutScored(BlobId{1, 0}, Bytes(MEGABYTES(1), 1), 0.9f, 0.0, nullptr)
          .ok());
  ASSERT_TRUE(
      bm_->PutScored(BlobId{1, 1}, Bytes(1000, 2), 0.8f, 0.0, nullptr).ok());
  EXPECT_EQ(bm_->FindBlob(BlobId{1, 1}), std::make_optional<std::size_t>(1));
  ASSERT_TRUE(bm_->Erase(BlobId{1, 0}).ok());
  sim::SimTime done = 0;
  int moved = bm_->Rebalance(0.0, &done);
  EXPECT_GE(moved, 1);
  EXPECT_EQ(bm_->FindBlob(BlobId{1, 1}), std::make_optional<std::size_t>(0));
}

TEST_F(BufferManagerTest, RebalanceLeavesZeroScoreBlobsDown) {
  ASSERT_TRUE(
      bm_->PutScored(BlobId{1, 0}, Bytes(1000, 1), 0.0f, 0.0, nullptr).ok());
  // Zero-score blob placed in DRAM initially (room available)...
  EXPECT_EQ(bm_->FindBlob(BlobId{1, 0}), std::make_optional<std::size_t>(0));
  // ...but once demoted it is not promoted back.
  ASSERT_TRUE(
      bm_->PutScored(BlobId{1, 1}, Bytes(MEGABYTES(1), 2), 0.9f, 0.0, nullptr)
          .ok());
  EXPECT_EQ(bm_->FindBlob(BlobId{1, 0}), std::make_optional<std::size_t>(1));
  ASSERT_TRUE(bm_->Erase(BlobId{1, 1}).ok());
  bm_->Rebalance(0.0, nullptr);
  EXPECT_EQ(bm_->FindBlob(BlobId{1, 0}), std::make_optional<std::size_t>(1));
}

TEST_F(BufferManagerTest, EstimateReadSecondsReflectsTier) {
  ASSERT_TRUE(
      bm_->PutScored(BlobId{1, 0}, Bytes(1000, 1), 0.9f, 0.0, nullptr).ok());
  double dram_est = bm_->EstimateReadSeconds(BlobId{1, 0}, MEGABYTES(1));
  double absent_est = bm_->EstimateReadSeconds(BlobId{9, 9}, MEGABYTES(1));
  EXPECT_LT(dram_est, absent_est);  // absent pages assume the slowest tier
}

TEST_F(BufferManagerTest, ScoresPersist) {
  bm_->SetScore(BlobId{3, 3}, 0.7f);
  EXPECT_FLOAT_EQ(bm_->GetScore(BlobId{3, 3}), 0.7f);
  EXPECT_FLOAT_EQ(bm_->GetScore(BlobId{4, 4}), 0.0f);
}

TEST_F(BufferManagerTest, UsedAndCapacityAggregate) {
  EXPECT_EQ(bm_->capacity(), MEGABYTES(7));
  ASSERT_TRUE(
      bm_->PutScored(BlobId{1, 0}, Bytes(1234, 1), 0.5f, 0.0, nullptr).ok());
  EXPECT_EQ(bm_->used(), 1234u);
}

TEST_F(BufferManagerTest, GrantMustMatchNodeTiers) {
  std::vector<TierGrant> bad = {{TierKind::kPfs, MEGABYTES(1)}};
  EXPECT_THROW(BufferManager(&cluster_->node(0), bad), std::logic_error);
}

TEST_F(BufferManagerTest, GrantsMustBeSortedFastestFirst) {
  std::vector<TierGrant> bad = {{TierKind::kNvme, MEGABYTES(1)},
                                {TierKind::kDram, MEGABYTES(1)}};
  EXPECT_THROW(BufferManager(&cluster_->node(0), bad), std::logic_error);
}

// Property: under random scored puts, capacity invariants always hold and
// no blob is ever lost.
class BufferManagerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferManagerPropertyTest, NoBlobLostAndCapacityRespected) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  BufferManager bm(&cluster->node(0), {{TierKind::kDram, KIBIBYTES(64)},
                                       {TierKind::kNvme, KIBIBYTES(128)},
                                       {TierKind::kHdd, KIBIBYTES(256)}});
  Rng rng(GetParam());
  std::vector<BlobId> placed;
  for (int i = 0; i < 200; ++i) {
    BlobId id{7, static_cast<std::uint64_t>(i)};
    std::size_t size = 1024 + rng.NextBounded(8192);
    float score = static_cast<float>(rng.NextDouble());
    auto t = bm.PutScored(id, std::vector<std::uint8_t>(size, 1), score, 0.0,
                          nullptr);
    if (t.ok()) {
      placed.push_back(id);
    }
    // Invariant: per-tier usage never exceeds capacity.
    for (std::size_t k = 0; k < bm.num_tiers(); ++k) {
      EXPECT_LE(bm.tier(k).used(), bm.tier(k).capacity());
    }
  }
  EXPECT_GT(placed.size(), 10u);
  for (const BlobId& id : placed) {
    EXPECT_TRUE(bm.FindBlob(id).has_value()) << id.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferManagerPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace mm::storage
