// Random Forest tests: MegaMmap vs Spark-style implementations, accuracy on
// separable synthetic labels, and the paper's KMeans -> RF workflow chain.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <unistd.h>

#include "mm/apps/datagen.h"
#include "mm/apps/kmeans.h"
#include "mm/apps/random_forest.h"
#include "mm/mega_mmap.h"

namespace mm::apps {
namespace {

class RfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mm_rf_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    gen_.num_particles = 4000;
    gen_.halos = 4;
    gen_.halo_sigma = 5.0;
    gen_.seed = 31;
    key_ = "posix://" + (dir_ / "pts.bin").string();
    labels_key_ = "posix://" + (dir_ / "labels.bin").string();
    auto truth = GenerateToBackend(gen_, key_);
    ASSERT_TRUE(truth.ok());
    // Ground-truth halo labels as the classification target.
    std::vector<std::int32_t> labels(truth->labels.begin(),
                                     truth->labels.end());
    auto resolved = storage::StagerRegistry::Default().Resolve(labels_key_);
    ASSERT_TRUE(resolved.ok());
    std::vector<std::uint8_t> raw(labels.size() * 4);
    std::memcpy(raw.data(), labels.data(), raw.size());
    ASSERT_TRUE(resolved->first->Create(resolved->second, raw.size()).ok());
    ASSERT_TRUE(resolved->first->Write(resolved->second, 0, raw).ok());
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  RfConfig Config() {
    RfConfig cfg;
    cfg.num_trees = 1;
    cfg.max_depth = 10;
    cfg.oob = 4;
    cfg.seed = 13;
    cfg.page_size = 16 * 1024;
    cfg.pcache_bytes = 512 * 1024;
    return cfg;
  }

  core::ServiceOptions SvcOptions() {
    core::ServiceOptions so;
    so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(8)},
                      {sim::TierKind::kNvme, MEGABYTES(32)}};
    return so;
  }

  std::filesystem::path dir_;
  DatagenConfig gen_;
  std::string key_, labels_key_;
};

TEST_F(RfTest, LearnsSeparableLabels) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::Service svc(cluster.get(), SvcOptions());
  RfResult result;
  auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    auto r = RandomForestMega(svc, comm, key_, labels_key_, Config());
    if (ctx.rank() == 0) result = r;
  });
  ASSERT_TRUE(run.ok()) << run.error;
  ASSERT_EQ(result.trees.size(), 1u);
  EXPECT_GT(result.trees[0].nodes.size(), 3u);  // actually split
  // Halos are well separated in position space: high accuracy expected.
  EXPECT_GT(result.train_accuracy, 0.9);
  EXPECT_GT(result.test_accuracy, 0.9);
}

TEST_F(RfTest, DeterministicAcrossRuns) {
  auto run_once = [&]() {
    auto cluster = sim::Cluster::PaperTestbed(2);
    core::Service svc(cluster.get(), SvcOptions());
    RfResult result;
    auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      auto r = RandomForestMega(svc, comm, key_, labels_key_, Config());
      if (ctx.rank() == 0) result = r;
    });
    EXPECT_TRUE(run.ok()) << run.error;
    return result;
  };
  auto a = run_once();
  auto b = run_once();
  ASSERT_EQ(a.trees.size(), b.trees.size());
  ASSERT_EQ(a.trees[0].nodes.size(), b.trees[0].nodes.size());
  for (std::size_t i = 0; i < a.trees[0].nodes.size(); ++i) {
    EXPECT_EQ(a.trees[0].nodes[i].feature, b.trees[0].nodes[i].feature);
    EXPECT_FLOAT_EQ(a.trees[0].nodes[i].threshold,
                    b.trees[0].nodes[i].threshold);
    EXPECT_EQ(a.trees[0].nodes[i].label, b.trees[0].nodes[i].label);
  }
  EXPECT_DOUBLE_EQ(a.test_accuracy, b.test_accuracy);
}

TEST_F(RfTest, SparkBuildsIdenticalTrees) {
  RfConfig cfg = Config();
  RfResult mega, spark;
  {
    auto cluster = sim::Cluster::PaperTestbed(2);
    core::Service svc(cluster.get(), SvcOptions());
    auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      auto r = RandomForestMega(svc, comm, key_, labels_key_, cfg);
      if (ctx.rank() == 0) mega = r;
    });
    ASSERT_TRUE(run.ok()) << run.error;
  }
  {
    auto cluster = std::make_unique<sim::Cluster>(
        2, sim::NodeSpec::PaperCompute(), sim::NetworkSpec::Tcp10(),
        TERABYTES(1));
    auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      sparklike::SparkEnv env(ctx);
      auto r = RandomForestSpark(env, comm, key_, labels_key_, cfg);
      if (ctx.rank() == 0) spark = r;
    });
    ASSERT_TRUE(run.ok()) << run.error;
  }
  ASSERT_EQ(mega.trees.size(), spark.trees.size());
  ASSERT_EQ(mega.trees[0].nodes.size(), spark.trees[0].nodes.size());
  for (std::size_t i = 0; i < mega.trees[0].nodes.size(); ++i) {
    EXPECT_EQ(mega.trees[0].nodes[i].feature, spark.trees[0].nodes[i].feature);
    EXPECT_FLOAT_EQ(mega.trees[0].nodes[i].threshold,
                    spark.trees[0].nodes[i].threshold);
  }
  EXPECT_DOUBLE_EQ(mega.test_accuracy, spark.test_accuracy);
}

TEST_F(RfTest, MultipleTreesImproveOrMatchSingle) {
  RfConfig cfg = Config();
  cfg.max_depth = 4;  // weak learners so the ensemble matters
  auto accuracy_for = [&](int trees) {
    cfg.num_trees = trees;
    auto cluster = sim::Cluster::PaperTestbed(2);
    core::Service svc(cluster.get(), SvcOptions());
    RfResult result;
    auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      auto r = RandomForestMega(svc, comm, key_, labels_key_, cfg);
      if (ctx.rank() == 0) result = r;
    });
    EXPECT_TRUE(run.ok()) << run.error;
    return result.test_accuracy;
  };
  double one = accuracy_for(1);
  double five = accuracy_for(5);
  EXPECT_GE(five, one - 0.02);
}

TEST_F(RfTest, TreeRespectsMaxDepth) {
  RfConfig cfg = Config();
  cfg.max_depth = 2;
  auto cluster = sim::Cluster::PaperTestbed(1);
  core::Service svc(cluster.get(), SvcOptions());
  RfResult result;
  auto run = comm::RunRanks(*cluster, 2, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    auto r = RandomForestMega(svc, comm, key_, labels_key_, cfg);
    if (ctx.rank() == 0) result = r;
  });
  ASSERT_TRUE(run.ok()) << run.error;
  // Depth 2 => at most 1 + 2 + 4 = 7 nodes.
  EXPECT_LE(result.trees[0].nodes.size(), 7u);
}

TEST_F(RfTest, FullPaperWorkflowKMeansThenRf) {
  // Evaluation 4's pipeline: KMeans assigns clusters, persists them, RF
  // learns to predict the assignment from the features.
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::Service svc(cluster.get(), SvcOptions());
  std::string assign_key = "posix://" + (dir_ / "assign.bin").string();
  RfResult rf;
  auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    KMeansConfig kcfg;
    kcfg.k = 4;
    kcfg.max_iter = 4;
    kcfg.page_size = 16 * 1024;
    kcfg.pcache_bytes = 512 * 1024;
    kcfg.assign_key = assign_key;
    KMeansMega(svc, comm, key_, kcfg);
    comm.Barrier();
    auto r = RandomForestMega(svc, comm, key_, assign_key, Config());
    if (ctx.rank() == 0) rf = r;
  });
  ASSERT_TRUE(run.ok()) << run.error;
  EXPECT_GT(rf.test_accuracy, 0.9);
}

TEST(RfTreeTest, PredictWalksTree) {
  RfTree tree;
  tree.nodes = {
      RfNode{/*feature=*/0, /*threshold=*/10.0f, 1, 2, 0},
      RfNode{-1, 0, -1, -1, /*label=*/7},
      RfNode{-1, 0, -1, -1, /*label=*/9},
  };
  Particle left{};
  left.pos.x = 5.0f;
  Particle right{};
  right.pos.x = 15.0f;
  EXPECT_EQ(tree.Predict(left), 7);
  EXPECT_EQ(tree.Predict(right), 9);
}

TEST(RfSplitTest, TestIndexHashIsStableAndRoughly20Percent) {
  int test_count = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    if (IsTestIndex(i, 13)) ++test_count;
    EXPECT_EQ(IsTestIndex(i, 13), IsTestIndex(i, 13));
  }
  EXPECT_GT(test_count, 1800);
  EXPECT_LT(test_count, 2200);
}

}  // namespace
}  // namespace mm::apps
