// Optimistic read-path stress (DESIGN.md §14), built to run under TSan:
// lock-free readers race the owner thread's insertions, evictions
// (retirement), recycling, and guarded writes. A validated read must NEVER
// be torn — pages are filled with a uniform byte so any mix of two
// versions is detectable — and retries must stay bounded per attempt.
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mm/core/optimistic_guard.h"
#include "mm/core/pcache.h"
#include "mm/core/service.h"
#include "mm/core/vector.h"
#include "mm/mega_mmap.h"
#include "mm/util/hash.h"

namespace mm::core {
namespace {

constexpr std::uint64_t kPageBytes = 256, kEPP = 32;

std::uint8_t FillOf(std::uint64_t page, std::uint64_t gen) {
  return static_cast<std::uint8_t>(MixU64(page * 1315423911ULL + gen) | 1);
}

std::vector<std::uint8_t> Page(std::uint8_t fill) {
  return std::vector<std::uint8_t>(kPageBytes, fill);
}

// Readers vs. the owner's insert/evict/recycle churn: every frame a reader
// can reach is constantly being retired and re-targeted, and every
// validated read must still be byte-uniform.
TEST(ReadpathStressTest, ReadersVsEvictionAndRecycle) {
  PCache pc(kPageBytes, kEPP, 8 * kPageBytes, /*optimistic_readers=*/true);
  constexpr std::uint64_t kPages = 32;
  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hits{0}, retries{0}, torn{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t rng = 0x9e3779b97f4a7c15ULL * (r + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        rng = MixU64(rng);
        const std::uint64_t page = rng % kPages;
        for (int attempt = 0; attempt < 3; ++attempt) {
          const PageFrame* f = pc.PeekFrame(page);
          if (f == nullptr) break;
          OptimisticGuard g(*f);
          if (!g.valid() || g.page() != page) {
            retries.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          std::uint8_t buf[kPageBytes];
          g.ReadBytes(0, buf, kPageBytes);
          if (!g.Validate()) {
            retries.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          hits.fetch_add(1, std::memory_order_relaxed);
          for (std::uint64_t i = 1; i < kPageBytes; ++i) {
            if (buf[i] != buf[0]) {
              torn.fetch_add(1, std::memory_order_relaxed);
              break;
            }
          }
          break;
        }
      }
    });
  }

  // Owner: churn pages through the 8-frame cache — every insert past
  // capacity retires a victim, parks it on the free list, and recycles it
  // on the next insert, exactly the eviction/writeback life cycle. Churns
  // until the readers have real validated hits (bounded; yields so single
  // core machines still schedule the readers).
  std::uint64_t gen = 0;
  for (std::uint64_t round = 0;
       round < 2000 ||
       (hits.load(std::memory_order_relaxed) < 500 && round < 5000000);
       ++round) {
    if (round % 1024 == 0) std::this_thread::yield();
    const std::uint64_t page = MixU64(round) % kPages;
    if (pc.Contains(page)) {
      pc.Remove(page);
    } else {
      while (pc.NeedsEviction()) {
        auto victim = pc.PickVictim();
        ASSERT_TRUE(victim.has_value());
        pc.Remove(*victim);
      }
      std::vector<std::uint8_t> displaced;
      pc.Insert(page, Page(FillOf(page, ++gen)), &displaced);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u) << "a validated optimistic read was torn";
  EXPECT_GT(hits.load(), 0u);
}

// Readers vs. a guarded writer rewriting whole pages in place (the
// coherence-invalidation + refill pattern): reads overlapping the write
// section must fail validation, and validated reads must be uniform.
TEST(ReadpathStressTest, ReadersVsGuardedWrites) {
  PCache pc(kPageBytes, kEPP, 8 * kPageBytes, /*optimistic_readers=*/true);
  PageFrame* frame = pc.Insert(0, Page(FillOf(0, 0)));
  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hits{0}, torn{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        OptimisticGuard g(*frame);
        if (!g.valid()) continue;
        std::uint8_t buf[kPageBytes];
        g.ReadBytes(0, buf, kPageBytes);
        if (!g.Validate()) continue;
        hits.fetch_add(1, std::memory_order_relaxed);
        for (std::uint64_t i = 1; i < kPageBytes; ++i) {
          if (buf[i] != buf[0]) {
            torn.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }

  // Write until the readers have validated reads to prove torn-free (the
  // yield opens stable windows between write sections; bounded).
  std::vector<std::uint8_t> scratch(kPageBytes);
  for (std::uint64_t gen = 1;
       gen <= 4000 ||
       (hits.load(std::memory_order_relaxed) < 500 && gen < 2000000);
       ++gen) {
    if (gen % 64 == 0) std::this_thread::yield();
    std::memset(scratch.data(), FillOf(0, gen), kPageBytes);
    FrameWriteGuard wg(frame);
    OptimisticGuard::StoreBytes(*frame, 0, scratch.data(), kPageBytes);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u) << "a validated read overlapped a write";
  EXPECT_GT(hits.load(), 0u);
}

// End-to-end: raw reader threads use Vector::TryReadOptimistic against the
// owning rank's live Set() churn (optimistic_readers on). Elements are
// written as self-consistent pairs, so a torn element is detectable.
TEST(ReadpathStressTest, VectorTryReadOptimisticVsOwnerWrites) {
  struct Pair {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };
  auto cluster = sim::Cluster::PaperTestbed(1);
  core::ServiceOptions so;
  so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(8)},
                    {sim::TierKind::kNvme, MEGABYTES(32)}};
  core::Service svc(cluster.get(), so);
  std::atomic<std::uint64_t> mismatches{0}, fast_hits{0}, total_retries{0};
  auto run = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
    core::VectorOptions vo;
    vo.nonvolatile = false;
    vo.page_size = 1024;
    vo.pcache_bytes = 8 * 1024;
    vo.optimistic_readers = true;
    constexpr std::uint64_t kElems = 512;
    Vector<Pair> vec(svc, ctx, "readpath_pairs", kElems, vo);
    for (std::uint64_t i = 0; i < kElems; ++i) {
      vec.Set(i, Pair{i, ~i});
    }
    vec.Commit();

    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    for (int r = 0; r < 4; ++r) {
      readers.emplace_back([&, r] {
        std::uint64_t rng = MixU64(r + 1);
        while (!stop.load(std::memory_order_relaxed)) {
          rng = MixU64(rng);
          const std::uint64_t i = rng % kElems;
          Pair p;
          int retries = 0;
          if (vec.TryReadOptimistic(i, &p, &retries)) {
            fast_hits.fetch_add(1, std::memory_order_relaxed);
            // Every committed value is (a, ~a) with a ≡ i mod kElems.
            if (p.b != ~p.a || p.a % kElems != i) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
          total_retries.fetch_add(retries, std::memory_order_relaxed);
        }
      });
    }
    // Owner keeps overwriting (and evicting: the bound holds 8 of 64
    // pages) until the readers have real fast-path hits (bounded; the
    // yield lets oversubscribed machines schedule the readers).
    for (std::uint64_t round = 1;
         round <= 40 ||
         (fast_hits.load(std::memory_order_relaxed) < 200 && round < 20000);
         ++round) {
      std::this_thread::yield();
      for (std::uint64_t i = 0; i < kElems; ++i) {
        const std::uint64_t v = i + round * kElems;
        vec.Set(i, Pair{v, ~v});
      }
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : readers) t.join();
  });
  ASSERT_TRUE(run.ok()) << run.error;
  EXPECT_EQ(mismatches.load(), 0u) << "validated optimistic element was torn";
  EXPECT_GT(fast_hits.load(), 0u);
  // Bounded retries: attempts cap at 3 probes, so retries can never grow
  // faster than a small multiple of successful reads under this load.
  EXPECT_LT(total_retries.load(), (fast_hits.load() + 1) * 10);
}

// Service-level fast path: a read-only page already placed in the scache
// is served without entering any worker queue, and the telemetry reconciles
// (hits + fallbacks cover all attempts).
TEST(ReadpathServiceTest, OptimisticHitBypassesQueueAndCounts) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::ServiceOptions so;
  so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(8)},
                    {sim::TierKind::kNvme, MEGABYTES(32)}};
  core::Service svc(cluster.get(), so);
  core::VectorOptions vo;
  vo.nonvolatile = false;
  vo.page_size = 1024;
  auto meta = svc.RegisterVector("svc_readpath", 8, vo, 1024);
  ASSERT_TRUE(meta.ok());

  // Place page 0 on node 0 via the regular fault path.
  sim::SimTime done = 0.0;
  std::uint64_t version = 0;
  auto first = svc.ReadPage(**meta, 0, 0, 0.0, &done, &version);
  ASSERT_TRUE(first.ok());

  // Local optimistic read on node 0: pure fast path.
  int retries = -1;
  std::uint64_t fast_version = 0;
  auto fast = svc.TryReadPageOptimistic(**meta, 0, 0, done, &done,
                                        &fast_version, &retries);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(fast->size(), (*meta)->page_bytes);
  EXPECT_EQ(fast_version, version);
  EXPECT_EQ(retries, 0);
  EXPECT_EQ(
      svc.metrics(0).GetCounter("mm.readpath.fastpath_hit_count")->value(),
      1u);

  // Remote optimistic read from node 1: still lock-free, pays the
  // owner→reader transfer on the virtual clock.
  sim::SimTime remote_done = done;
  auto remote = svc.TryReadPageOptimistic(**meta, 0, 1, done, &remote_done,
                                          nullptr, nullptr);
  ASSERT_TRUE(remote.has_value());
  EXPECT_GT(remote_done, done);
  EXPECT_EQ(
      svc.metrics(1).GetCounter("mm.readpath.fastpath_hit_count")->value(),
      1u);

  // Unplaced page: the fast path declines (miss), and the queue fallback
  // is counted when flagged.
  auto miss = svc.TryReadPageOptimistic(**meta, 7, 0, remote_done,
                                        &remote_done, nullptr, nullptr);
  EXPECT_FALSE(miss.has_value());
  auto fallback = svc.ReadPage(**meta, 7, 0, remote_done, &remote_done,
                               nullptr, /*optimistic_fallback=*/true);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(svc.metrics(0).GetCounter("mm.readpath.fallback_count")->value(),
            1u);

  // The master switch turns the path off entirely.
  core::ServiceOptions off = so;
  off.enable_optimistic_reads = false;
  auto cluster2 = sim::Cluster::PaperTestbed(1);
  core::Service svc2(cluster2.get(), off);
  auto meta2 = svc2.RegisterVector("svc_readpath_off", 8, vo, 128);
  ASSERT_TRUE(meta2.ok());
  sim::SimTime d2 = 0.0;
  ASSERT_TRUE(svc2.ReadPage(**meta2, 0, 0, 0.0, &d2).ok());
  EXPECT_FALSE(
      svc2.TryReadPageOptimistic(**meta2, 0, 0, d2, &d2, nullptr, nullptr)
          .has_value());
}

// Write-only coherence is the one mode the fast path must refuse.
TEST(ReadpathServiceTest, WriteOnlyModeIneligible) {
  EXPECT_TRUE(AllowsOptimisticReads(CoherenceMode::kLocal));
  EXPECT_TRUE(AllowsOptimisticReads(CoherenceMode::kReadOnlyGlobal));
  EXPECT_TRUE(AllowsOptimisticReads(CoherenceMode::kAppendOnlyGlobal));
  EXPECT_TRUE(AllowsOptimisticReads(CoherenceMode::kReadWriteGlobal));
  EXPECT_FALSE(AllowsOptimisticReads(CoherenceMode::kWriteOnlyGlobal));

  auto cluster = sim::Cluster::PaperTestbed(1);
  core::ServiceOptions so;
  so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(8)}};
  core::Service svc(cluster.get(), so);
  core::VectorOptions vo;
  vo.nonvolatile = false;
  vo.page_size = 1024;
  vo.mode = CoherenceMode::kWriteOnlyGlobal;
  auto meta = svc.RegisterVector("svc_readpath_wo", 8, vo, 128);
  ASSERT_TRUE(meta.ok());
  sim::SimTime done = 0.0;
  ASSERT_TRUE(svc.ReadPage(**meta, 0, 0, 0.0, &done).ok());
  EXPECT_FALSE(svc.TryReadPageOptimistic(**meta, 0, 0, done, &done, nullptr,
                                         nullptr)
                   .has_value());
}

}  // namespace
}  // namespace mm::core
