// Tests for byte units, URI parsing, hashing, RNG, and stats accumulators.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "mm/util/byte_units.h"
#include "mm/util/hash.h"
#include "mm/util/rng.h"
#include "mm/util/stats.h"
#include "mm/util/uri.h"

namespace mm {
namespace {

TEST(ByteUnits, ParsesPlainNumbers) {
  EXPECT_EQ(*ParseBytes("4096"), 4096u);
  EXPECT_EQ(*ParseBytes("0"), 0u);
}

TEST(ByteUnits, ParsesSuffixes) {
  EXPECT_EQ(*ParseBytes("16k"), 16 * kKiB);
  EXPECT_EQ(*ParseBytes("1m"), kMiB);
  EXPECT_EQ(*ParseBytes("48g"), 48 * kGiB);
  EXPECT_EQ(*ParseBytes("2t"), 2 * kTiB);
  EXPECT_EQ(*ParseBytes("16K"), 16 * kKiB);
  EXPECT_EQ(*ParseBytes("16KB"), 16 * kKiB);
  EXPECT_EQ(*ParseBytes("16KiB"), 16 * kKiB);
  EXPECT_EQ(*ParseBytes("16 k"), 16 * kKiB);
}

TEST(ByteUnits, ParsesFractions) {
  EXPECT_EQ(*ParseBytes("1.5g"), kGiB + kGiB / 2);
  EXPECT_EQ(*ParseBytes("0.5k"), 512u);
}

TEST(ByteUnits, RejectsGarbage) {
  EXPECT_FALSE(ParseBytes("").ok());
  EXPECT_FALSE(ParseBytes("abc").ok());
  EXPECT_FALSE(ParseBytes("12x").ok());
  EXPECT_FALSE(ParseBytes("-5k").ok());
}

TEST(ByteUnits, Formats) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(kKiB), "1.00KiB");
  EXPECT_EQ(FormatBytes(kGiB + kGiB / 2), "1.50GiB");
}

TEST(Uri, ParsesFullUrl) {
  auto uri = ParseUri("shdf:///path/to/df.h5:mygroup");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->scheme, "shdf");
  EXPECT_EQ(uri->path, "/path/to/df.h5");
  EXPECT_EQ(uri->fragment, "mygroup");
}

TEST(Uri, DefaultsToPosix) {
  auto uri = ParseUri("/points.parquet");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->scheme, "posix");
  EXPECT_EQ(uri->path, "/points.parquet");
  EXPECT_TRUE(uri->fragment.empty());
}

TEST(Uri, NoFragment) {
  auto uri = ParseUri("spar:///data/pts.parquet");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->scheme, "spar");
  EXPECT_EQ(uri->path, "/data/pts.parquet");
  EXPECT_TRUE(uri->fragment.empty());
}

TEST(Uri, RoundTrips) {
  auto uri = ParseUri("shdf:///a/b.h5:grp");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->ToString(), "shdf:///a/b.h5:grp");
  auto again = ParseUri(uri->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->scheme, uri->scheme);
  EXPECT_EQ(again->path, uri->path);
  EXPECT_EQ(again->fragment, uri->fragment);
}

TEST(Uri, RejectsEmpty) {
  EXPECT_FALSE(ParseUri("").ok());
  EXPECT_FALSE(ParseUri("posix://").ok());
}

TEST(Hash, Fnv1aIsDeterministicAndSpreads) {
  EXPECT_EQ(Fnv1a64("hello"), Fnv1a64("hello"));
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("hellp"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("a"));
}

TEST(Hash, MixU64Avalanches) {
  // Adjacent inputs should map to well-separated outputs.
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(MixU64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Stats, BasicMoments) {
  StatAccumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.Add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.Mean(), 2.5);
  EXPECT_NEAR(acc.Stddev(), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.Min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.Max(), 4.0);
}

TEST(Stats, Percentiles) {
  StatAccumulator acc;
  for (int i = 1; i <= 100; ++i) acc.Add(i);
  EXPECT_NEAR(acc.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(acc.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(acc.Percentile(50), 50.5, 1e-9);
}

TEST(Stats, SingleSampleDegenerate) {
  StatAccumulator acc;
  acc.Add(5.0);
  EXPECT_DOUBLE_EQ(acc.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.Stddev(), 0.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(37), 5.0);
}

TEST(Stats, AddAfterPercentileKeepsConsistency) {
  StatAccumulator acc;
  acc.Add(1.0);
  acc.Add(3.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(100), 3.0);
  acc.Add(2.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(50), 2.0);
  EXPECT_DOUBLE_EQ(acc.Mean(), 2.0);
}

TEST(TablePrinterTest, AlignsAndCsv) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::string text = t.Render(false);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  std::string csv = t.Render(true);
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("longer,22"), std::string::npos);
}

TEST(TablePrinterTest, RowWidthMismatchChecks) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::logic_error);
}

}  // namespace
}  // namespace mm
