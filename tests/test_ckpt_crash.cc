// Crash matrix (DESIGN.md §12): a simulated node crash is injected at every
// point of the journaled-writeback / checkpoint / restore pipeline, then a
// fresh Service is built over the same directories — exactly what a
// restarted process sees — recovery replays the journals, and Restore must
// bring every page back bit-identical to what crash consistency promises:
// the journaled flushed state when the redo record is durable, the last
// published epoch otherwise.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string_view>
#include <unistd.h>

#include "mm/ckpt/manifest.h"
#include "mm/core/service.h"
#include "mm/sim/fault.h"
#include "mm/util/byte_units.h"

namespace mm {
namespace {

using sim::CrashPoint;
using sim::TierKind;

class CkptCrashTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kPage = 4096;
  static constexpr std::uint64_t kPages = 6;

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mm_crash_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    key_ = "posix://" + (dir_ / "v.bin").string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// A fresh Service over the same backend + checkpoint directories: the
  /// "process restart" of the matrix. Its constructor runs startup recovery.
  std::unique_ptr<core::Service> MakeService() {
    clusters_.push_back(sim::Cluster::PaperTestbed(1));
    core::ServiceOptions so;
    so.tier_grants = {{TierKind::kDram, 128 * kKiB},
                      {TierKind::kNvme, MEGABYTES(4)}};
    so.ckpt.dir = (dir_ / "ckpt").string();
    // Every crash point must leave a postmortem artifact (DESIGN.md §11).
    so.telemetry.flightrec_dir = dir_.string();
    return std::make_unique<core::Service>(clusters_.back().get(), so);
  }

  /// The crash dumped `flightrec_0.json` and it is a parseable record:
  /// one JSON object carrying the crash reason and the span ring.
  void ExpectFlightRecord(std::string_view reason) {
    std::filesystem::path path = dir_ / "flightrec_0.json";
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    std::ifstream in(path);
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json[json.find_last_not_of('\n')], '}');
    EXPECT_NE(json.find("\"reason\":\"" + std::string(reason) + "\""),
              std::string::npos)
        << json.substr(0, 200);
    EXPECT_NE(json.find("\"spans\":["), std::string::npos);
    EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  }

  StatusOr<core::VectorMeta*> Register(core::Service& svc) {
    core::VectorOptions vo;
    vo.page_size = kPage;
    return svc.RegisterVector(key_, 1, vo, kPages * kPage);
  }

  static std::vector<std::uint8_t> Pattern(std::uint64_t page,
                                           std::uint64_t salt) {
    std::vector<std::uint8_t> out(kPage);
    for (std::uint64_t i = 0; i < kPage; ++i) {
      out[i] = static_cast<std::uint8_t>((salt * 1000 + page * 131 + i) & 0xFF);
    }
    return out;
  }

  /// Writes every page with `salt` and publishes the "e" epoch.
  sim::SimTime SeedEpoch(core::Service& svc, core::VectorMeta& meta) {
    sim::SimTime t = 0.0;
    for (std::uint64_t p = 0; p < kPages; ++p) {
      auto out = svc.WriteRegion(meta, p, 0, Pattern(p, 1), 0, t).get();
      EXPECT_TRUE(out.status.ok()) << "page " << p;
      t = std::max(t, out.done);
    }
    auto stats = svc.Checkpoint("e", 0, t, &t);
    EXPECT_TRUE(stats.ok()) << stats.status().message();
    return t;
  }

  /// Dirties page `kVictim` with salt-2 bytes after the epoch.
  sim::SimTime DirtyVictim(core::Service& svc, core::VectorMeta& meta,
                           sim::SimTime t) {
    auto out = svc.WriteRegion(meta, kVictim, 0, Pattern(kVictim, 2), 0, t)
                   .get();
    EXPECT_TRUE(out.status.ok());
    return std::max(t, out.done);
  }

  /// Restores "e" on a reborn service and checks every page: the victim
  /// must read `victim_salt`, everything else the epoch's salt 1.
  void ExpectRestored(core::Service& svc, std::uint64_t victim_salt) {
    sim::SimTime t = 0.0;
    ASSERT_TRUE(svc.Restore("e", 0, 0.0, &t).ok());
    core::VectorMeta* meta = svc.FindVector(key_);
    ASSERT_NE(meta, nullptr);
    for (std::uint64_t p = 0; p < kPages; ++p) {
      sim::SimTime done = t;
      auto page = svc.ReadPage(*meta, p, 0, t, &done);
      ASSERT_TRUE(page.ok()) << "page " << p << ": "
                             << page.status().message();
      EXPECT_EQ(*page, Pattern(p, p == kVictim ? victim_salt : 1))
          << "page " << p;
      t = std::max(t, done);
    }
    EXPECT_EQ(svc.data_loss_count(), 0u);
  }

  static constexpr std::uint64_t kVictim = 2;

  std::filesystem::path dir_;
  std::string key_;
  std::vector<std::unique_ptr<sim::Cluster>> clusters_;
};

TEST_F(CkptCrashTest, MidJournalAppendFallsBackToTheEpoch) {
  auto svc = MakeService();
  auto meta = Register(*svc);
  ASSERT_TRUE(meta.ok());
  sim::SimTime t = SeedEpoch(*svc, **meta);
  t = DirtyVictim(*svc, **meta, t);

  // The crash lands mid-append: a torn record, no in-place write.
  svc->fault_injector().ArmCrash(CrashPoint::kMidJournalAppend);
  sim::SimTime fd = t;
  Status flush = svc->FlushVector(**meta, 0, t, &fd);
  EXPECT_EQ(flush.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(svc->fault_injector().crashed());
  // Every later mutation is refused: the node is dead.
  EXPECT_EQ(svc->Checkpoint("late", 0, fd, &fd).status().code(),
            StatusCode::kUnavailable);
  ExpectFlightRecord("mid_journal_append");
  svc.reset();  // Shutdown skips the clean-exit flush after a crash

  auto reborn = MakeService();
  // Startup recovery discarded the torn tail; nothing was applied.
  EXPECT_EQ(reborn->journal(0)->record_count(), 0u);
  // The flushed salt-2 bytes never became durable: the victim reads the
  // last published epoch.
  ExpectRestored(*reborn, 1);
}

TEST_F(CkptCrashTest, AfterJournalAppendKeepsThePromise) {
  auto svc = MakeService();
  auto meta = Register(*svc);
  ASSERT_TRUE(meta.ok());
  sim::SimTime t = SeedEpoch(*svc, **meta);
  t = DirtyVictim(*svc, **meta, t);

  // The redo record is durable; the crash skips the in-place write.
  svc->fault_injector().ArmCrash(CrashPoint::kAfterJournalAppend);
  sim::SimTime fd = t;
  EXPECT_EQ(svc->FlushVector(**meta, 0, t, &fd).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(svc->journal(0)->record_count(), 1u);
  svc.reset();

  auto reborn = MakeService();
  // Recovery replayed the record into the backend: the journaled flush is a
  // promise kept, and Restore overlays the manifest with the newer durable
  // version.
  EXPECT_EQ(reborn->journal(0)->record_count(), 1u);
  ExpectRestored(*reborn, 2);
}

TEST_F(CkptCrashTest, MidInPlaceWriteHealsTheTornPage) {
  auto svc = MakeService();
  auto meta = Register(*svc);
  ASSERT_TRUE(meta.ok());
  sim::SimTime t = SeedEpoch(*svc, **meta);
  t = DirtyVictim(*svc, **meta, t);

  // The crash lands mid in-place write: the backend page is half salt-2,
  // half salt-1 — torn. The durable redo record heals it on restart.
  svc->fault_injector().ArmCrash(CrashPoint::kMidInPlaceWrite);
  sim::SimTime fd = t;
  EXPECT_EQ(svc->FlushVector(**meta, 0, t, &fd).code(),
            StatusCode::kUnavailable);
  svc.reset();

  auto reborn = MakeService();
  ExpectRestored(*reborn, 2);
}

TEST_F(CkptCrashTest, MidManifestRenameLeavesThePreviousManifest) {
  auto svc = MakeService();
  auto meta = Register(*svc);
  ASSERT_TRUE(meta.ok());
  sim::SimTime t = SeedEpoch(*svc, **meta);
  auto first = ckpt::ReadManifest(
      svc->checkpointer().ManifestPathFor("e"));
  ASSERT_TRUE(first.ok());
  t = DirtyVictim(*svc, **meta, t);

  // The second checkpoint flushes (journaled) and writes the temp manifest,
  // then crashes before the rename: readers still see epoch 1.
  svc->fault_injector().ArmCrash(CrashPoint::kMidManifestRename);
  sim::SimTime cd = t;
  EXPECT_EQ(svc->Checkpoint("e", 0, t, &cd).status().code(),
            StatusCode::kUnavailable);
  auto on_disk = ckpt::ReadManifest(svc->checkpointer().ManifestPathFor("e"));
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(on_disk->epoch, first->epoch);
  // The journals were NOT truncated: the flushed pages stay recoverable.
  EXPECT_EQ(svc->journal(0)->record_count(), 1u);
  ExpectFlightRecord("mid_manifest_rename");
  svc.reset();

  auto reborn = MakeService();
  // The old manifest plus the replayed journal overlay reconstruct the
  // flushed state: the victim reads its journaled salt-2 bytes.
  ExpectRestored(*reborn, 2);
}

TEST_F(CkptCrashTest, MidRestoreIsRerunnable) {
  {
    auto svc = MakeService();
    auto meta = Register(*svc);
    ASSERT_TRUE(meta.ok());
    SeedEpoch(*svc, **meta);
  }
  auto svc = MakeService();
  svc->fault_injector().ArmCrash(CrashPoint::kMidRestore);
  sim::SimTime t = 0.0;
  EXPECT_EQ(svc->Restore("e", 0, 0.0, &t).code(), StatusCode::kUnavailable);
  ExpectFlightRecord("mid_restore");
  svc.reset();

  // Restore mutates only the directory, never the backend: rerunning it on
  // the next incarnation starts over from the same manifest and succeeds.
  auto reborn = MakeService();
  ExpectRestored(*reborn, 1);
}

TEST_F(CkptCrashTest, ForcedCrashLosesOnlyUnjournaledWrites) {
  auto svc = MakeService();
  auto meta = Register(*svc);
  ASSERT_TRUE(meta.ok());
  sim::SimTime t = SeedEpoch(*svc, **meta);
  // Dirty the victim but never flush: no redo record exists.
  t = DirtyVictim(*svc, **meta, t);
  svc->fault_injector().ForceCrash();
  EXPECT_EQ(svc->Restore("e", 0, t, &t).code(), StatusCode::kUnavailable);
  svc.reset();  // the destructor must not flush the dirty page

  auto reborn = MakeService();
  EXPECT_EQ(reborn->journal(0)->record_count(), 0u);
  // The unjournaled write evaporated with the scache, exactly as crash
  // consistency promises: back to the published epoch.
  ExpectRestored(*reborn, 1);
}

}  // namespace
}  // namespace mm
