// mm::BTree (DESIGN.md §15): node-layout invariants, single- and
// multi-rank correctness against a std::map oracle (MM_FAULT_SEED sweeps
// the op stream), TSan-labeled latch-free readers racing structure
// modifications (reader-vs-split, scan-vs-delete), and a node-death case —
// rank killed mid-split burst, survivors roll back to the epoch checkpoint
// and the tree must come back structurally whole.
#include "mm/index/btree.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "mm/apps/kvstore.h"
#include "mm/ckpt/collective.h"
#include "mm/ckpt/recovery.h"
#include "mm/comm/communicator.h"
#include "mm/comm/launch.h"
#include "mm/core/service.h"
#include "mm/mega_mmap.h"
#include "mm/sim/cluster.h"
#include "mm/util/hash.h"
#include "mm/util/rng.h"

namespace mm::index {
namespace {

using apps::KvConfig;
using apps::KvRecord;
using apps::MakeRecord;
using sim::TierKind;

std::uint64_t FaultSeed() {
  const char* env = std::getenv("MM_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 42;
}

core::ServiceOptions SvcOptions() {
  core::ServiceOptions so;
  so.tier_grants = {{TierKind::kDram, MEGABYTES(8)},
                    {TierKind::kNvme, MEGABYTES(64)}};
  return so;
}

// Tiny 256-byte nodes force real depth out of small key counts
// (leaf fanout 14, inner fanout 13 for u64->u64).
using SmallTree = BTree<std::uint64_t, std::uint64_t, 256>;

// ---------------------------------------------------------------------------
// Node layout
// ---------------------------------------------------------------------------

TEST(NodeLayout, CapacitiesAndCommonHeader) {
  using Blk = NodeBlock<std::uint64_t, std::uint64_t, 256>;
  static_assert(sizeof(Blk) == 256);
  using SmallLeaf = LeafNode<std::uint64_t, std::uint64_t, 256>;
  using SmallInner = InnerNode<std::uint64_t, std::uint64_t, 256>;
  EXPECT_GE(SmallLeaf::kCap, 4u);
  EXPECT_GE(SmallInner::kCap, 4u);
  Blk b;
  b.leaf.hdr.level = 0;
  EXPECT_EQ(b.hdr.level, 0u);  // common initial sequence dispatch
  b.inner.hdr.level = 3;
  EXPECT_EQ(b.hdr.level, 3u);
}

TEST(NodeLayout, LowerBoundChildForAndSane) {
  using Blk = NodeBlock<std::uint64_t, std::uint64_t, 256>;
  Blk b;
  b.hdr.level = 1;
  b.hdr.count = 3;
  b.hdr.right = kInvalidNode;
  b.inner.seps[0] = 10;
  b.inner.seps[1] = 20;
  b.inner.seps[2] = 30;
  b.inner.children[0] = 1;
  b.inner.children[1] = 2;
  b.inner.children[2] = 3;
  b.inner.children[3] = 4;
  NodeRef<std::uint64_t, std::uint64_t, 256> r(&b);
  EXPECT_EQ(r.LowerBound(5), 0u);
  EXPECT_EQ(r.LowerBound(10), 0u);
  EXPECT_EQ(r.LowerBound(11), 1u);
  EXPECT_EQ(r.LowerBound(31), 3u);
  EXPECT_EQ(r.ChildFor(5), 1u);
  EXPECT_EQ(r.ChildFor(10), 2u);  // separators are exclusive upper bounds
  EXPECT_EQ(r.ChildFor(25), 3u);
  EXPECT_EQ(r.ChildFor(99), 4u);
  EXPECT_TRUE(r.Sane(1, 100));
  EXPECT_FALSE(r.Sane(0, 100));  // wrong level
  EXPECT_FALSE(r.Sane(1, 4));    // child beyond allocation horizon
  b.inner.seps[1] = 10;          // duplicate separator
  EXPECT_FALSE(r.Sane(1, 100));
  b.inner.seps[1] = 20;
  b.hdr.flags |= NodeHeader::kHasFence;
  b.inner.fence = 30;
  EXPECT_TRUE(r.FenceMiss(30));
  EXPECT_TRUE(r.FenceMiss(31));
  EXPECT_FALSE(r.FenceMiss(29));
}

// ---------------------------------------------------------------------------
// Single-rank structure: splits, ordered scans, deletes
// ---------------------------------------------------------------------------

TEST(BTreeBasic, SplitsScansAndDeletes) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  core::Service svc(cluster.get(), SvcOptions());
  auto run = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
    BTreeOptions opt;
    opt.max_nodes = 1 << 16;
    SmallTree tree(svc, ctx, "mem://bt_basic", opt);
    tree.Create();
    constexpr std::uint64_t kN = 2000;  // ~4 levels at fanout 13-14
    for (std::uint64_t i = 0; i < kN; ++i) {
      const std::uint64_t k = MixU64(i);  // random insertion order
      tree.Put(k, k * 2 + 1);
    }
    EXPECT_GT(tree.anchor_snapshot().height, 2u);
    EXPECT_GT(tree.stats().smos, 100u);

    std::uint64_t keys = 0;
    ASSERT_TRUE(tree.CheckIntegrity(&keys).ok());
    EXPECT_EQ(keys, kN);

    for (std::uint64_t i = 0; i < kN; ++i) {
      std::uint64_t v = 0;
      ASSERT_TRUE(tree.Get(MixU64(i), &v)) << i;
      EXPECT_EQ(v, MixU64(i) * 2 + 1);
    }
    EXPECT_FALSE(tree.Get(MixU64(kN + 7) | 1, nullptr));

    // Full scan from 0: every key, strictly sorted.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    EXPECT_EQ(tree.Scan(0, kN + 100, &out), kN);
    ASSERT_EQ(out.size(), kN);
    for (std::size_t i = 1; i < out.size(); ++i) {
      ASSERT_LT(out[i - 1].first, out[i].first);
    }

    // Delete every third key; the rest must survive, in order.
    std::uint64_t deleted = 0;
    for (std::uint64_t i = 0; i < kN; i += 3) {
      ASSERT_TRUE(tree.Delete(MixU64(i)));
      ++deleted;
    }
    EXPECT_FALSE(tree.Delete(MixU64(0)));  // already gone
    ASSERT_TRUE(tree.CheckIntegrity(&keys).ok());
    EXPECT_EQ(keys, kN - deleted);
    out.clear();
    EXPECT_EQ(tree.Scan(0, kN, &out), kN - deleted);
    std::uint64_t lb_key = 0, lb_val = 0;
    ASSERT_TRUE(tree.LowerBound(0, &lb_key, &lb_val));
    EXPECT_EQ(lb_key, out.front().first);
  });
  ASSERT_TRUE(run.ok()) << run.error;
}

// ---------------------------------------------------------------------------
// Property test vs std::map oracle (MM_FAULT_SEED sweeps the op stream)
// ---------------------------------------------------------------------------

TEST(BTreeProperty, MatchesMapOracleUnderSeedSweep) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  core::Service svc(cluster.get(), SvcOptions());
  auto run = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
    BTreeOptions opt;
    opt.max_nodes = 1 << 16;
    SmallTree tree(svc, ctx, "mem://bt_prop", opt);
    tree.Create();
    std::map<std::uint64_t, std::uint64_t> oracle;
    Rng rng(FaultSeed());
    for (int op = 0; op < 6000; ++op) {
      const std::uint64_t k = rng.NextBounded(4096);
      switch (rng.NextBounded(4)) {
        case 0:
        case 1: {  // put
          const std::uint64_t v = rng.Next();
          tree.Put(k, v);
          oracle[k] = v;
          break;
        }
        case 2: {  // delete
          EXPECT_EQ(tree.Delete(k), oracle.erase(k) > 0) << "key " << k;
          break;
        }
        case 3: {  // get + short scan
          std::uint64_t v = 0;
          auto it = oracle.find(k);
          ASSERT_EQ(tree.Get(k, &v), it != oracle.end()) << "key " << k;
          if (it != oracle.end()) EXPECT_EQ(v, it->second);
          std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
          tree.Scan(k, 8, &got);
          auto oit = oracle.lower_bound(k);
          for (const auto& [gk, gv] : got) {
            ASSERT_NE(oit, oracle.end());
            EXPECT_EQ(gk, oit->first);
            EXPECT_EQ(gv, oit->second);
            ++oit;
          }
          break;
        }
      }
    }
    // Final state: bit-exact, structurally sound, restart rate in budget.
    std::uint64_t keys = 0;
    ASSERT_TRUE(tree.CheckIntegrity(&keys).ok());
    EXPECT_EQ(keys, oracle.size());
    std::vector<std::pair<std::uint64_t, std::uint64_t>> all;
    tree.Scan(0, oracle.size() + 1, &all);
    ASSERT_EQ(all.size(), oracle.size());
    auto oit = oracle.begin();
    for (const auto& [k, v] : all) {
      EXPECT_EQ(k, oit->first);
      EXPECT_EQ(v, oit->second);
      ++oit;
    }
    const auto& st = tree.stats();
    EXPECT_LT(static_cast<double>(st.restarts),
              0.05 * static_cast<double>(std::max<std::uint64_t>(
                         st.descents, 1)));
  });
  ASSERT_TRUE(run.ok()) << run.error;
}

// The KV workload's DSM run and its std::map replay fold identical op
// outcomes — the acceptance criterion's "bit-exact oracle" stated over the
// whole YCSB-style op stream (run under MM_FAULT_SEED in the flake lane).
TEST(BTreeProperty, KvWorkloadChecksumMatchesReference) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  core::Service svc(cluster.get(), SvcOptions());
  KvConfig cfg;
  cfg.num_keys = 3000;
  cfg.ops_per_rank = 1500;
  cfg.read_frac = 0.5;
  cfg.update_frac = 0.3;
  cfg.scan_frac = 0.15;  // remainder: inserts
  cfg.seed = FaultSeed();
  cfg.key_prefix = "mem://bt_kv_oracle";
  apps::KvResult res;
  auto run = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    res = apps::RunKvWorkload(svc, comm, cfg);
  });
  ASSERT_TRUE(run.ok()) << run.error;
  EXPECT_EQ(res.checksum, apps::ReferenceKvChecksum(cfg, 0));
  EXPECT_GT(res.hits, 0u);
  EXPECT_LT(static_cast<double>(res.stats.restarts),
            0.05 * static_cast<double>(
                       std::max<std::uint64_t>(res.stats.descents, 1)));
}

// ---------------------------------------------------------------------------
// Multi-rank coherence: concurrent writers through the SMO lease
// ---------------------------------------------------------------------------

class BTreeRanksTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreeRanksTest, CrossRankInsertsAllVisible) {
  const int nodes = GetParam();
  auto cluster = sim::Cluster::PaperTestbed(nodes);
  core::Service svc(cluster.get(), SvcOptions());
  constexpr std::uint64_t kPerRank = 400;
  auto run = comm::RunRanks(*cluster, nodes, 1, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    BTreeOptions opt;
    opt.max_nodes = 1 << 16;
    SmallTree tree(svc, ctx, "mem://bt_ranks", opt);
    if (comm.rank() == 0) tree.Create();
    comm.Barrier();
    tree.Refresh();
    // Interleaved key space: every rank's inserts land in everyone's leaves.
    for (std::uint64_t i = 0; i < kPerRank; ++i) {
      const std::uint64_t k = MixU64(i * comm.size() + comm.rank());
      tree.Put(k, k + comm.rank());
    }
    comm.Barrier();
    tree.Refresh();
    const auto total = kPerRank * static_cast<std::uint64_t>(comm.size());
    std::uint64_t keys = 0;
    ASSERT_TRUE(tree.CheckIntegrity(&keys).ok());
    EXPECT_EQ(keys, total);
    // Every rank reads every other rank's keys through the descent funnel.
    for (std::uint64_t i = 0; i < kPerRank; ++i) {
      for (int r = 0; r < comm.size(); ++r) {
        const std::uint64_t k =
            MixU64(i * comm.size() + static_cast<std::uint64_t>(r));
        std::uint64_t v = 0;
        ASSERT_TRUE(tree.Get(k, &v)) << "rank " << comm.rank() << " key of "
                                     << r;
        EXPECT_EQ(v, k + static_cast<std::uint64_t>(r));
      }
    }
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    EXPECT_EQ(tree.Scan(0, total + 1, &out), total);
    for (std::size_t i = 1; i < out.size(); ++i) {
      ASSERT_LT(out[i - 1].first, out[i].first);
    }
    comm.Barrier();
  });
  ASSERT_TRUE(run.ok()) << run.error;
}

INSTANTIATE_TEST_SUITE_P(RankCounts, BTreeRanksTest, ::testing::Values(2, 4));

// ---------------------------------------------------------------------------
// TSan stress: latch-free readers vs structure modifications
// ---------------------------------------------------------------------------

// Reader threads TryGet keys the owner has already published while the
// owner drives continuous splits. A conclusive hit must return the exact
// value; a conclusive miss is only legal for not-yet-inserted keys.
TEST(BTreeStress, ReadersVsSplit) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  core::Service svc(cluster.get(), SvcOptions());
  auto run = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
    BTreeOptions opt;
    opt.max_nodes = 1 << 16;
    SmallTree tree(svc, ctx, "mem://bt_race", opt);
    tree.Create();
    constexpr std::uint64_t kN = 3000;
    std::vector<std::uint64_t> keys(kN);
    for (std::uint64_t i = 0; i < kN; ++i) keys[i] = MixU64(i) | 1;
    // published: index watermark — keys[0..published) are committed.
    std::atomic<std::uint64_t> published{0};
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> conclusive{0}, wrong{0}, lost{0};

    constexpr int kReaders = 3;
    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        Rng rng(0x5eedULL + r);
        while (!stop.load(std::memory_order_relaxed)) {
          const std::uint64_t hi = published.load(std::memory_order_acquire);
          if (hi == 0) continue;
          const std::uint64_t k = keys[rng.NextBounded(hi)];
          std::uint64_t v = 0;
          bool sure = false;
          const bool hit = tree.TryGet(k, &v, &sure);
          if (!sure) continue;
          conclusive.fetch_add(1, std::memory_order_relaxed);
          if (!hit) {
            lost.fetch_add(1, std::memory_order_relaxed);
          } else if (v != k * 3 + 1) {
            wrong.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }

    for (std::uint64_t i = 0; i < kN; ++i) {
      tree.Put(keys[i], keys[i] * 3 + 1);
      // Put committed before the watermark moves: a published key is
      // always findable from any committed snapshot.
      published.store(i + 1, std::memory_order_release);
      if (i % 256 == 0) std::this_thread::yield();
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : readers) t.join();

    EXPECT_EQ(wrong.load(), 0u) << "latch-free read returned a torn value";
    EXPECT_EQ(lost.load(), 0u) << "published key invisible to reader";
    EXPECT_GT(conclusive.load(), 0u);
  });
  ASSERT_TRUE(run.ok()) << run.error;
}

// Reader threads TryScan while the owner deletes: every conclusive scan
// must be strictly sorted and contain no deleted-before-publish keys that
// reappear out of order (the seqlock + Sane() contract).
TEST(BTreeStress, ScanVsDelete) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  core::Service svc(cluster.get(), SvcOptions());
  auto run = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
    BTreeOptions opt;
    opt.max_nodes = 1 << 16;
    SmallTree tree(svc, ctx, "mem://bt_scandel", opt);
    tree.Create();
    constexpr std::uint64_t kN = 2500;
    for (std::uint64_t i = 0; i < kN; ++i) {
      tree.Put(MixU64(i) | 1, i);
    }
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> scans{0}, unsorted{0};

    constexpr int kReaders = 3;
    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        Rng rng(0xabcdULL * (r + 1));
        std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
        while (!stop.load(std::memory_order_relaxed)) {
          out.clear();
          const std::uint64_t from = rng.Next() | 1;
          const std::int64_t got = tree.TryScan(from, 24, &out);
          if (got < 0) continue;
          scans.fetch_add(1, std::memory_order_relaxed);
          for (std::size_t i = 1; i < out.size(); ++i) {
            if (!(out[i - 1].first < out[i].first)) {
              unsorted.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }

    // Owner: delete every other key, then reinsert — continuous leaf churn.
    for (int round = 0; round < 3; ++round) {
      for (std::uint64_t i = 0; i < kN; i += 2) {
        tree.Delete(MixU64(i) | 1);
        if (i % 512 == 0) std::this_thread::yield();
      }
      for (std::uint64_t i = 0; i < kN; i += 2) {
        tree.Put(MixU64(i) | 1, i + round);
      }
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : readers) t.join();

    EXPECT_EQ(unsorted.load(), 0u) << "latch-free scan out of order";
    EXPECT_GT(scans.load(), 0u);
    std::uint64_t keys = 0;
    ASSERT_TRUE(tree.CheckIntegrity(&keys).ok());
    EXPECT_EQ(keys, kN);
  });
  ASSERT_TRUE(run.ok()) << run.error;
}

// ---------------------------------------------------------------------------
// Node death mid-split: rollback to the epoch checkpoint, tree comes back
// structurally whole with exactly the checkpointed contents.
// ---------------------------------------------------------------------------

TEST(BTreeNodeDeath, RollbackRestoresCheckpointedTree) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("mm_btree_death_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::ServiceOptions so = SvcOptions();
  so.ckpt.dir = (dir / "ckpt").string();
  so.recovery_policy = core::RecoveryPolicy::kRollback;
  core::Service svc(cluster.get(), so);
  constexpr std::uint64_t kPreCkpt = 600;
  auto run = comm::RunRanks(*cluster, 2, 1, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    BTreeOptions opt;
    opt.max_nodes = 1 << 16;
    SmallTree tree(svc, ctx, "mem://bt_death", opt);
    if (comm.rank() == 0) tree.Create();
    comm.Barrier();
    tree.Refresh();
    for (std::uint64_t i = comm.rank(); i < kPreCkpt; i += 2) {
      const std::uint64_t k = MixU64(i) | 1;
      tree.Put(k, k ^ 0xbeef);
    }
    comm.Barrier();
    tree.Refresh();
    auto ck = ckpt::CollectiveCheckpoint(comm, svc, "e1");
    ASSERT_TRUE(ck.ok()) << ck.status().message();

    constexpr std::uint64_t kBurst = 300;
    if (ctx.rank() == 1) {
      // Diverge past the epoch: a burst of split-heavy inserts whose SMO
      // state is un-checkpointed when the rank dies — from the epoch's
      // point of view the tree is mid-split at death, and recovery must
      // reassemble a consistent one from manifest + journal redo.
      for (std::uint64_t i = 0; i < kBurst; ++i) {
        tree.Put(MixU64(0x10000 + i) | 1, i);
      }
      ctx.world().KillRank(1, ctx.clock().now());
      throw comm::RankDeathError(1);
    }
    Status st = comm.BarrierOr();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kPeerDead);
    comm.Revoke();
    auto rec = ckpt::CollectiveRecover(comm, svc, "e1");
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_TRUE(svc.NodeFenced(1));

    // Survivor: the recovered tree is structurally whole — every leaf
    // reachable along the bottom chain, keys globally sorted — with no
    // checkpointed key lost. The dead rank's post-epoch burst survives
    // exactly to the extent its redo records went durable (the journal
    // overlay is a promise kept; DESIGN.md §12/§13), so it is bounded,
    // and Get must agree with the leaf-chain walk key-for-key.
    tree.Refresh();
    std::uint64_t keys = 0;
    ASSERT_TRUE(tree.CheckIntegrity(&keys).ok());
    EXPECT_GE(keys, kPreCkpt);
    EXPECT_LE(keys, kPreCkpt + kBurst);
    for (std::uint64_t i = 0; i < kPreCkpt; ++i) {
      const std::uint64_t k = MixU64(i) | 1;
      std::uint64_t v = 0;
      ASSERT_TRUE(tree.Get(k, &v)) << "checkpointed key " << i;
      EXPECT_EQ(v, k ^ 0xbeef);
    }
    std::uint64_t burst_found = 0;
    for (std::uint64_t i = 0; i < kBurst; ++i) {
      if (tree.Get(MixU64(0x10000 + i) | 1, nullptr)) ++burst_found;
    }
    EXPECT_EQ(keys, kPreCkpt + burst_found);
    EXPECT_EQ(svc.data_loss_count(), 0u);
  });
  ASSERT_TRUE(run.ok()) << run.error;
  EXPECT_EQ(run.dead_ranks, std::vector<int>{1});
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace mm::index
