// Gray-Scott tests: both distributed implementations versus the reference
// stepper, checkpoint backends, and the Fig. 6 OOM cliff.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "mm/apps/gray_scott.h"
#include "mm/apps/reference.h"
#include "mm/mega_mmap.h"

namespace mm::apps {
namespace {

class GrayScottTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mm_gs_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  GrayScottConfig Config(std::size_t L, int steps) {
    GrayScottConfig cfg;
    cfg.L = L;
    cfg.steps = steps;
    cfg.page_size = 32 * 1024;
    cfg.pcache_bytes = 2 * 1024 * 1024;
    return cfg;
  }

  core::ServiceOptions SvcOptions() {
    core::ServiceOptions so;
    so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(16)},
                      {sim::TierKind::kNvme, MEGABYTES(64)}};
    return so;
  }

  /// Reference global sums after `steps` steps.
  std::pair<double, double> ReferenceSums(std::size_t L, int steps) {
    std::vector<double> u, v, u2, v2;
    GrayScottInit(L, &u, &v);
    GrayScottParams prm;
    for (int s = 0; s < steps; ++s) {
      ReferenceGrayScottStep(L, u, v, &u2, &v2, prm);
      std::swap(u, u2);
      std::swap(v, v2);
    }
    double su = 0, sv = 0;
    for (double x : u) su += x;
    for (double x : v) sv += x;
    return {su, sv};
  }

  std::filesystem::path dir_;
};

TEST_F(GrayScottTest, MpiMatchesReference) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  GrayScottConfig cfg = Config(16, 3);
  GrayScottResult result;
  auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    auto r = GrayScottMpi(comm, cfg);
    if (ctx.rank() == 0) result = r;
  });
  ASSERT_TRUE(run.ok()) << run.error;
  auto [su, sv] = ReferenceSums(16, 3);
  EXPECT_NEAR(result.sum_u, su, 1e-7);
  EXPECT_NEAR(result.sum_v, sv, 1e-7);
}

TEST_F(GrayScottTest, MegaMatchesReference) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::Service svc(cluster.get(), SvcOptions());
  GrayScottConfig cfg = Config(16, 3);
  GrayScottResult result;
  auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    auto r = GrayScottMega(svc, comm, cfg);
    if (ctx.rank() == 0) result = r;
  });
  ASSERT_TRUE(run.ok()) << run.error;
  auto [su, sv] = ReferenceSums(16, 3);
  EXPECT_NEAR(result.sum_u, su, 1e-7);
  EXPECT_NEAR(result.sum_v, sv, 1e-7);
}

class GrayScottRankSweep : public GrayScottTest,
                           public ::testing::WithParamInterface<int> {};

TEST_P(GrayScottRankSweep, MegaMatchesMpiExactly) {
  int nranks = GetParam();
  int per_node = 2;
  GrayScottConfig cfg = Config(12, 4);
  GrayScottResult mega, mpi;
  {
    auto cluster =
        sim::Cluster::PaperTestbed((nranks + per_node - 1) / per_node);
    core::Service svc(cluster.get(), SvcOptions());
    auto run = comm::RunRanks(*cluster, nranks, per_node,
                              [&](comm::RankContext& ctx) {
                                comm::Communicator comm(&ctx);
                                auto r = GrayScottMega(svc, comm, cfg);
                                if (ctx.rank() == 0) mega = r;
                              });
    ASSERT_TRUE(run.ok()) << run.error;
  }
  {
    auto cluster =
        sim::Cluster::PaperTestbed((nranks + per_node - 1) / per_node);
    auto run = comm::RunRanks(*cluster, nranks, per_node,
                              [&](comm::RankContext& ctx) {
                                comm::Communicator comm(&ctx);
                                auto r = GrayScottMpi(comm, cfg);
                                if (ctx.rank() == 0) mpi = r;
                              });
    ASSERT_TRUE(run.ok()) << run.error;
  }
  // Same arithmetic, same partition: bitwise-identical sums per rank; the
  // tree reduction order matches too (same communicator shape).
  EXPECT_DOUBLE_EQ(mega.sum_u, mpi.sum_u);
  EXPECT_DOUBLE_EQ(mega.sum_v, mpi.sum_v);
}

INSTANTIATE_TEST_SUITE_P(Ranks, GrayScottRankSweep, ::testing::Values(1, 2, 4, 6));

TEST_F(GrayScottTest, MegaCheckpointPersistsToShdf) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::Service svc(cluster.get(), SvcOptions());
  GrayScottConfig cfg = Config(12, 2);
  cfg.plotgap = 1;
  cfg.out_key = "shdf://" + (dir_ / "gs.h5").string();
  GrayScottResult result;
  auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    auto r = GrayScottMega(svc, comm, cfg);
    if (ctx.rank() == 0) result = r;
  });
  ASSERT_TRUE(run.ok()) << run.error;
  EXPECT_GT(result.bytes_checkpointed, 0u);
  svc.Shutdown();
  // The checkpointed datasets must exist and contain the final state.
  auto stager = storage::StagerRegistry::Default().Get("shdf");
  ASSERT_TRUE(stager.ok());
  bool found = false;
  for (const char* ds : {"u0", "u1"}) {
    Uri uri;
    uri.scheme = "shdf";
    uri.path = (dir_ / "gs.h5").string();
    uri.fragment = ds;
    if ((*stager)->Exists(uri)) {
      auto size = (*stager)->Size(uri);
      ASSERT_TRUE(size.ok());
      EXPECT_EQ(*size, 12ull * 12 * 12 * sizeof(double));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(GrayScottTest, MpiOomsPastDramMegaDoesNot) {
  // Fig. 6's cliff: shrink node DRAM so the MPI slabs do not fit; the
  // MegaMmap version (bounded pcache + tiered scache) still completes.
  double scale = 1e-6;  // 48 KB DRAM per node
  GrayScottConfig cfg = Config(16, 1);
  {
    auto cluster = sim::Cluster::PaperTestbed(2, scale);
    auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      GrayScottMpi(comm, cfg);
    });
    EXPECT_TRUE(run.oom);  // killed, like Linux would
  }
  {
    auto cluster = sim::Cluster::PaperTestbed(2, 1e-3);  // 48 MB DRAM
    core::ServiceOptions so;
    so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(4)},
                      {sim::TierKind::kNvme, MEGABYTES(64)}};
    core::Service svc(cluster.get(), so);
    cfg.pcache_bytes = 256 * 1024;
    GrayScottResult result;
    auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      auto r = GrayScottMega(svc, comm, cfg);
      if (ctx.rank() == 0) result = r;
    });
    EXPECT_TRUE(run.ok()) << run.error;
    auto [su, sv] = ReferenceSums(16, 1);
    EXPECT_NEAR(result.sum_u, su, 1e-7);
  }
}

TEST_F(GrayScottTest, CheckpointBackendsOrderedBySpeed) {
  // Fig. 6/7 shape: synchronous PFS checkpointing is slowest; Assise-like
  // local NVMe is faster; Hermes-like async buffering is fastest.
  GrayScottConfig cfg = Config(16, 4);
  cfg.plotgap = 1;
  auto time_for = [&](CkptBackend b) {
    cfg.ckpt = b;
    auto cluster = sim::Cluster::PaperTestbed(2);
    sim::SimTime t = 0;
    auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      GrayScottMpi(comm, cfg);
    });
    EXPECT_TRUE(run.ok()) << run.error;
    t = run.max_time;
    return t;
  };
  double none = time_for(CkptBackend::kNone);
  double pfs = time_for(CkptBackend::kPfsSync);
  double assise = time_for(CkptBackend::kAssiseLike);
  double hermes = time_for(CkptBackend::kHermesLike);
  EXPECT_GT(pfs, assise);
  EXPECT_GT(assise, hermes);
  EXPECT_GT(hermes, none);
}

}  // namespace
}  // namespace mm::apps
