#include "mm/util/yaml.h"

#include <gtest/gtest.h>

#include "mm/util/byte_units.h"

namespace mm::yaml {
namespace {

TEST(Yaml, ParsesFlatMap) {
  auto root = Parse("a: 1\nb: hello\nc: 2.5\n");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root->IsMap());
  EXPECT_EQ(*(*root)["a"].AsInt(), 1);
  EXPECT_EQ((*root)["b"].AsString(), "hello");
  EXPECT_DOUBLE_EQ(*(*root)["c"].AsDouble(), 2.5);
}

TEST(Yaml, ParsesNestedMaps) {
  auto root = Parse(
      "runtime:\n"
      "  workers: 4\n"
      "  low_latency:\n"
      "    threshold: 16k\n");
  ASSERT_TRUE(root.ok());
  const Node& rt = (*root)["runtime"];
  ASSERT_TRUE(rt.IsMap());
  EXPECT_EQ(*rt["workers"].AsInt(), 4);
  EXPECT_EQ(*rt["low_latency"]["threshold"].AsBytes(), 16 * kKiB);
}

TEST(Yaml, ParsesBlockLists) {
  auto root = Parse(
      "tiers:\n"
      "  - dram\n"
      "  - nvme\n"
      "  - hdd\n");
  ASSERT_TRUE(root.ok());
  const Node& tiers = (*root)["tiers"];
  ASSERT_TRUE(tiers.IsList());
  ASSERT_EQ(tiers.size(), 3u);
  EXPECT_EQ(tiers.at(0).AsString(), "dram");
  EXPECT_EQ(tiers.at(2).AsString(), "hdd");
}

TEST(Yaml, ParsesListOfMaps) {
  auto root = Parse(
      "fs:\n"
      "  - dev_type: ssd\n"
      "    avail: 500g\n"
      "  - dev_type: hdd\n"
      "    avail: 1t\n");
  ASSERT_TRUE(root.ok());
  const Node& fs = (*root)["fs"];
  ASSERT_TRUE(fs.IsList());
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs.at(0)["dev_type"].AsString(), "ssd");
  EXPECT_EQ(*fs.at(0)["avail"].AsBytes(), 500 * kGiB);
  EXPECT_EQ(*fs.at(1)["avail"].AsBytes(), kTiB);
}

TEST(Yaml, ParsesInlineFlowList) {
  auto root = Parse("sizes: [1, 2, 3]\nnames: [a, b]\n");
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE((*root)["sizes"].IsList());
  EXPECT_EQ(*(*root)["sizes"].at(1).AsInt(), 2);
  EXPECT_EQ((*root)["names"].at(0).AsString(), "a");
}

TEST(Yaml, CommentsAndBlankLinesIgnored) {
  auto root = Parse(
      "# header comment\n"
      "a: 1  # trailing\n"
      "\n"
      "b: '#notacomment'\n");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*(*root)["a"].AsInt(), 1);
  EXPECT_EQ((*root)["b"].AsString(), "#notacomment");
}

TEST(Yaml, UrlValuesWithColonsSurvive) {
  auto root = Parse("key: shdf:///path/to/df.h5:mygroup\n");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)["key"].AsString(), "shdf:///path/to/df.h5:mygroup");
}

TEST(Yaml, BooleansAndNulls) {
  auto root = Parse("on_flag: true\noff_flag: no\nnothing: ~\n");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(*(*root)["on_flag"].AsBool());
  EXPECT_FALSE(*(*root)["off_flag"].AsBool());
  EXPECT_TRUE((*root)["nothing"].IsNull());
}

TEST(Yaml, MissingKeyReturnsNullNode) {
  auto root = Parse("a: 1\n");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE((*root)["zzz"].IsNull());
  EXPECT_EQ(root->GetInt("zzz", 99), 99);
  EXPECT_EQ(root->GetString("zzz", "dflt"), "dflt");
  EXPECT_EQ(root->GetBytes("zzz", 7), 7u);
  EXPECT_TRUE(root->GetBool("zzz", true));
}

TEST(Yaml, TypedGettersFallBackOnWrongType) {
  auto root = Parse("s: hello\n");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->GetInt("s", -1), -1);
  EXPECT_FALSE((*root)["s"].AsInt().ok());
}

TEST(Yaml, TabsRejected) {
  EXPECT_FALSE(Parse("a:\n\tb: 1\n").ok());
}

TEST(Yaml, EmptyDocumentIsNull) {
  auto root = Parse("# nothing here\n\n");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root->IsNull());
}

TEST(Yaml, DumpRoundTripsStructure) {
  const std::string doc =
      "cluster:\n"
      "  nodes: 4\n"
      "  tiers:\n"
      "    - kind: dram\n"
      "      cap: 48g\n"
      "    - kind: nvme\n"
      "      cap: 128g\n";
  auto root = Parse(doc);
  ASSERT_TRUE(root.ok());
  auto again = Parse(root->Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*(*again)["cluster"]["nodes"].AsInt(), 4);
  EXPECT_EQ((*again)["cluster"]["tiers"].at(1)["kind"].AsString(), "nvme");
  EXPECT_EQ(*(*again)["cluster"]["tiers"].at(1)["cap"].AsBytes(), 128 * kGiB);
}

TEST(Yaml, MapKeysPreserveInsertionOrder) {
  auto root = Parse("z: 1\na: 2\nm: 3\n");
  ASSERT_TRUE(root.ok());
  ASSERT_EQ(root->Keys().size(), 3u);
  EXPECT_EQ(root->Keys()[0], "z");
  EXPECT_EQ(root->Keys()[1], "a");
  EXPECT_EQ(root->Keys()[2], "m");
}

}  // namespace
}  // namespace mm::yaml
