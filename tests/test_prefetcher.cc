// Algorithm 1 unit tests against synthetic transactions and a recording
// callback harness.
#include "mm/core/prefetcher.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace mm::core {
namespace {

constexpr std::size_t kES = 8, kEPP = 16;
constexpr std::uint64_t kPageBytes = kES * kEPP;  // 128

struct Harness {
  std::map<std::uint64_t, float> scores;
  std::set<std::uint64_t> evicted;
  std::vector<std::uint64_t> fetched;
  std::set<std::uint64_t> cached;
  double per_page_cost = 1.0;

  PrefetcherOps Ops() {
    PrefetcherOps ops;
    ops.set_score = [this](std::uint64_t p, float s) { scores[p] = s; };
    ops.evict_page = [this](std::uint64_t p) {
      evicted.insert(p);
      cached.erase(p);
    };
    ops.fetch_ahead = [this](std::uint64_t p) {
      fetched.push_back(p);
      cached.insert(p);
    };
    ops.cached_or_pending = [this](std::uint64_t p) {
      return cached.count(p) > 0;
    };
    ops.est_read_seconds = [this](std::uint64_t, std::uint64_t) {
      return per_page_cost;
    };
    return ops;
  }
};

PrefetchVecState State(std::uint64_t max_pages, std::uint64_t cur_pages) {
  return PrefetchVecState{max_pages * kPageBytes, cur_pages * kPageBytes,
                          kPageBytes};
}

TEST(PrefetcherTest, EvictsTouchedPagesOutsideWindow) {
  // Sequential read of 10 pages; capacity 2 pages; 3 pages fully touched.
  SeqTx tx(MM_READ_ONLY, kES, kEPP, 0, 10 * kEPP);
  for (std::size_t i = 0; i < 3 * kEPP; ++i) tx.AdvanceTail();
  Harness h;
  h.cached = {0, 1, 2};
  Prefetcher::Step(State(2, 2), tx, 0.25, h.Ops());
  // Touched pages 0-2 are behind the tail and sequential never retouches.
  EXPECT_TRUE(h.evicted.count(0));
  EXPECT_TRUE(h.evicted.count(1));
  EXPECT_TRUE(h.evicted.count(2));
  EXPECT_FLOAT_EQ(h.scores[0], 0.0f);
  // Upcoming pages 3,4 (capacity window of 2 pages) score 1.
  EXPECT_FLOAT_EQ(h.scores[3], 1.0f);
  EXPECT_FLOAT_EQ(h.scores[4], 1.0f);
  // Head acknowledged.
  EXPECT_EQ(tx.head(), tx.tail());
}

TEST(PrefetcherTest, RandomTransactionsKeepPredictedRetouches) {
  // Random streams are reproducible: touched pages that reappear in the
  // predicted upcoming window survive; the rest are evicted.
  RandTx tx(MM_READ_ONLY, kES, kEPP, 0, 10 * kEPP, 100000, 5);
  for (int i = 0; i < 100; ++i) tx.AdvanceTail();
  Harness h;
  h.cached = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  Prefetcher::Step(State(4, 4), tx, 0.25, h.Ops());
  // The upcoming window (4 pages' worth of accesses over a 10-page range)
  // covers most pages; whatever was evicted must NOT be in the window.
  auto future = tx.GetPages(tx.tail(), 4 * kEPP);
  std::set<std::uint64_t> window;
  for (const auto& r : future) window.insert(r.page_idx);
  for (std::uint64_t page : h.evicted) {
    EXPECT_EQ(window.count(page), 0u) << page;
  }
}

TEST(PrefetcherTest, FetchesAheadIntoFreeSpace) {
  SeqTx tx(MM_READ_ONLY, kES, kEPP, 0, 20 * kEPP);
  Harness h;
  // 4-page budget, 1 page in use -> 3 pages fetched ahead (pages 0,1,2).
  Prefetcher::Step(State(4, 1), tx, 0.25, h.Ops());
  ASSERT_EQ(h.fetched.size(), 3u);
  EXPECT_EQ(h.fetched[0], 0u);
  EXPECT_EQ(h.fetched[1], 1u);
  EXPECT_EQ(h.fetched[2], 2u);
}

TEST(PrefetcherTest, SkipsAlreadyCachedPages) {
  SeqTx tx(MM_READ_ONLY, kES, kEPP, 0, 20 * kEPP);
  Harness h;
  h.cached = {0, 2};
  Prefetcher::Step(State(4, 1), tx, 0.25, h.Ops());
  // Only the uncached pages in the window are fetched.
  for (std::uint64_t p : h.fetched) {
    EXPECT_NE(p, 0u);
    EXPECT_NE(p, 2u);
  }
}

TEST(PrefetcherTest, ScoresDecreaseWithDistance) {
  SeqTx tx(MM_READ_ONLY, kES, kEPP, 0, 100 * kEPP);
  Harness h;
  Prefetcher::Step(State(4, 0), tx, 0.1, h.Ops());
  // Beyond the 4 fetched pages, scored pages decay with distance.
  ASSERT_TRUE(h.scores.count(4));
  ASSERT_TRUE(h.scores.count(5));
  EXPECT_GT(h.scores[4], h.scores[5]);
  if (h.scores.count(6)) {
    EXPECT_GT(h.scores[5], h.scores[6]);
  }
  // All extended scores respect the floor.
  for (auto& [page, score] : h.scores) {
    if (page >= 4) EXPECT_GT(score, 0.1f);
  }
}

TEST(PrefetcherTest, MinScoreBoundsLookahead) {
  SeqTx tx(MM_READ_ONLY, kES, kEPP, 0, 1000 * kEPP);
  Harness strict, loose;
  Prefetcher::Step(State(4, 0), tx, 0.8, strict.Ops());
  Prefetcher::Step(State(4, 0), tx, 0.1, loose.Ops());
  EXPECT_LT(strict.scores.size(), loose.scores.size());
}

TEST(PrefetcherTest, NoFreeSpaceFetchesNothing) {
  SeqTx tx(MM_READ_ONLY, kES, kEPP, 0, 20 * kEPP);
  Harness h;
  Prefetcher::Step(State(4, 4), tx, 0.25, h.Ops());
  EXPECT_TRUE(h.fetched.empty());
}

TEST(PrefetcherTest, LookaheadCapped) {
  // Tiny min_score must not enumerate the whole dataset.
  SeqTx tx(MM_READ_ONLY, kES, kEPP, 0, 100000 * kEPP);
  Harness h;
  Prefetcher::Step(State(2, 0), tx, 1e-12, h.Ops());
  EXPECT_LE(h.scores.size(), Prefetcher::kMaxScoredAhead + 2 + 2);
}

TEST(PrefetcherTest, StrideTransactionsFetchStridedPages) {
  // One element per page (stride = elems_per_page): window pages strided.
  StrideTx tx(MM_READ_ONLY, kES, kEPP, 0, kEPP * 2, 50);  // every 2nd page
  Harness h;
  Prefetcher::Step(State(3, 0), tx, 0.25, h.Ops());
  ASSERT_EQ(h.fetched.size(), 3u);
  EXPECT_EQ(h.fetched[0], 0u);
  EXPECT_EQ(h.fetched[1], 2u);
  EXPECT_EQ(h.fetched[2], 4u);
}

TEST(PrefetcherTest, MidTransactionWindowMovesWithTail) {
  SeqTx tx(MM_READ_ONLY, kES, kEPP, 0, 20 * kEPP);
  for (std::size_t i = 0; i < 5 * kEPP; ++i) tx.AdvanceTail();
  Harness h;
  Prefetcher::Step(State(3, 0), tx, 0.25, h.Ops());
  ASSERT_EQ(h.fetched.size(), 3u);
  EXPECT_EQ(h.fetched[0], 5u);  // window starts at the tail's page
}

}  // namespace
}  // namespace mm::core
