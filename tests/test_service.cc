// Service-level tests: vector registry, task routing, organizer wiring,
// ownership/placement, phases, YAML options.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include "mm/mega_mmap.h"

namespace mm::core {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = sim::Cluster::PaperTestbed(4);
    ServiceOptions so;
    so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(4)},
                      {sim::TierKind::kNvme, MEGABYTES(16)}};
    svc_ = std::make_unique<Service>(cluster_.get(), so);
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<Service> svc_;
};

TEST_F(ServiceTest, RegisterVectorIsIdempotent) {
  VectorOptions vo;
  vo.nonvolatile = false;
  auto a = svc_->RegisterVector("vec", 8, vo, 100);
  auto b = svc_->RegisterVector("vec", 8, vo, 100);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ((*a)->num_elements(), 100u);
}

TEST_F(ServiceTest, RegisterVectorRejectsElementSizeMismatch) {
  VectorOptions vo;
  vo.nonvolatile = false;
  ASSERT_TRUE(svc_->RegisterVector("vec", 8, vo, 100).ok());
  EXPECT_FALSE(svc_->RegisterVector("vec", 4, vo, 100).ok());
}

TEST_F(ServiceTest, FindVectorByKeyAndId) {
  VectorOptions vo;
  vo.nonvolatile = false;
  auto meta = svc_->RegisterVector("lookup_me", 8, vo, 10);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(svc_->FindVector("lookup_me"), *meta);
  EXPECT_EQ(svc_->FindVectorById((*meta)->vector_id), *meta);
  EXPECT_EQ(svc_->FindVector("nope"), nullptr);
  EXPECT_EQ(svc_->FindVectorById(12345), nullptr);
}

TEST_F(ServiceTest, PageBytesRoundedToWholeElements) {
  VectorOptions vo;
  vo.nonvolatile = false;
  vo.page_size = 1000;  // not a multiple of 24
  auto meta = svc_->RegisterVector("rounded", 24, vo, 100);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ((*meta)->page_bytes % 24, 0u);
  EXPECT_LE((*meta)->page_bytes, 1000u);
  EXPECT_EQ((*meta)->elems_per_page(), 41u);
}

TEST_F(ServiceTest, DefaultOwnerUsesPgasHint) {
  VectorOptions vo;
  vo.nonvolatile = false;
  vo.page_size = 64;  // 8 elements per page
  auto meta = svc_->RegisterVector("hinted", 8, vo, 64);
  ASSERT_TRUE(meta.ok());
  // 8 ranks over 4 nodes (2 per node), 64 elements -> 8 per rank, exactly
  // one page per rank.
  svc_->SetPgasHint(**meta, VectorMeta::PgasHint{64, 8, 2});
  for (std::uint64_t page = 0; page < 8; ++page) {
    storage::BlobId id{(*meta)->vector_id, page};
    EXPECT_EQ(svc_->DefaultOwner(**meta, id), page / 2) << "page " << page;
  }
  // Pages past the hinted size fall back to home-node hashing.
  storage::BlobId beyond{(*meta)->vector_id, 99};
  EXPECT_EQ(svc_->DefaultOwner(**meta, beyond),
            svc_->metadata().HomeNode(beyond));
}

TEST_F(ServiceTest, DefaultOwnerWithoutHintIsHomeNode) {
  VectorOptions vo;
  vo.nonvolatile = false;
  auto meta = svc_->RegisterVector("unhinted", 8, vo, 100);
  storage::BlobId id{(*meta)->vector_id, 3};
  EXPECT_EQ(svc_->DefaultOwner(**meta, id), svc_->metadata().HomeNode(id));
}

TEST_F(ServiceTest, WriteThenReadThroughTasks) {
  VectorOptions vo;
  vo.nonvolatile = false;
  vo.page_size = 4096;
  auto meta = svc_->RegisterVector("taskio", 1, vo, 8192);
  ASSERT_TRUE(meta.ok());
  std::vector<std::uint8_t> bytes(100, 0x5A);
  auto fut = svc_->WriteRegion(**meta, /*page=*/1, /*offset=*/50, bytes,
                               /*from_node=*/0, /*now=*/0.0);
  TaskOutcome outcome = fut.get();
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.version, 1u);
  sim::SimTime done = 0;
  auto page = svc_->ReadPage(**meta, 1, /*from_node=*/2, outcome.done, &done);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)[49], 0);
  EXPECT_EQ((*page)[50], 0x5A);
  EXPECT_EQ((*page)[149], 0x5A);
  EXPECT_GT(done, 0.0);
}

TEST_F(ServiceTest, VersionsIncrementPerCommit) {
  VectorOptions vo;
  vo.nonvolatile = false;
  vo.page_size = 4096;
  auto meta = svc_->RegisterVector("versioned", 1, vo, 4096);
  std::vector<std::uint8_t> bytes(10, 1);
  for (std::uint64_t expect = 1; expect <= 3; ++expect) {
    auto outcome =
        svc_->WriteRegion(**meta, 0, 0, bytes, 0, 0.0).get();
    ASSERT_TRUE(outcome.status.ok());
    EXPECT_EQ(outcome.version, expect);
    if (expect == 1) {
      // First commit materializes the page: the base version is unknowable
      // (reported as ~0 so writer frames never falsely adopt it).
      EXPECT_EQ(outcome.prev_version, ~0ULL);
    } else {
      EXPECT_EQ(outcome.prev_version, expect - 1);
    }
  }
  EXPECT_EQ(svc_->PageVersion(**meta, 0, 0, 0.0, nullptr), 3u);
  EXPECT_EQ(svc_->PageVersion(**meta, 99, 0, 0.0, nullptr), 0u);
}

TEST_F(ServiceTest, ScoresReachTheOrganizer) {
  VectorOptions vo;
  vo.nonvolatile = false;
  vo.page_size = 4096;
  auto meta = svc_->RegisterVector("scored", 1, vo, 4096);
  std::vector<std::uint8_t> bytes(10, 1);
  auto outcome = svc_->WriteRegion(**meta, 0, 0, bytes, 0, 0.0).get();
  ASSERT_TRUE(outcome.status.ok());
  auto loc = svc_->metadata().Lookup({(*meta)->vector_id, 0}, 0, 0.0, nullptr);
  ASSERT_TRUE(loc.ok());
  std::size_t owner = loc->node;
  svc_->SubmitScore(**meta, 0, 0.77f, 0, 0.0);
  // Scores are async: poll the owner's buffer manager (real time).
  storage::BlobId id{(*meta)->vector_id, 0};
  float score = 0;
  for (int i = 0; i < 200; ++i) {
    score = svc_->runtime(owner).buffer().GetScore(id);
    if (score == 0.77f) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FLOAT_EQ(score, 0.77f);
}

TEST_F(ServiceTest, ChangePhaseDropsReplicas) {
  VectorOptions vo;
  vo.nonvolatile = false;
  vo.page_size = 4096;
  vo.mode = CoherenceMode::kReadOnlyGlobal;
  auto meta = svc_->RegisterVector("phased", 1, vo, 4096);
  std::vector<std::uint8_t> bytes(4096, 7);
  // Place the page on node 0, then read it from node 2 (replicates).
  auto outcome = svc_->WriteRegion(**meta, 0, 0, bytes, 0, 0.0).get();
  ASSERT_TRUE(outcome.status.ok());
  sim::SimTime done = 0;
  ASSERT_TRUE(svc_->ReadPage(**meta, 0, 2, outcome.done, &done).ok());
  storage::BlobId id{(*meta)->vector_id, 0};
  EXPECT_FALSE(svc_->metadata().Replicas(id, 0, 0.0, nullptr).empty());
  ASSERT_TRUE(
      svc_->ChangePhase(**meta, CoherenceMode::kWriteOnlyGlobal, 0, done,
                        nullptr)
          .ok());
  EXPECT_TRUE(svc_->metadata().Replicas(id, 0, 0.0, nullptr).empty());
}

TEST_F(ServiceTest, DestroyIsIdempotent) {
  VectorOptions vo;
  vo.nonvolatile = false;
  auto meta = svc_->RegisterVector("bye", 1, vo, 4096);
  std::vector<std::uint8_t> bytes(10, 1);
  // Write outcome is irrelevant; the test exercises DestroyVector below.
  (void)svc_->WriteRegion(**meta, 0, 0, bytes, 0, 0.0).get();
  EXPECT_TRUE(svc_->DestroyVector(**meta).ok());
  EXPECT_TRUE(svc_->DestroyVector(**meta).ok());
  EXPECT_EQ(svc_->metadata().BlobsOfVector((*meta)->vector_id).size(), 0u);
}

TEST_F(ServiceTest, RequiresTierGrants) {
  ServiceOptions so;  // empty grants
  EXPECT_THROW(Service bad(cluster_.get(), so), std::logic_error);
}

TEST_F(ServiceTest, ScacheDramReservedAgainstNodeBudget) {
  // The fixture service granted 4 MB DRAM on each node.
  for (std::size_t n = 0; n < cluster_->num_nodes(); ++n) {
    EXPECT_GE(cluster_->node(n).dram_used(), MEGABYTES(4));
  }
  std::uint64_t before = cluster_->node(0).dram_used();
  svc_->Shutdown();
  EXPECT_EQ(cluster_->node(0).dram_used(), before - MEGABYTES(4));
}

// Shutdown racing in-flight Submit()s (run under TSan in CI): every awaited
// task's promise must be fulfilled — accepted tasks complete, rejected ones
// carry kFailedPrecondition — and no submitter may hang or crash.
TEST_F(ServiceTest, ShutdownVsInflightSubmitFulfillsEveryPromise) {
  VectorOptions vo;
  vo.nonvolatile = false;
  auto meta = svc_->RegisterVector("race", sizeof(double), vo, 4096);
  ASSERT_TRUE(meta.ok());
  std::vector<std::uint8_t> bytes(64, 7);
  constexpr int kSubmitters = 4, kPerThread = 50;
  std::atomic<int> resolved{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto fut = svc_->WriteRegion(**meta, 0, (t * kPerThread + i) % 256,
                                     bytes, 0, 0.0);
        TaskOutcome out = fut.get();  // must never hang
        EXPECT_TRUE(out.status.ok() ||
                    out.status.code() == StatusCode::kFailedPrecondition)
            << out.status.ToString();
        resolved.fetch_add(1);
      }
    });
  }
  svc_->Shutdown();
  for (auto& t : submitters) t.join();
  EXPECT_EQ(resolved.load(), kSubmitters * kPerThread);
}

// ---- ServiceOptions::FromYaml ----

TEST(ServiceOptionsYaml, ParsesFullConfig) {
  auto root = yaml::Parse(
      "runtime:\n"
      "  workers_per_node: 3\n"
      "  low_latency_workers: 2\n"
      "  low_latency_threshold: 32k\n"
      "  organize_every: 16\n"
      "  enable_prefetch: false\n"
      "tiers:\n"
      "  - kind: dram\n"
      "    capacity: 1g\n"
      "  - kind: nvme\n"
      "    capacity: 4g\n"
      "  - kind: hdd\n"
      "    capacity: 1t\n");
  ASSERT_TRUE(root.ok());
  auto opts = ServiceOptions::FromYaml(*root);
  ASSERT_TRUE(opts.ok());
  EXPECT_EQ(opts->workers_per_node, 3);
  EXPECT_EQ(opts->low_latency_workers, 2);
  EXPECT_EQ(opts->low_latency_threshold, 32 * kKiB);
  EXPECT_EQ(opts->organize_every, 16);
  EXPECT_FALSE(opts->enable_prefetch);
  EXPECT_TRUE(opts->enable_organizer);
  ASSERT_EQ(opts->tier_grants.size(), 3u);
  EXPECT_EQ(opts->tier_grants[0].kind, sim::TierKind::kDram);
  EXPECT_EQ(opts->tier_grants[0].capacity, kGiB);
  EXPECT_EQ(opts->tier_grants[2].kind, sim::TierKind::kHdd);
  EXPECT_EQ(opts->tier_grants[2].capacity, kTiB);
}

TEST(ServiceOptionsYaml, DefaultsWhenSectionsMissing) {
  auto root = yaml::Parse("tiers:\n  - kind: dram\n    capacity: 64m\n");
  ASSERT_TRUE(root.ok());
  auto opts = ServiceOptions::FromYaml(*root);
  ASSERT_TRUE(opts.ok());
  EXPECT_EQ(opts->workers_per_node, ServiceOptions{}.workers_per_node);
}

TEST(ServiceOptionsYaml, RejectsBadTier) {
  auto root = yaml::Parse("tiers:\n  - kind: floppy\n    capacity: 1m\n");
  ASSERT_TRUE(root.ok());
  EXPECT_FALSE(ServiceOptions::FromYaml(*root).ok());
}

TEST(ServiceOptionsYaml, RejectsZeroCapacity) {
  auto root = yaml::Parse("tiers:\n  - kind: dram\n");
  ASSERT_TRUE(root.ok());
  EXPECT_FALSE(ServiceOptions::FromYaml(*root).ok());
}

TEST(ServiceOptionsYaml, ConfigFileEndToEnd) {
  auto dir = std::filesystem::temp_directory_path() /
             ("mm_yaml_cfg_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir / "mm.yaml");
    out << "runtime:\n  workers_per_node: 2\n"
        << "tiers:\n  - kind: dram\n    capacity: 8m\n";
  }
  auto root = yaml::ParseFile((dir / "mm.yaml").string());
  ASSERT_TRUE(root.ok());
  auto opts = ServiceOptions::FromYaml(*root);
  ASSERT_TRUE(opts.ok());
  // A service boots from the parsed config.
  auto cluster = sim::Cluster::PaperTestbed(1);
  Service svc(cluster.get(), *opts);
  EXPECT_EQ(svc.options().workers_per_node, 2);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mm::core
