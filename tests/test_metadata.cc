#include "mm/storage/metadata.h"

#include <gtest/gtest.h>

#include "mm/sim/network.h"

namespace mm::storage {
namespace {

class MetadataTest : public ::testing::Test {
 protected:
  MetadataTest()
      : network_(4, sim::NetworkSpec::Roce40()), md_(4, &network_) {}

  sim::Network network_;
  MetadataManager md_;
};

TEST_F(MetadataTest, HomeNodeDeterministicAndSpread) {
  BlobId a{1, 0};
  EXPECT_EQ(md_.HomeNode(a), md_.HomeNode(a));
  // 256 blobs should not all land on one node.
  std::set<std::size_t> homes;
  for (std::uint64_t i = 0; i < 256; ++i) {
    homes.insert(md_.HomeNode(BlobId{1, i}));
  }
  EXPECT_EQ(homes.size(), 4u);
}

TEST_F(MetadataTest, UpdateLookupRoundTrip) {
  BlobId id{1, 7};
  BlobLocation loc{/*node=*/2, sim::TierKind::kNvme, /*size=*/4096,
                   /*score=*/0.5f, /*score_node=*/2, /*dirty=*/true};
  sim::SimTime done = 0;
  ASSERT_TRUE(md_.Update(id, loc, /*from_node=*/0, 0.0, &done).ok());
  auto got = md_.Lookup(id, 0, done, &done);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->node, 2u);
  EXPECT_EQ(got->tier, sim::TierKind::kNvme);
  EXPECT_EQ(got->size, 4096u);
  EXPECT_TRUE(got->dirty);
}

TEST_F(MetadataTest, LookupMissingIsNotFound) {
  auto got = md_.Lookup(BlobId{9, 9}, 0, 0.0, nullptr);
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST_F(MetadataTest, RemoteLookupChargesRtt) {
  BlobId id{1, 7};
  std::size_t home = md_.HomeNode(id);
  std::size_t remote = (home + 1) % 4;
  ASSERT_TRUE(md_.Update(id, BlobLocation{}, home, 0.0, nullptr).ok());
  sim::SimTime local_done = 0, remote_done = 0;
  ASSERT_TRUE(md_.Lookup(id, home, 0.0, &local_done).ok());
  ASSERT_TRUE(md_.Lookup(id, remote, 0.0, &remote_done).ok());
  EXPECT_DOUBLE_EQ(local_done, 0.0);    // local shard: free
  EXPECT_GT(remote_done, 0.0);          // remote shard: round trip
  EXPECT_GE(remote_done, 2 * network_.spec().latency_s);
}

TEST_F(MetadataTest, RemoveErases) {
  BlobId id{3, 3};
  ASSERT_TRUE(md_.Update(id, BlobLocation{}, 0, 0.0, nullptr).ok());
  EXPECT_EQ(md_.TotalBlobs(), 1u);
  ASSERT_TRUE(md_.Remove(id, 0, 0.0, nullptr).ok());
  EXPECT_EQ(md_.TotalBlobs(), 0u);
  EXPECT_EQ(md_.Remove(id, 0, 0.0, nullptr).code(), StatusCode::kNotFound);
}

TEST_F(MetadataTest, ReplicasLifecycle) {
  BlobId id{4, 1};
  ASSERT_TRUE(md_.Update(id, BlobLocation{.node = 0}, 0, 0.0, nullptr).ok());
  ASSERT_TRUE(md_.AddReplica(id, 1, 0, 0.0, nullptr).ok());
  ASSERT_TRUE(md_.AddReplica(id, 2, 0, 0.0, nullptr).ok());
  ASSERT_TRUE(md_.AddReplica(id, 1, 0, 0.0, nullptr).ok());  // idempotent
  auto reps = md_.Replicas(id, 0, 0.0, nullptr);
  EXPECT_EQ(reps.size(), 2u);

  sim::SimTime done = 0;
  auto dropped = md_.InvalidateReplicas(id, 3, 0.0, &done);
  EXPECT_EQ(dropped.size(), 2u);
  EXPECT_GT(done, 0.0);  // invalidation fan-out costs messages
  EXPECT_TRUE(md_.Replicas(id, 0, 0.0, nullptr).empty());
  // Primary still present.
  EXPECT_TRUE(md_.Lookup(id, 0, 0.0, nullptr).ok());
}

TEST_F(MetadataTest, AddReplicaToMissingBlobFails) {
  EXPECT_EQ(md_.AddReplica(BlobId{9, 9}, 1, 0, 0.0, nullptr).code(),
            StatusCode::kNotFound);
}

TEST_F(MetadataTest, BlobsOfVectorScans) {
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(md_.Update(BlobId{42, i}, BlobLocation{}, 0, 0.0, nullptr).ok());
  }
  ASSERT_TRUE(md_.Update(BlobId{43, 0}, BlobLocation{}, 0, 0.0, nullptr).ok());
  EXPECT_EQ(md_.BlobsOfVector(42).size(), 10u);
  EXPECT_EQ(md_.BlobsOfVector(43).size(), 1u);
  EXPECT_TRUE(md_.BlobsOfVector(44).empty());
}

}  // namespace
}  // namespace mm::storage
