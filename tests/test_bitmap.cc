#include "mm/util/bitmap.h"

#include <gtest/gtest.h>

#include <tuple>

#include "mm/util/rng.h"

namespace mm {
namespace {

TEST(Bitmap, StartsEmpty) {
  Bitmap b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_FALSE(b.Any());
}

TEST(Bitmap, SetTestClear) {
  Bitmap b(70);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(69);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(69));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(Bitmap, SetRangeCrossesWordBoundaries) {
  Bitmap b(200);
  b.SetRange(60, 130);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(b.Test(i), i >= 60 && i < 130) << "bit " << i;
  }
  EXPECT_EQ(b.Count(), 70u);
}

TEST(Bitmap, ClearRange) {
  Bitmap b(128);
  b.SetRange(0, 128);
  b.ClearRange(10, 100);
  EXPECT_EQ(b.Count(), 128u - 90u);
  EXPECT_TRUE(b.AllSet(0, 10));
  EXPECT_TRUE(b.NoneSet(10, 100));
  EXPECT_TRUE(b.AllSet(100, 128));
}

TEST(Bitmap, EmptyRangeIsNoop) {
  Bitmap b(64);
  b.SetRange(10, 10);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.NoneSet(0, 64));
  EXPECT_TRUE(b.AllSet(5, 5));  // vacuous truth
}

TEST(Bitmap, OutOfRangeChecks) {
  Bitmap b(64);
  EXPECT_THROW(b.SetRange(0, 65), std::logic_error);
  EXPECT_THROW(b.AllSet(70, 71), std::logic_error);
}

TEST(Bitmap, OrMergesDirtyMasks) {
  Bitmap a(100), b(100);
  a.SetRange(0, 30);
  b.SetRange(20, 60);
  a.Or(b);
  EXPECT_TRUE(a.AllSet(0, 60));
  EXPECT_TRUE(a.NoneSet(60, 100));
}

TEST(Bitmap, OrRequiresEqualSizes) {
  Bitmap a(10), b(11);
  EXPECT_THROW(a.Or(b), std::logic_error);
}

TEST(Bitmap, ForEachRunFindsMaximalRuns) {
  Bitmap b(128);
  b.SetRange(2, 5);
  b.Set(63);
  b.Set(64);
  b.SetRange(100, 128);
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  b.ForEachRun([&](std::size_t lo, std::size_t hi) { runs.emplace_back(lo, hi); });
  using Run = std::pair<std::size_t, std::size_t>;
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], (Run{2, 5}));
  EXPECT_EQ(runs[1], (Run{63, 65}));
  EXPECT_EQ(runs[2], (Run{100, 128}));
}

TEST(Bitmap, ResizePreservesAndZeroFills) {
  Bitmap b(10);
  b.SetRange(0, 10);
  b.Resize(100);
  EXPECT_TRUE(b.AllSet(0, 10));
  EXPECT_TRUE(b.NoneSet(10, 100));
  b.Resize(5);
  EXPECT_EQ(b.Count(), 5u);
}

TEST(Bitmap, ResizeDownThenUpClearsStaleBits) {
  Bitmap b(64);
  b.SetRange(0, 64);
  b.Resize(3);
  b.Resize(64);
  EXPECT_TRUE(b.AllSet(0, 3));
  EXPECT_TRUE(b.NoneSet(3, 64));
}

// Property: for random range operations, the bitmap agrees with a reference
// std::vector<bool> model.
class BitmapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitmapPropertyTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  const std::size_t n = 317;  // deliberately not a multiple of 64
  Bitmap b(n);
  std::vector<bool> model(n, false);
  for (int step = 0; step < 300; ++step) {
    std::size_t lo = rng.NextBounded(n);
    std::size_t hi = lo + rng.NextBounded(n - lo + 1);
    if (rng.NextBounded(2) == 0) {
      b.SetRange(lo, hi);
      for (std::size_t i = lo; i < hi; ++i) model[i] = true;
    } else {
      b.ClearRange(lo, hi);
      for (std::size_t i = lo; i < hi; ++i) model[i] = false;
    }
  }
  std::size_t expected_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(b.Test(i), model[i]) << "bit " << i;
    if (model[i]) ++expected_count;
  }
  EXPECT_EQ(b.Count(), expected_count);
  // Runs must reconstruct exactly the set bits.
  std::vector<bool> rebuilt(n, false);
  b.ForEachRun([&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) rebuilt[i] = true;
  });
  EXPECT_EQ(rebuilt, model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitmapPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace mm
