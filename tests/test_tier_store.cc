#include "mm/storage/tier_store.h"

#include <gtest/gtest.h>

#include "mm/sim/cluster.h"
#include "mm/util/byte_units.h"

namespace mm::storage {
namespace {

class TierStoreTest : public ::testing::Test {
 protected:
  TierStoreTest()
      : device_(sim::DeviceSpec::Nvme(MEGABYTES(10))),
        store_(&device_, MEGABYTES(1)) {}

  static std::vector<std::uint8_t> Bytes(std::size_t n, std::uint8_t fill) {
    return std::vector<std::uint8_t>(n, fill);
  }

  sim::Device device_;
  TierStore store_;
};

TEST_F(TierStoreTest, PutGetRoundTrip) {
  BlobId id{1, 0};
  sim::SimTime done = 0;
  ASSERT_TRUE(store_.Put(id, Bytes(1000, 0xAB), 0.0, &done).ok());
  EXPECT_GT(done, 0.0);
  EXPECT_TRUE(store_.Contains(id));
  EXPECT_EQ(store_.used(), 1000u);
  auto data = store_.Get(id, done, &done);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 1000u);
  EXPECT_EQ((*data)[999], 0xAB);
}

TEST_F(TierStoreTest, CapacityEnforced) {
  BlobId a{1, 0}, b{1, 1};
  ASSERT_TRUE(store_.Put(a, Bytes(MEGABYTES(1), 1), 0.0, nullptr).ok());
  auto st = store_.Put(b, Bytes(1, 2), 0.0, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST_F(TierStoreTest, OverwriteReusesSpace) {
  BlobId id{1, 0};
  ASSERT_TRUE(store_.Put(id, Bytes(MEGABYTES(1), 1), 0.0, nullptr).ok());
  // Replacing the blob with an equal-size one must succeed.
  ASSERT_TRUE(store_.Put(id, Bytes(MEGABYTES(1), 2), 0.0, nullptr).ok());
  EXPECT_EQ(store_.used(), MEGABYTES(1));
  auto data = store_.Get(id, 0.0, nullptr);
  EXPECT_EQ((*data)[0], 2);
}

TEST_F(TierStoreTest, PartialReadWrite) {
  BlobId id{2, 3};
  ASSERT_TRUE(store_.Put(id, Bytes(4096, 0), 0.0, nullptr).ok());
  ASSERT_TRUE(store_.PutPartial(id, 100, Bytes(50, 0xCD), 0.0, nullptr).ok());
  auto frag = store_.GetPartial(id, 90, 70, 0.0, nullptr);
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ((*frag)[0], 0);          // byte 90: untouched
  EXPECT_EQ((*frag)[10], 0xCD);      // byte 100: written
  EXPECT_EQ((*frag)[59], 0xCD);      // byte 149: written
  EXPECT_EQ((*frag)[60], 0);         // byte 150: untouched
}

TEST_F(TierStoreTest, PartialBoundsChecked) {
  BlobId id{2, 3};
  ASSERT_TRUE(store_.Put(id, Bytes(100, 0), 0.0, nullptr).ok());
  EXPECT_EQ(store_.PutPartial(id, 90, Bytes(20, 1), 0.0, nullptr).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(store_.GetPartial(id, 90, 20, 0.0, nullptr).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(store_.PutPartial(BlobId{9, 9}, 0, Bytes(1, 1), 0.0, nullptr)
                .code(),
            StatusCode::kNotFound);
}

TEST_F(TierStoreTest, EraseFreesSpace) {
  BlobId id{1, 0};
  ASSERT_TRUE(store_.Put(id, Bytes(1000, 1), 0.0, nullptr).ok());
  ASSERT_TRUE(store_.Erase(id).ok());
  EXPECT_FALSE(store_.Contains(id));
  EXPECT_EQ(store_.used(), 0u);
  EXPECT_EQ(store_.Erase(id).code(), StatusCode::kNotFound);
}

TEST_F(TierStoreTest, DeviceTimeCharged) {
  // The NVMe preset has 4 channels: the first 4 concurrent writes proceed
  // in parallel, the 5th must queue behind one of them.
  sim::SimTime first = 0, fifth = 0;
  ASSERT_TRUE(store_.Put(BlobId{1, 0}, Bytes(100'000, 1), 0.0, &first).ok());
  for (std::uint64_t i = 1; i < 4; ++i) {
    sim::SimTime t = 0;
    ASSERT_TRUE(store_.Put(BlobId{1, i}, Bytes(100'000, 1), 0.0, &t).ok());
    EXPECT_DOUBLE_EQ(t, first);  // parallel channels
  }
  ASSERT_TRUE(store_.Put(BlobId{1, 4}, Bytes(100'000, 1), 0.0, &fifth).ok());
  EXPECT_GT(fifth, first);  // queued
  EXPECT_NEAR(fifth, 2 * first, first);
  EXPECT_EQ(device_.bytes_written(), 500'000u);
}

TEST_F(TierStoreTest, ListBlobs) {
  ASSERT_TRUE(store_.Put(BlobId{1, 0}, Bytes(10, 1), 0.0, nullptr).ok());
  ASSERT_TRUE(store_.Put(BlobId{1, 1}, Bytes(10, 1), 0.0, nullptr).ok());
  auto ids = store_.ListBlobs();
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(store_.num_blobs(), 2u);
}

TEST_F(TierStoreTest, BlobSizeReportsZeroWhenAbsent) {
  EXPECT_EQ(store_.BlobSize(BlobId{5, 5}), 0u);
  ASSERT_TRUE(store_.Put(BlobId{5, 5}, Bytes(77, 1), 0.0, nullptr).ok());
  EXPECT_EQ(store_.BlobSize(BlobId{5, 5}), 77u);
}

TEST(BlobIdTest, DigestDeterministicAndDistinct) {
  BlobId a{10, 0}, b{10, 1}, c{11, 0};
  EXPECT_EQ(a.Digest(), (BlobId{10, 0}).Digest());
  EXPECT_NE(a.Digest(), b.Digest());
  EXPECT_NE(a.Digest(), c.Digest());
  EXPECT_EQ(a, (BlobId{10, 0}));
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace mm::storage
