// Parameterized tests for tree collectives across communicator sizes,
// including non-powers-of-two and sub-communicators.
#include <gtest/gtest.h>

#include <numeric>

#include "mm/comm/communicator.h"
#include "mm/comm/launch.h"

namespace mm::comm {
namespace {

class CollectiveTest : public ::testing::TestWithParam<int> {
 protected:
  /// Runs `body` on GetParam() ranks spread over ceil(n/4) nodes.
  void Run(const std::function<void(RankContext&, Communicator&)>& body) {
    int n = GetParam();
    int per_node = 4;
    auto cluster = sim::Cluster::PaperTestbed((n + per_node - 1) / per_node);
    auto result = RunRanks(*cluster, n, per_node, [&](RankContext& ctx) {
      Communicator comm(&ctx);
      body(ctx, comm);
    });
    ASSERT_TRUE(result.ok()) << result.error;
  }
};

TEST_P(CollectiveTest, BcastFromRankZero) {
  Run([](RankContext& ctx, Communicator& comm) {
    std::vector<int> data;
    if (ctx.rank() == 0) data = {7, 8, 9};
    comm.Bcast(data, 0);
    ASSERT_EQ(data.size(), 3u);
    EXPECT_EQ(data[0], 7);
    EXPECT_EQ(data[2], 9);
  });
}

TEST_P(CollectiveTest, BcastFromNonzeroRoot) {
  Run([](RankContext&, Communicator& comm) {
    int root = comm.size() - 1;
    std::vector<double> data;
    if (comm.rank() == root) data = {3.14};
    comm.Bcast(data, root);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_DOUBLE_EQ(data[0], 3.14);
  });
}

TEST_P(CollectiveTest, ReduceSumsToRoot) {
  Run([](RankContext& ctx, Communicator& comm) {
    std::vector<long> data = {static_cast<long>(ctx.rank() + 1), 1};
    comm.Reduce(data, 0, [](long a, long b) { return a + b; });
    if (comm.rank() == 0) {
      long n = comm.size();
      EXPECT_EQ(data[0], n * (n + 1) / 2);
      EXPECT_EQ(data[1], n);
    }
  });
}

TEST_P(CollectiveTest, AllReduceMax) {
  Run([](RankContext& ctx, Communicator& comm) {
    std::vector<int> data = {ctx.rank()};
    comm.AllReduce(data, [](int a, int b) { return std::max(a, b); });
    EXPECT_EQ(data[0], comm.size() - 1);
  });
}

TEST_P(CollectiveTest, GatherVCollectsPerRankSizes) {
  Run([](RankContext& ctx, Communicator& comm) {
    // Rank r contributes r+1 copies of r.
    std::vector<int> mine(static_cast<std::size_t>(ctx.rank()) + 1, ctx.rank());
    auto all = comm.GatherV(mine, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(comm.size()));
      for (int r = 0; r < comm.size(); ++r) {
        ASSERT_EQ(all[r].size(), static_cast<std::size_t>(r) + 1);
        for (int v : all[r]) EXPECT_EQ(v, r);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectiveTest, AllGatherVConcatenatesInRankOrder) {
  Run([](RankContext& ctx, Communicator& comm) {
    std::vector<int> mine = {ctx.rank() * 2, ctx.rank() * 2 + 1};
    auto flat = comm.AllGatherV(mine);
    ASSERT_EQ(flat.size(), static_cast<std::size_t>(comm.size()) * 2);
    for (int i = 0; i < comm.size() * 2; ++i) {
      EXPECT_EQ(flat[i], i);
    }
  });
}

TEST_P(CollectiveTest, ScatterVDistributesParts) {
  Run([](RankContext& ctx, Communicator& comm) {
    std::vector<std::vector<int>> parts;
    if (comm.rank() == 0) {
      parts.resize(comm.size());
      for (int r = 0; r < comm.size(); ++r) {
        parts[r] = {r, r * 10};
      }
    }
    auto mine = comm.ScatterV(parts, 0);
    ASSERT_EQ(mine.size(), 2u);
    EXPECT_EQ(mine[0], ctx.rank());
    EXPECT_EQ(mine[1], ctx.rank() * 10);
  });
}

TEST_P(CollectiveTest, SplitFormsCorrectGroups) {
  Run([](RankContext& ctx, Communicator& comm) {
    int color = ctx.rank() % 2;
    Communicator sub = comm.Split(color);
    int expected_size = comm.size() / 2 + (color == 0 ? comm.size() % 2 : 0);
    EXPECT_EQ(sub.size(), expected_size);
    // Group collective works inside the sub-communicator.
    std::vector<int> data = {1};
    sub.AllReduce(data, [](int a, int b) { return a + b; });
    EXPECT_EQ(data[0], expected_size);
    // World ranks in my group all share my color.
    for (int i = 0; i < sub.size(); ++i) {
      EXPECT_EQ(sub.WorldRank(i) % 2, color);
    }
  });
}

TEST_P(CollectiveTest, NestedSplit) {
  Run([](RankContext& ctx, Communicator& comm) {
    if (comm.size() < 4) return;
    Communicator half = comm.Split(ctx.rank() < comm.size() / 2 ? 0 : 1);
    Communicator quarter = half.Split(half.rank() % 2);
    std::vector<int> ones = {1};
    quarter.AllReduce(ones, [](int a, int b) { return a + b; });
    EXPECT_EQ(ones[0], quarter.size());
  });
}

TEST_P(CollectiveTest, SubBarrierSynchronizesGroupClocks) {
  Run([](RankContext& ctx, Communicator& comm) {
    if (comm.size() < 2) return;
    Communicator sub = comm.Split(ctx.rank() % 2);
    ctx.Compute(0.1 * (sub.rank() + 1));
    double max_before = 0.1 * sub.size();
    sub.Barrier();
    EXPECT_GE(ctx.clock().now(), max_before - 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 33));

TEST(CollectiveScaling, BcastCostGrowsLogarithmically) {
  // Tree broadcast virtual cost should grow ~log(p), far slower than linear.
  auto measure = [](int n) {
    auto cluster = sim::Cluster::PaperTestbed(n);
    sim::SimTime t = 0;
    auto result = RunRanks(*cluster, n, 1, [&](RankContext& ctx) {
      Communicator comm(&ctx);
      std::vector<char> data;
      if (ctx.rank() == 0) data.assign(1'000'000, 'x');
      comm.Bcast(data, 0);
      comm.Barrier();
      if (ctx.rank() == 0) t = ctx.clock().now();
    });
    EXPECT_TRUE(result.ok());
    return t;
  };
  sim::SimTime t4 = measure(4);
  sim::SimTime t16 = measure(16);
  // 4x ranks should cost roughly 2x (log2 16 / log2 4), well under 3x.
  EXPECT_LT(t16, t4 * 3.0);
  EXPECT_GT(t16, t4);
}

}  // namespace
}  // namespace mm::comm
