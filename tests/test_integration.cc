// Cross-cutting integration scenarios exercising several subsystems at
// once: producer/consumer pipelines with phase changes, distributed-lock
// protected shared state, append-only logs, restart/recovery cycles, and
// many-vector workloads.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "mm/mega_mmap.h"

namespace mm {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mm_integ_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  core::ServiceOptions SvcOptions() {
    core::ServiceOptions so;
    so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(4)},
                      {sim::TierKind::kNvme, MEGABYTES(32)}};
    return so;
  }

  std::string Key(const std::string& name, const std::string& scheme = "posix",
                  const std::string& frag = "") {
    std::string k = scheme + "://" + (dir_ / name).string();
    if (!frag.empty()) k += ":" + frag;
    return k;
  }

  std::filesystem::path dir_;
};

TEST_F(IntegrationTest, ProducerConsumerPipelineWithPhaseChanges) {
  // Phase 1: half the ranks produce (write-only). Phase 2: the vector
  // flips to read-only and ALL ranks consume with replication. Phase 3:
  // the other half rewrites, and everyone re-verifies.
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::Service svc(cluster.get(), SvcOptions());
  const std::uint64_t n = 8192;
  auto result = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    core::VectorOptions vo;
    vo.page_size = 4096;
    vo.pcache_bytes = 64 * 1024;
    vo.mode = core::CoherenceMode::kWriteOnlyGlobal;
    Vector<std::uint64_t> v(svc, ctx, Key("pipe.bin"), n, vo);

    bool producer = ctx.rank() < 2;
    if (producer) {
      std::uint64_t half = n / 2;
      std::uint64_t lo = ctx.rank() * half;
      auto tx = v.SeqTxBegin(lo, half, core::MM_WRITE_ONLY);
      for (std::uint64_t i = lo; i < lo + half; ++i) v[i] = i * 7;
      v.TxEnd();
    }
    comm.Barrier();
    v.ChangePhase(core::CoherenceMode::kReadOnlyGlobal);
    comm.Barrier();
    {
      auto tx = v.SeqTxBegin(0, n, core::MM_READ_ONLY);
      for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(v.Read(i), i * 7);
      v.TxEnd();
    }
    comm.Barrier();
    v.ChangePhase(core::CoherenceMode::kWriteOnlyGlobal);
    comm.Barrier();
    if (!producer) {
      std::uint64_t half = n / 2;
      std::uint64_t lo = (ctx.rank() - 2) * half;
      auto tx = v.SeqTxBegin(lo, half, core::MM_WRITE_ONLY);
      for (std::uint64_t i = lo; i < lo + half; ++i) v[i] = i * 11;
      v.TxEnd();
    }
    comm.Barrier();
    v.ChangePhase(core::CoherenceMode::kReadOnlyGlobal);
    comm.Barrier();
    {
      auto tx = v.SeqTxBegin(0, n, core::MM_READ_ONLY);
      for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(v.Read(i), i * 11);
      v.TxEnd();
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST_F(IntegrationTest, DistributedLockGuardsReadModifyWrite) {
  // A shared counter vector updated with read-modify-write under a
  // distributed lock: the total must be exact despite page-level races
  // being possible without the lock.
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::Service svc(cluster.get(), SvcOptions());
  std::unique_ptr<comm::DistributedLock> lock;
  std::mutex init_mu;
  const int increments = 50;
  auto result = comm::RunRanks(*cluster, 6, 3, [&](comm::RankContext& ctx) {
    {
      std::lock_guard<std::mutex> g(init_mu);
      if (lock == nullptr) {
        lock = std::make_unique<comm::DistributedLock>(&ctx.world(), 0);
      }
    }
    comm::Communicator comm(&ctx);
    core::VectorOptions vo;
    vo.nonvolatile = false;
    vo.page_size = 4096;
    Vector<std::uint64_t> counters(svc, ctx, "locked_counters", 16, vo);
    comm.Barrier();
    for (int i = 0; i < increments; ++i) {
      comm::DistributedLock::Guard guard(*lock, ctx);
      // Read-modify-write across a synchronization point: must re-read the
      // current value (acquire semantics at TxBegin).
      auto tx = counters.SeqTxBegin(0, 1, core::MM_READ_WRITE);
      counters[0] = counters[0] + 1;
      counters.TxEnd();
    }
    comm.Barrier();
    auto tx = counters.SeqTxBegin(0, 1, core::MM_READ_ONLY);
    EXPECT_EQ(counters.Read(0),
              static_cast<std::uint64_t>(increments) * ctx.size());
    counters.TxEnd();
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST_F(IntegrationTest, AppendOnlyLogGathersAllRecords) {
  // Every rank appends distinct records to a shared log; after a barrier,
  // all records are present exactly once (the DBSCAN k-d exchange pattern).
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::Service svc(cluster.get(), SvcOptions());
  const int per_rank = 500;
  auto result = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    core::VectorOptions vo;
    vo.nonvolatile = false;
    vo.page_size = 1024;
    vo.mode = core::CoherenceMode::kAppendOnlyGlobal;
    Vector<std::uint64_t> log(svc, ctx, "append_log", 0, vo);
    for (int i = 0; i < per_rank; ++i) {
      log.Append((static_cast<std::uint64_t>(ctx.rank()) << 32) | i);
    }
    log.Commit();
    comm.Barrier();
    ASSERT_EQ(log.size(), static_cast<std::uint64_t>(per_rank) * ctx.size());
    std::set<std::uint64_t> seen;
    auto tx = log.SeqTxBegin(0, log.size(), core::MM_READ_ONLY);
    for (std::uint64_t i = 0; i < log.size(); ++i) {
      EXPECT_TRUE(seen.insert(log.Read(i)).second) << "duplicate at " << i;
    }
    log.TxEnd();
    for (int r = 0; r < ctx.size(); ++r) {
      for (int i = 0; i < per_rank; ++i) {
        EXPECT_TRUE(seen.count((static_cast<std::uint64_t>(r) << 32) | i));
      }
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST_F(IntegrationTest, CheckpointRestartCycles) {
  // Repeated job restarts: each "job" loads the vector from the backend,
  // advances its state, and shuts down; the state survives every cycle
  // through the staging engine.
  const std::uint64_t n = 2048;
  std::string key = Key("cycles.bin");
  for (int cycle = 0; cycle < 4; ++cycle) {
    auto cluster = sim::Cluster::PaperTestbed(2);
    core::Service svc(cluster.get(), SvcOptions());
    auto result = comm::RunRanks(*cluster, 2, 1, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      core::VectorOptions vo;
      vo.page_size = 4096;
      Vector<std::uint64_t> v(svc, ctx, key, n, vo);
      v.Pgas(ctx.rank(), ctx.size());
      auto tx = v.SeqTxBegin(v.local_off(), v.local_size(),
                             core::MM_READ_WRITE);
      for (std::uint64_t i = v.local_off();
           i < v.local_off() + v.local_size(); ++i) {
        v[i] = v[i] + i;  // state advances by +i per cycle
      }
      v.TxEnd();
    });
    ASSERT_TRUE(result.ok()) << "cycle " << cycle << ": " << result.error;
    svc.Shutdown();
  }
  // Verify: element i must be 4*i after 4 cycles.
  auto cluster = sim::Cluster::PaperTestbed(1);
  core::Service svc(cluster.get(), SvcOptions());
  auto result = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
    Vector<std::uint64_t> v(svc, ctx, key);
    ASSERT_EQ(v.size(), n);
    auto tx = v.SeqTxBegin(0, n, core::MM_READ_ONLY);
    for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(v.Read(i), 4 * i);
    v.TxEnd();
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST_F(IntegrationTest, ManySmallVectorsCoexist) {
  // 32 independent vectors with different element types/pages share one
  // service; destroying half leaves the rest intact.
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::Service svc(cluster.get(), SvcOptions());
  auto result = comm::RunRanks(*cluster, 2, 1, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    std::vector<std::unique_ptr<Vector<std::uint32_t>>> vecs;
    core::VectorOptions vo;
    vo.nonvolatile = false;
    vo.page_size = 1024;
    for (int k = 0; k < 32; ++k) {
      vecs.push_back(std::make_unique<Vector<std::uint32_t>>(
          svc, ctx, "multi_" + std::to_string(k), 256, vo));
    }
    if (ctx.rank() == 0) {
      for (int k = 0; k < 32; ++k) {
        auto tx = vecs[k]->SeqTxBegin(0, 256, core::MM_WRITE_ONLY);
        for (int i = 0; i < 256; ++i) (*vecs[k])[i] = k * 1000 + i;
        vecs[k]->TxEnd();
      }
    }
    comm.Barrier();
    if (ctx.rank() == 0) {
      for (int k = 0; k < 32; k += 2) vecs[k]->Destroy();
    }
    comm.Barrier();
    // Odd vectors still fully readable from the other rank.
    if (ctx.rank() == 1) {
      for (int k = 1; k < 32; k += 2) {
        auto tx = vecs[k]->SeqTxBegin(0, 256, core::MM_READ_ONLY);
        for (int i = 0; i < 256; ++i) {
          ASSERT_EQ(vecs[k]->Read(i), static_cast<std::uint32_t>(k * 1000 + i));
        }
        vecs[k]->TxEnd();
      }
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST_F(IntegrationTest, ShdfMultiDatasetWorkflow) {
  // Several vectors share one shdf container as distinct datasets (the
  // paper's "hdf5:///path/to/df.h5:mygroup" pattern), staged and reloaded.
  std::string base = (dir_ / "wf.h5").string();
  {
    auto cluster = sim::Cluster::PaperTestbed(1);
    core::Service svc(cluster.get(), SvcOptions());
    auto result = comm::RunRanks(*cluster, 2, 2, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      Vector<float> pos(svc, ctx, "shdf://" + base + ":positions", 1024);
      Vector<float> vel(svc, ctx, "shdf://" + base + ":velocities", 1024);
      pos.Pgas(ctx.rank(), ctx.size());
      vel.Pgas(ctx.rank(), ctx.size());
      auto ptx = pos.SeqTxBegin(pos.local_off(), pos.local_size(),
                                core::MM_WRITE_ONLY);
      auto vtx = vel.SeqTxBegin(vel.local_off(), vel.local_size(),
                                core::MM_WRITE_ONLY);
      for (std::uint64_t i = pos.local_off();
           i < pos.local_off() + pos.local_size(); ++i) {
        pos[i] = static_cast<float>(i);
        vel[i] = static_cast<float>(i) * -1.0f;
      }
      pos.TxEnd();
      vel.TxEnd();
    });
    ASSERT_TRUE(result.ok()) << result.error;
    svc.Shutdown();
  }
  {
    auto cluster = sim::Cluster::PaperTestbed(1);
    core::Service svc(cluster.get(), SvcOptions());
    auto result = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
      Vector<float> pos(svc, ctx, "shdf://" + base + ":positions");
      Vector<float> vel(svc, ctx, "shdf://" + base + ":velocities");
      ASSERT_EQ(pos.size(), 1024u);
      ASSERT_EQ(vel.size(), 1024u);
      EXPECT_FLOAT_EQ(pos.Read(1000), 1000.0f);
      EXPECT_FLOAT_EQ(vel.Read(1000), -1000.0f);
    });
    ASSERT_TRUE(result.ok()) << result.error;
  }
}

}  // namespace
}  // namespace mm
