// Edge cases of the StatAccumulator the bench harness and telemetry report
// summaries lean on: empty accumulators, single samples, and the linear
// interpolation at and between the percentile endpoints.
#include "mm/util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mm {
namespace {

TEST(StatAccumulator, EmptyIsAllZero) {
  // Summaries of empty accumulators (e.g. a failed bench run) must stay
  // well-defined instead of aborting the report.
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.sum(), 0.0);
  EXPECT_EQ(acc.Mean(), 0.0);
  EXPECT_EQ(acc.Stddev(), 0.0);
  EXPECT_EQ(acc.Min(), 0.0);
  EXPECT_EQ(acc.Max(), 0.0);
  EXPECT_EQ(acc.Percentile(50), 0.0);
}

TEST(StatAccumulator, SingleSample) {
  StatAccumulator acc;
  acc.Add(7.5);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.Mean(), 7.5);
  EXPECT_EQ(acc.Stddev(), 0.0);  // n-1 denominator: undefined -> 0
  EXPECT_DOUBLE_EQ(acc.Min(), 7.5);
  EXPECT_DOUBLE_EQ(acc.Max(), 7.5);
  // Every percentile of a single sample is that sample.
  EXPECT_DOUBLE_EQ(acc.Percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(acc.Percentile(50), 7.5);
  EXPECT_DOUBLE_EQ(acc.Percentile(100), 7.5);
}

TEST(StatAccumulator, PercentileEndpointsAndInterpolation) {
  StatAccumulator acc;
  // Insert out of order; Percentile must sort internally.
  for (double v : {40.0, 10.0, 30.0, 20.0}) acc.Add(v);
  EXPECT_DOUBLE_EQ(acc.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(100), 40.0);
  // Rank = p/100 * (n-1), linearly interpolated: p50 of 4 samples sits
  // halfway between the middle two; p25 lands at rank 0.75.
  EXPECT_DOUBLE_EQ(acc.Percentile(50), 25.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(25), 17.5);
  EXPECT_DOUBLE_EQ(acc.Percentile(75), 32.5);
  EXPECT_DOUBLE_EQ(acc.Percentile(62.5), 28.75);
}

TEST(StatAccumulator, MeanStddevAndClear) {
  StatAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_DOUBLE_EQ(acc.Mean(), 5.0);
  // Sample variance of the classic example: 32/7.
  EXPECT_NEAR(acc.Stddev(), 2.13809, 1e-4);
  acc.Clear();
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.Mean(), 0.0);
}

TEST(StatAccumulator, HighPercentileOnSmallN) {
  // p999 on a handful of samples must interpolate toward the max, never
  // index past the end or abort.
  StatAccumulator acc;
  acc.Add(1.0);
  acc.Add(2.0);
  // rank = 0.999 * (n-1) = 0.999 -> between the two samples, next to max.
  EXPECT_NEAR(acc.Percentile(99.9), 1.999, 1e-9);
  acc.Add(3.0);
  EXPECT_NEAR(acc.Percentile(99.9), 2.998, 1e-9);
  EXPECT_DOUBLE_EQ(acc.Percentile(100), 3.0);
}

TEST(StatAccumulator, OutOfRangePercentileClamps) {
  // Degenerate p (harness bugs, NaN from a 0/0 upstream) clamps to the
  // endpoints instead of aborting the whole bench report.
  StatAccumulator acc;
  for (double v : {10.0, 20.0, 30.0}) acc.Add(v);
  EXPECT_DOUBLE_EQ(acc.Percentile(-5.0), 10.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(150.0), 30.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(std::nan("")), 10.0);
}

TEST(StatAccumulator, AddAfterPercentileKeepsOrder) {
  StatAccumulator acc;
  acc.Add(3.0);
  acc.Add(1.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(100), 3.0);
  // A sample added after a (sorting) percentile query must still be seen.
  acc.Add(2.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(50), 2.0);
  EXPECT_EQ(acc.count(), 3u);
}

}  // namespace
}  // namespace mm
