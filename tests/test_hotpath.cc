// Hot-path overhaul tests: pinned Span access under eviction pressure,
// span<->scalar write-visibility equivalence, and the page-buffer pool
// recycling MemoryTask payloads.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "mm/core/memory_task.h"
#include "mm/mega_mmap.h"

namespace mm {
namespace {

using core::PagePool;
using core::PoolReturn;
using core::Service;
using core::ServiceOptions;
using core::VectorOptions;

class HotPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mm_hot_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    cluster_ = sim::Cluster::PaperTestbed(2);
    sopts_.tier_grants = {{sim::TierKind::kDram, MEGABYTES(4)},
                          {sim::TierKind::kNvme, MEGABYTES(16)}};
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Key(const std::string& scheme, const std::string& name) {
    return scheme + "://" + (dir_ / name).string();
  }

  VectorOptions SmallPages() {
    VectorOptions o;
    o.page_size = 4096;
    o.pcache_bytes = 64 * kKiB;
    return o;
  }

  std::filesystem::path dir_;
  std::unique_ptr<sim::Cluster> cluster_;
  ServiceOptions sopts_;
};

// A live span's frames must survive a full eviction sweep: ~20 pages are
// scanned through a 4-page cache (with the prefetcher's eviction pass
// active) while the span pins the first page, and every raw pointer the
// span handed out must still read the original bytes.
TEST_F(HotPathTest, SpanPinsSurviveEvictionPressure) {
  Service svc(cluster_.get(), sopts_);
  auto result = comm::RunRanks(*cluster_, 1, 1, [&](comm::RankContext& ctx) {
    VectorOptions o = SmallPages();
    o.pcache_bytes = 4 * 4096;  // 4 frames for ~20 pages of data
    Vector<std::uint64_t> v(svc, ctx, Key("posix", "pin.bin"), 10000, o);
    {
      auto tx = v.SeqTxBegin(0, 10000, MM_WRITE_ONLY);
      for (std::uint64_t i = 0; i < 10000; ++i) v[i] = i * 7;
      v.TxEnd();
    }
    const std::uint64_t epp = v.elems_per_page();
    {
      auto span = v.ReadSpan(0, epp);
      EXPECT_TRUE(v.pcache().IsPinned(0));
      // Sweep the whole vector under a read transaction: the prefetcher
      // runs its eviction pass at every page boundary and must skip the
      // pinned frame.
      auto tx = v.SeqTxBegin(0, 10000, MM_READ_ONLY);
      std::uint64_t sum = 0;
      for (std::uint64_t i = 0; i < 10000; ++i) sum += v.Read(i);
      EXPECT_EQ(sum, 7ull * (10000ull * 9999ull / 2));
      EXPECT_GT(v.evictions(), 0u);
      EXPECT_LE(v.pcache().used(), o.pcache_bytes + v.page_bytes());
      // The pinned window still reads the original bytes through the
      // pointers resolved at span construction.
      for (std::uint64_t i = 0; i < epp; ++i) {
        ASSERT_EQ(span[i], i * 7) << "element " << i;
      }
      v.TxEnd();
    }
    EXPECT_FALSE(v.pcache().IsPinned(0));
    EXPECT_EQ(v.pcache().num_pinned(), 0u);
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

// Writes made through a WriteSpan and through the scalar path must be
// mutually visible and identically durable, including when the pcache is
// small enough that span-dirtied pages are evicted and committed along the
// way.
TEST_F(HotPathTest, SpanScalarWriteVisibilityEquivalence) {
  Service svc(cluster_.get(), sopts_);
  auto result = comm::RunRanks(*cluster_, 1, 1, [&](comm::RankContext& ctx) {
    constexpr std::uint64_t kN = 8192;
    VectorOptions o = SmallPages();
    o.pcache_bytes = 4 * 4096;
    Vector<std::uint64_t> v(svc, ctx, Key("posix", "wrvis.bin"), kN, o);
    {
      auto tx = v.SeqTxBegin(0, kN, MM_WRITE_ONLY);
      const std::uint64_t chunk = v.MaxSpanElems();
      // First half through spans, second half through the scalar path.
      for (std::uint64_t s = 0; s < kN / 2; s += chunk) {
        std::uint64_t e = std::min<std::uint64_t>(kN / 2, s + chunk);
        auto span = v.WriteSpan(s, e);
        for (std::uint64_t i = s; i < e; ++i) span[i] = i * 11;
      }
      for (std::uint64_t i = kN / 2; i < kN; ++i) v[i] = i * 11;
      v.TxEnd();
    }
    // Read everything back through the opposite path.
    {
      auto tx = v.SeqTxBegin(0, kN, MM_READ_ONLY);
      for (std::uint64_t i = 0; i < kN / 2; ++i) {
        ASSERT_EQ(v.Read(i), i * 11) << "scalar read of span write " << i;
      }
      const std::uint64_t chunk = v.MaxSpanElems();
      for (std::uint64_t s = kN / 2; s < kN; s += chunk) {
        std::uint64_t e = std::min<std::uint64_t>(kN, s + chunk);
        auto span = v.ReadSpan(s, e);
        for (std::uint64_t i = s; i < e; ++i) {
          ASSERT_EQ(span[i], i * 11) << "span read of scalar write " << i;
        }
      }
      v.TxEnd();
    }
    // Scalar overwrite of a span-written element is seen by a later span.
    v.Set(3, 99);
    v.Commit();
    {
      auto span = v.ReadSpan(0, 8);
      EXPECT_EQ(span[3], 99u);
      EXPECT_EQ(span[4], 44u);
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

// Mixed span/scalar writes must survive a full flush + reopen (the
// per-page dirty ranges recorded by WriteSpan drive the same commit
// machinery as per-element dirty bits).
TEST_F(HotPathTest, SpanWritesAreDurableAcrossReopen) {
  Service svc(cluster_.get(), sopts_);
  auto result = comm::RunRanks(*cluster_, 1, 1, [&](comm::RankContext& ctx) {
    constexpr std::uint64_t kN = 4096;
    const std::string key = Key("posix", "durable.bin");
    {
      Vector<std::uint64_t> v(svc, ctx, key, kN, SmallPages());
      {
        auto span = v.WriteSpan(0, kN);
        for (std::uint64_t i = 0; i < kN; ++i) span[i] = i + 1;
      }
      // Span destroyed (frames unpinned); stage to the backend and drop
      // the shared object so the reopen must read staged bytes.
      v.Flush();
      v.Destroy(/*remove_backend=*/false);
    }
    {
      Vector<std::uint64_t> v(svc, ctx, key, kN, SmallPages());
      auto span = v.ReadSpan(0, kN);
      for (std::uint64_t i = 0; i < kN; ++i) {
        ASSERT_EQ(span[i], i + 1) << "element " << i;
      }
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST(PagePoolTest, ReusesReturnedBuffers) {
  PagePool pool;
  std::vector<std::uint8_t> a = pool.Acquire(4096);
  EXPECT_EQ(a.size(), 4096u);
  EXPECT_EQ(pool.allocations(), 1u);
  EXPECT_EQ(pool.reuses(), 0u);
  const std::uint8_t* ptr = a.data();
  pool.Release(std::move(a));
  EXPECT_EQ(pool.pooled_bytes(), 4096u);
  std::vector<std::uint8_t> b = pool.Acquire(4096);
  EXPECT_EQ(b.data(), ptr);  // same buffer came back
  EXPECT_EQ(b.size(), 4096u);
  EXPECT_EQ(pool.allocations(), 1u);
  EXPECT_EQ(pool.reuses(), 1u);
  // A different size misses the bucket and allocates fresh.
  std::vector<std::uint8_t> c = pool.Acquire(128);
  EXPECT_EQ(pool.allocations(), 2u);
}

TEST(PagePoolTest, AcquireZeroedScrubsRecycledBytes) {
  PagePool pool;
  std::vector<std::uint8_t> a = pool.Acquire(256);
  std::fill(a.begin(), a.end(), 0xAB);
  pool.Release(std::move(a));
  std::vector<std::uint8_t> b = pool.AcquireZeroed(256);
  ASSERT_EQ(pool.reuses(), 1u);  // really the recycled buffer
  for (std::uint8_t byte : b) ASSERT_EQ(byte, 0u);
}

TEST(PagePoolTest, CapDropsExcessBuffers) {
  PagePool pool(/*max_bytes=*/4096);
  std::vector<std::uint8_t> a = pool.Acquire(4096);
  std::vector<std::uint8_t> b = pool.Acquire(4096);
  pool.Release(std::move(a));
  pool.Release(std::move(b));  // over the cap: freed, not pooled
  EXPECT_EQ(pool.pooled_bytes(), 4096u);
}

TEST(PagePoolTest, PoolReturnGuardReturnsOnError) {
  PagePool pool;
  try {
    std::vector<std::uint8_t> buf = pool.Acquire(128);
    PoolReturn guard(pool, buf);
    throw std::runtime_error("task failed");
  } catch (const std::runtime_error&) {
  }
  // The error path still returned the buffer to the pool.
  EXPECT_EQ(pool.pooled_bytes(), 128u);
}

TEST(PagePoolTest, PoolReturnSkipsMovedFromBuffers) {
  PagePool pool;
  std::vector<std::uint8_t> taken;
  {
    std::vector<std::uint8_t> buf = pool.Acquire(128);
    PoolReturn guard(pool, buf);
    taken = std::move(buf);  // success path: payload moves to the caller
  }
  EXPECT_EQ(taken.size(), 128u);
  // The guard saw a moved-from (zero-capacity) vector and returned nothing.
  EXPECT_EQ(pool.pooled_bytes(), 0u);
}

}  // namespace
}  // namespace mm
