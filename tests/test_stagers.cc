// Tests for the staging backends: posix, shdf (HDF5-like), spar
// (parquet-like columnar), and the scheme registry. These do real file I/O
// under a temp directory.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "mm/storage/stager.h"
#include "mm/util/rng.h"

namespace mm::storage {
namespace {

class StagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mm_stager_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  Uri MakeUri(const std::string& scheme, const std::string& file,
              const std::string& fragment = "") {
    Uri uri;
    uri.scheme = scheme;
    uri.path = (dir_ / file).string();
    uri.fragment = fragment;
    return uri;
  }

  static std::vector<std::uint8_t> Pattern(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> out(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(rng.Next());
    return out;
  }

  std::filesystem::path dir_;
};

// ---------- posix ----------

TEST_F(StagerTest, PosixCreateReadWrite) {
  auto stager = MakePosixStager();
  Uri uri = MakeUri("posix", "data.bin");
  ASSERT_TRUE(stager->Create(uri, 8192).ok());
  EXPECT_TRUE(stager->Exists(uri));
  EXPECT_EQ(*stager->Size(uri), 8192u);

  auto data = Pattern(1024, 1);
  ASSERT_TRUE(stager->Write(uri, 4096, data).ok());
  std::vector<std::uint8_t> back;
  ASSERT_TRUE(stager->Read(uri, 4096, 1024, &back).ok());
  EXPECT_EQ(back, data);
  // Untouched regions read as zeros.
  ASSERT_TRUE(stager->Read(uri, 0, 16, &back).ok());
  EXPECT_EQ(back, std::vector<std::uint8_t>(16, 0));
}

TEST_F(StagerTest, PosixReadPastEndFails) {
  auto stager = MakePosixStager();
  Uri uri = MakeUri("posix", "small.bin");
  ASSERT_TRUE(stager->Create(uri, 100).ok());
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(stager->Read(uri, 90, 20, &out).ok());
}

TEST_F(StagerTest, PosixMissingFile) {
  auto stager = MakePosixStager();
  Uri uri = MakeUri("posix", "absent.bin");
  EXPECT_FALSE(stager->Exists(uri));
  EXPECT_FALSE(stager->Size(uri).ok());
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(stager->Read(uri, 0, 1, &out).ok());
  EXPECT_FALSE(stager->Remove(uri).ok());
}

TEST_F(StagerTest, PosixRemove) {
  auto stager = MakePosixStager();
  Uri uri = MakeUri("posix", "gone.bin");
  ASSERT_TRUE(stager->Create(uri, 10).ok());
  ASSERT_TRUE(stager->Remove(uri).ok());
  EXPECT_FALSE(stager->Exists(uri));
}

TEST_F(StagerTest, PosixCreatesParentDirectories) {
  auto stager = MakePosixStager();
  Uri uri = MakeUri("posix", "deep/nested/dirs/file.bin");
  ASSERT_TRUE(stager->Create(uri, 10).ok());
  EXPECT_TRUE(stager->Exists(uri));
}

// ---------- shdf ----------

TEST_F(StagerTest, ShdfMultipleDatasets) {
  auto stager = MakeShdfStager();
  Uri a = MakeUri("shdf", "c.h5", "groupA");
  Uri b = MakeUri("shdf", "c.h5", "groupB");
  ASSERT_TRUE(stager->Create(a, 1000).ok());
  ASSERT_TRUE(stager->Create(b, 2000).ok());
  EXPECT_EQ(*stager->Size(a), 1000u);
  EXPECT_EQ(*stager->Size(b), 2000u);

  auto da = Pattern(1000, 1), db = Pattern(2000, 2);
  ASSERT_TRUE(stager->Write(a, 0, da).ok());
  ASSERT_TRUE(stager->Write(b, 0, db).ok());
  std::vector<std::uint8_t> back;
  ASSERT_TRUE(stager->Read(a, 0, 1000, &back).ok());
  EXPECT_EQ(back, da);
  ASSERT_TRUE(stager->Read(b, 0, 2000, &back).ok());
  EXPECT_EQ(back, db);
}

TEST_F(StagerTest, ShdfPartialAccessWithinDataset) {
  auto stager = MakeShdfStager();
  Uri uri = MakeUri("shdf", "c.h5", "grid");
  ASSERT_TRUE(stager->Create(uri, 10000).ok());
  auto chunk = Pattern(256, 3);
  ASSERT_TRUE(stager->Write(uri, 5000, chunk).ok());
  std::vector<std::uint8_t> back;
  ASSERT_TRUE(stager->Read(uri, 5000, 256, &back).ok());
  EXPECT_EQ(back, chunk);
}

TEST_F(StagerTest, ShdfBoundsEnforcedPerDataset) {
  auto stager = MakeShdfStager();
  Uri uri = MakeUri("shdf", "c.h5", "small");
  ASSERT_TRUE(stager->Create(uri, 100).ok());
  std::vector<std::uint8_t> out;
  EXPECT_EQ(stager->Read(uri, 90, 20, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(stager->Write(uri, 90, Pattern(20, 1)).code(),
            StatusCode::kOutOfRange);
}

TEST_F(StagerTest, ShdfDuplicateCreateFails) {
  auto stager = MakeShdfStager();
  Uri uri = MakeUri("shdf", "c.h5", "dup");
  ASSERT_TRUE(stager->Create(uri, 10).ok());
  EXPECT_EQ(stager->Create(uri, 10).code(), StatusCode::kAlreadyExists);
}

TEST_F(StagerTest, ShdfRemoveDropsOnlyThatDataset) {
  auto stager = MakeShdfStager();
  Uri a = MakeUri("shdf", "c.h5", "keep");
  Uri b = MakeUri("shdf", "c.h5", "drop");
  ASSERT_TRUE(stager->Create(a, 10).ok());
  ASSERT_TRUE(stager->Create(b, 10).ok());
  ASSERT_TRUE(stager->Remove(b).ok());
  EXPECT_TRUE(stager->Exists(a));
  EXPECT_FALSE(stager->Exists(b));
}

TEST_F(StagerTest, ShdfDefaultDatasetNameWhenNoFragment) {
  auto stager = MakeShdfStager();
  Uri uri = MakeUri("shdf", "c.h5");
  ASSERT_TRUE(stager->Create(uri, 64).ok());
  EXPECT_TRUE(stager->Exists(uri));
}

TEST_F(StagerTest, ShdfEmptyFragmentAliasesTheDefaultDataset) {
  auto stager = MakeShdfStager();
  Uri bare = MakeUri("shdf", "c.h5");  // no fragment at all
  Uri empty = MakeUri("shdf", "c.h5", "");
  ASSERT_TRUE(stager->Create(bare, 128).ok());
  // An explicitly empty fragment names the same default dataset: creating
  // it again collides, and bytes written one way read back the other.
  EXPECT_EQ(stager->Create(empty, 128).code(), StatusCode::kAlreadyExists);
  auto data = Pattern(128, 21);
  ASSERT_TRUE(stager->Write(bare, 0, data).ok());
  std::vector<std::uint8_t> back;
  ASSERT_TRUE(stager->Read(empty, 0, 128, &back).ok());
  EXPECT_EQ(back, data);
  EXPECT_EQ(*stager->Size(empty), 128u);
}

TEST_F(StagerTest, ShdfMissingFragmentWriteAndRemoveAreNotFound) {
  auto stager = MakeShdfStager();
  Uri present = MakeUri("shdf", "c.h5", "real");
  ASSERT_TRUE(stager->Create(present, 64).ok());
  Uri missing = MakeUri("shdf", "c.h5", "ghost");
  EXPECT_EQ(stager->Write(missing, 0, Pattern(16, 1)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(stager->Remove(missing).code(), StatusCode::kNotFound);
  // The failed operations left the container and its real dataset intact.
  EXPECT_TRUE(stager->Exists(present));
  EXPECT_EQ(*stager->Size(present), 64u);
}

TEST_F(StagerTest, ShdfSurvivesManyDatasets) {
  auto stager = MakeShdfStager();
  for (int i = 0; i < 20; ++i) {
    Uri uri = MakeUri("shdf", "many.h5", "ds" + std::to_string(i));
    ASSERT_TRUE(stager->Create(uri, 128).ok());
    ASSERT_TRUE(stager->Write(uri, 0, Pattern(128, i)).ok());
  }
  for (int i = 0; i < 20; ++i) {
    Uri uri = MakeUri("shdf", "many.h5", "ds" + std::to_string(i));
    std::vector<std::uint8_t> back;
    ASSERT_TRUE(stager->Read(uri, 0, 128, &back).ok());
    EXPECT_EQ(back, Pattern(128, i)) << "dataset " << i;
  }
}

// ---------- spar ----------

TEST_F(StagerTest, SparRoundTripsRowMajorData) {
  auto stager = MakeSparStager();
  Uri uri = MakeUri("spar", "pts.parquet", "f4x3");
  // 3 float32 columns -> 12-byte rows; 10000 rows spans 3 row groups.
  const std::uint64_t rows = 10000, row_bytes = 12;
  ASSERT_TRUE(stager->Create(uri, rows * row_bytes).ok());
  EXPECT_EQ(*stager->Size(uri), rows * row_bytes);

  auto data = Pattern(rows * row_bytes, 7);
  ASSERT_TRUE(stager->Write(uri, 0, data).ok());
  std::vector<std::uint8_t> back;
  ASSERT_TRUE(stager->Read(uri, 0, rows * row_bytes, &back).ok());
  EXPECT_EQ(back, data);
}

TEST_F(StagerTest, SparPartialRowRanges) {
  auto stager = MakeSparStager();
  Uri uri = MakeUri("spar", "pts.parquet", "f4x2");
  const std::uint64_t rows = 9000, row_bytes = 8;
  ASSERT_TRUE(stager->Create(uri, rows * row_bytes).ok());
  auto data = Pattern(rows * row_bytes, 5);
  ASSERT_TRUE(stager->Write(uri, 0, data).ok());
  // Read rows [4090, 4110) — crosses the group-0/group-1 boundary at 4096.
  std::vector<std::uint8_t> back;
  ASSERT_TRUE(stager->Read(uri, 4090 * row_bytes, 20 * row_bytes, &back).ok());
  EXPECT_EQ(0, std::memcmp(back.data(), data.data() + 4090 * row_bytes,
                           20 * row_bytes));
  // Overwrite a range crossing the boundary and re-verify.
  auto patch = Pattern(20 * row_bytes, 9);
  ASSERT_TRUE(stager->Write(uri, 4090 * row_bytes, patch).ok());
  ASSERT_TRUE(stager->Read(uri, 4090 * row_bytes, 20 * row_bytes, &back).ok());
  EXPECT_EQ(back, patch);
}

TEST_F(StagerTest, SparAccessStraddlingMultipleRowGroups) {
  auto stager = MakeSparStager();
  Uri uri = MakeUri("spar", "wide.parquet", "f4x2");
  // 12000 rows of 8 bytes span three 4096-row groups.
  const std::uint64_t rows = 12000, row_bytes = 8;
  ASSERT_TRUE(stager->Create(uri, rows * row_bytes).ok());
  auto data = Pattern(rows * row_bytes, 11);
  // Raw-pointer overload straight from a buffer, as the journaled
  // writeback path stages pooled payloads.
  ASSERT_TRUE(stager->Write(uri, 0, data.data(), data.size()).ok());
  // One write spanning rows [4000, 8300): covers the whole middle group
  // plus a tail of group 0 and a head of group 2.
  auto patch = Pattern(4300 * row_bytes, 13);
  ASSERT_TRUE(
      stager->Write(uri, 4000 * row_bytes, patch.data(), patch.size()).ok());
  std::vector<std::uint8_t> back;
  ASSERT_TRUE(stager->Read(uri, 4000 * row_bytes, 4300 * row_bytes, &back).ok());
  EXPECT_EQ(back, patch);
  // The rows around the patched range are untouched.
  ASSERT_TRUE(stager->Read(uri, 3999 * row_bytes, row_bytes, &back).ok());
  EXPECT_EQ(0, std::memcmp(back.data(), data.data() + 3999 * row_bytes,
                           row_bytes));
  ASSERT_TRUE(stager->Read(uri, 8300 * row_bytes, row_bytes, &back).ok());
  EXPECT_EQ(0, std::memcmp(back.data(), data.data() + 8300 * row_bytes,
                           row_bytes));
}

TEST_F(StagerTest, SparFileIsActuallyColumnar) {
  auto stager = MakeSparStager();
  Uri uri = MakeUri("spar", "col.parquet", "f4x2");
  // 4 rows of 2 columns: rows (c0, c1) = (i, 100+i) as float32.
  ASSERT_TRUE(stager->Create(uri, 4 * 8).ok());
  std::vector<std::uint8_t> rows(4 * 8);
  for (int i = 0; i < 4; ++i) {
    float c0 = static_cast<float>(i), c1 = static_cast<float>(100 + i);
    std::memcpy(rows.data() + i * 8, &c0, 4);
    std::memcpy(rows.data() + i * 8 + 4, &c1, 4);
  }
  ASSERT_TRUE(stager->Write(uri, 0, rows).ok());
  // Raw file layout after the 24-byte header must be column-major:
  // c0[0..3] then c1[0..3].
  std::ifstream in(uri.path, std::ios::binary);
  in.seekg(24);
  float raw[8];
  in.read(reinterpret_cast<char*>(raw), sizeof(raw));
  ASSERT_TRUE(in.good());
  EXPECT_FLOAT_EQ(raw[0], 0.0f);
  EXPECT_FLOAT_EQ(raw[3], 3.0f);
  EXPECT_FLOAT_EQ(raw[4], 100.0f);
  EXPECT_FLOAT_EQ(raw[7], 103.0f);
}

TEST_F(StagerTest, SparRejectsUnalignedAccess) {
  auto stager = MakeSparStager();
  Uri uri = MakeUri("spar", "pts.parquet", "f4x3");
  ASSERT_TRUE(stager->Create(uri, 1200).ok());
  std::vector<std::uint8_t> out;
  EXPECT_EQ(stager->Read(uri, 5, 12, &out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(stager->Write(uri, 0, Pattern(7, 1)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StagerTest, SparUnalignedAccessAcrossGroupBoundaryRejected) {
  auto stager = MakeSparStager();
  Uri uri = MakeUri("spar", "pts.parquet", "f4x2");
  const std::uint64_t rows = 9000, row_bytes = 8;
  ASSERT_TRUE(stager->Create(uri, rows * row_bytes).ok());
  // Aligned offset near the 4096-row boundary, but a size that is not a
  // whole number of rows: the straddle must not be silently rounded.
  std::vector<std::uint8_t> out;
  EXPECT_EQ(stager->Read(uri, 4090 * row_bytes, 20 * row_bytes + 3, &out)
                .code(),
            StatusCode::kInvalidArgument);
  // Mid-row offset landing exactly on the boundary row.
  EXPECT_EQ(stager->Write(uri, 4096 * row_bytes + 2, Pattern(row_bytes, 1))
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StagerTest, SparRejectsBadSchemaAndSize) {
  auto stager = MakeSparStager();
  EXPECT_FALSE(stager->Create(MakeUri("spar", "x.parquet", "i8x2"), 16).ok());
  // Size not a multiple of row size.
  EXPECT_FALSE(stager->Create(MakeUri("spar", "y.parquet", "f4x3"), 13).ok());
}

// ---------- registry ----------

TEST_F(StagerTest, RegistryResolvesSchemes) {
  auto& reg = StagerRegistry::Default();
  EXPECT_TRUE(reg.Get("posix").ok());
  EXPECT_TRUE(reg.Get("shdf").ok());
  EXPECT_TRUE(reg.Get("spar").ok());
  EXPECT_TRUE(reg.Get("file").ok());
  EXPECT_FALSE(reg.Get("s3").ok());

  auto resolved = reg.Resolve("shdf://" + (dir_ / "z.h5").string() + ":grp");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->second.scheme, "shdf");
  EXPECT_EQ(resolved->second.fragment, "grp");
}

TEST_F(StagerTest, RegistryDefaultsBareKeysToPosix) {
  auto& reg = StagerRegistry::Default();
  auto resolved = reg.Resolve((dir_ / "plain.bin").string());
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->second.scheme, "posix");
}

// ---------- error paths (fault-tolerance PR) ----------

TEST_F(StagerTest, ShdfMissingObjectRead) {
  auto stager = MakeShdfStager();
  // Container file does not exist at all.
  std::vector<std::uint8_t> out;
  EXPECT_EQ(stager->Read(MakeUri("shdf", "absent.h5", "a"), 0, 16, &out).code(),
            StatusCode::kNotFound);
  // Container exists, dataset does not.
  Uri a = MakeUri("shdf", "c.h5", "a");
  ASSERT_TRUE(stager->Create(a, 256).ok());
  Uri missing = MakeUri("shdf", "c.h5", "nope");
  EXPECT_EQ(stager->Read(missing, 0, 16, &out).code(), StatusCode::kNotFound);
  EXPECT_EQ(stager->Size(missing).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(stager->Exists(missing));
}

TEST_F(StagerTest, ShdfBadMagicIsInvalidArgument) {
  auto stager = MakeShdfStager();
  Uri uri = MakeUri("shdf", "junk.h5", "a");
  {
    std::ofstream out(uri.path, std::ios::binary);
    std::vector<char> junk(64, 'x');
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  std::vector<std::uint8_t> bytes;
  EXPECT_EQ(stager->Read(uri, 0, 16, &bytes).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(stager->Size(uri).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(StagerTest, ShdfTruncatedHeaderIsInvalidArgument) {
  auto stager = MakeShdfStager();
  Uri uri = MakeUri("shdf", "trunc.h5", "a");
  {
    // Valid magic but the header is cut short.
    std::ofstream out(uri.path, std::ios::binary);
    out.write("SHDF0001", 8);
    std::uint32_t partial = 0;
    out.write(reinterpret_cast<const char*>(&partial), 4);
  }
  std::vector<std::uint8_t> bytes;
  EXPECT_EQ(stager->Read(uri, 0, 16, &bytes).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StagerTest, ShdfCorruptIndexIsIoError) {
  auto stager = MakeShdfStager();
  Uri uri = MakeUri("shdf", "corrupt.h5", "a");
  ASSERT_TRUE(stager->Create(uri, 128).ok());
  {
    // Claim far more index entries than the file holds; the index walk runs
    // off the end of the file.
    std::fstream io(uri.path, std::ios::binary | std::ios::in | std::ios::out);
    std::uint64_t bogus_count = 1000;
    io.seekp(16);
    io.write(reinterpret_cast<const char*>(&bogus_count), 8);
  }
  std::vector<std::uint8_t> bytes;
  EXPECT_EQ(stager->Read(uri, 0, 16, &bytes).code(), StatusCode::kIoError);
}

TEST_F(StagerTest, SparMalformedSchemaFragment) {
  auto stager = MakeSparStager();
  EXPECT_EQ(stager->Create(MakeUri("spar", "b1.spar", "f4xzzz"), 64).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(stager->Create(MakeUri("spar", "b2.spar", "f4x0"), 64).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(stager->Create(MakeUri("spar", "b3.spar", "i8x2"), 64).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StagerTest, SparBadMagicIsInvalidArgument) {
  auto stager = MakeSparStager();
  Uri uri = MakeUri("spar", "junk.spar");
  {
    std::ofstream out(uri.path, std::ios::binary);
    std::vector<char> junk(64, 'y');
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  std::vector<std::uint8_t> bytes;
  EXPECT_EQ(stager->Read(uri, 0, 4, &bytes).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(stager->Size(uri).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(StagerTest, SparMissingFileRead) {
  auto stager = MakeSparStager();
  std::vector<std::uint8_t> bytes;
  EXPECT_EQ(stager->Read(MakeUri("spar", "absent.spar"), 0, 4, &bytes).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace mm::storage
