// BenchReport serialization edge cases: reports summarizing degenerate runs
// (NaN/inf metrics from empty accumulators or zero-duration measurements)
// must still emit valid JSON, because ci/check_perf.py parses every
// BENCH_*.json with a strict parser.
#include "../bench/common.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

class BenchReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             "mm_test_bench_report.json")
                .string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::string path_;
};

TEST_F(BenchReportTest, NonFiniteMetricsSerializeAsZero) {
  mmbench::BenchReport report("edge");
  // Metric names deliberately avoid the substrings "nan"/"inf" so the
  // bare-token scans below can only match serialized VALUES.
  report.Metric("from_empty_acc", std::nan(""));
  report.Metric("from_zero_div", std::numeric_limits<double>::infinity());
  report.Metric("from_neg_div", -std::numeric_limits<double>::infinity());
  report.Metric("fine_metric", 3.5);
  ASSERT_TRUE(report.Write(path_));
  std::string json = ReadAll(path_);
  // %g would render "nan"/"inf", which no JSON parser accepts.
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  EXPECT_NE(json.find("\"from_empty_acc\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fine_metric\": 3.5"), std::string::npos) << json;
}

TEST_F(BenchReportTest, EmptySeriesSerializesCleanly) {
  // A series from a run that produced no samples: all-zero summary, not an
  // abort and not bare NaN tokens.
  mmbench::BenchReport report("edge");
  mm::StatAccumulator empty;
  report.Series("empty_series", empty);
  ASSERT_TRUE(report.Write(path_));
  std::string json = ReadAll(path_);
  EXPECT_NE(json.find("\"empty_series\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
}

TEST_F(BenchReportTest, SmallSampleSeriesHasOrderedPercentiles) {
  mmbench::BenchReport report("edge");
  mm::StatAccumulator acc;
  acc.Add(2.0);
  acc.Add(1.0);
  acc.Add(3.0);
  report.Series("three", acc);
  ASSERT_TRUE(report.Write(path_));
  std::string json = ReadAll(path_);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos) << json;
  // p999 of 3 samples interpolates just under the max.
  EXPECT_NE(json.find("\"p999\": 2.998"), std::string::npos) << json;
}

}  // namespace
