// Causal-flow integrity under network fault injection (DESIGN.md §11, §13).
// Every logical message is one trace flow: a msg_send async origin on the
// sender, a msg_recv terminal hop on the receiver. Link faults retransmit
// and duplicate wire copies, but retransmits happen below the message layer
// and duplicates are dedup'd by (src, seq) in the mailbox — so the trace
// must still show exactly one origin and one terminal per flow, no
// duplicate span ids, and no dangling flow references.
//
// Skips under -DMM_TELEMETRY=OFF, where the recorder is a stateless stub.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>

#include "mm/comm/communicator.h"
#include "mm/comm/launch.h"
#include "mm/sim/cluster.h"
#include "mm/sim/fault.h"
#include "mm/telemetry/trace.h"

namespace mm {
namespace {

#if !MM_TELEMETRY_ENABLED
TEST(TraceFlowFaults, Skipped) {
  GTEST_SKIP() << "built with -DMM_TELEMETRY=OFF";
}
#else

std::uint64_t FaultSeed() {
  const char* env = std::getenv("MM_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 42;
}

struct FlowTally {
  int origins = 0;    // flow_ph 's' or 'a'
  int terminals = 0;  // flow_ph 'f' (or a sync origin, which closes itself)
  int hops = 0;
};

// Mirrors ci/validate_trace.py: per flow, exactly one origin and exactly
// one closing event; span ids unique across the whole trace.
void CheckFlowIntegrity(const std::vector<telemetry::TraceEvent>& events) {
  std::map<std::uint64_t, FlowTally> flows;
  std::set<std::uint64_t> span_ids;
  for (const auto& ev : events) {
    if (ev.span_id != 0) {
      EXPECT_TRUE(span_ids.insert(ev.span_id).second)
          << "duplicate span_id " << ev.span_id << " (" << ev.name << ")";
    }
    if (ev.flow_id == 0) continue;
    FlowTally& t = flows[ev.flow_id];
    switch (ev.flow_ph) {
      case 's':  // sync origin opens and closes the flow itself
        ++t.origins;
        ++t.terminals;
        break;
      case 'a':
        ++t.origins;
        break;
      case 'f':
        ++t.terminals;
        ++t.hops;
        break;
      case 't':
        ++t.hops;
        break;
      default:
        ADD_FAILURE() << "span " << ev.name << " in flow " << ev.flow_id
                      << " has invalid flow_ph " << int(ev.flow_ph);
    }
  }
  EXPECT_FALSE(flows.empty());
  for (const auto& [id, t] : flows) {
    EXPECT_EQ(t.origins, 1) << "flow " << id;
    EXPECT_EQ(t.terminals, 1) << "flow " << id << " (dangling or duplicated)";
  }
}

TEST(TraceFlowFaults, DuplicatedMessagesKeepOneSpanPerFlow) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  sim::NetFaultSpec spec;
  spec.dup_rate = 1.0;  // every message delivered twice
  cluster->network().ConfigureFaults(spec, FaultSeed());
  telemetry::TraceRecorder rec(1 << 12);
  rec.set_enabled(true);
  constexpr int kMsgs = 8;
  auto result = comm::RunRanks(*cluster, 2, 1, [&](comm::RankContext& ctx) {
    if (ctx.rank() == 0) ctx.world().set_trace(&rec);
    comm::Communicator comm(&ctx);
    comm.Barrier();  // both ranks see the recorder before any traced send
    if (ctx.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) comm.SendValue<int>(1, /*tag=*/3, i);
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        EXPECT_EQ(comm.RecvValue<int>(0, /*tag=*/3), i);
      }
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(cluster->network().duplicates(),
            static_cast<std::uint64_t>(kMsgs));

  auto events = rec.Snapshot();
  int sends = 0, recvs = 0;
  for (const auto& ev : events) {
    if (ev.name == "msg_send") ++sends;
    if (ev.name == "msg_recv") ++recvs;
  }
  // One origin per logical message even though the wire carried two
  // copies, and dedup kept the terminal unique.
  EXPECT_EQ(sends, kMsgs);
  EXPECT_EQ(recvs, kMsgs);
  CheckFlowIntegrity(events);
}

TEST(TraceFlowFaults, DropsAndDupsNeverDangleFlows) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  sim::NetFaultSpec spec;
  spec.drop_rate = 0.4;  // retransmits below the message layer
  spec.dup_rate = 0.4;
  cluster->network().ConfigureFaults(spec, FaultSeed());
  telemetry::TraceRecorder rec(1 << 12);
  rec.set_enabled(true);
  constexpr int kRounds = 16;
  auto result = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
    if (ctx.rank() == 0) ctx.world().set_trace(&rec);
    comm::Communicator comm(&ctx);
    comm.Barrier();
    // Ring exchange: every rank both sends and receives each round, so
    // every flow produced under faults must resolve to origin+terminal.
    const int next = (ctx.rank() + 1) % comm.size();
    const int prev = (ctx.rank() + comm.size() - 1) % comm.size();
    for (int i = 0; i < kRounds; ++i) {
      if (ctx.rank() % 2 == 0) {
        comm.SendValue<int>(next, /*tag=*/5, ctx.rank() * 100 + i);
        // Only the flow spans matter here; the odd ranks assert values.
        (void)comm.RecvValue<int>(prev, /*tag=*/5);
      } else {
        EXPECT_EQ(comm.RecvValue<int>(prev, /*tag=*/5),
                  prev * 100 + i);
        comm.SendValue<int>(next, /*tag=*/5, ctx.rank() * 100 + i);
      }
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;
  // The plan actually fired: wire-level redundancy existed, yet below we
  // require exactly one span pair per logical message.
  EXPECT_GT(cluster->network().retransmits() + cluster->network().duplicates(),
            0u);
  CheckFlowIntegrity(rec.Snapshot());
}

#endif  // MM_TELEMETRY_ENABLED

}  // namespace
}  // namespace mm
