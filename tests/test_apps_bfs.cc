// Graph500-style BFS: the MegaMmap traversal must match the single-threaded
// reference depth-for-depth, at any rank count, and the R-MAT/CSR builders
// must be deterministic.
#include "mm/apps/bfs.h"

#include <gtest/gtest.h>

#include "mm/apps/reference.h"
#include "mm/mega_mmap.h"

namespace mm::apps {
namespace {

RmatConfig SmallGraph() {
  RmatConfig cfg;
  cfg.scale = 8;       // 256 vertices
  cfg.edge_factor = 8; // 2048 directed R-MAT edges
  cfg.seed = 3;
  return cfg;
}

core::ServiceOptions SvcOptions() {
  core::ServiceOptions so;
  so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(8)},
                    {sim::TierKind::kNvme, MEGABYTES(32)}};
  return so;
}

TEST(RmatTest, DeterministicInSeed) {
  auto a = GenerateRmat(SmallGraph());
  auto b = GenerateRmat(SmallGraph());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), 2048u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
  }
  RmatConfig other = SmallGraph();
  other.seed = 4;
  auto c = GenerateRmat(other);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].src != c[i].src || a[i].dst != c[i].dst) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RmatTest, CsrIsConsistent) {
  auto edges = GenerateRmat(SmallGraph());
  Csr csr = BuildCsr(edges, 256);
  ASSERT_EQ(csr.rows.size(), 257u);
  EXPECT_EQ(csr.rows[0], 0u);
  EXPECT_EQ(csr.rows[256], csr.cols.size());
  // Undirected: every (u,v) edge appears under both endpoints.
  std::uint64_t expect = 0;
  for (const auto& e : edges) expect += e.src == e.dst ? 1 : 2;
  EXPECT_EQ(csr.cols.size(), expect);
  for (std::uint64_t v = 0; v < 256; ++v) {
    EXPECT_LE(csr.rows[v], csr.rows[v + 1]);
    for (std::uint64_t i = csr.rows[v]; i < csr.rows[v + 1]; ++i) {
      EXPECT_LT(csr.cols[i], 256u);
    }
  }
}

TEST(BfsTest, ReferenceFindsSourceComponent) {
  auto edges = GenerateRmat(SmallGraph());
  Csr csr = BuildCsr(edges, 256);
  auto depth = ReferenceBfs(csr, 0);
  EXPECT_EQ(depth[0], 0);
  std::uint64_t reached = 0;
  for (std::int64_t d : depth) {
    if (d != kBfsUnreached) ++reached;
  }
  // R-MAT at edge factor 8 is densely connected around the hubs; the
  // source component must be non-trivial.
  EXPECT_GT(reached, 128u);
}

class MegaBfsTest : public ::testing::TestWithParam<int> {};

TEST_P(MegaBfsTest, MatchesReferenceDepths) {
  const int nodes = GetParam();
  auto edges = GenerateRmat(SmallGraph());
  Csr csr = BuildCsr(edges, 256);
  auto want = ReferenceBfs(csr, 0);

  auto cluster = sim::Cluster::PaperTestbed(nodes);
  core::Service svc(cluster.get(), SvcOptions());
  BfsConfig cfg;
  cfg.source = 0;
  cfg.page_size = 1024;
  cfg.pcache_bytes = 16 * 1024;
  BfsResult result;
  auto run = comm::RunRanks(*cluster, nodes, /*ranks_per_node=*/1,
                            [&](comm::RankContext& ctx) {
                              comm::Communicator comm(&ctx);
                              BfsResult r = MegaBfs(svc, comm, csr, cfg);
                              if (comm.rank() == 0) result = std::move(r);
                            });
  ASSERT_TRUE(run.ok()) << run.error;
  ASSERT_EQ(result.depth.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v) {
    EXPECT_EQ(result.depth[v], want[v]) << "vertex " << v;
  }
  EXPECT_GT(result.edges_traversed, 0u);
  EXPECT_GT(result.teps, 0.0);
  EXPECT_EQ(result.vertices_visited,
            static_cast<std::uint64_t>(
                std::count_if(want.begin(), want.end(),
                              [](std::int64_t d) { return d != kBfsUnreached; })));
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MegaBfsTest, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace mm::apps
