// End-to-end DBSCAN tests: both distributed implementations versus the
// exact O(n^2) reference on well-separated halo datasets.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <unistd.h>

#include "mm/apps/datagen.h"
#include "mm/apps/dbscan.h"
#include "mm/apps/reference.h"
#include "mm/mega_mmap.h"

namespace mm::apps {
namespace {

class DbscanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mm_dbscan_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    gen_.num_particles = 3000;
    gen_.halos = 5;
    gen_.halo_sigma = 2.0;   // tight blobs in a 1000^3 box: well separated
    gen_.seed = 99;
    key_ = "posix://" + (dir_ / "pts.bin").string();
    auto truth = GenerateToBackend(gen_, key_);
    ASSERT_TRUE(truth.ok());
    truth_ = *truth;
    GenerateParticles(gen_, &particles_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  DbscanConfig Config() {
    DbscanConfig cfg;
    cfg.eps = 4.0;
    cfg.min_pts = 8;
    cfg.seed = 3;
    cfg.page_size = 16 * 1024;
    cfg.pcache_bytes = 512 * 1024;
    cfg.collect_labels = true;
    return cfg;
  }

  core::ServiceOptions SvcOptions() {
    core::ServiceOptions so;
    so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(8)},
                      {sim::TierKind::kNvme, MEGABYTES(32)}};
    return so;
  }

  std::vector<int> ReferenceLabels() {
    std::vector<Point3> pts;
    for (const auto& p : particles_) pts.push_back(p.pos);
    return ReferenceDbscan(pts, Config().eps, Config().min_pts);
  }

  std::filesystem::path dir_;
  DatagenConfig gen_;
  DatagenTruth truth_;
  std::vector<Particle> particles_;
  std::string key_;
};

TEST_F(DbscanTest, MegaSingleRankMatchesReference) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  core::Service svc(cluster.get(), SvcOptions());
  DbscanResult result;
  auto run = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    result = DbscanMega(svc, comm, key_, Config());
  });
  ASSERT_TRUE(run.ok()) << run.error;
  auto ref = ReferenceLabels();
  int ref_clusters = *std::max_element(ref.begin(), ref.end()) + 1;
  EXPECT_EQ(result.num_clusters, static_cast<std::uint64_t>(ref_clusters));
  ASSERT_EQ(result.labels.size(), ref.size());
  EXPECT_GT(RandIndex(result.labels, ref), 0.999);
}

class DbscanRankSweep : public DbscanTest,
                        public ::testing::WithParamInterface<int> {};

TEST_P(DbscanRankSweep, MegaMatchesReferenceAcrossRankCounts) {
  int nranks = GetParam();
  int per_node = 2;
  auto cluster =
      sim::Cluster::PaperTestbed((nranks + per_node - 1) / per_node);
  core::Service svc(cluster.get(), SvcOptions());
  DbscanResult result;
  auto run = comm::RunRanks(*cluster, nranks, per_node,
                            [&](comm::RankContext& ctx) {
                              comm::Communicator comm(&ctx);
                              auto r = DbscanMega(svc, comm, key_, Config());
                              if (ctx.rank() == 0) result = r;
                            });
  ASSERT_TRUE(run.ok()) << run.error;
  auto ref = ReferenceLabels();
  EXPECT_GT(RandIndex(result.labels, ref), 0.99) << nranks << " ranks";
  EXPECT_EQ(result.num_points, gen_.num_particles);
}

TEST_P(DbscanRankSweep, MpiMatchesReferenceAcrossRankCounts) {
  int nranks = GetParam();
  int per_node = 2;
  auto cluster =
      sim::Cluster::PaperTestbed((nranks + per_node - 1) / per_node);
  DbscanResult result;
  auto run = comm::RunRanks(*cluster, nranks, per_node,
                            [&](comm::RankContext& ctx) {
                              comm::Communicator comm(&ctx);
                              auto r = DbscanMpi(comm, key_, Config());
                              if (ctx.rank() == 0) result = r;
                            });
  ASSERT_TRUE(run.ok()) << run.error;
  auto ref = ReferenceLabels();
  EXPECT_GT(RandIndex(result.labels, ref), 0.99) << nranks << " ranks";
}

INSTANTIATE_TEST_SUITE_P(Ranks, DbscanRankSweep, ::testing::Values(2, 3, 4, 8));

TEST_F(DbscanTest, MegaAndMpiAgree) {
  DbscanConfig cfg = Config();
  DbscanResult mega, mpi;
  {
    auto cluster = sim::Cluster::PaperTestbed(2);
    core::Service svc(cluster.get(), SvcOptions());
    auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      auto r = DbscanMega(svc, comm, key_, cfg);
      if (ctx.rank() == 0) mega = r;
    });
    ASSERT_TRUE(run.ok()) << run.error;
  }
  {
    auto cluster = sim::Cluster::PaperTestbed(2);
    auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      auto r = DbscanMpi(comm, key_, cfg);
      if (ctx.rank() == 0) mpi = r;
    });
    ASSERT_TRUE(run.ok()) << run.error;
  }
  EXPECT_EQ(mega.num_clusters, mpi.num_clusters);
  EXPECT_EQ(mega.num_points, mpi.num_points);
  // Same recursion, same splits, same leaves: identical partitions.
  EXPECT_GT(RandIndex(mega.labels, mpi.labels), 0.999);
}

TEST_F(DbscanTest, NoiseDetectedGlobally) {
  // Add isolated noise points far from every halo by generating a sparse
  // uniform dataset: with tiny min_pts-dense blobs, most points are noise.
  DatagenConfig sparse = gen_;
  sparse.num_particles = 400;
  sparse.halos = 40;          // 10 points per halo < min_pts neighborhood
  sparse.halo_sigma = 30.0;   // spread out: low density
  std::string sparse_key = "posix://" + (dir_ / "sparse.bin").string();
  ASSERT_TRUE(GenerateToBackend(sparse, sparse_key).ok());
  DbscanConfig cfg = Config();
  cfg.eps = 2.0;
  cfg.min_pts = 12;
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::Service svc(cluster.get(), SvcOptions());
  DbscanResult result;
  auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    auto r = DbscanMega(svc, comm, sparse_key, cfg);
    if (ctx.rank() == 0) result = r;
  });
  ASSERT_TRUE(run.ok()) << run.error;
  EXPECT_GT(result.num_noise, result.num_points / 2);
}

TEST_F(DbscanTest, ClustersSplitAcrossRanksAreMerged) {
  // 2 ranks, 1 big cluster: the kd split plane bisects it; the merge phase
  // must reunite the two halves.
  DatagenConfig one = gen_;
  one.num_particles = 1500;
  one.halos = 1;
  one.halo_sigma = 3.0;
  std::string one_key = "posix://" + (dir_ / "one.bin").string();
  ASSERT_TRUE(GenerateToBackend(one, one_key).ok());
  DbscanConfig cfg = Config();
  cfg.eps = 3.0;
  cfg.min_pts = 6;
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::Service svc(cluster.get(), SvcOptions());
  DbscanResult result;
  auto run = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    auto r = DbscanMega(svc, comm, one_key, cfg);
    if (ctx.rank() == 0) result = r;
  });
  ASSERT_TRUE(run.ok()) << run.error;
  EXPECT_EQ(result.num_clusters, 1u);
}

}  // namespace
}  // namespace mm::apps
