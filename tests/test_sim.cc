// Tests for the virtual-time substrate: clocks, devices, network, cluster.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mm/sim/cluster.h"
#include "mm/sim/cost_model.h"
#include "mm/sim/device.h"
#include "mm/sim/network.h"
#include "mm/sim/virtual_clock.h"
#include "mm/util/byte_units.h"

namespace mm::sim {
namespace {

TEST(VirtualClock, AdvanceAndAdvanceTo) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.Advance(1.5);
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.AdvanceTo(1.0);  // never goes backwards
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.AdvanceTo(2.0);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
}

TEST(BusyChannel, SerializesOverlappingRequests) {
  BusyChannel ch;
  SimTime a = ch.Reserve(0.0, 1.0);
  EXPECT_DOUBLE_EQ(a, 1.0);
  // Second request issued at t=0.5 must queue behind the first.
  SimTime b = ch.Reserve(0.5, 1.0);
  EXPECT_DOUBLE_EQ(b, 2.0);
  // A request after the channel idles starts immediately.
  SimTime c = ch.Reserve(10.0, 1.0);
  EXPECT_DOUBLE_EQ(c, 11.0);
}

TEST(BusyChannel, ConcurrentReservationsNeverOverlap) {
  BusyChannel ch;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  std::vector<std::vector<SimTime>> ends(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ends[t].push_back(ch.Reserve(0.0, 0.001));
      }
    });
  }
  for (auto& th : threads) th.join();
  // Total busy time must equal requests * duration: no two overlapped.
  EXPECT_NEAR(ch.busy_until(), kThreads * kPerThread * 0.001, 1e-9);
  // All completion times distinct.
  std::vector<SimTime> all;
  for (auto& v : ends) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i], all[i - 1]);
  }
}

TEST(Device, ReadChargesLatencyPlusBandwidth) {
  Device dev(DeviceSpec::Nvme(GIGABYTES(1)));
  std::uint64_t bytes = 1'000'000;
  SimTime done = dev.Read(0.0, bytes);
  double expected = dev.spec().read_latency_s +
                    static_cast<double>(bytes) / dev.spec().read_bw_Bps;
  EXPECT_NEAR(done, expected, 1e-12);
  EXPECT_EQ(dev.bytes_read(), bytes);
}

TEST(Device, TierOrderingFastestFirst) {
  // The presets must preserve the hierarchy the paper relies on.
  auto dram = DeviceSpec::Dram(1);
  auto nvme = DeviceSpec::Nvme(1);
  auto ssd = DeviceSpec::Ssd(1);
  auto hdd = DeviceSpec::Hdd(1);
  // Effective device bandwidth = per-channel bandwidth x channels.
  auto eff = [](const DeviceSpec& d) { return d.read_bw_Bps * d.channels; };
  EXPECT_GT(eff(dram), eff(nvme));
  EXPECT_GT(eff(nvme), eff(ssd));
  EXPECT_GT(eff(ssd), eff(hdd));
  EXPECT_LT(dram.read_latency_s, nvme.read_latency_s);
  EXPECT_LT(nvme.read_latency_s, ssd.read_latency_s);
  EXPECT_LT(ssd.read_latency_s, hdd.read_latency_s);
  // Paper: HDD roughly 0.02$/GB, SSD 0.04, NVMe 0.08.
  EXPECT_DOUBLE_EQ(hdd.dollars_per_gb, 0.02);
  EXPECT_DOUBLE_EQ(ssd.dollars_per_gb, 0.04);
  EXPECT_DOUBLE_EQ(nvme.dollars_per_gb, 0.08);
  // Paper: HDDs 6-10x slower than SSD and NVMe.
  EXPECT_GE(eff(ssd) / eff(hdd), 3.0);
  EXPECT_GE(eff(nvme) / eff(hdd), 6.0);
}

TEST(Device, WriteTracksBytesAndQueues) {
  Device dev(DeviceSpec::Hdd(GIGABYTES(10)));
  SimTime first = dev.Write(0.0, 1000);
  SimTime second = dev.Write(0.0, 1000);
  EXPECT_GT(second, first);
  EXPECT_EQ(dev.bytes_written(), 2000u);
}

TEST(Network, TransferChargesBothEnds) {
  Network net(2, NetworkSpec::Roce40());
  auto res = net.Transfer(0.0, 0, 1, 1'000'000);
  double wire = 1e6 / net.spec().bandwidth_Bps;
  EXPECT_NEAR(res.egress_done, wire, 1e-12);
  EXPECT_NEAR(res.delivered, wire + net.spec().latency_s, 1e-9);
  EXPECT_EQ(net.total_bytes(), 1'000'000u);
  EXPECT_EQ(net.total_messages(), 1u);
}

TEST(Network, IntraNodeUsesLoopback) {
  Network net(2, NetworkSpec::Roce40());
  auto local = net.Transfer(0.0, 0, 0, 1'000'000);
  auto remote = net.Transfer(0.0, 1, 0, 1'000'000);
  EXPECT_LT(local.delivered, remote.delivered);
}

TEST(Network, NicContentionSerializes) {
  Network net(3, NetworkSpec::Roce40());
  // Up to kNicLanes large transfers proceed concurrently; the next one
  // must queue behind a lane.
  std::vector<Network::TransferResult> xs;
  for (std::size_t i = 0; i < Network::kNicLanes + 1; ++i) {
    xs.push_back(net.Transfer(0.0, 1, 0, 10'000'000));
  }
  double wire = 1e7 / net.spec().bandwidth_Bps;
  SimTime latest = 0;
  for (const auto& x : xs) latest = std::max(latest, x.delivered);
  EXPECT_GE(latest, 2 * wire);
}

TEST(Network, ControlMessagesBypassLanes) {
  Network net(2, NetworkSpec::Roce40());
  // Saturate the lanes with big transfers...
  for (int i = 0; i < 16; ++i) net.Transfer(0.0, 0, 1, 50'000'000);
  // ...a small control message still completes in ~latency.
  auto ctl = net.Transfer(0.0, 0, 1, 128);
  EXPECT_LT(ctl.delivered, 2 * net.spec().latency_s);
}

TEST(Network, TcpSlowerThanRoce) {
  NetworkSpec roce = NetworkSpec::Roce40();
  NetworkSpec tcp = NetworkSpec::Tcp10();
  EXPECT_GT(tcp.latency_s, roce.latency_s);
  EXPECT_LT(tcp.bandwidth_Bps, roce.bandwidth_Bps);
}

TEST(Cluster, PaperTestbedShape) {
  auto cluster = Cluster::PaperTestbed(4);
  EXPECT_EQ(cluster->num_nodes(), 4u);
  Node& node = cluster->node(0);
  ASSERT_EQ(node.num_tiers(), 4u);
  EXPECT_EQ(node.tier(0).kind(), TierKind::kDram);
  EXPECT_EQ(node.tier(0).spec().capacity_bytes, GIGABYTES(48));
  EXPECT_EQ(node.tier(1).kind(), TierKind::kNvme);
  EXPECT_EQ(node.tier(1).spec().capacity_bytes, GIGABYTES(128));
  EXPECT_EQ(node.tier(2).kind(), TierKind::kSsd);
  EXPECT_EQ(node.tier(2).spec().capacity_bytes, GIGABYTES(256));
  EXPECT_EQ(node.tier(3).kind(), TierKind::kHdd);
  EXPECT_EQ(node.tier(3).spec().capacity_bytes, TERABYTES(1));
}

TEST(Cluster, ScaleShrinksCapacities) {
  auto cluster = Cluster::PaperTestbed(1, /*scale=*/0.001);
  EXPECT_EQ(cluster->node(0).tier(0).spec().capacity_bytes,
            static_cast<std::uint64_t>(GIGABYTES(48) * 0.001));
}

TEST(Cluster, FindTier) {
  auto cluster = Cluster::PaperTestbed(1);
  EXPECT_NE(cluster->node(0).FindTier(TierKind::kNvme), nullptr);
  EXPECT_EQ(cluster->node(0).FindTier(TierKind::kPfs), nullptr);
}

TEST(Cluster, ResetStatsClearsCounters) {
  auto cluster = Cluster::PaperTestbed(2);
  cluster->node(0).tier(0).Read(0.0, 100);
  cluster->network().Transfer(0.0, 0, 1, 100);
  cluster->ResetStats();
  EXPECT_EQ(cluster->node(0).tier(0).bytes_read(), 0u);
  EXPECT_EQ(cluster->network().total_bytes(), 0u);
}

TEST(CostModelTest, DollarsScaleWithCapacity) {
  auto nvme = DeviceSpec::Nvme(GIGABYTES(128));
  double dollars = DollarsForCapacity(nvme, 48ULL * 1000 * 1000 * 1000);
  EXPECT_NEAR(dollars, 48 * 0.08, 1e-9);
}

TEST(CostModelTest, MmOverheadIsSmallFraction) {
  // §III-E: mm::Vector access overhead is ~5% of a typical memory access.
  const CostModel& costs = CostModel::Default();
  EXPECT_LT(costs.mm_access_overhead_s / costs.memory_access_s, 0.5);
  EXPECT_GT(costs.mm_access_overhead_s, 0.0);
}

}  // namespace
}  // namespace mm::sim
