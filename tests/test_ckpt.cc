// mm::ckpt unit + service-level tests (DESIGN.md §12): redo journal append/
// replay/torn-tail handling, manifest serialization and atomic publication,
// coordinator startup recovery, service checkpoint/restore round trips,
// incremental second checkpoints, and journal-backed tier-death recovery.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "mm/ckpt/collective.h"
#include "mm/ckpt/coordinator.h"
#include "mm/ckpt/journal.h"
#include "mm/ckpt/manifest.h"
#include "mm/comm/launch.h"
#include "mm/core/service.h"
#include "mm/util/byte_units.h"
#include "mm/util/hash.h"

namespace mm {
namespace {

using sim::TierKind;

class CkptDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mm_ckpt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  static std::vector<std::uint8_t> Pattern(std::size_t n, std::uint64_t salt) {
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::uint8_t>((salt * 131 + i) & 0xFF);
    }
    return out;
  }

  ckpt::JournalRecord MakeRecord(std::uint64_t vector_id, std::uint64_t page,
                                 std::uint64_t version, std::uint64_t salt,
                                 const std::string& key,
                                 std::size_t bytes = 256) {
    ckpt::JournalRecord rec;
    rec.id = {vector_id, page};
    rec.version = version;
    rec.offset = page * bytes;
    rec.payload = Pattern(bytes, salt);
    rec.page_crc = Crc32(rec.payload);
    rec.key = key;
    return rec;
  }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

using JournalTest = CkptDirTest;

TEST_F(JournalTest, AppendLatestRoundTrip) {
  ckpt::Journal journal((dir_ / "j.mmj").string());
  ASSERT_TRUE(journal.Append(MakeRecord(1, 0, 1, 10, "posix:///a")).ok());
  ASSERT_TRUE(journal.Append(MakeRecord(1, 1, 1, 11, "posix:///a")).ok());
  // A later record for the same page supersedes the earlier one.
  ASSERT_TRUE(journal.Append(MakeRecord(1, 0, 2, 12, "posix:///a")).ok());
  EXPECT_EQ(journal.record_count(), 3u);

  auto rec = journal.Latest({1, 0});
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->version, 2u);
  EXPECT_EQ(rec->payload, Pattern(256, 12));
  EXPECT_EQ(rec->page_crc, Crc32(rec->payload));
  EXPECT_EQ(rec->key, "posix:///a");
  EXPECT_FALSE(journal.Latest({9, 9}).ok());
}

TEST_F(JournalTest, ReplayVisitsIntactRecordsInAppendOrder) {
  ckpt::Journal journal((dir_ / "j.mmj").string());
  for (std::uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(journal.Append(MakeRecord(7, p, 1, p, "posix:///b")).ok());
  }
  std::vector<std::uint64_t> order;
  std::uint64_t applied = 0, torn = 0;
  ASSERT_TRUE(journal
                  .Replay(
                      [&](const ckpt::JournalRecord& rec) {
                        order.push_back(rec.id.page_idx);
                        EXPECT_EQ(rec.payload,
                                  Pattern(256, rec.id.page_idx));
                        return Status::Ok();
                      },
                      &applied, &torn)
                  .ok());
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(applied, 4u);
  EXPECT_EQ(torn, 0u);
}

TEST_F(JournalTest, TornTailIsDiscardedAndTrimmed) {
  std::string path = (dir_ / "j.mmj").string();
  {
    ckpt::Journal journal(path);
    ASSERT_TRUE(journal.Append(MakeRecord(1, 0, 1, 1, "posix:///c")).ok());
    // Exactly what a crash mid-append leaves: header + half the payload.
    ASSERT_TRUE(journal.AppendTorn(MakeRecord(1, 1, 1, 2, "posix:///c")).ok());
  }
  // A fresh instance (restart) indexes only the intact prefix.
  ckpt::Journal reopened(path);
  EXPECT_EQ(reopened.record_count(), 1u);
  EXPECT_FALSE(reopened.Latest({1, 1}).ok());
  std::uint64_t applied = 0, torn = 0;
  ASSERT_TRUE(reopened
                  .Replay([](const ckpt::JournalRecord&) {
                    return Status::Ok();
                  },
                          &applied, &torn)
                  .ok());
  EXPECT_EQ(applied, 1u);
  EXPECT_EQ(torn, 1u);
  // The torn tail is trimmed before the next append lands.
  ASSERT_TRUE(reopened.Append(MakeRecord(1, 2, 1, 3, "posix:///c")).ok());
  EXPECT_EQ(reopened.record_count(), 2u);
  auto rec = reopened.Latest({1, 2});
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->payload, Pattern(256, 3));
}

TEST_F(JournalTest, TruncateDropsEverything) {
  ckpt::Journal journal((dir_ / "j.mmj").string());
  ASSERT_TRUE(journal.Append(MakeRecord(1, 0, 1, 1, "posix:///d")).ok());
  EXPECT_GT(journal.size_bytes(), 0u);
  ASSERT_TRUE(journal.Truncate().ok());
  EXPECT_EQ(journal.record_count(), 0u);
  EXPECT_EQ(journal.size_bytes(), 0u);
  EXPECT_FALSE(journal.Latest({1, 0}).ok());
  // The journal stays usable after a truncate.
  ASSERT_TRUE(journal.Append(MakeRecord(1, 0, 2, 2, "posix:///d")).ok());
  EXPECT_EQ(journal.record_count(), 1u);
}

TEST_F(JournalTest, ReopenIndexesExistingRecords) {
  std::string path = (dir_ / "j.mmj").string();
  {
    ckpt::Journal journal(path);
    ASSERT_TRUE(journal.Append(MakeRecord(3, 5, 7, 9, "shdf:///x:frag")).ok());
  }
  ckpt::Journal reopened(path);
  EXPECT_EQ(reopened.record_count(), 1u);
  auto rec = reopened.Latest({3, 5});
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->version, 7u);
  EXPECT_EQ(rec->offset, 5u * 256u);
  EXPECT_EQ(rec->key, "shdf:///x:frag");
  EXPECT_EQ(rec->payload, Pattern(256, 9));
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

using ManifestTest = CkptDirTest;

ckpt::Manifest SampleManifest() {
  ckpt::Manifest m;
  m.epoch = 3;
  m.tag = "iter-12";
  ckpt::ManifestVector mv;
  mv.key = "posix:///data/points.bin";
  mv.elem_size = 4;
  mv.size_bytes = 12000;
  mv.page_bytes = 4096;
  for (std::uint64_t p = 0; p < 3; ++p) {
    ckpt::ManifestPage mp;
    mp.page_idx = p;
    mp.version = p + 1;
    mp.crc = static_cast<std::uint32_t>(0xAB00 + p);
    mp.tier = 4;
    mp.node = p % 2;
    mv.pages.push_back(mp);
  }
  m.vectors.push_back(mv);
  return m;
}

TEST_F(ManifestTest, SerializeParseRoundTrip) {
  ckpt::Manifest m = SampleManifest();
  auto parsed = ckpt::ParseManifest(ckpt::SerializeManifest(m));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->epoch, 3u);
  EXPECT_EQ(parsed->tag, "iter-12");
  ASSERT_EQ(parsed->vectors.size(), 1u);
  const auto& mv = parsed->vectors[0];
  EXPECT_EQ(mv.key, "posix:///data/points.bin");
  EXPECT_EQ(mv.elem_size, 4u);
  EXPECT_EQ(mv.size_bytes, 12000u);
  EXPECT_EQ(mv.page_bytes, 4096u);
  ASSERT_EQ(mv.pages.size(), 3u);
  EXPECT_EQ(mv.pages[2].page_idx, 2u);
  EXPECT_EQ(mv.pages[2].version, 3u);
  EXPECT_EQ(mv.pages[2].crc, 0xAB02u);
  EXPECT_EQ(mv.pages[2].node, 0u);
}

TEST_F(ManifestTest, TamperedContentIsRejected) {
  std::string path = ckpt::ManifestPath(dir_.string(), "t");
  ASSERT_TRUE(ckpt::WriteManifest(SampleManifest(), path).ok());
  ASSERT_TRUE(ckpt::ReadManifest(path).ok());
  {
    // Flip one content byte; the trailing CRC must catch it.
    std::fstream io(path, std::ios::binary | std::ios::in | std::ios::out);
    io.seekp(40);
    io.put('~');
  }
  EXPECT_FALSE(ckpt::ReadManifest(path).ok());
}

TEST_F(ManifestTest, TempWriteThenPublishIsAtomic) {
  std::string path = ckpt::ManifestPath(dir_.string(), "epoch");
  EXPECT_EQ(path, (dir_ / "epoch.mmck").string());
  ASSERT_TRUE(ckpt::WriteManifestTemp(SampleManifest(), path).ok());
  // Not yet published: only the temp file exists, readers see nothing.
  EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(ckpt::ReadManifest(path).ok());
  ASSERT_TRUE(ckpt::PublishManifest(path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto m = ckpt::ReadManifest(path);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->epoch, 3u);
}

TEST_F(ManifestTest, MissingManifestIsNotFoundLike) {
  EXPECT_FALSE(ckpt::ReadManifest((dir_ / "absent.mmck").string()).ok());
  // Publishing without a temp file fails instead of renaming garbage.
  EXPECT_FALSE(ckpt::PublishManifest((dir_ / "none.mmck").string()).ok());
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

using CoordinatorTest = CkptDirTest;

TEST_F(CoordinatorTest, DisabledWithoutDir) {
  ckpt::Coordinator coord(ckpt::CkptOptions{}, 2);
  EXPECT_FALSE(coord.enabled());
  EXPECT_FALSE(coord.journaling());
  EXPECT_EQ(coord.journal(0), nullptr);
  EXPECT_TRUE(coord.RecoverOnStartup().ok());
}

TEST_F(CoordinatorTest, RecoverAppliesJournalAndKeepsOverlay) {
  std::string key = "posix://" + (dir_ / "v.bin").string();
  auto stager = storage::MakePosixStager();
  auto resolved = storage::StagerRegistry::Default().Resolve(key);
  ASSERT_TRUE(resolved.ok());
  ASSERT_TRUE(resolved->first->Create(resolved->second, 1024).ok());

  ckpt::CkptOptions opts;
  opts.dir = (dir_ / "ckpt").string();
  {
    ckpt::Coordinator coord(opts, 1);
    ASSERT_TRUE(coord.enabled());
    ASSERT_TRUE(coord.journaling());
    ASSERT_TRUE(coord.journal(0)->Append(MakeRecord(1, 2, 5, 42, key)).ok());
  }
  // Restart: a fresh coordinator over the same directory replays the record
  // into the backing object and remembers the durable (version, CRC).
  ckpt::Coordinator coord(opts, 1);
  std::uint64_t applied = 0, torn = 0;
  ASSERT_TRUE(coord.RecoverOnStartup(&applied, &torn).ok());
  EXPECT_EQ(applied, 1u);
  EXPECT_EQ(torn, 0u);
  std::vector<std::uint8_t> back;
  ASSERT_TRUE(resolved->first->Read(resolved->second, 2 * 256, 256, &back).ok());
  EXPECT_EQ(back, Pattern(256, 42));
  auto durable = coord.LatestDurable({1, 2});
  ASSERT_TRUE(durable.ok());
  EXPECT_EQ(durable->version, 5u);
  EXPECT_EQ(durable->page_crc, Crc32(Pattern(256, 42)));
  // A checkpoint (or completed restore) spends the journals and the overlay.
  ASSERT_TRUE(coord.TruncateJournals().ok());
  EXPECT_FALSE(coord.LatestDurable({1, 2}).ok());
  EXPECT_EQ(coord.journal(0)->record_count(), 0u);
}

TEST_F(CoordinatorTest, EpochSeedsPastExistingManifests) {
  ckpt::CkptOptions opts;
  opts.dir = dir_.string();
  ckpt::Manifest m = SampleManifest();
  m.epoch = 17;
  ASSERT_TRUE(ckpt::WriteManifest(m, ckpt::ManifestPath(opts.dir, "a")).ok());
  ckpt::Coordinator coord(opts, 1);
  // A restarted service keeps epochs monotonic across the crash.
  EXPECT_EQ(coord.NextEpoch(), 18u);
  EXPECT_EQ(coord.NextEpoch(), 19u);
}

TEST_F(CoordinatorTest, ResultChannelRoundTrips) {
  ckpt::Coordinator coord(ckpt::CkptOptions{}, 1);
  ckpt::CheckpointStats stats;
  stats.epoch = 4;
  stats.pages_written = 9;
  coord.PublishResult(Status::Ok(), stats);
  EXPECT_TRUE(coord.last_status().ok());
  EXPECT_EQ(coord.last_stats().epoch, 4u);
  EXPECT_EQ(coord.last_stats().pages_written, 9u);
  coord.PublishResult(Unavailable("leader crashed"), {});
  EXPECT_EQ(coord.last_status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Service checkpoint / restore
// ---------------------------------------------------------------------------

class ServiceCkptTest : public CkptDirTest {
 protected:
  static constexpr std::uint64_t kPage = 4096;
  static constexpr std::uint64_t kPages = 8;

  std::unique_ptr<core::Service> MakeService(bool with_ckpt = true) {
    clusters_.push_back(sim::Cluster::PaperTestbed(1));
    core::ServiceOptions so;
    so.tier_grants = {{TierKind::kDram, 128 * kKiB},
                      {TierKind::kNvme, MEGABYTES(4)}};
    if (with_ckpt) so.ckpt.dir = (dir_ / "ckpt").string();
    return std::make_unique<core::Service>(clusters_.back().get(), so);
  }

  StatusOr<core::VectorMeta*> Register(core::Service& svc,
                                       const std::string& file = "v.bin") {
    core::VectorOptions vo;
    vo.page_size = kPage;
    return svc.RegisterVector("posix://" + (dir_ / file).string(), 1, vo,
                              kPages * kPage);
  }

  sim::SimTime WriteAll(core::Service& svc, core::VectorMeta& meta,
                        std::uint64_t salt, sim::SimTime t) {
    for (std::uint64_t p = 0; p < kPages; ++p) {
      auto out = svc.WriteRegion(meta, p, 0, Pattern(kPage, salt * 100 + p),
                                 0, t)
                     .get();
      EXPECT_TRUE(out.status.ok()) << "page " << p;
      t = std::max(t, out.done);
    }
    return t;
  }

  void ExpectContents(core::Service& svc, core::VectorMeta& meta,
                      std::uint64_t salt, sim::SimTime t) {
    for (std::uint64_t p = 0; p < kPages; ++p) {
      sim::SimTime done = t;
      auto page = svc.ReadPage(meta, p, 0, t, &done);
      ASSERT_TRUE(page.ok()) << "page " << p << ": "
                             << page.status().message();
      EXPECT_EQ(*page, Pattern(kPage, salt * 100 + p)) << "page " << p;
      t = std::max(t, done);
    }
  }

  std::vector<std::unique_ptr<sim::Cluster>> clusters_;
};

TEST_F(ServiceCkptTest, DisabledWithoutDirIsTyped) {
  auto svc = MakeService(/*with_ckpt=*/false);
  EXPECT_EQ(svc->journal(0), nullptr);
  sim::SimTime t = 0;
  EXPECT_EQ(svc->Checkpoint("e", 0, 0.0, &t).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(svc->Restore("e", 0, 0.0, &t).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ServiceCkptTest, CheckpointRestoreRoundTripIsBitIdentical) {
  auto svc = MakeService();
  auto meta = Register(*svc);
  ASSERT_TRUE(meta.ok());
  sim::SimTime t = WriteAll(*svc, **meta, 1, 0.0);

  auto stats = svc->Checkpoint("e1", 0, t, &t);
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_EQ(stats->pages_total, kPages);
  EXPECT_EQ(stats->pages_written, kPages);  // first epoch: everything dirty
  EXPECT_DOUBLE_EQ(stats->incremental_ratio, 1.0);
  EXPECT_GT(stats->bytes_written, 0u);
  EXPECT_GT(stats->duration_s, 0.0);
  EXPECT_TRUE(std::filesystem::exists(stats->manifest_path));
  // Publication spends the journals.
  EXPECT_EQ(svc->journal(0)->record_count(), 0u);

  // Diverge: overwrite everything after the epoch (left dirty on purpose).
  t = WriteAll(*svc, **meta, 2, t);
  ASSERT_TRUE(svc->Restore("e1", 0, t, &t).ok());
  // Every page reads back exactly the epoch-1 bytes, CRC-verified on the
  // lazy stage-in.
  ExpectContents(*svc, **meta, 1, t);
  EXPECT_EQ(svc->data_loss_count(), 0u);
}

TEST_F(ServiceCkptTest, SecondCheckpointIsIncremental) {
  auto svc = MakeService();
  auto meta = Register(*svc);
  ASSERT_TRUE(meta.ok());
  sim::SimTime t = WriteAll(*svc, **meta, 1, 0.0);
  auto first = svc->Checkpoint("e1", 0, t, &t);
  ASSERT_TRUE(first.ok());

  // Touch exactly one page; the next epoch flushes only that page.
  auto out = svc->WriteRegion(**meta, 3, 0, Pattern(kPage, 777), 0, t).get();
  ASSERT_TRUE(out.status.ok());
  t = std::max(t, out.done);
  auto second = svc->Checkpoint("e2", 0, t, &t);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->epoch, first->epoch + 1);
  EXPECT_EQ(second->pages_total, kPages);
  EXPECT_EQ(second->pages_written, 1u);
  EXPECT_DOUBLE_EQ(second->incremental_ratio, 1.0 / kPages);
  EXPECT_LT(second->bytes_written, first->bytes_written);

  // The latest epoch restores exactly: the touched page carries its new
  // bytes, the untouched pages their epoch-1 bytes. (Earlier epochs are not
  // restorable once a later one has flushed in place — see DESIGN.md §12.)
  ASSERT_TRUE(svc->Restore("e2", 0, t, &t).ok());
  for (std::uint64_t p = 0; p < kPages; ++p) {
    sim::SimTime done = t;
    auto page = svc->ReadPage(**meta, p, 0, t, &done);
    ASSERT_TRUE(page.ok()) << "page " << p << ": "
                           << page.status().message();
    EXPECT_EQ(*page, Pattern(kPage, p == 3 ? 777 : 100 + p)) << "page " << p;
    t = std::max(t, done);
  }
}

TEST_F(ServiceCkptTest, FlushAppendsJournalRecordsBeforeInPlaceWrites) {
  auto svc = MakeService();
  auto meta = Register(*svc);
  ASSERT_TRUE(meta.ok());
  sim::SimTime t = WriteAll(*svc, **meta, 1, 0.0);
  ASSERT_TRUE(svc->FlushVector(**meta, 0, t, &t).ok());
  // One redo record per flushed page, spent only by a checkpoint.
  EXPECT_EQ(svc->journal(0)->record_count(), kPages);
  auto rec = svc->journal(0)->Latest({(*meta)->vector_id, 0});
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->key, (*meta)->key);
  EXPECT_EQ(rec->payload, Pattern(kPage, 100));
}

TEST_F(ServiceCkptTest, JournalRecoversDirtyPageLostToTierDeath) {
  auto svc = MakeService();
  auto meta = Register(*svc);
  ASSERT_TRUE(meta.ok());
  auto pattern = Pattern(kPage, 5);
  auto out = svc->WriteRegion(**meta, 0, 0, pattern, 0, 0.0).get();
  ASSERT_TRUE(out.status.ok());
  storage::BlobId id{(*meta)->vector_id, 0};

  // The half-state journaled writeback leaves when the in-place write never
  // lands: a durable redo record at the dirty page's version.
  ckpt::JournalRecord rec;
  rec.id = id;
  rec.version = 1;
  rec.offset = 0;
  rec.payload = pattern;
  rec.page_crc = Crc32(pattern);
  rec.key = (*meta)->key;
  ASSERT_TRUE(svc->journal(0)->Append(rec).ok());

  auto tier_idx = svc->runtime(0).buffer().FindBlob(id);
  ASSERT_TRUE(tier_idx.has_value());
  svc->fault_injector().FailTier(
      svc->runtime(0).buffer().tier(*tier_idx).kind());
  // Without the journal this is the DirtyPageLossSurfacesAsDataLoss path;
  // with it, the redo record re-applies to the backend and the page
  // re-stages cleanly.
  sim::SimTime done = out.done;
  auto page = svc->ReadPage(**meta, 0, 0, out.done, &done);
  ASSERT_TRUE(page.ok()) << page.status().message();
  EXPECT_EQ(*page, pattern);
  EXPECT_EQ(svc->data_loss_count(), 0u);
}

TEST_F(ServiceCkptTest, CollectiveCheckpointElectsOneLeader) {
  clusters_.push_back(sim::Cluster::PaperTestbed(2));
  sim::Cluster& cluster = *clusters_.back();
  core::ServiceOptions so;
  so.tier_grants = {{TierKind::kDram, 128 * kKiB},
                    {TierKind::kNvme, MEGABYTES(4)}};
  so.ckpt.dir = (dir_ / "ckpt").string();
  auto svc = std::make_unique<core::Service>(&cluster, so);
  std::string key = "posix://" + (dir_ / "shared.bin").string();

  std::vector<ckpt::CheckpointStats> stats(2);
  auto run = comm::RunRanks(cluster, 2, 1, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    core::VectorOptions vo;
    vo.page_size = kPage;
    auto meta = svc->RegisterVector(key, 1, vo, kPages * kPage);
    ASSERT_TRUE(meta.ok());
    // Each rank dirties its half of the pages.
    std::uint64_t begin = ctx.rank() == 0 ? 0 : kPages / 2;
    std::uint64_t end = ctx.rank() == 0 ? kPages / 2 : kPages;
    sim::SimTime t = ctx.clock().now();
    for (std::uint64_t p = begin; p < end; ++p) {
      auto out =
          svc->WriteRegion(**meta, p, 0, Pattern(kPage, 100 + p),
                           ctx.node(), t)
              .get();
      ASSERT_TRUE(out.status.ok());
      t = std::max(t, out.done);
    }
    ctx.clock().AdvanceTo(t);
    auto s = ckpt::CollectiveCheckpoint(comm, *svc, "col");
    ASSERT_TRUE(s.ok()) << s.status().message();
    stats[ctx.rank()] = *s;
  });
  ASSERT_TRUE(run.ok()) << run.error;
  // Every rank observed the one leader's outcome: all pages of the shared
  // vector in a single epoch.
  EXPECT_EQ(stats[0].epoch, stats[1].epoch);
  EXPECT_EQ(stats[0].pages_total, kPages);
  EXPECT_EQ(stats[1].pages_written, kPages);
  EXPECT_TRUE(std::filesystem::exists(stats[0].manifest_path));

  // The published epoch restores to the exact bytes each rank wrote.
  sim::SimTime t = 0;
  ASSERT_TRUE(svc->Restore("col", 0, 0.0, &t).ok());
  auto meta = svc->FindVector(key);
  ASSERT_NE(meta, nullptr);
  for (std::uint64_t p = 0; p < kPages; ++p) {
    sim::SimTime done = t;
    auto page = svc->ReadPage(*meta, p, 0, t, &done);
    ASSERT_TRUE(page.ok()) << "page " << p;
    EXPECT_EQ(*page, Pattern(kPage, 100 + p));
    t = std::max(t, done);
  }
}

}  // namespace
}  // namespace mm
