// Tests for the message-passing substrate: p2p, mailboxes, virtual-time
// semantics, distributed locks, and the job launcher.
#include <gtest/gtest.h>

#include <atomic>

#include "mm/comm/communicator.h"
#include "mm/comm/dlock.h"
#include "mm/comm/launch.h"
#include "mm/sim/oom.h"

namespace mm::comm {
namespace {

TEST(Launch, RunsAllRanks) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  std::atomic<int> count{0};
  auto result = RunRanks(*cluster, 8, 4, [&](RankContext& ctx) {
    count.fetch_add(1);
    EXPECT_GE(ctx.rank(), 0);
    EXPECT_LT(ctx.rank(), 8);
    EXPECT_EQ(ctx.size(), 8);
    EXPECT_EQ(ctx.node(), static_cast<std::size_t>(ctx.rank() / 4));
  });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(count.load(), 8);
  EXPECT_EQ(result.rank_times.size(), 8u);
}

TEST(Launch, ComputeAdvancesVirtualTime) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  auto result = RunRanks(*cluster, 2, 2, [&](RankContext& ctx) {
    ctx.Compute(ctx.rank() == 0 ? 1.0 : 2.0);
  });
  EXPECT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.rank_times[0], 1.0);
  EXPECT_DOUBLE_EQ(result.rank_times[1], 2.0);
  EXPECT_DOUBLE_EQ(result.max_time, 2.0);
}

TEST(Launch, OomIsReportedNotFatal) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  auto result = RunRanks(*cluster, 2, 2, [&](RankContext& ctx) {
    (void)ctx;  // the body only exercises the throw path
    throw sim::SimOutOfMemoryError(100, 10);
  });
  EXPECT_TRUE(result.oom);
  EXPECT_TRUE(result.error.empty());
  EXPECT_FALSE(result.ok());
}

TEST(Launch, ErrorsAreCaptured) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  auto result = RunRanks(*cluster, 1, 1, [&](RankContext&) {
    throw std::runtime_error("boom");
  });
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("boom"), std::string::npos);
}

TEST(Launch, RejectsTooFewNodes) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  EXPECT_THROW(RunRanks(*cluster, 8, 4, [](RankContext&) {}),
               std::logic_error);
}

TEST(P2p, SendRecvDeliversPayload) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  auto result = RunRanks(*cluster, 2, 1, [&](RankContext& ctx) {
    Communicator comm(&ctx);
    if (ctx.rank() == 0) {
      std::vector<double> data = {1.0, 2.0, 3.0};
      comm.Send(1, /*tag=*/5, data);
    } else {
      auto data = comm.Recv<double>(0, /*tag=*/5);
      ASSERT_EQ(data.size(), 3u);
      EXPECT_DOUBLE_EQ(data[1], 2.0);
    }
  });
  EXPECT_TRUE(result.ok());
}

TEST(P2p, RecvAdvancesClockPastDelivery) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  auto result = RunRanks(*cluster, 2, 1, [&](RankContext& ctx) {
    Communicator comm(&ctx);
    if (ctx.rank() == 0) {
      ctx.Compute(5.0);  // sender is way ahead
      comm.SendValue(1, 1, 42);
    } else {
      int v = comm.RecvValue<int>(0, 1);
      EXPECT_EQ(v, 42);
      // Receiver must be at least at the sender's send time.
      EXPECT_GE(ctx.clock().now(), 5.0);
    }
  });
  EXPECT_TRUE(result.ok());
}

TEST(P2p, TagsDisambiguate) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  auto result = RunRanks(*cluster, 2, 1, [&](RankContext& ctx) {
    Communicator comm(&ctx);
    if (ctx.rank() == 0) {
      comm.SendValue(1, /*tag=*/1, 100);
      comm.SendValue(1, /*tag=*/2, 200);
    } else {
      // Receive in reverse tag order: matching must be by tag, not arrival.
      EXPECT_EQ(comm.RecvValue<int>(0, 2), 200);
      EXPECT_EQ(comm.RecvValue<int>(0, 1), 100);
    }
  });
  EXPECT_TRUE(result.ok());
}

TEST(P2p, AnySourceReportsSender) {
  auto cluster = sim::Cluster::PaperTestbed(4);
  auto result = RunRanks(*cluster, 4, 1, [&](RankContext& ctx) {
    Communicator comm(&ctx);
    if (ctx.rank() == 0) {
      std::set<int> seen;
      for (int i = 0; i < 3; ++i) {
        int src = kAnySource;
        int v = comm.RecvValue<int>(kAnySource, 9, &src);
        EXPECT_EQ(v, src * 10);
        seen.insert(src);
      }
      EXPECT_EQ(seen.size(), 3u);
    } else {
      comm.SendValue(0, 9, ctx.rank() * 10);
    }
  });
  EXPECT_TRUE(result.ok());
}

TEST(P2p, LargeMessageCostsMoreVirtualTime) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  sim::SimTime small_time = 0, large_time = 0;
  auto run = [&](std::size_t n, sim::SimTime* out) {
    auto c = sim::Cluster::PaperTestbed(2);
    auto result = RunRanks(*c, 2, 1, [&](RankContext& ctx) {
      Communicator comm(&ctx);
      if (ctx.rank() == 0) {
        comm.Send(1, 1, std::vector<char>(n, 'x'));
      } else {
        comm.RecvBytes(0, 1);
        *out = ctx.clock().now();
      }
    });
    EXPECT_TRUE(result.ok());
  };
  run(100, &small_time);
  run(100'000'000, &large_time);
  EXPECT_GT(large_time, small_time * 100);
}

TEST(BarrierTest, SynchronizesClocks) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  auto result = RunRanks(*cluster, 4, 2, [&](RankContext& ctx) {
    Communicator comm(&ctx);
    ctx.Compute(static_cast<double>(ctx.rank()));  // ranks skewed 0..3s
    comm.Barrier();
    EXPECT_GE(ctx.clock().now(), 3.0);
  });
  EXPECT_TRUE(result.ok());
  // All ranks end at the same released time.
  for (auto t : result.rank_times) {
    EXPECT_DOUBLE_EQ(t, result.rank_times[0]);
  }
}

TEST(BarrierTest, ReusableAcrossIterations) {
  auto cluster = sim::Cluster::PaperTestbed(1);
  auto result = RunRanks(*cluster, 4, 4, [&](RankContext& ctx) {
    Communicator comm(&ctx);
    for (int it = 0; it < 50; ++it) {
      ctx.Compute(0.001 * (ctx.rank() + 1));
      comm.Barrier();
    }
  });
  EXPECT_TRUE(result.ok());
}

TEST(DLock, MutualExclusionAndVirtualSerialization) {
  auto cluster = sim::Cluster::PaperTestbed(2);
  // Shared state to detect real races.
  int counter = 0;
  World* world_ptr = nullptr;
  std::unique_ptr<DistributedLock> lock;
  std::mutex init_mu;
  auto result = RunRanks(*cluster, 8, 4, [&](RankContext& ctx) {
    {
      std::lock_guard<std::mutex> g(init_mu);
      if (lock == nullptr) {
        world_ptr = &ctx.world();
        lock = std::make_unique<DistributedLock>(world_ptr, 0);
      }
    }
    for (int i = 0; i < 100; ++i) {
      DistributedLock::Guard guard(*lock, ctx);
      ++counter;  // data race iff the lock is broken
    }
  });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(counter, 800);
  // Virtual time must reflect 800 serialized round trips > 0.
  EXPECT_GT(result.max_time, 0.0);
}

}  // namespace
}  // namespace mm::comm
