// End-to-end telemetry validation (ISSUE acceptance): a service-level run
// with telemetry.trace_path set must produce Chrome-trace JSON with valid
// traceEvents, virtual-clock timestamps, and at least 5 distinct span
// categories, plus an epoch report whose pcache hit/miss counts reconcile
// with the deterministic cache behavior test_pcache establishes.
#include <gtest/gtest.h>

#include <unistd.h>
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "mm/mega_mmap.h"
#include "mm/telemetry/report.h"

namespace mm {
namespace {

#if !MM_TELEMETRY_ENABLED
TEST(TelemetryE2e, CompiledOut) {
  GTEST_SKIP() << "built with -DMM_TELEMETRY=OFF";
}
#else

class TelemetryE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mm_tel_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::string Key(const std::string& name) {
    return "posix://" + (dir_ / name).string();
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  /// All distinct `"cat":"..."` values in a serialized trace.
  static std::set<std::string> Categories(const std::string& json) {
    std::set<std::string> cats;
    const std::string needle = "\"cat\":\"";
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      std::size_t start = pos + needle.size();
      std::size_t end = json.find('"', start);
      if (end == std::string::npos) break;
      cats.insert(json.substr(start, end - start));
    }
    return cats;
  }

  std::filesystem::path dir_;
};

TEST_F(TelemetryE2eTest, TraceJsonSchemaAndCategories) {
  // Mixed read/write workload over a nonvolatile (backend-staged) vector
  // with a tight cache: exercises faults, evictions, writebacks, backend
  // staging, tasks, tier I/O and transactions in one run.
  const std::string trace_path = Path("trace.json");
  auto cluster = sim::Cluster::PaperTestbed(2);
  core::ServiceOptions so;
  so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(4)},
                    {sim::TierKind::kNvme, MEGABYTES(32)}};
  so.telemetry.trace_path = trace_path;
  double max_time = 0;
  {
    core::Service svc(cluster.get(), so);
    const std::uint64_t n = 16384;
    auto result = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
      core::VectorOptions vo;
      vo.page_size = 4096;
      vo.pcache_bytes = 16 * 1024;  // 4 frames: forces eviction traffic
      vo.nonvolatile = true;
      Vector<std::uint64_t> v(svc, ctx, Key("data.bin"), n, vo);
      std::uint64_t chunk = n / 4;
      std::uint64_t lo = ctx.rank() * chunk;
      {
        auto tx = v.SeqTxBegin(lo, chunk, core::MM_WRITE_ONLY);
        for (std::uint64_t i = lo; i < lo + chunk; ++i) v[i] = i;
        v.TxEnd();
      }
      {
        auto tx = v.SeqTxBegin(lo, chunk, core::MM_READ_ONLY);
        for (std::uint64_t i = lo; i < lo + chunk; ++i) {
          ASSERT_EQ(v.Read(i), i);
        }
        v.TxEnd();
      }
    });
    ASSERT_TRUE(result.ok()) << result.error;
    max_time = result.max_time;
    ASSERT_GT(svc.trace().size(), 0u);
  }  // Service shutdown writes the trace file.

  std::string json = Slurp(trace_path);
  ASSERT_FALSE(json.empty()) << "trace file not written: " << trace_path;

  // Chrome trace-event schema basics.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 80);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  // The instrumented subsystems must all show up.
  std::set<std::string> cats = Categories(json);
  EXPECT_GE(cats.size(), 5u) << ::testing::PrintToString(cats);

  // Every timestamp is virtual microseconds within the simulated runtime
  // (wall-clock stamps would be ~1e16 us since the epoch).
  const double limit_us = (max_time + 1.0) * 1e6;
  const std::string needle = "\"ts\":";
  std::size_t checked = 0;
  for (std::size_t pos = json.find(needle); pos != std::string::npos;
       pos = json.find(needle, pos + 1)) {
    double ts = std::strtod(json.c_str() + pos + needle.size(), nullptr);
    ASSERT_GE(ts, 0.0);
    ASSERT_LE(ts, limit_us);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(TelemetryE2eTest, EpochReportReconcilesPcacheHitsAndMisses) {
  // Deterministic single-rank scan, prefetch off, cache big enough to hold
  // everything: the write pass must miss once per page (cold faults), the
  // read pass must hit once per page — the same cold/warm contract
  // test_pcache pins down at the PCache layer.
  auto cluster = sim::Cluster::PaperTestbed(1);
  core::ServiceOptions so;
  so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(16)}};
  so.enable_prefetch = false;
  so.telemetry.report_path = Path("report.jsonl");
  core::Service svc(cluster.get(), so);

  constexpr std::uint64_t kPageBytes = 4096;
  constexpr std::uint64_t kPages = 8;
  constexpr std::uint64_t kN = kPages * kPageBytes / sizeof(std::uint64_t);
  auto result = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
    core::VectorOptions vo;
    vo.page_size = kPageBytes;
    vo.pcache_bytes = MEGABYTES(1);  // no evictions
    vo.nonvolatile = false;
    Vector<std::uint64_t> v(svc, ctx, "tel_recon", kN, vo);
    {
      auto tx = v.SeqTxBegin(0, kN, core::MM_WRITE_ONLY);
      for (std::uint64_t i = 0; i < kN; ++i) v[i] = i ^ 0xabcd;
      v.TxEnd();
    }
    {
      auto tx = v.SeqTxBegin(0, kN, core::MM_READ_ONLY);
      for (std::uint64_t i = 0; i < kN; ++i) ASSERT_EQ(v.Read(i), i ^ 0xabcd);
      v.TxEnd();
    }
  });
  ASSERT_TRUE(result.ok()) << result.error;

  telemetry::ClusterSnapshot snap = svc.TelemetrySnapshot();
  EXPECT_EQ(snap.totals.counters.at("mm.pcache.miss_count"), kPages);
  EXPECT_EQ(snap.totals.counters.at("mm.pcache.hit_count"), kPages);
  EXPECT_EQ(snap.totals.counters.at("mm.pcache.eviction_count"), 0u);
  // With the prefetcher disabled every miss is a demand fault.
  EXPECT_EQ(snap.totals.counters.at("mm.service.fault_count"), kPages);

  // The epoch line reports the same counts (first epoch: delta == total).
  std::string line = svc.EpochReport(result.max_time);
  EXPECT_NE(line.find("\"mm.pcache.miss_count\":8"), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"mm.pcache.hit_count\":8"), std::string::npos);

  // The paper-style table renders the aggregate without crashing and
  // mentions every subsystem family.
  std::string table = telemetry::FormatReportTable(snap);
  EXPECT_NE(table.find("mm.pcache.miss_count"), std::string::npos);
  EXPECT_NE(table.find("mm.task.executed_count"), std::string::npos);
}

#endif  // MM_TELEMETRY_ENABLED

}  // namespace
}  // namespace mm
