// Tests for the synthetic dataset generator and the reference oracles.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <unistd.h>

#include "mm/apps/datagen.h"
#include "mm/apps/reference.h"
#include "mm/storage/stager.h"

namespace mm::apps {
namespace {

TEST(Datagen, DeterministicForSeed) {
  DatagenConfig cfg;
  cfg.num_particles = 1000;
  std::vector<Particle> a, b;
  auto ta = GenerateParticles(cfg, &a);
  auto tb = GenerateParticles(cfg, &b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i].pos.x, b[i].pos.x);
    EXPECT_FLOAT_EQ(a[i].vel.z, b[i].vel.z);
  }
  EXPECT_EQ(ta.labels, tb.labels);
}

TEST(Datagen, DifferentSeedsDiffer) {
  DatagenConfig a_cfg, b_cfg;
  a_cfg.num_particles = b_cfg.num_particles = 100;
  b_cfg.seed = 999;
  std::vector<Particle> a, b;
  GenerateParticles(a_cfg, &a);
  GenerateParticles(b_cfg, &b);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].pos.x == b[i].pos.x) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Datagen, PointsClusterAroundHaloCenters) {
  DatagenConfig cfg;
  cfg.num_particles = 5000;
  cfg.halos = 4;
  cfg.halo_sigma = 5.0;
  std::vector<Particle> pts;
  auto truth = GenerateParticles(cfg, &pts);
  ASSERT_EQ(truth.halo_centers.size(), 4u);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Point3& c = truth.halo_centers[truth.labels[i]];
    // Within 6 sigma of the assigned halo center.
    EXPECT_LT(Dist(pts[i].pos, c), 6 * cfg.halo_sigma) << i;
  }
}

TEST(Datagen, AllHalosPopulatedRoughlyEvenly) {
  DatagenConfig cfg;
  cfg.num_particles = 8000;
  cfg.halos = 8;
  std::vector<Particle> pts;
  auto truth = GenerateParticles(cfg, &pts);
  std::vector<int> counts(8, 0);
  for (int l : truth.labels) ++counts[l];
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(Datagen, WritesBackendRoundTrip) {
  auto dir = std::filesystem::temp_directory_path() /
             ("mm_datagen_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  DatagenConfig cfg;
  cfg.num_particles = 500;
  std::string key = "posix://" + (dir / "pts.bin").string();
  auto truth = GenerateToBackend(cfg, key);
  ASSERT_TRUE(truth.ok());
  auto resolved = storage::StagerRegistry::Default().Resolve(key);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved->first->Size(resolved->second), 500 * sizeof(Particle));
  // Re-read and compare to in-memory generation.
  std::vector<std::uint8_t> raw;
  ASSERT_TRUE(resolved->first
                  ->Read(resolved->second, 0, 500 * sizeof(Particle), &raw)
                  .ok());
  std::vector<Particle> mem;
  GenerateParticles(cfg, &mem);
  EXPECT_EQ(0, std::memcmp(raw.data(), mem.data(), raw.size()));
  std::filesystem::remove_all(dir);
}

TEST(Datagen, SparBackendWorks) {
  auto dir = std::filesystem::temp_directory_path() /
             ("mm_datagen_spar_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  DatagenConfig cfg;
  cfg.num_particles = 300;
  std::string key = "spar://" + (dir / "pts.parquet").string() + ":f4x6";
  ASSERT_TRUE(GenerateToBackend(cfg, key).ok());
  auto resolved = storage::StagerRegistry::Default().Resolve(key);
  std::vector<std::uint8_t> raw;
  ASSERT_TRUE(
      resolved->first->Read(resolved->second, 0, 24 * 10, &raw).ok());
  std::vector<Particle> mem;
  GenerateParticles(cfg, &mem);
  EXPECT_EQ(0, std::memcmp(raw.data(), mem.data(), raw.size()));
  std::filesystem::remove_all(dir);
}

// ---- reference oracles ----

TEST(Reference, KMeansConvergesOnSeparatedBlobs) {
  DatagenConfig cfg;
  cfg.num_particles = 2000;
  cfg.halos = 3;
  cfg.halo_sigma = 2.0;
  cfg.seed = 21;
  std::vector<Particle> particles;
  auto truth = GenerateParticles(cfg, &particles);
  std::vector<Point3> pts;
  for (const auto& p : particles) pts.push_back(p.pos);
  // Start from the true centers perturbed: must converge back.
  std::vector<Point3> init = truth.halo_centers;
  for (auto& c : init) c.x += 3.0f;
  auto final_centroids = ReferenceKMeans(pts, init, 10);
  for (std::size_t j = 0; j < 3; ++j) {
    double best = 1e18;
    for (const auto& c : truth.halo_centers) {
      best = std::min(best, Dist(final_centroids[j], c));
    }
    EXPECT_LT(best, 1.0);
  }
}

TEST(Reference, InertiaDecreasesWithIterations) {
  DatagenConfig cfg;
  cfg.num_particles = 1000;
  cfg.halos = 4;
  std::vector<Particle> particles;
  GenerateParticles(cfg, &particles);
  std::vector<Point3> pts;
  for (const auto& p : particles) pts.push_back(p.pos);
  std::vector<Point3> init = {pts[0], pts[100], pts[200], pts[300]};
  double i0 = ReferenceInertia(pts, init);
  auto c1 = ReferenceKMeans(pts, init, 1);
  double i1 = ReferenceInertia(pts, c1);
  auto c5 = ReferenceKMeans(pts, init, 5);
  double i5 = ReferenceInertia(pts, c5);
  EXPECT_LE(i1, i0);
  EXPECT_LE(i5, i1 + 1e-9);
}

TEST(Reference, DbscanFindsSeparatedBlobs) {
  DatagenConfig cfg;
  cfg.num_particles = 600;
  cfg.halos = 3;
  cfg.halo_sigma = 1.0;
  cfg.box_size = 1000;
  cfg.seed = 77;
  std::vector<Particle> particles;
  auto truth = GenerateParticles(cfg, &particles);
  std::vector<Point3> pts;
  for (const auto& p : particles) pts.push_back(p.pos);
  auto labels = ReferenceDbscan(pts, /*eps=*/2.0, /*min_pts=*/5);
  // Should recover the halo partition (allow a couple of noise points).
  double ri = RandIndex(labels, truth.labels);
  EXPECT_GT(ri, 0.98);
}

TEST(Reference, DbscanMarksSparseNoise) {
  std::vector<Point3> pts;
  // A tight cluster of 20 + 3 isolated points.
  for (int i = 0; i < 20; ++i) {
    pts.push_back(Point3{static_cast<float>(i % 5) * 0.1f,
                         static_cast<float>(i / 5) * 0.1f, 0});
  }
  pts.push_back(Point3{100, 100, 100});
  pts.push_back(Point3{-100, 50, 0});
  pts.push_back(Point3{0, -100, 30});
  auto labels = ReferenceDbscan(pts, 1.0, 4);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(labels[i], 0);
  for (int i = 20; i < 23; ++i) EXPECT_EQ(labels[i], -1);
}

TEST(Reference, GiniImpurity) {
  EXPECT_DOUBLE_EQ(GiniImpurity({1, 1, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(GiniImpurity({0, 1}), 0.5);
  EXPECT_NEAR(GiniImpurity({0, 1, 2, 3}), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(GiniImpurity({}), 0.0);
}

TEST(Reference, RandIndexProperties) {
  EXPECT_DOUBLE_EQ(RandIndex({0, 0, 1, 1}, {1, 1, 0, 0}), 1.0);  // relabeled
  EXPECT_DOUBLE_EQ(RandIndex({0, 1, 2}, {0, 1, 2}), 1.0);
  EXPECT_LT(RandIndex({0, 0, 0, 0}, {0, 1, 2, 3}), 0.5);
}

TEST(Reference, GrayScottStepConservesOutsideReaction) {
  // With F=k=0 and no V anywhere, U evolves by pure diffusion: the sum is
  // conserved exactly (periodic Laplacian sums to zero).
  std::size_t L = 8;
  std::vector<double> u(L * L * L, 0.0), v(L * L * L, 0.0);
  u[0] = 10.0;
  GrayScottParams prm;
  prm.F = 0;
  prm.k = 0;
  std::vector<double> u2, v2;
  ReferenceGrayScottStep(L, u, v, &u2, &v2, prm);
  double sum = 0;
  for (double x : u2) sum += x;
  EXPECT_NEAR(sum, 10.0, 1e-9);
  for (double x : v2) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Reference, GrayScottInitSeedCube) {
  std::size_t L = 16;
  std::vector<double> u, v;
  GrayScottInit(L, &u, &v);
  std::size_t center = ((L / 2) * L + L / 2) * L + L / 2;
  EXPECT_DOUBLE_EQ(u[center], 0.5);
  EXPECT_DOUBLE_EQ(v[center], 0.25);
  EXPECT_DOUBLE_EQ(u[0], 1.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

TEST(Reference, GrayScottSymmetryPreserved) {
  // The initial condition is mirror-symmetric around the seed; steps must
  // preserve x<->y symmetry.
  std::size_t L = 12;
  std::vector<double> u, v, u2, v2;
  GrayScottInit(L, &u, &v);
  GrayScottParams prm;
  ReferenceGrayScottStep(L, u, v, &u2, &v2, prm);
  ReferenceGrayScottStep(L, u2, v2, &u, &v, prm);
  auto idx = [&](std::size_t x, std::size_t y, std::size_t z) {
    return (z * L + y) * L + x;
  };
  for (std::size_t z = 0; z < L; ++z) {
    for (std::size_t y = 0; y < L; ++y) {
      for (std::size_t x = 0; x < L; ++x) {
        EXPECT_NEAR(u[idx(x, y, z)], u[idx(y, x, z)], 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace mm::apps
