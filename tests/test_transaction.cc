#include "mm/core/transaction.h"

#include <gtest/gtest.h>

#include <set>

namespace mm::core {
namespace {

// elem_size=8, elems_per_page=16 -> 128-byte pages.
constexpr std::size_t kES = 8, kEPP = 16;

TEST(SeqTxTest, FlagsAndAccessors) {
  SeqTx tx(MM_READ_ONLY, kES, kEPP, 0, 100);
  EXPECT_TRUE(tx.reads());
  EXPECT_FALSE(tx.writes());
  EXPECT_FALSE(tx.collective());
  EXPECT_EQ(tx.TotalAccesses(), 100u);
  EXPECT_EQ(tx.head(), 0u);
  EXPECT_EQ(tx.tail(), 0u);
  SeqTx wtx(MM_WRITE_ONLY | MM_COLLECTIVE, kES, kEPP, 0, 1);
  EXPECT_TRUE(wtx.writes());
  EXPECT_TRUE(wtx.collective());
}

TEST(SeqTxTest, ElementAtIsLinear) {
  SeqTx tx(MM_READ_ONLY, kES, kEPP, 40, 100);
  EXPECT_EQ(tx.ElementAt(0), 40u);
  EXPECT_EQ(tx.ElementAt(99), 139u);
}

TEST(SeqTxTest, GetPagesClosedForm) {
  SeqTx tx(MM_READ_ONLY, kES, kEPP, 0, 64);  // elements 0..63: pages 0..3
  auto pages = tx.GetPages(0, 64);
  ASSERT_EQ(pages.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pages[i].page_idx, i);
    EXPECT_EQ(pages[i].off, 0u);
    EXPECT_EQ(pages[i].size, kEPP * kES);
    EXPECT_FALSE(pages[i].modified);
  }
}

TEST(SeqTxTest, GetPagesPartialEdges) {
  SeqTx tx(MM_WRITE_ONLY, kES, kEPP, 10, 20);  // elements 10..29
  auto pages = tx.GetPages(0, 20);
  ASSERT_EQ(pages.size(), 2u);
  // Page 0: elements 10..15 -> bytes [80, 128)
  EXPECT_EQ(pages[0].page_idx, 0u);
  EXPECT_EQ(pages[0].off, 10 * kES);
  EXPECT_EQ(pages[0].size, 6 * kES);
  EXPECT_TRUE(pages[0].modified);
  // Page 1: elements 16..29 -> bytes [0, 112)
  EXPECT_EQ(pages[1].page_idx, 1u);
  EXPECT_EQ(pages[1].off, 0u);
  EXPECT_EQ(pages[1].size, 14 * kES);
}

TEST(SeqTxTest, GetPagesClipsToLength) {
  SeqTx tx(MM_READ_ONLY, kES, kEPP, 0, 10);
  EXPECT_TRUE(tx.GetPages(10, 100).empty());
  auto pages = tx.GetPages(5, 100);  // only accesses 5..9 exist
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_EQ(pages[0].off, 5 * kES);
  EXPECT_EQ(pages[0].size, 5 * kES);
}

TEST(SeqTxTest, MatchesGenericWalk) {
  // The closed-form SeqTx::GetPages must agree with the base-class walk.
  SeqTx seq(MM_READ_ONLY, kES, kEPP, 7, 50);
  StrideTx unit_stride(MM_READ_ONLY, kES, kEPP, 7, 1, 50);  // generic path
  for (std::size_t pos : {std::size_t{0}, std::size_t{13}, std::size_t{49}}) {
    for (std::size_t count : {std::size_t{1}, std::size_t{10}, std::size_t{50}}) {
      auto a = seq.GetPages(pos, count);
      auto b = unit_stride.GetPages(pos, count);
      ASSERT_EQ(a.size(), b.size()) << pos << "," << count;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << pos << "," << count << " region " << i;
      }
    }
  }
}

TEST(TouchedAndFuture, TrackHeadTail) {
  SeqTx tx(MM_READ_ONLY, kES, kEPP, 0, 64);
  for (int i = 0; i < 20; ++i) tx.AdvanceTail();
  auto touched = tx.GetTouchedPages();
  ASSERT_EQ(touched.size(), 2u);  // elements 0..19 span pages 0,1
  EXPECT_EQ(touched[0].page_idx, 0u);
  EXPECT_EQ(touched[1].page_idx, 1u);
  auto future = tx.GetFuturePages(16);
  ASSERT_EQ(future.size(), 2u);  // elements 20..35 span pages 1,2
  EXPECT_EQ(future[0].page_idx, 1u);
  EXPECT_EQ(future[1].page_idx, 2u);
  tx.set_head(tx.tail());
  EXPECT_TRUE(tx.GetTouchedPages().empty());
}

TEST(StrideTxTest, SkipsPages) {
  // Stride 16 = one element per page.
  StrideTx tx(MM_READ_ONLY, kES, kEPP, 0, kEPP, 8);
  auto pages = tx.GetPages(0, 8);
  ASSERT_EQ(pages.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(pages[i].page_idx, i);
    EXPECT_EQ(pages[i].off, 0u);
    EXPECT_EQ(pages[i].size, kES);  // only one element touched per page
  }
}

TEST(StrideTxTest, ElementAt) {
  StrideTx tx(MM_READ_ONLY, kES, kEPP, 5, 3, 10);
  EXPECT_EQ(tx.ElementAt(0), 5u);
  EXPECT_EQ(tx.ElementAt(4), 17u);
}

TEST(RandTxTest, DeterministicForSeed) {
  RandTx a(MM_READ_ONLY, kES, kEPP, 0, 1000, 50, /*seed=*/42);
  RandTx b(MM_READ_ONLY, kES, kEPP, 0, 1000, 50, /*seed=*/42);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.ElementAt(i), b.ElementAt(i));
  }
  RandTx c(MM_READ_ONLY, kES, kEPP, 0, 1000, 50, /*seed=*/43);
  int same = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    if (a.ElementAt(i) == c.ElementAt(i)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandTxTest, StaysInRangeAndMayRetouch) {
  RandTx tx(MM_READ_ONLY, kES, kEPP, 100, 200, 1000, 7);
  for (std::size_t i = 0; i < 1000; ++i) {
    std::size_t e = tx.ElementAt(i);
    EXPECT_GE(e, 100u);
    EXPECT_LT(e, 200u);
  }
  EXPECT_TRUE(tx.MayRetouch());
  SeqTx seq(MM_READ_ONLY, kES, kEPP, 0, 10);
  EXPECT_FALSE(seq.MayRetouch());
}

TEST(RandTxTest, GetPagesCoversAccessedPages) {
  RandTx tx(MM_WRITE_ONLY, kES, kEPP, 0, 160, 64, 9);  // pages 0..9
  auto pages = tx.GetPages(0, 64);
  std::set<std::size_t> covered;
  for (const auto& r : pages) {
    EXPECT_TRUE(r.modified);
    covered.insert(r.page_idx);
  }
  // Every accessed element's page must be covered.
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(covered.count(tx.ElementAt(i) / kEPP) > 0);
  }
}

TEST(TransactionTest, PageOfElement) {
  SeqTx tx(MM_READ_ONLY, kES, kEPP, 0, 1);
  EXPECT_EQ(tx.PageOfElement(0), 0u);
  EXPECT_EQ(tx.PageOfElement(15), 0u);
  EXPECT_EQ(tx.PageOfElement(16), 1u);
}

}  // namespace
}  // namespace mm::core
