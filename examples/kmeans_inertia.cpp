// The paper's Listing 1, end to end: compute KMeans inertia over a
// parquet-like dataset presented as a MegaMmap shared vector.
//
// A synthetic Gadget-style particle dataset is generated into a columnar
// "spar" file; each rank maps it, bounds its cache to 1 MiB (the listing's
// BoundMemory(MEGABYTES(1))), partitions it PGAS-style, and accumulates the
// sum of squared distances to the given centroids inside a read-only
// sequential transaction.
// Telemetry demo: pass --trace=/tmp/mm_trace.json to dump a Chrome/Perfetto
// trace of the run (virtual-clock timestamps; load at ui.perfetto.dev) and
// --report=/tmp/mm_report.jsonl for the per-epoch JSON report; either flag
// also prints the paper-style runtime table at the end.
#include <cstdio>
#include <cstring>
#include <string>

#include "mm/apps/datagen.h"
#include "mm/apps/points.h"
#include "mm/mega_mmap.h"
#include "mm/telemetry/report.h"

namespace {

using mm::apps::NearestCentroid;
using mm::apps::Point3;

std::vector<Point3> g_centroids;

using mm::MEGABYTES;

/// Listing 1's KMeansInertia, almost verbatim.
double KMeansInertia(mm::Service& service, mm::comm::RankContext& ctx,
                     const std::string& key, const std::vector<Point3>& ks) {
  int rank = ctx.rank();
  int nprocs = ctx.size();
  mm::Vector<Point3> pts(service, ctx, key);
  pts.BoundMemory(MEGABYTES(1));
  pts.Pgas(rank, nprocs);
  double distance = 0;
  auto tx = pts.SeqTxBegin(pts.local_off(), pts.local_size(),
                           mm::MM_READ_ONLY);
  for (const Point3& p : tx) {
    double d = mm::apps::Dist(p, ks[NearestCentroid(p, ks)]);
    distance += d * d;
  }
  pts.TxEnd();
  return distance;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mm;

  std::string trace_path, report_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(9);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace=PATH.json] [--report=PATH.jsonl]\n",
                   argv[0]);
      return 2;
    }
  }

  // Generate /tmp/points.parquet in the columnar spar format (3 float32
  // position columns), the reproduction's parquet equivalent.
  const std::string key = "spar:///tmp/mm_points.parquet:f4x3";
  apps::DatagenConfig gen;
  gen.num_particles = 200000;
  gen.halos = 8;
  {
    // Positions only: write through the stager directly.
    std::vector<apps::Particle> particles;
    auto truth = apps::GenerateParticles(gen, &particles);
    auto resolved = storage::StagerRegistry::Default().Resolve(key);
    std::vector<std::uint8_t> raw(particles.size() * sizeof(Point3));
    for (std::size_t i = 0; i < particles.size(); ++i) {
      std::memcpy(raw.data() + i * sizeof(Point3), &particles[i].pos,
                  sizeof(Point3));
    }
    if (resolved->first->Exists(resolved->second)) {
      // Best-effort cleanup of a previous run's file.
      (void)resolved->first->Remove(resolved->second);
    }
    if (!resolved->first->Create(resolved->second, raw.size()).ok() ||
        !resolved->first->Write(resolved->second, 0, raw).ok()) {
      std::fprintf(stderr, "dataset generation failed\n");
      return 1;
    }
    std::printf("generated %llu particles into %s\n",
                (unsigned long long)gen.num_particles, key.c_str());
    // Use the true halo centers as centroids for the inertia query.
    g_centroids = truth.halo_centers;
  }

  auto cluster = sim::Cluster::PaperTestbed(4);
  ServiceOptions sopts;
  sopts.tier_grants = {{sim::TierKind::kDram, MEGABYTES(64)},
                       {sim::TierKind::kNvme, MEGABYTES(256)}};
  sopts.telemetry.trace_path = trace_path;
  sopts.telemetry.report_path = report_path;
  Service service(cluster.get(), sopts);

  double total = 0;
  auto result = comm::RunRanks(*cluster, 8, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    double local = KMeansInertia(service, ctx, key, g_centroids);
    std::vector<double> sum = {local};
    comm.AllReduce(sum, [](double a, double b) { return a + b; });
    if (ctx.rank() == 0) total = sum[0];
  });
  if (!result.ok()) {
    std::fprintf(stderr, "job failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("inertia = %.1f over %llu points (virtual runtime %.3f s)\n",
              total, (unsigned long long)gen.num_particles, result.max_time);
  if (!trace_path.empty() || !report_path.empty()) {
    std::string epoch = service.EpochReport(result.max_time);
    if (!epoch.empty()) std::printf("%s\n", epoch.c_str());
    std::printf("%s", telemetry::FormatReportTable(service.TelemetrySnapshot())
                          .c_str());
    if (!trace_path.empty()) {
      std::printf("trace -> %s (load at https://ui.perfetto.dev)\n",
                  trace_path.c_str());
    }
  }
  return 0;
}
