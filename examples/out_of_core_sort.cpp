// A from-scratch out-of-core algorithm on the public API: distributed
// sample-sort of a dataset that does not fit in the configured DRAM.
//
// This is the kind of one-off out-of-core code the paper's intro says
// people hand-roll against POSIX files; here the whole exchange happens
// through MegaMmap vectors (append-only buckets), and the final output is a
// persistent sorted file.
#include <algorithm>
#include <cstdio>

#include "mm/mega_mmap.h"
#include "mm/util/rng.h"

int main() {
  using namespace mm;
  const std::uint64_t n = 1 << 20;  // 1M keys (8 MiB)

  auto cluster = sim::Cluster::PaperTestbed(2);
  ServiceOptions sopts;
  // Deliberately small DRAM grant: buckets overflow into NVMe.
  sopts.tier_grants = {{sim::TierKind::kDram, MEGABYTES(2)},
                       {sim::TierKind::kNvme, MEGABYTES(256)}};
  Service service(cluster.get(), sopts);

  const std::string in_key = "posix:///tmp/mm_sort_in.bin";
  const std::string out_key = "posix:///tmp/mm_sort_out.bin";
  const int nranks = 4;

  auto result = comm::RunRanks(*cluster, nranks, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    VectorOptions vopts;
    vopts.pcache_bytes = MEGABYTES(1);

    // Phase 0: generate random input (each rank its partition).
    Vector<std::uint64_t> input(service, ctx, in_key, n, vopts);
    input.Pgas(ctx.rank(), ctx.size());
    {
      // Chunked writable spans: pages resolve/pin once per window instead
      // of once per element.
      auto tx = input.SeqTxBegin(input.local_off(), input.local_size(),
                                 MM_WRITE_ONLY);
      Rng rng(1234 + ctx.rank());
      const std::uint64_t lo = input.local_off();
      const std::uint64_t hi = lo + input.local_size();
      const std::uint64_t chunk = input.MaxSpanElems();
      for (std::uint64_t s = lo; s < hi; s += chunk) {
        std::uint64_t e = std::min(hi, s + chunk);
        auto span = input.WriteSpan(s, e);
        for (std::uint64_t i = s; i < e; ++i) span[i] = rng.Next();
      }
      input.TxEnd();
    }
    comm.Barrier();

    // Phase 1: splitters = evenly spaced quantiles of a sample.
    std::vector<std::uint64_t> sample;
    {
      auto tx = input.RandTxBegin(input.local_off(),
                                  input.local_off() + input.local_size(), 64,
                                  MM_READ_ONLY, 77);
      for (auto it = tx.begin(); it != tx.end(); ++it) sample.push_back(*it);
      input.TxEnd();
    }
    auto all_samples = comm.AllGatherV(sample);
    std::sort(all_samples.begin(), all_samples.end());
    std::vector<std::uint64_t> splitters;
    for (int b = 1; b < nranks; ++b) {
      splitters.push_back(all_samples[b * all_samples.size() / nranks]);
    }

    // Phase 2: scatter keys into per-bucket append-only shared vectors.
    std::vector<std::unique_ptr<Vector<std::uint64_t>>> buckets;
    VectorOptions bopts = vopts;
    bopts.mode = CoherenceMode::kAppendOnlyGlobal;
    bopts.nonvolatile = false;
    for (int b = 0; b < nranks; ++b) {
      buckets.push_back(std::make_unique<Vector<std::uint64_t>>(
          service, ctx, "sort_bucket_" + std::to_string(b), 0, bopts));
    }
    {
      auto tx = input.SeqTxBegin(input.local_off(), input.local_size(),
                                 MM_READ_ONLY);
      const std::uint64_t lo = input.local_off();
      const std::uint64_t hi = lo + input.local_size();
      const std::uint64_t chunk = input.MaxSpanElems();
      for (std::uint64_t s = lo; s < hi; s += chunk) {
        std::uint64_t e = std::min(hi, s + chunk);
        auto span = input.ReadSpan(s, e);
        for (std::uint64_t i = s; i < e; ++i) {
          std::uint64_t key = span[i];
          int b = static_cast<int>(
              std::upper_bound(splitters.begin(), splitters.end(), key) -
              splitters.begin());
          buckets[b]->Append(key);
        }
      }
      input.TxEnd();
    }
    for (auto& bucket : buckets) bucket->Commit();
    comm.Barrier();

    // Phase 3: rank r sorts bucket r and writes the persistent output.
    Vector<std::uint64_t> output(service, ctx, out_key, n, vopts);
    auto& mine = *buckets[ctx.rank()];
    std::vector<std::uint64_t> local;
    local.reserve(mine.size());
    {
      auto tx = mine.SeqTxBegin(0, mine.size(), MM_READ_ONLY);
      const std::uint64_t chunk = mine.MaxSpanElems();
      for (std::uint64_t s = 0; s < mine.size(); s += chunk) {
        std::uint64_t e = std::min(mine.size(), s + chunk);
        auto span = mine.ReadSpan(s, e);
        for (std::uint64_t i = s; i < e; ++i) local.push_back(span[i]);
      }
      mine.TxEnd();
    }
    std::sort(local.begin(), local.end());
    ctx.Compute(ctx.costs().compare_swap_s * local.size() * 20);  // ~n log n

    // Output offset = total size of lower buckets.
    std::vector<std::uint64_t> sizes(nranks, 0);
    sizes[ctx.rank()] = local.size();
    comm.AllReduce(sizes, [](std::uint64_t a, std::uint64_t b) { return a + b; });
    std::uint64_t off = 0;
    for (int b = 0; b < ctx.rank(); ++b) off += sizes[b];
    {
      auto tx = output.SeqTxBegin(off, local.size(), MM_WRITE_ONLY);
      const std::uint64_t chunk = output.MaxSpanElems();
      for (std::uint64_t s = 0; s < local.size(); s += chunk) {
        std::uint64_t e = std::min<std::uint64_t>(local.size(), s + chunk);
        auto span = output.WriteSpan(off + s, off + e);
        for (std::uint64_t i = s; i < e; ++i) span[off + i] = local[i];
      }
      output.TxEnd();
    }
    comm.Barrier();

    // Verify: every rank spot-checks global sortedness over a window.
    {
      auto tx = output.SeqTxBegin(0, n, MM_READ_ONLY);
      std::uint64_t prev = 0;
      bool sorted = true;
      for (std::uint64_t i = 0; i < n; i += 1001) {
        std::uint64_t x = output.Read(i);
        if (x < prev) sorted = false;
        prev = x;
      }
      output.TxEnd();
      if (ctx.rank() == 0) {
        std::printf("sorted: %s; bucket sizes:", sorted ? "yes" : "NO");
        for (auto s : sizes) std::printf(" %llu", (unsigned long long)s);
        std::printf("\n");
      }
    }
  });
  if (!result.ok()) {
    std::fprintf(stderr, "job failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("virtual runtime %.3f s\n", result.max_time);
  service.Shutdown();
  return 0;
}
