// Quickstart: create a persistent shared vector, fill it from four ranks,
// read it back through transactions, and watch it survive a restart.
//
//   ./examples/quickstart
//
// This is the smallest end-to-end MegaMmap program: a simulated 2-node
// cluster, a service with a DRAM+NVMe scache, and a file-backed vector.
#include <cstdio>

#include "mm/mega_mmap.h"

int main() {
  using namespace mm;

  // 1. A simulated 2-node cluster shaped like the paper's testbed.
  auto cluster = sim::Cluster::PaperTestbed(2);

  // 2. The MegaMmap service: 64 MiB DRAM + 256 MiB NVMe of shared cache
  //    granted on every node.
  ServiceOptions sopts;
  sopts.tier_grants = {{sim::TierKind::kDram, MEGABYTES(64)},
                       {sim::TierKind::kNvme, MEGABYTES(256)}};
  Service service(cluster.get(), sopts);

  const std::string key = "posix:///tmp/mm_quickstart.bin";
  const std::uint64_t n = 1 << 20;  // 1M doubles = 8 MiB

  // 3. Four ranks cooperate on one shared vector.
  auto result = comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    Vector<double> v(service, ctx, key, n);
    v.BoundMemory(MEGABYTES(1));     // each rank caches at most 1 MiB
    v.Pgas(ctx.rank(), ctx.size());  // partition elements evenly

    // Write phase: every rank fills its own partition.
    auto wtx = v.SeqTxBegin(v.local_off(), v.local_size(), MM_WRITE_ONLY);
    for (std::uint64_t i = v.local_off();
         i < v.local_off() + v.local_size(); ++i) {
      v[i] = static_cast<double>(i) * 0.5;
    }
    v.TxEnd();
    comm.Barrier();

    // Read phase: every rank sums the WHOLE vector through the DSM.
    auto rtx = v.SeqTxBegin(0, n, MM_READ_ONLY);
    double sum = 0;
    for (double x : rtx) sum += x;
    v.TxEnd();

    if (ctx.rank() == 0) {
      std::printf("rank 0: sum = %.1f (expected %.1f)\n", sum,
                  0.5 * (double)n * (double)(n - 1) / 2.0);
      std::printf("rank 0: page faults = %llu, evictions = %llu\n",
                  (unsigned long long)v.faults(),
                  (unsigned long long)v.evictions());
    }
  });
  if (!result.ok()) {
    std::fprintf(stderr, "job failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("simulated job runtime: %.3f s (virtual)\n", result.max_time);

  // 4. Shutdown stages every dirty page to /tmp/mm_quickstart.bin...
  service.Shutdown();

  // 5. ...so a fresh service (think: the next job) sees the data.
  auto cluster2 = sim::Cluster::PaperTestbed(1);
  Service service2(cluster2.get(), sopts);
  auto verify = comm::RunRanks(*cluster2, 1, 1, [&](comm::RankContext& ctx) {
    Vector<double> v(service2, ctx, key);
    std::printf("reloaded vector: %llu elements, v[42] = %.1f\n",
                (unsigned long long)v.size(), v.Read(42));
  });
  return verify.ok() ? 0 : 1;
}
