// A scientific-simulation workload: the Gray-Scott reaction-diffusion model
// on a grid held entirely in MegaMmap vectors, with asynchronously staged
// HDF5-like checkpoints (the paper's write/append-heavy use case).
//
// The grid can exceed any single memory bound: tighten the pcache and the
// scache DRAM grant and MegaMmap spills to NVMe instead of failing.
#include <cstdio>

#include "mm/apps/gray_scott.h"
#include "mm/mega_mmap.h"

int main(int argc, char** argv) {
  using namespace mm;
  std::size_t L = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 32;
  int steps = argc > 2 ? std::atoi(argv[2]) : 8;

  auto cluster = sim::Cluster::PaperTestbed(4);
  ServiceOptions sopts;
  sopts.tier_grants = {{sim::TierKind::kDram, MEGABYTES(16)},
                       {sim::TierKind::kNvme, MEGABYTES(512)}};
  Service service(cluster.get(), sopts);

  apps::GrayScottConfig cfg;
  cfg.L = L;
  cfg.steps = steps;
  cfg.plotgap = 2;  // checkpoint every other step
  cfg.out_key = "shdf:///tmp/mm_gray_scott.h5";
  cfg.pcache_bytes = MEGABYTES(2);

  apps::GrayScottResult gs;
  auto result = comm::RunRanks(*cluster, 8, 2, [&](comm::RankContext& ctx) {
    comm::Communicator comm(&ctx);
    auto r = apps::GrayScottMega(service, comm, cfg);
    if (ctx.rank() == 0) gs = r;
  });
  if (!result.ok()) {
    std::fprintf(stderr, "job failed: %s\n", result.error.c_str());
    return 1;
  }
  double cells = static_cast<double>(L) * L * L;
  std::printf("Gray-Scott %zux%zux%zu, %d steps on 8 ranks\n", L, L, L, steps);
  std::printf("  mean U = %.4f, mean V = %.4f\n", gs.sum_u / cells,
              gs.sum_v / cells);
  std::printf("  checkpointed %.1f MiB to %s\n",
              static_cast<double>(gs.bytes_checkpointed) / (1024.0 * 1024.0),
              cfg.out_key.c_str());
  std::printf("  virtual runtime %.3f s\n", result.max_time);
  service.Shutdown();
  return 0;
}
