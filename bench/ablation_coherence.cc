// Ablation A3 (DESIGN.md): coherence-policy choice (Fig. 3). The same
// multi-reader workload (every rank scans the whole dataset repeatedly)
// runs under read-only-global — which replicates pages near readers and
// skips acquire checks — versus the conservative read-write-global default,
// which must version-check cached pages at every transaction begin and
// serves every miss from the page's single owner.
#include "bench/common.h"

#include "mm/core/vector.h"

using namespace mm;
using namespace mmbench;

int main(int argc, char** argv) {
  bool csv = CsvMode(argc, argv);
  int reps = Reps(argc, argv);
  BenchDir dir("ablation_coherence");
  const std::uint64_t n = 1 << 19;  // 4 MiB of doubles
  std::string key = dir.Key("posix", "shared.bin");
  {
    auto resolved = storage::StagerRegistry::Default().Resolve(key);
    // kAlreadyExists on re-runs is fine; the bench only needs the file.
    (void)resolved->first->Create(resolved->second, n * sizeof(double));
  }

  std::printf("=== Ablation: coherence policy for a shared read-mostly "
              "dataset ===\n\n");
  TablePrinter table({"mode", "runtime_s", "speedup_vs_rw_global"});

  auto run_mode = [&](core::CoherenceMode mode) {
    return MeasureSeconds(reps, [&] {
      auto cluster = sim::Cluster::PaperTestbed(4);
      core::ServiceOptions so;
      so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(64)}};
      core::Service svc(cluster.get(), so);
      return comm::RunRanks(*cluster, 8, 2, [&](comm::RankContext& ctx) {
        comm::Communicator comm(&ctx);
        core::VectorOptions vo;
        vo.page_size = 64 * 1024;
        vo.pcache_bytes = MEGABYTES(1);
        vo.mode = mode;
        Vector<double> v(svc, ctx, key, n, vo);
        v.Pgas(ctx.rank(), ctx.size());
        comm.Barrier();
        // Every rank scans the WHOLE dataset repeatedly (global reads).
        for (int pass = 0; pass < 8; ++pass) {
          auto tx = v.SeqTxBegin(0, n, core::MM_READ_ONLY);
          double sum = 0;
          for (double x : tx) sum += x;
          v.TxEnd();
          comm.Barrier();
        }
      });
    });
  };

  double rw = run_mode(core::CoherenceMode::kReadWriteGlobal);
  double ro = run_mode(core::CoherenceMode::kReadOnlyGlobal);
  table.AddRow({"read_write_global", Fmt(rw), "1.00"});
  table.AddRow({"read_only_global", Fmt(ro), Fmt(rw / ro, 2)});
  std::printf("%s", table.Render(csv).c_str());
  std::printf("\nExpected: read-only-global wins by replicating pages near\n"
              "readers and skipping per-transaction version checks.\n");
  return 0;
}
