// Checkpoint/recovery experiment (mm::ckpt, DESIGN.md §12): a bench-local
// Lloyd KMeans runs over the DSM with a coordinated incremental checkpoint
// after every iteration, persisting its progress in a nonvolatile state
// vector [iterations_done, centroids...]. A second run is killed
// mid-iteration (ForceCrash: the dying service skips its clean-exit flush),
// reborn over the same directories, restored from the last published epoch,
// and resumed. The resumed run must land on bit-identical centroids.
//
// Reported (BENCH_ckpt_recovery.json, gated by ci/check_perf.py):
//   ckpt_overhead_fraction  mean checkpoint cost / mean epoch cost, both in
//                           virtual seconds — must stay under 10%;
//   restore_identical       1 when the resumed centroids memcmp-equal the
//                           uninterrupted run's — must be 1;
//   incremental_ratio       pages flushed / manifest pages of the steady-
//                           state checkpoint (only the state page is dirty).
#include "bench/common.h"

#include <cstring>

#include "mm/apps/points.h"
#include "mm/ckpt/collective.h"
#include "mm/core/service.h"

using namespace mm;
using namespace mmbench;

namespace {

constexpr int kClusters = 8;
constexpr int kIters = 6;
constexpr int kCrashIter = 3;  // killed while computing this iteration
constexpr std::uint64_t kNumPoints = 1200000;
constexpr std::uint64_t kPageBytes = 64 * 1024;
constexpr const char* kTag = "kmeans";

/// Persisted in the one-page nonvolatile state vector.
struct KmState {
  std::uint64_t iters_done = 0;
  apps::Point3 centroids[kClusters] = {};
};

struct RunTimes {
  StatAccumulator epoch_s;  // per-iteration virtual cost, checkpoint excluded
  StatAccumulator ckpt_s;   // per-checkpoint virtual cost
  double last_ratio = 0.0;  // incremental ratio of the last checkpoint
};

core::ServiceOptions MakeOptions(const BenchDir& dir,
                                 const std::string& ckpt_sub) {
  core::ServiceOptions so;
  // A small DRAM slice over NVMe: every epoch re-reads most of the ~14 MB
  // dataset from the lower tier, so the epoch cost is honest I/O.
  so.tier_grants = {{sim::TierKind::kDram, 256 * 1024},
                    {sim::TierKind::kNvme, MEGABYTES(64)}};
  so.ckpt.dir = (dir.path() / ckpt_sub).string();
  return so;
}

/// Reads the whole dataset through the DSM, charging the rank's clock.
std::vector<apps::Point3> ReadPoints(core::Service& svc,
                                     core::VectorMeta& meta,
                                     comm::RankContext& ctx,
                                     std::uint64_t max_pages = ~0ULL) {
  std::uint64_t bytes = kNumPoints * sizeof(apps::Point3);
  std::uint64_t pages = (bytes + kPageBytes - 1) / kPageBytes;
  pages = std::min(pages, max_pages);
  std::vector<std::uint8_t> raw;
  raw.reserve(pages * kPageBytes);
  sim::SimTime t = ctx.clock().now();
  for (std::uint64_t p = 0; p < pages; ++p) {
    sim::SimTime done = t;
    auto page = svc.ReadPage(meta, p, ctx.node(), t, &done);
    if (!page.ok()) {
      std::fprintf(stderr, "read page %llu failed: %s\n",
                   static_cast<unsigned long long>(p),
                   page.status().ToString().c_str());
      std::exit(1);
    }
    raw.insert(raw.end(), page->begin(), page->end());
    t = std::max(t, done);
  }
  ctx.clock().AdvanceTo(t);
  raw.resize(std::min<std::uint64_t>(raw.size(), bytes));
  std::vector<apps::Point3> points(raw.size() / sizeof(apps::Point3));
  std::memcpy(points.data(), raw.data(),
              points.size() * sizeof(apps::Point3));
  return points;
}

/// One Lloyd iteration; charges a nominal per-distance compute cost.
KmState Iterate(const KmState& in, const std::vector<apps::Point3>& points,
                comm::RankContext& ctx) {
  double sum[kClusters][3] = {};
  std::uint64_t count[kClusters] = {};
  for (const auto& pt : points) {
    int best = 0;
    double best_d = apps::Dist2(pt, in.centroids[0]);
    for (int c = 1; c < kClusters; ++c) {
      double d = apps::Dist2(pt, in.centroids[c]);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    sum[best][0] += pt.x;
    sum[best][1] += pt.y;
    sum[best][2] += pt.z;
    ++count[best];
  }
  ctx.clock().Advance(static_cast<double>(points.size()) * kClusters * 1e-9);
  KmState out = in;
  out.iters_done = in.iters_done + 1;
  for (int c = 0; c < kClusters; ++c) {
    if (count[c] == 0) continue;  // empty cluster keeps its centroid
    out.centroids[c].x = static_cast<float>(sum[c][0] / count[c]);
    out.centroids[c].y = static_cast<float>(sum[c][1] / count[c]);
    out.centroids[c].z = static_cast<float>(sum[c][2] / count[c]);
  }
  return out;
}

void WriteState(core::Service& svc, core::VectorMeta& meta,
                const KmState& state, comm::RankContext& ctx) {
  std::vector<std::uint8_t> bytes(sizeof(KmState));
  std::memcpy(bytes.data(), &state, sizeof(KmState));
  auto out = svc.WriteRegion(meta, 0, 0, std::move(bytes), ctx.node(),
                             ctx.clock().now())
                 .get();
  if (!out.status.ok()) {
    std::fprintf(stderr, "state write failed: %s\n",
                 out.status.ToString().c_str());
    std::exit(1);
  }
  ctx.clock().AdvanceTo(out.done);
}

KmState ReadState(core::Service& svc, core::VectorMeta& meta,
                  comm::RankContext& ctx) {
  sim::SimTime done = ctx.clock().now();
  auto page = svc.ReadPage(meta, 0, ctx.node(), ctx.clock().now(), &done);
  if (!page.ok()) {
    std::fprintf(stderr, "state read failed: %s\n",
                 page.status().ToString().c_str());
    std::exit(1);
  }
  ctx.clock().AdvanceTo(done);
  KmState state;
  std::memcpy(&state, page->data(), sizeof(KmState));
  return state;
}

/// Runs iterations [state.iters_done, kIters), checkpointing after each.
/// When `crash_at >= 0`, dies mid-iteration `crash_at` (half the dataset
/// read, nothing committed) and returns with the injector crashed.
KmState RunLoop(core::Service& svc, core::VectorMeta& data,
                core::VectorMeta& st_vec, comm::Communicator& comm,
                comm::RankContext& ctx, KmState state, int crash_at,
                RunTimes* times) {
  std::uint64_t pages =
      (kNumPoints * sizeof(apps::Point3) + kPageBytes - 1) / kPageBytes;
  for (int iter = static_cast<int>(state.iters_done); iter < kIters; ++iter) {
    if (iter == crash_at) {
      // The crash lands mid-epoch: half the dataset read, the iteration's
      // state never written. Shutdown will skip the clean-exit flush.
      (void)ReadPoints(svc, data, ctx, pages / 2);
      svc.fault_injector().ForceCrash();
      return state;
    }
    sim::SimTime epoch_start = ctx.clock().now();
    auto points = ReadPoints(svc, data, ctx);
    state = Iterate(state, points, ctx);
    WriteState(svc, st_vec, state, ctx);
    double epoch_s = ctx.clock().now() - epoch_start;
    auto stats = ckpt::CollectiveCheckpoint(comm, svc, kTag);
    if (!stats.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n",
                   stats.status().ToString().c_str());
      std::exit(1);
    }
    if (times != nullptr) {
      times->epoch_s.Add(epoch_s);
      times->ckpt_s.Add(stats->duration_s);
      times->last_ratio = stats->incremental_ratio;
    }
  }
  return state;
}

/// Registers the data and state vectors; seeds the centroids from the first
/// kClusters points when starting fresh.
KmState Setup(core::Service& svc, const std::string& data_key,
              const std::string& state_key, comm::RankContext& ctx,
              core::VectorMeta** data, core::VectorMeta** st_vec) {
  core::VectorOptions dv;
  dv.page_size = kPageBytes;
  auto dm = svc.RegisterVector(data_key, 1, dv);
  core::VectorOptions sv;
  sv.page_size = 4096;
  auto sm = svc.RegisterVector(state_key, 1, sv, 4096);
  if (!dm.ok() || !sm.ok()) {
    std::fprintf(stderr, "register failed\n");
    std::exit(1);
  }
  *data = *dm;
  *st_vec = *sm;
  KmState state;
  auto points = ReadPoints(svc, **dm, ctx, 1);
  for (int c = 0; c < kClusters; ++c) state.centroids[c] = points[c];
  return state;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 && argv[1][0] != '-' ? argv[1] : "BENCH_ckpt_recovery.json";
  bool csv = CsvMode(argc, argv);
  BenchDir dir("ckpt_recovery");
  std::string data_key = StageParticles(dir, kNumPoints, 8, 42);

  // --- Reference: uninterrupted, checkpointing every iteration. ---
  RunTimes times;
  KmState reference;
  {
    auto cluster = sim::Cluster::PaperTestbed(1);
    core::Service svc(cluster.get(), MakeOptions(dir, "ckpt_ref"));
    auto run = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      core::VectorMeta* data = nullptr;
      core::VectorMeta* st_vec = nullptr;
      KmState state =
          Setup(svc, data_key, dir.Key("posix", "state_ref.bin"), ctx, &data,
                &st_vec);
      reference = RunLoop(svc, *data, *st_vec, comm, ctx, state,
                          /*crash_at=*/-1, &times);
    });
    if (!run.ok()) {
      std::fprintf(stderr, "reference run failed: %s\n", run.error.c_str());
      return 1;
    }
  }

  // --- Crash run: killed mid-iteration, reborn, restored, resumed. ---
  std::string crash_state_key = dir.Key("posix", "state_crash.bin");
  {
    auto cluster = sim::Cluster::PaperTestbed(1);
    core::Service svc(cluster.get(), MakeOptions(dir, "ckpt_crash"));
    auto run = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      core::VectorMeta* data = nullptr;
      core::VectorMeta* st_vec = nullptr;
      KmState state = Setup(svc, data_key, crash_state_key, ctx, &data,
                            &st_vec);
      // The crashed run's in-memory state dies with it; recovery reads disk.
      (void)RunLoop(svc, *data, *st_vec, comm, ctx, state, kCrashIter,
                    nullptr);
    });
    if (!run.ok()) {
      std::fprintf(stderr, "crash run failed: %s\n", run.error.c_str());
      return 1;
    }
    // The service dies here with the crash flag set: no clean-exit flush.
  }

  KmState resumed;
  std::uint64_t restored_iters = 0;
  {
    auto cluster = sim::Cluster::PaperTestbed(1);
    core::Service svc(cluster.get(), MakeOptions(dir, "ckpt_crash"));
    auto run = comm::RunRanks(*cluster, 1, 1, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      Status rs = ckpt::CollectiveRestore(comm, svc, kTag);
      if (!rs.ok()) {
        std::fprintf(stderr, "restore failed: %s\n", rs.ToString().c_str());
        std::exit(1);
      }
      core::VectorMeta* data = svc.FindVector(data_key);
      core::VectorMeta* st_vec = svc.FindVector(crash_state_key);
      if (data == nullptr || st_vec == nullptr) {
        std::fprintf(stderr, "restore did not rebuild the vectors\n");
        std::exit(1);
      }
      KmState state = ReadState(svc, *st_vec, ctx);
      restored_iters = state.iters_done;
      resumed = RunLoop(svc, *data, *st_vec, comm, ctx, state,
                        /*crash_at=*/-1, nullptr);
    });
    if (!run.ok()) {
      std::fprintf(stderr, "resume run failed: %s\n", run.error.c_str());
      return 1;
    }
  }

  bool identical =
      std::memcmp(reference.centroids, resumed.centroids,
                  sizeof(reference.centroids)) == 0 &&
      reference.iters_done == resumed.iters_done;
  double overhead = times.ckpt_s.Mean() /
                    (times.epoch_s.Mean() > 0 ? times.epoch_s.Mean() : 1.0);

  std::printf("=== Checkpoint/recovery: KMeans killed mid-iteration ===\n\n");
  TablePrinter table({"metric", "value"});
  table.AddRow({"epoch_s_mean", Fmt(times.epoch_s.Mean())});
  table.AddRow({"ckpt_s_mean", Fmt(times.ckpt_s.Mean())});
  table.AddRow({"ckpt_overhead_fraction", Fmt(overhead)});
  table.AddRow({"incremental_ratio", Fmt(times.last_ratio)});
  table.AddRow({"restored_at_iter", std::to_string(restored_iters)});
  table.AddRow({"resumed_iterations",
                std::to_string(kIters - static_cast<int>(restored_iters))});
  table.AddRow({"restore_identical", identical ? "yes" : "NO"});
  std::printf("%s", table.Render(csv).c_str());
  std::printf(
      "\nExpected: the resumed run restores at iteration %d (the last\n"
      "published epoch before the crash) and finishes with the reference\n"
      "run's exact centroids; checkpoints cost well under 10%% of an epoch\n"
      "because only the dirty state page is flushed.\n",
      kCrashIter);

  BenchReport report("ckpt_recovery");
  report.Config("points", static_cast<double>(kNumPoints));
  report.Config("clusters", kClusters);
  report.Config("iterations", kIters);
  report.Config("crash_iteration", kCrashIter);
  report.Config("page_bytes", static_cast<double>(kPageBytes));
  report.Metric("epoch_s_mean", times.epoch_s.Mean());
  report.Metric("ckpt_s_mean", times.ckpt_s.Mean());
  report.Metric("ckpt_overhead_fraction", overhead);
  report.Metric("incremental_ratio", times.last_ratio);
  report.Metric("restored_at_iter", static_cast<double>(restored_iters));
  report.Metric("restore_identical", identical ? 1.0 : 0.0);
  report.Series("epoch_s", times.epoch_s);
  report.Series("ckpt_s", times.ckpt_s);
  if (!report.Write(out_path)) return 1;
  return identical ? 0 : 1;
}
