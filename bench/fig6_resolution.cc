// Fig. 6 reproduction: increasing Gray-Scott resolution through tiering.
//
// Paper setup (scaled per EXPERIMENTS.md): L swept 2048..3456 on 16 nodes
// with 48 GB DRAM + 128 GB NVMe; the MPI version (over OrangeFS, Assise,
// Hermes backends) is OOM-killed past L=2688, while MegaMmap continues to
// L=3456 and runs >= 20% faster below the cliff.
//
// Here: 4 nodes scaled to 1/2^14 of the paper's device sizes (3 MB DRAM,
// 8 MB NVMe per node), L swept so the grid crosses the DRAM boundary
// mid-sweep. Checkpoints every step exercise the I/O backends.
#include "bench/common.h"

#include "mm/apps/gray_scott.h"

using namespace mm;
using namespace mmbench;

int main(int argc, char** argv) {
  bool csv = CsvMode(argc, argv);
  int reps = Reps(argc, argv);
  const int nodes = 4, procs_per_node = 4;
  const double scale = 1.0 / 16384.0;  // 48 GB -> 3 MB DRAM etc.

  std::printf("=== Fig. 6: Gray-Scott resolution sweep (tiered memory) ===\n");
  std::printf("(%d nodes x %d procs, device sizes scaled by 1/16384;\n"
              " node DRAM=%.1f MB; MPI rows crash past the DRAM boundary)\n\n",
              nodes, procs_per_node,
              48.0 * 1024.0 * scale);
  TablePrinter table({"L", "grid_MiB", "impl", "backend", "runtime_s"});

  std::vector<std::size_t> Ls = {40, 56, 72, 88, 104};
  for (std::size_t L : Ls) {
    double grid_mib = 2.0 * static_cast<double>(L) * L * L * 8 /
                      (1024.0 * 1024.0);  // both species
    apps::GrayScottConfig cfg;
    cfg.L = L;
    cfg.steps = 2;
    cfg.plotgap = 1;
    cfg.page_size = 128 * 1024;
    cfg.pcache_bytes = 768 * 1024;

    struct MpiRow {
      const char* name;
      apps::CkptBackend backend;
    };
    for (const MpiRow& row :
         {MpiRow{"OrangeFS", apps::CkptBackend::kPfsSync},
          MpiRow{"Assise", apps::CkptBackend::kAssiseLike},
          MpiRow{"Hermes", apps::CkptBackend::kHermesLike}}) {
      apps::GrayScottConfig mpi_cfg = cfg;
      mpi_cfg.ckpt = row.backend;
      bool oom = false;
      double t = MeasureSeconds(
          reps,
          [&] {
            auto cluster = sim::Cluster::PaperTestbed(nodes, scale);
            return comm::RunRanks(*cluster, nodes * procs_per_node,
                                  procs_per_node,
                                  [&](comm::RankContext& ctx) {
                                    comm::Communicator comm(&ctx);
                                    apps::GrayScottMpi(comm, mpi_cfg);
                                  });
          },
          &oom);
      table.AddRow({std::to_string(L), Fmt(grid_mib, 1), "MPI", row.name,
                    oom ? "OOM-killed" : Fmt(t)});
    }

    {
      BenchDir dir("fig6_L" + std::to_string(L));
      apps::GrayScottConfig mega_cfg = cfg;
      mega_cfg.out_key = dir.Key("shdf", "gs.h5");
      double t = MeasureSeconds(reps, [&] {
        auto cluster = sim::Cluster::PaperTestbed(nodes, scale);
        core::ServiceOptions so;
        // Paper config: 48 GB DRAM + 128 GB NVMe per node, scaled.
        so.tier_grants = {
            {sim::TierKind::kDram,
             static_cast<std::uint64_t>(GIGABYTES(48) * scale * 0.9)},
            {sim::TierKind::kNvme,
             static_cast<std::uint64_t>(GIGABYTES(128) * scale * 0.9)}};
        core::Service svc(cluster.get(), so);
        return comm::RunRanks(*cluster, nodes * procs_per_node, procs_per_node,
                              [&](comm::RankContext& ctx) {
                                comm::Communicator comm(&ctx);
                                apps::GrayScottMega(svc, comm, mega_cfg);
                              });
      });
      table.AddRow({std::to_string(L), Fmt(grid_mib, 1), "MegaMmap", "DMSH",
                    Fmt(t)});
    }
  }
  std::printf("%s", table.Render(csv).c_str());
  std::printf("\nExpected shape: all MPI rows OOM once the slabs exceed the\n"
              "scaled node DRAM; MegaMmap keeps running (NVMe spill) and is\n"
              "faster than the synchronous backends below the cliff.\n");
  return 0;
}
