// Ablation A2 (DESIGN.md): the transaction-informed prefetcher under
// memory pressure. KMeans runs with a pcache far smaller than its
// partition; with prefetching the sequential transactions pipeline the
// page fetches behind compute (this is the mechanism behind Fig. 8's flat
// region), without it every page is a synchronous fault.
#include "bench/common.h"

#include "mm/apps/kmeans.h"

using namespace mm;
using namespace mmbench;

int main(int argc, char** argv) {
  bool csv = CsvMode(argc, argv);
  int reps = Reps(argc, argv);
  BenchDir dir("ablation_prefetch");
  std::string key = StageParticles(dir, 160000, 8, 42);

  std::printf("=== Ablation: prefetcher on/off under memory pressure ===\n\n");
  TablePrinter table(
      {"prefetch", "pcache_frac", "runtime_s", "slowdown_vs_prefetch"});

  apps::KMeansConfig cfg;
  cfg.k = 8;
  cfg.max_iter = 6;
  cfg.page_size = 64 * 1024;
  std::uint64_t partition_bytes = 160000 * sizeof(apps::Particle) / 8;

  for (double frac : {0.5, 0.25, 0.125}) {
    cfg.pcache_bytes = std::max<std::uint64_t>(
        2 * cfg.page_size,
        static_cast<std::uint64_t>(partition_bytes * frac));
    double with = 0;
    for (bool prefetch : {true, false}) {
      double t = MeasureSeconds(reps, [&] {
        auto cluster = sim::Cluster::PaperTestbed(2);
        core::ServiceOptions so;
        so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(64)}};
        so.enable_prefetch = prefetch;
        core::Service svc(cluster.get(), so);
        return comm::RunRanks(*cluster, 8, 4, [&](comm::RankContext& ctx) {
          comm::Communicator comm(&ctx);
          apps::KMeansMega(svc, comm, key, cfg);
        });
      });
      if (prefetch) with = t;
      table.AddRow({prefetch ? "on" : "off", Fmt(frac, 3), Fmt(t),
                    Fmt(t / with, 2)});
    }
  }
  std::printf("%s", table.Render(csv).c_str());
  std::printf("\nExpected: prefetch-off degrades as the pcache shrinks;\n"
              "prefetch-on stays close to flat (Algorithm 1 pipelines the\n"
              "sequential window).\n");
  return 0;
}
