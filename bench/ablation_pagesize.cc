// Ablation A4 (DESIGN.md, paper §III-C "Reducing Data Movement Through
// Configurable and Partial Paging"): page-size sweep for a sequential scan
// versus a pseudo-random sample over the same dataset. Big pages amortize
// per-fault costs for sequential access but amplify I/O for sparse random
// access; small pages do the opposite.
#include "bench/common.h"

#include "mm/core/vector.h"

using namespace mm;
using namespace mmbench;

namespace {

volatile double g_keepalive = 0;

double RunScan(const std::string& key, std::uint64_t n,
               std::uint64_t page_size, bool random, int reps) {
  return MeasureSeconds(reps, [&] {
    auto cluster = sim::Cluster::PaperTestbed(2);
    core::ServiceOptions so;
    so.tier_grants = {{sim::TierKind::kDram, MEGABYTES(64)}};
    core::Service svc(cluster.get(), so);
    return comm::RunRanks(*cluster, 4, 2, [&](comm::RankContext& ctx) {
      comm::Communicator comm(&ctx);
      core::VectorOptions vo;
      vo.page_size = page_size;
      // Fixed DRAM budget: bigger pages mean fewer cached pages.
      vo.pcache_bytes = std::max<std::uint64_t>(2 * page_size, MEGABYTES(1));
      vo.mode = core::CoherenceMode::kReadOnlyGlobal;
      Vector<std::uint64_t> v(svc, ctx, key, 0, vo);
      v.Pgas(ctx.rank(), ctx.size());
      std::uint64_t lo = v.local_off(), cnt = v.local_size();
      double sum = 0;
      if (random) {
        // Sparse random sample: ~1 element per 512.
        std::uint64_t samples = cnt / 2048;
        auto tx = v.RandTxBegin(lo, lo + cnt, samples, core::MM_READ_ONLY, 7);
        for (auto it = tx.begin(); it != tx.end(); ++it) sum += *it;
        v.TxEnd();
      } else {
        auto tx = v.SeqTxBegin(lo, cnt, core::MM_READ_ONLY);
        for (std::uint64_t x : tx) sum += static_cast<double>(x);
        v.TxEnd();
      }
      g_keepalive = sum;  // prevent optimizing the loop away
      (void)n;  // element count is implicit in the timed loop
    });
  });
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = CsvMode(argc, argv);
  int reps = Reps(argc, argv);
  BenchDir dir("ablation_pagesize");
  const std::uint64_t n = MEGABYTES(64) / sizeof(std::uint64_t);
  std::string key = dir.Key("posix", "data.bin");
  {
    auto resolved = storage::StagerRegistry::Default().Resolve(key);
    // kAlreadyExists on re-runs is fine; the bench only needs the file.
    (void)resolved->first->Create(resolved->second, n * sizeof(std::uint64_t));
  }

  std::printf("=== Ablation: page-size sweep, sequential vs sparse random "
              "===\n\n");
  TablePrinter table({"page_size", "seq_scan_s", "random_sample_s"});
  for (std::uint64_t page : {std::uint64_t(4) * kKiB, std::uint64_t(16) * kKiB,
                             std::uint64_t(64) * kKiB,
                             std::uint64_t(256) * kKiB,
                             std::uint64_t(1024) * kKiB}) {
    double seq = RunScan(key, n, page, /*random=*/false, reps);
    double rnd = RunScan(key, n, page, /*random=*/true, reps);
    table.AddRow({FormatBytes(page), Fmt(seq), Fmt(rnd)});
  }
  std::printf("%s", table.Render(csv).c_str());
  std::printf("\nExpected: sequential improves with page size (fewer, larger\n"
              "faults); sparse random degrades past a knee (I/O\n"
              "amplification) — the paper's case for per-vector page sizes.\n");
  return 0;
}
