// Microbenchmark of the tree collectives underlying MegaMmap's coherence
// traffic (§III-C "Collective"): virtual cost of Bcast/AllReduce/AllGatherV
// across rank counts and payload sizes. The binomial-tree algorithms should
// show log(p) growth; the virtual seconds per operation are reported as a
// counter alongside the real execution time.
#include <benchmark/benchmark.h>

#include "mm/mega_mmap.h"

namespace {

using namespace mm;

void BM_Bcast(benchmark::State& state) {
  int nranks = static_cast<int>(state.range(0));
  std::size_t bytes = static_cast<std::size_t>(state.range(1));
  double virtual_s = 0;
  for (auto _ : state) {
    auto cluster = sim::Cluster::PaperTestbed(nranks);
    auto result = comm::RunRanks(*cluster, nranks, 1,
                                 [&](comm::RankContext& ctx) {
                                   comm::Communicator comm(&ctx);
                                   std::vector<char> data;
                                   if (ctx.rank() == 0) data.assign(bytes, 1);
                                   comm.Bcast(data, 0);
                                 });
    virtual_s = result.max_time;
  }
  state.counters["virtual_s"] = virtual_s;
}
BENCHMARK(BM_Bcast)
    ->ArgsProduct({{2, 4, 8, 16}, {1024, 1 << 20}})
    ->Unit(benchmark::kMillisecond);

void BM_AllReduce(benchmark::State& state) {
  int nranks = static_cast<int>(state.range(0));
  std::size_t doubles = static_cast<std::size_t>(state.range(1));
  double virtual_s = 0;
  for (auto _ : state) {
    auto cluster = sim::Cluster::PaperTestbed(nranks);
    auto result = comm::RunRanks(
        *cluster, nranks, 1, [&](comm::RankContext& ctx) {
          comm::Communicator comm(&ctx);
          std::vector<double> data(doubles, 1.0);
          comm.AllReduce(data, [](double a, double b) { return a + b; });
        });
    virtual_s = result.max_time;
  }
  state.counters["virtual_s"] = virtual_s;
}
BENCHMARK(BM_AllReduce)
    ->ArgsProduct({{2, 4, 8, 16}, {16, 4096}})
    ->Unit(benchmark::kMillisecond);

void BM_AllGatherV(benchmark::State& state) {
  int nranks = static_cast<int>(state.range(0));
  double virtual_s = 0;
  for (auto _ : state) {
    auto cluster = sim::Cluster::PaperTestbed(nranks);
    auto result = comm::RunRanks(
        *cluster, nranks, 1, [&](comm::RankContext& ctx) {
          comm::Communicator comm(&ctx);
          std::vector<int> mine(256, ctx.rank());
          auto all = comm.AllGatherV(mine);
          benchmark::DoNotOptimize(all.size());
        });
    virtual_s = result.max_time;
  }
  state.counters["virtual_s"] = virtual_s;
}
BENCHMARK(BM_AllGatherV)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
