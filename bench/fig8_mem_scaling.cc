// Fig. 8 reproduction: lowering DRAM consumption. Each application runs on
// a fixed dataset while the DRAM granted to MegaMmap shrinks; intelligent
// prefetching/eviction keeps performance within ~10% down to a 2-2.6x
// reduction, after which frequent synchronous faults and NVMe spills cost
// up to ~2.5x.
//
// Paper setup: 1 TB datasets, 1536 procs over 32 nodes, DRAM swept 4-32 GB
// per node, overflow to NVMe. Here: 4 nodes x 4 procs, MB-scale datasets,
// the DRAM grant swept from fitting the whole dataset down to 1/8 of it
// (the pcache bound shrinks proportionally).
#include "bench/common.h"

#include "mm/apps/dbscan.h"
#include "mm/apps/gray_scott.h"
#include "mm/apps/kmeans.h"
#include "mm/apps/random_forest.h"

using namespace mm;
using namespace mmbench;

namespace {

constexpr int kNodes = 4, kProcsPerNode = 4;

/// DRAM fractions of the full-dataset grant (1 = everything fits).
const std::vector<double> kFractions = {1.0, 0.75, 0.5, 0.375, 0.25, 0.125};

core::ServiceOptions TieredService(std::uint64_t dram_per_node) {
  core::ServiceOptions so;
  so.tier_grants = {{sim::TierKind::kDram, dram_per_node},
                    {sim::TierKind::kNvme, GIGABYTES(2)}};  // ample NVMe
  return so;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = CsvMode(argc, argv);
  int reps = Reps(argc, argv);
  const int procs = kNodes * kProcsPerNode;

  std::printf("=== Fig. 8: DRAM scaling (overflow to NVMe) ===\n");
  std::printf("(%d nodes x %d procs, %d reps; dram_frac = DRAM grant as a\n"
              " fraction of the dataset's per-node footprint)\n\n",
              kNodes, kProcsPerNode, reps);
  TablePrinter table({"app", "dram_frac", "runtime_s", "vs_full_dram"});

  BenchDir dir("fig8");
  const std::uint64_t particles = 240000;  // ~5.8 MB dataset
  std::string key = StageParticles(dir, particles, 8, 42, "pts.bin",
                                   1000.0 * std::cbrt(4.0));
  std::uint64_t dataset_bytes = particles * sizeof(apps::Particle);
  std::uint64_t full_dram_per_node = dataset_bytes / kNodes * 2;

  auto sweep = [&](const char* app,
                   const std::function<mm::comm::RunResult(
                       core::Service&, sim::Cluster&, double frac)>& run) {
    double full = 0;
    for (double frac : kFractions) {
      double t = MeasureSeconds(reps, [&] {
        auto cluster = sim::Cluster::PaperTestbed(kNodes);
        core::Service svc(
            cluster.get(),
            TieredService(static_cast<std::uint64_t>(full_dram_per_node * frac)));
        return run(svc, *cluster, frac);
      });
      if (frac == 1.0) full = t;
      table.AddRow({app, Fmt(frac, 3), Fmt(t), Fmt(t / full, 2)});
    }
  };

  // ---- KMeans ----
  sweep("KMeans", [&](core::Service& svc, sim::Cluster& cluster, double frac) {
    apps::KMeansConfig cfg;
    cfg.k = 8;
    cfg.max_iter = 4;
    cfg.page_size = 64 * 1024;
    cfg.pcache_bytes = std::max<std::uint64_t>(
        2 * cfg.page_size,
        static_cast<std::uint64_t>(dataset_bytes / procs * frac));
    return comm::RunRanks(cluster, procs, kProcsPerNode,
                          [&](comm::RankContext& ctx) {
                            comm::Communicator comm(&ctx);
                            apps::KMeansMega(svc, comm, key, cfg);
                          });
  });

  // ---- DBSCAN ----
  sweep("DBSCAN", [&](core::Service& svc, sim::Cluster& cluster, double frac) {
    apps::DbscanConfig cfg;
    cfg.eps = 4.0;
    cfg.min_pts = 32;
    cfg.page_size = 64 * 1024;
    cfg.pcache_bytes = std::max<std::uint64_t>(
        2 * cfg.page_size,
        static_cast<std::uint64_t>(dataset_bytes / procs * frac));
    return comm::RunRanks(cluster, procs, kProcsPerNode,
                          [&](comm::RankContext& ctx) {
                            comm::Communicator comm(&ctx);
                            apps::DbscanMega(svc, comm, key, cfg);
                          });
  });

  // ---- Random Forest (labels = KMeans assignments, paper workflow) ----
  std::string assign_key = dir.Key("posix", "assign.bin");
  {
    auto cluster = sim::Cluster::PaperTestbed(kNodes);
    core::Service svc(cluster.get(), TieredService(full_dram_per_node));
    apps::KMeansConfig kcfg;
    kcfg.k = 8;
    kcfg.max_iter = 4;
    kcfg.page_size = 64 * 1024;
    kcfg.pcache_bytes = MEGABYTES(1);
    kcfg.assign_key = assign_key;
    auto seed_run = comm::RunRanks(*cluster, procs, kProcsPerNode,
                                   [&](comm::RankContext& ctx) {
                                     comm::Communicator comm(&ctx);
                                     apps::KMeansMega(svc, comm, key, kcfg);
                                   });
    if (!seed_run.ok()) {
      std::fprintf(stderr, "assignment stage failed: %s\n",
                   seed_run.error.c_str());
      return 1;
    }
    svc.Shutdown();
  }
  sweep("RF", [&](core::Service& svc, sim::Cluster& cluster, double frac) {
    apps::RfConfig cfg;
    cfg.num_trees = 1;
    cfg.max_depth = 10;
    // RF's bagging is pseudo-random: small pages avoid fetching 64 KiB for
    // every 24-byte sample (the per-vector page-size knob of §III-C).
    cfg.page_size = 8 * 1024;
    cfg.pcache_bytes = std::max<std::uint64_t>(
        2 * cfg.page_size,
        static_cast<std::uint64_t>(dataset_bytes / procs * frac));
    return comm::RunRanks(cluster, procs, kProcsPerNode,
                          [&](comm::RankContext& ctx) {
                            comm::Communicator comm(&ctx);
                            apps::RandomForestMega(svc, comm, key, assign_key,
                                                   cfg);
                          });
  });

  // ---- Gray-Scott (write-heavy, plotgap=1) ----
  {
    const std::size_t L = 64;
    std::uint64_t grid_per_node = 4ULL * L * L * L * sizeof(double) / kNodes;
    double full = 0;
    for (double frac : kFractions) {
      BenchDir gs_dir("fig8_gs_" + std::to_string(frac));
      apps::GrayScottConfig cfg;
      cfg.L = L;
      cfg.steps = 3;
      cfg.plotgap = 1;
      cfg.out_key = gs_dir.Key("shdf", "gs.h5");
      cfg.page_size = 32 * 1024;
      cfg.pcache_bytes = std::max<std::uint64_t>(
          2 * cfg.page_size,
          static_cast<std::uint64_t>(grid_per_node / kProcsPerNode * frac));
      double t = MeasureSeconds(reps, [&] {
        auto cluster = sim::Cluster::PaperTestbed(kNodes);
        core::Service svc(
            cluster.get(),
            TieredService(static_cast<std::uint64_t>(grid_per_node * 2 * frac)));
        return comm::RunRanks(*cluster, procs, kProcsPerNode,
                              [&](comm::RankContext& ctx) {
                                comm::Communicator comm(&ctx);
                                apps::GrayScottMega(svc, comm, cfg);
                              });
      });
      if (frac == 1.0) full = t;
      table.AddRow({"GrayScott", Fmt(frac, 3), Fmt(t), Fmt(t / full, 2)});
    }
  }

  std::printf("%s", table.Render(csv).c_str());
  std::printf("\nExpected shape: flat (within ~10%%) down to ~0.4-0.5 of the\n"
              "full grant, then a fault/spill cliff of up to ~2.5x.\n");
  return 0;
}
