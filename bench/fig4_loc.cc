// Fig. 4 reproduction: lines-of-code comparison of the MegaMmap
// applications against their baseline counterparts ("MegaMmap code
// 45% - 2x smaller. In each case, all I/O partitioning, I/O compatibility,
// and most messaging is removed.").
//
// A cloc-style counter (nonblank, noncomment lines) runs over the
// implementation functions extracted by brace matching from this
// repository's own sources. Shared algorithm code (stencils, local DBSCAN,
// tree building) is excluded from both sides — the figure compares the
// *distribution/I-O scaffolding* each approach forces on the application.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mm/util/stats.h"

namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s (run from the repo root)\n",
                 path.c_str());
    std::exit(1);
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

/// Extracts the body of the function whose definition contains `signature`
/// by brace matching.
std::string ExtractFunction(const std::string& source,
                            const std::string& signature) {
  auto pos = source.find(signature);
  if (pos == std::string::npos) {
    std::fprintf(stderr, "signature not found: %s\n", signature.c_str());
    std::exit(1);
  }
  auto open = source.find('{', pos);
  int depth = 0;
  std::size_t i = open;
  for (; i < source.size(); ++i) {
    if (source[i] == '{') ++depth;
    if (source[i] == '}') {
      if (--depth == 0) break;
    }
  }
  return source.substr(pos, i - pos + 1);
}

/// cloc-style count: ignores blank lines and // or /* */ comment lines.
int CountLoc(const std::string& code) {
  int loc = 0;
  bool in_block_comment = false;
  std::istringstream iss(code);
  std::string line;
  while (std::getline(iss, line)) {
    std::size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    std::string t = line.substr(b);
    if (in_block_comment) {
      if (t.find("*/") != std::string::npos) in_block_comment = false;
      continue;
    }
    if (t.rfind("//", 0) == 0) continue;
    if (t.rfind("/*", 0) == 0) {
      if (t.find("*/") == std::string::npos) in_block_comment = true;
      continue;
    }
    ++loc;
  }
  return loc;
}

struct FnRef {
  const char* file;
  const char* signature;
};

struct AppEntry {
  const char* app;
  std::vector<FnRef> mega_functions;
  std::vector<FnRef> baseline_functions;
  const char* baseline_name;
};

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") csv = true;
  }

  // The paper counts each application's own code, including its data
  // loading/partitioning/serialization scaffolding. Our Spark-style apps
  // delegate that scaffolding to Rdd<T>::Load, so it is attributed to each
  // Spark baseline (the real MLlib apps carry equivalent ingest code);
  // MegaMmap's equivalent lives inside the library — which is the paper's
  // point.
  const FnRef kRddLoad{"include/mm/apps/sparklike.h", "Rdd<T> Rdd<T>::Load"};
  std::vector<AppEntry> apps = {
      {"KMeans",
       {{"src/apps/kmeans.cc", "KMeansResult KMeansMega"}},
       {{"src/apps/kmeans.cc", "KMeansResult KMeansSpark"}, kRddLoad},
       "Spark-style"},
      {"RF",
       {{"src/apps/random_forest.cc", "RfResult RandomForestMega"}},
       {{"src/apps/random_forest.cc", "RfResult RandomForestSpark"}, kRddLoad},
       "Spark-style"},
      {"DBSCAN",
       {{"src/apps/dbscan.cc", "DbscanResult DbscanMega"},
        {"src/apps/dbscan.cc", "std::vector<IdxPoint> LoadSliceMega"}},
       {{"src/apps/dbscan.cc", "DbscanResult DbscanMpi"},
        {"src/apps/dbscan.cc", "std::vector<IdxPoint> LoadSliceMpi"}},
       "MPI-style"},
      {"Gray-Scott",
       {{"src/apps/gray_scott.cc", "GrayScottResult GrayScottMega"}},
       {{"src/apps/gray_scott.cc", "GrayScottResult GrayScottMpi"}},
       "MPI-style"},
  };

  std::printf("=== Fig. 4: application code volume (cloc-style LoC) ===\n");
  std::printf("Paper: MegaMmap versions are 45%% to 2x smaller than the "
              "originals.\n\n");
  mm::TablePrinter table(
      {"app", "megammap_loc", "baseline_loc", "baseline", "ratio"});
  for (const AppEntry& app : apps) {
    int mega = 0, base = 0;
    for (const FnRef& fn : app.mega_functions) {
      mega += CountLoc(ExtractFunction(ReadFile(fn.file), fn.signature));
    }
    for (const FnRef& fn : app.baseline_functions) {
      base += CountLoc(ExtractFunction(ReadFile(fn.file), fn.signature));
    }
    table.AddRow({app.app, std::to_string(mega), std::to_string(base),
                  app.baseline_name,
                  mm::FormatDouble(static_cast<double>(base) / mega, 2)});
  }
  std::printf("%s\n", table.Render(csv).c_str());
  std::printf("(Shared algorithm kernels — stencil update, leaf DBSCAN,\n"
              " tree induction — are excluded from both columns; the\n"
              " comparison isolates distribution/I-O scaffolding.)\n");
  return 0;
}
