// Fig. 5 reproduction: weak scaling of MegaMmap vs the alternative designs
// with datasets that fit entirely in memory.
//
// Paper setup (scaled 1/12 per EXPERIMENTS.md): 1..16 nodes, 48 procs/node,
// 2 GB/node KMeans+DBSCAN datasets, 128 MB/node RF, 16 GB/node Gray-Scott.
// Here: 1..8 nodes, 4 procs/node, 60k particles/node (KMeans/DBSCAN),
// 20k/node (RF), L grown so the grid scales with nodes (Gray-Scott).
// MegaMmap runs "with no optimizations enabled and only uses memory"
// (prefetcher/organizer off, DRAM-only grants). Spark baselines run over
// the TCP-grade network.
//
// Expected shape: MegaMmap tracks the MPI versions and beats Spark (up to
// ~2x), with weak-scaling curves that stay flat-ish in log(p).
#include "bench/common.h"

#include "mm/apps/dbscan.h"
#include "mm/apps/gray_scott.h"
#include "mm/apps/kmeans.h"
#include "mm/apps/random_forest.h"

using namespace mm;
using namespace mmbench;

namespace {

constexpr int kProcsPerNode = 4;
constexpr std::uint64_t kParticlesPerNode = 150000;
constexpr std::uint64_t kRfParticlesPerNode = 20000;
// DBSCAN's border-merge work grows with the dataset; a smaller per-node
// slice keeps the harness wall-clock bounded at 8 nodes.
constexpr std::uint64_t kDbParticlesPerNode = 20000;

core::ServiceOptions MemoryOnlyService() {
  core::ServiceOptions so;
  // Fig. 5: memory only, no optimizations.
  so.tier_grants = {{sim::TierKind::kDram, GIGABYTES(4)}};
  so.enable_prefetch = false;
  so.enable_organizer = false;
  return so;
}

std::unique_ptr<sim::Cluster> RoceCluster(int nodes) {
  return sim::Cluster::PaperTestbed(nodes);
}

std::unique_ptr<sim::Cluster> TcpCluster(int nodes) {
  return std::make_unique<sim::Cluster>(nodes, sim::NodeSpec::PaperCompute(),
                                        sim::NetworkSpec::Tcp10(),
                                        TERABYTES(64));
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = CsvMode(argc, argv);
  int reps = Reps(argc, argv);
  std::vector<int> node_counts = {1, 2, 4, 8};

  std::printf("=== Fig. 5: weak scaling, in-memory datasets ===\n");
  std::printf("(%d procs/node, %d reps averaged, virtual seconds)\n\n",
              kProcsPerNode, reps);
  TablePrinter table({"app", "impl", "nodes", "procs", "runtime_s"});

  BenchReport report("fig5_weak_scaling");
  report.Config("procs_per_node", kProcsPerNode);
  report.Config("reps", reps);
  report.Config("particles_per_node", double(kParticlesPerNode));
  // Each measurement lands in the report twice: a per-run distribution in
  // `series` (virtual seconds) and the mean as a flat gate metric.
  StatAccumulator acc;
  auto record = [&](const std::string& label, double mean_s) {
    report.Series(label + "_runtime_s", acc);
    report.Metric(label + "_mean_s", mean_s);
    acc.Clear();
  };

  for (int nodes : node_counts) {
    int procs = nodes * kProcsPerNode;
    BenchDir dir("fig5_n" + std::to_string(nodes));
    std::fprintf(stderr, "[fig5] nodes=%d ...\n", nodes);

    // ---- KMeans: MegaMmap vs Spark ----
    {
      std::string key =
          StageParticles(dir, kParticlesPerNode * nodes, 8, 42);
      apps::KMeansConfig cfg;
      cfg.k = 8;
      cfg.max_iter = 4;
      cfg.page_size = 256 * 1024;
      cfg.pcache_bytes = MEGABYTES(2);
      double mega = MeasureSeconds(reps, [&] {
        auto cluster = RoceCluster(nodes);
        core::Service svc(cluster.get(), MemoryOnlyService());
        return comm::RunRanks(*cluster, procs, kProcsPerNode,
                              [&](comm::RankContext& ctx) {
                                comm::Communicator comm(&ctx);
                                apps::KMeansMega(svc, comm, key, cfg);
                              });
      }, nullptr, &acc);
      record("kmeans_megammap_n" + std::to_string(nodes), mega);
      double spark = MeasureSeconds(reps, [&] {
        auto cluster = TcpCluster(nodes);
        return comm::RunRanks(*cluster, procs, kProcsPerNode,
                              [&](comm::RankContext& ctx) {
                                comm::Communicator comm(&ctx);
                                apps::sparklike::SparkEnv env(ctx);
                                apps::KMeansSpark(env, comm, key, cfg);
                              });
      }, nullptr, &acc);
      record("kmeans_spark_n" + std::to_string(nodes), spark);
      std::fprintf(stderr, "[fig5]   KMeans done\n");
      table.AddRow({"KMeans", "MegaMmap", std::to_string(nodes),
                    std::to_string(procs), Fmt(mega)});
      table.AddRow({"KMeans", "Spark", std::to_string(nodes),
                    std::to_string(procs), Fmt(spark)});
    }

    // ---- Random Forest: MegaMmap vs Spark ----
    {
      std::string key = StageParticles(dir, kRfParticlesPerNode * nodes, 8,
                                       43, "rf_pts.bin");
      // Labels = halo ids (the classification target used in the paper's
      // workflow once KMeans assignments exist).
      apps::DatagenConfig gen;
      gen.num_particles = kRfParticlesPerNode * nodes;
      gen.halos = 8;
      gen.seed = 43;
      std::vector<apps::Particle> particles;
      auto truth = apps::GenerateParticles(gen, &particles);
      std::string lkey = dir.Key("posix", "rf_labels.bin");
      {
        auto resolved = storage::StagerRegistry::Default().Resolve(lkey);
        std::vector<std::int32_t> labels(truth.labels.begin(),
                                         truth.labels.end());
        std::vector<std::uint8_t> raw(labels.size() * 4);
        std::memcpy(raw.data(), labels.data(), raw.size());
        // Bench setup: a short write only skews the input, not the timing.
        (void)resolved->first->Create(resolved->second, raw.size());
        // Same bench-setup tolerance as the create above.
        (void)resolved->first->Write(resolved->second, 0, raw);
      }
      apps::RfConfig cfg;
      cfg.num_trees = 1;
      cfg.max_depth = 10;
      cfg.page_size = 256 * 1024;
      cfg.pcache_bytes = MEGABYTES(2);
      double mega = MeasureSeconds(reps, [&] {
        auto cluster = RoceCluster(nodes);
        core::Service svc(cluster.get(), MemoryOnlyService());
        return comm::RunRanks(
            *cluster, procs, kProcsPerNode, [&](comm::RankContext& ctx) {
              comm::Communicator comm(&ctx);
              apps::RandomForestMega(svc, comm, key, lkey, cfg);
            });
      }, nullptr, &acc);
      record("rf_megammap_n" + std::to_string(nodes), mega);
      double spark = MeasureSeconds(reps, [&] {
        auto cluster = TcpCluster(nodes);
        return comm::RunRanks(
            *cluster, procs, kProcsPerNode, [&](comm::RankContext& ctx) {
              comm::Communicator comm(&ctx);
              apps::sparklike::SparkEnv env(ctx);
              apps::RandomForestSpark(env, comm, key, lkey, cfg);
            });
      }, nullptr, &acc);
      record("rf_spark_n" + std::to_string(nodes), spark);
      std::fprintf(stderr, "[fig5]   RF done\n");
      table.AddRow({"RF", "MegaMmap", std::to_string(nodes),
                    std::to_string(procs), Fmt(mega)});
      table.AddRow({"RF", "Spark", std::to_string(nodes),
                    std::to_string(procs), Fmt(spark)});
    }

    // ---- DBSCAN: MegaMmap vs MPI ----
    {
      // Density calibrated so core neighborhoods hold ~2x min_pts points
      // (the paper's eps=8/min_pts=64 applies to its Gadget data; we match
      // the density regime, not the absolute numbers). The box grows with
      // cbrt(N) so weak scaling keeps per-point work constant.
      std::string key = StageParticles(dir, kDbParticlesPerNode * nodes, 8, 44,
                                       "db_pts.bin",
                                       700.0 * std::cbrt(double(nodes)));
      apps::DbscanConfig cfg;
      cfg.eps = 4.0;
      cfg.min_pts = 32;
      cfg.page_size = 256 * 1024;
      cfg.pcache_bytes = MEGABYTES(2);
      double mega = MeasureSeconds(reps, [&] {
        auto cluster = RoceCluster(nodes);
        core::Service svc(cluster.get(), MemoryOnlyService());
        return comm::RunRanks(*cluster, procs, kProcsPerNode,
                              [&](comm::RankContext& ctx) {
                                comm::Communicator comm(&ctx);
                                apps::DbscanMega(svc, comm, key, cfg);
                              });
      }, nullptr, &acc);
      record("dbscan_megammap_n" + std::to_string(nodes), mega);
      double mpi = MeasureSeconds(reps, [&] {
        auto cluster = RoceCluster(nodes);
        return comm::RunRanks(*cluster, procs, kProcsPerNode,
                              [&](comm::RankContext& ctx) {
                                comm::Communicator comm(&ctx);
                                apps::DbscanMpi(comm, key, cfg);
                              });
      }, nullptr, &acc);
      record("dbscan_mpi_n" + std::to_string(nodes), mpi);
      std::fprintf(stderr, "[fig5]   DBSCAN done\n");
      table.AddRow({"DBSCAN", "MegaMmap", std::to_string(nodes),
                    std::to_string(procs), Fmt(mega)});
      table.AddRow({"DBSCAN", "MPI", std::to_string(nodes),
                    std::to_string(procs), Fmt(mpi)});
    }

    // ---- Gray-Scott: MegaMmap vs MPI (plotgap=0, no checkpoints) ----
    {
      apps::GrayScottConfig cfg;
      // Weak scaling: grid volume grows with nodes (L ~ cbrt(nodes)),
      // mirroring the paper's L=784 (1 node) -> L=1920 (16 nodes). The
      // base L keeps per-rank compute large enough to amortize the DSM
      // page machinery, as the paper's 16 GB/node grids do.
      cfg.L = static_cast<std::size_t>(64.0 * std::cbrt(double(nodes)) + 0.5);
      cfg.steps = 3;
      cfg.plotgap = 0;
      cfg.page_size = 64 * 1024;
      cfg.pcache_bytes = MEGABYTES(8);
      double mega = MeasureSeconds(reps, [&] {
        auto cluster = RoceCluster(nodes);
        core::Service svc(cluster.get(), MemoryOnlyService());
        return comm::RunRanks(*cluster, procs, kProcsPerNode,
                              [&](comm::RankContext& ctx) {
                                comm::Communicator comm(&ctx);
                                apps::GrayScottMega(svc, comm, cfg);
                              });
      }, nullptr, &acc);
      record("grayscott_megammap_n" + std::to_string(nodes), mega);
      double mpi = MeasureSeconds(reps, [&] {
        auto cluster = RoceCluster(nodes);
        return comm::RunRanks(*cluster, procs, kProcsPerNode,
                              [&](comm::RankContext& ctx) {
                                comm::Communicator comm(&ctx);
                                apps::GrayScottMpi(comm, cfg);
                              });
      }, nullptr, &acc);
      record("grayscott_mpi_n" + std::to_string(nodes), mpi);
      std::fprintf(stderr, "[fig5]   GrayScott done\n");
      table.AddRow({"GrayScott", "MegaMmap", std::to_string(nodes),
                    std::to_string(procs), Fmt(mega)});
      table.AddRow({"GrayScott", "MPI", std::to_string(nodes),
                    std::to_string(procs), Fmt(mpi)});
    }
  }
  std::printf("%s", table.Render(csv).c_str());
  report.Write("BENCH_fig5_weak_scaling.json");
  return 0;
}
