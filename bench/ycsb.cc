// YCSB-style benchmark for mm::BTree (DESIGN.md §15): A/B/C mixes with
// zipfian key popularity over a tree whose node arena is deliberately
// starved of pcache (cache ≪ data), across 2-4 simulated nodes.
//
// Virtual-clock numbers (throughput, per-op p50/p99/p999) report the
// modeled cost of the descent funnel. The gated headline is wall-clock and
// self-relative, exactly like bench/readpath: the same read-heavy mix runs
// once with the latch-free tiers on and once as the queue-path-only
// ablation (optimistic reads disabled end to end), and the p99 Get
// speedup between the two is machine-independent because both halves run
// on the same host in the same process. The queue path's cost is host-side
// machinery (task enqueue, worker wake-up, promise/future handoff) that a
// latch-free descent never touches.
//
// Gates (ci/check_perf.py "ycsb"): p99_get_speedup >= 3x, scans in exact
// sorted order, std::map-oracle checksum bit-exact across 3 seeds,
// optimistic restart rate < 5%.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "mm/apps/kvstore.h"
#include "mm/comm/communicator.h"
#include "mm/comm/launch.h"
#include "mm/index/btree.h"
#include "mm/mega_mmap.h"
#include "mm/util/hash.h"

namespace {

using mm::MixU64;
using mm::apps::KvRecord;
using mm::apps::KvTree;
using mm::apps::MakeRecord;
using mm::apps::ZipfianGenerator;

constexpr std::uint64_t kNumKeys = 20000;  // ~2.2 MB of leaves at 100 B values
constexpr std::uint64_t kOpsPerRank = 6000;
constexpr std::uint64_t kWarmupOps = 200;   // untimed wall-clock warm-up
constexpr std::uint64_t kScanLen = 16;
constexpr std::uint64_t kCacheNodes = 64;   // pcache ≪ data: 256 KB vs 2.2 MB
constexpr double kZipfTheta = 0.99;

struct MixSpec {
  const char* name;
  double read, update, scan;
  int nodes;
};

struct MixResult {
  std::vector<double> get_sim_s, update_sim_s, scan_sim_s;
  std::vector<double> get_wall_ns;
  std::uint64_t ops = 0;
  std::uint64_t scan_items = 0;
  std::uint64_t unsorted_scans = 0;
  std::uint64_t descents = 0;
  std::uint64_t restarts = 0;
  std::uint64_t pcache_hits = 0;
  std::uint64_t scache_probes = 0;
  std::uint64_t queue_fallbacks = 0;
  double sim_seconds = 0.0;
};

// One full mix measurement. `latch_free` flips BOTH the tree's descent
// tiers and the service's optimistic read path, so false is the pure
// queue-path ablation the gate compares against.
MixResult RunMix(const MixSpec& mix, bool latch_free) {
  auto cluster = mm::sim::Cluster::PaperTestbed(mix.nodes);
  mm::core::ServiceOptions so;
  so.tier_grants = {{mm::sim::TierKind::kDram, mm::MEGABYTES(64)},
                    {mm::sim::TierKind::kNvme, mm::MEGABYTES(256)}};
  so.enable_optimistic_reads = latch_free;
  mm::core::Service svc(cluster.get(), so);

  std::vector<MixResult> per_rank(mix.nodes);
  auto run = mm::comm::RunRanks(
      *cluster, mix.nodes, 1, [&](mm::comm::RankContext& ctx) {
        mm::comm::Communicator comm(&ctx);
        mm::index::BTreeOptions opt;
        opt.max_nodes = 1 << 16;
        opt.cache_bytes = kCacheNodes * 4096;
        opt.latch_free = latch_free;
        KvTree tree(svc, ctx, std::string("mem://ycsb_") + mix.name +
                                  (latch_free ? "_lf" : "_q"),
                    opt);
        if (comm.rank() == 0) tree.Create();
        comm.Barrier();
        tree.Refresh();
        const auto nranks = static_cast<std::uint64_t>(comm.size());
        for (std::uint64_t i = comm.rank(); i < kNumKeys; i += nranks) {
          const std::uint64_t key = MixU64(i + 1);
          tree.Put(key, MakeRecord(key, 0));
        }
        comm.Barrier();
        tree.Refresh();

        MixResult& mine = per_rank[comm.rank()];
        const mm::index::DescentStats before = tree.stats();
        ZipfianGenerator zipf(kNumKeys, kZipfTheta,
                              mm::HashCombine(7, comm.rank()));
        mm::Rng op_rng(mm::HashCombine(11, comm.rank()));
        std::vector<std::pair<std::uint64_t, KvRecord>> scan_buf;
        const double sim_start = ctx.clock().now();
        for (std::uint64_t op = 0; op < kWarmupOps + kOpsPerRank; ++op) {
          const bool timed = op >= kWarmupOps;
          const std::uint64_t key = MixU64(zipf.Next() + 1);
          const double u = op_rng.NextDouble();
          const double t0 = ctx.clock().now();
          if (u < mix.read) {
            KvRecord rec{};
            const auto w0 = std::chrono::steady_clock::now();
            // Zipf-drawn keys are all loaded, and latency is the measurement.
            (void)tree.Get(key, &rec);
            const auto w1 = std::chrono::steady_clock::now();
            if (timed) {
              mine.get_sim_s.push_back(ctx.clock().now() - t0);
              mine.get_wall_ns.push_back(
                  std::chrono::duration<double, std::nano>(w1 - w0).count());
            }
          } else if (u < mix.read + mix.update) {
            tree.Put(key, MakeRecord(key, op + 1));
            if (timed) mine.update_sim_s.push_back(ctx.clock().now() - t0);
          } else {
            scan_buf.clear();
            const std::uint64_t got = tree.Scan(key, kScanLen, &scan_buf);
            if (timed) {
              mine.scan_sim_s.push_back(ctx.clock().now() - t0);
              mine.scan_items += got;
              for (std::size_t i = 1; i < scan_buf.size(); ++i) {
                if (!(scan_buf[i - 1].first < scan_buf[i].first)) {
                  ++mine.unsorted_scans;
                  break;
                }
              }
            }
          }
          if (timed) ++mine.ops;
        }
        mine.sim_seconds = ctx.clock().now() - sim_start;
        const mm::index::DescentStats after = tree.stats();
        mine.descents = after.descents - before.descents;
        mine.restarts = after.restarts - before.restarts;
        mine.pcache_hits = after.pcache_hits - before.pcache_hits;
        mine.scache_probes = after.scache_probes - before.scache_probes;
        mine.queue_fallbacks = after.queue_fallbacks - before.queue_fallbacks;
        comm.Barrier();
      });
  if (!run.ok()) {
    std::fprintf(stderr, "ycsb %s: %s\n", mix.name, run.error.c_str());
    std::exit(1);
  }

  MixResult total;
  for (MixResult& r : per_rank) {
    auto app = [](std::vector<double>& dst, const std::vector<double>& src) {
      dst.insert(dst.end(), src.begin(), src.end());
    };
    app(total.get_sim_s, r.get_sim_s);
    app(total.update_sim_s, r.update_sim_s);
    app(total.scan_sim_s, r.scan_sim_s);
    app(total.get_wall_ns, r.get_wall_ns);
    total.ops += r.ops;
    total.scan_items += r.scan_items;
    total.unsorted_scans += r.unsorted_scans;
    total.descents += r.descents;
    total.restarts += r.restarts;
    total.pcache_hits += r.pcache_hits;
    total.scache_probes += r.scache_probes;
    total.queue_fallbacks += r.queue_fallbacks;
    total.sim_seconds = std::max(total.sim_seconds, r.sim_seconds);
  }
  return total;
}

// std::map-oracle property check: the apps driver's DSM run must fold the
// exact same op outcomes as its single-threaded std::map replay, for each
// fault seed the flake lane sweeps.
bool OracleIdentical(std::uint64_t seed) {
  auto cluster = mm::sim::Cluster::PaperTestbed(1);
  mm::core::ServiceOptions so;
  so.tier_grants = {{mm::sim::TierKind::kDram, mm::MEGABYTES(64)},
                    {mm::sim::TierKind::kNvme, mm::MEGABYTES(256)}};
  mm::core::Service svc(cluster.get(), so);
  mm::apps::KvConfig cfg;
  cfg.num_keys = 3000;
  cfg.ops_per_rank = 1500;
  cfg.read_frac = 0.5;
  cfg.update_frac = 0.3;
  cfg.scan_frac = 0.15;
  cfg.seed = seed;
  cfg.key_prefix = "mem://ycsb_oracle_" + std::to_string(seed);
  mm::apps::KvResult res;
  auto run = mm::comm::RunRanks(*cluster, 1, 1,
                                [&](mm::comm::RankContext& ctx) {
                                  mm::comm::Communicator comm(&ctx);
                                  res = mm::apps::RunKvWorkload(svc, comm, cfg);
                                });
  if (!run.ok()) {
    std::fprintf(stderr, "oracle seed %llu: %s\n",
                 static_cast<unsigned long long>(seed), run.error.c_str());
    std::exit(1);
  }
  return res.checksum == mm::apps::ReferenceKvChecksum(cfg, 0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 && argv[1][0] != '-' ? argv[1] : "BENCH_ycsb.json";
  const bool csv = mmbench::CsvMode(argc, argv);

  // YCSB-A update-heavy, -B read-heavy, -C read-only-plus-scans. B and C
  // both get an ablation twin running the identical workload with every
  // latch-free tier disabled; C's pair carries the gate.
  const MixSpec mix_a{"A", 0.50, 0.50, 0.00, 2};
  const MixSpec mix_b{"B", 0.95, 0.05, 0.00, 2};
  const MixSpec mix_c{"C", 0.95, 0.00, 0.05, 4};

  MixResult a = RunMix(mix_a, /*latch_free=*/true);
  MixResult b = RunMix(mix_b, /*latch_free=*/true);
  MixResult b_queue = RunMix(mix_b, /*latch_free=*/false);
  MixResult c = RunMix(mix_c, /*latch_free=*/true);
  MixResult c_queue = RunMix(mix_c, /*latch_free=*/false);

  // The gated speedup comes from the C pair: same 95%-read workload, only
  // the read tiers differ, and no update traffic muddies the Get tail. The
  // B pair's speedup is reported alongside (it carries 5% writer
  // interference in both halves and lands lower).
  mm::StatAccumulator b_wall, bq_wall, c_wall, cq_wall;
  for (double v : b.get_wall_ns) b_wall.Add(v);
  for (double v : b_queue.get_wall_ns) bq_wall.Add(v);
  for (double v : c.get_wall_ns) c_wall.Add(v);
  for (double v : c_queue.get_wall_ns) cq_wall.Add(v);
  const double p99_get_speedup =
      c_wall.Percentile(99) > 0
          ? cq_wall.Percentile(99) / c_wall.Percentile(99)
          : 0.0;
  const double b_p99_get_speedup =
      b_wall.Percentile(99) > 0
          ? bq_wall.Percentile(99) / b_wall.Percentile(99)
          : 0.0;

  const std::uint64_t scans_total = c.scan_items + c_queue.scan_items;
  const std::uint64_t unsorted = a.unsorted_scans + b.unsorted_scans +
                                 b_queue.unsorted_scans + c.unsorted_scans +
                                 c_queue.unsorted_scans;
  const double scan_sorted = unsorted == 0 ? 1.0 : 0.0;

  bool oracle_ok = true;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    oracle_ok = OracleIdentical(seed) && oracle_ok;
  }
  const double oracle_identical = oracle_ok ? 1.0 : 0.0;

  const std::uint64_t lf_descents = a.descents + b.descents + c.descents;
  const std::uint64_t lf_restarts = a.restarts + b.restarts + c.restarts;
  const double restart_rate =
      lf_descents > 0
          ? static_cast<double>(lf_restarts) / static_cast<double>(lf_descents)
          : 0.0;

  mm::TablePrinter table({"mix", "nodes", "ops", "kops_per_sim_s",
                          "get_p50_us", "get_p99_us", "get_p999_us"});
  auto add_row = [&](const char* name, const MixSpec& m, MixResult& r) {
    mm::StatAccumulator acc;
    for (double v : r.get_sim_s) acc.Add(v);
    const double kops =
        r.sim_seconds > 0 ? r.ops / r.sim_seconds / 1e3 : 0.0;
    table.AddRow({name, mmbench::Fmt(m.nodes, 0),
                  mmbench::Fmt(static_cast<double>(r.ops), 0),
                  mmbench::Fmt(kops, 1),
                  mmbench::Fmt(acc.Percentile(50) * 1e6, 2),
                  mmbench::Fmt(acc.Percentile(99) * 1e6, 2),
                  mmbench::Fmt(acc.Percentile(99.9) * 1e6, 2)});
  };
  add_row("A", mix_a, a);
  add_row("B", mix_b, b);
  add_row("B/queue", mix_b, b_queue);
  add_row("C", mix_c, c);
  add_row("C/queue", mix_c, c_queue);
  std::printf("%s", table.Render(csv).c_str());
  std::printf(
      "p99_get_speedup=%.2fx scan_sorted=%.0f oracle_identical=%.0f "
      "restart_rate=%.4f (descents=%llu scans=%llu)\n",
      p99_get_speedup, scan_sorted, oracle_identical, restart_rate,
      static_cast<unsigned long long>(lf_descents),
      static_cast<unsigned long long>(scans_total));

  // Funnel shares on the latch-free read-heavy mix: how much index traffic
  // the lock-free tiers absorbed before the task queue.
  const double node_reads = static_cast<double>(
      b.pcache_hits + b.scache_probes + b.queue_fallbacks);
  const double queue_share =
      node_reads > 0 ? b.queue_fallbacks / node_reads : 0.0;

  mm::StatAccumulator b_get_sim, b_update_sim, c_scan_sim;
  for (double v : b.get_sim_s) b_get_sim.Add(v);
  for (double v : b.update_sim_s) b_update_sim.Add(v);
  for (double v : c.scan_sim_s) c_scan_sim.Add(v);

  mmbench::BenchReport report("ycsb");
  report.Config("num_keys", static_cast<double>(kNumKeys));
  report.Config("ops_per_rank", static_cast<double>(kOpsPerRank));
  report.Config("cache_nodes", static_cast<double>(kCacheNodes));
  report.Config("zipf_theta", kZipfTheta);
  report.Config("scan_len", static_cast<double>(kScanLen));
  report.Metric("p99_get_speedup", p99_get_speedup);
  report.Metric("b_p99_get_speedup", b_p99_get_speedup);
  report.Metric("scan_sorted", scan_sorted);
  report.Metric("oracle_identical", oracle_identical);
  report.Metric("restart_rate", restart_rate);
  report.Metric("queue_share_read_heavy", queue_share);
  report.Metric("c_get_p99_wall_ns", c_wall.Percentile(99));
  report.Metric("c_queue_get_p99_wall_ns", cq_wall.Percentile(99));
  report.Metric("b_get_p99_wall_ns", b_wall.Percentile(99));
  report.Metric("b_queue_get_p99_wall_ns", bq_wall.Percentile(99));
  report.Metric("b_kops_per_sim_s",
                b.sim_seconds > 0 ? b.ops / b.sim_seconds / 1e3 : 0.0);
  report.Series("b_get_sim_s", b_get_sim);
  report.Series("b_update_sim_s", b_update_sim);
  report.Series("c_scan_sim_s", c_scan_sim);
  report.Series("b_get_wall_ns", b_wall);
  report.Series("b_queue_get_wall_ns", bq_wall);
  if (!report.Write(out_path)) return 1;
  return 0;
}
